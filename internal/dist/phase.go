package dist

import (
	"fmt"
	"strings"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// PhaseSpec is one stage of a multi-phase RPC (DESIGN.md §15): its
// service-time distribution on a general-purpose core, the core class
// it runs best on, and the xmp_sched_sim-style heterogeneity factors —
// a speedup on the affine class and a one-way offload (transfer) cost
// charged when the phase is forwarded to another group.
type PhaseSpec struct {
	Name string
	Dist ServiceDist

	// Class is the core class this phase is affine to (0 = general).
	Class uint8
	// Speedup divides the drawn base duration when the phase executes
	// on a core of its affine class. Values <= 0 or == 1 are neutral.
	Speedup float64
	// Offload is the transfer cost paid when the finished predecessor
	// phase is enqueued onto a different group for this phase.
	Offload sim.Time
}

// neutral reports whether the spec carries no heterogeneity: class 0,
// no speedup, no offload cost.
func (p PhaseSpec) neutral() bool {
	return p.Class == 0 && (p.Speedup <= 0 || p.Speedup == 1) && p.Offload == 0
}

// PhaseProfile is a request lifecycle as a chain of phases. A profile
// with one neutral phase is the degenerate form of a plain ServiceDist:
// Apply draws exactly one sample from the same stream and the executor
// takes the single-shot path, so runs are byte-identical (the
// refactor's safety net, locked by TestPhaseParity).
type PhaseProfile struct {
	Phases []PhaseSpec
	label  string
}

// NewPhaseProfile validates and builds a profile. It panics on an
// empty chain, a chain beyond rpcproto.MaxPhases, or a nil phase
// distribution — profiles are constructed from literals in experiment
// definitions, so misuse is a programming error.
func NewPhaseProfile(label string, phases ...PhaseSpec) *PhaseProfile {
	if len(phases) == 0 {
		panic("dist: PhaseProfile needs at least one phase")
	}
	if len(phases) > rpcproto.MaxPhases {
		panic(fmt.Sprintf("dist: %d phases exceed rpcproto.MaxPhases = %d", len(phases), rpcproto.MaxPhases))
	}
	for i, p := range phases {
		if p.Dist == nil {
			panic(fmt.Sprintf("dist: phase %d (%q) has no distribution", i, p.Name))
		}
	}
	return &PhaseProfile{Phases: phases, label: label}
}

// Len returns the number of phases.
func (p *PhaseProfile) Len() int { return len(p.Phases) }

// Apply draws the profile onto a freshly generated request: one base
// sample per phase, in phase order (the RNG sequence golden traces
// lock down), affine durations pre-scaled by the speedup, and Service
// set to the base sum. A one-phase profile consumes exactly one draw —
// the same stream a bare ServiceDist would.
//
//altolint:hotpath
func (p *PhaseProfile) Apply(r *rpcproto.Request, rng *sim.RNG) {
	r.NumPhases = uint8(len(p.Phases))
	var total sim.Time
	for i, ph := range p.Phases {
		base := ph.Dist.Sample(rng)
		acc := base
		if ph.Speedup > 0 && ph.Speedup != 1 {
			acc = sim.Time(float64(base) / ph.Speedup)
		}
		r.PhaseSvc[i] = base
		r.PhaseAcc[i] = acc
		r.PhaseOffload[i] = ph.Offload
		r.PhaseClass[i] = ph.Class
		total += base
	}
	r.Service = total
}

// Sample implements ServiceDist: the total base duration of one drawn
// chain (len(Phases) draws). Servers apply profiles through Apply —
// Sample exists so rate/load helpers (LoadForRate) and dispersion
// tooling treat a profile like any other distribution.
func (p *PhaseProfile) Sample(rng *sim.RNG) sim.Time {
	var total sim.Time
	for _, ph := range p.Phases {
		total += ph.Dist.Sample(rng)
	}
	return total
}

// Mean implements ServiceDist: the sum of the base phase means.
func (p *PhaseProfile) Mean() sim.Time {
	var total sim.Time
	for _, ph := range p.Phases {
		total += ph.Dist.Mean()
	}
	return total
}

// MeanOn returns the mean chain duration when every phase runs on its
// affine class — the effective service time of a fully offloaded
// request, used by experiments to reason about accelerated capacity.
func (p *PhaseProfile) MeanOn() sim.Time {
	var total float64
	for _, ph := range p.Phases {
		m := float64(ph.Dist.Mean())
		if ph.Speedup > 0 && ph.Speedup != 1 {
			m /= ph.Speedup
		}
		total += m
	}
	return sim.Time(total)
}

// Classes returns the highest class index referenced plus one.
func (p *PhaseProfile) Classes() int {
	max := uint8(0)
	for _, ph := range p.Phases {
		if ph.Class > max {
			max = ph.Class
		}
	}
	return int(max) + 1
}

// Neutral reports whether the whole chain is class-0 with no speedups
// or offload costs — the shape whose 1-phase form must replay a bare
// ServiceDist byte for byte.
func (p *PhaseProfile) Neutral() bool {
	for _, ph := range p.Phases {
		if !ph.neutral() {
			return false
		}
	}
	return true
}

// Name implements ServiceDist.
func (p *PhaseProfile) Name() string {
	if p.label != "" {
		return p.label
	}
	var b strings.Builder
	b.WriteString("phases(")
	for i, ph := range p.Phases {
		if i > 0 {
			b.WriteByte('>')
		}
		if ph.Name != "" {
			b.WriteString(ph.Name)
		} else {
			b.WriteString(ph.Dist.Name())
		}
	}
	b.WriteByte(')')
	return b.String()
}

var _ ServiceDist = (*PhaseProfile)(nil)
