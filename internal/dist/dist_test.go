package dist

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func us(v float64) sim.Time { return sim.FromNanos(v * 1000) }

func sampleMean(d ServiceDist, seed uint64, n int) float64 {
	r := sim.NewRNG(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	return sum / float64(n)
}

func TestFixed(t *testing.T) {
	d := Fixed{V: 850 * sim.Nanosecond}
	r := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 850*sim.Nanosecond {
			t.Fatal("fixed varied")
		}
	}
	if d.Mean() != 850*sim.Nanosecond {
		t.Fatal("fixed mean")
	}
	if d.Name() == "" {
		t.Fatal("name empty")
	}
}

func TestUniform(t *testing.T) {
	d := Uniform{Lo: us(0.5), Hi: us(1.5)}
	r := sim.NewRNG(2)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < d.Lo || v > d.Hi {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
	// Distribution shape is covered by TestKSUniform.
	// Degenerate range returns Lo.
	dz := Uniform{Lo: us(1), Hi: us(1)}
	if dz.Sample(r) != us(1) {
		t.Fatal("degenerate uniform")
	}
}

func TestExponential(t *testing.T) {
	// Distribution shape is covered by TestKSExponential; this exercises
	// the SCV helper on a non-degenerate distribution.
	d := Exponential{M: us(1)}
	r := sim.NewRNG(9)
	scv := SCV(d, r, 200000)
	if math.Abs(scv-1) > 0.1 {
		t.Fatalf("exp SCV = %v, want ~1", scv)
	}
}

func TestBimodalShinjuku(t *testing.T) {
	// The Fig. 10 mix: 99.5% 0.5us, 0.5% 500us.
	d := Bimodal{Short: us(0.5), Long: us(500), PLong: 0.005}
	r := sim.NewRNG(5)
	longs := 0
	const n = 200000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v != us(0.5) && v != us(500) {
			t.Fatalf("unexpected value %v", v)
		}
		if v == us(500) {
			longs++
		}
	}
	rate := float64(longs) / n
	if math.Abs(rate-0.005) > 0.001 {
		t.Fatalf("long rate = %v", rate)
	}
	// Analytical mean: 0.995*0.5 + 0.005*500 = 2.9975 us.
	want := 0.995*0.5 + 0.005*500
	if math.Abs(d.Mean().Microseconds()-want) > 0.001 {
		t.Fatalf("bimodal mean = %v, want %vus", d.Mean(), want)
	}
	// This distribution is extremely dispersed.
	if scv := SCV(d, sim.NewRNG(6), 200000); scv < 20 {
		t.Fatalf("bimodal SCV = %v, want high dispersion", scv)
	}
}

func TestMix(t *testing.T) {
	m := NewMix("getset+scan",
		[]ServiceDist{Fixed{V: 50 * sim.Nanosecond}, Fixed{V: us(50)}},
		[]float64{99.5, 0.5})
	want := 0.995*50 + 0.005*50000 // ns
	if got := m.Mean().Nanoseconds(); math.Abs(got-want) > 0.01 {
		t.Fatalf("mix mean = %v ns, want %v", got, want)
	}
	got := sampleMean(m, 7, 300000)
	if math.Abs(got/1000-want)/want > 0.05 {
		t.Fatalf("mix sampled mean = %v ps", got)
	}
	if m.Name() != "getset+scan" {
		t.Fatal("mix name")
	}
}

func TestMixPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { NewMix("x", nil, nil) })
	mustPanic("mismatch", func() {
		NewMix("x", []ServiceDist{Fixed{V: 1}}, []float64{1, 2})
	})
	mustPanic("negative", func() {
		NewMix("x", []ServiceDist{Fixed{V: 1}}, []float64{-1})
	})
	mustPanic("zero", func() {
		NewMix("x", []ServiceDist{Fixed{V: 1}}, []float64{0})
	})
}

func TestPoissonRate(t *testing.T) {
	p := Poisson{Rate: 1e6} // 1 MRPS
	r := sim.NewRNG(8)
	var total sim.Time
	const n = 200000
	for i := 0; i < n; i++ {
		total += p.NextGap(r)
	}
	gotRate := float64(n) / total.Seconds()
	if math.Abs(gotRate-1e6)/1e6 > 0.02 {
		t.Fatalf("poisson rate = %v", gotRate)
	}
	if p.MeanRate() != 1e6 {
		t.Fatal("MeanRate")
	}
	idle := Poisson{Rate: 0}
	if idle.NextGap(r) != sim.Second {
		t.Fatal("zero-rate gap")
	}
}

func TestMMPPMeanRate(t *testing.T) {
	m := NewCloudMMPP(1e6)
	r := sim.NewRNG(10)
	var total sim.Time
	const n = 400000
	for i := 0; i < n; i++ {
		total += m.NextGap(r)
	}
	gotRate := float64(n) / total.Seconds()
	if math.Abs(gotRate-1e6)/1e6 > 0.10 {
		t.Fatalf("mmpp long-run rate = %v, want ~1e6", gotRate)
	}
	if math.Abs(m.MeanRate()-1e6)/1e6 > 1e-9 {
		t.Fatalf("MeanRate = %v", m.MeanRate())
	}
	if m.Name() == "" {
		t.Fatal("name")
	}
}

func TestMMPPBurstierThanPoisson(t *testing.T) {
	// The whole point of the real-world surrogate: dispersion index of the
	// MMPP must clearly exceed Poisson's ~1.
	window := 50 * sim.Microsecond
	poi := BurstinessIndex(Poisson{Rate: 2e6}, sim.NewRNG(11), window, 2000)
	mmpp := BurstinessIndex(NewCloudMMPP(2e6), sim.NewRNG(12), window, 2000)
	if poi > 1.5 {
		t.Fatalf("poisson dispersion = %v, want ~1", poi)
	}
	if mmpp < 2 {
		t.Fatalf("mmpp dispersion = %v, want >> 1", mmpp)
	}
}

func TestLoadForRate(t *testing.T) {
	// load 0.8 on 16 cores with 1us service = 0.8*16/1e-6 = 12.8 MRPS.
	got := LoadForRate(0.8, 16, Fixed{V: us(1)})
	if math.Abs(got-12.8e6)/12.8e6 > 1e-9 {
		t.Fatalf("LoadForRate = %v", got)
	}
	if !math.IsInf(LoadForRate(0.5, 4, Fixed{V: 0}), 1) {
		t.Fatal("zero service mean should give +Inf rate")
	}
}

func TestSCVDegenerate(t *testing.T) {
	if SCV(Fixed{V: us(1)}, sim.NewRNG(1), 1) != 0 {
		t.Fatal("n<=1 SCV")
	}
	if got := SCV(Fixed{V: us(1)}, sim.NewRNG(1), 1000); got > 1e-9 {
		t.Fatalf("fixed SCV = %v", got)
	}
}
