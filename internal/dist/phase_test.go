package dist

import (
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func TestPhaseProfileApply(t *testing.T) {
	p := NewPhaseProfile("kv4",
		PhaseSpec{Name: "parse", Dist: Fixed{V: 10 * sim.Nanosecond}},
		PhaseSpec{Name: "index", Dist: Fixed{V: 20 * sim.Nanosecond}, Class: 1, Speedup: 2},
		PhaseSpec{Name: "data", Dist: Exponential{M: 30 * sim.Nanosecond}, Class: 1, Speedup: 4, Offload: 5 * sim.Nanosecond},
		PhaseSpec{Name: "respond", Dist: Fixed{V: 7 * sim.Nanosecond}},
	)
	rng := sim.NewRNG(1)
	var r rpcproto.Request
	p.Apply(&r, rng)

	if r.NumPhases != 4 || r.Phase != 0 {
		t.Fatalf("NumPhases=%d Phase=%d, want 4/0", r.NumPhases, r.Phase)
	}
	var total sim.Time
	for i := 0; i < 4; i++ {
		total += r.PhaseSvc[i]
	}
	if r.Service != total {
		t.Errorf("Service %v != phase sum %v", r.Service, total)
	}
	if r.PhaseSvc[0] != 10*sim.Nanosecond || r.PhaseAcc[0] != 10*sim.Nanosecond {
		t.Errorf("neutral phase 0 scaled: svc=%v acc=%v", r.PhaseSvc[0], r.PhaseAcc[0])
	}
	if r.PhaseAcc[1] != 10*sim.Nanosecond {
		t.Errorf("phase 1 speedup 2x: acc=%v, want 10ns", r.PhaseAcc[1])
	}
	if want := sim.Time(float64(r.PhaseSvc[2]) / 4); r.PhaseAcc[2] != want {
		t.Errorf("phase 2 speedup 4x: acc=%v, want %v", r.PhaseAcc[2], want)
	}
	if r.PhaseOffload[2] != 5*sim.Nanosecond || r.PhaseClass[2] != 1 {
		t.Errorf("phase 2 offload/class: %v/%d", r.PhaseOffload[2], r.PhaseClass[2])
	}
	if p.Classes() != 2 || p.Neutral() || p.Len() != 4 {
		t.Errorf("Classes=%d Neutral=%v Len=%d, want 2/false/4", p.Classes(), p.Neutral(), p.Len())
	}
	if p.Name() != "kv4" {
		t.Errorf("Name = %q", p.Name())
	}
}

// TestOnePhaseNeutralStream locks the byte-identity seed: a one-phase
// neutral profile must consume exactly the draws a bare distribution
// would, producing the identical Service stream.
func TestOnePhaseNeutralStream(t *testing.T) {
	base := Exponential{M: 500 * sim.Nanosecond}
	p := NewPhaseProfile("", PhaseSpec{Dist: base})
	if !p.Neutral() {
		t.Fatal("one neutral phase must report Neutral")
	}
	a, b := sim.NewRNG(42), sim.NewRNG(42)
	for i := 0; i < 1000; i++ {
		var r rpcproto.Request
		p.Apply(&r, a)
		want := base.Sample(b)
		if r.Service != want || r.PhaseSvc[0] != want || r.PhaseAcc[0] != want {
			t.Fatalf("draw %d: profile %v/%v/%v, bare %v", i, r.Service, r.PhaseSvc[0], r.PhaseAcc[0], want)
		}
		if r.NumPhases != 1 || r.PhaseClass[0] != 0 || r.PhaseOffload[0] != 0 {
			t.Fatalf("draw %d: non-neutral fields: %+v", i, r)
		}
	}
}

func TestPhaseProfileServiceDist(t *testing.T) {
	p := NewPhaseProfile("",
		PhaseSpec{Dist: Fixed{V: 10 * sim.Nanosecond}},
		PhaseSpec{Dist: Fixed{V: 30 * sim.Nanosecond}, Class: 1, Speedup: 3},
	)
	if got := p.Mean(); got != 40*sim.Nanosecond {
		t.Errorf("Mean = %v, want 40ns", got)
	}
	if got := p.MeanOn(); got != 20*sim.Nanosecond {
		t.Errorf("MeanOn = %v, want 20ns (10 + 30/3)", got)
	}
	if got := p.Sample(sim.NewRNG(1)); got != 40*sim.Nanosecond {
		t.Errorf("Sample = %v, want 40ns", got)
	}
	if got := p.Name(); got != "phases(fixed(10.000ns)>fixed(30.000ns))" {
		t.Errorf("default Name = %q", got)
	}
}

func TestNewPhaseProfilePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	expectPanic("empty", func() { NewPhaseProfile("x") })
	expectPanic("nil dist", func() { NewPhaseProfile("x", PhaseSpec{}) })
	expectPanic("too many", func() {
		specs := make([]PhaseSpec, rpcproto.MaxPhases+1)
		for i := range specs {
			specs[i] = PhaseSpec{Dist: Fixed{V: sim.Nanosecond}}
		}
		NewPhaseProfile("x", specs...)
	})
}
