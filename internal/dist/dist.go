// Package dist provides the request service-time distributions and arrival
// processes used throughout the evaluation.
//
// Service-time distributions follow §IV/§VII of the paper: Fixed, Uniform
// and Bi-modal (the three used in Fig. 7), the extreme Shinjuku bimodal
// (99.5 % × 0.5 µs, 0.5 % × 500 µs) used in Fig. 10, the GET/SET+SCAN mix
// of Fig. 14, and Exponential for the queueing-theory experiments.
//
// Arrival processes: Poisson (§VII "Load generator") and a
// Markov-modulated Poisson process standing in for the public-cloud
// regression model of Bergsma et al. [9] — see DESIGN.md for the
// substitution rationale.
package dist

import (
	"fmt"

	"repro/internal/sim"
)

// ServiceDist draws per-request service times.
type ServiceDist interface {
	// Sample returns the on-CPU service time of one request.
	Sample(r *sim.RNG) sim.Time
	// Mean returns the distribution's analytical mean.
	Mean() sim.Time
	// Name identifies the distribution in reports.
	Name() string
}

// Fixed is a deterministic service time (the "Fixed" pattern of Fig. 7 and
// the 850 ns eRPC workload of Fig. 13a).
type Fixed struct{ V sim.Time }

func (f Fixed) Sample(*sim.RNG) sim.Time { return f.V }
func (f Fixed) Mean() sim.Time           { return f.V }
func (f Fixed) Name() string             { return fmt.Sprintf("fixed(%v)", f.V) }

// Uniform draws uniformly in [Lo, Hi].
type Uniform struct{ Lo, Hi sim.Time }

func (u Uniform) Sample(r *sim.RNG) sim.Time {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + sim.Time(r.Float64()*float64(u.Hi-u.Lo))
}
func (u Uniform) Mean() sim.Time { return (u.Lo + u.Hi) / 2 }
func (u Uniform) Name() string   { return fmt.Sprintf("uniform(%v,%v)", u.Lo, u.Hi) }

// Exponential has the given mean (M/M/k analyses, Fig. 3).
type Exponential struct{ M sim.Time }

func (e Exponential) Sample(r *sim.RNG) sim.Time {
	return sim.Time(r.Exp(float64(e.M)))
}
func (e Exponential) Mean() sim.Time { return e.M }
func (e Exponential) Name() string   { return fmt.Sprintf("exp(%v)", e.M) }

// Bimodal draws Short with probability 1-PLong and Long with PLong.
// Fig. 10 uses Short=0.5 µs, Long=500 µs, PLong=0.005 (Shinjuku's
// high-dispersion mix); Fig. 7(c) uses a milder mix.
type Bimodal struct {
	Short, Long sim.Time
	PLong       float64
}

func (b Bimodal) Sample(r *sim.RNG) sim.Time {
	if r.Bernoulli(b.PLong) {
		return b.Long
	}
	return b.Short
}

func (b Bimodal) Mean() sim.Time {
	return sim.Time(float64(b.Short)*(1-b.PLong) + float64(b.Long)*b.PLong)
}
func (b Bimodal) Name() string {
	return fmt.Sprintf("bimodal(%v/%v,p=%g)", b.Short, b.Long, b.PLong)
}

// Mix composes weighted component distributions; weights need not be
// normalised. It models e.g. Fig. 14's 99.5 % GET/SET + 0.5 % SCAN blend
// where each component itself has spread.
type Mix struct {
	Components []ServiceDist
	Weights    []float64
	label      string
	cum        []float64
	total      float64
}

// NewMix builds a mixture. It panics if the lengths differ or no
// components are given — a mixture is always constructed from literals in
// experiment definitions, so misuse is a programming error.
func NewMix(label string, comps []ServiceDist, weights []float64) *Mix {
	if len(comps) == 0 || len(comps) != len(weights) {
		panic("dist: NewMix requires matching non-empty components and weights")
	}
	m := &Mix{Components: comps, Weights: weights, label: label}
	var c float64
	for _, w := range weights {
		if w < 0 {
			panic("dist: negative mixture weight")
		}
		c += w
		m.cum = append(m.cum, c)
	}
	if c == 0 {
		panic("dist: zero total mixture weight")
	}
	m.total = c
	return m
}

func (m *Mix) Sample(r *sim.RNG) sim.Time {
	u := r.Float64() * m.total
	for i, c := range m.cum {
		if u < c {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

func (m *Mix) Mean() sim.Time {
	var sum float64
	for i, c := range m.Components {
		sum += float64(c.Mean()) * m.Weights[i] / m.total
	}
	return sim.Time(sum)
}

func (m *Mix) Name() string { return m.label }

// SCV returns the squared coefficient of variation (variance/mean²) of a
// distribution, estimated by sampling. Used by tests and by the threshold
// calibration to characterise dispersion.
func SCV(d ServiceDist, r *sim.RNG, n int) float64 {
	if n <= 1 {
		return 0
	}
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := float64(d.Sample(r))
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return variance / (mean * mean)
}
