package dist

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ArrivalProcess generates request inter-arrival gaps. Rate changes (for
// modulated processes) are internal; callers just pull the next gap.
type ArrivalProcess interface {
	// NextGap returns the time until the next arrival.
	NextGap(r *sim.RNG) sim.Time
	// MeanRate returns the long-run arrival rate in requests/second.
	MeanRate() float64
	// Name identifies the process in reports.
	Name() string
}

// Poisson is a homogeneous Poisson arrival process with the given rate in
// requests/second — the synthetic load generator of §VII.
type Poisson struct{ Rate float64 }

func (p Poisson) NextGap(r *sim.RNG) sim.Time {
	if p.Rate <= 0 {
		return sim.Second // effectively idle
	}
	return sim.FromSeconds(r.Exp(1 / p.Rate))
}
func (p Poisson) MeanRate() float64 { return p.Rate }
func (p Poisson) Name() string      { return fmt.Sprintf("poisson(%.3gMRPS)", p.Rate/1e6) }

// MMPP is a Markov-modulated Poisson process that stands in for the
// "real-world traffic pattern" of the paper (a regression model trained on
// public-cloud arrivals [9], which captures burstiness and temporal
// correlation that plain Poisson lacks). The process cycles through
// phases; each phase p has rate BaseRate*Mult[p] and an exponentially
// distributed dwell time with mean Dwell. Phase transitions follow a
// cyclic random walk (stay/advance/jump), giving both short bursts and
// slow diurnal-like drift.
type MMPP struct {
	BaseRate float64   // requests/second at multiplier 1.0
	Mult     []float64 // per-phase rate multipliers
	Dwell    sim.Time  // mean phase dwell time
	PJump    float64   // probability a transition jumps to a random phase
	phase    int
	left     sim.Time // time left in current phase
}

// NewCloudMMPP returns an MMPP with multipliers resembling measured cloud
// traffic: a heavy normal phase, a quiet phase and occasional 2-3x bursts.
// meanRate is the long-run average rate in requests/second.
func NewCloudMMPP(meanRate float64) *MMPP {
	mult := []float64{0.55, 0.85, 1.0, 1.25, 2.2, 3.0}
	var avg float64
	for _, m := range mult {
		avg += m
	}
	avg /= float64(len(mult))
	return &MMPP{
		BaseRate: meanRate / avg,
		Mult:     mult,
		Dwell:    200 * sim.Microsecond,
		PJump:    0.25,
	}
}

func (m *MMPP) rate() float64 { return m.BaseRate * m.Mult[m.phase] }

func (m *MMPP) NextGap(r *sim.RNG) sim.Time {
	var total sim.Time
	for {
		if m.left <= 0 {
			m.advance(r)
		}
		rate := m.rate()
		if rate <= 0 {
			total += m.left
			m.left = 0
			continue
		}
		gap := sim.FromSeconds(r.Exp(1 / rate))
		if gap <= m.left {
			m.left -= gap
			return total + gap
		}
		// Phase expires before the tentative arrival: consume the phase
		// and redraw in the next phase (memorylessness makes this exact).
		total += m.left
		m.left = 0
	}
}

func (m *MMPP) advance(r *sim.RNG) {
	if r.Bernoulli(m.PJump) {
		m.phase = r.Intn(len(m.Mult))
	} else {
		m.phase = (m.phase + 1) % len(m.Mult)
	}
	m.left = sim.Time(r.Exp(float64(m.Dwell)))
	if m.left <= 0 {
		m.left = sim.Nanosecond
	}
}

func (m *MMPP) MeanRate() float64 {
	var avg float64
	for _, mm := range m.Mult {
		avg += mm
	}
	return m.BaseRate * avg / float64(len(m.Mult))
}

func (m *MMPP) Name() string {
	return fmt.Sprintf("mmpp(%.3gMRPS,%dphases)", m.MeanRate()/1e6, len(m.Mult))
}

// BurstinessIndex estimates the index of dispersion of counts (variance
// over mean of per-window arrival counts) by simulation. Poisson ≈ 1;
// bursty processes > 1. Used by tests to verify the MMPP really is
// burstier than Poisson.
func BurstinessIndex(a ArrivalProcess, r *sim.RNG, window sim.Time, windows int) float64 {
	counts := make([]float64, windows)
	var t sim.Time
	w := 0
	for w < windows {
		gap := a.NextGap(r)
		t += gap
		for t >= window {
			t -= window
			w++
			if w >= windows {
				break
			}
		}
		if w < windows {
			counts[w]++
		}
	}
	var sum, sumsq float64
	for _, c := range counts {
		sum += c
		sumsq += c * c
	}
	mean := sum / float64(windows)
	if mean == 0 {
		return 0
	}
	variance := sumsq/float64(windows) - mean*mean
	return variance / mean
}

// LoadForRate converts an offered load (utilisation fraction against k
// cores of a service distribution) into an arrival rate in req/s:
// rate = load * k / E[S].
func LoadForRate(load float64, k int, svc ServiceDist) float64 {
	meanSec := svc.Mean().Seconds()
	if meanSec <= 0 {
		return math.Inf(1)
	}
	return load * float64(k) / meanSec
}
