package dist

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestLognormalMean(t *testing.T) {
	// Distribution shape (and thus the mean parameterisation) is covered
	// by TestKSLognormal against the analytic CDF.
	d := Lognormal{M: us(1), Sigma: 1.0}
	if d.Mean() != us(1) {
		t.Fatal("analytical mean")
	}
	if d.Name() == "" {
		t.Fatal("name")
	}
	// Right-skew: median well below mean for sigma=1.
	r := sim.NewRNG(22)
	below := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if d.Sample(r) < us(1) {
			below++
		}
	}
	if frac := float64(below) / n; frac < 0.6 {
		t.Fatalf("lognormal not right-skewed: %v below mean", frac)
	}
}

func TestLognormalPositive(t *testing.T) {
	d := Lognormal{M: 10 * sim.Nanosecond, Sigma: 2.0}
	r := sim.NewRNG(23)
	for i := 0; i < 10000; i++ {
		if d.Sample(r) < 1 {
			t.Fatal("non-positive sample")
		}
	}
}

func TestParetoBoundsAndMean(t *testing.T) {
	d := Pareto{Lo: us(0.5), Hi: us(500), Alpha: 1.3}
	r := sim.NewRNG(24)
	for i := 0; i < 50000; i++ {
		v := d.Sample(r)
		if v < d.Lo || v > d.Hi {
			t.Fatalf("sample out of bounds: %v", v)
		}
	}
	got := sampleMean(d, 25, 400000)
	want := float64(d.Mean())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("pareto mean = %v, want %v", got, want)
	}
	// Heavy tail: SCV well above exponential's 1.
	if scv := SCV(d, sim.NewRNG(26), 400000); scv < 2 {
		t.Fatalf("pareto SCV = %v", scv)
	}
}

func TestParetoDegenerate(t *testing.T) {
	d := Pareto{Lo: us(1), Hi: us(1), Alpha: 1.5}
	r := sim.NewRNG(1)
	if d.Sample(r) != us(1) || d.Mean() != us(1) {
		t.Fatal("degenerate pareto")
	}
	dz := Pareto{Lo: us(1), Hi: us(10)} // Alpha zero -> defaulted
	if v := dz.Sample(r); v < dz.Lo || v > dz.Hi {
		t.Fatalf("defaulted alpha sample: %v", v)
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(1000, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(27)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		rank := z.Rank(r)
		if rank < 0 || rank >= 1000 {
			t.Fatalf("rank out of range: %d", rank)
		}
		counts[rank]++
	}
	// Rank 0 must dominate rank 99 roughly per the power law (~100x for
	// s=0.99, allow wide tolerance).
	if counts[0] < 20*counts[99] {
		t.Fatalf("zipf skew too weak: %d vs %d", counts[0], counts[99])
	}
	// Monotone-ish head.
	if counts[0] < counts[1] || counts[1] < counts[10] {
		t.Fatalf("zipf head not decreasing: %d %d %d", counts[0], counts[1], counts[10])
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Fatal("zero N should fail")
	}
	z, err := NewZipf(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if z.Rank(sim.NewRNG(1)) != 0 {
		t.Fatal("single-item zipf")
	}
}
