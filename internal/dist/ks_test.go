package dist

import (
	"math"
	"sort"
	"testing"

	"repro/internal/sim"
)

// Kolmogorov-Smirnov goodness-of-fit tests: every continuous sampler is
// checked against its analytic CDF under three fixed seeds, which tests
// the whole distribution shape rather than the first moments only. The
// critical value 1.95/sqrt(n) corresponds to a ~0.001 significance
// level; with fixed seeds the test is deterministic, so any failure
// means a sampler (or its CDF) is wrong, not bad luck.
const (
	ksN    = 50_000
	ksCrit = 1.95
)

var ksSeeds = []uint64{3, 17, 91}

// ksDistance returns the KS statistic between an empirical sample and a
// continuous CDF.
func ksDistance(samples []float64, cdf func(float64) float64) float64 {
	sort.Float64s(samples)
	n := float64(len(samples))
	var d float64
	for i, x := range samples {
		f := cdf(x)
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
	}
	return d
}

func ksCheck(t *testing.T, name string, sample func(*sim.RNG) sim.Time, cdf func(float64) float64) {
	t.Helper()
	thresh := ksCrit / math.Sqrt(ksN)
	for _, seed := range ksSeeds {
		r := sim.NewRNG(seed)
		xs := make([]float64, ksN)
		for i := range xs {
			xs[i] = float64(sample(r))
		}
		if d := ksDistance(xs, cdf); d > thresh {
			t.Errorf("%s seed %d: KS distance %.5f > %.5f", name, seed, d, thresh)
		}
	}
}

func TestKSExponential(t *testing.T) {
	d := Exponential{M: sim.Microsecond}
	m := float64(d.M)
	ksCheck(t, d.Name(), d.Sample, func(x float64) float64 {
		return 1 - math.Exp(-x/m)
	})
}

func TestKSUniform(t *testing.T) {
	d := Uniform{Lo: 500 * sim.Nanosecond, Hi: 1500 * sim.Nanosecond}
	lo, hi := float64(d.Lo), float64(d.Hi)
	ksCheck(t, d.Name(), d.Sample, func(x float64) float64 {
		switch {
		case x < lo:
			return 0
		case x > hi:
			return 1
		default:
			return (x - lo) / (hi - lo)
		}
	})
}

func TestKSLognormal(t *testing.T) {
	for _, sigma := range []float64{0.5, 1.0} {
		d := Lognormal{M: sim.Microsecond, Sigma: sigma}
		mu := d.mu()
		ksCheck(t, d.Name(), d.Sample, func(x float64) float64 {
			if x <= 0 {
				return 0
			}
			z := (math.Log(x) - mu) / sigma
			return 0.5 * (1 + math.Erf(z/math.Sqrt2))
		})
	}
}

func TestKSPareto(t *testing.T) {
	d := Pareto{Lo: 500 * sim.Nanosecond, Hi: 50 * sim.Microsecond, Alpha: 1.5}
	lo, hi, a := float64(d.Lo), float64(d.Hi), d.Alpha
	norm := 1 - math.Pow(lo/hi, a)
	ksCheck(t, d.Name(), d.Sample, func(x float64) float64 {
		switch {
		case x < lo:
			return 0
		case x >= hi:
			return 1
		default:
			return (1 - math.Pow(lo/x, a)) / norm
		}
	})
}

func TestKSPoissonGaps(t *testing.T) {
	p := Poisson{Rate: 1e6} // 1 req/us
	ksCheck(t, "poisson-gaps", p.NextGap, func(x float64) float64 {
		return 1 - math.Exp(-p.Rate*x/float64(sim.Second))
	})
}
