package dist

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Lognormal is a log-normally distributed service time parameterised by
// its own mean and sigma (the shape of the underlying normal). RPC
// service times in production systems are commonly log-normal-ish:
// right-skewed with occasional multi-x outliers.
type Lognormal struct {
	M     sim.Time // distribution mean
	Sigma float64  // underlying normal's sigma (shape); 0.5-1.5 typical
}

// mu derives the underlying normal's mean so that E[X] = M:
// E[X] = exp(mu + sigma^2/2).
func (l Lognormal) mu() float64 {
	return math.Log(float64(l.M)) - l.Sigma*l.Sigma/2
}

func (l Lognormal) Sample(r *sim.RNG) sim.Time {
	v := r.Lognorm(l.mu(), l.Sigma)
	if v < 1 {
		v = 1
	}
	return sim.Time(v)
}

func (l Lognormal) Mean() sim.Time { return l.M }

func (l Lognormal) Name() string {
	return fmt.Sprintf("lognormal(%v,s=%.2f)", l.M, l.Sigma)
}

// Pareto is a bounded Pareto service time with tail index Alpha and
// minimum Lo, truncated at Hi — the classic heavy-tail model for
// workloads where a tiny fraction of requests dominates total work.
type Pareto struct {
	Lo, Hi sim.Time
	Alpha  float64 // tail index; 1 < Alpha < 2 is heavy-tailed
}

func (p Pareto) Sample(r *sim.RNG) sim.Time {
	lo, hi := float64(p.Lo), float64(p.Hi)
	if hi <= lo {
		return p.Lo
	}
	a := p.Alpha
	if a <= 0 {
		a = 1.5
	}
	// Inverse-CDF sampling of the bounded Pareto.
	u := r.Float64()
	la, ha := math.Pow(lo, a), math.Pow(hi, a)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/a)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return sim.Time(x)
}

func (p Pareto) Mean() sim.Time {
	lo, hi := float64(p.Lo), float64(p.Hi)
	if hi <= lo {
		return p.Lo
	}
	a := p.Alpha
	if a <= 0 {
		a = 1.5
	}
	if a == 1 {
		return sim.Time(lo * hi / (hi - lo) * math.Log(hi/lo))
	}
	// Bounded Pareto mean:
	// E[X] = a*lo^a/(a-1) * (lo^(1-a) - hi^(1-a)) / (1 - (lo/hi)^a)
	la, ha := math.Pow(lo, a), math.Pow(hi, a)
	num := a * la / (a - 1) * (math.Pow(lo, 1-a) - math.Pow(hi, 1-a))
	den := 1 - la/ha
	return sim.Time(num / den)
}

func (p Pareto) Name() string {
	return fmt.Sprintf("pareto(%v..%v,a=%.2f)", p.Lo, p.Hi, p.Alpha)
}

// Zipf draws integer ranks in [0, N) with popularity ~ 1/(rank+1)^S —
// the standard key-popularity model for KV workloads. It is not a
// ServiceDist; MICA-style applications use it to pick keys.
type Zipf struct {
	N int
	S float64

	cum []float64
}

// NewZipf precomputes the sampling table. N must be positive; S of 0.99
// is the YCSB default.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dist: Zipf over %d items", n)
	}
	z := &Zipf{N: n, S: s, cum: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z, nil
}

// Rank draws one rank (0 = most popular).
func (z *Zipf) Rank(r *sim.RNG) int {
	u := r.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, z.N-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
