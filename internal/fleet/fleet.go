// Package fleet is the deterministic cross-run parallel harness: it
// schedules independent simulation runs onto a bounded worker pool and
// gathers results by input index, so the emitted tables are
// byte-identical to serial execution.
//
// The determinism contract (DESIGN §7) makes each run a pure function
// of (Config, Workload, seed) with a private sim.Engine and RNG tree,
// which is exactly the property that makes cross-run parallelism safe:
// nothing is shared between runs, and nothing about the OS scheduler's
// interleaving can leak into a result. The concurrency lives strictly
// BETWEEN runs — a single engine remains single-goroutine, enforced by
// the simsync analyzer, for which this package is the one annotated
// boundary (//altolint:fleet-boundary below).
package fleet

//altolint:fleet-boundary cross-run worker pool; each run owns a private engine and RNG tree, results gather by input index

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/server"
)

// parOverride holds the -par override; 0 means "use GOMAXPROCS".
var parOverride atomic.Int64

// Parallelism returns the worker-pool width used by Map: the override
// set by SetParallelism when positive, otherwise GOMAXPROCS.
func Parallelism() int {
	if p := int(parOverride.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism overrides the pool width (the -par flag). n <= 0
// restores the GOMAXPROCS default. SetParallelism(1) forces fully
// serial execution on the caller's goroutine — no pool at all.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parOverride.Store(int64(n))
}

// Map runs fn(0), ..., fn(n-1) on a bounded worker pool and returns the
// results in input order. Every fn call must be independent of the
// others (a pure function of i); fleet guarantees nothing about
// execution order. All n calls run even if some fail; the returned
// error is the lowest-index one, matching what serial first-error
// iteration would report, so error output is deterministic too.
//
// With Parallelism() == 1 (or n == 1) fn runs inline on the caller's
// goroutine. Nested Map calls never deadlock — each call brings its own
// workers — but they multiply goroutine counts, so parallelise the
// innermost grid only.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapWith(n, func() struct{} { return struct{}{} },
		func(i int, _ struct{}) (T, error) { return fn(i) })
}

// MapWith is Map with per-worker context: newCtx runs once on each pool
// worker (once total when execution is serial) and the resulting value
// is passed to every fn call that worker executes. The context is how
// workers own reusable scratch — e.g. a server.Scratch whose arena
// slabs stay warm across the runs a worker picks up — without any
// sharing across the pool boundary. fn must not let the context (or
// anything reachable from it that fn may mutate) escape into its
// result; results must remain pure functions of i.
func MapWith[T, C any](n int, newCtx func() C, fn func(i int, ctx C) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	par := Parallelism()
	if par > n {
		par = n
	}
	if par <= 1 {
		ctx := newCtx()
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i, ctx)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx := newCtx()
				for {
					i := int(next.Add(1))
					if i >= n {
						return
					}
					out[i], errs[i] = fn(i, ctx)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Runs executes server.Run for each (Config, Workload) pair in
// parallel and returns the results in input order. cfgs and wls must
// have equal length. This is the typed convenience for seed sweeps and
// parameter grids whose per-run cost dwarfs workload construction; use
// Map directly when workload construction itself should run on the
// workers (e.g. per-load MICA store builds).
func Runs(cfgs []server.Config, wls []server.Workload) ([]*server.Result, error) {
	if len(cfgs) != len(wls) {
		panic("fleet: Runs with mismatched config/workload lengths")
	}
	return MapWith(len(cfgs), server.NewScratch,
		func(i int, sc *server.Scratch) (*server.Result, error) {
			return server.RunWith(sc, cfgs[i], wls[i])
		})
}
