package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func TestMapGathersByIndex(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	rng := rand.New(rand.NewSource(1))
	delays := make([]time.Duration, 64)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	out, err := Map(len(delays), func(i int) (int, error) {
		time.Sleep(delays[i]) // shuffle completion order
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapDeterministicError(t *testing.T) {
	defer SetParallelism(0)
	// The reported error must be the lowest-index one regardless of
	// completion order — the same error serial iteration would hit first.
	for _, par := range []int{1, 8} {
		SetParallelism(par)
		_, err := Map(16, func(i int) (int, error) {
			if i == 3 || i == 7 || i == 12 {
				time.Sleep(time.Duration(16-i) * time.Millisecond)
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("par %d: err = %v, want lowest-index job 3", par, err)
		}
	}
}

func TestMapEmptyAndSerial(t *testing.T) {
	defer SetParallelism(0)
	out, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty Map: %v, %v", out, err)
	}
	SetParallelism(1)
	calls := 0
	out, err = Map(5, func(i int) (int, error) { calls++; return i, nil })
	if err != nil || len(out) != 5 || calls != 5 {
		t.Fatalf("serial Map: out=%v calls=%d err=%v", out, calls, err)
	}
}

func TestParallelismOverride(t *testing.T) {
	defer SetParallelism(0)
	if Parallelism() <= 0 {
		t.Fatal("default parallelism must be positive")
	}
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("override = %d", Parallelism())
	}
	SetParallelism(-1)
	if Parallelism() <= 0 {
		t.Fatal("negative override must restore the default")
	}
}

func TestRunsMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths must panic")
		}
	}()
	_, _ = Runs(make([]server.Config, 2), make([]server.Workload, 1))
}

// testSweep runs a small latency-throughput sweep through Map with a
// per-job pre-sleep that shuffles worker completion order, and returns
// the load points exactly as experiments.sweep builds them.
func testSweep(t *testing.T, seed uint64, delays []time.Duration) []server.LoadPoint {
	t.Helper()
	svc := dist.Exponential{M: sim.Microsecond}
	loads := []float64{0.3, 0.6, 0.9}
	capacity := 4 / svc.Mean().Seconds()
	pts, err := Map(len(loads), func(i int) (server.LoadPoint, error) {
		if delays != nil {
			time.Sleep(delays[i])
		}
		res, err := server.Run(server.Config{
			Kind: server.SchedRSS, Cores: 4, Stack: rpcproto.StackNanoRPC,
			Steer: nic.SteerConnection, Seed: seed,
		}, server.Workload{
			Arrivals: dist.Poisson{Rate: loads[i] * capacity},
			Service:  svc, N: 2000, Warmup: 200,
		})
		if err != nil {
			return server.LoadPoint{}, err
		}
		return server.LoadPoint{
			OfferedRPS: res.OfferedRPS,
			P99:        res.Summary.P99,
			VioRatio:   res.Summary.VioRatio,
			DoneRPS:    res.DoneRPS,
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestParallelMatchesSerial is the determinism property test: for
// several seeds, a parallel Map with randomly shuffled worker
// completion order must yield the same []server.LoadPoint —
// bit-identical floats included — as strictly serial execution.
func TestParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	rng := rand.New(rand.NewSource(42))
	for _, seed := range []uint64{1, 2, 3} {
		SetParallelism(1)
		serial := testSweep(t, seed, nil)
		for trial := 0; trial < 3; trial++ {
			delays := []time.Duration{
				time.Duration(rng.Intn(5)) * time.Millisecond,
				time.Duration(rng.Intn(5)) * time.Millisecond,
				time.Duration(rng.Intn(5)) * time.Millisecond,
			}
			SetParallelism(8)
			parallel := testSweep(t, seed, delays)
			if len(parallel) != len(serial) {
				t.Fatalf("seed %d: length %d vs %d", seed, len(parallel), len(serial))
			}
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("seed %d point %d: serial %+v != parallel %+v",
						seed, i, serial[i], parallel[i])
				}
			}
		}
	}
}

// TestRunsMatchesSerial covers the typed entry point the seed sweeps
// use: parallel Runs over differing seeds equals one-at-a-time Run.
func TestRunsMatchesSerial(t *testing.T) {
	defer SetParallelism(0)
	svc := dist.Exponential{M: sim.Microsecond}
	mk := func(seed uint64) (server.Config, server.Workload) {
		return server.Config{
				Kind: server.SchedRSS, Cores: 4, Stack: rpcproto.StackNanoRPC,
				Steer: nic.SteerConnection, Seed: seed,
			}, server.Workload{
				Arrivals: dist.Poisson{Rate: 0.7 * 4 / svc.Mean().Seconds()},
				Service:  svc, N: 2000, Warmup: 200,
			}
	}
	var cfgs []server.Config
	var wls []server.Workload
	for seed := uint64(1); seed <= 6; seed++ {
		c, w := mk(seed)
		cfgs = append(cfgs, c)
		wls = append(wls, w)
	}
	SetParallelism(4)
	par, err := Runs(cfgs, wls)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(1)
	for i := range cfgs {
		ser, err := server.Run(cfgs[i], wls[i])
		if err != nil {
			t.Fatal(err)
		}
		if ser.Summary.P99 != par[i].Summary.P99 || ser.Duration != par[i].Duration ||
			ser.Summary.VioRatio != par[i].Summary.VioRatio {
			t.Fatalf("run %d diverged: serial p99 %v dur %v vs parallel p99 %v dur %v",
				i, ser.Summary.P99, ser.Duration, par[i].Summary.P99, par[i].Duration)
		}
	}
}

var errSentinel = errors.New("sentinel")

func TestMapErrorReturnsNil(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	out, err := Map(8, func(i int) (int, error) {
		if i == 5 {
			return 0, errSentinel
		}
		return i, nil
	})
	if !errors.Is(err, errSentinel) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Fatalf("partial results leaked: %v", out)
	}
}
