// Package mica implements an in-memory key-value store modelled on MICA
// (Lim et al., NSDI'14), the end-to-end application of §IX: EREW-mode
// partitioned storage where each partition pairs a lossy bucketized hash
// index with a circular append log. GET/SET operations execute for real
// over real bytes; the simulator separately charges a modelled on-CPU
// duration per operation (OpCost).
package mica

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Config sizes the store. The paper's defaults: 2M hash buckets and a
// 4 GB circular log overall; tests use much smaller instances.
type Config struct {
	Partitions       int   // EREW key partitions (one per manager thread)
	BucketsPerPart   int   // hash buckets per partition (rounded up to a power of two)
	EntriesPerBucket int   // index slots per bucket
	LogBytesPerPart  int64 // circular log capacity per partition
}

// DefaultConfig returns a laptop-scale configuration preserving MICA's
// structure (lossy index + circular log).
func DefaultConfig(partitions int) Config {
	return Config{
		Partitions:       partitions,
		BucketsPerPart:   1 << 15,
		EntriesPerBucket: 8,
		LogBytesPerPart:  32 << 20,
	}
}

// Stats counts store activity.
type Stats struct {
	Gets, GetHits  uint64
	Sets           uint64
	IndexEvictions uint64 // bucket-full replacements (lossy index)
	LogRecycles    uint64 // entries invalidated by log wraparound on read
}

type indexEntry struct {
	tag    uint16 // partial key hash, 0 means empty
	offset uint64 // log offset of the entry
}

// entry layout in the log: keyLen(2) valLen(4) key val.
const entryHeader = 6

type partition struct {
	mask  uint64
	perB  int
	index []indexEntry
	log   []byte
	head  uint64 // oldest complete entry still resident
	tail  uint64 // monotonically increasing append position
	stats Stats
}

// Store is an EREW-partitioned MICA instance. Each partition is owned by
// exactly one manager thread (no concurrency control, matching EREW);
// the Store itself is not safe for concurrent writers to one partition.
type Store struct {
	cfg   Config
	parts []*partition
}

// NewStore builds a store. Errors on nonsensical sizes.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Partitions < 1 {
		return nil, errors.New("mica: need at least one partition")
	}
	if cfg.BucketsPerPart < 1 || cfg.EntriesPerBucket < 1 {
		return nil, errors.New("mica: need positive index dimensions")
	}
	if cfg.LogBytesPerPart < 1024 {
		return nil, errors.New("mica: log too small")
	}
	buckets := 1
	for buckets < cfg.BucketsPerPart {
		buckets <<= 1
	}
	s := &Store{cfg: cfg}
	for i := 0; i < cfg.Partitions; i++ {
		s.parts = append(s.parts, &partition{
			mask:  uint64(buckets - 1),
			perB:  cfg.EntriesPerBucket,
			index: make([]indexEntry, buckets*cfg.EntriesPerBucket),
			log:   make([]byte, cfg.LogBytesPerPart),
		})
	}
	return s, nil
}

// Partitions returns the partition count.
func (s *Store) Partitions() int { return len(s.parts) }

// Partition returns the EREW owner partition of a key.
func (s *Store) Partition(key []byte) int {
	return int(hash64(key) % uint64(len(s.parts)))
}

// Set stores key -> value in the key's partition.
func (s *Store) Set(key, value []byte) error {
	return s.parts[s.Partition(key)].set(key, value)
}

// Get fetches the value for key; ok is false on miss (never stored, index
// entry evicted, or log entry recycled — MICA is lossy by design).
func (s *Store) Get(key []byte) (value []byte, ok bool) {
	return s.parts[s.Partition(key)].get(key)
}

// Scan walks up to n live log entries of the key's partition, invoking fn
// for each (the long-running SCAN of §IX-D). It returns the number of
// entries visited.
func (s *Store) Scan(partition, n int, fn func(key, value []byte)) int {
	return s.parts[partition].scan(n, fn)
}

// Stats returns the aggregate counters across partitions.
func (s *Store) Stats() Stats {
	var out Stats
	for _, p := range s.parts {
		out.Gets += p.stats.Gets
		out.GetHits += p.stats.GetHits
		out.Sets += p.stats.Sets
		out.IndexEvictions += p.stats.IndexEvictions
		out.LogRecycles += p.stats.LogRecycles
	}
	return out
}

func (p *partition) bucket(h uint64) []indexEntry {
	b := int(h & p.mask)
	return p.index[b*p.perB : (b+1)*p.perB]
}

func tagOf(h uint64) uint16 {
	t := uint16(h >> 48)
	if t == 0 {
		t = 1 // 0 marks an empty slot
	}
	return t
}

func (p *partition) set(key, value []byte) error {
	size := entryHeader + len(key) + len(value)
	if int64(size) > int64(len(p.log)) {
		return fmt.Errorf("mica: entry of %d bytes exceeds log capacity", size)
	}
	p.reserve(uint64(size))
	off := p.tail
	var hdr [entryHeader]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(key)))
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(value)))
	p.append(hdr[:])
	p.append(key)
	p.append(value)

	h := hash64(key)
	tag := tagOf(h)
	b := p.bucket(h)
	// Prefer an existing slot for this tag (update), then an empty slot,
	// else evict the entry with the oldest offset (lossy index).
	victim := 0
	for i := range b {
		if b[i].tag == tag {
			if k, _, ok := p.readAt(b[i].offset); ok && string(k) == string(key) {
				victim = i
				break
			}
		}
		if b[i].tag == 0 {
			victim = i
			break
		}
		if b[i].offset < b[victim].offset {
			victim = i
		}
	}
	if b[victim].tag != 0 {
		p.stats.IndexEvictions++
	}
	b[victim] = indexEntry{tag: tag, offset: off}
	p.stats.Sets++
	return nil
}

func (p *partition) get(key []byte) ([]byte, bool) {
	p.stats.Gets++
	h := hash64(key)
	tag := tagOf(h)
	for _, e := range p.bucket(h) {
		if e.tag != tag {
			continue
		}
		k, v, ok := p.readAt(e.offset)
		if !ok {
			p.stats.LogRecycles++
			continue
		}
		if string(k) == string(key) {
			p.stats.GetHits++
			out := make([]byte, len(v))
			copy(out, v)
			return out, true
		}
	}
	return nil, false
}

// reserve advances head past whole entries until size bytes can be
// appended without clobbering the oldest resident entry. Called before
// the append, while the header bytes at head are still intact.
func (p *partition) reserve(size uint64) {
	logSize := uint64(len(p.log))
	for p.tail+size-p.head > logSize {
		var hdr [entryHeader]byte
		p.copyOut(hdr[:], p.head)
		klen := uint64(binary.LittleEndian.Uint16(hdr[0:2]))
		vlen := uint64(binary.LittleEndian.Uint32(hdr[2:6]))
		p.head += entryHeader + klen + vlen
		if p.head > p.tail { // corrupt walk guard; cannot happen with intact heads
			p.head = p.tail
			return
		}
	}
}

// readAt decodes the entry at absolute log offset off. ok is false when
// the entry has been overwritten by log wraparound.
func (p *partition) readAt(off uint64) (key, value []byte, ok bool) {
	if off < p.head || off+entryHeader > p.tail {
		return nil, nil, false
	}
	var hdr [entryHeader]byte
	p.copyOut(hdr[:], off)
	klen := uint64(binary.LittleEndian.Uint16(hdr[0:2]))
	vlen := uint64(binary.LittleEndian.Uint32(hdr[2:6]))
	end := off + entryHeader + klen + vlen
	if end > p.tail {
		return nil, nil, false
	}
	key = make([]byte, klen)
	value = make([]byte, vlen)
	p.copyOut(key, off+entryHeader)
	p.copyOut(value, off+entryHeader+klen)
	return key, value, true
}

func (p *partition) scan(n int, fn func(key, value []byte)) int {
	visited := 0
	off := p.head
	for off < p.tail && visited < n {
		k, v, ok := p.readAt(off)
		if !ok {
			break
		}
		if fn != nil {
			fn(k, v)
		}
		visited++
		off += entryHeader + uint64(len(k)) + uint64(len(v))
	}
	return visited
}

func (p *partition) append(b []byte) {
	logSize := uint64(len(p.log))
	for _, c := range b {
		p.log[p.tail%logSize] = c
		p.tail++
	}
}

func (p *partition) copyOut(dst []byte, off uint64) {
	logSize := uint64(len(p.log))
	for i := range dst {
		dst[i] = p.log[(off+uint64(i))%logSize]
	}
}

// hash64 is FNV-1a, adequate avalanche for partitioning and tags.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
