package mica

import (
	"repro/internal/fabric"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// OpCost models the on-CPU duration of MICA operations for the simulator,
// matching the paper's description (§IX-B): a SET loads the value from
// the LLC or memory and writes it to the DRAM-resident log; a GET fetches
// the value from the log and writes it to the response buffer, usually
// taking longer than a SET. Scan visits ScanEntries log entries.
type OpCost struct {
	Cost        fabric.CostModel
	GetBase     sim.Time // index probe + control
	SetBase     sim.Time
	PerByte     sim.Time // copy bandwidth cost per payload byte
	ScanEntries int      // entries visited by one SCAN
	PerEntry    sim.Time // per-entry SCAN cost
	// RemotePenalty is charged when an EREW request executes on a worker
	// after migration, requiring a remote cache access to the key's owner
	// partition (§IX-C: the application-level concurrency overhead of
	// migrated RPCs).
	RemotePenalty sim.Time
}

// DefaultOpCost returns costs tuned to the paper's anchor points: ~50 ns
// GET/SET for small cached values (Fig. 14's nanoRPC workload) and
// ~50 µs SCANs.
func DefaultOpCost(cost fabric.CostModel) OpCost {
	return OpCost{
		Cost:          cost,
		GetBase:       38 * sim.Nanosecond,
		SetBase:       30 * sim.Nanosecond,
		PerByte:       20 * sim.Picosecond,
		ScanEntries:   2000,
		PerEntry:      25 * sim.Nanosecond,
		RemotePenalty: cost.LLCAccess,
	}
}

// Time returns the modelled duration of op touching payload bytes.
// migrated applies the EREW remote-access penalty.
func (o OpCost) Time(op rpcproto.Op, payload int, migrated bool) sim.Time {
	var d sim.Time
	switch op {
	case rpcproto.OpGet:
		d = o.GetBase + sim.Time(payload)*o.PerByte
	case rpcproto.OpSet:
		d = o.SetBase + sim.Time(payload)*o.PerByte
	case rpcproto.OpScan:
		d = sim.Time(o.ScanEntries) * o.PerEntry
	default:
		d = o.GetBase
	}
	if migrated {
		d += o.RemotePenalty
	}
	return d
}

// PhaseCost is the default 4-phase decomposition of one MICA operation
// (DESIGN.md §15): request parse, index probe, log data access, and
// response build. Total() sums exactly to Time() for the same inputs —
// the breakdown re-partitions the modelled duration, it never changes
// it (locked by the agreement tests).
type PhaseCost struct {
	Parse   sim.Time // request header decode + key extraction
	Index   sim.Time // hash-index probe (plus the EREW remote penalty when migrated)
	Data    sim.Time // log read/write: the payload- and scan-proportional part
	Respond sim.Time // response buffer build
}

// Total returns the summed phase durations.
func (p PhaseCost) Total() sim.Time { return p.Parse + p.Index + p.Data + p.Respond }

// Phases splits Time(op, payload, migrated) across the four phases.
// The base (payload-independent) cost splits 1/4 parse, 1/2 index, and
// the remainder respond — integer remainder arithmetic so the parts
// always sum back exactly; per-byte and per-entry work is all data
// phase; the EREW remote penalty lands on the index probe, where the
// remote cache access happens.
func (o OpCost) Phases(op rpcproto.Op, payload int, migrated bool) PhaseCost {
	var base, data sim.Time
	switch op {
	case rpcproto.OpGet:
		base = o.GetBase
		data = sim.Time(payload) * o.PerByte
	case rpcproto.OpSet:
		base = o.SetBase
		data = sim.Time(payload) * o.PerByte
	case rpcproto.OpScan:
		// A SCAN is dominated by the log walk; carve the first visited
		// entry's cost into parse/index/respond shares so the chain
		// still has non-trivial boundaries.
		base = o.PerEntry
		data = sim.Time(o.ScanEntries)*o.PerEntry - base
		if data < 0 {
			base, data = 0, sim.Time(o.ScanEntries)*o.PerEntry
		}
	default:
		base = o.GetBase
	}
	p := PhaseCost{
		Parse: base / 4,
		Index: base / 2,
		Data:  data,
	}
	p.Respond = base - p.Parse - p.Index
	if migrated {
		p.Index += o.RemotePenalty
	}
	return p
}
