package mica

import (
	"repro/internal/fabric"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// OpCost models the on-CPU duration of MICA operations for the simulator,
// matching the paper's description (§IX-B): a SET loads the value from
// the LLC or memory and writes it to the DRAM-resident log; a GET fetches
// the value from the log and writes it to the response buffer, usually
// taking longer than a SET. Scan visits ScanEntries log entries.
type OpCost struct {
	Cost        fabric.CostModel
	GetBase     sim.Time // index probe + control
	SetBase     sim.Time
	PerByte     sim.Time // copy bandwidth cost per payload byte
	ScanEntries int      // entries visited by one SCAN
	PerEntry    sim.Time // per-entry SCAN cost
	// RemotePenalty is charged when an EREW request executes on a worker
	// after migration, requiring a remote cache access to the key's owner
	// partition (§IX-C: the application-level concurrency overhead of
	// migrated RPCs).
	RemotePenalty sim.Time
}

// DefaultOpCost returns costs tuned to the paper's anchor points: ~50 ns
// GET/SET for small cached values (Fig. 14's nanoRPC workload) and
// ~50 µs SCANs.
func DefaultOpCost(cost fabric.CostModel) OpCost {
	return OpCost{
		Cost:          cost,
		GetBase:       38 * sim.Nanosecond,
		SetBase:       30 * sim.Nanosecond,
		PerByte:       20 * sim.Picosecond,
		ScanEntries:   2000,
		PerEntry:      25 * sim.Nanosecond,
		RemotePenalty: cost.LLCAccess,
	}
}

// Time returns the modelled duration of op touching payload bytes.
// migrated applies the EREW remote-access penalty.
func (o OpCost) Time(op rpcproto.Op, payload int, migrated bool) sim.Time {
	var d sim.Time
	switch op {
	case rpcproto.OpGet:
		d = o.GetBase + sim.Time(payload)*o.PerByte
	case rpcproto.OpSet:
		d = o.SetBase + sim.Time(payload)*o.PerByte
	case rpcproto.OpScan:
		d = sim.Time(o.ScanEntries) * o.PerEntry
	default:
		d = o.GetBase
	}
	if migrated {
		d += o.RemotePenalty
	}
	return d
}
