package mica

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func smallStore(t *testing.T, partitions int) *Store {
	t.Helper()
	s, err := NewStore(Config{
		Partitions:       partitions,
		BucketsPerPart:   64,
		EntriesPerBucket: 8,
		LogBytesPerPart:  1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetGetRoundTrip(t *testing.T) {
	s := smallStore(t, 4)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v := []byte(fmt.Sprintf("value-%04d", i))
		if err := s.Set(k, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		v, ok := s.Get(k)
		if !ok {
			t.Fatalf("miss for %s", k)
		}
		if string(v) != fmt.Sprintf("value-%04d", i) {
			t.Fatalf("wrong value: %s", v)
		}
	}
	st := s.Stats()
	if st.Sets != 100 || st.GetHits != 100 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGetMiss(t *testing.T) {
	s := smallStore(t, 1)
	if _, ok := s.Get([]byte("nope")); ok {
		t.Fatal("phantom hit")
	}
}

func TestOverwrite(t *testing.T) {
	s := smallStore(t, 1)
	k := []byte("k")
	s.Set(k, []byte("v1"))
	s.Set(k, []byte("v2"))
	v, ok := s.Get(k)
	if !ok || string(v) != "v2" {
		t.Fatalf("got %q ok=%v", v, ok)
	}
}

func TestPartitionStability(t *testing.T) {
	s := smallStore(t, 8)
	k := []byte("some-key")
	p := s.Partition(k)
	for i := 0; i < 10; i++ {
		if s.Partition(k) != p {
			t.Fatal("partition not stable")
		}
	}
	if s.Partitions() != 8 {
		t.Fatal("partitions")
	}
	// Keys spread across partitions.
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[s.Partition([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("partition %d has %d of 8000", i, c)
		}
	}
}

func TestLogWraparoundIsLossyNotCorrupt(t *testing.T) {
	// Fill a 64KB log several times over; old keys may miss but must
	// never return wrong bytes.
	s := smallStore(t, 1)
	val := make([]byte, 512)
	const n = 1000 // ~520KB total, 8x the log
	for i := 0; i < n; i++ {
		for j := range val {
			val[j] = byte(i)
		}
		if err := s.Set([]byte(fmt.Sprintf("key-%05d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	hits := 0
	for i := 0; i < n; i++ {
		v, ok := s.Get([]byte(fmt.Sprintf("key-%05d", i)))
		if !ok {
			continue
		}
		hits++
		for _, b := range v {
			if b != byte(i) {
				t.Fatalf("corrupt value for key %d", i)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no hits at all after wraparound")
	}
	if hits == n {
		t.Fatal("lossy store retained everything despite 8x overflow")
	}
	// Recent keys must survive.
	if _, ok := s.Get([]byte(fmt.Sprintf("key-%05d", n-1))); !ok {
		t.Fatal("most recent key evicted")
	}
}

func TestIndexEviction(t *testing.T) {
	// Tiny index (1 bucket x 2 entries) forces evictions.
	s, err := NewStore(Config{Partitions: 1, BucketsPerPart: 1, EntriesPerBucket: 2, LogBytesPerPart: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	if s.Stats().IndexEvictions == 0 {
		t.Fatal("expected index evictions")
	}
	// The newest key is always retrievable.
	if _, ok := s.Get([]byte("k9")); !ok {
		t.Fatal("newest key lost")
	}
}

func TestScan(t *testing.T) {
	s := smallStore(t, 2)
	for i := 0; i < 50; i++ {
		s.Set([]byte(fmt.Sprintf("key-%02d", i)), []byte("value"))
	}
	seen := 0
	n := s.Scan(0, 1000, func(k, v []byte) {
		seen++
		if string(v) != "value" {
			t.Fatalf("scan got %q", v)
		}
	})
	if n != seen || n == 0 {
		t.Fatalf("scan visited %d (cb %d)", n, seen)
	}
	// Bounded scan.
	if got := s.Scan(0, 3, nil); got > 3 {
		t.Fatalf("bounded scan visited %d", got)
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	s, _ := NewStore(Config{Partitions: 1, BucketsPerPart: 4, EntriesPerBucket: 2, LogBytesPerPart: 2048})
	if err := s.Set([]byte("k"), make([]byte, 4096)); err == nil {
		t.Fatal("oversize set should fail")
	}
}

func TestNewStoreValidation(t *testing.T) {
	bad := []Config{
		{},
		{Partitions: 1},
		{Partitions: 1, BucketsPerPart: 4, EntriesPerBucket: 1, LogBytesPerPart: 10},
	}
	for i, cfg := range bad {
		if _, err := NewStore(cfg); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
}

func TestGetAfterSetProperty(t *testing.T) {
	// Property: immediately after Set(k,v), Get(k) returns v (the newest
	// write wins; no interleaving writers in EREW).
	s := smallStore(t, 4)
	f := func(key, val []byte) bool {
		if len(key) == 0 || len(key) > 64 || len(val) > 1024 {
			return true // outside supported shape
		}
		if err := s.Set(key, val); err != nil {
			return false
		}
		got, ok := s.Get(key)
		if !ok {
			return false
		}
		return string(got) == string(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOpCost(t *testing.T) {
	oc := DefaultOpCost(fabric.Default())
	get := oc.Time(rpcproto.OpGet, 512, false)
	set := oc.Time(rpcproto.OpSet, 512, false)
	scan := oc.Time(rpcproto.OpScan, 0, false)
	// Paper anchors: ~50ns GET/SET, ~50us SCAN.
	if get < 40*sim.Nanosecond || get > 70*sim.Nanosecond {
		t.Fatalf("GET = %v", get)
	}
	if set >= get {
		t.Fatalf("SET (%v) should be cheaper than GET (%v)", set, get)
	}
	if scan < 40*sim.Microsecond || scan > 60*sim.Microsecond {
		t.Fatalf("SCAN = %v", scan)
	}
	// Migrated EREW requests pay a remote access.
	if oc.Time(rpcproto.OpGet, 512, true) <= get {
		t.Fatal("remote penalty missing")
	}
	if oc.Time(rpcproto.OpEcho, 0, false) != oc.GetBase {
		t.Fatal("echo fallback")
	}
}

func BenchmarkSet(b *testing.B) {
	s, _ := NewStore(DefaultConfig(4))
	val := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set([]byte(fmt.Sprintf("key-%07d", i%100000)), val)
	}
}

func BenchmarkGet(b *testing.B) {
	s, _ := NewStore(DefaultConfig(4))
	val := make([]byte, 512)
	for i := 0; i < 100000; i++ {
		s.Set([]byte(fmt.Sprintf("key-%07d", i)), val)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key-%07d", i%100000)))
	}
}
