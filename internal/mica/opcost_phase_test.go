package mica

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// TestPhasesSumToTime locks the satellite contract: the 4-phase
// breakdown re-partitions Time() exactly — for every op, payload size,
// and migration state, including cost models with awkward (non-divisible)
// bases.
func TestPhasesSumToTime(t *testing.T) {
	costs := []OpCost{
		DefaultOpCost(fabric.Default()),
		{
			Cost:          fabric.Default(),
			GetBase:       37*sim.Nanosecond + 13*sim.Picosecond, // indivisible by 4
			SetBase:       29*sim.Nanosecond + 3*sim.Picosecond,
			PerByte:       17 * sim.Picosecond,
			ScanEntries:   999,
			PerEntry:      23*sim.Nanosecond + 7*sim.Picosecond,
			RemotePenalty: 11 * sim.Nanosecond,
		},
		{ScanEntries: 0, PerEntry: 25 * sim.Nanosecond}, // SCAN carve-out larger than total
	}
	ops := []rpcproto.Op{rpcproto.OpGet, rpcproto.OpSet, rpcproto.OpScan, rpcproto.Op(200)}
	payloads := []int{0, 1, 64, 512, 4096, 1 << 20}
	for ci, o := range costs {
		for _, op := range ops {
			for _, pl := range payloads {
				for _, mig := range []bool{false, true} {
					want := o.Time(op, pl, mig)
					p := o.Phases(op, pl, mig)
					if got := p.Total(); got != want {
						t.Errorf("cost %d op=%v payload=%d migrated=%v: Phases total %v != Time %v (%+v)",
							ci, op, pl, mig, got, want, p)
					}
				}
			}
		}
	}
}

// TestPhasesShape checks the intended placement: payload work in the
// data phase, the remote penalty on the index probe, no negative parts.
func TestPhasesShape(t *testing.T) {
	o := DefaultOpCost(fabric.Default())

	get := o.Phases(rpcproto.OpGet, 512, false)
	if get.Data != 512*o.PerByte {
		t.Errorf("GET data phase %v, want %v", get.Data, 512*o.PerByte)
	}
	if get.Parse <= 0 || get.Index <= 0 || get.Respond <= 0 {
		t.Errorf("GET phases must all be positive: %+v", get)
	}

	plain := o.Phases(rpcproto.OpSet, 64, false)
	mig := o.Phases(rpcproto.OpSet, 64, true)
	if mig.Index-plain.Index != o.RemotePenalty {
		t.Errorf("migration penalty on index: got %v, want %v", mig.Index-plain.Index, o.RemotePenalty)
	}
	if mig.Parse != plain.Parse || mig.Data != plain.Data || mig.Respond != plain.Respond {
		t.Errorf("migration must only touch the index phase: %+v vs %+v", mig, plain)
	}

	scan := o.Phases(rpcproto.OpScan, 0, false)
	for _, d := range []sim.Time{scan.Parse, scan.Index, scan.Data, scan.Respond} {
		if d < 0 {
			t.Errorf("negative SCAN phase: %+v", scan)
		}
	}
}
