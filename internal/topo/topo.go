// Package topo models the on-chip topology: a 2-D mesh of core tiles with
// dimension-ordered (X-then-Y) deterministic routing, the routing choice
// the paper makes for ALTOCUMULUS messages (§V-B "we opt for deterministic
// routing since the NoC is often lightly loaded"), plus a light link
// occupancy model so that migration bursts see serialization delay.
package topo

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Coord is a tile position on the mesh.
type Coord struct{ X, Y int }

// Mesh is a W×H grid of tiles, numbered row-major: tile id = y*W + x.
type Mesh struct {
	W, H int
}

// NewMesh returns a mesh large enough for n tiles, as close to square as
// possible (the usual tiled-CMP floorplan: 16 cores → 4×4, 64 → 8×8,
// 256 → 16×16).
func NewMesh(n int) Mesh {
	if n < 1 {
		n = 1
	}
	w := int(math.Ceil(math.Sqrt(float64(n))))
	h := (n + w - 1) / w
	return Mesh{W: w, H: h}
}

// Tiles returns the mesh capacity.
func (m Mesh) Tiles() int { return m.W * m.H }

// Coord returns the position of tile id.
func (m Mesh) Coord(id int) Coord {
	if id < 0 || id >= m.Tiles() {
		panic(fmt.Sprintf("topo: tile %d out of range [0,%d)", id, m.Tiles()))
	}
	return Coord{X: id % m.W, Y: id / m.W}
}

// ID returns the tile id at position c.
func (m Mesh) ID(c Coord) int {
	if c.X < 0 || c.X >= m.W || c.Y < 0 || c.Y >= m.H {
		panic(fmt.Sprintf("topo: coord %v out of mesh %dx%d", c, m.W, m.H))
	}
	return c.Y*m.W + c.X
}

// Hops returns the Manhattan hop count between two tiles under
// dimension-ordered routing.
func (m Mesh) Hops(src, dst int) int {
	a, b := m.Coord(src), m.Coord(dst)
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// Route returns the sequence of tile ids visited from src to dst under
// X-then-Y dimension-ordered routing, excluding src and including dst.
func (m Mesh) Route(src, dst int) []int {
	a, b := m.Coord(src), m.Coord(dst)
	path := make([]int, 0, m.Hops(src, dst))
	for a.X != b.X {
		a.X += sign(b.X - a.X)
		path = append(path, m.ID(a))
	}
	for a.Y != b.Y {
		a.Y += sign(b.Y - a.Y)
		path = append(path, m.ID(a))
	}
	return path
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}

// NoC models message delivery over the mesh. Latency = hops × PerHop +
// payload serialization at LinkBandwidth, plus queueing when a source
// link is busy (a simple per-source occupancy model: ALTOCUMULUS traffic
// is injected per manager tile, so source-side serialization is the
// relevant contention point for migration bursts; the paper routes AC
// packets on a dedicated virtual network, so cross-traffic interference
// is excluded by construction).
type NoC struct {
	Mesh    Mesh
	PerHop  sim.Time // per-hop router+link latency (paper: 3 ns)
	BytesNS float64  // link bandwidth in bytes per nanosecond (e.g. 64 B/ns)

	busyUntil map[int]sim.Time
}

// NewNoC returns a NoC over the given mesh with the paper's 3 ns per-hop
// latency and a 64 B/cycle-class link (64 bytes/ns at 1 GHz flit clock).
func NewNoC(mesh Mesh) *NoC {
	return &NoC{
		Mesh:      mesh,
		PerHop:    3 * sim.Nanosecond,
		BytesNS:   64,
		busyUntil: make(map[int]sim.Time),
	}
}

// Serialization returns the time to push size bytes onto a link.
func (n *NoC) Serialization(size int) sim.Time {
	if size <= 0 || n.BytesNS <= 0 {
		return 0
	}
	return sim.FromNanos(float64(size) / n.BytesNS)
}

// Send computes the timing of a message of size bytes injected at tile
// src at time now, destined for dst, recording source-link occupancy.
// It returns two delays from now: when injection completes (the source
// FIFO entry frees) and when the message is fully received at dst.
func (n *NoC) Send(now sim.Time, src, dst, size int) (injectDone, arrive sim.Time) {
	ser := n.Serialization(size)
	start := now
	if b, ok := n.busyUntil[src]; ok && b > start {
		start = b
	}
	n.busyUntil[src] = start + ser
	hops := n.Mesh.Hops(src, dst)
	if hops == 0 {
		hops = 1 // local loopback still crosses the router once
	}
	injectDone = (start - now) + ser
	arrive = injectDone + sim.Time(hops)*n.PerHop
	return injectDone, arrive
}

// Delay returns the delivery latency for a message of size bytes injected
// at tile src at time now, destined for dst. See Send.
func (n *NoC) Delay(now sim.Time, src, dst, size int) sim.Time {
	_, arrive := n.Send(now, src, dst, size)
	return arrive
}

// Reset clears link occupancy (between runs).
func (n *NoC) Reset() { n.busyUntil = make(map[int]sim.Time) }
