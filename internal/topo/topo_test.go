package topo

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNewMeshShapes(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{16, 4, 4}, {64, 8, 8}, {256, 16, 16}, {17, 5, 4}, {1, 1, 1}, {0, 1, 1},
	}
	for _, c := range cases {
		m := NewMesh(c.n)
		if m.W != c.w || m.H != c.h {
			t.Errorf("NewMesh(%d) = %dx%d, want %dx%d", c.n, m.W, m.H, c.w, c.h)
		}
		if c.n > 0 && m.Tiles() < c.n {
			t.Errorf("NewMesh(%d) too small: %d tiles", c.n, m.Tiles())
		}
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	m := NewMesh(64)
	for id := 0; id < m.Tiles(); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("round trip failed for %d: got %d", id, got)
		}
	}
}

func TestCoordPanics(t *testing.T) {
	m := NewMesh(16)
	for _, f := range []func(){
		func() { m.Coord(-1) },
		func() { m.Coord(16) },
		func() { m.ID(Coord{X: 4, Y: 0}) },
		func() { m.ID(Coord{X: 0, Y: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHops(t *testing.T) {
	m := NewMesh(16) // 4x4
	if got := m.Hops(0, 0); got != 0 {
		t.Fatalf("self hops = %d", got)
	}
	if got := m.Hops(0, 15); got != 6 {
		t.Fatalf("corner-to-corner hops = %d, want 6", got)
	}
	if got := m.Hops(0, 3); got != 3 {
		t.Fatalf("row hops = %d", got)
	}
	if got := m.Hops(0, 12); got != 3 {
		t.Fatalf("column hops = %d", got)
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := NewMesh(64)
	f := func(a, b uint8) bool {
		s, d := int(a)%64, int(b)%64
		return m.Hops(s, d) == m.Hops(d, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	m := NewMesh(64)
	f := func(a, b uint8) bool {
		s, d := int(a)%64, int(b)%64
		route := m.Route(s, d)
		if len(route) != m.Hops(s, d) {
			return false
		}
		if len(route) > 0 && route[len(route)-1] != d {
			return false
		}
		// Each step moves exactly one hop.
		prev := s
		for _, tile := range route {
			if m.Hops(prev, tile) != 1 {
				return false
			}
			prev = tile
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteXThenY(t *testing.T) {
	m := NewMesh(16) // 4x4
	// From (0,0) to (2,2): X first -> 1, 2, then Y -> 6, 10.
	route := m.Route(0, 10)
	want := []int{1, 2, 6, 10}
	if len(route) != len(want) {
		t.Fatalf("route = %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
}

func TestNoCDelayBasics(t *testing.T) {
	m := NewMesh(16)
	n := NewNoC(m)
	// 0 -> 15 is 6 hops: 18 ns plus serialization of 14 bytes (<1 ns).
	d := n.Delay(0, 0, 15, 14)
	if d < 18*sim.Nanosecond || d > 19*sim.Nanosecond {
		t.Fatalf("delay = %v, want ~18ns", d)
	}
	// Local delivery still crosses a router once.
	n.Reset()
	if got := n.Delay(0, 3, 3, 0); got != 3*sim.Nanosecond {
		t.Fatalf("loopback = %v", got)
	}
}

func TestNoCSourceContention(t *testing.T) {
	m := NewMesh(16)
	n := NewNoC(m)
	// Two large back-to-back messages from the same tile: the second
	// waits for the first's serialization.
	size := 6400 // 100 ns at 64 B/ns
	d1 := n.Delay(0, 0, 1, size)
	d2 := n.Delay(0, 0, 2, size)
	if d2 <= d1 {
		t.Fatalf("no serialization backpressure: d1=%v d2=%v", d1, d2)
	}
	if d2-d1 < 90*sim.Nanosecond {
		t.Fatalf("backpressure too small: %v", d2-d1)
	}
	// After Reset, occupancy clears.
	n.Reset()
	if got := n.Delay(0, 0, 1, size); got != d1 {
		t.Fatalf("reset did not clear occupancy: %v != %v", got, d1)
	}
}

func TestNoCSerialization(t *testing.T) {
	n := NewNoC(NewMesh(4))
	if n.Serialization(0) != 0 {
		t.Fatal("zero size serialization")
	}
	if got := n.Serialization(64); got != sim.Nanosecond {
		t.Fatalf("64B serialization = %v", got)
	}
	n.BytesNS = 0
	if n.Serialization(64) != 0 {
		t.Fatal("zero bandwidth should not divide by zero")
	}
}
