package live

import (
	"strings"
	"testing"
)

func TestParseSweepValid(t *testing.T) {
	cases := []struct {
		in             string
		min, max, step float64
	}{
		{"100000:1200000:100000", 100000, 1200000, 100000},
		{"0:10:1", 0, 10, 1},
		{"5:5:2", 5, 5, 2}, // single-point sweep
		{" 1 : 3 : 0.5 ", 1, 3, 0.5},
	}
	for _, c := range cases {
		min, max, step, err := ParseSweep(c.in)
		if err != nil {
			t.Fatalf("ParseSweep(%q): %v", c.in, err)
		}
		if min != c.min || max != c.max || step != c.step {
			t.Fatalf("ParseSweep(%q) = %g:%g:%g, want %g:%g:%g",
				c.in, min, max, step, c.min, c.max, c.step)
		}
	}
}

// TestParseSweepRejects pins the validation contract: zero and negative
// steps (an endless or backwards sweep), inverted ranges, non-numbers,
// and the NaN/Inf strings strconv happily parses must all fail with an
// error naming the offending component.
func TestParseSweepRejects(t *testing.T) {
	cases := []struct {
		in   string
		want string // substring of the error
	}{
		{"", "want min:max:step"},
		{"100:200", "want min:max:step"},
		{"1:2:3:4", "want min:max:step"},
		{"a:200:10", "not a number"},
		{"100:b:10", "not a number"},
		{"100:200:c", "not a number"},
		{"100:200:0", "step must be > 0"},
		{"100:200:-5", "must be >= 0"},
		{"-1:200:10", "must be >= 0"},
		{"200:100:10", "max 100 below min 200"},
		{"NaN:200:10", "must be finite"},
		{"100:Inf:10", "must be finite"},
		{"100:200:NaN", "must be finite"},
		{"100:200:+Inf", "must be finite"},
	}
	for _, c := range cases {
		_, _, _, err := ParseSweep(c.in)
		if err == nil {
			t.Fatalf("ParseSweep(%q) accepted, want error containing %q", c.in, c.want)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ParseSweep(%q) = %v, want error containing %q", c.in, err, c.want)
		}
	}
}
