package live

import "io"

// frameReader batches wire decoding per syscall: instead of two
// io.ReadFull calls per frame (header, then body), it reads as much of
// the stream as the kernel has buffered into one large window and
// decodes every complete frame from it, carrying partial frames across
// reads. At 1M+ RPS with <100-byte frames this turns thousands of
// per-frame buffer walks into one read per socket wakeup — the software
// analogue of the NIC-side frame coalescing RPCAcc argues for.
//
// sizeFn maps a buffer beginning with a frame header to the total frame
// length (rpcproto.RequestFrameSize / ResponseFrameSize); hdrSize is
// the minimum prefix sizeFn needs. The reader is single-goroutine.
type frameReader struct {
	src     io.Reader
	buf     []byte
	start   int // first unconsumed byte
	end     int // one past the last filled byte
	hdrSize int
	sizeFn  func([]byte) (int, error)
}

// connReadBuf is the per-connection read window. It must exceed the
// largest legal frame (64 KiB payload + header) so next never grows the
// buffer on conforming streams.
const connReadBuf = 128 << 10

func newFrameReader(src io.Reader, bufSize, hdrSize int, sizeFn func([]byte) (int, error)) *frameReader {
	if bufSize < hdrSize {
		bufSize = hdrSize
	}
	return &frameReader{src: src, buf: make([]byte, bufSize), hdrSize: hdrSize, sizeFn: sizeFn}
}

// next returns the next complete frame. The slice aliases the reader's
// buffer and is valid only until the following next call. A clean EOF
// on a frame boundary returns io.EOF; EOF mid-frame returns
// io.ErrUnexpectedEOF.
//
//altolint:hotpath
func (fr *frameReader) next() ([]byte, error) {
	for {
		if fr.end-fr.start >= fr.hdrSize {
			flen, err := fr.sizeFn(fr.buf[fr.start:fr.end])
			if err != nil {
				return nil, err
			}
			if fr.end-fr.start >= flen {
				f := fr.buf[fr.start : fr.start+flen]
				fr.start += flen
				return f, nil
			}
			if flen > len(fr.buf) {
				// A frame larger than the window (only possible when the
				// window was sized below the protocol maximum): grow once.
				//altolint:allow hotalloc one-time window growth for oversized frames; never taken at the default window size
				grown := make([]byte, flen)
				fr.end = copy(grown, fr.buf[fr.start:fr.end])
				fr.start = 0
				fr.buf = grown
			}
		}
		// Need more bytes: compact the partial frame to the front, then
		// fill the rest of the window with one read.
		if fr.start > 0 {
			fr.end = copy(fr.buf, fr.buf[fr.start:fr.end])
			fr.start = 0
		}
		n, err := fr.src.Read(fr.buf[fr.end:])
		fr.end += n
		if n > 0 {
			continue // decode what arrived; a sticky error resurfaces next read
		}
		if err == nil {
			continue // zero-byte read without error: retry
		}
		if err == io.EOF && fr.end-fr.start > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
}
