package live

import (
	"net"
	"sync"

	"repro/internal/rpcproto"
)

// respRing is the per-connection response path: a bounded ring of
// recycled frame buffers that worker completions encode into and one
// writer goroutine flushes as a single vectored write (net.Buffers →
// writev) whenever it finds backlog. It replaces the old respMsg
// channel + encode-per-Write scheme: completions no longer allocate a
// message or a frame, and a backlog of N responses costs one syscall,
// not N.
//
// Invariants:
//   - frames leave in completion order (the wire may interleave
//     connections' requests, but one connection's responses are written
//     in the order their workers finished them);
//   - at most limit frames are queued or in the writer's hands;
//     append blocks past that, so client-side TCP backpressure stalls
//     the worker instead of buffering unboundedly (the old channel's
//     semantics, kept deliberately);
//   - after a write error the ring keeps accepting and dropping frames
//     so completion callbacks never block on a dead connection.
type respRing struct {
	mu      sync.Mutex
	more    sync.Cond // frames queued, or closed
	space   sync.Cond // frames retired, or failed/closed
	free    [][]byte  // recycled frame buffers
	pending [][]byte  // encoded frames awaiting the writer, completion order
	queued  int       // frames in pending plus in the writer's current batch
	limit   int
	closed  bool
	failed  bool
}

// respRingLimit bounds queued response frames per connection; the old
// channel held 512 messages, so keep that backpressure point.
const respRingLimit = 512

func newRespRing() *respRing {
	rr := &respRing{limit: respRingLimit}
	rr.more.L = &rr.mu
	rr.space.L = &rr.mu
	return rr
}

// append encodes one response frame into a recycled buffer and queues
// it for the writer. It blocks while the ring is at its limit and the
// connection is still healthy.
//
//altolint:hotpath
func (rr *respRing) append(id uint64, st rpcproto.Status, payload []byte) {
	rr.mu.Lock()
	for rr.queued >= rr.limit && !rr.closed && !rr.failed {
		rr.space.Wait()
	}
	if rr.closed || rr.failed {
		// Teardown or a dead connection: drop the frame, never block.
		rr.mu.Unlock()
		return
	}
	var buf []byte
	if n := len(rr.free); n > 0 {
		buf = rr.free[n-1][:0]
		rr.free = rr.free[:n-1]
	} else {
		//altolint:allow hotalloc one frame buffer per ring slot until the ring reaches its high-water mark; steady state recycles
		buf = make([]byte, 0, 256)
	}
	buf, err := rpcproto.AppendResponse(buf, id, st, payload)
	if err != nil {
		// Oversized payload: the handler produced something unencodable.
		// Drop the frame (the client times out on this id) but keep the
		// buffer; the connection itself is still healthy.
		//altolint:allow hotalloc amortized free-list growth; bounded by limit
		rr.free = append(rr.free, buf)
		rr.mu.Unlock()
		return
	}
	//altolint:allow hotalloc amortized pending-slice growth; bounded by limit
	rr.pending = append(rr.pending, buf)
	rr.queued++
	rr.more.Signal()
	rr.mu.Unlock()
}

// forward re-frames one already-encoded request frame as a relayed
// (version-2) copy carrying newID and origin, and queues it for the
// writer: the relay's outbound hot path, sharing append's buffer
// recycling and backpressure contract. The frame bytes are copied
// before forward returns, so the caller may reuse its read window
// immediately. Returns false when the ring dropped the frame at
// teardown or after a write failure; a non-nil error means the frame
// itself was unrelayable (malformed, or at the hop limit) and the
// caller should tear down its connection.
//
//altolint:hotpath
func (rr *respRing) forward(frame []byte, newID uint64, origin uint32) (bool, error) {
	rr.mu.Lock()
	for rr.queued >= rr.limit && !rr.closed && !rr.failed {
		rr.space.Wait()
	}
	if rr.closed || rr.failed {
		rr.mu.Unlock()
		return false, nil
	}
	var buf []byte
	if n := len(rr.free); n > 0 {
		buf = rr.free[n-1][:0]
		rr.free = rr.free[:n-1]
	} else {
		//altolint:allow hotalloc one frame buffer per ring slot until the ring reaches its high-water mark; steady state recycles
		buf = make([]byte, 0, 256)
	}
	buf, err := rpcproto.AppendForwarded(buf, frame, newID, origin)
	if err != nil {
		//altolint:allow hotalloc amortized free-list growth; bounded by limit
		rr.free = append(rr.free, buf)
		rr.mu.Unlock()
		return false, err
	}
	//altolint:allow hotalloc amortized pending-slice growth; bounded by limit
	rr.pending = append(rr.pending, buf)
	rr.queued++
	rr.more.Signal()
	rr.mu.Unlock()
	return true, nil
}

// close wakes the writer to flush whatever is pending and exit, and
// unblocks any completion stalled on a full ring.
func (rr *respRing) close() {
	rr.mu.Lock()
	rr.closed = true
	rr.more.Signal()
	rr.space.Broadcast()
	rr.mu.Unlock()
}

// fail marks the connection dead: subsequent appends drop immediately.
func (rr *respRing) fail() {
	rr.mu.Lock()
	rr.failed = true
	rr.space.Broadcast()
	rr.mu.Unlock()
}

// writeLoop is the per-connection writer goroutine: it swaps out the
// whole backlog under the lock, writes it as one vectored write outside
// the lock, then recycles the frame buffers. Returns after close once
// the backlog is drained.
func (rr *respRing) writeLoop(conn net.Conn) {
	batch := make([][]byte, 0, 64) // writer-owned; ping-pongs with pending
	var bufs net.Buffers           // scratch: WriteTo consumes its elements
	for {
		rr.mu.Lock()
		for _, b := range batch {
			rr.free = append(rr.free, b)
		}
		rr.queued -= len(batch)
		if len(batch) > 0 {
			rr.space.Broadcast()
		}
		for len(rr.pending) == 0 && !rr.closed {
			rr.more.Wait()
		}
		if len(rr.pending) == 0 { // closed and drained
			rr.mu.Unlock()
			return
		}
		batch, rr.pending = rr.pending, batch[:0]
		failed := rr.failed
		rr.mu.Unlock()

		if !failed {
			bufs = append(bufs[:0], batch...)
			if _, err := bufs.WriteTo(conn); err != nil {
				rr.fail()
			}
		}
	}
}
