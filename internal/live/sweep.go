package live

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseSweep parses an offered-rate sweep specification "min:max:step"
// (RPS) as taken by the -sweep flags of cmd/altoserve and cmd/altorack.
// Every component must be a finite, non-negative number; step must be
// strictly positive (a zero or negative step would never advance the
// sweep) and max must not be below min. Note that strconv accepts
// "NaN" and "Inf" as floats — and every comparison against NaN is
// false — so the finiteness check is explicit, not implied by the
// range checks.
func ParseSweep(s string) (min, max, step float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("live: bad sweep %q: want min:max:step", s)
	}
	vals := make([]float64, 3)
	names := [3]string{"min", "max", "step"}
	for i, p := range parts {
		v, perr := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if perr != nil {
			return 0, 0, 0, fmt.Errorf("live: bad sweep %s %q: not a number", names[i], p)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, 0, fmt.Errorf("live: bad sweep %s %q: must be finite", names[i], p)
		}
		if v < 0 {
			return 0, 0, 0, fmt.Errorf("live: bad sweep %s %q: must be >= 0", names[i], p)
		}
		vals[i] = v
	}
	min, max, step = vals[0], vals[1], vals[2]
	if step <= 0 {
		return 0, 0, 0, fmt.Errorf("live: bad sweep %q: step must be > 0 (a %g step never advances)", s, step)
	}
	if max < min {
		return 0, 0, 0, fmt.Errorf("live: bad sweep %q: max %g below min %g", s, max, min)
	}
	return min, max, step, nil
}
