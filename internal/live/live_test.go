package live

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/mica"
	"repro/internal/rpcproto"
)

// drainCloseReport drains, closes and verifies conservation, failing
// the test on any invariant violation.
func drainCloseReport(t *testing.T, rt *Runtime) *Report {
	t.Helper()
	if err := rt.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	rep := rt.Report()
	if err := rep.Check.Err(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRuntimeDirectSoak drives the runtime without a network: many
// producer goroutines delivering straight into Deliver, all steered to
// group 0 so the managers must migrate to spread the load. Conservation
// and migrate-at-most-once must hold over the full run.
func TestRuntimeDirectSoak(t *testing.T) {
	const producers = 4
	n := 100000
	if testing.Short() {
		n = 20000
	}
	rt, err := New(Config{
		Groups:          4,
		WorkersPerGroup: 2,
		Period:          100 * time.Microsecond,
		Expected:        n,
		// Skew: everything lands on group 0; only migration can move it.
		Steer: func(r *rpcproto.Request) int { return 0 },
	}, SpinHandler{Iters: 200})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	var completed sync.WaitGroup
	completed.Add(n)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := p; i < n; i += producers {
				rt.Deliver(&rpcproto.Request{ID: uint64(i), Conn: uint32(p)},
					func(r *rpcproto.Request, payload []byte, st rpcproto.Status) {
						completed.Done()
					})
			}
		}(p)
	}
	wg.Wait()
	completed.Wait()
	rep := drainCloseReport(t, rt)

	if rep.Stats.Delivered != uint64(n) || rep.Stats.Completed != uint64(n) {
		t.Fatalf("delivered %d completed %d, want %d", rep.Stats.Delivered, rep.Stats.Completed, n)
	}
	if rep.Stats.Migrations == 0 {
		t.Fatal("fully skewed steering produced no migrations; Algorithm 1 never fired")
	}
	if rep.Samples != n {
		t.Fatalf("latency samples %d, want %d", rep.Samples, n)
	}
	t.Logf("direct soak: %s", rep)
}

// TestLiveLoopbackTCP is the acceptance soak: altoserve's full stack —
// TCP loopback, rpcproto frames, open-loop load generator — sustaining
// the required request count with conservation and migrate-once
// verified and tail percentiles reported.
func TestLiveLoopbackTCP(t *testing.T) {
	n := 100000
	if testing.Short() {
		n = 20000
	}
	rt, err := New(Config{
		Groups:          2,
		WorkersPerGroup: 2,
		Period:          200 * time.Microsecond,
		Expected:        n,
	}, EchoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(rt)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	res, err := RunLoadgen(LoadgenConfig{
		Addr:     ln.Addr().String(),
		Conns:    8,
		Requests: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := drainCloseReport(t, rt)
	srv.Close()
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}

	if res.Received != uint64(n) {
		t.Fatalf("received %d of %d responses", res.Received, n)
	}
	if res.BadStatus != 0 {
		t.Fatalf("%d error responses", res.BadStatus)
	}
	if rep.Stats.Delivered != uint64(n) || rep.Stats.Completed != uint64(n) {
		t.Fatalf("server delivered %d completed %d, want %d", rep.Stats.Delivered, rep.Stats.Completed, n)
	}
	if res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
		t.Fatalf("implausible percentiles: p50=%v p99=%v p99.9=%v", res.P50, res.P99, res.P999)
	}
	t.Logf("loopback: client %s", res)
	t.Logf("loopback: server %s", rep)
}

// TestKVLoopback runs the MICA service over the live stack: preload,
// then a GET-heavy mix with SETs, checking per-op status correctness
// end to end.
func TestKVLoopback(t *testing.T) {
	n := 20000
	if testing.Short() {
		n = 5000
	}
	store, err := mica.NewStore(mica.Config{
		Partitions: 4, BucketsPerPart: 1 << 10, EntriesPerBucket: 8, LogBytesPerPart: 1 << 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 512
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
	for i := 0; i < keys; i++ {
		if err := store.Set(key(i), []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}

	rt, err := New(Config{Groups: 2, WorkersPerGroup: 2, Expected: n}, NewKVHandler(store))
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(rt)
	go srv.Serve(ln)

	res, err := RunLoadgen(LoadgenConfig{
		Addr:     ln.Addr().String(),
		Conns:    4,
		Requests: n,
		Prepare: func(r *rpcproto.Request, conn, seq int) {
			k := key((conn*7919 + seq) % keys)
			if seq%10 == 0 {
				r.Op = rpcproto.OpSet
				r.Payload = EncodeSet(k, []byte(fmt.Sprintf("new-%06d", seq)))
			} else {
				r.Op = rpcproto.OpGet
				r.Payload = k
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := drainCloseReport(t, rt)
	srv.Close()

	if res.Received != uint64(n) || res.BadStatus != 0 {
		t.Fatalf("received %d bad %d, want %d clean responses", res.Received, res.BadStatus, n)
	}
	st := store.Stats()
	if st.Gets == 0 || st.Sets == 0 {
		t.Fatalf("store never exercised: %+v", st)
	}
	_ = rep
}

// TestNackRestoresOrder forces a NACK by filling a destination's
// migration FIFO while its manager is wedged behind a slow handler,
// then checks nothing is lost: every request still completes exactly
// once (the ledger would flag duplicates or drops).
func TestNackRestoresOrder(t *testing.T) {
	n := 20000
	rt, err := New(Config{
		Groups:          3,
		WorkersPerGroup: 1,
		WorkerDepth:     1,
		Period:          50 * time.Microsecond,
		MigrateFIFO:     1, // tiny receive FIFO: NACKs under pressure
		Expected:        n,
		Steer:           func(r *rpcproto.Request) int { return 0 },
	}, SpinHandler{Iters: 2000})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	var completed sync.WaitGroup
	completed.Add(n)
	for i := 0; i < n; i++ {
		rt.Deliver(&rpcproto.Request{ID: uint64(i)},
			func(r *rpcproto.Request, payload []byte, st rpcproto.Status) { completed.Done() })
	}
	completed.Wait()
	rep := drainCloseReport(t, rt)
	if rep.Stats.Completed != uint64(n) {
		t.Fatalf("completed %d, want %d", rep.Stats.Completed, n)
	}
	t.Logf("nack soak: %s", rep)
}

// TestConfigDefaults pins the default sizing and the steer fallback.
func TestConfigDefaults(t *testing.T) {
	rt, err := New(Config{}, EchoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.groups) != 2 || len(rt.groups[0].workers) != 4 {
		t.Fatalf("defaults: %d groups x %d workers", len(rt.groups), len(rt.groups[0].workers))
	}
	if g := rt.steer(&rpcproto.Request{Conn: 5}); g != 1 {
		t.Fatalf("conn-hash steer = %d, want 1", g)
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("nil handler must be rejected")
	}
}

// TestDequeFIFO pins the run-queue semantics dispatch and migration
// rely on: head pops oldest, tail pops newest, at() indexes from head.
func TestDequeFIFO(t *testing.T) {
	var q taskDeque
	mk := func(id int) *task { return &task{req: &rpcproto.Request{ID: uint64(id)}} }
	for i := 0; i < 200; i++ {
		q.pushTail(mk(i))
	}
	for i := 0; i < 100; i++ {
		if got := q.popHead(); got.req.ID != uint64(i) {
			t.Fatalf("popHead %d = %d", i, got.req.ID)
		}
	}
	if q.at(0).req.ID != 100 || q.at(q.len()-1).req.ID != 199 {
		t.Fatalf("at() misindexed: head %d tail %d", q.at(0).req.ID, q.at(q.len()-1).req.ID)
	}
	for i := 199; i >= 100; i-- {
		if got := q.popTail(); got.req.ID != uint64(i) {
			t.Fatalf("popTail = %d, want %d", got.req.ID, i)
		}
	}
	if q.popHead() != nil || q.popTail() != nil || q.len() != 0 {
		t.Fatal("emptied deque not empty")
	}
}

// TestDataPlaneArenaClean asserts the arena ownership protocol over a
// persistent multi-round session: after the client closes, every
// request slot acquired at decode was released exactly once by its
// completion — no leaks, no stale releases.
func TestDataPlaneArenaClean(t *testing.T) {
	const rounds, n = 3, 5000
	rt, err := New(Config{Groups: 2, WorkersPerGroup: 2, Expected: rounds * n}, EchoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(rt)
	wait := srv.ServeBackground(ln)
	cl, err := NewLoadgenClient(LoadgenConfig{Addr: ln.Addr().String(), Conns: 4})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		res, err := cl.Run(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Received != n || res.Dropped != 0 {
			t.Fatalf("round %d: received %d dropped %d, want %d clean", r, res.Received, res.Dropped, n)
		}
	}
	cl.Close()
	if err := rt.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	drainCloseReport(t, rt)
	if leaked, stale := srv.DataPlaneStats(); leaked != 0 || stale != 0 {
		t.Fatalf("data plane: %d leaked slot(s), %d stale release(s), want 0/0", leaked, stale)
	}
	tot := cl.Totals()
	if tot.Received != rounds*n {
		t.Fatalf("totals received %d, want %d", tot.Received, rounds*n)
	}
}

// TestDataPlaneAbruptClose cuts a connection with requests still in
// flight (full close, no half-close handshake, responses never read):
// the server must complete and release every request it decoded — the
// teardown path may not leak arena slots even when the response stream
// is dead.
func TestDataPlaneAbruptClose(t *testing.T) {
	const n = 2000
	rt, err := New(Config{Groups: 2, WorkersPerGroup: 2, Expected: n}, EchoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(rt)
	wait := srv.ServeBackground(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := 0; i < n; i++ {
		r := &rpcproto.Request{ID: uint64(i), Conn: 1, Op: rpcproto.OpEcho, Payload: []byte("abandoned")}
		buf, err = rpcproto.AppendRequest(buf, r)
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	conn.Close() // never reads a single response
	if err := rt.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	rt.Close()
	if leaked, stale := srv.DataPlaneStats(); leaked != 0 || stale != 0 {
		t.Fatalf("abrupt close: %d leaked slot(s), %d stale release(s), want 0/0", leaked, stale)
	}
}
