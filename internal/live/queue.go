package live

// taskDeque is the per-group run queue (the NetRX stand-in): tasks
// arrive at the tail, dispatch pops the head (FIFO), migration pops the
// tail — the same ends the simulator's exec.Deque exposes. It is a
// plain slice ring with head compaction; the owning lgroup's mutex
// serializes access (multi-producer Deliver, single-consumer manager).
type taskDeque struct {
	buf  []*task
	head int
}

func (q *taskDeque) len() int { return len(q.buf) - q.head }

func (q *taskDeque) pushTail(t *task) { q.buf = append(q.buf, t) }

func (q *taskDeque) popHead() *task {
	if q.len() == 0 {
		return nil
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return t
}

func (q *taskDeque) popTail() *task {
	if q.len() == 0 {
		return nil
	}
	t := q.buf[len(q.buf)-1]
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	return t
}

// at indexes from the head (0 = oldest). The caller keeps i < len().
func (q *taskDeque) at(i int) *task { return q.buf[q.head+i] }
