package live

// taskDeque is the per-group run queue (the NetRX stand-in): tasks
// arrive at the tail, dispatch pops the head (FIFO), migration pops the
// tail — the same ends the simulator's exec.Deque exposes. It is a
// plain slice ring with head compaction; the owning lgroup's mutex
// serializes access (multi-producer Deliver, single-consumer manager).
type taskDeque struct {
	buf  []*task
	head int
}

//altolint:hotpath
func (q *taskDeque) len() int { return len(q.buf) - q.head }

//altolint:hotpath
func (q *taskDeque) pushTail(t *task) {
	//altolint:allow hotalloc amortized ring growth; steady state reuses the backing array
	q.buf = append(q.buf, t)
}

//altolint:hotpath
func (q *taskDeque) popHead() *task {
	if q.len() == 0 {
		return nil
	}
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		//altolint:allow hotalloc in-place compaction into the existing backing array; no growth
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return t
}

//altolint:hotpath
func (q *taskDeque) popTail() *task {
	if q.len() == 0 {
		return nil
	}
	t := q.buf[len(q.buf)-1]
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	return t
}

// at indexes from the head (0 = oldest). The caller keeps i < len().
//
//altolint:hotpath
func (q *taskDeque) at(i int) *task { return q.buf[q.head+i] }
