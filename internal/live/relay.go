package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/policy"
	"repro/internal/rack"
	"repro/internal/rpcproto"
)

// Relay is the live rack tier: a TCP front-end that accepts the same
// rpcproto stream the per-server runtime speaks, dispatches each
// request to one of N backend servers through rack.Dispatcher — the
// identical policy state machine the simulator drives — and routes the
// responses back to the originating clients. It is the process-level
// analogue of server.RunRack: RackSched's two-tier split with real
// sockets standing in for the rack fabric.
//
// The data plane reuses the single-server machinery end to end: client
// requests are segmented by a frameReader, re-framed as forwarded
// (version-2) copies by respRing.forward — one buffer copy, no
// per-request allocation in steady state — and flushed to each backend
// by the same vectored writeLoop that serves responses elsewhere.
// Responses come back carrying the relay-assigned id, are matched to
// the originating connection through a per-backend pending table, and
// leave on the client's own respRing under the original request id.
//
// Dispatch decisions see per-backend outstanding counts through the
// same stale-view contract as the simulated rack: a sampler goroutine
// refreshes the dispatcher's depth view every SampleEvery (SampleEvery
// zero means a fresh view per pick), and the oldest view any decision
// consulted is reported as MaxViewAge. Conservation — every request
// relayed exactly once, every relayed request answered exactly once —
// is asserted per run by a check.Ledger over the relay-assigned ids.
type Relay struct {
	cfg   RelayConfig
	clock policy.Clock

	// dispMu serializes the dispatcher, its randomness source, the depth
	// scratch and the view-age high-water mark: rack.Dispatcher is pure
	// state, so one lock gives the live relay the same total order of
	// observe/pick calls a simulator run has.
	dispMu  sync.Mutex
	disp    *rack.Dispatcher
	rng     *rack.SplitMix
	scratch []int
	maxAge  policy.Duration

	ledgerMu sync.Mutex
	ledger   *check.Ledger

	backends []*relayBackend
	nextID   paddedUint64 // relay-assigned dense request ids
	nextConn paddedUint64 // client connection ids (the v2 Origin field)

	dropped paddedInt64 // requests lost to teardown or backend failure
	strays  paddedInt64 // backend responses with no pending entry

	lnMu   sync.Mutex
	ln     net.Listener
	closed bool

	stop     chan struct{} // sampler shutdown
	wg       sync.WaitGroup
	writerWG sync.WaitGroup
	respWG   sync.WaitGroup
	sampleWG sync.WaitGroup
	started  bool
}

// RelayConfig sizes a Relay. Backends must name at least one server.
type RelayConfig struct {
	Backends []string  // backend server addresses, dialed at New
	Policy   rack.Kind // inter-server dispatch rule
	K        int       // PowerOfK sample size (0 = 2)

	// SampleEvery is the depth-view refresh period: the bounded staleness
	// of the rack tier. Zero refreshes the view on every pick.
	SampleEvery time.Duration

	// Expected pre-sizes the conservation ledger (requests per run).
	Expected int

	// Seed feeds the dispatcher's SplitMix source (PowerOfK sampling).
	Seed uint64

	// Clock overrides the monotonic wall clock (tests use synthetic
	// clocks).
	Clock policy.Clock
}

// RelayStats is the relay's data-plane accounting after (or during) a
// run. Dispatched and Responded are per-backend; on a drained, healthy
// relay they are equal element-wise and Dropped and Strays are zero.
type RelayStats struct {
	Forwarded  uint64   // requests relayed to a backend
	Returned   uint64   // responses relayed back to a client
	Dropped    uint64   // requests lost to teardown or backend failure
	Strays     uint64   // backend responses with no pending entry
	Dispatched []uint64 // per-backend forwarded counts
	Responded  []uint64 // per-backend response counts

	// MaxViewAge is the oldest depth observation any dispatch decision
	// consulted: the realized staleness the SampleEvery bound permits.
	MaxViewAge policy.Duration
}

// relayBackend is one backend server: its connection, the outbound
// request ring (flushed by a writeLoop goroutine), the response reader,
// and the pending table matching relay ids back to client connections.
type relayBackend struct {
	idx  int
	conn net.Conn
	ring *respRing
	fr   *frameReader

	pendMu sync.Mutex
	pend   map[uint64]relayPending

	// outstanding is dispatched minus responded: the queue-depth signal
	// the sampler feeds the dispatcher, written by client readers and the
	// response reader, so it gets its own cache line.
	outstanding paddedInt64
	dispatched  paddedInt64
	responded   paddedInt64
}

// relayPending maps one in-flight relay id back to its origin.
type relayPending struct {
	cc     *relayClient
	origID uint64
}

// relayClient is one client connection's state, shared between its
// reader (the handle goroutine), the backend response readers that
// complete its requests, and the writer flushing its respRing. The
// teardown protocol is connState's: reader done + pending zero.
type relayClient struct {
	origin     uint32
	ring       *respRing
	pending    paddedInt64
	readerDone atomic.Bool
	drained    chan struct{} // capacity 1: teardown wake, non-blocking send
}

// NewRelay validates the configuration, dials every backend, and
// builds the dispatcher. Start launches the data-plane goroutines.
func NewRelay(cfg RelayConfig) (*Relay, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("live: relay needs at least one backend")
	}
	if cfg.SampleEvery < 0 {
		return nil, fmt.Errorf("live: relay SampleEvery = %v, want >= 0", cfg.SampleEvery)
	}
	disp, err := rack.NewDispatcher(rack.Config{
		Servers: len(cfg.Backends), Policy: cfg.Policy, K: cfg.K,
		StalenessBound: policy.Duration(cfg.SampleEvery.Nanoseconds()) * policy.Nanosecond,
	})
	if err != nil {
		return nil, err
	}
	r := &Relay{
		cfg:     cfg,
		clock:   cfg.Clock,
		disp:    disp,
		rng:     rack.NewSplitMix(cfg.Seed),
		scratch: make([]int, len(cfg.Backends)),
		ledger:  check.NewLedger(cfg.Expected, false),
		stop:    make(chan struct{}),
	}
	if r.clock == nil {
		r.clock = newWallClock()
	}
	for i, addr := range cfg.Backends {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			for _, b := range r.backends {
				b.conn.Close()
			}
			return nil, fmt.Errorf("live: relay backend %d (%s): %w", i, addr, err)
		}
		r.backends = append(r.backends, &relayBackend{
			idx:  i,
			conn: conn,
			ring: newRespRing(),
			fr:   newFrameReader(conn, connReadBuf, rpcproto.ResponseHeaderSize, rpcproto.ResponseFrameSize),
			pend: make(map[uint64]relayPending),
		})
	}
	return r, nil
}

// Start launches the per-backend writer and response-reader goroutines
// and, with SampleEvery > 0, the depth-view sampler. Call once.
func (r *Relay) Start() {
	if r.started {
		panic("live: relay Start called twice")
	}
	r.started = true
	r.observeNow() // stamp the epoch so first-pick ages measure from here
	for _, b := range r.backends {
		b := b
		r.writerWG.Add(1)
		go func() {
			defer r.writerWG.Done()
			b.ring.writeLoop(b.conn)
		}()
		r.respWG.Add(1)
		go r.respLoop(b)
	}
	if r.cfg.SampleEvery > 0 {
		r.sampleWG.Add(1)
		go r.sampleLoop(r.cfg.SampleEvery)
	}
}

// observeNow feeds every backend's current outstanding count into the
// dispatcher as one consistent-enough snapshot.
func (r *Relay) observeNow() {
	r.dispMu.Lock()
	for i, b := range r.backends {
		r.scratch[i] = int(b.outstanding.Load())
	}
	r.disp.ObserveAll(r.scratch, r.clock.Now())
	r.dispMu.Unlock()
}

// sampleLoop refreshes the depth view on the SampleEvery cadence: the
// live analogue of the rack tier's periodic UPDATE broadcast.
func (r *Relay) sampleLoop(every time.Duration) {
	defer r.sampleWG.Done()
	tk := newSampleTicker(every)
	defer tk.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tk.C:
			r.observeNow()
		}
	}
}

// Serve accepts client connections until the listener closes. It
// returns nil on a clean Close.
func (r *Relay) Serve(ln net.Listener) error {
	r.lnMu.Lock()
	r.ln = ln
	closed := r.closed
	r.lnMu.Unlock()
	if closed {
		ln.Close()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		r.wg.Add(1)
		go r.handle(conn)
	}
}

// ServeBackground runs Serve on its own goroutine and returns a wait
// function that closes the relay and reports Serve's error, keeping
// goroutine syntax out of sim-linked callers (cmd/altorack).
func (r *Relay) ServeBackground(ln net.Listener) (wait func() error) {
	errs := make(chan error, 1) //altolint:bounded-send single send into capacity 1: Serve returns exactly once
	go func() { errs <- r.Serve(ln) }()
	return func() error {
		r.Close()
		return <-errs
	}
}

// Close stops accepting, waits for every client connection to drain,
// then tears down the backend data plane. Safe to call once; clients
// are expected to half-close after their last request.
func (r *Relay) Close() {
	r.lnMu.Lock()
	ln := r.ln
	wasClosed := r.closed
	r.closed = true
	r.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	r.wg.Wait() // client handlers: each waits for its own in-flight responses
	if wasClosed {
		return
	}
	close(r.stop)
	r.sampleWG.Wait()
	for _, b := range r.backends {
		b.ring.close()
	}
	r.writerWG.Wait() // outbound rings flushed
	for _, b := range r.backends {
		b.conn.Close()
	}
	r.respWG.Wait()
}

// handle is one client connection's reader: segment request frames,
// pick a backend per request, forward. Teardown mirrors the server's
// connState protocol.
func (r *Relay) handle(conn net.Conn) {
	defer r.wg.Done()
	defer conn.Close()

	cc := &relayClient{
		origin:  uint32(r.nextConn.Add(1)),
		ring:    newRespRing(),
		drained: make(chan struct{}, 1),
	}
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		cc.ring.writeLoop(conn)
	}()

	fr := newFrameReader(conn, connReadBuf, rpcproto.RequestHeaderSize, rpcproto.RequestFrameSize)
	var req rpcproto.Request // scratch: only ID/Conn/Hops are consulted
	for {
		frame, err := fr.next()
		if err != nil {
			break // EOF, reset, or a malformed frame: the client is done sending
		}
		if err := rpcproto.UnmarshalInto(&req, frame); err != nil {
			break
		}
		if req.Hops == ^uint8(0) {
			break // unrelayable: already at the forwarding hop limit
		}
		relayID := r.nextID.Add(1) - 1

		// Dispatch: one lock gives observe/pick the simulator's total
		// order. SampleEvery == 0 is the fresh-view contract.
		r.dispMu.Lock()
		now := r.clock.Now()
		if r.cfg.SampleEvery == 0 {
			for i, b := range r.backends {
				r.scratch[i] = int(b.outstanding.Load())
			}
			r.disp.ObserveAll(r.scratch, now)
		}
		dec := r.disp.Pick(req.Conn, now, r.rng)
		if dec.Age > r.maxAge {
			r.maxAge = dec.Age
		}
		r.dispMu.Unlock()

		// Register the pending entry before the frame can leave: the
		// backend's response must always find its origin.
		b := r.backends[dec.Server]
		b.pendMu.Lock()
		b.pend[relayID] = relayPending{cc: cc, origID: req.ID}
		b.pendMu.Unlock()
		cc.pending.Add(1)
		b.outstanding.Add(1)
		b.dispatched.Add(1)
		r.ledgerMu.Lock()
		r.ledger.Delivered(relayID)
		r.ledgerMu.Unlock()

		queued, err := b.ring.forward(frame, relayID, cc.origin)
		if !queued {
			// The frame never left (backend teardown or an unrelayable
			// frame): unwind the registration. The ledger keeps the
			// Delivered record, so a lost request surfaces at Verify as
			// the conservation violation it is.
			b.pendMu.Lock()
			delete(b.pend, relayID)
			b.pendMu.Unlock()
			cc.pending.Add(-1)
			b.outstanding.Add(-1)
			b.dispatched.Add(-1)
			r.dropped.Add(1)
			if err != nil {
				break
			}
		}
	}

	// Client half-closed (or broke): wait for in-flight responses on the
	// completion signal, then flush and release the writer.
	cc.readerDone.Store(true)
	for cc.pending.Load() > 0 {
		<-cc.drained
	}
	cc.ring.close()
	writerWG.Wait()
}

// respLoop is one backend's response reader: match each response to
// its pending entry and hand it back to the originating client under
// the original request id.
func (r *Relay) respLoop(b *relayBackend) {
	defer r.respWG.Done()
	for {
		frame, err := b.fr.next()
		if err != nil {
			return // backend closed (relay teardown) or broke
		}
		resp, _, err := rpcproto.DecodeResponse(frame)
		if err != nil {
			return
		}
		b.pendMu.Lock()
		p, ok := b.pend[resp.ID]
		if ok {
			delete(b.pend, resp.ID)
		}
		b.pendMu.Unlock()
		if !ok {
			r.strays.Add(1)
			continue
		}
		r.ledgerMu.Lock()
		r.ledger.Completed(resp.ID)
		r.ledgerMu.Unlock()
		b.outstanding.Add(-1)
		b.responded.Add(1)
		// Append before the pending decrement: once pending hits zero the
		// client handler may close the ring.
		p.cc.ring.append(p.origID, resp.Status, resp.Payload)
		if p.cc.pending.Add(-1) == 0 && p.cc.readerDone.Load() {
			select {
			case p.cc.drained <- struct{}{}:
			default:
			}
		}
	}
}

// Verify closes the run's conservation ledger: every request relayed
// exactly once and answered exactly once. Call after the clients have
// drained (Verify appends drain findings, so call it once).
func (r *Relay) Verify() *check.Report {
	r.ledgerMu.Lock()
	defer r.ledgerMu.Unlock()
	return r.ledger.Verify()
}

// Stats snapshots the relay's data-plane accounting.
func (r *Relay) Stats() RelayStats {
	st := RelayStats{
		Dropped:    uint64(r.dropped.Load()),
		Strays:     uint64(r.strays.Load()),
		Dispatched: make([]uint64, len(r.backends)),
		Responded:  make([]uint64, len(r.backends)),
	}
	for i, b := range r.backends {
		st.Dispatched[i] = uint64(b.dispatched.Load())
		st.Responded[i] = uint64(b.responded.Load())
		st.Forwarded += st.Dispatched[i]
		st.Returned += st.Responded[i]
	}
	r.dispMu.Lock()
	st.MaxViewAge = r.maxAge
	r.dispMu.Unlock()
	return st
}
