package live

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/rpcproto"
)

// Server serves the rpcproto stream protocol over TCP, delivering each
// decoded request to a Runtime and writing the response frame when the
// completion callback fires. One reader goroutine and one writer
// goroutine per connection; responses may leave out of request order
// (they are matched by id), exactly like a real nanosecond-RPC server.
type Server struct {
	rt *Runtime
	ln net.Listener
	wg sync.WaitGroup
}

// NewServer wraps a started Runtime.
func NewServer(rt *Runtime) *Server { return &Server{rt: rt} }

// respMsg is one completed request on its way to the connection writer.
type respMsg struct {
	id      uint64
	st      rpcproto.Status
	payload []byte
}

// Serve accepts connections until the listener closes. It returns nil
// on a clean Close.
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// ServeBackground runs Serve on its own goroutine and returns a wait
// function that closes the server and reports Serve's error. It exists
// so sim-linked callers (cmd/altoserve, examples) need no concurrency
// syntax of their own: the goroutine and channel stay inside the
// sanctioned live boundary.
func (s *Server) ServeBackground(ln net.Listener) (wait func() error) {
	errs := make(chan error, 1) //altolint:bounded-send single send into capacity 1: Serve returns exactly once
	go func() { errs <- s.Serve(ln) }()
	return func() error {
		s.Close()
		return <-errs
	}
}

// Close stops accepting and waits for connection handlers to finish.
// Clients are expected to half-close after their last request; Drain
// the runtime first for a loss-free shutdown.
func (s *Server) Close() {
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	//altolint:bounded-send the writer goroutine drains out until close; a full channel means client TCP backpressure, which must stall the worker rather than drop the response
	out := make(chan respMsg, 512)
	var pending atomic.Int64
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		writeResponses(conn, out)
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	hdr := make([]byte, rpcproto.RequestHeaderSize)
	frame := make([]byte, rpcproto.RequestHeaderSize)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			break // EOF or reset: the client is done sending
		}
		flen, err := rpcproto.RequestFrameSize(hdr)
		if err != nil {
			break
		}
		if cap(frame) < flen {
			frame = make([]byte, flen)
		}
		frame = frame[:flen]
		copy(frame, hdr)
		if _, err := io.ReadFull(br, frame[rpcproto.RequestHeaderSize:]); err != nil {
			break
		}
		req, err := rpcproto.Unmarshal(frame)
		if err != nil {
			break
		}
		pending.Add(1)
		s.rt.Deliver(req, func(r *rpcproto.Request, payload []byte, st rpcproto.Status) {
			// Worker goroutine. The writer always drains out, so this
			// send blocks only on TCP backpressure from the client.
			out <- respMsg{id: r.ID, st: st, payload: payload}
			pending.Add(-1)
		})
	}

	// The client half-closed: let in-flight requests respond, then
	// release the writer.
	for pending.Load() > 0 {
		sleepBriefly()
	}
	close(out)
	writerWG.Wait()
}

// writeResponses is the per-connection writer goroutine. After a write
// error it keeps draining out (dropping frames) so completion callbacks
// never block on a dead connection.
func writeResponses(conn net.Conn, out <-chan respMsg) {
	bw := bufio.NewWriterSize(conn, 64<<10)
	buf := make([]byte, 0, 4096)
	failed := false
	for m := range out {
		if failed {
			continue
		}
		var err error
		buf, err = rpcproto.AppendResponse(buf[:0], m.id, m.st, m.payload)
		if err == nil {
			_, err = bw.Write(buf)
		}
		if err == nil && len(out) == 0 {
			err = bw.Flush() // batch while the channel has backlog
		}
		if err != nil {
			failed = true
		}
	}
	if !failed {
		bw.Flush()
	}
}
