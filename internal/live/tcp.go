package live

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/arena"
	"repro/internal/rpcproto"
)

// Server serves the rpcproto stream protocol over TCP, delivering each
// decoded request to a Runtime and writing the response frame when the
// completion callback fires. One reader goroutine and one writer
// goroutine per connection; responses may leave out of request order
// (they are matched by id), exactly like a real nanosecond-RPC server.
//
// The data plane is zero-alloc in steady state: requests live in a
// per-connection arena (acquired at decode, released after the response
// frame is encoded), the reader decodes every complete frame per
// syscall through a frameReader, and the writer coalesces the response
// backlog into one vectored write through a respRing. See DESIGN §12.
type Server struct {
	rt *Runtime

	// lnMu guards ln and closed: Serve publishes the listener from the
	// serving goroutine and Close reads it from the caller's. closed
	// covers the race where Close runs before Serve has published —
	// whichever side arrives second closes the listener, so Serve can
	// never keep accepting past a Close.
	lnMu   sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup

	// Data-plane accounting, aggregated at connection close. leaked
	// counts arena slots still live when a connection tore down (a
	// request delivered but never completed); stale counts releases the
	// arena rejected (a double completion). Both are always zero on a
	// healthy server and are asserted by tests. Each gets its own cache
	// line: two closing connections must not bounce one line.
	leaked paddedInt64
	stale  paddedInt64
}

// NewServer wraps a started Runtime.
func NewServer(rt *Runtime) *Server { return &Server{rt: rt} }

// DataPlaneStats reports the leak / stale-handle totals across all
// closed connections: arena slots still live at teardown and releases
// the arena rejected as stale. Both are zero on a healthy server.
func (s *Server) DataPlaneStats() (leaked, stale int64) {
	return s.leaked.Load(), s.stale.Load()
}

// Serve accepts connections until the listener closes. It returns nil
// on a clean Close.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	closed := s.closed
	s.lnMu.Unlock()
	if closed {
		ln.Close()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// ServeBackground runs Serve on its own goroutine and returns a wait
// function that closes the server and reports Serve's error. It exists
// so sim-linked callers (cmd/altoserve, examples) need no concurrency
// syntax of their own: the goroutine and channel stay inside the
// sanctioned live boundary.
func (s *Server) ServeBackground(ln net.Listener) (wait func() error) {
	errs := make(chan error, 1) //altolint:bounded-send single send into capacity 1: Serve returns exactly once
	go func() { errs <- s.Serve(ln) }()
	return func() error {
		s.Close()
		return <-errs
	}
}

// Close stops accepting and waits for connection handlers to finish.
// Clients are expected to half-close after their last request; Drain
// the runtime first for a loss-free shutdown.
func (s *Server) Close() {
	s.lnMu.Lock()
	ln := s.ln
	s.closed = true
	s.lnMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// connState is one connection's data-plane state, shared between the
// reader (the handle goroutine), the workers completing its requests,
// and the writer goroutine flushing its respRing.
type connState struct {
	ring *respRing

	// pool holds this connection's in-flight requests; mu serializes the
	// reader's Acquire against the workers' ReleaseReuse. The handle
	// rides on Request.Pool, so completion needs no lookup.
	mu    sync.Mutex
	pool  *arena.Arena
	stale int64 // releases the pool rejected; mu-guarded

	// pending counts delivered-but-not-completed requests. When the
	// reader is done and pending hits zero the connection can close; the
	// completion that gets it there signals drained, replacing the old
	// sleep-poll teardown loop.
	pending    paddedInt64
	readerDone atomic.Bool
	drained    chan struct{} // capacity 1: teardown wake, non-blocking send
}

// complete is the single completion callback for every request on the
// connection: encode the response into the ring (copying the payload
// before the slot is recycled), release the arena slot, and signal
// teardown when the last in-flight request finishes. Runs on worker
// goroutines.
//
//altolint:hotpath
func (cs *connState) complete(r *rpcproto.Request, payload []byte, st rpcproto.Status) {
	cs.ring.append(r.ID, st, payload)
	id := arena.UnpackRequestID(r.Pool)
	cs.mu.Lock()
	if !cs.pool.ReleaseReuse(id) {
		cs.stale++
	}
	cs.mu.Unlock()
	if cs.pending.Add(-1) == 0 && cs.readerDone.Load() {
		select {
		case cs.drained <- struct{}{}:
		default:
		}
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	cs := &connState{
		ring:    newRespRing(),
		pool:    arena.New(),
		drained: make(chan struct{}, 1),
	}
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		cs.ring.writeLoop(conn)
	}()

	fr := newFrameReader(conn, connReadBuf, rpcproto.RequestHeaderSize, rpcproto.RequestFrameSize)
	done := DoneFunc(cs.complete) // bind once: no per-request closure
	for {
		frame, err := fr.next()
		if err != nil {
			break // EOF, reset, or a malformed frame: the client is done sending
		}
		cs.mu.Lock()
		req, id := cs.pool.Acquire()
		cs.mu.Unlock()
		if err := rpcproto.UnmarshalInto(req, frame); err != nil {
			cs.mu.Lock()
			cs.pool.ReleaseReuse(id)
			cs.mu.Unlock()
			break
		}
		req.Pool = id.Pack()
		cs.pending.Add(1)
		s.rt.Deliver(req, done)
	}

	// The client half-closed (or the stream broke): wait for in-flight
	// requests on the completion signal — no polling — then flush and
	// release the writer.
	cs.readerDone.Store(true)
	for cs.pending.Load() > 0 {
		<-cs.drained
	}
	cs.ring.close()
	writerWG.Wait()

	cs.mu.Lock()
	leaked, stale := int64(cs.pool.Live()), cs.stale
	cs.mu.Unlock()
	if leaked != 0 {
		s.leaked.Add(leaked)
	}
	if stale != 0 {
		s.stale.Add(stale)
	}
}
