package live

import "sync/atomic"

// cacheLine is the assumed coherence granularity. 64 bytes is right for
// x86-64 and most AArch64 server parts; a wrong guess here costs
// footprint, not correctness.
const cacheLine = 64

// The padded wrappers below hold one atomic counter per cache line, so
// counters written by different goroutines never share a line and a
// Store on one never invalidates its neighbour's. They embed the typed
// atomic, so call sites keep the plain Load/Store/Add method syntax and
// the padalign analyzer's "bare atomic array/adjacent fields" rules are
// satisfied structurally rather than by annotation. Sizes are pinned by
// TestPaddedSizes.

// paddedInt64 is an atomic.Int64 alone on its cache line.
type paddedInt64 struct {
	atomic.Int64
	_ [cacheLine - 8]byte
}

// paddedUint64 is an atomic.Uint64 alone on its cache line.
type paddedUint64 struct {
	atomic.Uint64
	_ [cacheLine - 8]byte
}

// paddedInt32 is an atomic.Int32 alone on its cache line.
type paddedInt32 struct {
	atomic.Int32
	_ [cacheLine - 4]byte
}
