package live

import (
	"sync"

	"repro/internal/policy"
)

// migBatch is a MIGRATE message: a batch of tasks moving from one
// group's NetRX tail to another's. The bounded migIn channel it travels
// on is the receive FIFO of §V; a full channel is a NACK and the batch
// returns to the source tail without replay.
type migBatch struct {
	src   int
	tasks []*task
}

// lgroup is one scheduling group: a run queue, one manager goroutine
// and W workers. All fields below the counters comment are owned by the
// manager goroutine; the run queue is shared under mu; metering fields
// are atomics fed by producers and workers.
type lgroup struct {
	rt *Runtime
	id int

	mu sync.Mutex
	q  taskDeque // NetRX: producers push tail, manager pops head/tail

	wake  chan struct{} // capacity 1: work arrived or worker freed
	migIn chan *migBatch

	workers []*worker

	// Metering (written outside the manager): arrivals by the producer
	// goroutines, the service-time sums by every worker in the group.
	// Each counter gets its own cache line — a worker bumping svcCount
	// must not invalidate the line a producer is bumping arrivals on.
	arrivals paddedUint64 // total requests steered here
	svcSumNS paddedInt64  // total handler time executed by this group's workers
	svcCount paddedInt64

	// Manager-owned policy state and scratch.
	model        *policy.ThresholdModel
	periodPS     policy.Duration
	view         []int // queue-length vector, rebuilt each tick from the board
	order, dests []int // policy.Decide scratch
	lastTickAt   policy.Duration
	lastArrivals uint64
	nextWorker   int // round-robin dispatch cursor among equally-loaded workers

	// Counters, manager-owned; read by Report after Close.
	ticks         uint64
	migrations    uint64
	migratedReqs  uint64
	nackedReqs    uint64
	guardSkips    uint64
	hill          uint64
	valley        uint64
	pairing       uint64
	thresholdEvts uint64
}

func newLGroup(rt *Runtime, id int) *lgroup {
	cfg := rt.cfg
	g := &lgroup{
		rt:       rt,
		id:       id,
		wake:     make(chan struct{}, 1),
		migIn:    make(chan *migBatch, cfg.MigrateFIFO),
		model:    policy.NewThresholdModel(cfg.WorkersPerGroup, cfg.SLOMult),
		periodPS: policy.Duration(cfg.Period.Nanoseconds()) * policy.Nanosecond,
		view:     make([]int, cfg.Groups),
		order:    make([]int, 0, cfg.Groups),
		dests:    make([]int, 0, cfg.Groups),
	}
	for w := 0; w < cfg.WorkersPerGroup; w++ {
		g.workers = append(g.workers, newWorker(g, id*cfg.WorkersPerGroup+w))
	}
	return g
}

// poke wakes the manager without blocking; a pending wake is enough.
//
//altolint:hotpath
func (g *lgroup) poke() {
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// run is the manager goroutine: the select loop stands in for the
// hardware manager tile, multiplexing arrivals, inbound MIGRATEs and
// the period tick.
func (g *lgroup) run() {
	defer g.rt.wg.Done()
	g.lastTickAt = g.rt.clock.Now()
	timer := newTickTimer(wallDuration(g.periodPS))
	defer timer.Stop()
	for {
		select {
		case <-g.rt.stop:
			return
		case <-g.wake:
			g.dispatch()
		case b := <-g.migIn:
			g.land(b)
			g.dispatch()
		case <-timer.C:
			eff := g.tick()
			timer.Reset(wallDuration(eff))
			g.dispatch()
		}
	}
}

// pickWorker returns the least-loaded worker with spare depth, or nil.
// Ties break round-robin so depth>1 does not pile onto worker 0.
//
//altolint:hotpath
func (g *lgroup) pickWorker() *worker {
	var best *worker
	bestLoad := int32(g.rt.cfg.WorkerDepth)
	n := len(g.workers)
	for i := 0; i < n; i++ {
		w := g.workers[(g.nextWorker+i)%n]
		if load := w.outstanding.Load(); load < bestLoad {
			best, bestLoad = w, load
			if load == 0 {
				break
			}
		}
	}
	if best != nil {
		g.nextWorker = (best.id % n) + 1
	}
	return best
}

// dispatch drains the run queue into workers up to their depth bound.
// Only the manager dispatches, so the outstanding check makes the
// channel send non-blocking by construction.
//
//altolint:hotpath
func (g *lgroup) dispatch() {
	for {
		w := g.pickWorker()
		if w == nil {
			return
		}
		g.mu.Lock()
		t := g.q.popHead()
		n := g.q.len()
		g.mu.Unlock()
		g.rt.qlens[g.id].Store(int64(n))
		if t == nil {
			return
		}
		w.outstanding.Add(1)
		w.ch <- t
	}
}

// land accepts an inbound MIGRATE batch onto the local tail and records
// the migrate-once landings.
func (g *lgroup) land(b *migBatch) {
	g.mu.Lock()
	for _, t := range b.tasks {
		t.req.Migrated = true
		g.q.pushTail(t)
	}
	n := g.q.len()
	g.mu.Unlock()
	g.rt.qlens[g.id].Store(int64(n))
	g.rt.ledgerMu.Lock()
	for _, t := range b.tasks {
		g.rt.ledger.MigrateLanded(t.req.ID)
	}
	g.rt.ledgerMu.Unlock()
}

// offered estimates the group's offered load A in Erlangs: the arrival
// rate over the last tick window times the cumulative mean service
// time, both measured — the live analogue of the simulator's load
// meter.
//
//altolint:hotpath
func (g *lgroup) offered(now policy.Duration) float64 {
	arr := g.arrivals.Load()
	dArr := arr - g.lastArrivals
	dt := now - g.lastTickAt
	g.lastArrivals = arr
	g.lastTickAt = now
	if dArr == 0 || dt <= 0 {
		return 0
	}
	cnt := g.svcCount.Load()
	if cnt == 0 {
		return 0
	}
	meanNS := float64(g.svcSumNS.Load()) / float64(cnt)
	lambdaPerNS := float64(dArr) / float64(dt/policy.Nanosecond)
	return lambdaPerNS * meanNS
}

// tick is Algorithm 1: refresh the threshold from the measured load,
// read the queue-length board (the UPDATE view), classify, and send
// MIGRATE batches. Returns the effective period for the next tick,
// clamped by the measured tick cost.
//
//altolint:hotpath
func (g *lgroup) tick() policy.Duration {
	g.ticks++
	start := g.rt.clock.Now()
	cfg := &g.rt.cfg

	threshold := g.model.Threshold(g.offered(start))

	g.mu.Lock()
	qlen := g.q.len()
	g.mu.Unlock()
	g.rt.qlens[g.id].Store(int64(qlen))
	for i := range g.view {
		g.view[i] = int(g.rt.qlens[i].Load())
	}
	g.view[g.id] = qlen

	trigger, pattern, plan := policy.Decide(g.view, g.id, threshold,
		cfg.Bulk, cfg.Concurrency, !cfg.DisablePatterns, g.order, g.dests)
	switch trigger {
	case policy.TriggerPattern:
		switch pattern {
		case policy.PatternHill:
			g.hill++
		case policy.PatternValley:
			g.valley++
		case policy.PatternPairing:
			g.pairing++
		}
	case policy.TriggerThreshold:
		g.thresholdEvts++
	}
	for _, dst := range plan {
		g.sendMigrate(dst)
	}

	cost := g.rt.clock.Now() - start
	return policy.EffectivePeriod(g.periodPS, cost)
}

// sendMigrate builds one MIGRATE batch for dst and offers it to the
// destination FIFO. Guard, batch sizing and migrate-once all go through
// the shared policy core.
func (g *lgroup) sendMigrate(dst int) {
	cfg := &g.rt.cfg
	batch := policy.BatchSize(cfg.Bulk, cfg.Concurrency)

	g.mu.Lock()
	srcLen := g.q.len()
	dstView := int(g.rt.qlens[dst].Load())
	if !cfg.DisableGuard && !policy.GuardAllows(srcLen, dstView, batch) {
		g.mu.Unlock()
		g.guardSkips++
		return
	}
	count := policy.MigratableCount(srcLen, batch, func(i int) bool {
		t := g.q.at(srcLen - 1 - i)
		return t.req.Migrated && !cfg.AllowRemigration
	})
	if count == 0 {
		g.mu.Unlock()
		return
	}
	tasks := make([]*task, count)
	for i := 0; i < count; i++ {
		tasks[i] = g.q.popTail()
	}
	n := g.q.len()
	g.mu.Unlock()
	g.rt.qlens[g.id].Store(int64(n))

	b := &migBatch{src: g.id, tasks: tasks}
	select {
	case g.rt.groups[dst].migIn <- b:
		g.migrations++
		g.migratedReqs += uint64(count)
	default:
		// NACK: the destination FIFO is full. Restore the tasks to the
		// source tail in their original order (tasks[0] was the newest).
		g.nackedReqs += uint64(count)
		g.mu.Lock()
		for i := count - 1; i >= 0; i-- {
			g.q.pushTail(tasks[i])
		}
		n := g.q.len()
		g.mu.Unlock()
		g.rt.qlens[g.id].Store(int64(n))
	}
}
