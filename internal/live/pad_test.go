package live

import (
	"testing"
	"unsafe"
)

// TestPaddedSizes pins the padded counter wrappers to exactly one cache
// line each, and the embedded atomic to the wrapper's start — the two
// facts the false-sharing argument in pad.go rests on. A Go toolchain
// that laid these out differently would silently repack the qlens board
// into shared lines.
func TestPaddedSizes(t *testing.T) {
	if s := unsafe.Sizeof(paddedInt64{}); s != cacheLine {
		t.Errorf("paddedInt64 is %d bytes, want %d", s, cacheLine)
	}
	if s := unsafe.Sizeof(paddedUint64{}); s != cacheLine {
		t.Errorf("paddedUint64 is %d bytes, want %d", s, cacheLine)
	}
	if s := unsafe.Sizeof(paddedInt32{}); s != cacheLine {
		t.Errorf("paddedInt32 is %d bytes, want %d", s, cacheLine)
	}
	var p64 paddedInt64
	if off := unsafe.Offsetof(p64.Int64); off != 0 {
		t.Errorf("paddedInt64 counter at offset %d, want 0", off)
	}
	var p32 paddedInt32
	if off := unsafe.Offsetof(p32.Int32); off != 0 {
		t.Errorf("paddedInt32 counter at offset %d, want 0", off)
	}
	// Board entries must start on distinct lines: stride == size.
	board := make([]paddedInt64, 2)
	d := uintptr(unsafe.Pointer(&board[1])) - uintptr(unsafe.Pointer(&board[0]))
	if d != cacheLine {
		t.Errorf("qlens board stride is %d bytes, want %d", d, cacheLine)
	}
}
