// Package live is the second consumer of the engine-agnostic policy
// core (internal/policy): a real goroutine runtime that schedules RPCs
// the way the simulated ALTOCUMULUS runtime does, but on the host OS
// instead of a discrete-event engine. Each group runs one manager
// goroutine plus W worker goroutines; requests land in a per-group
// MPSC run queue (the NetRX stand-in), workers receive work over
// bounded channels (the JBSQ(depth) dispatch bound), and managers run
// Algorithm 1 on a Period-paced tick driven by a monotonic clock behind
// the policy.Clock seam. Descriptor migration travels over bounded
// channels standing in for the send/receive FIFOs of §V: a full
// destination channel is a NACK and the batch returns to the source
// tail, exactly as the hardware model drops without replay.
//
// The policy decisions — threshold, patterns, batch sizing, the
// q[src]-S >= q[dst]+S guard, migrate-at-most-once — are the same
// policy calls the simulator makes, so the two runtimes cannot drift.
// Conservation and migrate-once are asserted per run by check.Ledger.
//
// Concurrency here is real, not simulated: this package is the
// sanctioned live boundary of the determinism lint (see
// internal/lint/simsync.go), the one place goroutines and channels may
// coexist with sim-typed data.
//
//altolint:live-boundary real scheduling runtime; OS concurrency is the subject under test, not a simulation hazard
package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/policy"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Handler executes one request on a worker goroutine and returns the
// response payload and status. Implementations must be safe for
// concurrent calls from all worker goroutines.
type Handler interface {
	Serve(r *rpcproto.Request) ([]byte, rpcproto.Status)
}

// DoneFunc is the completion callback of one delivered request. It runs
// on the worker goroutine that executed the request, after the handler
// returns; keep it short (typically: enqueue the response frame).
type DoneFunc func(r *rpcproto.Request, payload []byte, st rpcproto.Status)

// Config sizes a Runtime. The zero value is unusable; fields left zero
// take the documented defaults.
type Config struct {
	Groups          int // manager groups (default 2)
	WorkersPerGroup int // workers per group (default 4)

	// WorkerDepth bounds outstanding requests per worker (JBSQ-style,
	// default 2). The manager never sends to a worker at its bound, so
	// worker channel sends never block.
	WorkerDepth int

	// Period is the manager tick; default 200µs. The effective period
	// self-clamps to twice the measured tick cost (policy.EffectivePeriod),
	// the live analogue of the Algorithm 1 runtime-cost constraint.
	Period time.Duration

	Bulk        int     // migration bulk B (default 16)
	Concurrency int     // migration concurrency; batch S = B/Concurrency
	SLOMult     float64 // L, the SLO multiplier of the threshold model (default 10)

	DisablePatterns  bool // threshold-only triggering (ablation)
	DisableGuard     bool // drop the q[src]-S >= q[dst]+S guard (ablation)
	AllowRemigration bool // lift migrate-at-most-once (ablation)

	// MigrateFIFO is the per-group inbound migration channel capacity in
	// batches (default 4); a full channel NACKs the batch.
	MigrateFIFO int

	// Expected pre-sizes the conservation ledger (requests per run).
	Expected int

	// Steer maps an arriving request to a group; nil uses connection
	// hashing (Conn mod Groups), the RSS stand-in.
	Steer func(r *rpcproto.Request) int

	// Clock overrides the monotonic wall clock (tests use synthetic
	// clocks; the default is the only wall-clock source in the package).
	Clock policy.Clock
}

func (c *Config) applyDefaults() {
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if c.WorkersPerGroup <= 0 {
		c.WorkersPerGroup = 4
	}
	if c.WorkerDepth <= 0 {
		c.WorkerDepth = 2
	}
	if c.Period <= 0 {
		c.Period = 200 * time.Microsecond
	}
	if c.Bulk <= 0 {
		c.Bulk = 16
	}
	if c.Concurrency <= 0 {
		c.Concurrency = c.Groups - 1
		if c.Concurrency < 1 {
			c.Concurrency = 1
		}
	}
	if c.SLOMult <= 0 {
		c.SLOMult = 10
	}
	if c.MigrateFIFO <= 0 {
		c.MigrateFIFO = 4
	}
}

// Stats are the runtime counters after a run, the live analogue of the
// simulator's core.Stats.
type Stats struct {
	Delivered, Completed uint64

	Ticks        uint64
	Migrations   uint64 // MIGRATE batches accepted by a destination
	MigratedReqs uint64 // requests inside accepted batches
	NackedReqs   uint64 // requests returned to source (destination FIFO full)
	GuardSkips   uint64 // migrations suppressed by the guard

	HillEvents, ValleyEvents, PairingEvents, ThresholdEvts uint64
}

// Report is the outcome of one live run: counters, the end-to-end
// latency profile (delivery to completion, as sim.Time picoseconds),
// and the conservation verdict.
type Report struct {
	Stats   Stats
	Check   *check.Report
	P50     sim.Time
	P99     sim.Time
	P999    sim.Time
	Mean    sim.Time
	Max     sim.Time
	Samples int
}

func (r *Report) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p99.9=%v max=%v; ticks=%d migrations=%d migrated=%d nacked=%d guard-skips=%d",
		r.Samples, r.P50, r.P99, r.P999, r.Max, r.Stats.Ticks,
		r.Stats.Migrations, r.Stats.MigratedReqs, r.Stats.NackedReqs, r.Stats.GuardSkips)
}

// task is one in-flight request plus its delivery metadata.
type task struct {
	req     *rpcproto.Request
	arrival policy.Duration // clock stamp at Deliver
	done    DoneFunc
}

// Runtime is a live ALTOCUMULUS scheduler instance. Construct with New,
// start with Start, feed with Deliver, then Drain, Close, Report.
type Runtime struct {
	cfg     Config
	handler Handler
	clock   policy.Clock

	groups []*lgroup
	// qlens is the shared queue-length board, the stand-in for the UPDATE
	// broadcast of Table II: each manager publishes its NetRX length and
	// reads the others' at tick time. Entries are cache-line padded: the
	// board is written by every producer on every Deliver and by every
	// manager on every dispatch, so bare atomic.Int64 entries would
	// false-share one line between up to eight groups (see padalign).
	qlens []paddedInt64

	ledgerMu sync.Mutex
	ledger   *check.Ledger

	// taskPool recycles task boxes between Deliver and serve, so the
	// steady-state per-request path allocates nothing: Put/Get of a live
	// pointer is alloc-free, and only the cold start (and post-GC refill)
	// mints new boxes.
	taskPool sync.Pool

	// inflight is bumped by every Deliver (producer goroutines) and
	// dropped by every completion (worker goroutines): the single most
	// contended word in the runtime, padded so neighbouring fields'
	// readers do not share its line.
	inflight paddedInt64
	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
	closed   bool
}

// New builds a runtime; Start launches its goroutines.
func New(cfg Config, h Handler) (*Runtime, error) {
	if h == nil {
		return nil, errors.New("live: nil handler")
	}
	cfg.applyDefaults()
	if cfg.Concurrency >= cfg.Groups && cfg.Groups > 1 {
		cfg.Concurrency = cfg.Groups - 1
	}
	rt := &Runtime{
		cfg:     cfg,
		handler: h,
		clock:   cfg.Clock,
		qlens:   make([]paddedInt64, cfg.Groups),
		ledger:  check.NewLedger(cfg.Expected, cfg.AllowRemigration),
		stop:    make(chan struct{}),
	}
	if rt.clock == nil {
		rt.clock = newWallClock()
	}
	// Cold-start task boxes; the steady state recycles them through the
	// pool, so Deliver's Get is allocation-free.
	rt.taskPool.New = func() any { return new(task) }
	for g := 0; g < cfg.Groups; g++ {
		rt.groups = append(rt.groups, newLGroup(rt, g))
	}
	return rt, nil
}

// Start launches the manager and worker goroutines. Call once.
func (rt *Runtime) Start() {
	if rt.started {
		panic("live: Start called twice")
	}
	rt.started = true
	for _, g := range rt.groups {
		for _, w := range g.workers {
			rt.wg.Add(1)
			go w.run()
		}
		rt.wg.Add(1)
		go g.run()
	}
}

// steer maps a request to its home group.
func (rt *Runtime) steer(r *rpcproto.Request) int {
	if rt.cfg.Steer != nil {
		if g := rt.cfg.Steer(r); g >= 0 && g < len(rt.groups) {
			return g
		}
	}
	return int(r.Conn) % len(rt.groups)
}

// Deliver hands one request to the runtime. Safe for concurrent use
// (the network goroutines are the producers of the MPSC run queues).
// done fires exactly once, on a worker goroutine.
//
//altolint:hotpath
func (rt *Runtime) Deliver(r *rpcproto.Request, done DoneFunc) {
	gid := rt.steer(r)
	r.GroupHint = gid
	t := rt.taskPool.Get().(*task)
	t.req, t.arrival, t.done = r, rt.clock.Now(), done
	rt.inflight.Add(1)
	rt.ledgerMu.Lock()
	rt.ledger.Delivered(r.ID)
	rt.ledgerMu.Unlock()
	g := rt.groups[gid]
	g.mu.Lock()
	g.q.pushTail(t)
	n := g.q.len()
	g.mu.Unlock()
	rt.qlens[gid].Store(int64(n))
	g.arrivals.Add(1)
	g.poke()
}

// Drain blocks until every delivered request has completed, or the
// timeout elapses.
func (rt *Runtime) Drain(timeout time.Duration) error {
	deadline := rt.clock.Now() + policy.Duration(timeout.Nanoseconds())*policy.Nanosecond
	for rt.inflight.Load() > 0 {
		if rt.clock.Now() > deadline {
			return fmt.Errorf("live: drain timeout with %d request(s) in flight", rt.inflight.Load())
		}
		sleepBriefly()
	}
	return nil
}

// Close stops the manager and worker goroutines and waits for them.
// Drain first; queued work is abandoned at Close (and will fail the
// conservation check).
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	close(rt.stop)
	rt.wg.Wait()
}

// Report aggregates counters, the latency profile and the conservation
// verdict. Call after Close: the per-group counters are goroutine-owned
// until then.
func (rt *Runtime) Report() *Report {
	if !rt.closed {
		panic("live: Report before Close")
	}
	rep := &Report{}
	var h latHist
	for _, g := range rt.groups {
		rep.Stats.Ticks += g.ticks
		rep.Stats.Migrations += g.migrations
		rep.Stats.MigratedReqs += g.migratedReqs
		rep.Stats.NackedReqs += g.nackedReqs
		rep.Stats.GuardSkips += g.guardSkips
		rep.Stats.HillEvents += g.hill
		rep.Stats.ValleyEvents += g.valley
		rep.Stats.PairingEvents += g.pairing
		rep.Stats.ThresholdEvts += g.thresholdEvts
		for _, w := range g.workers {
			h.merge(&w.lats)
		}
	}
	rt.ledgerMu.Lock()
	rep.Check = rt.ledger.Verify()
	rt.ledgerMu.Unlock()
	rep.Stats.Delivered = rep.Check.Delivered
	rep.Stats.Completed = rep.Check.Completed
	rep.Samples = int(h.count)
	if rep.Samples > 0 {
		rep.P50 = sim.Time(h.quantile(0.50))
		rep.P99 = sim.Time(h.quantile(0.99))
		rep.P999 = sim.Time(h.quantile(0.999))
		rep.Mean = sim.Time(h.mean())
		rep.Max = sim.Time(h.max)
	}
	return rep
}
