package live

import "math/bits"

// latHist is a fixed-footprint log-bucketed latency histogram: 2^histSubBits
// sub-buckets per power of two, so any recorded value is off by at most
// 1/2^histSubBits (≈3% at the default 5 bits) from its bucket's
// representative — exact enough for p50/p99/p99.9 while a sweep of
// millions of RPCs stays at a constant ~15 KiB instead of an
// all-samples slice that scales linearly and then needs a sort. Values
// are unit-agnostic int64s (the server records picoseconds, the loadgen
// nanoseconds); the zero value is ready to use and add is
// allocation-free, so it can sit on the per-worker hot path.
//
// Not safe for concurrent use: each worker / receiver owns one and
// they are merged after the goroutines join.
type latHist struct {
	counts [histSlots]uint64
	count  uint64
	sum    int64
	max    int64
}

const (
	histSubBits = 5 // 32 sub-buckets per power of two: ≤ ~3% relative error
	histSub     = 1 << histSubBits
	// histSlots covers all of int64: the first 2*histSub slots are exact
	// (values below 2^(histSubBits+1)), then one histSub-wide group per
	// remaining power of two up to 2^62.
	histSlots = (64 - histSubBits) * histSub
)

// slotOf maps a non-negative value to its bucket index.
func slotOf(v int64) int {
	if v < 2*histSub {
		return int(v) // exact region: slots [0, 2*histSub)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v)) // >= histSubBits+1 here
	group := msb - histSubBits
	sub := int(v>>(msb-histSubBits)) & (histSub - 1)
	return (group+1)*histSub + sub
}

// slotValue returns the representative (midpoint) value of a bucket,
// chosen so quantile extraction is monotone in the slot index.
func slotValue(slot int) int64 {
	if slot < 2*histSub {
		return int64(slot)
	}
	group := slot/histSub - 1
	sub := slot % histSub
	lo := int64(histSub+sub) << group
	return lo + int64(1)<<(group-1)
}

// add records one value. Negative values clamp to zero (a clock
// anomaly, not a reason to corrupt the distribution).
//
//altolint:hotpath
func (h *latHist) add(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[slotOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// merge folds o into h.
func (h *latHist) merge(o *latHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// reset clears the histogram for reuse.
func (h *latHist) reset() { *h = latHist{} }

// quantile returns the representative value at quantile q in [0,1].
// q=1 returns the exact maximum.
func (h *latHist) quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var cum uint64
	for slot, c := range h.counts {
		cum += c
		if cum > rank {
			v := slotValue(slot)
			if v > h.max {
				return h.max // the top occupied bucket's midpoint can overshoot
			}
			return v
		}
	}
	return h.max
}

// mean returns the exact mean of the recorded values.
func (h *latHist) mean() int64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / int64(h.count)
}
