package live

import (
	"encoding/binary"
	"sync"

	"repro/internal/mica"
	"repro/internal/rpcproto"
)

// EchoHandler answers every request with its own payload. It is the
// loopback workload of the soak tests: zero service time beyond the
// scheduling path itself.
type EchoHandler struct{}

func (EchoHandler) Serve(r *rpcproto.Request) ([]byte, rpcproto.Status) {
	return r.Payload, rpcproto.StatusOK
}

// SpinHandler burns roughly Iters arithmetic iterations per request
// before echoing, a stand-in for a fixed service time without sleeping
// (sleep would free the worker's OS thread and hide queueing).
type SpinHandler struct {
	Iters int
}

func (h SpinHandler) Serve(r *rpcproto.Request) ([]byte, rpcproto.Status) {
	acc := uint64(r.ID)
	for i := 0; i < h.Iters; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	if acc == 0 { // defeat dead-code elimination; never taken in practice
		return nil, rpcproto.StatusError
	}
	return r.Payload, rpcproto.StatusOK
}

// KVHandler serves GET/SET/SCAN against a MICA store. The store's
// concurrency model is EREW — one core per partition — so the handler
// serializes per partition with a mutex, the software analogue of the
// paper's exclusive partition ownership; cross-partition requests still
// run fully in parallel.
type KVHandler struct {
	store *mica.Store
	locks []sync.Mutex
	// ScanMax bounds entries visited per SCAN (default 128).
	ScanMax int
}

// NewKVHandler wraps a store for live serving.
func NewKVHandler(store *mica.Store) *KVHandler {
	return &KVHandler{
		store:   store,
		locks:   make([]sync.Mutex, store.Partitions()),
		ScanMax: 128,
	}
}

func (h *KVHandler) Serve(r *rpcproto.Request) ([]byte, rpcproto.Status) {
	switch r.Op {
	case rpcproto.OpGet:
		p := h.store.Partition(r.Payload)
		h.locks[p].Lock()
		v, ok := h.store.Get(r.Payload)
		h.locks[p].Unlock()
		if !ok {
			return nil, rpcproto.StatusNotFound
		}
		return v, rpcproto.StatusOK
	case rpcproto.OpSet:
		// SET payload: 2-byte key length, key, value.
		if len(r.Payload) < 2 {
			return nil, rpcproto.StatusError
		}
		klen := int(binary.LittleEndian.Uint16(r.Payload[0:2]))
		if 2+klen > len(r.Payload) {
			return nil, rpcproto.StatusError
		}
		key, val := r.Payload[2:2+klen], r.Payload[2+klen:]
		p := h.store.Partition(key)
		h.locks[p].Lock()
		err := h.store.Set(key, val)
		h.locks[p].Unlock()
		if err != nil {
			return nil, rpcproto.StatusError
		}
		return nil, rpcproto.StatusOK
	case rpcproto.OpScan:
		// SCAN payload: 1-byte partition index hint.
		p := 0
		if len(r.Payload) > 0 {
			p = int(r.Payload[0]) % len(h.locks)
		}
		h.locks[p].Lock()
		n := h.store.Scan(p, h.ScanMax, nil)
		h.locks[p].Unlock()
		var out [4]byte
		binary.LittleEndian.PutUint32(out[:], uint32(n))
		return out[:], rpcproto.StatusOK
	default:
		return r.Payload, rpcproto.StatusOK
	}
}

// EncodeSet builds the SET payload for key/value.
func EncodeSet(key, value []byte) []byte {
	out := make([]byte, 2+len(key)+len(value))
	binary.LittleEndian.PutUint16(out[0:2], uint16(len(key)))
	copy(out[2:], key)
	copy(out[2+len(key):], value)
	return out
}
