package live

import (
	"time"

	"repro/internal/policy"
)

// This file is the live runtime's only wall-clock surface: every
// time.Now / time.Since / timer / sleep in the package lives here,
// behind the policy.Clock seam, so the rest of the runtime (and the
// policy core it calls) stays clock-free and the detnow lint exceptions
// are confined to one reviewable place.

// wallClock implements policy.Clock over the host monotonic clock,
// reporting picoseconds since its construction epoch.
type wallClock struct {
	base time.Time
}

func newWallClock() *wallClock {
	return &wallClock{base: time.Now()} //altolint:allow detnow live-runtime epoch; all wall-clock reads are confined to clock.go
}

// Now returns the monotonic elapsed time since the epoch.
func (c *wallClock) Now() policy.Duration {
	ns := time.Since(c.base).Nanoseconds() //altolint:allow detnow monotonic read behind the policy.Clock seam
	return policy.Duration(ns) * policy.Nanosecond
}

// wallDuration converts a policy duration to the host representation,
// rounding up to 1ns so a positive policy duration never becomes a
// zero timer.
func wallDuration(d policy.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	ns := int64(d / policy.Nanosecond)
	if ns < 1 {
		ns = 1
	}
	return time.Duration(ns) * time.Nanosecond
}

// newTickTimer returns a running timer for the manager's period pacing.
func newTickTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d) //altolint:allow detnow manager tick pacing; the period timer is the live runtime's clock edge
}

// newSampleTicker paces the relay's depth-view sampler, the live
// analogue of the rack tier's UPDATE broadcast period.
func newSampleTicker(d time.Duration) *time.Ticker {
	return time.NewTicker(d) //altolint:allow detnow relay depth-sampling cadence; the view-staleness bound is wall time by definition
}

// sleepBriefly backs off a polling loop (Drain, connection teardown)
// without burning a core.
func sleepBriefly() {
	time.Sleep(100 * time.Microsecond) //altolint:allow detnow bounded poll backoff in drain paths
}
