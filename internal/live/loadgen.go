package live

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/rpcproto"
)

// LoadgenConfig drives RunLoadgen: an open-loop generator (arrivals are
// scheduled by wall time, not by response arrival, so queueing delay is
// visible instead of self-throttled) over C connections.
type LoadgenConfig struct {
	Addr     string
	Conns    int     // parallel connections (default 4)
	Requests int     // total requests across all connections
	RateRPS  float64 // aggregate offered rate; <=0 means send as fast as possible

	// Prepare fills Op/Payload for one request before it is marshalled;
	// nil leaves every request an ECHO with a 16-byte payload. conn and
	// seq identify the request; Prepare must be safe for concurrent
	// calls with distinct conn values.
	Prepare func(r *rpcproto.Request, conn, seq int)
}

// LoadgenResult is the client-side view of a run.
type LoadgenResult struct {
	Sent, Received uint64
	BadStatus      uint64 // responses with Status != OK (NOT_FOUND counts as OK for KV)
	Elapsed        time.Duration
	AchievedRPS    float64
	P50, P99, P999 time.Duration
	Mean, Max      time.Duration
}

func (r *LoadgenResult) String() string {
	return fmt.Sprintf("sent=%d recv=%d %.0f RPS; p50=%v p99=%v p99.9=%v max=%v",
		r.Sent, r.Received, r.AchievedRPS, r.P50, r.P99, r.P999, r.Max)
}

// RunLoadgen runs the generator to completion and reports client-side
// latency percentiles (send to response, per request id).
func RunLoadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("live: loadgen needs Requests > 0")
	}
	clock := newWallClock()
	res := &LoadgenResult{}
	var mu sync.Mutex
	var all []int64                     // latencies, ns
	errs := make(chan error, cfg.Conns) //altolint:bounded-send at most one send per connection into capacity Conns
	var wg sync.WaitGroup
	startAt := clock.Now()
	for c := 0; c < cfg.Conns; c++ {
		n := cfg.Requests / cfg.Conns
		if c < cfg.Requests%cfg.Conns {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			lats, bad, err := runConn(&cfg, clock, c, n)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			all = append(all, lats...)
			res.BadStatus += bad
			mu.Unlock()
		}(c, n)
	}
	wg.Wait()
	res.Elapsed = wallDuration(clock.Now() - startAt)
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	res.Sent = uint64(cfg.Requests)
	res.Received = uint64(len(all))
	if res.Elapsed > 0 {
		res.AchievedRPS = float64(res.Received) / res.Elapsed.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		pick := func(q float64) time.Duration {
			i := int(q*float64(len(all))+0.5) - 1
			if i < 0 {
				i = 0
			}
			if i >= len(all) {
				i = len(all) - 1
			}
			return time.Duration(all[i])
		}
		res.P50, res.P99, res.P999 = pick(0.50), pick(0.99), pick(0.999)
		res.Max = time.Duration(all[len(all)-1])
		var sum int64
		for _, v := range all {
			sum += v
		}
		res.Mean = time.Duration(sum / int64(len(all)))
	}
	return res, nil
}

// runConn drives one connection: a paced sender plus a receiver that
// matches responses to send timestamps by request id. IDs are
// seq*Conns+conn — unique across the run and dense in [0, Requests),
// which the server's conservation ledger indexes by.
func runConn(cfg *LoadgenConfig, clock *wallClock, c, n int) ([]int64, uint64, error) {
	conn, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()

	// Send timestamps cross the sender/receiver goroutine boundary
	// through the server, which the race detector cannot see; atomics
	// give the handoff a real happens-before edge.
	// Each slot is written once by the sender and read once by the
	// receiver; padding n slots to 64B each would cost 16x the footprint
	// for a line that is shared at most once per request.
	//altolint:allow padalign single-writer write-once timestamp slots; footprint over padding
	sendNS := make([]atomic.Int64, n)
	var bad uint64
	lats := make([]int64, 0, n)
	recvErr := make(chan error, 1) //altolint:bounded-send the receiver goroutine sends exactly once (first error or final nil) into capacity 1
	go func() {
		br := bufio.NewReaderSize(conn, 64<<10)
		hdr := make([]byte, rpcproto.ResponseHeaderSize)
		frame := make([]byte, rpcproto.ResponseHeaderSize)
		for got := 0; got < n; got++ {
			if _, err := io.ReadFull(br, hdr); err != nil {
				recvErr <- fmt.Errorf("live: loadgen conn %d: read after %d responses: %w", c, got, err)
				return
			}
			flen, err := rpcproto.ResponseFrameSize(hdr)
			if err != nil {
				recvErr <- err
				return
			}
			if cap(frame) < flen {
				frame = make([]byte, flen)
			}
			frame = frame[:flen]
			copy(frame, hdr)
			if _, err := io.ReadFull(br, frame[rpcproto.ResponseHeaderSize:]); err != nil {
				recvErr <- err
				return
			}
			resp, _, err := rpcproto.DecodeResponse(frame)
			if err != nil {
				recvErr <- err
				return
			}
			if int(resp.ID)%cfg.Conns != c {
				recvErr <- fmt.Errorf("live: loadgen conn %d: stray response id %#x", c, resp.ID)
				return
			}
			seq := int(resp.ID) / cfg.Conns
			if seq >= n {
				recvErr <- fmt.Errorf("live: loadgen conn %d: response seq %d out of range", c, seq)
				return
			}
			if resp.Status == rpcproto.StatusError {
				bad++
			}
			lats = append(lats, int64((clock.Now()-policy.Duration(sendNS[seq].Load())*policy.Nanosecond)/policy.Nanosecond))
		}
		recvErr <- nil
	}()

	var interval policy.Duration // per-request gap on this connection
	if cfg.RateRPS > 0 {
		interval = policy.Duration(float64(cfg.Conns) / cfg.RateRPS * 1e9 * float64(policy.Nanosecond))
	}
	bw := bufio.NewWriterSize(conn, 64<<10)
	buf := make([]byte, 0, 4096)
	start := clock.Now()
	for i := 0; i < n; i++ {
		if interval > 0 {
			target := start + policy.Duration(i)*interval
			if d := target - clock.Now(); d > 0 {
				time.Sleep(wallDuration(d)) //altolint:allow detnow open-loop pacing sleep; the loadgen is wall-clock by definition
			}
		}
		r := rpcproto.Request{ID: uint64(i*cfg.Conns + c), Conn: uint32(c), Op: rpcproto.OpEcho}
		if cfg.Prepare != nil {
			cfg.Prepare(&r, c, i)
		} else {
			var p [16]byte
			r.Payload = p[:]
		}
		buf, err = rpcproto.AppendRequest(buf[:0], &r)
		if err != nil {
			return nil, 0, err
		}
		sendNS[i].Store(int64(clock.Now() / policy.Nanosecond))
		if _, err := bw.Write(buf); err != nil {
			return nil, 0, fmt.Errorf("live: loadgen conn %d: write: %w", c, err)
		}
		if interval > 0 {
			if err := bw.Flush(); err != nil {
				return nil, 0, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, 0, err
	}
	// Half-close: the server drains in-flight work then closes the
	// response stream after the receiver has everything.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	if err := <-recvErr; err != nil {
		return nil, 0, err
	}
	return lats, bad, nil
}
