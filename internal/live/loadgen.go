package live

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/rpcproto"
)

// LoadgenConfig drives the load generator: an open-loop generator
// (arrivals are scheduled by wall time, not by response arrival, so
// queueing delay is visible instead of self-throttled) over
// Conns×Clients connections.
type LoadgenConfig struct {
	Addr     string
	Conns    int     // connections per client (default 4)
	Clients  int     // client multiplier: total streams = Conns*Clients (default 1)
	Requests int     // total requests across all connections (RunLoadgen only)
	RateRPS  float64 // aggregate offered rate; <=0 means send as fast as possible

	// Window bounds per-connection outstanding requests (default 16384).
	// The sender stalls — counted, not silent — when the window is full,
	// so an overloaded server shows up as Stalls plus latency, never as
	// unbounded client memory: latency samples live in fixed send-slot
	// rings of this size instead of the old per-request slice.
	Window int

	// Prepare fills Op/Payload for one request before it is marshalled;
	// nil leaves every request an ECHO with a 16-byte payload. conn and
	// seq identify the request; Prepare must be safe for concurrent
	// calls with distinct conn values.
	Prepare func(r *rpcproto.Request, conn, seq int)
}

// LoadgenResult is the client-side view of a run (or of one round of a
// persistent Client session).
type LoadgenResult struct {
	Sent, Received uint64
	BadStatus      uint64 // responses with Status != OK (NOT_FOUND counts as OK for KV)
	Stalls         uint64 // sender waits on a full window (overload backpressure)
	Dropped        uint64 // latency samples lost to send-slot reuse (never at Window ≥ in-flight)
	Elapsed        time.Duration
	AchievedRPS    float64
	P50, P99, P999 time.Duration
	Mean, Max      time.Duration
}

func (r *LoadgenResult) String() string {
	return fmt.Sprintf("sent=%d recv=%d %.0f RPS; p50=%v p99=%v p99.9=%v max=%v stalls=%d",
		r.Sent, r.Received, r.AchievedRPS, r.P50, r.P99, r.P999, r.Max, r.Stalls)
}

// lgConn is one persistent loadgen connection: a paced sender and a
// frame-batched receiver share it for the lifetime of the Client, with
// latency samples crossing between them through a fixed ring of
// write-once send slots.
type lgConn struct {
	idx  int
	conn net.Conn
	bw   *bufio.Writer
	fr   *frameReader

	// Send slots: slot i%window carries the send timestamp (ns) and the
	// sequence number that stamped it. The window bound means a slot is
	// never rewritten before the receiver consumed it; the seq check
	// catches (and counts) the pathological reuse instead of emitting a
	// garbage sample. Single-writer write-once-per-window slots; padding
	// each to 64B would cost 8x the footprint for lines shared at most
	// once per request.
	//altolint:allow padalign single-writer write-once timestamp slots; footprint over padding
	sendNS []atomic.Int64
	//altolint:allow padalign single-writer write-once sequence slots; footprint over padding
	sendSeq []atomic.Int64

	// recvd is the receiver's cumulative response count, read by the
	// sender for window backpressure: the only word the two goroutines
	// share at high frequency, so it gets its own line.
	recvd paddedInt64

	seq int64 // cumulative requests sent; sender-owned

	// Round state, owned by the goroutine named in the comment.
	hist    latHist // receiver: this round's latency profile (ns)
	bad     uint64  // receiver
	dropped uint64  // receiver
	stalls  uint64  // sender
	sendErr error   // sender; read after the round joins
	recvErr error   // receiver; read after the round joins
}

// Client is a persistent loadgen session: connections dial once and
// survive across Run rounds, so a benchmark loop measures the
// steady-state data plane, not connection setup. Not safe for
// concurrent Run calls.
type Client struct {
	cfg   LoadgenConfig
	conns []*lgConn

	agg        latHist // merged profile across all rounds
	sent, recv uint64
	bad        uint64
	stalls     uint64
	dropped    uint64
	elapsed    time.Duration // sum of round active times
	clock      *wallClock
}

// NewLoadgenClient dials the configured connections. Close releases
// them; Run drives rounds in between.
func NewLoadgenClient(cfg LoadgenConfig) (*Client, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 1 << 14
	}
	cl := &Client{cfg: cfg, clock: newWallClock()}
	total := cfg.Conns * cfg.Clients
	for i := 0; i < total; i++ {
		conn, err := net.Dial("tcp", cfg.Addr)
		if err != nil {
			cl.Close()
			return nil, err
		}
		lc := &lgConn{
			idx:  i,
			conn: conn,
			bw:   bufio.NewWriterSize(conn, 64<<10),
			fr:   newFrameReader(conn, 64<<10, rpcproto.ResponseHeaderSize, rpcproto.ResponseFrameSize),
			//altolint:allow padalign single-writer write-once timestamp slots; footprint over padding
			sendNS: make([]atomic.Int64, cfg.Window),
			//altolint:allow padalign single-writer write-once sequence slots; footprint over padding
			sendSeq: make([]atomic.Int64, cfg.Window),
		}
		for s := range lc.sendSeq {
			lc.sendSeq[s].Store(-1)
		}
		cl.conns = append(cl.conns, lc)
	}
	return cl, nil
}

// Close half-closes and releases every connection. The server drains
// in-flight work on its side; call after the last Run has joined.
func (cl *Client) Close() {
	for _, lc := range cl.conns {
		if lc.conn != nil {
			lc.conn.Close()
		}
	}
}

// Run drives one round: n requests split across the connections at the
// aggregate offered rate (<=0 = as fast as possible), waiting for every
// response. The result is round-scoped; Totals accumulates across
// rounds.
func (cl *Client) Run(n int, rateRPS float64) (*LoadgenResult, error) {
	if n <= 0 {
		return nil, fmt.Errorf("live: loadgen round needs n > 0")
	}
	total := len(cl.conns)
	var wg sync.WaitGroup
	startAt := cl.clock.Now()
	for i, lc := range cl.conns {
		per := n / total
		if i < n%total {
			per++
		}
		if per == 0 {
			continue
		}
		lc.hist.reset()
		lc.bad, lc.dropped, lc.stalls = 0, 0, 0
		lc.sendErr, lc.recvErr = nil, nil
		wg.Add(2)
		go func(lc *lgConn, per int) {
			defer wg.Done()
			lc.receive(cl, per)
		}(lc, per)
		go func(lc *lgConn, per int) {
			defer wg.Done()
			lc.send(cl, per, rateRPS, startAt)
		}(lc, per)
	}
	wg.Wait()
	res := &LoadgenResult{Sent: uint64(n)}
	res.Elapsed = wallDuration(cl.clock.Now() - startAt)
	var h latHist
	for _, lc := range cl.conns {
		if lc.sendErr != nil {
			return nil, lc.sendErr
		}
		if lc.recvErr != nil {
			return nil, lc.recvErr
		}
		h.merge(&lc.hist)
		res.BadStatus += lc.bad
		res.Stalls += lc.stalls
		res.Dropped += lc.dropped
	}
	res.Received = h.count + res.Dropped
	fillQuantiles(res, &h)
	cl.agg.merge(&h)
	cl.sent += res.Sent
	cl.recv += res.Received
	cl.bad += res.BadStatus
	cl.stalls += res.Stalls
	cl.dropped += res.Dropped
	cl.elapsed += res.Elapsed
	return res, nil
}

// Totals reports the cumulative profile across every round so far.
func (cl *Client) Totals() *LoadgenResult {
	res := &LoadgenResult{
		Sent: cl.sent, Received: cl.recv, BadStatus: cl.bad,
		Stalls: cl.stalls, Dropped: cl.dropped, Elapsed: cl.elapsed,
	}
	fillQuantiles(res, &cl.agg)
	return res
}

func fillQuantiles(res *LoadgenResult, h *latHist) {
	if res.Elapsed > 0 {
		res.AchievedRPS = float64(res.Received) / res.Elapsed.Seconds()
	}
	if h.count == 0 {
		return
	}
	res.P50 = time.Duration(h.quantile(0.50))
	res.P99 = time.Duration(h.quantile(0.99))
	res.P999 = time.Duration(h.quantile(0.999))
	res.Mean = time.Duration(h.mean())
	res.Max = time.Duration(h.max)
}

// send paces per requests onto the connection. IDs are seq*total+idx:
// unique across connections and rounds, so the server-side ledger sees
// every id exactly once for the lifetime of the session.
func (lc *lgConn) send(cl *Client, per int, rateRPS float64, startAt policy.Duration) {
	cfg := &cl.cfg
	total := int64(len(cl.conns))
	window := int64(cfg.Window)
	var interval policy.Duration // per-request gap on this connection
	if rateRPS > 0 {
		interval = policy.Duration(float64(total) / rateRPS * 1e9 * float64(policy.Nanosecond))
	}
	var r rpcproto.Request // hoisted: one escape per round, not per request
	var p [16]byte
	var buf []byte
	for i := 0; i < per; i++ {
		if interval > 0 {
			target := startAt + policy.Duration(i)*interval
			if d := target - cl.clock.Now(); d > 0 {
				time.Sleep(wallDuration(d)) //altolint:allow detnow open-loop pacing sleep; the loadgen is wall-clock by definition
			}
		}
		// Window backpressure: never more than Window in flight per
		// connection, so a send slot is never reused before its response.
		for lc.seq-lc.recvd.Load() >= window {
			lc.stalls++
			if err := lc.bw.Flush(); err != nil {
				lc.sendErr = fmt.Errorf("live: loadgen conn %d: flush: %w", lc.idx, err)
				return
			}
			sleepBriefly()
		}
		seq := lc.seq
		r = rpcproto.Request{ID: uint64(seq*total + int64(lc.idx)), Conn: uint32(lc.idx), Op: rpcproto.OpEcho}
		if cfg.Prepare != nil {
			cfg.Prepare(&r, lc.idx, int(seq))
		} else {
			r.Payload = p[:]
		}
		var err error
		buf, err = rpcproto.AppendRequest(buf[:0], &r)
		if err != nil {
			lc.sendErr = err
			return
		}
		slot := seq % window
		lc.sendSeq[slot].Store(seq)
		lc.sendNS[slot].Store(int64(cl.clock.Now() / policy.Nanosecond))
		if _, err := lc.bw.Write(buf); err != nil {
			lc.sendErr = fmt.Errorf("live: loadgen conn %d: write: %w", lc.idx, err)
			return
		}
		lc.seq++
		if interval > 0 {
			if err := lc.bw.Flush(); err != nil {
				lc.sendErr = err
				return
			}
		}
	}
	if err := lc.bw.Flush(); err != nil {
		lc.sendErr = err
	}
}

// receive decodes per response frames, matching each to its send slot
// by sequence number. A slot whose sequence no longer matches (send-slot
// reuse under a misconfigured window) drops the sample, counted, rather
// than emitting garbage.
func (lc *lgConn) receive(cl *Client, per int) {
	total := int64(len(cl.conns))
	window := int64(len(lc.sendNS))
	for got := 0; got < per; got++ {
		frame, err := lc.fr.next()
		if err != nil {
			lc.recvErr = fmt.Errorf("live: loadgen conn %d: read after %d responses: %w", lc.idx, got, err)
			return
		}
		resp, _, err := rpcproto.DecodeResponse(frame)
		if err != nil {
			lc.recvErr = err
			return
		}
		if int64(resp.ID)%total != int64(lc.idx) {
			lc.recvErr = fmt.Errorf("live: loadgen conn %d: stray response id %#x", lc.idx, resp.ID)
			return
		}
		if resp.Status == rpcproto.StatusError {
			lc.bad++
		}
		seq := int64(resp.ID) / total
		slot := seq % window
		ns := lc.sendNS[slot].Load()
		if lc.sendSeq[slot].Load() != seq {
			lc.dropped++
		} else {
			lc.hist.add(int64(cl.clock.Now()/policy.Nanosecond) - ns)
		}
		lc.recvd.Add(1)
	}
}

// RunLoadgen runs a one-shot generator to completion and reports
// client-side latency percentiles (send to response, per request id):
// a single-round Client session.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("live: loadgen needs Requests > 0")
	}
	cl, err := NewLoadgenClient(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return cl.Run(cfg.Requests, cfg.RateRPS)
}
