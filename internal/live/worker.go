package live

import (
	"repro/internal/policy"
)

// worker is one execution goroutine. The manager is the sole sender on
// ch and never exceeds WorkerDepth outstanding, so its sends cannot
// block; the worker decrements outstanding after the completion
// callback and pokes the manager, closing the dispatch loop.
type worker struct {
	g  *lgroup
	id int // global worker id

	// ch carries dispatched tasks. The sends in dispatch are blocking in
	// form but never in fact: the manager is the sole sender and checks
	// outstanding < WorkerDepth (the channel's capacity) first.
	//altolint:bounded-send manager-only sender never exceeds WorkerDepth outstanding (the JBSQ bound), so capacity is always free
	ch chan *task
	// outstanding is written by the manager (dispatch) and the worker
	// (completion): padded so the two cores do not share its line.
	outstanding paddedInt32

	// lats is the delivery-to-completion profile in picoseconds:
	// worker-owned while running, merged by Report after Close. A
	// fixed-footprint histogram, so recording is allocation-free at any
	// run length (the old per-sample slice grew with the run).
	lats latHist
}

func newWorker(g *lgroup, id int) *worker {
	return &worker{g: g, id: id, ch: make(chan *task, g.rt.cfg.WorkerDepth)}
}

func (w *worker) run() {
	rt := w.g.rt
	defer rt.wg.Done()
	for {
		select {
		case <-rt.stop:
			return
		case t := <-w.ch:
			w.serve(t)
		}
	}
}

// serve runs one request: handler, metering, ledger, completion.
//
//altolint:hotpath
func (w *worker) serve(t *task) {
	rt := w.g.rt
	start := rt.clock.Now()
	payload, st := rt.handler.Serve(t.req)
	end := rt.clock.Now()

	w.g.svcSumNS.Add(int64((end - start) / policy.Nanosecond))
	w.g.svcCount.Add(1)
	w.lats.add(int64(end - t.arrival))

	rt.ledgerMu.Lock()
	rt.ledger.Completed(t.req.ID)
	rt.ledgerMu.Unlock()
	if t.done != nil {
		t.done(t.req, payload, st)
	}
	t.req, t.done = nil, nil
	rt.taskPool.Put(t)
	w.outstanding.Add(-1)
	rt.inflight.Add(-1)
	w.g.poke()
}
