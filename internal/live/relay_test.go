package live

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/rack"
	"repro/internal/server"
	"repro/internal/sim"
)

// testBackend is one in-process backend server for relay tests: a full
// runtime + TCP server on a loopback listener, torn down and audited by
// stop().
type testBackend struct {
	rt   *Runtime
	srv  *Server
	addr string
	wait func() error
}

func startTestBackend(t *testing.T, cfg Config, h Handler) *testBackend {
	t.Helper()
	rt, err := New(cfg, h)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(rt)
	return &testBackend{rt: rt, srv: srv, addr: ln.Addr().String(), wait: srv.ServeBackground(ln)}
}

// stop drains and audits the backend: conservation ledger clean, no
// leaked arena slots, no stale releases.
func (b *testBackend) stop(t *testing.T) *Report {
	t.Helper()
	if err := b.rt.Drain(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	b.rt.Close()
	rep := b.rt.Report()
	if err := b.wait(); err != nil {
		t.Fatalf("backend serve: %v", err)
	}
	if err := rep.Check.Err(); err != nil {
		t.Fatalf("backend invariants: %v", err)
	}
	if leaked, stale := b.srv.DataPlaneStats(); leaked != 0 || stale != 0 {
		t.Fatalf("backend data plane: %d leaked, %d stale", leaked, stale)
	}
	return rep
}

// runRelay stands up nBackends echo servers behind a relay, drives n
// requests through it, and returns the relay's stats after a full
// teardown audit of every layer: relay conservation ledger, backend
// runtime ledgers, and arena leak counters.
func runRelay(t *testing.T, nBackends int, rc RelayConfig, lg LoadgenConfig, n int) RelayStats {
	t.Helper()
	var addrs []string
	var backends []*testBackend
	for i := 0; i < nBackends; i++ {
		b := startTestBackend(t, Config{Groups: 2, WorkersPerGroup: 2, Expected: n}, EchoHandler{})
		backends = append(backends, b)
		addrs = append(addrs, b.addr)
	}
	rc.Backends = addrs
	rc.Expected = n
	relay, err := NewRelay(rc)
	if err != nil {
		t.Fatal(err)
	}
	relay.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wait := relay.ServeBackground(ln)

	lg.Addr = ln.Addr().String()
	lg.Requests = n
	res, err := RunLoadgen(lg)
	if err != nil {
		t.Fatalf("loadgen through relay: %v", err)
	}
	if res.Received != uint64(n) || res.BadStatus != 0 {
		t.Fatalf("client saw %d responses (%d bad), want %d clean", res.Received, res.BadStatus, n)
	}
	if err := wait(); err != nil {
		t.Fatalf("relay serve: %v", err)
	}
	rep := relay.Verify()
	if err := rep.Err(); err != nil {
		t.Fatalf("relay conservation: %v", err)
	}
	if rep.Delivered != uint64(n) || rep.Completed != uint64(n) {
		t.Fatalf("relay ledger: delivered %d completed %d, want %d", rep.Delivered, rep.Completed, n)
	}
	for _, b := range backends {
		b.stop(t)
	}
	return relay.Stats()
}

// TestRelayLoopback is the rack tier's live smoke: three backend
// runtimes behind a power-of-2 relay, every layer's invariants audited
// at teardown.
func TestRelayLoopback(t *testing.T) {
	n := 30000
	if testing.Short() {
		n = 3000
	}
	st := runRelay(t, 3,
		RelayConfig{Policy: rack.PowerOfK, K: 2, SampleEvery: 200 * time.Microsecond, Seed: 1},
		LoadgenConfig{Conns: 4}, n)
	if st.Forwarded != uint64(n) || st.Returned != uint64(n) {
		t.Fatalf("relay moved %d/%d frames, want %d/%d", st.Forwarded, st.Returned, n, n)
	}
	if st.Dropped != 0 || st.Strays != 0 {
		t.Fatalf("relay dropped %d, strays %d", st.Dropped, st.Strays)
	}
	for i := range st.Dispatched {
		if st.Dispatched[i] != st.Responded[i] {
			t.Fatalf("backend %d: %d dispatched, %d responded", i, st.Dispatched[i], st.Responded[i])
		}
		if st.Dispatched[i] == 0 {
			t.Fatalf("backend %d received no traffic under pow-2", i)
		}
	}
	if st.MaxViewAge < 0 {
		t.Fatalf("negative view age %v", st.MaxViewAge)
	}
}

// TestRelayFreshView pins the SampleEvery == 0 contract end to end:
// with a fresh depth view per pick, no dispatch decision ever consults
// a stale entry, so the realized MaxViewAge is exactly zero.
func TestRelayFreshView(t *testing.T) {
	n := 5000
	if testing.Short() {
		n = 1000
	}
	st := runRelay(t, 2,
		RelayConfig{Policy: rack.JSQ, Seed: 7},
		LoadgenConfig{Conns: 2}, n)
	if st.MaxViewAge != 0 {
		t.Fatalf("fresh-view relay reported view age %v", st.MaxViewAge)
	}
	if st.Forwarded != uint64(n) {
		t.Fatalf("forwarded %d, want %d", st.Forwarded, n)
	}
}

// TestRelaySimLiveRoundRobin is the sim-vs-live rack differential: for
// a matched request count, the live relay's round-robin dispatch must
// distribute requests across backends exactly as the simulated rack
// does. Round-robin consumes no randomness and no depth view, so the
// two runtimes share one ground-truth distribution for any N; skew
// means the live tier reordered, duplicated, or dropped a dispatch.
// (The live side serializes arrivals through one connection so the
// dispatch sequence, not just the counts, is the simulator's.)
func TestRelaySimLiveRoundRobin(t *testing.T) {
	const n, width = 3000, 3

	svc := dist.Exponential{M: sim.Microsecond}
	simRes, err := server.RunRack(
		server.RackConfig{Servers: width, Policy: rack.RoundRobin},
		server.Config{Kind: server.SchedAltocumulus, AC: core.DefaultParams(2, 2), Seed: 11},
		server.Workload{
			Arrivals: dist.Poisson{Rate: dist.LoadForRate(0.5, 4*width, svc)},
			Service:  svc, N: n, Conns: 1,
		})
	if err != nil {
		t.Fatal(err)
	}

	st := runRelay(t, width,
		RelayConfig{Policy: rack.RoundRobin, Seed: 3},
		LoadgenConfig{Conns: 1, Clients: 1}, n)

	for s := 0; s < width; s++ {
		if st.Dispatched[s] != simRes.Dispatched[s] {
			t.Fatalf("backend %d: live relay dispatched %d, simulated rack dispatched %d",
				s, st.Dispatched[s], simRes.Dispatched[s])
		}
	}
}
