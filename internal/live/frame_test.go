package live

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/rpcproto"
)

// chunkReader hands out its stream in caller-chosen chunk sizes,
// simulating arbitrary TCP segmentation: every frame boundary placement
// the kernel could produce.
type chunkReader struct {
	data   []byte
	sizes  []int
	off    int
	sizeAt int
}

func (cr *chunkReader) Read(p []byte) (int, error) {
	if cr.off >= len(cr.data) {
		return 0, io.EOF
	}
	n := len(p)
	if cr.sizeAt < len(cr.sizes) {
		if s := cr.sizes[cr.sizeAt]; s < n {
			n = s
		}
		cr.sizeAt++
	}
	if rest := len(cr.data) - cr.off; n > rest {
		n = rest
	}
	copy(p, cr.data[cr.off:cr.off+n])
	cr.off += n
	return n, nil
}

// TestFrameReaderGolden is the byte-identical framing contract: for a
// stream of random requests split at random points — including splits
// inside headers and across frame boundaries — the batched frameReader
// must produce exactly the frames a frame-at-a-time decoder would. The
// stream mixes direct (v1) and relay-forwarded (v2) frames the way an
// altorack backend sees them: the two header sizes interleave, so the
// reader's size function must handle both from the same 16-byte prefix.
func TestFrameReaderGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var stream []byte
		var golden [][]byte
		nFrames := 1 + rng.Intn(40)
		for i := 0; i < nFrames; i++ {
			payload := make([]byte, rng.Intn(300))
			rng.Read(payload)
			r := &rpcproto.Request{ID: uint64(i), Conn: uint32(trial), Op: rpcproto.OpEcho, Payload: payload}
			frame, err := rpcproto.AppendRequest(nil, r)
			if err != nil {
				t.Fatal(err)
			}
			if i%3 == 1 {
				// A relayed copy, exactly as the rack front-end would emit it.
				frame, err = rpcproto.AppendForwarded(nil, frame, uint64(i)<<8, uint32(i+1))
				if err != nil {
					t.Fatal(err)
				}
			}
			golden = append(golden, frame)
			stream = append(stream, frame...)
		}
		var sizes []int
		for got := 0; got < len(stream); {
			s := 1 + rng.Intn(97)
			sizes = append(sizes, s)
			got += s
		}
		// Small windows force mid-frame refills and compactions; all must
		// behave identically.
		for _, window := range []int{rpcproto.RequestHeaderSize, 64, 4096, connReadBuf} {
			cr := &chunkReader{data: stream, sizes: sizes}
			fr := newFrameReader(cr, window, rpcproto.RequestHeaderSize, rpcproto.RequestFrameSize)
			for i, want := range golden {
				frame, err := fr.next()
				if err != nil {
					t.Fatalf("trial %d window %d frame %d: %v", trial, window, i, err)
				}
				if !bytes.Equal(frame, want) {
					t.Fatalf("trial %d window %d frame %d: decoded bytes differ from frame-at-a-time", trial, window, i)
				}
			}
			if _, err := fr.next(); err != io.EOF {
				t.Fatalf("trial %d window %d: trailing read = %v, want EOF", trial, window, err)
			}
		}
	}
}

// TestFrameReaderMidFrameEOF distinguishes a clean close on a frame
// boundary (io.EOF) from a connection cut mid-frame.
func TestFrameReaderMidFrameEOF(t *testing.T) {
	frame, err := rpcproto.AppendRequest(nil, &rpcproto.Request{ID: 1, Payload: []byte("abcd")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(frame); cut++ {
		fr := newFrameReader(bytes.NewReader(frame[:cut]), 64, rpcproto.RequestHeaderSize, rpcproto.RequestFrameSize)
		if _, err := fr.next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	fr := newFrameReader(bytes.NewReader(frame), 64, rpcproto.RequestHeaderSize, rpcproto.RequestFrameSize)
	if _, err := fr.next(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.next(); err != io.EOF {
		t.Fatalf("boundary EOF: %v", err)
	}
}

// TestFrameReaderCorruptHeader propagates sizeFn's verdict on a corrupt
// header (bad version) instead of decoding garbage.
func TestFrameReaderCorruptHeader(t *testing.T) {
	frame, err := rpcproto.AppendRequest(nil, &rpcproto.Request{ID: 1, Payload: []byte("abcd")})
	if err != nil {
		t.Fatal(err)
	}
	frame[13] = 99 // version byte
	fr := newFrameReader(bytes.NewReader(frame), 64, rpcproto.RequestHeaderSize, rpcproto.RequestFrameSize)
	if _, err := fr.next(); err != rpcproto.ErrBadVersion {
		t.Fatalf("corrupt header: %v, want ErrBadVersion", err)
	}
}
