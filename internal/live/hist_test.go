package live

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistSlotRoundTrip(t *testing.T) {
	// Every bucket's representative must land back in that bucket, and
	// the slot index must be monotone in the value.
	for slot := 0; slot < histSlots; slot++ {
		v := slotValue(slot)
		if got := slotOf(v); got != slot {
			t.Fatalf("slotOf(slotValue(%d)) = %d", slot, got)
		}
	}
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 65, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64 / 2} {
		s := slotOf(v)
		if s < prev {
			t.Fatalf("slotOf not monotone at %d", v)
		}
		prev = s
	}
}

func TestHistRelativeError(t *testing.T) {
	// The representative of any value's bucket is within 1/histSub of the
	// value itself: the histogram's accuracy contract.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := rng.Int63n(1 << 40)
		rep := slotValue(slotOf(v))
		if relErr := math.Abs(float64(rep-v)) / math.Max(float64(v), 1); relErr > 1.0/histSub {
			t.Fatalf("value %d -> representative %d: relative error %.4f", v, rep, relErr)
		}
	}
}

// TestHistQuantiles checks extracted percentiles against exact sorted
// percentiles of the same sample, within the bucket resolution.
func TestHistQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h latHist
	n := 200000
	vals := make([]int64, n)
	for i := range vals {
		// Log-normal-ish latency shape: a busy median with a heavy tail.
		v := int64(1000 * math.Exp(rng.NormFloat64()))
		vals[i] = v
		h.add(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(n))]
		got := h.quantile(q)
		if relErr := math.Abs(float64(got-exact)) / float64(exact); relErr > 2.0/histSub {
			t.Fatalf("q=%.3f: hist %d vs exact %d (rel err %.4f)", q, got, exact, relErr)
		}
	}
	if h.quantile(1) != vals[n-1] {
		t.Fatalf("q=1 = %d, want exact max %d", h.quantile(1), vals[n-1])
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if got, want := h.mean(), sum/int64(n); got != want {
		t.Fatalf("mean = %d, want exact %d", got, want)
	}
}

func TestHistMergeReset(t *testing.T) {
	var a, b latHist
	for i := int64(0); i < 1000; i++ {
		a.add(i)
		b.add(i * 1000)
	}
	var m latHist
	m.merge(&a)
	m.merge(&b)
	if m.count != 2000 || m.max != 999000 || m.sum != a.sum+b.sum {
		t.Fatalf("merge: count=%d max=%d", m.count, m.max)
	}
	m.reset()
	if m.count != 0 || m.quantile(0.5) != 0 || m.mean() != 0 {
		t.Fatal("reset left state behind")
	}
	// Negative values clamp rather than corrupt.
	m.add(-5)
	if m.count != 1 || m.max != 0 {
		t.Fatal("negative clamp")
	}
}
