package exec

import (
	"testing"
	"testing/quick"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func TestCoreRunToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCore(eng, 0, 0)
	r := &rpcproto.Request{ID: 1, Service: 500 * sim.Nanosecond}
	var doneAt sim.Time
	c.Start(r, 35*sim.Nanosecond, func(r *rpcproto.Request) { doneAt = eng.Now() }, nil)
	if !c.Busy() || c.Current() != r {
		t.Fatal("core should be busy")
	}
	eng.RunAll()
	if doneAt != 535*sim.Nanosecond {
		t.Fatalf("done at %v, want 535ns", doneAt)
	}
	if r.Finish != doneAt || r.Remaining != 0 {
		t.Fatalf("request state: finish=%v remaining=%v", r.Finish, r.Remaining)
	}
	if c.Busy() {
		t.Fatal("core should be idle after completion")
	}
	if c.BusyTime() != 535*sim.Nanosecond {
		t.Fatalf("busy time = %v", c.BusyTime())
	}
}

func TestCorePreemption(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCore(eng, 0, 0)
	c.Quantum = 5 * sim.Microsecond
	c.PreemptCost = 1 * sim.Microsecond
	r := &rpcproto.Request{ID: 1, Service: 12 * sim.Microsecond}

	var preemptions int
	var done bool
	var onDone, onPreempt func(*rpcproto.Request)
	onDone = func(*rpcproto.Request) { done = true }
	onPreempt = func(r *rpcproto.Request) {
		preemptions++
		c.Start(r, 0, onDone, onPreempt) // immediately resume
	}
	c.Start(r, 0, onDone, onPreempt)
	eng.RunAll()
	if !done {
		t.Fatal("request never completed")
	}
	// 12us service with 5us quantum: two preemptions (5+5+2), each
	// charging 1us: total 14us.
	if preemptions != 2 {
		t.Fatalf("preemptions = %d", preemptions)
	}
	if got := eng.Now(); got != 14*sim.Microsecond {
		t.Fatalf("completion at %v, want 14us", got)
	}
	if r.Finish != 14*sim.Microsecond {
		t.Fatalf("finish = %v", r.Finish)
	}
}

func TestCoreQuantumExactFit(t *testing.T) {
	// Service exactly equal to quantum must not preempt.
	eng := sim.NewEngine()
	c := NewCore(eng, 0, 0)
	c.Quantum = 5 * sim.Microsecond
	c.PreemptCost = 1 * sim.Microsecond
	r := &rpcproto.Request{ID: 1, Service: 5 * sim.Microsecond}
	done := false
	c.Start(r, 0, func(*rpcproto.Request) { done = true },
		func(*rpcproto.Request) { t.Fatal("should not preempt") })
	eng.RunAll()
	if !done || eng.Now() != 5*sim.Microsecond {
		t.Fatalf("done=%v at %v", done, eng.Now())
	}
}

func TestCoreDoubleStartPanics(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCore(eng, 0, 0)
	r := &rpcproto.Request{Service: sim.Microsecond}
	c.Start(r, 0, func(*rpcproto.Request) {}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double start should panic")
		}
	}()
	c.Start(r, 0, func(*rpcproto.Request) {}, nil)
}

func TestDequeFIFOOrder(t *testing.T) {
	var q Deque
	for i := uint64(0); i < 10; i++ {
		q.PushTail(&rpcproto.Request{ID: i})
	}
	if q.Len() != 10 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := uint64(0); i < 10; i++ {
		r := q.PopHead()
		if r == nil || r.ID != i {
			t.Fatalf("pop %d = %v", i, r)
		}
	}
	if q.PopHead() != nil || q.PopTail() != nil {
		t.Fatal("empty pops should return nil")
	}
}

func TestDequeTailOps(t *testing.T) {
	var q Deque
	for i := uint64(0); i < 5; i++ {
		q.PushTail(&rpcproto.Request{ID: i})
	}
	if q.PeekTail().ID != 4 || q.PeekHead().ID != 0 {
		t.Fatal("peek mismatch")
	}
	if q.PopTail().ID != 4 || q.PopTail().ID != 3 {
		t.Fatal("tail pops out of order")
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.At(0).ID != 0 || q.At(2).ID != 2 {
		t.Fatal("At mismatch")
	}
}

func TestDequeAtPanics(t *testing.T) {
	var q Deque
	q.PushTail(&rpcproto.Request{})
	for _, i := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("At(%d) should panic", i)
				}
			}()
			q.At(i)
		}()
	}
}

func TestDequeCompaction(t *testing.T) {
	var q Deque
	// Push and pop enough to trigger compaction several times.
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			q.PushTail(&rpcproto.Request{ID: uint64(round*100 + i)})
		}
		for i := 0; i < 100; i++ {
			want := uint64(round*100 + i)
			if r := q.PopHead(); r.ID != want {
				t.Fatalf("compaction broke FIFO: got %d want %d", r.ID, want)
			}
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestDequeMixedOpsProperty(t *testing.T) {
	// Property: Deque behaves like a reference slice under a random op
	// sequence of pushTail/popHead/popTail.
	f := func(ops []uint8) bool {
		var q Deque
		var ref []uint64
		next := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				q.PushTail(&rpcproto.Request{ID: next})
				ref = append(ref, next)
				next++
			case 1:
				r := q.PopHead()
				if len(ref) == 0 {
					if r != nil {
						return false
					}
				} else {
					if r == nil || r.ID != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			case 2:
				r := q.PopTail()
				if len(ref) == 0 {
					if r != nil {
						return false
					}
				} else {
					if r == nil || r.ID != ref[len(ref)-1] {
						return false
					}
					ref = ref[:len(ref)-1]
				}
			}
			if q.Len() != len(ref) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
