// Package exec models the CPU worker cores that execute RPC handlers, and
// the request queues schedulers manage. A Core runs one request at a time,
// run-to-completion by default, with optional preemption (quantum +
// preemption cost) for schedulers that support it (Shinjuku, nanoPU).
package exec

import (
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Core is one simulated worker core.
type Core struct {
	ID   int
	Tile int // position on the NoC mesh (for distance-based costs)

	// Quantum enables preemptive scheduling when > 0: a request runs for
	// at most Quantum before being handed back to the scheduler.
	Quantum sim.Time
	// PreemptCost is charged (on this core) at every preemption.
	PreemptCost sim.Time

	// Class is the core's hardware class (0 = general-purpose). Phased
	// requests whose current phase is affine to this class run the
	// accelerated PhaseAcc duration instead of the base PhaseSvc one.
	Class uint8
	// OnPhase, when set, is consulted at every non-final phase boundary
	// of a phased request. Returning true means the scheduler took
	// ownership of the request (e.g. forwarded the next phase to another
	// group); returning false continues the next phase on this core
	// back to back. Nil OnPhase always continues locally, so schedulers
	// without a forwarding seam run phase chains run-to-completion.
	OnPhase func(*rpcproto.Request) bool

	eng      *sim.Engine
	busy     bool
	busyTime sim.Time // accumulated busy time, for utilisation reporting
	cur      *rpcproto.Request

	// In-flight execution state for the pending fire event. Keeping it in
	// the core (instead of a per-Start closure) makes Start allocation-free:
	// the completion event is scheduled through sim.AfterArg against the
	// package-level coreFire trampoline.
	done      func(*rpcproto.Request)
	preempted func(*rpcproto.Request)
	slice     sim.Time
	preempt   bool
}

// coreFire is the completion trampoline for Core.Start's scheduled event.
// It is a package-level func value so scheduling it never allocates.
func coreFire(arg any, _ int64) { arg.(*Core).fire() }

// NewCore returns an idle, run-to-completion core bound to the engine.
func NewCore(eng *sim.Engine, id, tile int) *Core {
	return &Core{ID: id, Tile: tile, eng: eng}
}

// Busy reports whether the core is currently executing a request.
func (c *Core) Busy() bool { return c.busy }

// Current returns the request being executed, or nil.
func (c *Core) Current() *rpcproto.Request { return c.cur }

// BusyTime returns the accumulated execution time (including overheads
// charged through Start), for utilisation accounting.
func (c *Core) BusyTime() sim.Time { return c.busyTime }

// Start begins (or resumes) executing r after the given pickup overhead
// (the scheduling cost of handing this request to this core). When the
// request completes, done(r) runs with r.Finish set; if the core's
// quantum expires first, preempted(r) runs instead with r.Remaining
// updated and the preemption cost charged. Either way the core is idle
// again when the callback fires, so callbacks typically dispatch the next
// request. Start panics if the core is already busy — double-dispatch is
// a scheduler bug, not a runtime condition.
//
// Start itself never allocates: pass callbacks that are bound once per
// core at scheduler construction, not fresh closures per request.
//
//altolint:hotpath
func (c *Core) Start(r *rpcproto.Request, overhead sim.Time, done, preempted func(*rpcproto.Request)) {
	if c.busy {
		panic("exec: Start on busy core")
	}
	if r.Remaining == 0 {
		// OnExecute fires once per request, when phase 0 first starts —
		// not at later phase boundaries.
		if r.Phase == 0 {
			if r.OnExecute != nil {
				r.OnExecute(r)
			}
		}
		if r.NumPhases > 1 {
			r.Remaining = r.PhaseDur(c.Class)
		} else {
			r.Remaining = r.Service
		}
	}
	c.busy = true
	c.cur = r
	r.Start = c.eng.Now()

	slice := r.Remaining
	preempt := false
	if c.Quantum > 0 && slice > c.Quantum {
		slice = c.Quantum
		preempt = true
	}
	total := overhead + slice
	if preempt {
		total += c.PreemptCost
	}
	c.busyTime += total
	c.done = done
	c.preempted = preempted
	c.slice = slice
	c.preempt = preempt
	c.eng.AfterArg(total, coreFire, c, 0)
}

// fire completes or preempts the in-flight request. The core is idle and
// its in-flight state cleared before either callback runs, so callbacks
// may immediately Start the next request.
//
//altolint:hotpath
func (c *Core) fire() {
	r := c.cur
	done, preempted := c.done, c.preempted
	slice, preempt := c.slice, c.preempt
	c.busy = false
	c.cur = nil
	c.done = nil
	c.preempted = nil
	if preempt {
		r.Remaining -= slice
		preempted(r)
		return
	}
	r.Remaining = 0
	now := c.eng.Now()
	if r.NumPhases > 1 && r.Phase+1 < r.NumPhases {
		// Non-final phase boundary: stamp the phase, advance, and reset
		// the migration latch — migrate-once becomes migrate-once-per-
		// phase (policy.CanMigrate documents the contract). The scheduler
		// may claim the request through OnPhase (forwarding it to a
		// better-suited group); otherwise the next phase runs here,
		// back to back, as its own completion event.
		r.PhaseEnd[r.Phase] = now
		r.Phase++
		r.Migrated = false
		if c.OnPhase != nil && c.OnPhase(r) {
			return
		}
		c.Start(r, 0, done, preempted)
		return
	}
	r.PhaseEnd[r.Phase] = now
	r.Finish = now
	done(r)
}

// Deque is a slice-backed double-ended request queue. Schedulers enqueue
// at the tail; workers consume from the head; ALTOCUMULUS migrates from
// the tail (§VI: "dequeue the tail of NetRX").
type Deque struct {
	buf  []*rpcproto.Request
	head int
}

// Len returns the number of queued requests.
func (q *Deque) Len() int { return len(q.buf) - q.head }

// PushTail appends r at the tail.
func (q *Deque) PushTail(r *rpcproto.Request) {
	q.buf = append(q.buf, r)
}

// PopHead removes and returns the head request, or nil if empty.
func (q *Deque) PopHead() *rpcproto.Request {
	if q.Len() == 0 {
		return nil
	}
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	// Compact once the dead prefix dominates, to bound memory.
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	return r
}

// PopTail removes and returns the tail request, or nil if empty.
func (q *Deque) PopTail() *rpcproto.Request {
	if q.Len() == 0 {
		return nil
	}
	r := q.buf[len(q.buf)-1]
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	return r
}

// PeekTail returns the tail request without removing it, or nil.
func (q *Deque) PeekTail() *rpcproto.Request {
	if q.Len() == 0 {
		return nil
	}
	return q.buf[len(q.buf)-1]
}

// PeekHead returns the head request without removing it, or nil.
func (q *Deque) PeekHead() *rpcproto.Request {
	if q.Len() == 0 {
		return nil
	}
	return q.buf[q.head]
}

// At returns the i-th request from the head (0-based) without removal.
// It panics when out of range.
func (q *Deque) At(i int) *rpcproto.Request {
	if i < 0 || i >= q.Len() {
		panic("exec: Deque.At out of range")
	}
	return q.buf[q.head+i]
}
