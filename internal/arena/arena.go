// Package arena provides a slab arena for rpcproto.Request values so the
// steady-state request lifecycle allocates nothing: requests are acquired
// from recycled slots on arrival and released back when they drain.
//
// The design mirrors the internal/sim event slab (PR 2): slots are
// addressed by index through generation-counted handles, so a stale
// RequestID — one whose slot has since been released and reissued — is
// detectable rather than silently aliasing a different request. Unlike
// the event slab, request pointers escape to schedulers and run for the
// whole service time, so slots must be pointer-stable: the arena grows in
// fixed-size chunks and never moves a slot once issued.
package arena

import "repro/internal/rpcproto"

// chunkSize is the number of request slots per slab chunk. Chunks are
// allocated whole and never reallocated, which keeps every issued
// *rpcproto.Request stable for the lifetime of the arena.
const chunkSize = 256

// RequestID is a generation-counted handle to an arena slot. The zero
// RequestID is never issued and is always stale.
type RequestID struct {
	idx int32
	gen uint32
}

// Valid reports whether the id was issued by an arena (it may still be
// stale if the slot has been recycled since).
func (id RequestID) Valid() bool { return id.gen != 0 }

// Pack flattens the handle into one word so owners can stash it in a
// uint64 field (the live data plane rides it on rpcproto.Request.Pool)
// instead of keeping a side table. Unpack inverts it losslessly.
func (id RequestID) Pack() uint64 {
	return uint64(uint32(id.idx))<<32 | uint64(id.gen)
}

// UnpackRequestID inverts RequestID.Pack. Garbage input yields a handle
// that Get/Release reject as stale, never a false match: the generation
// parity and bounds checks still apply.
func UnpackRequestID(p uint64) RequestID {
	return RequestID{idx: int32(uint32(p >> 32)), gen: uint32(p)}
}

type slot struct {
	req rpcproto.Request
	gen uint32 // odd while live, even while free; 0 = never issued
}

// Arena is a free-list slab of requests. Not safe for concurrent use:
// each simulation (fleet worker) owns its own arena, matching the
// //altolint:fleet-boundary rule that no simulator state crosses workers.
type Arena struct {
	chunks [][]slot
	free   []RequestID
	live   int
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{}
}

// Acquire returns a zeroed request and its handle (a slot recycled via
// ReleaseReuse keeps its payload capacity at length zero). The pointer
// stays valid until Release; afterwards the handle goes stale and the
// slot may be reissued.
//
//altolint:hotpath
func (a *Arena) Acquire() (*rpcproto.Request, RequestID) {
	var id RequestID
	if n := len(a.free); n > 0 {
		id = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		if len(a.chunks) == 0 || len(a.chunks[len(a.chunks)-1]) == chunkSize {
			//altolint:allow hotalloc one whole-chunk allocation per 256 slots; steady state recycles the free list
			a.chunks = append(a.chunks, make([]slot, 0, chunkSize))
		}
		last := len(a.chunks) - 1
		//altolint:allow hotalloc append within chunk capacity; the chunk is preallocated whole above
		a.chunks[last] = append(a.chunks[last], slot{})
		id = RequestID{idx: int32(last*chunkSize + len(a.chunks[last]) - 1)}
	}
	s := a.slot(id.idx)
	s.gen++ // free (even) -> live (odd)
	id.gen = s.gen
	a.live++
	return &s.req, id
}

// Get returns the request for id, or nil if the handle is stale (the
// slot was released, possibly reissued to a different request).
//
//altolint:hotpath
func (a *Arena) Get(id RequestID) *rpcproto.Request {
	if !a.owns(id) {
		return nil
	}
	s := a.slot(id.idx)
	if s.gen != id.gen {
		return nil
	}
	return &s.req
}

// Release recycles the slot behind id. It returns false — and does
// nothing — if the handle is stale, so double-free is detectable by the
// caller (internal/check treats a lost or double-freed request as a
// conservation violation).
//
//altolint:hotpath
func (a *Arena) Release(id RequestID) bool {
	if !a.owns(id) {
		return false
	}
	s := a.slot(id.idx)
	if s.gen != id.gen {
		return false
	}
	s.req = rpcproto.Request{} // drop Payload/OnExecute references
	s.gen++                    // live (odd) -> free (even): outstanding handles go stale
	//altolint:allow hotalloc amortized free-list growth; bounded by the high-water mark of live requests
	a.free = append(a.free, RequestID{idx: id.idx})
	a.live--
	return true
}

// ReleaseReuse recycles the slot like Release but keeps the payload's
// backing array (truncated to length zero), so the next UnmarshalInto
// on the reissued slot appends into recycled capacity instead of
// allocating. Use it when the arena owner also owns the payload bytes
// (the live TCP data plane); Release's drop-all-references semantics
// remain right for the simulator, where payloads may alias caller
// memory.
//
//altolint:hotpath
func (a *Arena) ReleaseReuse(id RequestID) bool {
	if !a.owns(id) {
		return false
	}
	s := a.slot(id.idx)
	if s.gen != id.gen {
		return false
	}
	p := s.req.Payload[:0]
	s.req = rpcproto.Request{} // drop OnExecute and scheduling state
	s.req.Payload = p          // keep the payload capacity for the next decode
	s.gen++                    // live (odd) -> free (even): outstanding handles go stale
	//altolint:allow hotalloc amortized free-list growth; bounded by the high-water mark of live requests
	a.free = append(a.free, RequestID{idx: id.idx})
	a.live--
	return true
}

// Live returns the number of acquired-but-not-released requests.
func (a *Arena) Live() int { return a.live }

// owns reports whether id could have been issued by this arena: a live
// generation (odd, non-zero) and an index inside the slab.
func (a *Arena) owns(id RequestID) bool {
	if id.gen == 0 || id.gen%2 == 0 || id.idx < 0 {
		return false
	}
	c := int(id.idx) / chunkSize
	if c >= len(a.chunks) {
		return false
	}
	return int(id.idx)%chunkSize < len(a.chunks[c])
}

func (a *Arena) slot(idx int32) *slot {
	return &a.chunks[idx/chunkSize][idx%chunkSize]
}
