package arena

import (
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func TestAcquireReleaseRoundTrip(t *testing.T) {
	a := New()
	r, id := a.Acquire()
	if r == nil || !id.Valid() {
		t.Fatalf("Acquire returned nil or invalid id")
	}
	if a.Live() != 1 {
		t.Fatalf("Live = %d, want 1", a.Live())
	}
	r.ID = 42
	if got := a.Get(id); got != r || got.ID != 42 {
		t.Fatalf("Get returned %p (ID %d), want %p (ID 42)", got, got.ID, r)
	}
	if !a.Release(id) {
		t.Fatalf("Release of live handle failed")
	}
	if a.Live() != 0 {
		t.Fatalf("Live = %d after release, want 0", a.Live())
	}
	if a.Get(id) != nil {
		t.Fatalf("Get after release returned non-nil")
	}
	if a.Release(id) {
		t.Fatalf("double Release succeeded")
	}
}

func TestStaleHandleAfterReuse(t *testing.T) {
	a := New()
	_, id1 := a.Acquire()
	if !a.Release(id1) {
		t.Fatalf("Release failed")
	}
	r2, id2 := a.Acquire()
	if id2.idx != id1.idx {
		t.Fatalf("slot not recycled: idx %d then %d", id1.idx, id2.idx)
	}
	if id2.gen == id1.gen {
		t.Fatalf("recycled slot reissued with same generation %d", id2.gen)
	}
	if a.Get(id1) != nil {
		t.Fatalf("stale handle resolved to recycled slot")
	}
	if a.Release(id1) {
		t.Fatalf("stale Release succeeded against recycled slot")
	}
	if a.Get(id2) != r2 {
		t.Fatalf("live handle broken by stale operations")
	}
}

func TestZeroAndForeignIDs(t *testing.T) {
	a := New()
	var zero RequestID
	if zero.Valid() {
		t.Fatalf("zero RequestID reports Valid")
	}
	if a.Get(zero) != nil || a.Release(zero) {
		t.Fatalf("zero RequestID accepted")
	}
	for _, id := range []RequestID{
		{idx: -1, gen: 1},
		{idx: 0, gen: 1},    // no slot issued yet
		{idx: 1000, gen: 1}, // beyond the slab
		{idx: 0, gen: 2},    // even generation never names a live slot
	} {
		if a.Get(id) != nil || a.Release(id) {
			t.Fatalf("out-of-range/forged id %+v accepted", id)
		}
	}
}

// TestAcquireZeroesRecycledSlot guards against state leaking between the
// requests that share a slot across recycling.
func TestAcquireZeroesRecycledSlot(t *testing.T) {
	a := New()
	r1, id1 := a.Acquire()
	r1.ID = 7
	r1.Payload = []byte("key")
	r1.OnExecute = func(*rpcproto.Request) {}
	a.Release(id1)
	r2, _ := a.Acquire()
	if r2.ID != 0 || r2.Payload != nil || r2.OnExecute != nil {
		t.Fatalf("recycled slot not zeroed: %+v", r2)
	}
}

// TestArenaProperty drives a random acquire/release schedule against a
// map-based oracle: every live handle must resolve to its request, every
// released handle must be rejected forever after, and Live() must track
// the oracle's count exactly.
func TestArenaProperty(t *testing.T) {
	rng := sim.NewRNG(0xa17e4a)
	a := New()
	type held struct {
		id  RequestID
		ptr *rpcproto.Request
		tag uint64
	}
	var live []held
	var dead []RequestID
	var nextTag uint64
	for op := 0; op < 20000; op++ {
		switch {
		case len(live) == 0 || rng.Bernoulli(0.55):
			r, id := a.Acquire()
			nextTag++
			r.ID = nextTag
			live = append(live, held{id: id, ptr: r, tag: nextTag})
		default:
			k := rng.Intn(len(live))
			h := live[k]
			if !a.Release(h.id) {
				t.Fatalf("op %d: Release of live handle %+v failed", op, h.id)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			dead = append(dead, h.id)
		}
		if a.Live() != len(live) {
			t.Fatalf("op %d: Live = %d, oracle %d", op, a.Live(), len(live))
		}
		// Spot-check a live and a dead handle each step (full sweeps
		// every step would make the test quadratic).
		if len(live) > 0 {
			h := live[rng.Intn(len(live))]
			if got := a.Get(h.id); got != h.ptr || got.ID != h.tag {
				t.Fatalf("op %d: live handle %+v resolved wrongly", op, h.id)
			}
		}
		if len(dead) > 0 {
			id := dead[rng.Intn(len(dead))]
			if a.Get(id) != nil {
				t.Fatalf("op %d: stale handle %+v resolved", op, id)
			}
			if a.Release(id) {
				t.Fatalf("op %d: stale handle %+v released again", op, id)
			}
		}
	}
	// Final full sweep.
	for _, h := range live {
		if got := a.Get(h.id); got != h.ptr || got.ID != h.tag {
			t.Fatalf("final: live handle %+v resolved wrongly", h.id)
		}
	}
	for _, id := range dead {
		if a.Get(id) != nil || a.Release(id) {
			t.Fatalf("final: stale handle %+v accepted", id)
		}
	}
}

// TestPointerStability verifies issued pointers survive arbitrary arena
// growth — the property the chunked slab exists to provide.
func TestPointerStability(t *testing.T) {
	a := New()
	type held struct {
		id  RequestID
		ptr *rpcproto.Request
	}
	var hs []held
	for i := 0; i < 10*chunkSize; i++ {
		r, id := a.Acquire()
		r.ID = uint64(i)
		hs = append(hs, held{id, r})
	}
	for i, h := range hs {
		if got := a.Get(h.id); got != h.ptr {
			t.Fatalf("slot %d moved: %p -> %p", i, h.ptr, got)
		}
		if h.ptr.ID != uint64(i) {
			t.Fatalf("slot %d corrupted: ID %d", i, h.ptr.ID)
		}
	}
}

func BenchmarkArenaAcquireRelease(b *testing.B) {
	a := New()
	// Warm the slab so steady state is measured, not growth.
	var ids [64]RequestID
	for i := range ids {
		_, ids[i] = a.Acquire()
	}
	for i := range ids {
		a.Release(ids[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, id := a.Acquire()
		r.ID = uint64(i)
		a.Release(id)
	}
}
