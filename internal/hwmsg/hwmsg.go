// Package hwmsg models the ALTOCUMULUS manager-tile hardware of §V: the
// migration registers (MRs) that stage RPC descriptors, the parameter
// registers (PRs) holding runtime configuration, the bounded send/receive
// FIFOs, and the four protocol message types of Table II
// (PREDICT_CONFIG, MIGRATE, UPDATE, ACK/NACK). The structures are
// behavioural: capacity, ordering and drop/NACK semantics are enforced
// here; timing is charged by the runtime in internal/core using the NoC
// and cost models.
package hwmsg

import (
	"errors"

	"repro/internal/policy"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// MsgType enumerates the runtime messages of Table II.
type MsgType int

const (
	// MsgPredictConfig configures the parameter registers. Intra-tile
	// only: never crosses the NoC.
	MsgPredictConfig MsgType = iota
	// MsgMigrate proactively moves RPC descriptors from a source
	// manager's NetRX tail to destination queue(s).
	MsgMigrate
	// MsgUpdate broadcasts the local queue length to all other managers.
	MsgUpdate
	// MsgAck acknowledges receipt of a MIGRATE.
	MsgAck
	// MsgNack rejects a MIGRATE (destination FIFO/MRs full); the source
	// does not replay (§V-A).
	MsgNack
)

func (t MsgType) String() string {
	switch t {
	case MsgMigrate:
		return "MIGRATE"
	case MsgUpdate:
		return "UPDATE"
	case MsgAck:
		return "ACK"
	case MsgNack:
		return "NACK"
	default:
		return "PREDICT_CONFIG"
	}
}

// MigrateHeaderSize is the wire footprint of a MIGRATE header: req_num,
// src_mid, dst_mid and the tail pointer (§V-A).
const MigrateHeaderSize = 16

// Migrate is a MIGRATE message: a batch of descriptors moving between
// manager tiles. The simulator carries the *Request objects alongside
// their wire descriptors; only the descriptors count toward wire size.
type Migrate struct {
	SrcMid, DstMid int
	Descs          []rpcproto.Descriptor
	Reqs           []*rpcproto.Request
}

// WireSize returns the NoC footprint in bytes.
func (m *Migrate) WireSize() int {
	return MigrateHeaderSize + len(m.Descs)*rpcproto.DescriptorSize
}

// Update is an UPDATE message: <q> from one manager to another.
type Update struct {
	SrcMid int
	QLen   int
}

// UpdateWireSize is the footprint of an UPDATE (<q> plus source id).
const UpdateWireSize = 8

// AckWireSize is the footprint of an ACK/NACK.
const AckWireSize = 4

// ErrFull is returned when a bounded hardware buffer cannot accept an
// entry.
var ErrFull = errors.New("hwmsg: buffer full")

// FIFO is a bounded in-order buffer of MIGRATE batches (the send and
// receive FIFOs of Fig. 6). Capacity is counted in descriptor entries,
// matching the paper's sizing (16 entries × 14 B = 224 B per FIFO).
type FIFO struct {
	capacity int
	used     int
	batches  []*Migrate
}

// NewFIFO returns a FIFO holding up to capacity descriptor entries.
func NewFIFO(capacity int) *FIFO {
	return &FIFO{capacity: capacity}
}

// Capacity returns the entry capacity.
func (f *FIFO) Capacity() int { return f.capacity }

// Used returns the occupied entries.
func (f *FIFO) Used() int { return f.used }

// Free returns the available entries.
func (f *FIFO) Free() int { return f.capacity - f.used }

// Push enqueues a batch if its descriptors fit, else returns ErrFull
// without partial admission (a MIGRATE is admitted atomically).
func (f *FIFO) Push(m *Migrate) error {
	n := len(m.Descs)
	if n > f.Free() {
		return ErrFull
	}
	f.used += n
	f.batches = append(f.batches, m)
	return nil
}

// Pop dequeues the oldest batch, or nil when empty.
func (f *FIFO) Pop() *Migrate {
	if len(f.batches) == 0 {
		return nil
	}
	m := f.batches[0]
	f.batches[0] = nil
	f.batches = f.batches[1:]
	f.used -= len(m.Descs)
	return m
}

// Len returns the number of queued batches.
func (f *FIFO) Len() int { return len(f.batches) }

// MRFile is the migration-register file of a manager tile: a bounded set
// of descriptor slots staging requests that are candidates for (or in
// flight during) migration. §V-B bounds it independently of system size.
type MRFile struct {
	capacity int
	slots    []rpcproto.Descriptor
}

// NewMRFile returns an MR file with the given number of 14-byte slots.
func NewMRFile(capacity int) *MRFile {
	return &MRFile{capacity: capacity}
}

// Capacity returns the slot count.
func (m *MRFile) Capacity() int { return m.capacity }

// Used returns the occupied slots.
func (m *MRFile) Used() int { return len(m.slots) }

// Free returns the available slots.
func (m *MRFile) Free() int { return m.capacity - len(m.slots) }

// Stage reserves slots for a batch of descriptors; all-or-nothing.
func (m *MRFile) Stage(descs []rpcproto.Descriptor) error {
	if len(descs) > m.Free() {
		return ErrFull
	}
	m.slots = append(m.slots, descs...)
	return nil
}

// Invalidate releases n staged slots (on ACK, the source invalidates the
// migrated entries; on NACK they are released back too, since the
// requests stay in the local NetRX).
func (m *MRFile) Invalidate(n int) {
	if n > len(m.slots) {
		n = len(m.slots)
	}
	m.slots = m.slots[:len(m.slots)-n]
}

// ParamRegs are the parameter registers (PRs) of Fig. 6: period, maximum
// batch size, concurrency, the current migration threshold and the
// synchronized queue-length vector.
type ParamRegs struct {
	Period      sim.Time
	Bulk        int
	Concurrency int
	Threshold   int
	QView       []int
}

// Configure applies a PREDICT_CONFIG: full register update.
func (p *ParamRegs) Configure(period sim.Time, bulk, concurrency int) {
	p.Period = period
	p.Bulk = bulk
	p.Concurrency = concurrency
}

// BatchSize returns S = Bulk/Concurrency, the per-MIGRATE request count
// (§V-A), at least 1. The arithmetic lives in policy.BatchSize so both
// runtime consumers size batches identically.
func (p *ParamRegs) BatchSize() int {
	return policy.BatchSize(p.Bulk, p.Concurrency)
}
