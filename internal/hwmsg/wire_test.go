package hwmsg

import (
	"testing"
	"testing/quick"

	"repro/internal/rpcproto"
)

func TestMigrateWireRoundTrip(t *testing.T) {
	in := &Migrate{SrcMid: 3, DstMid: 9, Descs: descs(5)}
	buf := EncodeMigrate(in, 0xfeedface)
	if len(buf) != in.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(buf), in.WireSize())
	}
	out, tail, err := DecodeMigrate(buf)
	if err != nil {
		t.Fatal(err)
	}
	if tail != 0xfeedface || out.SrcMid != 3 || out.DstMid != 9 {
		t.Fatalf("header: %+v tail=%x", out, tail)
	}
	if len(out.Descs) != 5 {
		t.Fatalf("descs = %d", len(out.Descs))
	}
	for i := range out.Descs {
		if out.Descs[i] != in.Descs[i] {
			t.Fatalf("desc %d mismatch", i)
		}
	}
}

func TestMigrateWireProperty(t *testing.T) {
	f := func(src, dst uint16, tail uint64, ptrs []uint64) bool {
		if len(ptrs) > 64 {
			ptrs = ptrs[:64]
		}
		in := &Migrate{SrcMid: int(src), DstMid: int(dst)}
		for _, p := range ptrs {
			in.Descs = append(in.Descs, rpcproto.Descriptor{Ptr: p})
		}
		buf := EncodeMigrate(in, tail)
		out, gotTail, err := DecodeMigrate(buf)
		if err != nil || gotTail != tail {
			return false
		}
		if out.SrcMid != int(src) || out.DstMid != int(dst) || len(out.Descs) != len(in.Descs) {
			return false
		}
		for i := range out.Descs {
			if out.Descs[i] != in.Descs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateWireErrors(t *testing.T) {
	if _, _, err := DecodeMigrate([]byte{1, 2}); err != ErrWireShort {
		t.Fatalf("short: %v", err)
	}
	m := &Migrate{Descs: descs(3)}
	buf := EncodeMigrate(m, 0)
	buf[0] = byte(MsgUpdate)
	if _, _, err := DecodeMigrate(buf); err == nil {
		t.Fatal("wrong type accepted")
	}
	buf[0] = byte(MsgMigrate)
	if _, _, err := DecodeMigrate(buf[:len(buf)-1]); err != ErrWireShort {
		t.Fatalf("truncated descs: %v", err)
	}
}

func TestUpdateWireRoundTrip(t *testing.T) {
	buf := EncodeUpdate(Update{SrcMid: 12, QLen: 4096})
	if len(buf) != UpdateWireSize {
		t.Fatalf("size %d", len(buf))
	}
	u, err := DecodeUpdate(buf)
	if err != nil {
		t.Fatal(err)
	}
	if u.SrcMid != 12 || u.QLen != 4096 {
		t.Fatalf("update: %+v", u)
	}
	if _, err := DecodeUpdate(buf[:3]); err != ErrWireShort {
		t.Fatal("short update")
	}
	buf[0] = byte(MsgAck)
	if _, err := DecodeUpdate(buf); err == nil {
		t.Fatal("wrong type accepted")
	}
}

func TestAckWire(t *testing.T) {
	for _, typ := range []MsgType{MsgAck, MsgNack} {
		buf, err := EncodeAck(typ, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != AckWireSize {
			t.Fatalf("size %d", len(buf))
		}
		got, src, err := DecodeAck(buf)
		if err != nil || got != typ || src != 7 {
			t.Fatalf("ack round trip: %v %d %v", got, src, err)
		}
	}
	if _, err := EncodeAck(MsgMigrate, 0); err == nil {
		t.Fatal("encode non-ack type accepted")
	}
	if _, _, err := DecodeAck([]byte{0}); err != ErrWireShort {
		t.Fatal("short ack")
	}
	bad, _ := EncodeAck(MsgAck, 1)
	bad[0] = byte(MsgMigrate)
	if _, _, err := DecodeAck(bad); err == nil {
		t.Fatal("wrong ack type accepted")
	}
}
