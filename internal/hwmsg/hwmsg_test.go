package hwmsg

import (
	"testing"
	"testing/quick"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func descs(n int) []rpcproto.Descriptor {
	out := make([]rpcproto.Descriptor, n)
	for i := range out {
		out[i] = rpcproto.Descriptor{Ptr: uint64(i)}
	}
	return out
}

func TestMigrateWireSize(t *testing.T) {
	m := &Migrate{Descs: descs(10)}
	// Header 16B + 10 descriptors x 14B = 156B.
	if got := m.WireSize(); got != 156 {
		t.Fatalf("wire size = %d", got)
	}
}

func TestFIFOCapacityAndOrder(t *testing.T) {
	f := NewFIFO(16)
	if f.Capacity() != 16 || f.Free() != 16 {
		t.Fatal("initial state")
	}
	a := &Migrate{SrcMid: 1, Descs: descs(10)}
	b := &Migrate{SrcMid: 2, Descs: descs(6)}
	if err := f.Push(a); err != nil {
		t.Fatal(err)
	}
	if err := f.Push(b); err != nil {
		t.Fatal(err)
	}
	if f.Free() != 0 || f.Used() != 16 || f.Len() != 2 {
		t.Fatalf("state: free=%d used=%d len=%d", f.Free(), f.Used(), f.Len())
	}
	// Third batch of any size must be rejected.
	if err := f.Push(&Migrate{Descs: descs(1)}); err != ErrFull {
		t.Fatalf("overflow push: %v", err)
	}
	// FIFO order.
	if got := f.Pop(); got != a {
		t.Fatal("pop order")
	}
	if got := f.Pop(); got != b {
		t.Fatal("pop order 2")
	}
	if f.Pop() != nil {
		t.Fatal("empty pop")
	}
	if f.Used() != 0 {
		t.Fatalf("used = %d after drain", f.Used())
	}
}

func TestFIFOAtomicAdmission(t *testing.T) {
	f := NewFIFO(8)
	if err := f.Push(&Migrate{Descs: descs(5)}); err != nil {
		t.Fatal(err)
	}
	// A 4-descriptor batch does not fit (3 free): must not be partially
	// admitted.
	if err := f.Push(&Migrate{Descs: descs(4)}); err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	if f.Used() != 5 {
		t.Fatalf("partial admission: used=%d", f.Used())
	}
}

func TestFIFOConservation(t *testing.T) {
	// Property: used == sum of queued batch sizes under random push/pop.
	f := func(ops []uint8) bool {
		fifo := NewFIFO(16)
		queued := 0
		for _, op := range ops {
			if op%2 == 0 {
				n := int(op%5) + 1
				err := fifo.Push(&Migrate{Descs: descs(n)})
				if err == nil {
					queued += n
				} else if n <= 16-queued {
					return false // spurious rejection
				}
			} else {
				m := fifo.Pop()
				if m != nil {
					queued -= len(m.Descs)
				}
			}
			if fifo.Used() != queued || fifo.Free() != 16-queued {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMRFile(t *testing.T) {
	mr := NewMRFile(11) // the paper's E[Nq]-derived sizing
	if mr.Capacity() != 11 || mr.Free() != 11 {
		t.Fatal("initial")
	}
	if err := mr.Stage(descs(8)); err != nil {
		t.Fatal(err)
	}
	if err := mr.Stage(descs(4)); err != ErrFull {
		t.Fatalf("overflow stage: %v", err)
	}
	if mr.Used() != 8 {
		t.Fatalf("partial stage: %d", mr.Used())
	}
	mr.Invalidate(3)
	if mr.Used() != 5 || mr.Free() != 6 {
		t.Fatalf("after invalidate: used=%d", mr.Used())
	}
	mr.Invalidate(100) // over-invalidate clamps
	if mr.Used() != 0 {
		t.Fatalf("clamped invalidate: %d", mr.Used())
	}
}

func TestParamRegs(t *testing.T) {
	var pr ParamRegs
	pr.Configure(200*sim.Nanosecond, 16, 8)
	if pr.Period != 200*sim.Nanosecond || pr.Bulk != 16 || pr.Concurrency != 8 {
		t.Fatalf("configure: %+v", pr)
	}
	if got := pr.BatchSize(); got != 2 {
		t.Fatalf("S = %d, want Bulk/Concurrency = 2", got)
	}
	pr.Configure(200*sim.Nanosecond, 4, 8)
	if got := pr.BatchSize(); got != 1 {
		t.Fatalf("S = %d, want floor of 1", got)
	}
	pr.Concurrency = 0
	if got := pr.BatchSize(); got != 4 {
		t.Fatalf("S with zero concurrency = %d", got)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	want := map[MsgType]string{
		MsgPredictConfig: "PREDICT_CONFIG",
		MsgMigrate:       "MIGRATE",
		MsgUpdate:        "UPDATE",
		MsgAck:           "ACK",
		MsgNack:          "NACK",
	}
	for k, v := range want {
		if k.String() != v {
			t.Fatalf("%d = %q", k, k.String())
		}
	}
}
