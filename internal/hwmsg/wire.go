package hwmsg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/rpcproto"
)

// Wire encoding of the runtime messages: what actually crosses the NoC
// on the ALTOCUMULUS virtual network. The simulator mostly passes
// structured messages in memory for speed, but the codec pins down the
// exact bit-level footprint the latency model charges for, and the tests
// prove the footprint arithmetic (WireSize et al.) against real bytes.
//
// MIGRATE layout:
//
//	0      msg type (1B)
//	1:3    req_num (2B)
//	3:5    src_mid (2B)
//	5:7    dst_mid (2B)
//	7:15   tail pointer *MR[Tail] (8B)
//	15     reserved
//	16:    req_num x 14B descriptors
//
// UPDATE layout: type(1) src_mid(2) q(4) pad(1) = 8B.
// ACK/NACK layout: type(1) src_mid(2) pad(1) = 4B.

var (
	// ErrWireShort indicates a truncated message.
	ErrWireShort = errors.New("hwmsg: short message")
	// ErrWireType indicates an unexpected message type byte.
	ErrWireType = errors.New("hwmsg: unexpected message type")
)

// EncodeMigrate serialises a MIGRATE message (header + descriptors).
func EncodeMigrate(m *Migrate, tailPtr uint64) []byte {
	buf := make([]byte, MigrateHeaderSize+len(m.Descs)*rpcproto.DescriptorSize)
	buf[0] = byte(MsgMigrate)
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(m.Descs)))
	binary.LittleEndian.PutUint16(buf[3:5], uint16(m.SrcMid))
	binary.LittleEndian.PutUint16(buf[5:7], uint16(m.DstMid))
	binary.LittleEndian.PutUint64(buf[7:15], tailPtr)
	off := MigrateHeaderSize
	for _, d := range m.Descs {
		enc := rpcproto.EncodeDescriptor(d)
		copy(buf[off:], enc[:])
		off += rpcproto.DescriptorSize
	}
	return buf
}

// DecodeMigrate parses a MIGRATE message. The Reqs field is not part of
// the wire image (the simulator attaches it separately).
func DecodeMigrate(buf []byte) (m *Migrate, tailPtr uint64, err error) {
	if len(buf) < MigrateHeaderSize {
		return nil, 0, ErrWireShort
	}
	if MsgType(buf[0]) != MsgMigrate {
		return nil, 0, fmt.Errorf("%w: %d", ErrWireType, buf[0])
	}
	n := int(binary.LittleEndian.Uint16(buf[1:3]))
	if len(buf) < MigrateHeaderSize+n*rpcproto.DescriptorSize {
		return nil, 0, ErrWireShort
	}
	m = &Migrate{
		SrcMid: int(binary.LittleEndian.Uint16(buf[3:5])),
		DstMid: int(binary.LittleEndian.Uint16(buf[5:7])),
		Descs:  make([]rpcproto.Descriptor, n),
	}
	tailPtr = binary.LittleEndian.Uint64(buf[7:15])
	off := MigrateHeaderSize
	for i := 0; i < n; i++ {
		var raw [rpcproto.DescriptorSize]byte
		copy(raw[:], buf[off:off+rpcproto.DescriptorSize])
		m.Descs[i] = rpcproto.DecodeDescriptor(raw)
		off += rpcproto.DescriptorSize
	}
	return m, tailPtr, nil
}

// EncodeUpdate serialises an UPDATE message.
func EncodeUpdate(u Update) []byte {
	buf := make([]byte, UpdateWireSize)
	buf[0] = byte(MsgUpdate)
	binary.LittleEndian.PutUint16(buf[1:3], uint16(u.SrcMid))
	binary.LittleEndian.PutUint32(buf[3:7], uint32(u.QLen))
	return buf
}

// DecodeUpdate parses an UPDATE message.
func DecodeUpdate(buf []byte) (Update, error) {
	if len(buf) < UpdateWireSize {
		return Update{}, ErrWireShort
	}
	if MsgType(buf[0]) != MsgUpdate {
		return Update{}, fmt.Errorf("%w: %d", ErrWireType, buf[0])
	}
	return Update{
		SrcMid: int(binary.LittleEndian.Uint16(buf[1:3])),
		QLen:   int(binary.LittleEndian.Uint32(buf[3:7])),
	}, nil
}

// EncodeAck serialises an ACK or NACK.
func EncodeAck(t MsgType, srcMid int) ([]byte, error) {
	if t != MsgAck && t != MsgNack {
		return nil, fmt.Errorf("%w: %v is not ACK/NACK", ErrWireType, t)
	}
	buf := make([]byte, AckWireSize)
	buf[0] = byte(t)
	binary.LittleEndian.PutUint16(buf[1:3], uint16(srcMid))
	return buf, nil
}

// DecodeAck parses an ACK/NACK, returning its type and source manager.
func DecodeAck(buf []byte) (MsgType, int, error) {
	if len(buf) < AckWireSize {
		return 0, 0, ErrWireShort
	}
	t := MsgType(buf[0])
	if t != MsgAck && t != MsgNack {
		return 0, 0, fmt.Errorf("%w: %d", ErrWireType, buf[0])
	}
	return t, int(binary.LittleEndian.Uint16(buf[1:3])), nil
}
