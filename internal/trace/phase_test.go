package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// phasedRequest builds a finished 3-phase request with distinct values
// in every per-phase field.
func phasedRequest() *rpcproto.Request {
	r := &rpcproto.Request{
		ID:        42,
		NumPhases: 3,
		Phase:     2,
		Arrival:   10 * sim.Nanosecond,
		Service:   60 * sim.Nanosecond,
	}
	for i := 0; i < 3; i++ {
		r.PhaseSvc[i] = sim.Time(20+i) * sim.Nanosecond
		r.PhaseAcc[i] = sim.Time(10+i) * sim.Nanosecond
		r.PhaseOffload[i] = sim.Time(i) * sim.Nanosecond
		r.PhaseEnd[i] = sim.Time(30*(i+1)) * sim.Nanosecond
		r.PhaseClass[i] = uint8(i % 2)
	}
	r.Finish = r.PhaseEnd[2]
	return r
}

func TestPhaseCSVRoundTrip(t *testing.T) {
	r := phasedRequest()
	want := PhaseRecordsOf(nil, r)
	if len(want) != 3 {
		t.Fatalf("PhaseRecordsOf returned %d records, want 3", len(want))
	}

	var buf bytes.Buffer
	if err := WritePhaseCSV(&buf, []*rpcproto.Request{r}); err != nil {
		t.Fatalf("WritePhaseCSV: %v", err)
	}
	got, err := ReadPhaseCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadPhaseCSV: %v\ncsv:\n%s", err, buf.String())
	}
	if len(got) != len(want) {
		t.Fatalf("round trip returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestPhaseCSVSkipsUnphased(t *testing.T) {
	plain := &rpcproto.Request{ID: 1, Finish: sim.Nanosecond}
	unfinished := phasedRequest()
	unfinished.Finish = 0

	var buf bytes.Buffer
	if err := WritePhaseCSV(&buf, []*rpcproto.Request{plain, nil, unfinished}); err != nil {
		t.Fatalf("WritePhaseCSV: %v", err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1 {
		t.Fatalf("want header only, got %d lines:\n%s", lines, buf.String())
	}
}

func TestPhaseJSONLRoundTrip(t *testing.T) {
	r := phasedRequest()
	want := PhaseRecordsOf(nil, r)

	var buf bytes.Buffer
	if err := WritePhaseJSONL(&buf, []*rpcproto.Request{r}); err != nil {
		t.Fatalf("WritePhaseJSONL: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for i := range want {
		var got PhaseRecord
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != want[i] {
			t.Errorf("line %d:\n got %+v\nwant %+v", i, got, want[i])
		}
	}
	if dec.More() {
		t.Fatalf("extra JSONL lines:\n%s", buf.String())
	}
}

func TestReadPhaseCSVRejectsWrongHeader(t *testing.T) {
	if _, err := ReadPhaseCSV(strings.NewReader("id,conn,tenant\n")); err == nil {
		t.Fatal("want error for a non-phase header")
	}
	if _, err := ReadPhaseCSV(strings.NewReader("")); err == nil {
		t.Fatal("want error for empty input")
	}
}
