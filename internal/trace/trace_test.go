package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func mkReqs(n int) []*rpcproto.Request {
	out := make([]*rpcproto.Request, n)
	for i := range out {
		out[i] = &rpcproto.Request{
			ID: uint64(i), Conn: uint32(i % 7), Tenant: uint8(i % 3),
			Op:       rpcproto.Op(i % 4),
			Arrival:  sim.Time(i) * sim.Microsecond,
			Service:  500 * sim.Nanosecond,
			Finish:   sim.Time(i)*sim.Microsecond + sim.Time(i+1)*sim.Nanosecond*100,
			Migrated: i%2 == 0, Predicted: i%5 == 0,
			GroupHint: i % 4,
		}
	}
	return out
}

func TestCSVRoundTrip(t *testing.T) {
	reqs := mkReqs(25)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 25 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, rec := range recs {
		want := FromRequest(reqs[i])
		if rec != want {
			t.Fatalf("record %d: %+v != %+v", i, rec, want)
		}
	}
}

func TestCSVSkipsUnfinished(t *testing.T) {
	reqs := mkReqs(5)
	reqs[2].Finish = 0
	reqs[3] = nil
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Fatal("bad header should fail")
	}
	hdr := "id,conn,tenant,op,group,arrival_ns,service_ns,finish_ns,latency_ns,migrated,predicted\n"
	if _, err := ReadCSV(strings.NewReader(hdr + "x,0,0,GET,0,0,0,0,0,false,false\n")); err == nil {
		t.Fatal("bad id should fail")
	}
	if _, err := ReadCSV(strings.NewReader(hdr + "1,0,0,GET,0,0,0,0,0,notabool,false\n")); err == nil {
		t.Fatal("bad bool should fail")
	}
}

func TestJSONL(t *testing.T) {
	reqs := mkReqs(10)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("lines = %d", len(lines))
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[3]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != 3 || rec.Op != reqs[3].Op.String() {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestCDF(t *testing.T) {
	reqs := mkReqs(100)
	pts := CDF(reqs, 11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyNS < pts[i-1].LatencyNS {
			t.Fatal("CDF latencies not nondecreasing")
		}
		if pts[i].Fraction < pts[i-1].Fraction {
			t.Fatal("CDF fractions not nondecreasing")
		}
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Fatalf("final fraction = %v", pts[len(pts)-1].Fraction)
	}
	if CDF(nil, 5) != nil {
		t.Fatal("empty CDF should be nil")
	}
	if got := CDF(reqs, 0); len(got) != 2 {
		t.Fatalf("n clamp: %d", len(got))
	}
}

func TestCSVPropertyRoundTrip(t *testing.T) {
	f := func(id uint64, conn uint32, tenant uint8, svcNS uint32, latNS uint32, mig, pred bool) bool {
		r := &rpcproto.Request{
			ID: id, Conn: conn, Tenant: tenant,
			Arrival:  sim.Microsecond,
			Service:  sim.Time(svcNS) * sim.Nanosecond,
			Finish:   sim.Microsecond + sim.Time(latNS)*sim.Nanosecond + 1,
			Migrated: mig, Predicted: pred,
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, []*rpcproto.Request{r}); err != nil {
			return false
		}
		recs, err := ReadCSV(&buf)
		if err != nil || len(recs) != 1 {
			return false
		}
		return recs[0] == FromRequest(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
