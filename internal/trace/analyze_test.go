package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestAnalyze(t *testing.T) {
	recs := []Record{
		{Op: "GET", Group: 0, LatencyNS: 100, Migrated: true, Predicted: true},
		{Op: "GET", Group: 0, LatencyNS: 200},
		{Op: "GET", Group: 1, LatencyNS: 300},
		{Op: "SET", Group: 1, LatencyNS: 50},
		{Op: "SET", Group: 2, LatencyNS: 150, Predicted: true},
	}
	a := Analyze(recs)
	if a.Total != 5 || a.Migrated != 1 || a.Predicted != 2 {
		t.Fatalf("totals: %+v", a)
	}
	if len(a.PerOp) != 2 {
		t.Fatalf("ops: %d", len(a.PerOp))
	}
	get := a.PerOp[0]
	if get.Op != "GET" || get.N != 3 {
		t.Fatalf("GET stats: %+v", get)
	}
	if get.MeanNS != 200 || get.P50NS != 200 || get.MaxNS != 300 {
		t.Fatalf("GET latency stats: %+v", get)
	}
	if get.Migrated != 1 {
		t.Fatalf("GET migrated: %d", get.Migrated)
	}
	if a.PerGroup[0] != 2 || a.PerGroup[1] != 2 || a.PerGroup[2] != 1 {
		t.Fatalf("per group: %v", a.PerGroup)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Total != 0 || len(a.PerOp) != 0 {
		t.Fatalf("empty analysis: %+v", a)
	}
	var buf bytes.Buffer
	if err := a.Report(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestAnalysisReport(t *testing.T) {
	recs := []Record{
		{Op: "GET", Group: 0, LatencyNS: 100},
		{Op: "SCAN", Group: 1, LatencyNS: 50000, Migrated: true},
	}
	var buf bytes.Buffer
	if err := Analyze(recs).Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"requests: 2", "GET", "SCAN", "q0=1", "q1=1", "migrated: 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAnalyzeEndToEndWithCSV(t *testing.T) {
	reqs := mkReqs(50)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(recs)
	if a.Total != 50 {
		t.Fatalf("total = %d", a.Total)
	}
	// mkReqs marks every even request migrated.
	if a.Migrated != 25 {
		t.Fatalf("migrated = %d", a.Migrated)
	}
}
