package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/rpcproto"
)

// PhaseRecord is the exported view of one phase of a completed
// multi-phase request (DESIGN.md §15) — one row per phase, keyed by
// (ID, Phase). The main per-request codec (Record) is deliberately
// untouched: phase data travels in its own sidecar file so existing
// golden traces stay byte-identical.
type PhaseRecord struct {
	ID        uint64  `json:"id"`
	Phase     uint8   `json:"phase"`
	Phases    uint8   `json:"phases"`     // chain length, repeated per row for self-containment
	Class     uint8   `json:"class"`      // core-class affinity
	ServiceNS float64 `json:"service_ns"` // base duration on a general-purpose core
	AccNS     float64 `json:"acc_ns"`     // duration on the affine class
	OffloadNS float64 `json:"offload_ns"` // transfer cost when forwarded
	EndNS     float64 `json:"end_ns"`     // phase completion timestamp
}

// PhaseRecordsOf expands a completed phased request into its per-phase
// records, appending to dst. Unphased requests (NumPhases == 0, or a
// degenerate 1-phase chain is still emitted) contribute nothing when
// NumPhases is zero.
func PhaseRecordsOf(dst []PhaseRecord, r *rpcproto.Request) []PhaseRecord {
	for i := 0; i < int(r.NumPhases); i++ {
		dst = append(dst, PhaseRecord{
			ID:        r.ID,
			Phase:     uint8(i),
			Phases:    r.NumPhases,
			Class:     r.PhaseClass[i],
			ServiceNS: r.PhaseSvc[i].Nanoseconds(),
			AccNS:     r.PhaseAcc[i].Nanoseconds(),
			OffloadNS: r.PhaseOffload[i].Nanoseconds(),
			EndNS:     r.PhaseEnd[i].Nanoseconds(),
		})
	}
	return dst
}

// phaseCSVHeader matches PhaseRecord's field order.
var phaseCSVHeader = []string{"id", "phase", "phases", "class",
	"service_ns", "acc_ns", "offload_ns", "end_ns"}

// WritePhaseCSV streams the phase rows of completed phased requests as
// CSV with a header row. Nil, unfinished, and unphased requests are
// skipped.
func WritePhaseCSV(w io.Writer, reqs []*rpcproto.Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(phaseCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	var recs []PhaseRecord
	for _, r := range reqs {
		if r == nil || r.Finish == 0 || r.NumPhases == 0 {
			continue
		}
		recs = PhaseRecordsOf(recs[:0], r)
		for _, rec := range recs {
			row := []string{
				strconv.FormatUint(rec.ID, 10),
				strconv.FormatUint(uint64(rec.Phase), 10),
				strconv.FormatUint(uint64(rec.Phases), 10),
				strconv.FormatUint(uint64(rec.Class), 10),
				f(rec.ServiceNS), f(rec.AccNS), f(rec.OffloadNS), f(rec.EndNS),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPhaseCSV parses a CSV written by WritePhaseCSV back into records.
func ReadPhaseCSV(r io.Reader) ([]PhaseRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty phase CSV")
	}
	if len(rows[0]) != len(phaseCSVHeader) || rows[0][1] != "phase" {
		return nil, fmt.Errorf("trace: unexpected phase header %v", rows[0])
	}
	out := make([]PhaseRecord, 0, len(rows)-1)
	for i, row := range rows[1:] {
		rec, err := parsePhaseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: phase row %d: %w", i+2, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parsePhaseRow(row []string) (PhaseRecord, error) {
	var rec PhaseRecord
	if len(row) != len(phaseCSVHeader) {
		return rec, fmt.Errorf("want %d fields, got %d", len(phaseCSVHeader), len(row))
	}
	id, err := strconv.ParseUint(row[0], 10, 64)
	if err != nil {
		return rec, err
	}
	var u8 [3]uint8
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseUint(row[1+i], 10, 8)
		if err != nil {
			return rec, err
		}
		u8[i] = uint8(v)
	}
	var fs [4]float64
	for i := 0; i < 4; i++ {
		fs[i], err = strconv.ParseFloat(row[4+i], 64)
		if err != nil {
			return rec, err
		}
	}
	return PhaseRecord{
		ID: id, Phase: u8[0], Phases: u8[1], Class: u8[2],
		ServiceNS: fs[0], AccNS: fs[1], OffloadNS: fs[2], EndNS: fs[3],
	}, nil
}

// WritePhaseJSONL streams phase records as JSON lines.
func WritePhaseJSONL(w io.Writer, reqs []*rpcproto.Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var recs []PhaseRecord
	for _, r := range reqs {
		if r == nil || r.Finish == 0 || r.NumPhases == 0 {
			continue
		}
		recs = PhaseRecordsOf(recs[:0], r)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
