// Package trace exports simulation runs as structured data — per-request
// records (CSV or JSON lines) and latency CDFs — so results can be
// analysed or plotted outside the simulator. Everything the replay
// analyses rely on (service, latency, migration and prediction marks) is
// preserved.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Record is the exported view of one completed request.
type Record struct {
	ID        uint64  `json:"id"`
	Conn      uint32  `json:"conn"`
	Tenant    uint8   `json:"tenant"`
	Op        string  `json:"op"`
	Group     int     `json:"group"`
	ArrivalNS float64 `json:"arrival_ns"`
	ServiceNS float64 `json:"service_ns"`
	FinishNS  float64 `json:"finish_ns"`
	LatencyNS float64 `json:"latency_ns"`
	Migrated  bool    `json:"migrated"`
	Predicted bool    `json:"predicted"`
}

// FromRequest builds the exported record of a completed request. It
// panics (via Request.Latency) if the request has not finished.
func FromRequest(r *rpcproto.Request) Record {
	return Record{
		ID:        r.ID,
		Conn:      r.Conn,
		Tenant:    r.Tenant,
		Op:        r.Op.String(),
		Group:     r.GroupHint,
		ArrivalNS: r.Arrival.Nanoseconds(),
		ServiceNS: r.Service.Nanoseconds(),
		FinishNS:  r.Finish.Nanoseconds(),
		LatencyNS: r.Latency().Nanoseconds(),
		Migrated:  r.Migrated,
		Predicted: r.Predicted,
	}
}

// csvHeader matches Record's field order.
var csvHeader = []string{"id", "conn", "tenant", "op", "group",
	"arrival_ns", "service_ns", "finish_ns", "latency_ns", "migrated", "predicted"}

// WriteCSV streams the completed requests as CSV with a header row.
// Nil or unfinished requests are skipped.
func WriteCSV(w io.Writer, reqs []*rpcproto.Request) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range reqs {
		if r == nil || r.Finish == 0 {
			continue
		}
		rec := FromRequest(r)
		row := []string{
			strconv.FormatUint(rec.ID, 10),
			strconv.FormatUint(uint64(rec.Conn), 10),
			strconv.FormatUint(uint64(rec.Tenant), 10),
			rec.Op,
			strconv.Itoa(rec.Group),
			f(rec.ArrivalNS), f(rec.ServiceNS), f(rec.FinishNS), f(rec.LatencyNS),
			strconv.FormatBool(rec.Migrated),
			strconv.FormatBool(rec.Predicted),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV written by WriteCSV back into records.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if len(rows[0]) != len(csvHeader) || rows[0][0] != "id" {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	out := make([]Record, 0, len(rows)-1)
	for i, row := range rows[1:] {
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", i+2, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseRow(row []string) (Record, error) {
	var rec Record
	if len(row) != len(csvHeader) {
		return rec, fmt.Errorf("want %d fields, got %d", len(csvHeader), len(row))
	}
	id, err := strconv.ParseUint(row[0], 10, 64)
	if err != nil {
		return rec, err
	}
	conn, err := strconv.ParseUint(row[1], 10, 32)
	if err != nil {
		return rec, err
	}
	tenant, err := strconv.ParseUint(row[2], 10, 8)
	if err != nil {
		return rec, err
	}
	group, err := strconv.Atoi(row[4])
	if err != nil {
		return rec, err
	}
	fs := make([]float64, 4)
	for i := 0; i < 4; i++ {
		fs[i], err = strconv.ParseFloat(row[5+i], 64)
		if err != nil {
			return rec, err
		}
	}
	mig, err := strconv.ParseBool(row[9])
	if err != nil {
		return rec, err
	}
	pred, err := strconv.ParseBool(row[10])
	if err != nil {
		return rec, err
	}
	rec = Record{
		ID: id, Conn: uint32(conn), Tenant: uint8(tenant), Op: row[3], Group: group,
		ArrivalNS: fs[0], ServiceNS: fs[1], FinishNS: fs[2], LatencyNS: fs[3],
		Migrated: mig, Predicted: pred,
	}
	return rec, nil
}

// WriteJSONL streams records as JSON lines.
func WriteJSONL(w io.Writer, reqs []*rpcproto.Request) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range reqs {
		if r == nil || r.Finish == 0 {
			continue
		}
		if err := enc.Encode(FromRequest(r)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CDFPoint is one (latency, cumulative fraction) pair.
type CDFPoint struct {
	LatencyNS float64 `json:"latency_ns"`
	Fraction  float64 `json:"fraction"`
}

// CDF condenses completed requests into an n-point latency CDF
// (n >= 2; endpoints are the min and max observations).
func CDF(reqs []*rpcproto.Request, n int) []CDFPoint {
	if n < 2 {
		n = 2
	}
	var lats []sim.Time
	for _, r := range reqs {
		if r != nil && r.Finish != 0 {
			lats = append(lats, r.Latency())
		}
	}
	if len(lats) == 0 {
		return nil
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out := make([]CDFPoint, 0, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		idx := int(frac * float64(len(lats)-1))
		out = append(out, CDFPoint{
			LatencyNS: lats[idx].Nanoseconds(),
			Fraction:  float64(idx+1) / float64(len(lats)),
		})
	}
	return out
}
