package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// FuzzTraceRoundTrip checks that Record -> CSV -> Record and
// Record -> JSONL -> Record are lossless for any finished request. Time
// fields are clamped below 2^50 ps (~13 days of simulated time, far
// beyond any run) so the fixed three-decimal nanosecond format is
// exact; Finish is forced positive because WriteCSV skips unfinished
// requests by contract.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(0), uint8(0), uint8(0), int16(0), uint64(0), uint64(1), uint64(1), false, false)
	f.Add(uint64(1), uint32(7), uint8(2), uint8(1), int16(3), uint64(1000), uint64(500), uint64(2500), true, false)
	f.Add(uint64(1<<40), uint32(1<<31), uint8(255), uint8(3), int16(-1),
		uint64(1)<<49, uint64(1)<<49, uint64(1)<<49, true, true)
	f.Add(uint64(12345678901), uint32(4096), uint8(9), uint8(200), int16(512),
		uint64(999999999999), uint64(123456789), uint64(7777777777777), false, true)

	f.Fuzz(func(t *testing.T, id uint64, conn uint32, tenant, op uint8, group int16,
		arrival, service, finish uint64, migrated, predicted bool) {
		const maxPS = uint64(1) << 50
		r := &rpcproto.Request{
			ID:        id,
			Conn:      conn,
			Tenant:    tenant,
			Op:        rpcproto.Op(op % 4),
			GroupHint: int(group),
			Arrival:   sim.Time(arrival % maxPS),
			Service:   sim.Time(service % maxPS),
			Migrated:  migrated,
			Predicted: predicted,
		}
		// Finish must be positive and late enough that Latency is sane.
		r.Finish = r.Arrival + r.Service + sim.Time(finish%maxPS) + 1
		want := FromRequest(r)

		var csvBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, []*rpcproto.Request{r}); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		recs, err := ReadCSV(bytes.NewReader(csvBuf.Bytes()))
		if err != nil {
			t.Fatalf("ReadCSV: %v\ncsv:\n%s", err, csvBuf.String())
		}
		if len(recs) != 1 {
			t.Fatalf("ReadCSV returned %d records, want 1", len(recs))
		}
		if recs[0] != want {
			t.Fatalf("CSV round trip:\n got %+v\nwant %+v\ncsv:\n%s", recs[0], want, csvBuf.String())
		}

		var jsonBuf bytes.Buffer
		if err := WriteJSONL(&jsonBuf, []*rpcproto.Request{r}); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		var got Record
		if err := json.Unmarshal(jsonBuf.Bytes(), &got); err != nil {
			t.Fatalf("json: %v\nline: %s", err, jsonBuf.String())
		}
		if got != want {
			t.Fatalf("JSONL round trip:\n got %+v\nwant %+v\nline: %s", got, want, jsonBuf.String())
		}
	})
}

// FuzzPhaseRoundTrip checks that the phase sidecar codec
// (PhaseRecordsOf -> CSV/JSONL -> PhaseRecord) is lossless for any
// multi-phase chain. Per-phase durations derive deterministically from
// the fuzzed bases via index mixing so each row is distinct; the same
// 2^50 ps clamp as FuzzTraceRoundTrip keeps the fixed three-decimal
// format exact.
func FuzzPhaseRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(1), uint8(0), uint64(1), uint64(1), uint64(0), uint64(1))
	f.Add(uint64(7), uint8(4), uint8(1), uint64(38000), uint64(9500), uint64(120), uint64(999999))
	f.Add(uint64(1<<40), uint8(8), uint8(3), uint64(1)<<49, uint64(1)<<48, uint64(1)<<32, uint64(1)<<49)
	f.Add(uint64(12345), uint8(2), uint8(255), uint64(777777), uint64(0), uint64(31415), uint64(271828))

	f.Fuzz(func(t *testing.T, id uint64, nphases, class uint8, svc, acc, off, end uint64) {
		const maxPS = uint64(1) << 50
		n := int(nphases)%rpcproto.MaxPhases + 1
		r := &rpcproto.Request{ID: id, NumPhases: uint8(n), Phase: uint8(n - 1)}
		for i := 0; i < n; i++ {
			mix := uint64(i)*0x9E3779B9 + 1
			r.PhaseSvc[i] = sim.Time((svc * mix) % maxPS)
			r.PhaseAcc[i] = sim.Time((acc * mix) % maxPS)
			r.PhaseOffload[i] = sim.Time((off * mix) % maxPS)
			r.PhaseEnd[i] = sim.Time((end * mix) % maxPS)
			r.PhaseClass[i] = class + uint8(i)
			r.Service += r.PhaseSvc[i]
		}
		r.Finish = r.PhaseEnd[n-1] + 1 // WritePhaseCSV skips unfinished requests
		want := PhaseRecordsOf(nil, r)
		if len(want) != n {
			t.Fatalf("PhaseRecordsOf returned %d records, want %d", len(want), n)
		}

		var csvBuf bytes.Buffer
		if err := WritePhaseCSV(&csvBuf, []*rpcproto.Request{r}); err != nil {
			t.Fatalf("WritePhaseCSV: %v", err)
		}
		recs, err := ReadPhaseCSV(bytes.NewReader(csvBuf.Bytes()))
		if err != nil {
			t.Fatalf("ReadPhaseCSV: %v\ncsv:\n%s", err, csvBuf.String())
		}
		if len(recs) != len(want) {
			t.Fatalf("CSV round trip returned %d records, want %d", len(recs), len(want))
		}
		for i := range want {
			if recs[i] != want[i] {
				t.Fatalf("CSV row %d:\n got %+v\nwant %+v\ncsv:\n%s", i, recs[i], want[i], csvBuf.String())
			}
		}

		var jsonBuf bytes.Buffer
		if err := WritePhaseJSONL(&jsonBuf, []*rpcproto.Request{r}); err != nil {
			t.Fatalf("WritePhaseJSONL: %v", err)
		}
		dec := json.NewDecoder(bytes.NewReader(jsonBuf.Bytes()))
		for i := range want {
			var got PhaseRecord
			if err := dec.Decode(&got); err != nil {
				t.Fatalf("JSONL line %d: %v", i, err)
			}
			if got != want[i] {
				t.Fatalf("JSONL line %d:\n got %+v\nwant %+v", i, got, want[i])
			}
		}
	})
}
