package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// FuzzTraceRoundTrip checks that Record -> CSV -> Record and
// Record -> JSONL -> Record are lossless for any finished request. Time
// fields are clamped below 2^50 ps (~13 days of simulated time, far
// beyond any run) so the fixed three-decimal nanosecond format is
// exact; Finish is forced positive because WriteCSV skips unfinished
// requests by contract.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint32(0), uint8(0), uint8(0), int16(0), uint64(0), uint64(1), uint64(1), false, false)
	f.Add(uint64(1), uint32(7), uint8(2), uint8(1), int16(3), uint64(1000), uint64(500), uint64(2500), true, false)
	f.Add(uint64(1<<40), uint32(1<<31), uint8(255), uint8(3), int16(-1),
		uint64(1)<<49, uint64(1)<<49, uint64(1)<<49, true, true)
	f.Add(uint64(12345678901), uint32(4096), uint8(9), uint8(200), int16(512),
		uint64(999999999999), uint64(123456789), uint64(7777777777777), false, true)

	f.Fuzz(func(t *testing.T, id uint64, conn uint32, tenant, op uint8, group int16,
		arrival, service, finish uint64, migrated, predicted bool) {
		const maxPS = uint64(1) << 50
		r := &rpcproto.Request{
			ID:        id,
			Conn:      conn,
			Tenant:    tenant,
			Op:        rpcproto.Op(op % 4),
			GroupHint: int(group),
			Arrival:   sim.Time(arrival % maxPS),
			Service:   sim.Time(service % maxPS),
			Migrated:  migrated,
			Predicted: predicted,
		}
		// Finish must be positive and late enough that Latency is sane.
		r.Finish = r.Arrival + r.Service + sim.Time(finish%maxPS) + 1
		want := FromRequest(r)

		var csvBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, []*rpcproto.Request{r}); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		recs, err := ReadCSV(bytes.NewReader(csvBuf.Bytes()))
		if err != nil {
			t.Fatalf("ReadCSV: %v\ncsv:\n%s", err, csvBuf.String())
		}
		if len(recs) != 1 {
			t.Fatalf("ReadCSV returned %d records, want 1", len(recs))
		}
		if recs[0] != want {
			t.Fatalf("CSV round trip:\n got %+v\nwant %+v\ncsv:\n%s", recs[0], want, csvBuf.String())
		}

		var jsonBuf bytes.Buffer
		if err := WriteJSONL(&jsonBuf, []*rpcproto.Request{r}); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		var got Record
		if err := json.Unmarshal(jsonBuf.Bytes(), &got); err != nil {
			t.Fatalf("json: %v\nline: %s", err, jsonBuf.String())
		}
		if got != want {
			t.Fatalf("JSONL round trip:\n got %+v\nwant %+v\nline: %s", got, want, jsonBuf.String())
		}
	})
}
