package trace

import (
	"fmt"
	"io"
	"sort"
)

// OpStats digests the records of one operation type.
type OpStats struct {
	Op        string
	N         int
	MeanNS    float64
	P50NS     float64
	P99NS     float64
	P999NS    float64
	MaxNS     float64
	Migrated  int
	Predicted int
}

// Analysis is the digest of a whole trace.
type Analysis struct {
	Total     int
	Migrated  int
	Predicted int
	PerOp     []OpStats
	PerGroup  map[int]int // request count per initially-steered group
}

// Analyze digests exported records: per-op latency percentiles,
// migration/prediction counts and per-group request distribution.
func Analyze(recs []Record) Analysis {
	a := Analysis{PerGroup: map[int]int{}}
	byOp := map[string][]float64{}
	migByOp := map[string]int{}
	predByOp := map[string]int{}
	for _, r := range recs {
		a.Total++
		a.PerGroup[r.Group]++
		byOp[r.Op] = append(byOp[r.Op], r.LatencyNS)
		if r.Migrated {
			a.Migrated++
			migByOp[r.Op]++
		}
		if r.Predicted {
			a.Predicted++
			predByOp[r.Op]++
		}
	}
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		lats := byOp[op]
		sort.Float64s(lats)
		var sum float64
		for _, v := range lats {
			sum += v
		}
		pct := func(p float64) float64 {
			idx := int(p/100*float64(len(lats))+0.999999) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(lats) {
				idx = len(lats) - 1
			}
			return lats[idx]
		}
		a.PerOp = append(a.PerOp, OpStats{
			Op: op, N: len(lats),
			MeanNS: sum / float64(len(lats)),
			P50NS:  pct(50), P99NS: pct(99), P999NS: pct(99.9),
			MaxNS:    lats[len(lats)-1],
			Migrated: migByOp[op], Predicted: predByOp[op],
		})
	}
	return a
}

// Report writes a human-readable analysis.
func (a Analysis) Report(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "requests: %d  migrated: %d (%.2f%%)  predicted: %d (%.2f%%)\n",
		a.Total, a.Migrated, pctOf(a.Migrated, a.Total),
		a.Predicted, pctOf(a.Predicted, a.Total)); err != nil {
		return err
	}
	for _, op := range a.PerOp {
		if _, err := fmt.Fprintf(w,
			"%-5s n=%-8d mean=%8.1fns p50=%8.1fns p99=%8.1fns p99.9=%8.1fns max=%10.1fns migrated=%d\n",
			op.Op, op.N, op.MeanNS, op.P50NS, op.P99NS, op.P999NS, op.MaxNS, op.Migrated); err != nil {
			return err
		}
	}
	groups := make([]int, 0, len(a.PerGroup))
	for g := range a.PerGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	if _, err := fmt.Fprint(w, "per-group: "); err != nil {
		return err
	}
	for _, g := range groups {
		if _, err := fmt.Fprintf(w, "q%d=%d ", g, a.PerGroup[g]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pctOf(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
