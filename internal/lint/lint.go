// Package lint implements altolint, a domain-specific static-analysis
// suite for this repository. The analyzers enforce the simulator's
// determinism contract: events fire in strict (time, seq) order on a
// single goroutine, all randomness flows from the run seed, and all
// timestamps are sim.Time — so every figure is exactly reproducible
// run-to-run. Nothing in the Go toolchain enforces those invariants;
// altolint does.
//
// The suite is stdlib-only (go/parser + go/types with the source
// importer) so go.mod stays dependency-free.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Package is one type-checked package of the repository, the unit the
// analyzers operate on.
type Package struct {
	Path  string // import path, e.g. "repro/internal/sim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ImportsSim reports whether the package is, imports, or transitively
// imports (through module-internal packages) the simulation engine —
// the scope rule used by analyzers that guard the single-goroutine
// contract. Transitivity matters: a wrapper package that reaches the
// engine only through internal/server can corrupt event order just as
// thoroughly as one that imports internal/sim directly, so concurrency
// cannot be laundered through an intermediate import.
func (p *Package) ImportsSim() bool {
	if strings.HasSuffix(p.Path, "/internal/sim") {
		return true
	}
	module := p.Path
	if i := strings.Index(module, "/"); i >= 0 {
		module = module[:i]
	}
	seen := make(map[string]bool)
	var found bool
	var walk func(t *types.Package)
	walk = func(t *types.Package) {
		for _, imp := range t.Imports() {
			path := imp.Path()
			if found || seen[path] {
				continue
			}
			seen[path] = true
			if strings.HasSuffix(path, "/internal/sim") {
				found = true
				return
			}
			// Only module-internal packages can pull in the engine;
			// stdlib subtrees need no walking.
			if path == module || strings.HasPrefix(path, module+"/") {
				walk(imp)
			}
		}
	}
	walk(p.Types)
	return found
}

// Diagnostic is a single finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	// PkgPath is the import path the finding belongs to, where the
	// analyzer knows it (the escapes gate uses it to split gating
	// packages from warn-only ones). Empty means unknown.
	PkgPath string `json:"pkgPath,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Pkg   *Package
	diags *[]Diagnostic
	name  string
}

// Fset returns the file set positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// PkgNameOf resolves e to the *types.PkgName it references, if e is a
// package qualifier (handles aliased imports), else nil.
func (p *Pass) PkgNameOf(e ast.Expr) *types.PkgName {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn
	}
	return nil
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	// Applies gates the analyzer to its domain (e.g. floatcmp only runs
	// on the math-heavy packages). Nil means every package.
	Applies func(*Package) bool
	Run     func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AnalyzerDetNow,
		AnalyzerSimSync,
		AnalyzerEngineFree,
		AnalyzerMapIter,
		AnalyzerFloatCmp,
		AnalyzerSimTime,
		AnalyzerHotAlloc,
		AnalyzerAtomicField,
		AnalyzerSendBound,
		AnalyzerLockOrder,
		AnalyzerPadAlign,
	}
}

// RunAnalyzer runs a single analyzer over pkg, ignoring its Applies
// gate, and returns findings with //altolint:allow suppression applied.
// The golden-file tests use this entry point.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	a.Run(&Pass{Pkg: pkg, diags: &diags, name: a.Name})
	allows := collectAllows(pkg)
	diags = filterAllowed(diags, allows)
	sortDiags(diags)
	return diags
}

// Run executes every analyzer that applies to each package, applies
// //altolint:allow suppression, and reports unused or malformed
// directives. Diagnostics come back sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		names := make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			names[a.Name] = true
			if a.Applies != nil && !a.Applies(pkg) {
				continue
			}
			a.Run(&Pass{Pkg: pkg, diags: &pkgDiags, name: a.Name})
		}
		allows := collectAllows(pkg)
		pkgDiags = filterAllowed(pkgDiags, allows)
		pkgDiags = append(pkgDiags, directiveDiagnostics(pkg, allows, names)...)
		diags = append(diags, pkgDiags...)
	}
	sortDiags(diags)
	return diags
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}
