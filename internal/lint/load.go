package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks repository packages without any
// external module: module-internal imports resolve straight to source
// directories, and stdlib imports go through the compiler's source
// importer (which needs no pre-built export data).
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod, e.g. "repro"

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := moduleName(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		Module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

func moduleName(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// Import implements types.Importer. Module-internal paths load from the
// repo tree; everything else is assumed to be stdlib.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.LoadDir(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("directory %s is outside module root %s", dir, l.Root)
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir (non-test files
// only — the determinism contract binds the simulator, not its tests).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.pathFor(abs)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", abs)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Path:  path,
		Dir:   abs,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll loads every package under the module root, skipping testdata,
// hidden directories, and directories with no non-test Go files.
// Packages come back sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	return l.LoadTree(l.Root)
}

// LoadTree loads every package under dir (itself included), with the
// same skip rules as LoadAll.
func (l *Loader) LoadTree(dir string) ([]*Package, error) {
	dirs, err := l.packageDirs(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadPatterns resolves the altolint command's package patterns. No
// patterns and "./..." both mean the whole module; "dir/..." means the
// subtree; anything else is a single package directory.
func LoadPatterns(loader *Loader, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		return loader.LoadAll()
	}
	var pkgs []*Package
	seen := make(map[string]bool)
	add := func(ps ...*Package) {
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := loader.LoadAll()
			if err != nil {
				return nil, err
			}
			add(all...)
		case strings.HasSuffix(pat, "/..."):
			sub, err := loader.LoadTree(strings.TrimSuffix(pat, "/..."))
			if err != nil {
				return nil, err
			}
			add(sub...)
		default:
			pkg, err := loader.LoadDir(pat)
			if err != nil {
				return nil, err
			}
			add(pkg)
		}
	}
	return pkgs, nil
}

// packageDirs returns every directory under root holding at least one
// non-test Go file.
func (l *Loader) packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		name := d.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, "_") && !strings.HasPrefix(name, ".") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}
