package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMapIter flags range-over-map loops whose iteration order can
// leak into output: appending to a slice that is never sorted
// afterwards, or writing directly (fmt printing, io writes, report-row
// emission). Go randomizes map iteration order per run, so any such
// loop makes two same-seed runs produce different bytes — the exact
// failure the deterministic engine exists to prevent. The accepted
// idiom is collect-keys / sort / iterate-sorted.
var AnalyzerMapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration whose order reaches output or an unsorted slice",
	Run:  runMapIter,
}

// outputMethods are method names that emit ordered output in this
// repository: io.Writer-style writes plus report.Table row emission.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddSeries": true,
}

func runMapIter(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		// Walk with a parent stack so a range statement can see its
		// enclosing block (to look for a sort after the loop).
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rng.X); t == nil {
				return true
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rng, stack)
			return true
		})
	}
}

func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	// Direct output in the loop body can never be fixed up afterwards.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if pn := pass.PkgNameOf(sel.X); pn != nil {
				if pn.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Print") ||
					pn.Imported().Path() == "fmt" && strings.HasPrefix(sel.Sel.Name, "Fprint") {
					pass.Reportf(call.Pos(),
						"fmt.%s inside range over map: output order is randomized per run; iterate sorted keys instead",
						sel.Sel.Name)
				}
				return true
			}
			if outputMethods[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"%s call inside range over map: emission order is randomized per run; iterate sorted keys instead",
					sel.Sel.Name)
			}
		}
		return true
	})

	// Appends whose target is declared outside the loop keep the random
	// order unless a sort follows in the enclosing block.
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		target := rootIdent(asg.Lhs[0])
		if target == nil {
			return true
		}
		obj := pass.Pkg.Info.ObjectOf(target)
		if obj == nil || insideNode(rng, obj.Pos()) {
			return true // loop-local accumulator; order dies with the loop
		}
		if sortFollows(pass, rng, stack, obj) {
			return true
		}
		pass.Reportf(asg.Pos(),
			"append to %s inside range over map without a later sort: element order is randomized per run",
			target.Name)
		return true
	})
}

// rootIdent unwraps expressions like x, x.f, x[i] to their base ident.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func insideNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortFollows reports whether a statement after rng in one of its
// enclosing blocks sorts (or hands to a sorter) the object obj. This is
// a syntactic check for the collect-then-sort idiom, not a dataflow
// analysis: sort.X(v), slices.X(v), or any call whose arguments mention
// v counts.
func sortFollows(pass *Pass, rng *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	// Find enclosing blocks from innermost out; in each, look at
	// statements positioned after the range loop.
	for i := len(stack) - 1; i >= 0; i-- {
		var stmts []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			stmts = b.List
		case *ast.CaseClause:
			stmts = b.Body
		default:
			continue
		}
		for _, s := range stmts {
			if s.Pos() <= rng.End() {
				continue
			}
			if stmtSorts(pass, s, obj) {
				return true
			}
		}
	}
	return false
}

func stmtSorts(pass *Pass, s ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pn := pass.PkgNameOf(sel.X)
		if pn == nil {
			return true
		}
		switch pn.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && pass.Pkg.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}
