package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAllowDirectives drives lint.Run over testdata/allow and checks
// the directive semantics end to end: same-line and line-above
// suppression work, and the malformed / unknown-analyzer / unused
// directive cases are themselves findings.
func TestAllowDirectives(t *testing.T) {
	loader := testLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "allow"))
	if err != nil {
		t.Fatalf("loading testdata/allow: %v", err)
	}
	diags := Run([]*Package{pkg}, All())

	find := func(analyzer, msgPart string) *Diagnostic {
		for i := range diags {
			if diags[i].Analyzer == analyzer && strings.Contains(diags[i].Message, msgPart) {
				return &diags[i]
			}
		}
		return nil
	}

	// The two suppressed time.Now calls must not be reported: the only
	// detnow finding left is the one under the reason-less directive.
	var detnow []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "detnow" {
			detnow = append(detnow, d)
		}
	}
	if len(detnow) != 1 {
		t.Fatalf("want exactly 1 surviving detnow finding, got %d: %v", len(detnow), detnow)
	}

	if find("altolint", "missing a reason") == nil {
		t.Errorf("missing 'missing a reason' directive diagnostic in %v", diags)
	}
	if find("altolint", "unknown analyzer bogus") == nil {
		t.Errorf("missing 'unknown analyzer' directive diagnostic in %v", diags)
	}
	if find("altolint", "unused directive") == nil {
		t.Errorf("missing 'unused directive' diagnostic in %v", diags)
	}
}

// TestLoadAll checks the repository loads cleanly and the walker skips
// testdata: the lint golden packages must not appear.
func TestLoadAll(t *testing.T) {
	loader := testLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p.Path] = true
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("LoadAll picked up testdata package %s", p.Path)
		}
	}
	for _, want := range []string{"repro", "repro/internal/sim", "repro/internal/lint", "repro/cmd/altolint"} {
		if !seen[want] {
			t.Errorf("LoadAll missing package %s", want)
		}
	}
}

// TestRepoIsClean is the determinism gate as a test: the full analyzer
// suite must report nothing on the repository itself. If this fails,
// either fix the finding or annotate it with //altolint:allow and a
// reason.
func TestRepoIsClean(t *testing.T) {
	loader := testLoader(t)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestImportsSim pins the scope rule simsync relies on.
func TestImportsSim(t *testing.T) {
	loader := testLoader(t)
	simPkg, err := loader.LoadDir(filepath.Join("..", "sim"))
	if err != nil {
		t.Fatalf("loading internal/sim: %v", err)
	}
	if !simPkg.ImportsSim() {
		t.Errorf("internal/sim must count as sim-driven")
	}
	lintPkg, err := loader.LoadDir(".")
	if err != nil {
		t.Fatalf("loading internal/lint: %v", err)
	}
	if lintPkg.ImportsSim() {
		t.Errorf("internal/lint must not count as sim-driven")
	}
	// Transitivity: internal/fleet imports the engine only through
	// internal/server, and must still be in scope — concurrency cannot
	// be laundered through an intermediate import.
	fleetPkg, err := loader.LoadDir(filepath.Join("..", "fleet"))
	if err != nil {
		t.Fatalf("loading internal/fleet: %v", err)
	}
	if !fleetPkg.ImportsSim() {
		t.Errorf("internal/fleet must count as sim-driven (transitively via internal/server)")
	}
}
