package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerSimTime flags bare integer literals used as sim.Time outside
// the sim package's own unit declarations. sim.Time is picoseconds; a
// bare `40` where a Time is expected means 40 ps, which is almost never
// what the author intended (NoC hops are ~3 ns, RPCs hundreds of ns).
// Every Time-valued literal must go through a unit constant —
// 40*sim.Nanosecond — so the magnitude is visible and auditable.
// Multiplying or dividing a Time by a bare scalar (t*2, t/4,
// 40*sim.Nanosecond) is scaling, not a timestamp, and stays legal.
var AnalyzerSimTime = &Analyzer{
	Name: "simtime",
	Doc:  "flag bare integer literals mixed with sim.Time outside unit constants",
	Applies: func(p *Package) bool {
		// The sim package itself declares the unit constants.
		return !strings.HasSuffix(p.Path, "/internal/sim")
	},
	Run: runSimTime,
}

func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "/internal/sim")
}

func runSimTime(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTimeConversion(pass, n)
			case *ast.BasicLit:
				checkTimeLiteral(pass, n, stack)
			}
			return true
		})
	}
}

// checkTimeConversion reports sim.Time(<bare literal>) conversions.
func checkTimeConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isSimTime(tv.Type) {
		return
	}
	lit, ok := unwrapLiteral(call.Args[0])
	if !ok || lit.Kind != token.INT || isZeroConst(pass, lit) {
		return
	}
	pass.Reportf(call.Pos(),
		"sim.Time(%s) converts a bare literal (picoseconds); spell the unit, e.g. %s*sim.Nanosecond",
		lit.Value, lit.Value)
}

// checkTimeLiteral reports untyped integer literals that the type
// checker converted to sim.Time in additive, comparison, assignment,
// composite-literal, or argument positions.
func checkTimeLiteral(pass *Pass, lit *ast.BasicLit, stack []ast.Node) {
	if lit.Kind != token.INT || isZeroConst(pass, lit) {
		return
	}
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok || !isSimTime(tv.Type) {
		return
	}
	// Walk out through parens and unary minus to the operation that
	// consumes the literal.
	i := len(stack) - 2
	for i >= 0 {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			i--
			continue
		case *ast.UnaryExpr:
			if p.Op == token.SUB || p.Op == token.ADD {
				i--
				continue
			}
		}
		break
	}
	if i >= 0 {
		switch p := stack[i].(type) {
		case *ast.BinaryExpr:
			// 40 * sim.Nanosecond and t / 2 are unit construction and
			// scaling; the literal is a scalar there, not a timestamp.
			if p.Op == token.MUL || p.Op == token.QUO {
				return
			}
		case *ast.CallExpr:
			// A conversion sim.Time(40) is reported by
			// checkTimeConversion; don't double-report.
			if tv, ok := pass.Pkg.Info.Types[p.Fun]; ok && tv.IsType() {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(),
		"bare literal %s used as sim.Time (picoseconds); spell the unit, e.g. %s*sim.Nanosecond",
		lit.Value, lit.Value)
}

func unwrapLiteral(e ast.Expr) (*ast.BasicLit, bool) {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op == token.SUB || v.Op == token.ADD {
				e = v.X
				continue
			}
			return nil, false
		case *ast.BasicLit:
			return v, true
		default:
			return nil, false
		}
	}
}

func isZeroConst(pass *Pass, lit *ast.BasicLit) bool {
	if tv, ok := pass.Pkg.Info.Types[lit]; ok && tv.Value != nil {
		return constant.Sign(tv.Value) == 0
	}
	return lit.Value == "0"
}
