package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerLockOrder builds a static intra-package lock-acquisition
// graph and flags cycles. Mutexes are keyed by their declaration site
// (struct type + field, or package/function variable); an edge A -> B
// means some code path acquires B while holding A, either directly or
// by calling a same-package function that acquires B. A cycle in that
// graph is a potential deadlock: two goroutines entering the cycle from
// different edges can each hold the lock the other needs. Nested
// acquisition of the same key is reported immediately (Go's sync.Mutex
// is not reentrant).
//
// The analysis is deliberately conservative and syntactic: held-lock
// state is tracked in source order within each function (a Lock with no
// later Unlock — including `defer mu.Unlock()` — holds to the end of
// the function), and call edges follow the transitive may-acquire set
// of same-package callees. It can over-approximate (an "edge" both
// branches of an if cannot take together), so findings suppress with
// //altolint:allow lockorder <reason> when a cycle is provably
// unreachable — the reason then documents the real ordering protocol.
var AnalyzerLockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag cycles in the intra-package lock-acquisition graph",
	Applies: func(p *Package) bool {
		return strings.HasSuffix(p.Path, "/internal/live")
	},
	Run: runLockOrder,
}

// lockMethod classifies sync.Mutex/RWMutex method names.
var lockAcquire = map[string]bool{"Lock": true, "RLock": true}
var lockRelease = map[string]bool{"Unlock": true, "RUnlock": true}

// lockEdge is one acquired-while-held observation.
type lockEdge struct {
	from, to string
	pos      ast.Node
}

func runLockOrder(pass *Pass) {
	// Function summaries: every lock key a function acquires directly.
	direct := make(map[*types.Func]map[string]bool)
	calls := make(map[*types.Func]map[*types.Func]bool)
	var fnDecls []*ast.FuncDecl
	fnOf := make(map[*ast.FuncDecl]*types.Func)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fnDecls = append(fnDecls, fd)
			fnOf[fd] = obj
			direct[obj] = make(map[string]bool)
			calls[obj] = make(map[*types.Func]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if key, acquire := lockCall(pass, fd, call); key != "" && acquire {
					direct[obj][key] = true
				} else if callee := sameePackageCallee(pass, call); callee != nil {
					calls[obj][callee] = true
				}
				return true
			})
		}
	}

	// Fixpoint: may-acquire closes direct over the call graph.
	may := make(map[*types.Func]map[string]bool, len(direct))
	for fn, d := range direct {
		may[fn] = make(map[string]bool, len(d))
		for k := range d {
			may[fn][k] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range may {
			for callee := range calls[fn] {
				for k := range may[callee] {
					if !may[fn][k] {
						may[fn][k] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge pass: walk each function in source order with a held stack.
	var edges []lockEdge
	seen := make(map[string]bool)
	addEdge := func(from, to string, pos ast.Node) {
		id := from + "->" + to
		if !seen[id] {
			seen[id] = true
			edges = append(edges, lockEdge{from: from, to: to, pos: pos})
		}
	}
	for _, fd := range fnDecls {
		deferred := make(map[*ast.CallExpr]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})
		var held []string
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if deferred[call] {
				// defer mu.Unlock(): the lock stays held for the rest of
				// the function, which is exactly what leaving it on the
				// held stack models. Deferred lock-taking calls are too
				// rare to model; skip them.
				return true
			}
			if key, acquire := lockCall(pass, fd, call); key != "" {
				if acquire {
					for _, h := range held {
						if h == key {
							pass.Reportf(call.Pos(), "nested acquisition of %s: sync mutexes are not reentrant", key)
							return true
						}
					}
					for _, h := range held {
						addEdge(h, key, call)
					}
					held = append(held, key)
				} else {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == key {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if callee := sameePackageCallee(pass, call); callee != nil && len(held) > 0 {
				for k := range may[callee] {
					for _, h := range held {
						if h == k {
							pass.Reportf(call.Pos(),
								"call to %s while holding %s: the callee acquires %s (not reentrant)", callee.Name(), h, k)
						} else {
							addEdge(h, k, call)
						}
					}
				}
			}
			return true
		})
	}

	// Cycle detection: report every edge whose target can reach its
	// source back through the graph.
	adj := make(map[string][]string)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to string) bool {
		visited := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if visited[n] {
				continue
			}
			visited[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].pos.Pos() < edges[j].pos.Pos() })
	for _, e := range edges {
		if reaches(e.to, e.from) {
			pass.Reportf(e.pos.Pos(),
				"acquiring %s while holding %s creates a lock-order cycle (%s is also held while acquiring %s elsewhere)",
				e.to, e.from, e.to, e.from)
		}
	}
}

// lockCall classifies call as a mutex acquisition/release and returns
// the lock's key, or "" when it is not a mutex operation.
func lockCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) (key string, acquire bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	acq, rel := lockAcquire[sel.Sel.Name], lockRelease[sel.Sel.Name]
	if !acq && !rel {
		return "", false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if obj := named.Obj(); obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", false
	}
	return lockKeyOf(pass, fd, sel.X), acq
}

// lockKeyOf derives a stable identity for the mutex expression: the
// owning struct type and field for fields (through any number of
// selectors and indexes), the package or function scope for variables.
func lockKeyOf(pass *Pass, fd *ast.FuncDecl, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if p, ok := recv.Underlying().(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return named.Obj().Name() + "." + e.Sel.Name
			}
		}
		return e.Sel.Name
	case *ast.IndexExpr:
		return lockKeyOf(pass, fd, e.X)
	case *ast.Ident:
		if obj := pass.Pkg.Info.Uses[e]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Types.Scope() {
				return e.Name // package-level mutex
			}
		}
		return fd.Name.Name + "." + e.Name // function-local mutex
	}
	return "<mutex>"
}

// sameePackageCallee resolves call to a function or method declared in
// the package under analysis, or nil.
func sameePackageCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != pass.Pkg.Types {
		return nil
	}
	return fn
}
