package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerAtomicField enforces all-or-nothing atomicity per field: a
// struct field (or package-level variable) that is accessed through
// sync/atomic anywhere must be accessed atomically everywhere. A mixed
// regime — atomic.AddUint64(&s.n, 1) on the hot path but a bare s.n
// read in a report path — is a data race the compiler happily compiles
// and the race detector only catches if a soak happens to interleave
// the two; the lint catches it on every run.
//
// Two access regimes are checked:
//
//   - old-style fields (plain integer fields whose address is passed to
//     a sync/atomic function): every other access — read, write, or
//     taking the address outside a sync/atomic call — is a finding;
//   - typed fields (atomic.Int64, atomic.Uint64, ...): the only
//     sanctioned uses are method selection (f.Load(), f.Store(v)) and
//     taking the address (to pass *atomic.T); using the field as a
//     plain value (copy, assignment, comparison) is a finding. The
//     type system blocks most misuse of typed atomics; this closes the
//     copy-out hole that go vet's copylocks reports only for whole
//     struct copies.
var AnalyzerAtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "forbid mixed atomic/plain access to fields accessed via sync/atomic",
	Run:  runAtomicField,
}

// isAtomicScalar reports whether t is one of the typed atomics of
// sync/atomic (atomic.Int64, atomic.Uint32, atomic.Bool, ...).
func isAtomicScalar(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicTarget resolves the operand of a &x.f / &v argument to a
// sync/atomic call: the field or package-level variable object whose
// address is taken, or nil.
func atomicTarget(pass *Pass, arg ast.Expr) types.Object {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	return addressableObject(pass, u.X)
}

// addressableObject resolves x.f, x.f[i], v, or v[i] to the underlying
// field or variable object.
func addressableObject(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[e]; ok {
			return sel.Obj()
		}
		return pass.Pkg.Info.Uses[e.Sel]
	case *ast.IndexExpr:
		return addressableObject(pass, e.X)
	case *ast.Ident:
		return pass.Pkg.Info.Uses[e]
	}
	return nil
}

func runAtomicField(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: find every old-style atomic access — a call into
	// sync/atomic taking &target — and remember both the sanctioned
	// argument nodes and the target objects.
	oldStyle := make(map[types.Object]bool)
	sanctioned := make(map[ast.Node]bool) // the &x.f operand expressions inside atomic calls
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(fun.X)
			if pn == nil || pn.Imported().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if obj := atomicTarget(pass, arg); obj != nil {
					oldStyle[obj] = true
					u := ast.Unparen(arg).(*ast.UnaryExpr)
					markSanctioned(sanctioned, u.X)
				}
			}
			return true
		})
	}

	// Pass 2: check every use. Old-style targets may only appear inside
	// the sanctioned &target arguments; typed atomic fields may only be
	// method receivers or address operands.
	for _, f := range pass.Pkg.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			var obj types.Object
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					obj = sel.Obj()
				}
			case *ast.Ident:
				if o := info.Uses[n]; o != nil {
					if v, ok := o.(*types.Var); ok && !v.IsField() && v.Parent() == pass.Pkg.Types.Scope() {
						obj = o // package-level variable use
					}
				}
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if oldStyle[obj] {
				if !sanctioned[n] {
					pass.Reportf(n.Pos(),
						"%s is accessed via sync/atomic elsewhere; this plain access races with those atomic operations", obj.Name())
				}
				return true
			}
			if v, ok := obj.(*types.Var); ok && v.IsField() && isAtomicScalar(v.Type()) {
				if !typedAtomicUseOK(n, parents) {
					pass.Reportf(n.Pos(),
						"atomic field %s used as a plain value; go through its Load/Store/Add methods", obj.Name())
				}
			}
			return true
		})
	}
}

// markSanctioned records the operand of a sync/atomic &arg, including
// the inner selector of an index expression (&counts[i] sanctions the
// counts selector node too).
func markSanctioned(sanctioned map[ast.Node]bool, e ast.Expr) {
	e = ast.Unparen(e)
	sanctioned[e] = true
	if ix, ok := e.(*ast.IndexExpr); ok {
		markSanctioned(sanctioned, ix.X)
	}
}

// typedAtomicUseOK reports whether a use of an atomic-typed field is in
// one of the sanctioned positions: receiver of a method selection
// (f.Load()), operand of & (passing *atomic.T), or the indexee when the
// field is addressed through an index.
func typedAtomicUseOK(n ast.Node, parents map[ast.Node]ast.Node) bool {
	switch p := parents[n].(type) {
	case *ast.SelectorExpr:
		// f.Load / f.Store method selection: n is the X of the selector.
		return p.X == n
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.ParenExpr:
		return typedAtomicUseOK(p, parents)
	}
	return false
}

// parentMap builds the immediate-parent relation for every node in f.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
