package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerSimSync flags concurrency constructs in packages driven by
// the simulation engine. sim.Engine is documented single-goroutine: the
// simulated hardware is parallel, the simulator is not. A goroutine,
// channel op, or sync primitive in engine-adjacent code either races on
// engine state or injects OS-scheduler ordering into what must be a
// strict (time, seq) event order — both break reproducibility.
var AnalyzerSimSync = &Analyzer{
	Name:    "simsync",
	Doc:     "forbid goroutines, channel ops, and sync primitives in sim-driven packages",
	Applies: func(p *Package) bool { return p.ImportsSim() },
	Run:     runSimSync,
}

func runSimSync(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in a sim-driven package; the engine is single-goroutine by contract")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in a sim-driven package; schedule an event with sim.Engine.At/After instead")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in a sim-driven package; the event loop is the only scheduler")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in a sim-driven package; event ordering must be (time, seq), not runtime-chosen")
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel in a sim-driven package")
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if t := pass.TypeOf(n.Args[0]); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							pass.Reportf(n.Pos(), "close of channel in a sim-driven package")
						}
					}
				}
			case *ast.SelectorExpr:
				pn := pass.PkgNameOf(n.X)
				if pn == nil {
					return true
				}
				switch pn.Imported().Path() {
				case "sync", "sync/atomic":
					pass.Reportf(n.Pos(),
						"%s.%s in a sim-driven package; single-goroutine code needs no synchronization",
						pn.Imported().Name(), n.Sel.Name)
				}
			}
			return true
		})
	}
}
