package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerSimSync flags concurrency constructs in packages driven by
// the simulation engine. sim.Engine is documented single-goroutine: the
// simulated hardware is parallel, the simulator is not. A goroutine,
// channel op, or sync primitive in engine-adjacent code either races on
// engine state or injects OS-scheduler ordering into what must be a
// strict (time, seq) event order — both break reproducibility.
//
// Two packages are allowed to cross the boundary: internal/fleet, the
// cross-run worker pool, whose concurrency is strictly BETWEEN whole
// simulations (each owning a private engine and RNG tree), and
// internal/live, the real goroutine runtime, whose concurrency IS the
// system under study and which never touches a sim.Engine. Each opt-in
// is explicit and double-keyed: the package must carry its boundary
// directive (//altolint:fleet-boundary <reason> or
// //altolint:live-boundary <reason>) AND live at the matching path. A
// directive anywhere else is itself a finding, and its package's
// concurrency findings still stand — a boundary cannot be claimed by a
// copycat.
var AnalyzerSimSync = &Analyzer{
	Name:    "simsync",
	Doc:     "forbid goroutines, channel ops, and sync primitives in sim-driven packages",
	Applies: func(p *Package) bool { return p.ImportsSim() },
	Run:     runSimSync,
}

// simBoundary is one sanctioned concurrency opt-out of the simsync
// contract.
type simBoundary struct {
	directive  string // comment prefix after "//"
	pathSuffix string // required import-path suffix
	outsideMsg string // finding when the directive appears elsewhere
}

var simBoundaries = []simBoundary{
	{
		directive:  "altolint:fleet-boundary",
		pathSuffix: "/internal/fleet",
		outsideMsg: "fleet-boundary directive outside internal/fleet: only the cross-run worker pool may use concurrency",
	},
	{
		directive:  "altolint:live-boundary",
		pathSuffix: "/internal/live",
		outsideMsg: "live-boundary directive outside internal/live: only the live goroutine runtime may use concurrency",
	},
}

// boundaryDirective returns the position and reason of the first
// //<directive> comment in the package, or token.NoPos.
func boundaryDirective(pkg *Package, directive string) (token.Pos, string) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), directive)
				if !ok {
					continue
				}
				return c.Pos(), strings.TrimSpace(rest)
			}
		}
	}
	return token.NoPos, ""
}

func runSimSync(pass *Pass) {
	exempt := false
	for _, b := range simBoundaries {
		pos, reason := boundaryDirective(pass.Pkg, b.directive)
		if pos == token.NoPos {
			continue
		}
		// Golden-test packages under testdata/.../internal/<name>
		// qualify by the same suffix rule as the real package.
		switch {
		case reason == "":
			pass.Reportf(pos, "%s directive is missing a reason", strings.TrimPrefix(b.directive, "altolint:"))
		case !strings.HasSuffix(pass.Pkg.Path, b.pathSuffix):
			pass.Reportf(pos, "%s", b.outsideMsg)
		default:
			// The sanctioned boundary: the package is exempt from
			// simsync, though a malformed second directive above still
			// reports.
			exempt = true
		}
	}
	if exempt {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in a sim-driven package; the engine is single-goroutine by contract")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in a sim-driven package; schedule an event with sim.Engine.At/After instead")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in a sim-driven package; the event loop is the only scheduler")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in a sim-driven package; event ordering must be (time, seq), not runtime-chosen")
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.Pos(), "range over channel in a sim-driven package")
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					if t := pass.TypeOf(n.Args[0]); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							pass.Reportf(n.Pos(), "close of channel in a sim-driven package")
						}
					}
				}
			case *ast.SelectorExpr:
				pn := pass.PkgNameOf(n.X)
				if pn == nil {
					return true
				}
				switch pn.Imported().Path() {
				case "sync", "sync/atomic":
					pass.Reportf(n.Pos(),
						"%s.%s in a sim-driven package; single-goroutine code needs no synchronization",
						pn.Imported().Name(), n.Sel.Name)
				}
			}
			return true
		})
	}
}
