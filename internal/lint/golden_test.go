package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-file harness: each analyzer has a package under
// testdata/<name>/ whose offending lines carry trailing
//
//	// want "substring"
//
// comments (several quoted substrings for several findings on one
// line). The test runs the analyzer and diffs reported diagnostics
// against the expectations both ways: every want must be matched by a
// diagnostic on its line, and every diagnostic must be claimed by a
// want.
func TestGolden(t *testing.T) {
	loader := testLoader(t)
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			pkg, err := loader.LoadDir(filepath.Join("testdata", a.Name))
			if err != nil {
				t.Fatalf("loading testdata: %v", err)
			}
			diags := RunAnalyzer(a, pkg)
			checkExpectations(t, pkg, diags)
		})
	}
}

// TestFleetBoundary covers the simsync concurrency opt-in: the
// sanctioned internal/fleet package (correct path + reasoned
// //altolint:fleet-boundary directive) is exempt, while a copycat
// package elsewhere keeps all its findings plus one for the directive
// itself, and a reason-less directive is a finding even on a plausible
// package.
func TestFleetBoundary(t *testing.T) {
	loader := testLoader(t)

	// The allowed boundary: goroutines, channels, and sync, zero findings.
	ok, err := loader.LoadDir(filepath.Join("testdata", "fleetboundary", "internal", "fleet"))
	if err != nil {
		t.Fatalf("loading boundary testdata: %v", err)
	}
	checkExpectations(t, ok, RunAnalyzer(AnalyzerSimSync, ok))

	// The rejected copycat: want comments pin the directive finding and
	// the surviving concurrency findings.
	copycat, err := loader.LoadDir(filepath.Join("testdata", "fleetcopycat"))
	if err != nil {
		t.Fatalf("loading copycat testdata: %v", err)
	}
	checkExpectations(t, copycat, RunAnalyzer(AnalyzerSimSync, copycat))

	// The reason-less directive: asserted directly (a trailing want
	// comment would parse as the directive's reason).
	noreason, err := loader.LoadDir(filepath.Join("testdata", "fleetnoreason"))
	if err != nil {
		t.Fatalf("loading noreason testdata: %v", err)
	}
	diags := RunAnalyzer(AnalyzerSimSync, noreason)
	var gotMissing, gotGo bool
	for _, d := range diags {
		if strings.Contains(d.Message, "missing a reason") {
			gotMissing = true
		}
		if strings.Contains(d.Message, "go statement") {
			gotGo = true
		}
	}
	if !gotMissing || !gotGo || len(diags) != 2 {
		t.Fatalf("reason-less boundary directive: got %v, want the missing-reason finding plus the go-statement finding", diags)
	}
}

// TestLiveBoundary covers the second sanctioned simsync opt-in, the
// live goroutine runtime, with the same three-way split as the fleet
// boundary: sanctioned path + reasoned directive is exempt, a copycat
// keeps its findings plus the directive finding, and a reason-less
// directive is a finding.
func TestLiveBoundary(t *testing.T) {
	loader := testLoader(t)

	ok, err := loader.LoadDir(filepath.Join("testdata", "liveboundary", "internal", "live"))
	if err != nil {
		t.Fatalf("loading boundary testdata: %v", err)
	}
	checkExpectations(t, ok, RunAnalyzer(AnalyzerSimSync, ok))

	copycat, err := loader.LoadDir(filepath.Join("testdata", "livecopycat"))
	if err != nil {
		t.Fatalf("loading copycat testdata: %v", err)
	}
	checkExpectations(t, copycat, RunAnalyzer(AnalyzerSimSync, copycat))

	noreason, err := loader.LoadDir(filepath.Join("testdata", "livenoreason"))
	if err != nil {
		t.Fatalf("loading noreason testdata: %v", err)
	}
	diags := RunAnalyzer(AnalyzerSimSync, noreason)
	var gotMissing, gotGo bool
	for _, d := range diags {
		if strings.Contains(d.Message, "live-boundary directive is missing a reason") {
			gotMissing = true
		}
		if strings.Contains(d.Message, "go statement") {
			gotGo = true
		}
	}
	if !gotMissing || !gotGo || len(diags) != 2 {
		t.Fatalf("reason-less live-boundary directive: got %v, want the missing-reason finding plus the go-statement finding", diags)
	}
}

// TestSendBound covers the live half of the sendbound contract, which
// TestGolden cannot reach: testdata/sendbound sits outside an
// internal/live path, so enforcement there is off by design (it pins
// the copycat-directive finding instead). The sendboundlive tree
// carries the real import-path suffix and pins blocking-send findings,
// blessed sends, and directive rot; the reason-less directive is
// asserted directly (a trailing want comment would parse as the
// directive's reason).
func TestSendBound(t *testing.T) {
	loader := testLoader(t)

	live, err := loader.LoadDir(filepath.Join("testdata", "sendboundlive", "internal", "live"))
	if err != nil {
		t.Fatalf("loading sendboundlive testdata: %v", err)
	}
	checkExpectations(t, live, RunAnalyzer(AnalyzerSendBound, live))

	noreason, err := loader.LoadDir(filepath.Join("testdata", "sendboundnoreason", "internal", "live"))
	if err != nil {
		t.Fatalf("loading sendboundnoreason testdata: %v", err)
	}
	diags := RunAnalyzer(AnalyzerSendBound, noreason)
	var gotMissing, gotBlocking bool
	for _, d := range diags {
		if strings.Contains(d.Message, "bounded-send directive is missing a reason") {
			gotMissing = true
		}
		if strings.Contains(d.Message, "blocking send on out") {
			gotBlocking = true
		}
	}
	if !gotMissing || !gotBlocking || len(diags) != 2 {
		t.Fatalf("reason-less bounded-send directive: got %v, want the missing-reason finding plus the blocking-send finding", diags)
	}
}

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)
var wantStrRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants maps "file:line" to the expected message substrings on
// that line.
func collectWants(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want \"") {
						t.Errorf("%s: malformed want comment: %s", pkg.Fset.Position(c.Pos()), c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, q := range wantStrRE.FindAllStringSubmatch(m[1], -1) {
					wants[key] = append(wants[key], q[1])
				}
			}
		}
	}
	return wants
}

func checkExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	unclaimed := make(map[string][]string, len(wants))
	for k, v := range wants {
		unclaimed[k] = append([]string(nil), v...)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)
		idx := -1
		for i, w := range unclaimed[key] {
			if strings.Contains(d.Message, w) {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		unclaimed[key] = append(unclaimed[key][:idx], unclaimed[key][idx+1:]...)
	}
	for key, rest := range unclaimed {
		for _, w := range rest {
			t.Errorf("missing diagnostic at %s: want message containing %q", key, w)
		}
	}
}

func testLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	return loader
}
