package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerFloatCmp flags == and != between floating-point operands in
// the math-heavy packages (internal/queueing, internal/stats, and
// internal/policy, which hosts the Erlang-C threshold model). Queueing
// formulas chain divisions and exponentials, so two mathematically
// equal quantities rarely compare bit-equal; an exact comparison there
// is almost always a latent bug that manifests as a plateau or
// off-by-one-bucket in a figure. Compare against a tolerance instead,
// or annotate the rare intentional exact sentinel check.
var AnalyzerFloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag exact floating-point equality in numeric packages",
	Applies: func(p *Package) bool {
		return strings.HasSuffix(p.Path, "/internal/queueing") ||
			strings.HasSuffix(p.Path, "/internal/stats") ||
			strings.HasSuffix(p.Path, "/internal/policy")
	},
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	isFloat := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) && (isFloat(n.X) || isFloat(n.Y)) {
					pass.Reportf(n.OpPos,
						"exact floating-point %s comparison; use a tolerance (math.Abs(a-b) < eps)", n.Op)
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(n.Tag) {
					pass.Reportf(n.Tag.Pos(),
						"switch on floating-point value compares cases exactly; use if/else with tolerances")
				}
			}
			return true
		})
	}
}
