package lint

import (
	"fmt"
	"go/ast"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// The escapes driver turns two compiler outputs into a lint gate for
// //altolint:hotpath functions: escape analysis (-gcflags=-m=1) and the
// bounds-check-elimination debug trace (-d=ssa/check_bce/debug=1). A
// heap escape on a per-request path is an allocation the hotalloc
// analyzer cannot see (it only reads syntax; the compiler decides what
// actually escapes), and a bounds check is a branch the paper's
// nanosecond budget has no room for. Both degrade silently: the code
// still compiles, the tests still pass, only the ns/op drifts.
//
// The driver rebuilds the hotpath packages with diagnostics on, keeps
// the messages that land inside hotpath function bodies, and diffs them
// against a checked-in allowlist (testdata/escapes/allow.txt), so a new
// escape or bounds check on a hot function is a finding the moment it
// appears — and a fixed one rots its allowlist entry, which is also a
// finding. Entries are function-granular (package, function, message
// substring), not line-granular, so routine edits don't churn the file.
//
// The Go build cache replays compiler diagnostics on cache hits, so
// running the driver repeatedly is cheap and reliable.

// EscapeDiag is one compiler diagnostic attributed to a hotpath
// function.
type EscapeDiag struct {
	File    string // path relative to the module root
	Line    int
	Col     int
	PkgPath string // import path, e.g. "repro/internal/live"
	Func    string // Type.method for methods, plain name for functions
	Message string // compiler message, e.g. "t escapes to heap"
}

// EscapeAllow is one parsed allowlist entry.
type EscapeAllow struct {
	PkgPath string
	Func    string
	Substr  string // matched against EscapeDiag.Message
	Line    int    // in the allowlist file, for rot findings
	used    bool
}

// escapeDiagRE matches the compiler's file:line:col: message lines.
var escapeDiagRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// escapeInteresting keeps the diagnostics the gate is about; inlining
// chatter, "does not escape" confirmations and parameter leaks are
// dropped.
func escapeInteresting(msg string) bool {
	switch {
	case strings.HasSuffix(msg, "escapes to heap"):
		return true
	case strings.HasPrefix(msg, "moved to heap:"):
		return true
	case msg == "Found IsInBounds" || msg == "Found IsSliceInBounds":
		return true
	}
	return false
}

// hotRange is one //altolint:hotpath function's body span.
type hotRange struct {
	pkgPath    string
	name       string
	start, end int // line range, inclusive
}

// hotPathRanges maps root-relative file path -> hotpath function spans
// for the given packages.
func hotPathRanges(root string, pkgs []*Package) map[string][]hotRange {
	ranges := make(map[string][]hotRange)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotPath(fd.Doc) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				rel, err := filepath.Rel(root, start.Filename)
				if err != nil {
					rel = start.Filename
				}
				rel = filepath.ToSlash(rel)
				ranges[rel] = append(ranges[rel], hotRange{
					pkgPath: pkg.Path,
					name:    funcDisplayName(fd),
					start:   start.Line,
					end:     end.Line,
				})
			}
		}
	}
	return ranges
}

// funcDisplayName renders serve as worker.serve for methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// RunEscapes rebuilds the packages matched by patterns with escape and
// bounds-check diagnostics enabled and returns every interesting
// diagnostic inside a //altolint:hotpath function. Patterns follow the
// altolint command's convention (directory, dir/..., or ./... for the
// whole module).
func RunEscapes(loader *Loader, patterns []string) ([]EscapeDiag, error) {
	pkgs, err := LoadPatterns(loader, patterns)
	if err != nil {
		return nil, err
	}
	ranges := hotPathRanges(loader.Root, pkgs)

	// Rebuild exactly the loaded packages: deriving the build targets
	// from the loaded set keeps the hotpath scan and the compiler run on
	// the same footing whatever pattern form the caller used.
	args := []string{"build", "-gcflags=-m=1 -d=ssa/check_bce/debug=1"}
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(loader.Root, pkg.Dir)
		if err != nil {
			return nil, err
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = loader.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build for escape diagnostics: %v\n%s", err, out)
	}

	var diags []EscapeDiag
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeDiagRE.FindStringSubmatch(line)
		if m == nil {
			continue // "# pkg" headers, blank lines
		}
		msg := m[4]
		if !escapeInteresting(msg) {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		file := filepath.ToSlash(m[1])
		for _, hr := range ranges[file] {
			if lineNo >= hr.start && lineNo <= hr.end {
				diags = append(diags, EscapeDiag{
					File:    file,
					Line:    lineNo,
					Col:     col,
					PkgPath: hr.pkgPath,
					Func:    hr.name,
					Message: msg,
				})
				break
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// ParseEscapeAllow parses the allowlist format: one entry per line,
// <import path> <function> <message substring>, with blank lines and
// #-comments skipped.
func ParseEscapeAllow(data string) []*EscapeAllow {
	var allows []*EscapeAllow
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		a := &EscapeAllow{PkgPath: fields[0], Line: i + 1}
		if len(fields) > 1 {
			a.Func = fields[1]
		}
		if len(fields) > 2 {
			a.Substr = strings.TrimSpace(fields[2])
		}
		allows = append(allows, a)
	}
	return allows
}

// CheckEscapes diffs the observed diagnostics against the allowlist:
// a hotpath diagnostic with no matching entry is a finding, and so is
// an entry no diagnostic matches (the escape it documented is gone —
// delete the entry so it cannot mask a future regression).
func CheckEscapes(diags []EscapeDiag, allows []*EscapeAllow, allowFile string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		allowed := false
		for _, a := range allows {
			if a.PkgPath == d.PkgPath && a.Func == d.Func && a.Substr != "" && strings.Contains(d.Message, a.Substr) {
				a.used = true
				allowed = true
			}
		}
		if allowed {
			continue
		}
		kind := "heap escape"
		if strings.HasPrefix(d.Message, "Found Is") {
			kind = "bounds check"
		}
		out = append(out, Diagnostic{
			Analyzer: "escapes",
			File:     d.File,
			Line:     d.Line,
			Col:      d.Col,
			PkgPath:  d.PkgPath,
			Message: fmt.Sprintf("%s in hotpath function %s: %q is not in the escapes allowlist (%s)",
				kind, d.Func, d.Message, allowFile),
		})
	}
	for _, a := range allows {
		if !a.used {
			out = append(out, Diagnostic{
				Analyzer: "escapes",
				File:     allowFile,
				Line:     a.Line,
				PkgPath:  a.PkgPath,
				Message: fmt.Sprintf("unused escapes allowlist entry %s %s %q: the diagnostic no longer occurs — delete the entry",
					a.PkgPath, a.Func, a.Substr),
			})
		}
	}
	sortDiags(out)
	return out
}

// FormatEscapeAllow renders the current diagnostics as allowlist
// content (the -escapes-write output), deduplicated to one entry per
// (package, function, message).
func FormatEscapeAllow(diags []EscapeDiag) string {
	var b strings.Builder
	b.WriteString("# escapes allowlist: compiler diagnostics accepted inside //altolint:hotpath\n")
	b.WriteString("# functions. One entry per line: <import path> <function> <message substring>.\n")
	b.WriteString("# Regenerate with: go run ./cmd/altolint -escapes -escapes-write\n")
	seen := make(map[string]bool)
	var lines []string
	for _, d := range diags {
		line := d.PkgPath + " " + d.Func + " " + d.Message
		if !seen[line] {
			seen[line] = true
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	for _, line := range lines {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
