package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AnalyzerEngineFree enforces the contract of internal/policy: the
// engine-agnostic decision core must be callable from both the
// discrete-event simulator and the live goroutine runtime, so it may
// depend on neither execution engine. Concretely the package must not
//
//   - import internal/sim (directly or transitively) or any other
//     repo-internal engine package except internal/queueing, the pure
//     math it is built on;
//   - read the wall clock (time is a caller-supplied argument or a
//     policy.Clock);
//   - use goroutines, channels, or sync primitives (the callers own
//     their concurrency models);
//   - draw randomness (decisions are a pure function of their inputs).
//
// The simulator consumes policy under sim.Time, the live runtime under
// the monotonic clock; any engine dependency here would silently couple
// the two or make one consumer's determinism claims unverifiable.
var AnalyzerEngineFree = &Analyzer{
	Name: "enginefree",
	Doc:  "forbid engine, clock, concurrency, and randomness dependencies in internal/policy",
	Applies: func(p *Package) bool {
		return strings.HasSuffix(p.Path, "/internal/policy")
	},
	Run: runEngineFree,
}

// engineFreeImportAllowed lists the repo-internal import suffixes the
// policy core may use: only the closed-form queueing math.
var engineFreeImportAllowed = map[string]bool{
	"/internal/queueing": true,
}

func runEngineFree(pass *Pass) {
	// Imports: no engine packages, directly or transitively. The direct
	// check anchors the finding to the offending import line; the
	// transitive walk catches sim arriving through an intermediary.
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if !strings.Contains(path, "/internal/") {
				continue // stdlib
			}
			suffix := path[strings.LastIndex(path, "/internal/"):]
			if !engineFreeImportAllowed[suffix] {
				pass.Reportf(imp.Pos(),
					"import of %s in the engine-free policy core; only internal/queueing (pure math) is allowed", path)
			}
		}
	}
	if importsSimTransitively(pass.Pkg) {
		pass.Reportf(pass.Pkg.Files[0].Name.Pos(),
			"package transitively imports internal/sim; the policy core must stay engine-free")
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in the engine-free policy core; callers own their concurrency model")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in the engine-free policy core; return values instead")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in the engine-free policy core; take inputs as arguments")
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in the engine-free policy core; decisions must be pure functions")
			case *ast.SelectorExpr:
				pn := pass.PkgNameOf(n.X)
				if pn == nil {
					return true
				}
				switch pn.Imported().Path() {
				case "sync", "sync/atomic":
					pass.Reportf(n.Pos(),
						"%s.%s in the engine-free policy core; both consumers serialize policy calls themselves",
						pn.Imported().Name(), n.Sel.Name)
				case "time":
					if obj := pass.Pkg.Info.Uses[n.Sel]; obj != nil {
						if _, isFunc := obj.(*types.Func); isFunc && timeForbidden[n.Sel.Name] {
							pass.Reportf(n.Pos(),
								"time.%s in the engine-free policy core; time is a caller-supplied argument (policy.Duration / policy.Clock)",
								n.Sel.Name)
						}
					}
				case "math/rand", "math/rand/v2":
					pass.Reportf(n.Pos(),
						"rand.%s in the engine-free policy core; decisions must be a pure function of their inputs",
						n.Sel.Name)
				}
			}
			return true
		})
	}
}

// importsSimTransitively reports whether the package reaches
// internal/sim through any import chain. Unlike Package.ImportsSim it
// does not treat the policy package's own path as sim.
func importsSimTransitively(p *Package) bool {
	if p.Types == nil {
		return false
	}
	seen := make(map[string]bool)
	var walk func(t *types.Package) bool
	walk = func(t *types.Package) bool {
		for _, imp := range t.Imports() {
			path := imp.Path()
			if seen[path] {
				continue
			}
			seen[path] = true
			if strings.HasSuffix(path, "/internal/sim") {
				return true
			}
			if walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(p.Types)
}
