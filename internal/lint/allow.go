package lint

import (
	"go/token"
	"strings"
)

// allowDirective is one parsed //altolint:allow comment. A directive
// suppresses findings from one analyzer on the directive's own line
// (trailing comment) or the line immediately below it (preceding
// comment):
//
//	start := time.Now() //altolint:allow detnow wall-clock benchmark timing
//
//	//altolint:allow detnow wall-clock benchmark timing
//	start := time.Now()
//
// The reason is mandatory: an exception without a recorded
// justification is itself a finding.
type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

const allowPrefix = "altolint:allow"

// collectAllows parses every //altolint:allow directive in the package.
func collectAllows(pkg *Package) []*allowDirective {
	var out []*allowDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not directives
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				d := &allowDirective{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// filterAllowed drops diagnostics covered by a well-formed directive
// and marks those directives used.
func filterAllowed(diags []Diagnostic, allows []*allowDirective) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, a := range allows {
			if a.analyzer != d.Analyzer || a.reason == "" {
				continue
			}
			if a.pos.Filename != d.File {
				continue
			}
			if a.pos.Line == d.Line || a.pos.Line == d.Line-1 {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// directiveDiagnostics reports malformed and unused directives, so
// suppressions cannot silently rot as the code under them changes.
func directiveDiagnostics(pkg *Package, allows []*allowDirective, analyzers map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(a *allowDirective, msg string) {
		out = append(out, Diagnostic{
			Analyzer: "altolint",
			Pos:      a.pos,
			File:     a.pos.Filename,
			Line:     a.pos.Line,
			Col:      a.pos.Column,
			Message:  msg,
		})
	}
	for _, a := range allows {
		switch {
		case a.analyzer == "":
			report(a, "malformed directive: want //altolint:allow <analyzer> <reason>")
		case !analyzers[a.analyzer]:
			report(a, "directive names unknown analyzer "+a.analyzer)
		case a.reason == "":
			report(a, "directive for "+a.analyzer+" is missing a reason")
		case !a.used:
			report(a, "unused directive: no "+a.analyzer+" finding on this or the next line")
		}
	}
	return out
}
