package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerSendBound enforces the live runtime's non-blocking-send
// contract. The manager goroutine of internal/live is the scheduler hot
// loop: a send that can block parks the manager on the Go runtime's
// semaphore and every queued request behind it eats the stall, which is
// exactly the failure mode ALTOCUMULUS's bounded hardware FIFOs exist
// to rule out. Every channel send in internal/live must therefore be
//
//   - non-blocking by construction: a select case with a default
//     clause (a full channel is a NACK, never a stall), or
//   - on a channel whose bounded-capacity invariant is blessed with a
//     //altolint:bounded-send <reason> directive on the channel's
//     declaration: the comment records WHY the send can never block
//     (e.g. "manager never exceeds WorkerDepth outstanding").
//
// The directive is rot-checked like the fleet/live boundary opt-ins: a
// reason is mandatory, a directive outside internal/live is itself a
// finding (copycats cannot launder blocking sends elsewhere), a
// directive that does not sit on a channel declaration is a finding,
// and a blessed channel with no blocking send left is an unused
// directive.
var AnalyzerSendBound = &Analyzer{
	Name: "sendbound",
	Doc:  "require non-blocking or capacity-blessed channel sends in internal/live",
	Applies: func(p *Package) bool {
		// Enforcement is live-only, but the analyzer visits every package
		// so a copycat directive elsewhere is caught.
		return true
	},
	Run: runSendBound,
}

const sendBoundDirective = "altolint:bounded-send"

// sendBoundBless is one parsed //altolint:bounded-send directive.
type sendBoundBless struct {
	pos      token.Pos
	line     int
	file     string
	reason   string
	resolved bool // names at least one channel declaration
	used     bool // a blocking send relies on it
}

func runSendBound(pass *Pass) {
	inLive := strings.HasSuffix(pass.Pkg.Path, "/internal/live")

	// Collect directives.
	var blessings []*sendBoundBless
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), sendBoundDirective)
				if !ok {
					continue
				}
				position := pass.Fset().Position(c.Pos())
				blessings = append(blessings, &sendBoundBless{
					pos:    c.Pos(),
					line:   position.Line,
					file:   position.Filename,
					reason: strings.TrimSpace(rest),
				})
			}
		}
	}
	for _, b := range blessings {
		switch {
		case !inLive:
			pass.Reportf(b.pos, "bounded-send directive outside internal/live: only the live runtime's bounded channels may be blessed")
		case b.reason == "":
			pass.Reportf(b.pos, "bounded-send directive is missing a reason")
		}
	}
	if !inLive {
		return
	}

	// Resolve each well-formed directive to the channel-typed object(s)
	// declared on its line or the line below (directive-above style).
	blessed := make(map[types.Object]*sendBoundBless)
	for _, b := range blessings {
		if b.reason == "" {
			continue
		}
		for id, obj := range pass.Pkg.Info.Defs {
			if obj == nil || !isChanObject(obj) {
				continue
			}
			p := pass.Fset().Position(id.Pos())
			if p.Filename == b.file && (p.Line == b.line || p.Line == b.line+1) {
				blessed[obj] = b
				b.resolved = true
			}
		}
		if !b.resolved {
			pass.Reportf(b.pos, "bounded-send directive does not sit on a channel declaration")
		}
	}

	// A send is non-blocking when it is the comm clause of a select
	// that has a default case.
	nonblocking := make(map[*ast.SendStmt]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			hasDefault := false
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return true
			}
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					if send, ok := cc.Comm.(*ast.SendStmt); ok {
						nonblocking[send] = true
					}
				}
			}
			return true
		})
	}

	// Check every send.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok || nonblocking[send] {
				return true
			}
			obj := addressableObject(pass, send.Chan)
			if obj == nil {
				// A send on an unresolvable channel expression cannot be
				// audited against a blessing; require select+default.
				pass.Reportf(send.Pos(),
					"blocking send on unresolvable channel expression %s; make it non-blocking (select+default)", exprString(send.Chan))
				return true
			}
			if b, ok := blessed[obj]; ok {
				b.used = true
				return true
			}
			pass.Reportf(send.Pos(),
				"blocking send on %s in internal/live; make it non-blocking (select+default) or bless the channel's bounded-capacity invariant with //altolint:bounded-send <reason>",
				exprString(send.Chan))
			return true
		})
	}

	// Rot: a blessing no blocking send relies on must go.
	for _, b := range blessings {
		if b.resolved && !b.used {
			pass.Reportf(b.pos, "unused bounded-send directive: no blocking send on this channel")
		}
	}
}

// isChanObject reports whether obj is a variable (local, field, or
// package-level) of channel type, or a slice/array of channels.
func isChanObject(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	t := v.Type().Underlying()
	for {
		switch u := t.(type) {
		case *types.Chan:
			return true
		case *types.Slice:
			t = u.Elem().Underlying()
		case *types.Array:
			t = u.Elem().Underlying()
		default:
			return false
		}
	}
}

// exprString renders a short source form of e for messages.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "<expr>"
}
