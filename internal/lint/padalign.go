package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerPadAlign guards the live runtime's contended atomics against
// false sharing. An []atomic.Int64 board packs eight counters per 64B
// cache line; when different goroutines write neighbouring entries, the
// line ping-pongs between cores and every Store pays a coherence miss —
// the exact cost the UPDATE broadcast of the paper exists to avoid.
// The same applies to adjacent atomic fields of one struct written by
// different goroutines.
//
// Flagged shapes (in internal/live, the only package with cross-core
// atomics on the hot path):
//
//   - slice or array types whose element is a bare sync/atomic scalar
//     (atomic.Int64, atomic.Uint64, ...): wrap the element in a
//     cache-line-padded struct, one counter per 64B line;
//   - two adjacent struct fields of bare sync/atomic scalar type: pad
//     between them or use the padded wrapper.
//
// Single-writer or write-once layouts where padding buys nothing are
// annotated //altolint:allow padalign <reason>; the reason records the
// ownership argument.
var AnalyzerPadAlign = &Analyzer{
	Name: "padalign",
	Doc:  "require cache-line padding around contended atomic counters",
	Applies: func(p *Package) bool {
		return strings.HasSuffix(p.Path, "/internal/live")
	},
	Run: runPadAlign,
}

func runPadAlign(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ArrayType:
				if t := pass.TypeOf(n.Elt); t != nil && isAtomicScalar(t) {
					pass.Reportf(n.Pos(),
						"array of bare %s packs multiple counters per cache line; wrap the element in a cache-line-padded struct", typeShort(t))
				}
			case *ast.StructType:
				var prev *ast.Field
				for _, field := range n.Fields.List {
					t := pass.TypeOf(field.Type)
					atomicF := t != nil && isAtomicScalar(t)
					if atomicF && len(field.Names) > 1 {
						pass.Reportf(field.Pos(),
							"adjacent atomic fields %s share a cache line; pad between them or use a padded wrapper", fieldNames(field))
					} else if atomicF && prev != nil {
						if pt := pass.TypeOf(prev.Type); pt != nil && isAtomicScalar(pt) {
							pass.Reportf(field.Pos(),
								"atomic field %s is adjacent to atomic field %s; they share a cache line — pad between them or use a padded wrapper",
								fieldNames(field), fieldNames(prev))
						}
					}
					prev = field
				}
			}
			return true
		})
	}
}

// typeShort renders atomic.Int64 rather than sync/atomic.Int64.
func typeShort(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return "atomic." + named.Obj().Name()
	}
	return t.String()
}

// fieldNames joins a field's names ("a, b"), or renders the embedded
// type name.
func fieldNames(f *ast.Field) string {
	if len(f.Names) == 0 {
		if sel, ok := f.Type.(*ast.SelectorExpr); ok {
			return sel.Sel.Name
		}
		return "<embedded>"
	}
	names := make([]string, len(f.Names))
	for i, n := range f.Names {
		names[i] = n.Name
	}
	return strings.Join(names, ", ")
}
