package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEscapesDriver runs the compiler-diagnostics gate over the golden
// fixture: the hotpath function's heap escape and bounds check must
// surface with the right attribution, the unannotated twin must stay
// silent, and the allowlist diff must let blessed messages through
// while flagging unknown diagnostics and rotted entries.
func TestEscapesDriver(t *testing.T) {
	loader := testLoader(t)
	fixture := filepath.Join("testdata", "escapes", "src")
	diags, err := RunEscapes(loader, []string{fixture})
	if err != nil {
		t.Fatalf("RunEscapes: %v", err)
	}

	var gotEscape, gotBounds bool
	for _, d := range diags {
		if d.Func == "cold" {
			t.Errorf("diagnostic attributed to unannotated function cold: %v", d)
		}
		if d.Func != "hot" {
			continue
		}
		if strings.HasSuffix(d.Message, "escapes to heap") {
			gotEscape = true
		}
		if d.Message == "Found IsInBounds" {
			gotBounds = true
		}
	}
	if !gotEscape || !gotBounds {
		t.Fatalf("want a heap escape and a bounds check in hot, got %v", diags)
	}

	// Allowlist diff: the escape is blessed, the bounds check is not,
	// and one entry matches nothing (rot).
	pkgPath := loader.Module + "/internal/lint/testdata/escapes/src"
	allows := ParseEscapeAllow(
		"# fixture allowlist\n" +
			pkgPath + " hot escapes to heap\n" +
			pkgPath + " gone Found IsInBounds\n")
	findings := CheckEscapes(diags, allows, "allow.txt")
	var gotBoundsFinding, gotRot bool
	for _, f := range findings {
		if strings.Contains(f.Message, "escapes to heap") && !strings.Contains(f.Message, "unused") {
			t.Errorf("blessed escape still reported: %v", f)
		}
		if strings.Contains(f.Message, "bounds check in hotpath function hot") {
			gotBoundsFinding = true
		}
		if strings.Contains(f.Message, "unused escapes allowlist entry") && strings.Contains(f.Message, "gone") {
			gotRot = true
		}
	}
	if !gotBoundsFinding || !gotRot {
		t.Fatalf("want the unblessed bounds check plus the rotted entry, got %v", findings)
	}
}

// TestEscapeAllowlistWellFormed keeps the checked-in allowlist honest
// without re-running the compiler: every entry names a module package,
// a function, and a non-empty message substring the driver recognizes.
func TestEscapeAllowlistWellFormed(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "escapes", "allow.txt"))
	if err != nil {
		t.Fatalf("reading checked-in allowlist: %v", err)
	}
	allows := ParseEscapeAllow(string(data))
	if len(allows) == 0 {
		t.Fatal("checked-in allowlist has no entries; regenerate with altolint -escapes -escapes-write")
	}
	for _, a := range allows {
		if !strings.HasPrefix(a.PkgPath, "repro/") {
			t.Errorf("allow.txt:%d: package %q is not a module package", a.Line, a.PkgPath)
		}
		if a.Func == "" || a.Substr == "" {
			t.Errorf("allow.txt:%d: entry needs <pkg> <func> <message substring>", a.Line)
		}
		if !escapeInteresting(a.Substr) && !strings.Contains(a.Substr, "escapes to heap") &&
			!strings.HasPrefix(a.Substr, "moved to heap") {
			t.Errorf("allow.txt:%d: substring %q matches no diagnostic the driver keeps", a.Line, a.Substr)
		}
	}
}
