// Package floatcmptest exercises the floatcmp analyzer: exact == / !=
// between floating-point operands is a finding; tolerance comparisons
// and integer equality are not.
package floatcmptest

import "math"

func equal(a, b float64) bool {
	return a == b // want "exact floating-point == comparison"
}

func notEqual(a, b float32) bool {
	return a != b // want "exact floating-point != comparison"
}

func mixedConst(a float64) bool {
	return a == 0 // want "exact floating-point == comparison"
}

func tolerant(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func ordering(a, b float64) bool {
	return a < b // ordered comparisons are well-defined
}

func intsFine(a, b int) bool {
	return a == b
}

func switchFloat(x float64) int {
	switch x { // want "switch on floating-point value"
	case 1.0:
		return 1
	}
	return 0
}
