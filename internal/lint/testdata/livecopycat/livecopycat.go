// Package livecopycat claims the live-boundary exemption from the
// wrong place: the directive names a reason but the package is not
// internal/live, so the directive is a finding and the concurrency
// findings all stand.
package livecopycat

//altolint:live-boundary we also run goroutines // want "live-boundary directive outside internal/live"

func sneak(ch chan int) {
	go func() { ch <- 1 }() // want "go statement in a sim-driven package" "channel send in a sim-driven package"
	<-ch                    // want "channel receive in a sim-driven package"
}
