// Package live carries a reason-less bounded-send directive on a
// genuinely blessable channel: the missing reason is the finding (the
// blocking send is then also reported, because a malformed blessing
// blesses nothing). Asserted directly in TestSendBound — a trailing
// want comment here would parse as the directive's reason.
package live

//altolint:bounded-send
var out = make(chan int, 8)

func emit(v int) {
	out <- v
}
