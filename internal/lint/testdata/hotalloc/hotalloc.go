// Package hotalloctest exercises the hotalloc analyzer: allocation
// forms inside //altolint:hotpath functions are findings; the same
// forms in unannotated functions are not, and a reasoned allow
// suppresses an amortized-growth append.
package hotalloctest

type req struct {
	id   uint64
	next *req
}

type pool struct {
	free *req
	lens []int
}

// deliver is per-request steady state: every allocation form fires.
//
//altolint:hotpath
func (p *pool) deliver(n int) *req {
	buf := make([]int, n)       // want "make in hotpath function deliver"
	p.lens = append(p.lens, n)  // want "append in hotpath function deliver"
	r := &req{id: uint64(n)}    // want "composite-literal address in hotpath function deliver"
	q := new(req)               // want "new in hotpath function deliver"
	cb := func() { _ = buf[0] } // want "func literal in hotpath function deliver"
	cb()
	r.next = q
	return r
}

// lensInto reuses caller scratch; the append is amortized growth and
// carries a reasoned allow, so it is not a finding.
//
//altolint:hotpath
func (p *pool) lensInto(buf []int) []int {
	buf = buf[:0]
	for range p.lens {
		buf = append(buf, 0) //altolint:allow hotalloc scratch reuse: grows once, then steady-state zero-alloc
	}
	return buf
}

// construct is not annotated: constructors may allocate freely.
func construct(n int) *pool {
	p := &pool{lens: make([]int, 0, n)}
	for i := 0; i < n; i++ {
		p.free = &req{id: uint64(i), next: p.free}
	}
	return p
}
