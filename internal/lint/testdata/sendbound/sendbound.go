// Package sendbound is outside internal/live, so send enforcement is
// off here — but a bounded-send directive in a non-live package is a
// copycat and always a finding, whatever it sits on.
package sendbound

//altolint:bounded-send trust me, it is bounded // want "bounded-send directive outside internal/live"
var relay = make(chan int, 1)

func push(v int) {
	// Unflagged: only internal/live's sends are constrained.
	relay <- v
}
