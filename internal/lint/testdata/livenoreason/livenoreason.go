// Package livenoreason carries a reason-less live-boundary directive:
// an exemption without a recorded justification is itself a finding,
// and the concurrency findings stand. (Expectations for this package
// live in TestLiveBoundary, not in want comments: a trailing want
// comment here would itself read as the directive's reason.)
package livenoreason

//altolint:live-boundary

func leak() {
	go func() {}()
}
