// Package detnowtest exercises the detnow analyzer: wall-clock reads
// and global math/rand draws are findings; seeded generators, duration
// constants, and annotated exceptions are not.
package detnowtest

import (
	"math/rand"
	"time"
)

const tick = 3 * time.Millisecond // duration constants are deterministic

func wallClock() time.Duration {
	start := time.Now()        // want "time.Now reads the wall clock"
	time.Sleep(tick)           // want "time.Sleep reads the wall clock"
	if time.Until(start) < 0 { // want "time.Until reads the wall clock"
		_ = time.Tick(tick) // want "time.Tick reads the wall clock"
	}
	return time.Since(start) // want "time.Since reads the wall clock"
}

func timers() {
	t := time.NewTimer(tick) // want "time.NewTimer reads the wall clock"
	defer t.Stop()
	k := time.NewTicker(tick) // want "time.NewTicker reads the wall clock"
	defer k.Stop()
	_ = time.AfterFunc(tick, func() {}) // want "time.AfterFunc reads the wall clock"
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the global generator"
	_ = rand.Float64()                 // want "rand.Float64 draws from the global generator"
	return rand.Intn(10)               // want "rand.Intn draws from the global generator"
}

// seeded generators are the sanctioned escape hatch.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func parse(s string) (time.Duration, error) {
	return time.ParseDuration(s) // pure parsing, no clock involved
}

func annotated() time.Time {
	//altolint:allow detnow golden-file demonstration of suppression
	return time.Now()
}
