// Package enginefreetest exercises the enginefree analyzer: the policy
// core may not depend on an execution engine — no sim import, no wall
// clock, no concurrency, no randomness.
package enginefreetest // want "transitively imports internal/sim"

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/queueing"
	"repro/internal/sim" // want "import of repro/internal/sim in the engine-free policy core"
)

type decider struct {
	mu   sync.Mutex // want "sync.Mutex in the engine-free policy core"
	last sim.Time
}

func (d *decider) decide(view []int) int {
	now := time.Now() // want "time.Now in the engine-free policy core"
	_ = now
	// Pure duration arithmetic stays legal: only clock reads are engine
	// dependencies.
	var pause time.Duration = time.Millisecond
	_ = pause
	jitter := rand.Intn(8) // want "rand.Intn in the engine-free policy core"
	return len(view) + jitter + int(queueing.ExpectedQueueLength(4, 2))
}

func (d *decider) fanout(ch chan int) {
	go d.drain(ch) // want "go statement in the engine-free policy core"
	ch <- 1        // want "channel send in the engine-free policy core"
	<-ch           // want "channel receive in the engine-free policy core"
	select {       // want "select statement in the engine-free policy core"
	case v := <-ch: // want "channel receive in the engine-free policy core"
		_ = v
	default:
	}
}

func (d *decider) drain(ch chan int) {
	for range ch {
	}
}
