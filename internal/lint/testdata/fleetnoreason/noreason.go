// Package fleetnoreason carries a reason-less fleet-boundary directive:
// an exemption without a recorded justification is itself a finding,
// and the concurrency findings stand. (Expectations for this package
// live in TestFleetBoundary, not in want comments: a trailing want
// comment here would itself read as the directive's reason.)
package fleetnoreason

//altolint:fleet-boundary

func leak() {
	go func() {}()
}
