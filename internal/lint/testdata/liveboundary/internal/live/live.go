// Package live mirrors the real goroutine runtime for the golden test:
// a correctly placed, correctly reasoned live-boundary directive
// exempts the package from simsync, so none of the concurrency below is
// a finding.
package live

//altolint:live-boundary real scheduling runtime; concurrency is the subject under test

import "sync"

func serve(n int, fn func(int)) {
	var wg sync.WaitGroup
	work := make(chan int, n)
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case i := <-work:
					fn(i)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(stop)
	wg.Wait()
}
