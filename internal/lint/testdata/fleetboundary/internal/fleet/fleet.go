// Package fleet mirrors the real worker pool for the golden test: a
// correctly placed, correctly reasoned fleet-boundary directive exempts
// the package from simsync, so none of the concurrency below is a
// finding.
package fleet

//altolint:fleet-boundary cross-run worker pool; every run owns a private engine

import "sync"

func pool(n int, fn func(int)) {
	var wg sync.WaitGroup
	jobs := make(chan int, n)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
