// Package atomicfield exercises the all-or-nothing atomicity rule:
// once a field or package variable is touched through sync/atomic, any
// plain access to it is a finding, and typed atomics may only be used
// through their methods or by address.
package atomicfield

import "sync/atomic"

// total is old-style atomic at package scope.
var total uint64

func addTotal() {
	atomic.AddUint64(&total, 1)
}

func readTotalPlain() uint64 {
	return total // want "total is accessed via sync/atomic elsewhere"
}

func readTotalAtomic() uint64 {
	return atomic.LoadUint64(&total) // sanctioned: through sync/atomic
}

type counter struct {
	hits   uint64 // old-style atomic: bump uses atomic.AddUint64
	misses uint64 // never atomic: plain access everywhere is fine
	typed  atomic.Int64
	name   string
}

func (c *counter) bump() {
	atomic.AddUint64(&c.hits, 1)
	c.misses++
}

func (c *counter) report() uint64 {
	return c.hits + c.misses // want "hits is accessed via sync/atomic elsewhere"
}

func (c *counter) reset() {
	c.hits = 0 // want "hits is accessed via sync/atomic elsewhere"
	atomic.StoreUint64(&c.hits, 0)
}

func (c *counter) alias() *uint64 {
	return &c.hits // want "hits is accessed via sync/atomic elsewhere"
}

// Typed atomics: method calls and address-taking are the only
// sanctioned uses.

func (c *counter) typedOK() int64 {
	return c.typed.Load()
}

func (c *counter) typedAddr() *atomic.Int64 {
	return &c.typed
}

func (c *counter) typedCopy() int64 {
	v := c.typed // want "atomic field typed used as a plain value"
	return v.Load()
}

// Old-style atomics indexed through a slice: the indexed element access
// inside the atomic call is sanctioned, including the slice selector.

type board struct {
	slots []int64
}

func (b *board) store(i int, v int64) {
	atomic.StoreInt64(&b.slots[i], v)
}

func (b *board) peek(i int) int64 {
	return b.slots[i] // want "slots is accessed via sync/atomic elsewhere"
}
