// Package mapitertest exercises the mapiter analyzer: map iteration
// order may not reach output or an unsorted slice. The accepted idiom
// is collect keys, sort, iterate sorted.
package mapitertest

import (
	"fmt"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside range over map"
	}
	return out
}

func keysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // no finding: sorted below before use
	}
	sort.Strings(out)
	return out
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside range over map"
	}
}

func dumpTo(m map[string]int, t *table) {
	for k := range m {
		t.AddRow(k) // want "AddRow call inside range over map"
	}
}

type table struct{ rows [][]string }

func (t *table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Loop-local accumulators and commutative reductions are fine: the
// random order never escapes.
func reductions(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}
