// Package padalign exercises the false-sharing rules: arrays/slices of
// bare typed atomics pack several counters per cache line, and so do
// adjacent bare atomic struct fields. Padded wrapper elements and
// separated fields pass.
package padalign

import "sync/atomic"

type boards struct {
	qlens []atomic.Int64 // want "array of bare atomic.Int64 packs multiple counters per cache line"
	name  string
}

func mkBoard(n int) {
	b := make([]atomic.Uint64, n) // want "array of bare atomic.Uint64 packs multiple counters per cache line"
	b[0].Store(1)
}

type counters struct {
	hits   atomic.Uint64
	misses atomic.Uint64 // want "atomic field misses is adjacent to atomic field hits"
	gapped int64
	total  atomic.Int64 // fine: gapped separates it from misses
}

type multi struct {
	a, b atomic.Int64 // want "adjacent atomic fields a, b share a cache line"
}

// padded is the sanctioned wrapper: one counter per 64-byte line.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

type okBoard struct {
	qlens []padded // fine: the element is padded
}
