// Package lockorder fabricates the two deadlock shapes the analyzer
// exists for: an AB/BA cycle between two struct mutexes (both directly
// and through a same-package call), and nested acquisition of one
// non-reentrant mutex.
package lockorder

import "sync"

type a struct {
	mu sync.Mutex
}

type b struct {
	mu sync.Mutex
}

// aThenB and bThenA together form the AB/BA cycle: each edge is
// reported at its acquisition site.
func aThenB(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want "acquiring b.mu while holding a.mu creates a lock-order cycle"
	y.mu.Unlock()
}

func bThenA(x *a, y *b) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock() // want "acquiring a.mu while holding b.mu creates a lock-order cycle"
	x.mu.Unlock()
}

// sequential overlap-free use of both locks: no edge, no finding.
func sequential(x *a, y *b) {
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Lock()
	y.mu.Unlock()
}

func nested(x *a) {
	x.mu.Lock()
	x.mu.Lock() // want "nested acquisition of a.mu"
	x.mu.Unlock()
	x.mu.Unlock()
}

// The indirect half of a cycle: cThenD acquires d.mu by calling lockD
// while holding c.mu, so the c.mu -> d.mu edge lands on the call site.

type c struct {
	mu sync.Mutex
}

type d struct {
	mu sync.Mutex
}

func lockD(w *d) {
	w.mu.Lock()
	w.mu.Unlock()
}

func cThenD(v *c, w *d) {
	v.mu.Lock()
	defer v.mu.Unlock()
	lockD(w) // want "acquiring d.mu while holding c.mu creates a lock-order cycle"
}

func dThenC(v *c, w *d) {
	w.mu.Lock()
	defer w.mu.Unlock()
	v.mu.Lock() // want "acquiring c.mu while holding d.mu creates a lock-order cycle"
	v.mu.Unlock()
}

// nestedViaCall holds a lock and calls a function whose may-acquire set
// contains the same key: flagged at the call.
func nestedViaCall(w *d) {
	w.mu.Lock()
	defer w.mu.Unlock()
	lockD(w) // want "call to lockD while holding d.mu"
}
