// Package live mimics the real runtime's import-path suffix so the
// sendbound golden test exercises full enforcement: blocking sends are
// findings unless the channel's bounded-capacity invariant is blessed,
// and blessings themselves rot-check.
package live

type mgr struct {
	//altolint:bounded-send the sole sender checks outstanding < depth first, so capacity is always free
	work chan int
	wake chan struct{}
}

// poke is the sanctioned shape: select with a default, a full channel
// is dropped, never waited on.
func (m *mgr) poke() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// dispatch sends on the blessed channel: allowed, and marks the
// directive used.
func (m *mgr) dispatch(v int) {
	m.work <- v
}

// stall blocks on an unblessed channel: the core finding.
func (m *mgr) stall() {
	m.wake <- struct{}{} // want "blocking send on m.wake"
}

//altolint:bounded-send nothing on the next line is a channel // want "does not sit on a channel declaration"
var limit int

//altolint:bounded-send blessed, but every send is already a select // want "unused bounded-send directive"
var spare = make(chan int, 4)

func pushSpare(v int) {
	select {
	case spare <- v:
	default:
	}
}

// results come back from a function call: no declaration to audit a
// blessing against, so the send must be non-blocking.
func reply(v int) {
	pick()(nil) <- v // want "blocking send on unresolvable channel expression"
}

func pick() func([]int) chan int {
	return func([]int) chan int { return make(chan int, 1) }
}
