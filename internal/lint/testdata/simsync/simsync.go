// Package simsynctest exercises the simsync analyzer: any concurrency
// construct in a package that drives a sim.Engine is a finding, because
// the engine is single-goroutine by contract.
package simsynctest

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

type driver struct {
	eng *sim.Engine
	mu  sync.Mutex // want "sync.Mutex in a sim-driven package"
	n   int64
}

func (d *driver) spawn(ch chan int) {
	go d.step()              // want "go statement in a sim-driven package"
	ch <- 1                  // want "channel send in a sim-driven package"
	<-ch                     // want "channel receive in a sim-driven package"
	close(ch)                // want "close of channel in a sim-driven package"
	atomic.AddInt64(&d.n, 1) // want "atomic.AddInt64 in a sim-driven package"
}

func (d *driver) step() {
	d.eng.After(sim.Nanosecond, func() {})
}

func (d *driver) wait(a, b chan int) int {
	select { // want "select statement in a sim-driven package"
	case v := <-a: // want "channel receive in a sim-driven package"
		return v
	case v := <-b: // want "channel receive in a sim-driven package"
		return v
	}
}

func drain(ch chan int) int {
	total := 0
	for v := range ch { // want "range over channel in a sim-driven package"
		total += v
	}
	return total
}
