// Package allowtest exercises //altolint:allow directive semantics:
// suppression on the same line and the line above, plus the malformed,
// unknown-analyzer, and unused cases that lint.Run reports itself.
package allowtest

import "time"

func sameLine() time.Time {
	return time.Now() //altolint:allow detnow suppressed on the same line
}

func lineAbove() time.Time {
	//altolint:allow detnow suppressed from the line above
	return time.Now()
}

func missingReason() time.Time {
	//altolint:allow detnow
	return time.Now()
}

func unknownAnalyzer() {
	//altolint:allow bogus some reason
}

func unused() {
	//altolint:allow detnow nothing to suppress here
}
