// Package fleetcopycat claims the fleet-boundary exemption from the
// wrong place: the directive names a reason but the package is not
// internal/fleet, so the directive is a finding and the concurrency
// findings all stand.
package fleetcopycat

//altolint:fleet-boundary we would like goroutines too // want "fleet-boundary directive outside internal/fleet"

func sneak(ch chan int) {
	go func() { ch <- 1 }() // want "go statement in a sim-driven package" "channel send in a sim-driven package"
	<-ch                    // want "channel receive in a sim-driven package"
}
