// Package simtimetest exercises the simtime analyzer: a bare integer
// literal in a sim.Time position means raw picoseconds, which is almost
// never intended. Units must be spelled; scaling by a scalar is fine.
package simtimetest

import "repro/internal/sim"

const hop = 3 * sim.Nanosecond // unit-spelled constant: fine

func schedule(eng *sim.Engine) {
	eng.After(40, func() {})                // want "bare literal 40 used as sim.Time"
	eng.After(40*sim.Nanosecond, func() {}) // unit-spelled: fine

	var deadline sim.Time = 500 // want "bare literal 500 used as sim.Time"
	deadline += 1000            // want "bare literal 1000 used as sim.Time"
	if deadline > 100 {         // want "bare literal 100 used as sim.Time"
		eng.Stop()
	}

	_ = sim.Time(250) // want "sim.Time(250) converts a bare literal"
	_ = sim.Time(0)   // zero is unit-free

	_ = []sim.Time{40, hop} // want "bare literal 40 used as sim.Time"

	_ = deadline * 2 // scaling: fine
	_ = deadline / 4 // scaling: fine
	_ = hop + deadline
}
