// Package src is the escapes-driver golden fixture: hot carries the
// hotpath annotation plus one forced heap escape and one forced bounds
// check; cold has the same shapes without the annotation, so its
// diagnostics must be ignored by the driver.
package src

//
//altolint:hotpath
//go:noinline
func hot(xs []int, i int) *int {
	v := xs[i] + 1 // Found IsInBounds
	p := new(int)  // new(int) escapes to heap
	*p = v
	return p
}

//go:noinline
func cold(xs []int, i int) *int {
	v := xs[i] + 2
	p := new(int)
	*p = v
	return p
}

// Exercised so vet-style unused checks never trip on the fixture.
var _ = hot
var _ = cold
