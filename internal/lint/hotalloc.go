package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerHotAlloc flags allocation sites inside functions annotated
// //altolint:hotpath — the per-request and per-tick paths that the
// zero-alloc lifecycle work pinned to 0 allocs/op. Steady-state
// allocation regressions in those functions show up as GC pressure
// long before they show up as a failing figure, so the annotation
// turns "this path must not allocate" into a compile-time-adjacent
// check rather than a benchmark archaeology exercise.
//
// Flagged forms: make(...), append(...) (growth reallocates; annotate
// genuinely amortized growth into reused scratch with an allow),
// new(...), &T{...} composite-literal addresses, and func literals
// (closure capture allocates per evaluation — bind callbacks once at
// construction instead).
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation in //altolint:hotpath functions",
	Run:  runHotAlloc,
}

// hotPathDirective marks a function as steady-state per-request code in
// its doc comment.
const hotPathDirective = "altolint:hotpath"

func isHotPath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		if strings.TrimSpace(text) == hotPathDirective {
			return true
		}
	}
	return false
}

func runHotAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd.Doc) {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					id, ok := n.Fun.(*ast.Ident)
					if !ok {
						return true
					}
					b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
					if !ok {
						return true
					}
					switch b.Name() {
					case "make":
						pass.Reportf(n.Pos(),
							"make in hotpath function %s; hoist the buffer into caller-owned scratch", name)
					case "new":
						pass.Reportf(n.Pos(),
							"new in hotpath function %s; reuse a pre-allocated object", name)
					case "append":
						pass.Reportf(n.Pos(),
							"append in hotpath function %s may grow its backing array; preallocate, or annotate genuinely amortized growth", name)
					}
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						if _, ok := n.X.(*ast.CompositeLit); ok {
							pass.Reportf(n.Pos(),
								"composite-literal address in hotpath function %s escapes to the heap; reuse a pooled object", name)
						}
					}
				case *ast.FuncLit:
					pass.Reportf(n.Pos(),
						"func literal in hotpath function %s allocates a closure per evaluation; bind it once at construction", name)
				}
				return true
			})
		}
	}
}
