package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerDetNow forbids wall-clock and global-RNG APIs everywhere in
// the repository. Simulated time must come from sim.Engine.Now(), and
// randomness from a seed-derived sim.RNG (see internal/dist) — a single
// time.Now() or global rand.Intn() makes a run irreproducible, which
// silently invalidates every replay-based analysis. Intentional
// wall-clock use (e.g. reporting real benchmark duration) must carry an
// //altolint:allow detnow directive with a reason.
var AnalyzerDetNow = &Analyzer{
	Name: "detnow",
	Doc:  "forbid wall-clock time and global math/rand in simulator code",
	Run:  runDetNow,
}

// timeForbidden lists package time functions that read or wait on the
// wall clock. Pure helpers (time.ParseDuration, the Duration
// constants/conversions) stay legal.
var timeForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 equivalents.
	"NewPCG": true, "NewChaCha8": true,
}

func runDetNow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(sel.X)
			if pn == nil {
				return true
			}
			obj := pass.Pkg.Info.Uses[sel.Sel]
			if _, isFunc := obj.(*types.Func); !isFunc {
				return true // types and constants are deterministic
			}
			switch pn.Imported().Path() {
			case "time":
				if timeForbidden[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; deterministic code must use sim.Engine.Now/After",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the global generator; use a seeded sim.RNG (internal/dist) so runs are a pure function of the seed",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}
