package experiments

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/fleet"
	"repro/internal/report"
)

// render executes one experiment and returns its rendered tables.
func render(t *testing.T, id string, seed uint64) []byte {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(ScaleQuick, seed)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	if err := report.RenderAll(&buf, tables); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// parityDefault is the subset of experiments cheap enough (quick-scale
// wall time well under ~3 s each) to regenerate twice inside the
// ordinary `go test ./...` budget. ALTOBENCH_PARITY=all widens the test
// to the full registry — scripts/check.sh runs that mode with a raised
// timeout, so every registered experiment gets the byte-identity check
// in CI without pushing the default package run past its deadline.
var parityDefault = map[string]bool{
	"fig01": true, "fig03": true, "fig07": true, "fig09": true,
	"fig10": true, "efficiency": true, "isolation": true, "validate": true,
	"rack": true, "multiphase": true,
}

// TestParallelSerialParity is the cross-run determinism gate for the
// fleet harness: each covered experiment, run strictly serially and at
// -par 8, must render byte-identical tables. A single diverging byte
// means some run is no longer a pure function of (Config, Workload,
// seed) — shared state, map-order leakage, or order-dependent float
// aggregation — and the parallel harness is unsound.
func TestParallelSerialParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity regeneration skipped in -short mode")
	}
	all := os.Getenv("ALTOBENCH_PARITY") == "all"
	defer fleet.SetParallelism(0)
	for _, e := range All() {
		e := e
		if !all && !parityDefault[e.ID] {
			continue
		}
		t.Run(e.ID, func(t *testing.T) {
			fleet.SetParallelism(1)
			serial := render(t, e.ID, 1)
			fleet.SetParallelism(8)
			parallel := render(t, e.ID, 1)
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("serial and -par 8 outputs differ for %s:\n--- serial ---\n%s\n--- par 8 ---\n%s",
					e.ID, serial, parallel)
			}
		})
	}
}
