package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "stability",
		Title: "Multi-seed stability of the headline results (extension)",
		Paper: "methodology check",
		Run:   runStability,
	})
}

// runStability reruns the Fig. 11-class workload (256 cores, skewed load
// 0.95) under five independent seeds, with and without migration, and
// reports the mean and standard deviation of p99 and the violation
// count. Single-seed results are the norm in this repository (runs are
// deterministic); this experiment quantifies how much of each headline
// number is workload luck.
func runStability(scale Scale, seed uint64) ([]report.Table, error) {
	n := scale.n(400000)
	svc, rate := fig11Workload(n)
	slo := sim.Time(10 * float64(svc.Mean()))
	seeds := []uint64{seed, seed + 101, seed + 202, seed + 303, seed + 404}

	t := report.Table{
		ID:    "stability",
		Title: "p99 and violations across 5 seeds (16x16 cores, skewed load 0.95)",
		Cols:  []string{"variant", "p99 mean(us)", "p99 std(us)", "viol mean", "viol std"},
	}
	for _, variant := range []struct {
		name    string
		disable bool
	}{
		{"with migration", false},
		{"no migration", true},
	} {
		variant := variant
		// The five seeds are independent runs: schedule them on the
		// fleet pool and aggregate in seed order.
		results, err := fleet.Map(len(seeds), func(i int) (*server.Result, error) {
			p := core.DefaultParams(16, 15)
			p.DisableMigration = variant.disable
			res, err := fig11Run(p, svc, rate, n, seeds[i])
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", variant.name, seeds[i], err)
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		var p99s, viols []float64
		for _, res := range results {
			p99s = append(p99s, res.Summary.P99.Microseconds())
			viols = append(viols, float64(res.Lat.CountAbove(slo)))
		}
		mp, sp := meanStd(p99s)
		mv, sv := meanStd(viols)
		t.AddRow(variant.name,
			fmt.Sprintf("%.2f", mp), fmt.Sprintf("%.2f", sp),
			fmt.Sprintf("%.0f", mv), fmt.Sprintf("%.0f", sv))
	}
	t.Notes = append(t.Notes,
		"the with/without-migration gap dwarfs seed variance: the headline effect is not workload luck")
	return []report.Table{t}, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}
