package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "MICA adaptability under mixed GET/SET + SCAN real-world traffic",
		Paper: "Fig. 14",
		Run:   runFig14,
	})
}

// fig14MMPP is a mildly bursty arrival process (multipliers 0.7-1.5x) —
// strong enough to build transient central-queue backlogs that expose
// JBSQ's commitment problem, weak enough that bursts stay near capacity.
func fig14MMPP(rate float64) *dist.MMPP {
	mult := []float64{0.7, 0.9, 1.0, 1.1, 1.25, 1.5}
	var avg float64
	for _, m := range mult {
		avg += m
	}
	avg /= float64(len(mult))
	return &dist.MMPP{BaseRate: rate / avg, Mult: mult, Dwell: 50 * sim.Microsecond, PJump: 0.3}
}

// runFig14 reproduces the end-to-end adaptability experiment: a 64-core
// MICA server on the nanoRPC stack serving ~50ns GET/SETs mixed with
// ~50us SCANs under bursty arrivals. Nebula's SLO-blind JBSQ eagerly
// commits shorts behind in-flight SCANs whenever a backlog forms; the
// ALTOCUMULUS runtime keeps backlog at the managers (dispatch to idle
// workers only) and proactively migrates predicted violators across
// groups. AC-ISA vs AC-MSR isolates the custom-instruction interface
// against ~100-cycle rdmsr/wrmsr syscalls, which stretch the runtime's
// effective period.
//
// Deviation from the paper: the stated 0.5% SCAN share is infeasible at
// the reported throughputs (it alone exceeds 64 cores of work), so the
// SCAN fraction is 0.1%, keeping SCANs ~50% of total work. The AC
// configurations use hardware-assisted local dispatch: a 70-cycle
// coherence hop per dispatch cannot sustain nanosecond-scale rates.
func runFig14(scale Scale, seed uint64) ([]report.Table, error) {
	const cores = 64
	const groups = 4
	slo := 1 * sim.Microsecond // the paper reports throughput at p99 < 1us
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if scale == ScaleQuick {
		loads = []float64{0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}

	mkApp := func(parts int) *server.MICAApp {
		app, err := newMICA(parts, 0) // real op-cost model, no fixed override
		if err != nil {
			panic(err) // static sizing; failure is a programming error
		}
		app.ScanFrac = 0.001
		return app
	}
	meanSvc := mkApp(groups).MeanService()

	type sys struct {
		name  string
		parts int
		cfg   server.Config
	}
	mkAC := func(iface fabric.Interface) server.Config {
		// Nanosecond-scale RPC rates need migration bandwidth: a faster
		// period and larger batches (S = Bulk/Concurrency = 16
		// descriptors per MIGRATE toward each of the 3 peer groups).
		p := core.DefaultParams(groups, 15)
		p.Period = 100 * sim.Nanosecond
		p.Bulk = 48
		p.Concurrency = 3
		p.MRCapacity = 128
		p.FIFOCapacity = 48
		p.Iface = iface
		return server.Config{Kind: server.SchedAltocumulus, AC: p,
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerDirect, Seed: seed, SLO: slo}
	}
	systems := []sys{
		{"Nebula", cores, server.Config{Kind: server.SchedNebula, Cores: cores,
			Stack: rpcproto.StackNanoRPC, Seed: seed, SLO: slo}},
		{"AC-ISA", groups, mkAC(fabric.InterfaceISA)},
		{"AC-MSR", groups, mkAC(fabric.InterfaceMSR)},
	}

	curve := report.Table{
		ID:    "fig14",
		Title: "p99 (us) and violation ratio vs offered load (64 cores, MICA GET/SET+SCAN, nanoRPC)",
		Cols:  []string{"system", "MRPS", "p99(us)", "viol-ratio"},
	}
	summary := report.Table{
		ID:    "fig14",
		Title: "throughput at p99 < 1us",
		Cols:  []string{"system", "tput@SLO(MRPS)", "vs Nebula"},
	}
	tputs := map[string]float64{}
	for _, s := range systems {
		workers := cores
		if s.cfg.Kind == server.SchedAltocumulus {
			workers = groups * 15
		}
		capacity := float64(workers) / meanSvc.Seconds()
		pts, err := sweep(loads,
			func(float64) server.Config { return s.cfg },
			func(load float64) server.Workload {
				// Duration-sized runs: the 50us SCAN population needs
				// hundreds of microseconds to reach steady state.
				rate := load * capacity
				n := scale.nForDuration(rate, 600*sim.Microsecond, 3*sim.Millisecond)
				return server.Workload{
					Arrivals: fig14MMPP(rate),
					App:      mkApp(s.parts), N: n, Warmup: n / 4,
				}
			})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
		for _, p := range pts {
			curve.AddRow(s.name, mrps(p.OfferedRPS), usStr(p.P99), fmt.Sprintf("%.4f", p.VioRatio))
		}
		tputs[s.name] = server.ThroughputAtSLO(pts, slo)
	}
	for _, s := range systems {
		ratio := "n/a"
		if nb := tputs["Nebula"]; nb > 0 {
			ratio = fmt.Sprintf("%.2fx", tputs[s.name]/nb)
		}
		summary.AddRow(s.name, mrps(tputs[s.name]), ratio)
	}
	summary.Notes = append(summary.Notes,
		"paper: Nebula's p99 fluctuates to 15us past 250 MRPS (up to 47% violations); AC-ISA reaches ~2.5x Nebula's throughput@SLO",
		"paper: AC-MSR delivers ~91% of AC-ISA's maximum throughput (syscall-class register access stretches the runtime period)")
	return []report.Table{curve, summary}, nil
}
