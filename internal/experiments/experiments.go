// Package experiments regenerates every table and figure of the paper's
// evaluation (§II-C, §IV, §VI, §VIII, §IX). Each experiment is a named
// Runner producing report tables; cmd/altobench executes them by id and
// bench_test.go wraps them as benchmarks. The Scale knob trades fidelity
// for wall time: ScaleQuick runs in seconds per experiment, ScaleFull
// uses request counts close to the paper's.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
)

// Scale selects run sizes.
type Scale int

const (
	// ScaleQuick shrinks request counts ~20x for CI and benchmarks.
	ScaleQuick Scale = iota
	// ScaleFull approximates the paper's request counts.
	ScaleFull
)

func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "quick"
}

// n scales a full-size request count.
func (s Scale) n(full int) int {
	if s == ScaleFull {
		return full
	}
	n := full / 20
	if n < 2000 {
		n = 2000
	}
	return n
}

// nForDuration sizes a request count so a run covers at least the given
// simulated duration at the offered rate — regimes with long-tailed
// service (50us SCANs) or slow arrival modulation need wall-clock-long
// runs to reach steady state, not fixed request counts.
func (s Scale) nForDuration(rate float64, quick, full sim.Time) int {
	d := quick
	if s == ScaleFull {
		d = full
	}
	n := int(rate * d.Seconds())
	if n < 20000 {
		n = 20000
	}
	return n
}

// Runner executes one experiment.
type Runner func(scale Scale, seed uint64) ([]report.Table, error)

// Experiment couples a runner with its provenance.
type Experiment struct {
	ID    string
	Title string
	Paper string // which figure/table of the paper it regenerates
	Run   Runner
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	return e, nil
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// All returns all experiments sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// sweep runs one configuration across ascending load fractions and
// returns a latency-throughput curve. mkConfig receives the load
// fraction so schedulers can be rebuilt per point; mkWorkload builds the
// offered load for the given fraction. The points run in parallel on
// the fleet pool (each is an independent simulation), so mkConfig and
// mkWorkload must be pure functions of the load fraction; results come
// back in load order, identical to serial execution.
func sweep(loads []float64,
	mkConfig func(load float64) server.Config,
	mkWorkload func(load float64) server.Workload) ([]server.LoadPoint, error) {
	return fleet.Map(len(loads), func(i int) (server.LoadPoint, error) {
		l := loads[i]
		res, err := server.Run(mkConfig(l), mkWorkload(l))
		if err != nil {
			return server.LoadPoint{}, fmt.Errorf("sweep at load %.2f: %w", l, err)
		}
		return server.LoadPoint{
			OfferedRPS: res.OfferedRPS,
			P99:        res.Summary.P99,
			VioRatio:   res.Summary.VioRatio,
			DoneRPS:    res.DoneRPS,
		}, nil
	})
}

// mrps formats requests/second as millions.
func mrps(rps float64) string { return fmt.Sprintf("%.2f", rps/1e6) }

// usStr formats a sim.Time in microseconds.
func usStr(t sim.Time) string { return fmt.Sprintf("%.2f", t.Microseconds()) }
