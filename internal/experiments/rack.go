package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/nic"
	"repro/internal/rack"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "rack",
		Title: "Rack-scale tier: inter-server dispatch over per-server schedulers",
		Paper: "RackSched two-tier scheduling (PAPERS.md); ROADMAP rack tier",
		Run:   runRackExp,
	})
}

// rackSystem is one curve of the rack comparison: a per-server Config
// plus the inter-server dispatch rule (servers == 1 bypasses the rack
// tier entirely and runs the plain single-server path).
type rackSystem struct {
	name   string
	policy rack.Kind
	cfg    func(seed uint64) server.Config
}

// runRackExp compares scaling out against scaling up: a single
// ALTOCUMULUS server vs racks of AC servers under power-of-2-choices
// and round-robin dispatch vs a rack of JBSQ (Nebula) servers, at
// aggregate offered loads in the millions of RPS. Dispatch decisions
// use depth views sampled every 5us (per RackSched's stale-lens
// model); the rack checker holds every decision to that bound.
func runRackExp(scale Scale, seed uint64) ([]report.Table, error) {
	const coresPer = 4
	const sampleEvery = 5 * sim.Microsecond
	svc := dist.Exponential{M: sim.Microsecond}
	slo := 50 * sim.Microsecond
	loads := []float64{0.5, 0.8, 0.95}
	serversList := []int{8}
	if scale == ScaleFull {
		serversList = []int{8, 64}
	}
	n := scale.n(100000)

	acCfg := func(s uint64) server.Config {
		return server.Config{
			Kind: server.SchedAltocumulus, AC: core.DefaultParams(2, 2),
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection,
			Seed: s, SLO: slo,
		}
	}
	jbsqCfg := func(s uint64) server.Config {
		return server.Config{
			Kind: server.SchedNebula, Cores: coresPer,
			Stack: rpcproto.StackNanoRPC, Seed: s, SLO: slo,
		}
	}
	systems := []rackSystem{
		{"rack-of-AC pow-2", rack.PowerOfK, acCfg},
		{"rack-of-AC rr", rack.RoundRobin, acCfg},
		{"rack-of-JBSQ pow-2", rack.PowerOfK, jbsqCfg},
	}

	// One flat point list -> one fleet pass; rows come back in input
	// order, so the table is identical at any pool width.
	type point struct {
		servers int
		system  rackSystem
		load    float64
	}
	var pts []point
	for _, load := range loads {
		pts = append(pts, point{1, rackSystem{name: "AC single-server", cfg: acCfg}, load})
	}
	for _, servers := range serversList {
		for _, sys := range systems {
			for _, load := range loads {
				pts = append(pts, point{servers, sys, load})
			}
		}
	}

	type row struct {
		servers             int
		name                string
		load                float64
		offered, done       float64
		p50, p99, p999, age sim.Time
		rackAge             bool
	}
	rows, err := fleet.Map(len(pts), func(i int) (row, error) {
		p := pts[i]
		wl := server.Workload{
			Arrivals: dist.Poisson{Rate: dist.LoadForRate(p.load, p.servers*coresPer, svc)},
			Service:  svc, N: n, Warmup: n / 10,
		}
		cfg := p.system.cfg(seed)
		r := row{servers: p.servers, name: p.system.name, load: p.load}
		if p.servers == 1 {
			res, err := server.Run(cfg, wl)
			if err != nil {
				return row{}, fmt.Errorf("%s load %.2f: %w", p.system.name, p.load, err)
			}
			r.offered, r.done = res.OfferedRPS, res.DoneRPS
			r.p50, r.p99, r.p999 = res.Summary.P50, res.Summary.P99, res.Summary.P999
			return r, nil
		}
		rr, err := server.RunRack(server.RackConfig{
			Servers: p.servers, Policy: p.system.policy, K: 2, SampleEvery: sampleEvery,
		}, cfg, wl)
		if err != nil {
			return row{}, fmt.Errorf("%s x%d load %.2f: %w", p.system.name, p.servers, p.load, err)
		}
		r.offered, r.done = rr.OfferedRPS, rr.DoneRPS
		r.p50, r.p99, r.p999 = rr.Summary.P50, rr.Summary.P99, rr.Summary.P999
		r.age, r.rackAge = rr.MaxSampleAge, true
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.Table{
		ID: "rack",
		Title: fmt.Sprintf(
			"rack dispatch at %v-core servers: p50/p99/p99.9 (us) vs aggregate offered MRPS; depth views sampled every %v",
			coresPer, sampleEvery),
		Cols: []string{"servers", "system", "load", "MRPS", "p50(us)", "p99(us)", "p99.9(us)", "max-view-age(us)"},
	}
	for _, r := range rows {
		age := "n/a"
		if r.rackAge {
			age = usStr(r.age)
		}
		tbl.AddRow(fmt.Sprint(r.servers), r.name, fmt.Sprintf("%.2f", r.load),
			mrps(r.offered), usStr(r.p50), usStr(r.p99), usStr(r.p999), age)
	}
	tbl.Notes = append(tbl.Notes,
		"rack-of-1 is byte-identical to the single-server path (TestRackOfOneGolden); servers=1 rows run that path",
		"every dispatch decision is held to the 5us staleness bound by the rack checker; max-view-age is the worst view any decision consulted",
		"pow-2 samples 2 servers per arrival (RackSched); rr ignores depth entirely; JBSQ racks bound per-core queues inside each server")
	return []report.Table{tbl}, nil
}
