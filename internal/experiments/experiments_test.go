package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/report"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must have a
	// registered experiment, plus the repository's extension studies.
	want := []string{"fig01", "fig03", "fig07", "fig09", "fig10",
		"fig11", "fig12a", "fig12b", "fig13a", "fig13b", "fig13c", "fig14",
		"ablate", "bigtopo", "checks", "efficiency", "isolation", "multiphase", "rack", "stability", "validate"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for _, id := range want {
		e, err := Get(id)
		if err != nil {
			t.Fatalf("missing %s: %v", id, err)
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("%s incomplete: %+v", id, e)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("fig99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestAllOrdered(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All() not sorted: %s >= %s", all[i-1].ID, all[i].ID)
		}
	}
}

func TestScale(t *testing.T) {
	if ScaleQuick.String() != "quick" || ScaleFull.String() != "full" {
		t.Fatal("scale stringer")
	}
	if ScaleFull.n(100000) != 100000 {
		t.Fatal("full n")
	}
	if got := ScaleQuick.n(100000); got != 5000 {
		t.Fatalf("quick n = %d", got)
	}
	if got := ScaleQuick.n(1000); got != 2000 {
		t.Fatalf("quick n floor = %d", got)
	}
	if got := ScaleQuick.nForDuration(1e6, 0, 0); got != 20000 {
		t.Fatalf("duration floor = %d", got)
	}
}

func TestFig01Runs(t *testing.T) {
	// The cheapest experiment doubles as the end-to-end test of the
	// experiment machinery: run, render, and check the expected rows.
	e, err := Get("fig01")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	var buf bytes.Buffer
	if err := report.RenderAll(&buf, tables); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TCP/IP", "eRPC", "nanoRPC", "fig01"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
	if len(tables[0].Rows) != 3 {
		t.Fatalf("rows = %d", len(tables[0].Rows))
	}
}

func TestHeavyExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment regeneration skipped in -short mode")
	}
	// Exercise the remaining experiments at quick scale; outputs are
	// validated structurally (non-empty tables with the declared column
	// counts). Scientific validation lives in EXPERIMENTS.md full runs.
	for _, id := range []string{"fig03", "fig07", "fig09", "fig11", "fig12b", "validate", "isolation"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			tables, err := e.Run(ScaleQuick, 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q empty", tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Cols) {
						t.Fatalf("table %q row width %d != %d cols", tb.Title, len(row), len(tb.Cols))
					}
				}
			}
		})
	}
}
