package experiments

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/queueing"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig07",
		Title: "SLO-violation ratio vs queue length; E[T] threshold model",
		Paper: "Fig. 7(a-d)",
		Run:   runFig07,
	})
}

func runFig07(scale Scale, seed uint64) ([]report.Table, error) {
	const cores = 64
	const l = 10.0
	// Near-critical queues (load 0.985+) need several milliseconds of
	// simulated time before violation-scale excursions appear.
	n := scale.nForDuration(63e6, 5*sim.Millisecond, 15*sim.Millisecond)

	// Each distribution is measured at the lowest load where violation
	// onset is reachable in finite runs: low-variance distributions keep
	// the 64-core queue below violation depth until the load is within a
	// fraction of a percent of saturation (M/D/64 first violates at
	// exactly qlen 576 = k*(L-1)), while the high-dispersion bimodal
	// violates from load ~0.99 — the paper's point that dispersion moves
	// the threshold.
	cases := []struct {
		d    dist.ServiceDist
		load float64
	}{
		// M/D/64 first violates at exactly qlen 576 = k*(L-1): the wait of
		// a request behind q deterministic 1us jobs on 64 servers is q/64 us.
		{dist.Fixed{V: sim.Microsecond}, 0.9995},
		{dist.Uniform{Lo: 500 * sim.Nanosecond, Hi: 1500 * sim.Nanosecond}, 0.998},
		{dist.Bimodal{Short: 500 * sim.Nanosecond, Long: 5 * sim.Microsecond, PLong: 0.1}, 0.99},
	}

	ratios := report.Table{
		ID:    "fig07",
		Title: "ratio of SLO violations by arrival queue length (64-core c-FCFS, L=10)",
		Cols:  []string{"distribution", "load", "qlen-bucket", "violation-ratio"},
	}
	bounds := report.Table{
		ID:    "fig07",
		Title: "threshold characterization: first-violation queue length vs k*L+1 upper bound",
		Cols:  []string{"distribution", "T-lower(first violation)", "T-upper(k*L+1)"},
	}
	type measurement struct {
		first int
		hist  *fig07Hist
	}
	measured3, err := fleet.Map(len(cases), func(i int) (measurement, error) {
		first, hist, err := fig07Measure(cores, cases[i].d, cases[i].load, l, n, seed)
		return measurement{first, hist}, err
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range cases {
		first, hist := measured3[ci].first, measured3[ci].hist
		for b := 0; b < hist.buckets; b++ {
			total := hist.total[b]
			if total == 0 {
				continue
			}
			ratio := float64(hist.viol[b]) / float64(total)
			ratios.AddRow(c.d.Name(), fmt.Sprintf("%.3f", c.load),
				fmt.Sprintf("%d-%d", b*hist.width, (b+1)*hist.width-1),
				fmt.Sprintf("%.3f", ratio))
		}
		firstStr := fmt.Sprint(first)
		if first == 0 {
			firstStr = "none observed"
		}
		bounds.AddRow(c.d.Name(), firstStr, int(float64(cores)*l)+1)
	}
	bounds.Notes = append(bounds.Notes,
		"paper (load 0.99): T-lower = 121 (Fixed), 80 (Uniform), 268 (Bi-modal); T-upper = 641",
		"violations begin at moderate occupancy and saturate well below k*L+1, matching Fig. 7(a-c)")

	// (d): measured first-violation T across loads vs the linear
	// transformation of E[Nq], fitted by policy.Calibrate.
	model := policy.NewThresholdModel(cores, l)
	fitT := report.Table{
		ID:    "fig07",
		Title: "E[T] model vs measured first-violation T (Bi-modal distribution)",
		Cols:  []string{"load", "E[Nq]", "measured-T", "model-T"},
	}
	var pts []policy.CalibrationPoint
	// Loads where violation onset is actually reachable in finite runs;
	// the bimodal's dispersion gives a load-dependent onset suitable for
	// fitting Eqn. 2 (the paper fits per distribution).
	loads := []float64{0.985, 0.9875, 0.99, 0.9925, 0.995}
	bimodal := cases[2].d
	measured, err := fleet.Map(len(loads), func(i int) (int, error) {
		first, _, err := fig07Measure(cores, bimodal, loads[i], l, n, seed+uint64(i)+1)
		return first, err
	})
	if err != nil {
		return nil, err
	}
	for i, load := range loads {
		if measured[i] > 0 { // a zero means no violation was observed at this load
			pts = append(pts, policy.CalibrationPoint{Offered: load * cores, ObservedT: float64(measured[i])})
		}
	}
	if err := model.Calibrate(pts); err != nil {
		return nil, err
	}
	for i, load := range loads {
		a := load * cores
		fitT.AddRow(fmt.Sprintf("%.3f", load),
			fmt.Sprintf("%.1f", queueing.ExpectedQueueLength(cores, a)),
			measured[i], model.Threshold(a))
	}
	fitT.Notes = append(fitT.Notes,
		fmt.Sprintf("calibrated Eqn.2 constants: a=%.3f b=%.1f (c=%.3f d=%.1f)", model.A, model.B, model.C, model.D))
	return []report.Table{ratios, bounds, fitT}, nil
}

type fig07Hist struct {
	width   int
	buckets int
	total   []int
	viol    []int
}

// fig07Measure runs the instrumented c-FCFS simulation and returns the
// queue length at the first SLO violation plus the per-bucket histogram.
func fig07Measure(cores int, svc dist.ServiceDist, load, l float64, n int, seed uint64) (int, *fig07Hist, error) {
	eng := sim.NewEngine()
	arr := sim.NewRNG(seed)
	svcRNG := sim.NewRNG(seed + 7)
	rate := dist.LoadForRate(load, cores, svc)
	slo := sim.Time(l * float64(svc.Mean()))

	hist := &fig07Hist{width: 50, buckets: 16}
	hist.total = make([]int, hist.buckets)
	hist.viol = make([]int, hist.buckets)
	qlenAt := make([]int, n)

	workers := make([]*exec.Core, cores)
	for i := range workers {
		workers[i] = exec.NewCore(eng, i, i)
	}
	var queue exec.Deque
	firstViolationT := -1
	nDone := 0
	var pump func()
	pump = func() {
		for queue.Len() > 0 {
			var free *exec.Core
			for _, w := range workers {
				if !w.Busy() {
					free = w
					break
				}
			}
			if free == nil {
				return
			}
			r := queue.PopHead()
			free.Start(r, 0, func(r *rpcproto.Request) {
				nDone++
				q := qlenAt[r.ID]
				b := q / hist.width
				if b >= hist.buckets {
					b = hist.buckets - 1
				}
				hist.total[b]++
				if r.Latency() > slo {
					hist.viol[b]++
					if firstViolationT < 0 || q < firstViolationT {
						firstViolationT = q
					}
				}
				pump()
			}, nil)
		}
	}
	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= n {
			return
		}
		r := &rpcproto.Request{ID: uint64(i), Service: svc.Sample(svcRNG)}
		gap := dist.Poisson{Rate: rate}.NextGap(arr)
		eng.At(at, func() {
			r.Arrival = eng.Now()
			qlenAt[r.ID] = queue.Len()
			queue.PushTail(r)
			pump()
			schedule(i+1, eng.Now()+gap)
		})
	}
	schedule(0, 0)
	eng.RunAll()
	if nDone != n {
		return 0, nil, fmt.Errorf("fig07: completed %d of %d", nDone, n)
	}
	if firstViolationT < 0 {
		firstViolationT = 0
	}
	return firstViolationT, hist, nil
}
