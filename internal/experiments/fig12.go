package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig12a",
		Title: "Group size exploration on a 64-core system",
		Paper: "Fig. 12(a)",
		Run:   runFig12a,
	})
	register(Experiment{
		ID:    "fig12b",
		Title: "Migration effectiveness breakdown via same-seed replay",
		Paper: "Fig. 12(b,c)",
		Run:   runFig12b,
	})
}

// runFig12a explores (groups x size) splits of a 64-core system for both
// ACint and ACrss: small groups waste cores on managers, large software
// groups bottleneck on the manager's ~28 MRPS dispatch ceiling.
func runFig12a(scale Scale, seed uint64) ([]report.Table, error) {
	t := report.Table{
		ID:    "fig12a",
		Title: "throughput@SLO (MRPS) by group configuration (64 cores, exp(1us), SLO 10us)",
		Cols:  []string{"groups x size", "workers", "ACint", "ACrss"},
	}
	svc := dist.Exponential{M: sim.Microsecond}
	slo := 10 * sim.Microsecond
	n := scale.n(100000)
	loads := []float64{0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95}
	capacity := 64 / svc.Mean().Seconds() // offered rates relative to all 64 cores

	shapes := []struct{ groups, wpg int }{
		{16, 3}, {8, 7}, {4, 15}, {2, 31}, {1, 63},
	}
	for _, sh := range shapes {
		row := []interface{}{
			fmt.Sprintf("%dx%d", sh.groups, sh.wpg+1), sh.groups * sh.wpg,
		}
		for _, local := range []core.LocalDispatch{core.DispatchHardware, core.DispatchSoftware} {
			pts, err := sweep(loads,
				func(float64) server.Config {
					p := core.DefaultParams(sh.groups, sh.wpg)
					p.Local = local
					return server.Config{Kind: server.SchedAltocumulus, AC: p,
						Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection,
						Seed: seed, SLO: slo}
				},
				func(load float64) server.Workload {
					return server.Workload{Arrivals: dist.Poisson{Rate: load * capacity},
						Service: svc, N: n, Warmup: n / 20}
				})
			if err != nil {
				return nil, err
			}
			row = append(row, mrps(server.ThroughputAtSLO(pts, slo)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: 16-core groups are the sweet spot; ACrss managers bottleneck (~28 MRPS each) for larger groups; tiny groups waste cores on managers")
	return []report.Table{t}, nil
}

// runFig12b replays the same trace with and without migration and
// classifies every migrated request into the paper's four effectiveness
// groups, per migration period.
func runFig12b(scale Scale, seed uint64) ([]report.Table, error) {
	n := scale.n(400000)
	svc, rate := fig11Workload(n)
	slo := sim.Time(10 * float64(svc.Mean()))

	eff := report.Table{
		ID:    "fig12b",
		Title: "migration effectiveness by period (same-seed replay vs no-migration baseline)",
		Cols: []string{"period(ns)", "migrated", "eff", "ineff-no-harm",
			"ineff-no-benefit", "false", "viol-before", "viol-after", "saved%"},
	}

	basep := core.DefaultParams(16, 15)
	basep.DisableMigration = true
	base, err := fig11Run(basep, svc, rate, n, seed)
	if err != nil {
		return nil, err
	}
	violBefore := base.Lat.CountAbove(slo)

	periods := []sim.Time{
		40 * sim.Nanosecond, 200 * sim.Nanosecond,
		400 * sim.Nanosecond, 1000 * sim.Nanosecond,
	}
	migRes, err := fleet.Map(len(periods), func(i int) (*server.Result, error) {
		p := core.DefaultParams(16, 15)
		p.Period = periods[i]
		return fig11Run(p, svc, rate, n, seed)
	})
	if err != nil {
		return nil, err
	}
	for i, period := range periods {
		mig := migRes[i]
		cls, err := server.ClassifyMigrations(base, mig, slo)
		if err != nil {
			return nil, err
		}
		violAfter := mig.Lat.CountAbove(slo)
		saved := 0.0
		if violBefore > 0 {
			saved = 100 * (1 - float64(violAfter)/float64(violBefore))
		}
		eff.AddRow(fmt.Sprint(int64(period/sim.Nanosecond)), cls.Migrated, cls.Eff, cls.IneffNoHarm,
			cls.IneffNoBenefit, cls.False, violBefore, violAfter,
			fmt.Sprintf("%.1f", saved))
	}
	eff.Notes = append(eff.Notes,
		"paper: 200ns period migrates 161K of 400K RPCs, 42% effective, only 53 false migrations, >99.8% of violations eliminated",
		"too-eager (40ns) periods waste migrations; too-lazy (1000ns) periods strand deep-queued requests")
	return []report.Table{eff}, nil
}
