package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Tail latency vs throughput against prior-art schedulers",
		Paper: "Fig. 10 / Table I",
		Run:   runFig10,
	})
}

// fig10System describes one curve of the comparison.
type fig10System struct {
	name string
	cfg  func(seed uint64) server.Config
}

// runFig10 reproduces the flagship comparison: 16 cores, Shinjuku's
// high-dispersion bimodal (99.5% x 0.5us, 0.5% x 500us), SLO = 300us
// p99, against IX, ZygOS, Shinjuku, RPCValet, Nebula, nanoPU and ACrss.
func runFig10(scale Scale, seed uint64) ([]report.Table, error) {
	const cores = 16
	svc := dist.Bimodal{Short: 500 * sim.Nanosecond, Long: 500 * sim.Microsecond, PLong: 0.005}
	slo := 300 * sim.Microsecond
	capacity := float64(cores) / svc.Mean().Seconds()
	loads := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.93, 0.96}
	n := scale.n(100000)

	// The paper's 16-core ACrss dedicates exactly one core to management
	// ("sacrificing 6.25% potential throughput"): a single group of 1
	// manager + 15 workers. With one NetRX queue there is nothing to
	// migrate; the gain over prior software systems comes from the
	// manager's dispatch-to-idle scheduling at register-messaging cost.
	acParams := core.DefaultParams(1, 15)
	acParams.Local = core.DispatchSoftware

	systems := []fig10System{
		// IX and ZygOS rely on traditional network stacks (§VII-A), so the
		// kernel TCP/IP processing cost is charged on their cores.
		{"IX", func(s uint64) server.Config {
			return server.Config{Kind: server.SchedIX, Cores: cores, Stack: rpcproto.StackTCPIP,
				Steer: nic.SteerConnection, Seed: s, SLO: slo}
		}},
		{"ZygOS", func(s uint64) server.Config {
			return server.Config{Kind: server.SchedZygOS, Cores: cores, Stack: rpcproto.StackTCPIP,
				Steer: nic.SteerConnection, Seed: s, SLO: slo}
		}},
		{"Shinjuku", func(s uint64) server.Config {
			return server.Config{Kind: server.SchedShinjuku, Cores: cores, Stack: rpcproto.StackERPC,
				Seed: s, SLO: slo}
		}},
		{"RPCValet", func(s uint64) server.Config {
			return server.Config{Kind: server.SchedRPCValet, Cores: cores, Stack: rpcproto.StackNanoRPC,
				Seed: s, SLO: slo}
		}},
		{"Nebula", func(s uint64) server.Config {
			return server.Config{Kind: server.SchedNebula, Cores: cores, Stack: rpcproto.StackNanoRPC,
				Seed: s, SLO: slo}
		}},
		{"nanoPU", func(s uint64) server.Config {
			return server.Config{Kind: server.SchedNanoPU, Cores: cores, Stack: rpcproto.StackNanoRPC,
				Seed: s, SLO: slo}
		}},
		{"AC_rss", func(s uint64) server.Config {
			return server.Config{Kind: server.SchedAltocumulus, AC: acParams, Stack: rpcproto.StackERPC,
				Steer: nic.SteerConnection, Seed: s, SLO: slo}
		}},
	}

	curve := report.Table{
		ID:    "fig10",
		Title: "p99 (us) vs offered throughput (MRPS); 16 cores, bimodal 0.5us/500us, SLO 300us",
		Cols:  []string{"system", "MRPS", "p99(us)", "viol-ratio"},
	}
	summary := report.Table{
		ID:    "fig10",
		Title: "throughput@SLO summary",
		Cols:  []string{"system", "tput@SLO(MRPS)", "vs ZygOS", "vs Nebula"},
	}

	tputs := map[string]float64{}
	for _, sys := range systems {
		pts, err := sweep(loads,
			func(float64) server.Config { return sys.cfg(seed) },
			func(load float64) server.Workload {
				return server.Workload{
					Arrivals: dist.Poisson{Rate: load * capacity},
					Service:  svc, N: n, Warmup: n / 10,
				}
			})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys.name, err)
		}
		for _, p := range pts {
			curve.AddRow(sys.name, mrps(p.OfferedRPS), usStr(p.P99), fmt.Sprintf("%.4f", p.VioRatio))
		}
		tputs[sys.name] = server.ThroughputAtSLO(pts, slo)
	}
	for _, sys := range systems {
		tp := tputs[sys.name]
		vsZ, vsN := "n/a", "n/a"
		if z := tputs["ZygOS"]; z > 0 {
			vsZ = fmt.Sprintf("%.1fx", tp/z)
		}
		if nb := tputs["Nebula"]; nb > 0 {
			vsN = fmt.Sprintf("%.2fx", tp/nb)
		}
		summary.AddRow(sys.name, mrps(tp), vsZ, vsN)
	}
	summary.Notes = append(summary.Notes,
		"paper: AC_rss 24.6x over ZygOS, 1.05x throughput and up to 15.8x lower p99 than Nebula, ~92.5% of nanoPU",
		"AC_rss uses 1 group x (1 manager + 15 workers), matching the paper's 6.25% management overhead")
	return []report.Table{curve, summary}, nil
}
