package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Migration Bulk and Period sensitivity on a 256-core system",
		Paper: "Fig. 11(a,b)",
		Run:   runFig11,
	})
}

// fig11Workload is the §VIII-C setup: 256 cores as 16 groups of 16, mean
// service ~630 ns (a short/long blend), high offered load with RSS
// connection imbalance.
func fig11Workload(n int) (dist.ServiceDist, float64) {
	svc := dist.Bimodal{Short: 500 * sim.Nanosecond, Long: 3100 * sim.Nanosecond, PLong: 0.05}
	// 16 groups x 15 workers = 240 worker cores at load 0.95.
	rate := dist.LoadForRate(0.95, 240, svc)
	_ = n
	return svc, rate
}

func fig11Run(p core.Params, svc dist.ServiceDist, rate float64, n int, seed uint64) (*server.Result, error) {
	return server.Run(server.Config{
		Kind: server.SchedAltocumulus, AC: p, Stack: rpcproto.StackNanoRPC,
		Steer: nic.SteerConnection, Seed: seed,
	}, server.Workload{
		Arrivals: dist.Poisson{Rate: rate}, Service: svc, N: n, Warmup: n / 20, Conns: 256,
	})
}

func runFig11(scale Scale, seed uint64) ([]report.Table, error) {
	n := scale.n(400000)
	svc, rate := fig11Workload(n)
	slo := sim.Time(10 * float64(svc.Mean()))

	bulkT := report.Table{
		ID:    "fig11",
		Title: "SLO violations and p99 vs Bulk (Period 200ns, 16x16 cores, load 0.95)",
		Cols:  []string{"bulk", "violations", "p99(us)", "migrated-reqs"},
	}
	bulks := []int{8, 16, 24, 32, 40}
	bulkRes, err := fleet.Map(len(bulks), func(i int) (*server.Result, error) {
		p := core.DefaultParams(16, 15)
		p.Bulk = bulks[i]
		p.Period = 200 * sim.Nanosecond
		p.Concurrency = 8
		return fig11Run(p, svc, rate, n, seed)
	})
	if err != nil {
		return nil, err
	}
	for i, res := range bulkRes {
		bulkT.AddRow(bulks[i], res.Lat.CountAbove(slo), usStr(res.Summary.P99),
			fmt.Sprint(res.ACStats.MigratedReqs))
	}
	bulkT.Notes = append(bulkT.Notes,
		"paper: Bulk=16 eliminates all SLO violations; p99 tracks the violation count")

	periodT := report.Table{
		ID:    "fig11",
		Title: "SLO violations and p99 vs migration Period (Bulk 16)",
		Cols:  []string{"period(ns)", "violations", "p99(us)", "migrated-reqs"},
	}
	// One batch: the no-migration baseline plus every period variant.
	periods := []sim.Time{
		10 * sim.Nanosecond, 40 * sim.Nanosecond, 100 * sim.Nanosecond,
		200 * sim.Nanosecond, 400 * sim.Nanosecond, 1000 * sim.Nanosecond,
	}
	periodRes, err := fleet.Map(len(periods)+1, func(i int) (*server.Result, error) {
		p := core.DefaultParams(16, 15)
		if i == 0 {
			p.DisableMigration = true
		} else {
			p.Period = periods[i-1]
		}
		return fig11Run(p, svc, rate, n, seed)
	})
	if err != nil {
		return nil, err
	}
	periodT.AddRow("no-migration", periodRes[0].Lat.CountAbove(slo), usStr(periodRes[0].Summary.P99), "0")
	for i, period := range periods {
		res := periodRes[i+1]
		periodT.AddRow(fmt.Sprint(int64(period/sim.Nanosecond)), res.Lat.CountAbove(slo),
			usStr(res.Summary.P99), fmt.Sprint(res.ACStats.MigratedReqs))
	}
	periodT.Notes = append(periodT.Notes,
		"paper: periods 10-400ns perform similarly; 1000ns is too lazy and strands deep-queued requests")
	return []report.Table{bulkT, periodT}, nil
}
