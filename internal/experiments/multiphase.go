package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "multiphase",
		Title: "Multi-phase chains: phase-aware forwarding vs run-to-completion",
		Paper: "DESIGN.md §15; xmp_sched_sim-style heterogeneous phase scheduling",
		Run:   runMultiPhase,
	})
}

// multiPhaseProfile is the canonical 4-phase KV chain: parse and
// respond are cheap fixed phases, the index probe and data copy carry
// the variability. With accel=true the two middle phases are affine to
// an accelerator class (4x/2x speedups, 40 ns transfer each way);
// without it the chain is neutral and every system runs it start to
// finish on general cores.
func multiPhaseProfile(accel bool) *dist.PhaseProfile {
	index := dist.PhaseSpec{Name: "index", Dist: dist.Exponential{M: 300 * sim.Nanosecond}}
	data := dist.PhaseSpec{Name: "data", Dist: dist.Exponential{M: 400 * sim.Nanosecond}}
	if accel {
		index.Class, index.Speedup, index.Offload = 1, 4, 40*sim.Nanosecond
		data.Class, data.Speedup, data.Offload = 1, 2, 40*sim.Nanosecond
	}
	return dist.NewPhaseProfile(labelFor(accel),
		dist.PhaseSpec{Name: "parse", Dist: dist.Fixed{V: 100 * sim.Nanosecond}},
		index,
		data,
		dist.PhaseSpec{Name: "respond", Dist: dist.Fixed{V: 100 * sim.Nanosecond}},
	)
}

func labelFor(accel bool) string {
	if accel {
		return "kv4-accel"
	}
	return "kv4-plain"
}

// acHetero is the heterogeneous AC machine for this experiment: 3
// general groups plus 1 accelerator group, 2 workers each.
func acHetero(forward core.ForwardPolicy, seed uint64, slo sim.Time) server.Config {
	p := core.DefaultParams(4, 2)
	p.GroupClass = []uint8{0, 0, 0, 1}
	p.Forward = forward
	p.ForwardK = 2
	return server.Config{
		Kind: server.SchedAltocumulus, AC: p,
		Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection,
		Seed: seed, SLO: slo,
	}
}

// runMultiPhase compares phase-aware forwarding against run-to-
// completion baselines on 4-phase chains, with and without accelerator
// affinity. AC(stay-local) is the ablation: same hetero machine, but
// chains never leave their landing group, so accelerated durations only
// apply when a chain happens to land in class 1 — which SteerConnection
// never does for phase-0 work, making it a pure base-speed baseline.
// JBSQ and d-FCFS get the full 8 cores as homogeneous workers.
func runMultiPhase(scale Scale, seed uint64) ([]report.Table, error) {
	slo := 50 * sim.Microsecond
	const workerCores = 8

	type system struct {
		name string
		cfg  func(seed uint64) server.Config
	}
	systems := []system{
		{"AC stay-local", func(s uint64) server.Config { return acHetero(core.ForwardStayLocal, s, slo) }},
		{"AC fwd-jsq", func(s uint64) server.Config { return acHetero(core.ForwardLeastLoaded, s, slo) }},
		{"AC fwd-pow2", func(s uint64) server.Config { return acHetero(core.ForwardPowK, s, slo) }},
		{"JBSQ(Nebula)", func(s uint64) server.Config {
			return server.Config{
				Kind: server.SchedNebula, Cores: workerCores,
				Stack: rpcproto.StackNanoRPC, Seed: s, SLO: slo,
			}
		}},
		{"d-FCFS", func(s uint64) server.Config {
			return server.Config{
				Kind: server.SchedRSS, Cores: workerCores,
				Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection,
				Seed: s, SLO: slo,
			}
		}},
	}
	loads := []float64{0.4, 0.7}
	if scale == ScaleFull {
		loads = []float64{0.2, 0.4, 0.6, 0.7, 0.8}
	}

	type point struct {
		sys   system
		accel bool
		load  float64
	}
	var pts []point
	for _, accel := range []bool{false, true} {
		for _, sys := range systems {
			for _, load := range loads {
				pts = append(pts, point{sys, accel, load})
			}
		}
	}

	type row struct {
		point
		offered, done float64
		p50, p99      sim.Time
		vio           float64
		forwards      uint64
	}
	rows, err := fleet.Map(len(pts), func(i int) (row, error) {
		p := pts[i]
		prof := multiPhaseProfile(p.accel)
		// Load fractions refer to base (unaccelerated) work on the
		// worker cores; accelerated systems run below this utilization.
		rate := dist.LoadForRate(p.load, workerCores, prof)
		n := scale.n(200000)
		res, err := server.Run(p.sys.cfg(seed), server.Workload{
			Arrivals: dist.Poisson{Rate: rate},
			Profile:  prof,
			N:        n, Warmup: n / 10,
		})
		if err != nil {
			return row{}, fmt.Errorf("%s %s load %.2f: %w", p.sys.name, labelFor(p.accel), p.load, err)
		}
		return row{
			point: p, offered: res.OfferedRPS, done: res.DoneRPS,
			p50: res.Summary.P50, p99: res.Summary.P99,
			vio:      res.Summary.VioRatio,
			forwards: res.ACStats.PhaseForwards,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.Table{
		ID: "multiphase",
		Title: "multi-phase chains (parse>index>data>respond, 900 ns mean base, SLO 50 us): " +
			"phase-aware forwarding vs run-to-completion",
		Cols: []string{"profile", "system", "load", "MRPS", "done-MRPS", "p50(us)", "p99(us)", "vio", "forwards"},
	}
	for _, r := range rows {
		tbl.AddRow(labelFor(r.accel), r.sys.name, fmt.Sprintf("%.2f", r.load),
			mrps(r.offered), mrps(r.done),
			usStr(r.p50), usStr(r.p99),
			fmt.Sprintf("%.4f", r.vio),
			fmt.Sprint(r.forwards))
	}
	tbl.Notes = append(tbl.Notes,
		"AC systems run 3 general groups + 1 accelerator group (2 workers each); JBSQ/d-FCFS use all 8 cores as homogeneous workers",
		"kv4-plain is a neutral chain — forwarding buys nothing and should price its overhead; kv4-accel offloads index (4x) and data (2x) phases at 40 ns per transfer",
		"load fractions are offered base work per worker core; accelerated systems complete the same offered load with less core time",
		"forwards counts phase-boundary handoffs through NetRX (AC fwd-* only); checker phase-order and conservation invariants are live in every run")
	return []report.Table{tbl}, nil
}
