package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "bigtopo",
		Title: "Big-topology grids: AC vs JBSQ vs d-FCFS at 1024-4096 cores",
		Paper: "§VIII scalability extrapolated; ROADMAP big-topology engine",
		Run:   runBigTopo,
	})
}

// bigTopoPeriod is the manager period for big grids. The paper's 200 ns
// default is tuned for tens of groups; UPDATE broadcast is O(G²)
// messages per period, so at 64-256 groups that period would saturate
// the fabric with load reports before any request migrated. The big
// grids run a coarser 1 µs period — still far inside the 50 µs SLO.
const bigTopoPeriod = sim.Microsecond

// bigTopoGrid is one core-count point: an AC manager/worker split plus
// the flat core count the centralized baselines get.
type bigTopoGrid struct {
	cores   int // total, managers included
	groups  int
	workers int // per group
}

func (g bigTopoGrid) acWorkers() int { return g.groups * g.workers }

// runBigTopo stresses the schedulers — and the simulator's own event
// engine — on grids one to two orders of magnitude past the paper's
// evaluation: 1024 cores (64 groups of 15+1) and, at full scale, 4096
// (128 groups of 31+1). Each grid runs AC, hardware JBSQ (Nebula) and
// d-FCFS (RSS) under Poisson load 0.5 and 0.8 plus an MMPP burst point
// at mean load 0.5. AC pays its managers out of the core budget (960
// of 1024 cores serve requests), the baselines use every core — the
// honest comparison for a fixed silicon budget.
func runBigTopo(scale Scale, seed uint64) ([]report.Table, error) {
	svc := dist.Exponential{M: sim.Microsecond}
	slo := 50 * sim.Microsecond
	grids := []bigTopoGrid{{1024, 64, 15}}
	loads := []float64{0.5, 0.8}
	if scale == ScaleFull {
		grids = append(grids, bigTopoGrid{4096, 128, 31})
		loads = []float64{0.5, 0.7, 0.8, 0.9}
	}

	type system struct {
		name string
		cfg  func(g bigTopoGrid) server.Config
		// capacity is the worker-core count load fractions refer to.
		capacity func(g bigTopoGrid) int
	}
	systems := []system{
		{
			name: "AC",
			cfg: func(g bigTopoGrid) server.Config {
				p := core.DefaultParams(g.groups, g.workers)
				p.Period = bigTopoPeriod
				return server.Config{
					Kind: server.SchedAltocumulus, AC: p,
					Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection,
					Seed: seed, SLO: slo,
				}
			},
			capacity: func(g bigTopoGrid) int { return g.acWorkers() },
		},
		{
			name: "JBSQ(Nebula)",
			cfg: func(g bigTopoGrid) server.Config {
				return server.Config{
					Kind: server.SchedNebula, Cores: g.cores,
					Stack: rpcproto.StackNanoRPC, Seed: seed, SLO: slo,
				}
			},
			capacity: func(g bigTopoGrid) int { return g.cores },
		},
		{
			name: "d-FCFS",
			cfg: func(g bigTopoGrid) server.Config {
				return server.Config{
					Kind: server.SchedRSS, Cores: g.cores,
					Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection,
					Seed: seed, SLO: slo,
				}
			},
			capacity: func(g bigTopoGrid) int { return g.cores },
		},
	}

	type point struct {
		grid bigTopoGrid
		sys  system
		load float64
		mmpp bool
	}
	var pts []point
	for _, g := range grids {
		for _, sys := range systems {
			for _, load := range loads {
				pts = append(pts, point{g, sys, load, false})
			}
			pts = append(pts, point{g, sys, 0.5, true})
		}
	}

	type row struct {
		point
		offered, done  float64
		p50, p99, p999 sim.Time
		vio            float64
	}
	rows, err := fleet.Map(len(pts), func(i int) (row, error) {
		p := pts[i]
		rate := dist.LoadForRate(p.load, p.sys.capacity(p.grid), svc)
		// Duration-sized runs: a 1024-core grid at load 0.5 absorbs
		// ~512 MRPS, so fixed request counts would cover nanoseconds.
		// Quick covers 200 µs of simulated time (a few MMPP phases),
		// full 2 ms.
		n := scale.nForDuration(rate, 200*sim.Microsecond, 2*sim.Millisecond)
		var arrivals dist.ArrivalProcess = dist.Poisson{Rate: rate}
		if p.mmpp {
			arrivals = dist.NewCloudMMPP(rate)
		}
		res, err := server.Run(p.sys.cfg(p.grid), server.Workload{
			Arrivals: arrivals, Service: svc, N: n, Warmup: n / 10,
		})
		if err != nil {
			return row{}, fmt.Errorf("%s %d cores load %.2f: %w", p.sys.name, p.grid.cores, p.load, err)
		}
		return row{
			point: p, offered: res.OfferedRPS, done: res.DoneRPS,
			p50: res.Summary.P50, p99: res.Summary.P99, p999: res.Summary.P999,
			vio: res.Summary.VioRatio,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	tbl := report.Table{
		ID: "bigtopo",
		Title: fmt.Sprintf(
			"big-topology grids (1 us exp service, SLO 50 us, AC period %v): p50/p99/p99.9 (us) vs offered MRPS",
			bigTopoPeriod),
		Cols: []string{"cores", "system", "arrivals", "MRPS", "done-MRPS", "p50(us)", "p99(us)", "p99.9(us)", "vio"},
	}
	for _, r := range rows {
		arr := fmt.Sprintf("poisson-%.2f", r.load)
		if r.mmpp {
			arr = fmt.Sprintf("mmpp-%.2f", r.load)
		}
		tbl.AddRow(fmt.Sprint(r.grid.cores), r.sys.name, arr,
			mrps(r.offered), mrps(r.done),
			usStr(r.p50), usStr(r.p99), usStr(r.p999),
			fmt.Sprintf("%.4f", r.vio))
	}
	tbl.Notes = append(tbl.Notes,
		"AC runs 64 groups of 15 workers + 1 manager per 1024 cores; baselines use all cores as workers (fixed silicon budget)",
		fmt.Sprintf("manager period coarsened to %v: UPDATE broadcast is O(G^2) per period, so the 200 ns default would saturate the fabric at 64+ groups", bigTopoPeriod),
		"mmpp rows use the cloud MMPP (quiet/normal/burst phases) at the stated mean load; load fractions are per worker core",
		"runs are duration-sized (200 us quick, 2 ms full) — fixed request counts would cover almost no simulated time at >500 MRPS offered")
	return []report.Table{tbl}, nil
}
