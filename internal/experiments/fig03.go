package experiments

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig03",
		Title: "p99 latency vs offered load for per-request scheduling overheads",
		Paper: "Fig. 3",
		Run:   runFig03,
	})
}

// runFig03 reproduces the motivation experiment: a 64-core c-FCFS system
// under Poisson/exp(1us) load where every scheduling decision costs a
// fixed overhead on the critical path. The paper sweeps 5 ns (ideal
// hardware) to 360 ns (a work-stealing operation) and shows that at a
// 5 us p99 target, the 5 ns scheduler sustains ~3x the load of the
// 360 ns one. The experiment drives the exec/c-FCFS substrate directly
// (no NIC) to isolate pure scheduling overhead, as the paper's discrete
// event simulation does.
func runFig03(scale Scale, seed uint64) ([]report.Table, error) {
	t := report.Table{
		ID:    "fig03",
		Title: "99th percentile latency (us) vs offered load; 64-core c-FCFS, exp(1us) service",
		Cols:  []string{"overhead(ns)", "load", "p99(us)"},
	}
	summary := report.Table{
		ID:    "fig03",
		Title: "max load within p99 targets per scheduling overhead",
		Cols:  []string{"overhead(ns)", "load@5.5us", "load@8us", "vs 360ns @5.5us"},
	}
	const cores = 64
	svc := dist.Exponential{M: sim.Microsecond}
	overheads := []sim.Time{5 * sim.Nanosecond, 45 * sim.Nanosecond, 90 * sim.Nanosecond,
		135 * sim.Nanosecond, 180 * sim.Nanosecond, 360 * sim.Nanosecond}
	loads := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}
	n := scale.n(200000)

	// The full overhead x load grid is one flat batch of independent
	// runs for the fleet pool; aggregation below walks it in grid order.
	type cell struct {
		ov   sim.Time
		load float64
	}
	grid := make([]cell, 0, len(overheads)*len(loads))
	for _, ov := range overheads {
		for _, load := range loads {
			grid = append(grid, cell{ov, load})
		}
	}
	p99s, err := fleet.Map(len(grid), func(i int) (sim.Time, error) {
		return runCFCFS(cores, grid[i].ov, svc, grid[i].load, n, seed)
	})
	if err != nil {
		return nil, err
	}
	best55 := map[sim.Time]float64{}
	best80 := map[sim.Time]float64{}
	for i, c := range grid {
		p99 := p99s[i]
		t.AddRow(fmt.Sprint(int64(c.ov/sim.Nanosecond)), fmt.Sprintf("%.2f", c.load), usStr(p99))
		if p99 <= 5500*sim.Nanosecond && c.load > best55[c.ov] {
			best55[c.ov] = c.load
		}
		if p99 <= 8*sim.Microsecond && c.load > best80[c.ov] {
			best80[c.ov] = c.load
		}
	}
	base := best55[360*sim.Nanosecond]
	for _, ov := range overheads {
		ratio := "n/a"
		if base > 0 {
			ratio = fmt.Sprintf("%.2fx", best55[ov]/base)
		}
		summary.AddRow(fmt.Sprint(int64(ov/sim.Nanosecond)),
			fmt.Sprintf("%.2f", best55[ov]), fmt.Sprintf("%.2f", best80[ov]), ratio)
	}
	summary.Notes = append(summary.Notes,
		"paper: reducing scheduling from 360ns to 5ns improves throughput ~3x at a 5us tail target")
	return []report.Table{t, summary}, nil
}

// runCFCFS simulates an ideal centralized FCFS system where each
// dispatch charges `overhead` on the request's critical path.
func runCFCFS(cores int, overhead sim.Time, svc dist.ServiceDist, load float64, n int, seed uint64) (sim.Time, error) {
	eng := sim.NewEngine()
	arr := sim.NewRNG(seed)
	svcRNG := sim.NewRNG(seed + 1)
	rate := dist.LoadForRate(load, cores, svc)
	// The overhead inflates effective per-request work; keep offered load
	// meaningful by measuring against the bare service time as the paper
	// does (their "offered load" axis).
	lat := stats.NewSample(n)
	workers := make([]*exec.Core, cores)
	for i := range workers {
		workers[i] = exec.NewCore(eng, i, i)
	}
	var queue exec.Deque
	var pump func()
	pump = func() {
		for queue.Len() > 0 {
			var free *exec.Core
			for _, w := range workers {
				if !w.Busy() {
					free = w
					break
				}
			}
			if free == nil {
				return
			}
			r := queue.PopHead()
			free.Start(r, overhead, func(r *rpcproto.Request) {
				lat.Add(r.Latency())
				pump()
			}, nil)
		}
	}
	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= n {
			return
		}
		r := &rpcproto.Request{ID: uint64(i), Service: svc.Sample(svcRNG)}
		gap := dist.Poisson{Rate: rate}.NextGap(arr)
		eng.At(at, func() {
			r.Arrival = eng.Now()
			queue.PushTail(r)
			pump()
			schedule(i+1, eng.Now()+gap)
		})
	}
	schedule(0, 0)
	eng.RunAll()
	if lat.Len() != n {
		return 0, fmt.Errorf("fig03: completed %d of %d", lat.Len(), n)
	}
	return lat.P99(), nil
}
