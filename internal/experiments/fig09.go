package experiments

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig09",
		Title: "Temporal load imbalance across 4 NetRX queues by steering policy",
		Paper: "Fig. 9",
		Run:   runFig09,
	})
}

// runFig09 reproduces the imbalance snapshot: a 256-core system split
// into 4 groups of 64, fed by connection / random / round-robin steering
// with migration disabled, snapshotting the four NetRX lengths at the
// moment the 10th SLO-violating request completes. Connection steering
// yields a Hill-like peak, random a Pairing-like gradient, round-robin a
// milder Valley-like dip — the shapes that motivate the pattern
// classifier of §VI.
func runFig09(scale Scale, seed uint64) ([]report.Table, error) {
	t := report.Table{
		ID:    "fig09",
		Title: "NetRX queue lengths at the 10th SLO violation (4x64-core groups, load ~0.98)",
		Cols:  []string{"policy", "q0", "q1", "q2", "q3", "max-min"},
	}
	// Duration-sized: near-saturation queues need hundreds of
	// microseconds to develop imbalance.
	n := scale.nForDuration(250e6, 600*sim.Microsecond, 4*sim.Millisecond)
	policies := []nic.SteerPolicy{nic.SteerConnection, nic.SteerRandom, nic.SteerRoundRobin}
	for _, pol := range policies {
		lens, err := fig09Snapshot(pol, n, seed)
		if err != nil {
			return nil, err
		}
		maxv, minv := lens[0], lens[0]
		for _, v := range lens {
			if v > maxv {
				maxv = v
			}
			if v < minv {
				minv = v
			}
		}
		t.AddRow(pol.String(), lens[0], lens[1], lens[2], lens[3], maxv-minv)
	}
	t.Notes = append(t.Notes,
		"paper: connection steering shows the largest skew (Hill), random a gradient (Pairing), RR the smallest (Valley)")
	return []report.Table{t}, nil
}

func fig09Snapshot(pol nic.SteerPolicy, n int, seed uint64) ([]int, error) {
	eng := sim.NewEngine()
	p := core.DefaultParams(4, 63)
	p.DisableMigration = true
	// Only the queue-length marking matters here; a long period keeps the
	// idle tick load negligible.
	p.Period = 10 * sim.Microsecond
	root := sim.NewRNG(seed)
	steer := nic.NewSteerer(pol, 4, root.Fork(3))
	svc := dist.Exponential{M: sim.Microsecond}
	slo := sim.Time(10 * float64(svc.Mean()))

	var snapshot []int
	violations, nDone := 0, 0
	var s *core.Scheduler
	done := func(r *rpcproto.Request) {
		nDone++
		if r.Latency() > slo {
			violations++
			if violations == 10 && snapshot == nil {
				snapshot = s.QueueLens()
			}
		}
	}
	s, err := core.New(eng, p, fabric.Default(), steer, done)
	if err != nil {
		return nil, err
	}

	arr := root.Fork(1)
	svcRNG := root.Fork(2)
	rate := dist.LoadForRate(0.995, 4*63, svc)
	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= n {
			return
		}
		r := &rpcproto.Request{ID: uint64(i), Conn: uint32(arr.Intn(64)), Service: svc.Sample(svcRNG)}
		gap := dist.Poisson{Rate: rate}.NextGap(arr)
		eng.At(at, func() {
			r.Arrival = eng.Now()
			s.Deliver(r)
			schedule(i+1, eng.Now()+gap)
		})
	}
	schedule(0, 0)
	for snapshot == nil && nDone < n {
		eng.Run(eng.Now() + sim.Millisecond)
	}
	s.Stop()
	if snapshot == nil {
		// Fewer than 10 violations in the whole run: report the final
		// queue state instead (still shows the policy's skew).
		snapshot = s.QueueLens()
	}
	return snapshot, nil
}
