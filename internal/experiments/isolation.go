package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "isolation",
		Title: "Multi-tenant isolation via the decentralized runtime (extension)",
		Paper: "§XI future work",
		Run:   runIsolation,
	})
}

// runIsolation explores the paper's future-work direction: using the
// distributed software runtime to isolate applications. Two tenants
// share a 64-core server — a latency-critical service (exp 1 µs RPCs,
// 10 µs SLO) and a noisy batch tenant (100 µs jobs, relaxed SLO). Three
// deployments are compared:
//
//   - shared RSS: both tenants hash across all cores (no isolation);
//   - shared AC: one ALTOCUMULUS runtime, both tenants in every group —
//     migration rebalances load but batch jobs still occupy any worker;
//   - partitioned AC: tenants steered to disjoint groups (3 for the
//     latency tenant, 1 for batch), the runtime's group structure acting
//     as the isolation boundary.
func runIsolation(scale Scale, seed uint64) ([]report.Table, error) {
	lc := server.Tenant{
		Name:    "latency-critical",
		Service: dist.Exponential{M: sim.Microsecond},
		Share:   0.95,
		SLO:     10 * sim.Microsecond,
		Conns:   512,
	}
	batch := server.Tenant{
		Name:    "batch",
		Service: dist.Fixed{V: 100 * sim.Microsecond},
		Share:   0.05,
		SLO:     sim.Millisecond,
		Conns:   16,
	}
	mix, err := server.NewTenantMix([]server.Tenant{lc, batch})
	if err != nil {
		return nil, err
	}
	mean := mix.MeanService() // ~6 us blended
	// Total offered load: 70% of 60 workers.
	rate := 0.7 * 60 / mean.Seconds()
	n := scale.n(300000)
	warm := n / 10

	t := report.Table{
		ID:    "isolation",
		Title: "per-tenant p99 and violations under a noisy batch neighbour (64 cores, load 0.7)",
		Cols:  []string{"deployment", "tenant", "p99(us)", "viol%"},
	}

	type deployment struct {
		name string
		cfg  server.Config
	}
	partitioned := core.DefaultParams(4, 15)
	deployments := []deployment{
		{"shared-RSS", server.Config{Kind: server.SchedRSS, Cores: 64,
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection, Seed: seed}},
		{"shared-AC", server.Config{Kind: server.SchedAltocumulus,
			AC: core.DefaultParams(4, 15), Stack: rpcproto.StackNanoRPC,
			Steer: nic.SteerConnection, Seed: seed}},
		{"partitioned-AC", server.Config{Kind: server.SchedAltocumulus,
			AC: partitioned, Stack: rpcproto.StackNanoRPC,
			Steer: nic.SteerDirect, Seed: seed}},
	}
	for _, d := range deployments {
		mixCopy := *mix
		app := server.App(&mixCopy)
		if d.name == "partitioned-AC" {
			// Tenant->group pinning: batch (tenant 1) owns group 3; the
			// latency tenant spreads over groups 0-2. SteerDirect maps
			// Conn%groups, so rewrite conns accordingly.
			app = &pinnedTenants{mix: &mixCopy, groups: 4, batchGroup: 3}
		}
		res, err := server.Run(d.cfg, server.Workload{
			Arrivals: dist.Poisson{Rate: rate}, App: app, N: n, Warmup: warm,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d.name, err)
		}
		for _, ts := range server.SummarizeTenants(res, &mixCopy, warm) {
			t.AddRow(d.name, ts.Name, usStr(ts.Summary.P99),
				fmt.Sprintf("%.3f", ts.Summary.VioRatio*100))
		}
	}
	t.Notes = append(t.Notes,
		"finding: the runtime's migration already isolates the latency tenant from the batch neighbour (vs RSS);",
		"static group partitioning adds no further protection at this load and costs statistical multiplexing",
		"extension beyond the paper: §XI names isolation via the distributed runtime as future work")
	return []report.Table{t}, nil
}

// pinnedTenants wraps a TenantMix, rewriting connection ids so that
// SteerDirect lands the batch tenant on its own group and spreads the
// latency tenant over the remaining groups.
type pinnedTenants struct {
	mix        *server.TenantMix
	groups     int
	batchGroup int
}

// Prepare implements server.App.
func (p *pinnedTenants) Prepare(r *rpcproto.Request, rng *sim.RNG) {
	p.mix.Prepare(r, rng)
	if int(r.Tenant) == 1 {
		r.Conn = uint32(p.batchGroup)
		return
	}
	g := rng.Intn(p.groups - 1) // groups 0..groups-2
	r.Conn = uint32(g)
}
