package experiments

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "checks",
		Title: "simcheck: invariant smoke across all schedulers + differential validation",
		Paper: "methodology check",
		Run:   runChecks,
	})
}

// runChecks exercises the online invariant checker (internal/check,
// DESIGN §8) two ways. The smoke table drives every scheduler through a
// load regime chosen to hit its interesting paths — stealing for ZygOS,
// preemption for Shinjuku, bound round-robin for the JBSQ designs,
// migration and NACK traffic for Altocumulus — and reports the
// invariant evaluations performed. The differential table runs the
// c-FCFS and d-FCFS configurations that have exact M/M/k counterparts
// and asserts the simulated latency statistics against the closed
// forms. Any violation or model disagreement fails the experiment.
func runChecks(scale Scale, seed uint64) ([]report.Table, error) {
	if !check.Enabled() {
		return nil, fmt.Errorf("checks: the invariant checker is disabled process-wide (-check=false); re-run with checking enabled")
	}
	smoke, err := runInvariantSmoke(scale, seed)
	if err != nil {
		return nil, err
	}
	diff, err := runDifferential(scale, seed)
	if err != nil {
		return nil, err
	}
	return []report.Table{smoke, diff}, nil
}

func runInvariantSmoke(scale Scale, seed uint64) (report.Table, error) {
	t := report.Table{
		ID:    "checks",
		Title: "invariant smoke: one checked run per scheduler (16 cores, exp(1us), load 0.8)",
		Cols:  []string{"scheduler", "requests", "checks", "checkpoints", "migrate batches", "violations"},
	}
	const cores = 16
	svc := dist.Exponential{M: sim.Microsecond}
	n := scale.n(200000)
	rate := dist.LoadForRate(0.8, cores, svc)

	kinds := []server.SchedulerKind{
		server.SchedRSS, server.SchedIX, server.SchedZygOS,
		server.SchedShinjuku, server.SchedRPCValet, server.SchedNebula,
		server.SchedNanoPU, server.SchedAltocumulus, server.SchedRSSPlus,
	}
	results, err := fleet.Map(len(kinds), func(i int) (*server.Result, error) {
		cfg := server.Config{
			Kind: kinds[i], Cores: cores, Stack: rpcproto.StackNanoRPC,
			Steer: nic.SteerConnection, Seed: seed + uint64(i),
		}
		if kinds[i] == server.SchedAltocumulus {
			cfg.AC = core.DefaultParams(4, 3)
		}
		return server.Run(cfg, server.Workload{
			Arrivals: dist.Poisson{Rate: rate}, Service: svc,
			N: n, Warmup: n / 10,
			// Few connections keep hash steering skewed so Altocumulus
			// actually migrates (and, at this load, occasionally NACKs).
			Conns: 12,
		})
	})
	if err != nil {
		return report.Table{}, err
	}
	for i, res := range results {
		rep := res.Check
		if rep == nil {
			return report.Table{}, fmt.Errorf("checks: %s ran without a checker report", kinds[i])
		}
		t.AddRow(kinds[i].String(), n, rep.Checks, rep.Checkpoints, rep.Batches, rep.Total())
	}
	// The Altocumulus row must have exercised the migration machinery,
	// otherwise the migrate-once and guard invariants were vacuous.
	for i, res := range results {
		if kinds[i] == server.SchedAltocumulus && res.Check.Batches == 0 {
			return report.Table{}, fmt.Errorf("checks: Altocumulus smoke saw no MIGRATE batches; workload no longer skewed enough")
		}
	}
	t.Notes = append(t.Notes,
		"checks = per-event invariant evaluations; checkpoints = periodic queue cross-checks",
		"every run also re-verifies conservation (arrivals = completions) at drain")
	return t, nil
}

func runDifferential(scale Scale, seed uint64) (report.Table, error) {
	t := report.Table{
		ID:    "checks",
		Title: "differential validation: simulated latency vs closed-form M/M/k",
		Cols:  []string{"case", "metric", "sim", "model", "tol", "ok"},
	}
	cases := check.DefaultDiffCases(scale == ScaleQuick)
	results, err := fleet.Map(len(cases), func(i int) (*check.DiffResult, error) {
		return check.RunDiff(cases[i], seed+uint64(100+i))
	})
	if err != nil {
		return report.Table{}, err
	}
	var firstErr error
	for _, res := range results {
		for _, m := range res.Metrics {
			ok := "yes"
			if !m.OK {
				ok = "NO"
			}
			t.AddRow(res.Case.Name, m.Name,
				fmt.Sprintf("%.4g", m.Sim), fmt.Sprintf("%.4g", m.Model),
				fmt.Sprintf("%.2g", m.Tol), ok)
		}
		if err := res.Err(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return report.Table{}, firstErr
	}
	t.Notes = append(t.Notes,
		"tolerances are batch-means confidence intervals plus a small model slack (DESIGN §8)",
		"p99-exceedance = fraction of sojourns beyond the model's analytic 99th percentile (target 0.01)")
	return t, nil
}
