package experiments

import (
	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig01",
		Title: "On-CPU latency split: RPC stack processing vs scheduling",
		Paper: "Fig. 1",
		Run:   runFig01,
	})
}

// runFig01 reproduces the paper's motivating measurement: for a 300 B RPC
// on a 16-core server at moderate load, how much on-CPU time goes to
// stack processing vs to scheduling. As stacks get faster (TCP/IP ->
// eRPC -> nanoRPC), processing collapses and scheduling becomes the
// bottleneck — the paper's thesis.
func runFig01(scale Scale, seed uint64) ([]report.Table, error) {
	t := report.Table{
		ID:    "fig01",
		Title: "on-CPU latency for a 300B RPC (16 cores, work-stealing scheduler, load 0.6)",
		Cols:  []string{"stack", "processing(us)", "scheduling(us)", "total(us)"},
	}
	const cores = 16
	svc := dist.Fixed{V: 500 * sim.Nanosecond} // application handler time
	n := scale.n(100000)

	for _, stack := range []rpcproto.StackKind{rpcproto.StackTCPIP, rpcproto.StackERPC, rpcproto.StackNanoRPC} {
		model := rpcproto.NewStack(stack)
		processing := model.ProcessingTime(300)
		// Offered load counts the stack work the cores must absorb for
		// software stacks (everything except nanoRPC, which terminates
		// the stack in NIC hardware in this comparison).
		effSvc := svc.V
		if stack != rpcproto.StackNanoRPC {
			effSvc += processing
		}
		rate := 0.6 * float64(cores) / effSvc.Seconds()
		kind := server.SchedZygOS
		res, err := server.Run(server.Config{
			Kind: kind, Cores: cores, Stack: stack,
			Steer: nic.SteerConnection, Seed: seed,
		}, server.Workload{
			Arrivals: dist.Poisson{Rate: rate}, Service: svc,
			N: n, Warmup: n / 10,
		})
		if err != nil {
			return nil, err
		}
		// Scheduling time = everything that is not the application
		// handler or stack processing: queueing, steering, stealing,
		// NIC/PCIe transfer.
		mean := res.Summary.Mean
		scheduling := mean - svc.V - processing
		if scheduling < 0 {
			scheduling = 0
		}
		t.AddRow(stack.String(),
			usStr(processing), usStr(scheduling), usStr(mean-svc.V))
	}
	t.Notes = append(t.Notes,
		"paper anchors: TCP/IP ~15-25us total; eRPC <1us processing; nanoRPC ~40ns processing with scheduling dominating",
		"scheduling column = mean on-CPU latency minus handler and stack processing time")
	return []report.Table{t}, nil
}
