package experiments

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/queueing"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "validate",
		Title: "Simulator validation against closed-form queueing theory (extension)",
		Paper: "methodology check",
		Run:   runValidate,
	})
}

// runValidate cross-checks the discrete-event substrate against exact
// results: M/M/k mean waits and wait probabilities (Erlang-C) and the
// M/G/1 Pollaczek-Khinchine mean wait. Every scheduling experiment in
// this repository rests on the same engine/core/queue machinery, so
// agreement here validates the substrate itself.
func runValidate(scale Scale, seed uint64) ([]report.Table, error) {
	// Many-server mean waits are tiny (tens of ns); they need hundreds of
	// thousands of samples to converge, which the plain FCFS simulation
	// delivers in about a second.
	n := scale.n(4000000)

	mmk := report.Table{
		ID:    "validate",
		Title: "M/M/k: simulated vs Erlang-C analytical",
		Cols:  []string{"k", "load", "E[W] sim (us)", "E[W] theory (us)", "err%", "P(wait) sim", "P(wait) theory"},
	}
	for _, tc := range []struct {
		k    int
		load float64
	}{
		{1, 0.5}, {1, 0.8}, {4, 0.7}, {16, 0.8}, {64, 0.9}, {64, 0.95},
	} {
		simW, simPWait, err := simulateFCFS(tc.k, dist.Exponential{M: sim.Microsecond}, tc.load, n, seed)
		if err != nil {
			return nil, err
		}
		q := queueing.MMk{K: tc.k, Lambda: tc.load * float64(tc.k) / 1e-6, Mu: 1e6}
		thW := q.MeanWait() * 1e6 // seconds -> us
		errPct := math.Abs(simW-thW) / math.Max(thW, 1e-9) * 100
		mmk.AddRow(tc.k, fmt.Sprintf("%.2f", tc.load),
			fmt.Sprintf("%.3f", simW), fmt.Sprintf("%.3f", thW),
			fmt.Sprintf("%.1f", errPct),
			fmt.Sprintf("%.3f", simPWait), fmt.Sprintf("%.3f", q.PWait()))
	}
	mmk.Notes = append(mmk.Notes, "residual errors of a few percent reflect finite-run variance")

	mg1 := report.Table{
		ID:    "validate",
		Title: "M/G/1: simulated vs Pollaczek-Khinchine",
		Cols:  []string{"service", "load", "E[W] sim (us)", "E[W] P-K (us)", "err%"},
	}
	for _, tc := range []struct {
		name string
		svc  dist.ServiceDist
		es2  float64 // second moment in s^2
		load float64
	}{
		{"fixed(1us)", dist.Fixed{V: sim.Microsecond}, 1e-12, 0.8},
		{"exp(1us)", dist.Exponential{M: sim.Microsecond}, 2e-12, 0.8},
		{"bimodal", dist.Bimodal{Short: 500 * sim.Nanosecond, Long: 5 * sim.Microsecond, PLong: 0.1},
			0.9*0.25e-12 + 0.1*25e-12, 0.7},
	} {
		es := tc.svc.Mean().Seconds()
		lambda := tc.load / es
		simW, _, err := simulateFCFS(1, tc.svc, tc.load, n, seed+7)
		if err != nil {
			return nil, err
		}
		thW, err := queueing.MG1MeanWait(lambda, es, tc.es2)
		if err != nil {
			return nil, err
		}
		thWus := thW * 1e6
		errPct := math.Abs(simW-thWus) / thWus * 100
		mg1.AddRow(tc.name, fmt.Sprintf("%.2f", tc.load),
			fmt.Sprintf("%.3f", simW), fmt.Sprintf("%.3f", thWus),
			fmt.Sprintf("%.1f", errPct))
	}
	return []report.Table{mmk, mg1}, nil
}

// simulateFCFS runs a plain k-server FCFS queue and returns the mean wait
// in microseconds and the fraction of requests that waited.
func simulateFCFS(k int, svc dist.ServiceDist, load float64, n int, seed uint64) (meanWaitUS, pWait float64, err error) {
	eng := sim.NewEngine()
	arr := sim.NewRNG(seed)
	svcRNG := sim.NewRNG(seed + 1)
	rate := dist.LoadForRate(load, k, svc)

	waits := stats.NewSample(n)
	waited, measured := 0, 0
	warm := n / 5
	workers := make([]*exec.Core, k)
	for i := range workers {
		workers[i] = exec.NewCore(eng, i, i)
	}
	var queue exec.Deque
	nDone := 0
	var pump func()
	pump = func() {
		for queue.Len() > 0 {
			var free *exec.Core
			for _, w := range workers {
				if !w.Busy() {
					free = w
					break
				}
			}
			if free == nil {
				return
			}
			r := queue.PopHead()
			// Skip the cold-start transient: an initially empty queue
			// biases the mean wait low, badly so for many-server systems
			// whose equilibrium waits are tiny.
			if int(r.ID) >= warm {
				wait := eng.Now() - r.Arrival
				waits.Add(wait)
				measured++
				if wait > 0 {
					waited++
				}
			}
			free.Start(r, 0, func(*rpcproto.Request) {
				nDone++
				pump()
			}, nil)
		}
	}
	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= n {
			return
		}
		r := &rpcproto.Request{ID: uint64(i), Service: svc.Sample(svcRNG)}
		gap := dist.Poisson{Rate: rate}.NextGap(arr)
		eng.At(at, func() {
			r.Arrival = eng.Now()
			queue.PushTail(r)
			pump()
			schedule(i+1, eng.Now()+gap)
		})
	}
	schedule(0, 0)
	eng.RunAll()
	if nDone != n {
		return 0, 0, fmt.Errorf("validate: completed %d of %d", nDone, n)
	}
	return waits.Mean().Microseconds(), float64(waited) / float64(measured), nil
}
