package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "ablate",
		Title: "Design-choice ablations of the ALTOCUMULUS runtime (extension)",
		Paper: "DESIGN.md §6",
		Run:   runAblate,
	})
}

// runAblate disables one design element of the runtime at a time and
// measures the damage on the Fig. 11 workload (256 cores, RSS-skewed
// load 0.95): the Hill/Valley/Pairing classifier, the Algorithm 1 line-8
// guard, the migrate-once restriction, the Erlang-C threshold (replaced
// by the naive k*L+1 bound), and the hardware messaging mechanism
// (replaced by shared-cache messaging).
func runAblate(scale Scale, seed uint64) ([]report.Table, error) {
	n := scale.n(400000)
	svc, rate := fig11Workload(n)
	slo := sim.Time(10 * float64(svc.Mean()))

	t := report.Table{
		ID:    "ablate",
		Title: "runtime ablations (16x16 cores, connection-skewed load 0.95, SLO 6.3us)",
		Cols:  []string{"variant", "violations", "p99(us)", "migrated", "nacked", "guard-skips"},
	}

	variants := []struct {
		name string
		mod  func(*core.Params)
	}{
		{"full system", func(*core.Params) {}},
		{"no migration", func(p *core.Params) { p.DisableMigration = true }},
		{"no patterns (threshold only)", func(p *core.Params) { p.DisablePatterns = true }},
		{"no guard (line 8 dropped)", func(p *core.Params) { p.DisableGuard = true }},
		{"re-migration allowed", func(p *core.Params) { p.AllowRemigration = true }},
		{"naive threshold (k*L+1)", func(p *core.Params) { p.NaiveThreshold = true }},
		{"software messaging", func(p *core.Params) { p.SoftwareMessaging = true }},
		{"tiny FIFOs (4 entries)", func(p *core.Params) { p.FIFOCapacity = 4; p.MRCapacity = 8 }},
		{"head selection (oldest first)", func(p *core.Params) { p.Select = core.SelectHead }},
	}

	for _, v := range variants {
		p := core.DefaultParams(16, 15)
		v.mod(&p)
		res, err := fig11Run(p, svc, rate, n, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		t.AddRow(v.name, res.Lat.CountAbove(slo), usStr(res.Summary.P99),
			fmt.Sprint(res.ACStats.MigratedReqs),
			fmt.Sprint(res.ACStats.NackedReqs),
			fmt.Sprint(res.ACStats.GuardSkips))
	}
	t.Notes = append(t.Notes,
		"each row disables exactly one mechanism; violations relative to the full system quantify its contribution")
	return []report.Table{t}, nil
}
