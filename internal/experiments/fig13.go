package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fabric"
	"repro/internal/fleet"
	"repro/internal/mica"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig13a",
		Title: "MICA throughput@SLO scaling and prediction accuracy",
		Paper: "Fig. 13(a)",
		Run:   runFig13a,
	})
	register(Experiment{
		ID:    "fig13b",
		Title: "Case studies 1-2: runtime/messaging on scale-out Nebula; ACrss tuning",
		Paper: "Fig. 13(b)",
		Run:   runFig13b,
	})
	register(Experiment{
		ID:    "fig13c",
		Title: "Case study 3: prediction accuracy vs SLO target",
		Paper: "Fig. 13(c)",
		Run:   runFig13c,
	})
}

// newMICA builds a MICA app sized for the run: the EREW partition count
// matches the scheduling entities (AC groups or baseline cores), with a
// fixed total memory budget split across partitions.
func newMICA(partitions int, fixed sim.Time) (*server.MICAApp, error) {
	logPer := int64(64<<20) / int64(partitions)
	if logPer < 1<<20 {
		logPer = 1 << 20
	}
	buckets := 262144 / partitions
	if buckets < 1024 {
		buckets = 1024
	}
	store, err := mica.NewStore(mica.Config{
		Partitions: partitions, BucketsPerPart: buckets,
		EntriesPerBucket: 8, LogBytesPerPart: logPer,
	})
	if err != nil {
		return nil, err
	}
	app, err := server.NewMICAApp(store, mica.DefaultOpCost(fabric.Default()), 100000, 16, 512)
	if err != nil {
		return nil, err
	}
	app.FixedService = fixed
	return app, nil
}

// acOpt is the "tuned" configuration: a faster reaction period and larger
// batches, which help under bursty (MMPP) arrivals.
func acOpt(groups, wpg int) core.Params {
	p := core.DefaultParams(groups, wpg)
	p.Period = 100 * sim.Nanosecond
	p.Bulk = 32
	p.Concurrency = 8
	return p
}

const fig13Service = 850 * sim.Nanosecond // the eRPC-stack service time
const fig13SLO = sim.Time(10 * 850 * sim.Nanosecond)

// fig13Config builds the server config for one named system at a core
// count.
func fig13Config(name string, cores int, seed uint64) (server.Config, int, error) {
	groups := cores / 16
	switch name {
	case "RSS":
		// EREW MICA statically maps each partition to its owner core;
		// SteerDirect models those per-core NIC queues. RSS's weakness
		// is not mis-mapping but the absence of any rebalancing when
		// bursts and service dispersion skew the per-core load.
		return server.Config{Kind: server.SchedRSS, Cores: cores,
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerDirect,
			Seed: seed, SLO: fig13SLO}, cores, nil
	case "Nebula":
		return server.Config{Kind: server.SchedNebula, Cores: cores,
			Stack: rpcproto.StackNanoRPC, Seed: seed, SLO: fig13SLO}, cores, nil
	case "ACint_subopt":
		return server.Config{Kind: server.SchedAltocumulus, AC: core.DefaultParams(groups, 15),
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerDirect,
			Seed: seed, SLO: fig13SLO}, groups, nil
	case "ACint_opt":
		return server.Config{Kind: server.SchedAltocumulus, AC: acOpt(groups, 15),
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerDirect,
			Seed: seed, SLO: fig13SLO}, groups, nil
	default:
		return server.Config{}, 0, fmt.Errorf("fig13: unknown system %q", name)
	}
}

// fig13Sweep measures throughput@SLO of one system under one arrival
// model ("poisson" or "mmpp").
// fig13MMPP is the real-world arrival surrogate with a dwell short
// enough that duration-bounded runs sample many phases.
func fig13MMPP(rate float64) *dist.MMPP {
	// Milder multipliers than the generic cloud surrogate: the paper's
	// regression-generated traffic is bursty but sustainable; a 3x burst
	// phase would be outright overload for every scheduler at these
	// loads.
	mult := []float64{0.7, 0.9, 1.0, 1.1, 1.3, 1.5}
	var avg float64
	for _, m := range mult {
		avg += m
	}
	avg /= float64(len(mult))
	return &dist.MMPP{BaseRate: rate / avg, Mult: mult,
		Dwell: 20 * sim.Microsecond, PJump: 0.25}
}

// fig13N sizes one run to cover enough MMPP phases.
func fig13N(scale Scale, rate float64) int {
	return scale.nForDuration(rate, 400*sim.Microsecond, 2*sim.Millisecond)
}

func fig13Sweep(name string, cores int, arrivals string, loads []float64, scale Scale, seed uint64) (float64, error) {
	cfg, parts, err := fig13Config(name, cores, seed)
	if err != nil {
		return 0, err
	}
	workersOf := func() int {
		if cfg.Kind == server.SchedAltocumulus {
			return cfg.AC.Groups * cfg.AC.WorkersPerGroup
		}
		return cores
	}
	capacity := float64(workersOf()) / fig13Service.Seconds()
	pts, err := sweep(loads,
		func(float64) server.Config { return cfg },
		func(load float64) server.Workload {
			app, aerr := newMICA(parts, fig13Service)
			if aerr != nil {
				panic(aerr) // sizing is static; failure is a programming error
			}
			rate := load * capacity
			n := fig13N(scale, rate)
			var arr dist.ArrivalProcess
			if arrivals == "mmpp" {
				arr = fig13MMPP(rate)
			} else {
				arr = dist.Poisson{Rate: rate}
			}
			return server.Workload{Arrivals: arr, App: app, N: n, Warmup: n / 10}
		})
	if err != nil {
		return 0, err
	}
	return server.ThroughputAtSLO(pts, fig13SLO), nil
}

func runFig13a(scale Scale, seed uint64) ([]report.Table, error) {
	coreCounts := []int{64, 128, 192, 256}
	// The low points let RSS (whose hash collisions overload some queues
	// at ~2x their fair share) register a nonzero throughput@SLO.
	loads := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	if scale == ScaleQuick {
		coreCounts = []int{64, 256}
		loads = []float64{0.3, 0.5, 0.7, 0.8, 0.9, 0.95}
	}
	systems := []string{"RSS", "Nebula", "ACint_subopt", "ACint_opt"}

	tput := report.Table{
		ID:    "fig13a",
		Title: "MICA throughput@SLO (MRPS), fixed 850ns eRPC service, SLO 8.5us",
		Cols:  []string{"arrivals", "cores", "RSS", "Nebula", "ACint_subopt", "ACint_opt"},
	}
	for _, arrivals := range []string{"poisson", "mmpp"} {
		for _, cores := range coreCounts {
			row := []interface{}{arrivals, cores}
			for _, sys := range systems {
				tp, err := fig13Sweep(sys, cores, arrivals, loads, scale, seed)
				if err != nil {
					return nil, fmt.Errorf("%s/%d/%s: %w", sys, cores, arrivals, err)
				}
				row = append(row, mrps(tp))
			}
			tput.AddRow(row...)
		}
	}
	tput.Notes = append(tput.Notes,
		"paper: ACint_opt scales near-linearly, 2.8-7.4x over Nebula under real-world traffic; subopt still gains 1.5-2.3x",
		"real-world (mmpp) traffic costs ACint_opt ~13-15% throughput@SLO vs poisson")

	// Prediction accuracy at load 0.9 under MMPP, 256 cores.
	acc := report.Table{
		ID:    "fig13a",
		Title: "SLO-violation prediction accuracy under real-world traffic (load 0.95)",
		Cols:  []string{"system", "accuracy"},
	}
	cores := 256
	if scale == ScaleQuick {
		cores = 64
	}
	for _, sys := range []string{"ACint_subopt", "ACint_opt"} {
		a, err := fig13Accuracy(sys, cores, "mmpp", 0.95, scale, seed, fig13SLO)
		if err != nil {
			return nil, err
		}
		acc.AddRow(sys, fmt.Sprintf("%.3f", a))
	}
	acc.Notes = append(acc.Notes,
		"paper: prediction accuracy drops from 99.8% (synthetic) to ~96% under real-world patterns")
	return []report.Table{tput, acc}, nil
}

// fig13Accuracy runs system and its same-seed no-migration baseline and
// computes prediction accuracy.
func fig13Accuracy(name string, cores int, arrivals string, load float64, scale Scale, seed uint64, slo sim.Time) (float64, error) {
	run := func(disable bool) (*server.Result, error) {
		cfg, parts, err := fig13Config(name, cores, seed)
		if err != nil {
			return nil, err
		}
		if cfg.Kind != server.SchedAltocumulus {
			return nil, fmt.Errorf("fig13: accuracy needs an AC config")
		}
		cfg.AC.DisableMigration = disable
		app, err := newMICA(parts, fig13Service)
		if err != nil {
			return nil, err
		}
		capacity := float64(cfg.AC.Groups*cfg.AC.WorkersPerGroup) / fig13Service.Seconds()
		rate := load * capacity
		n := fig13N(scale, rate)
		var arr dist.ArrivalProcess
		if arrivals == "mmpp" {
			arr = fig13MMPP(rate)
		} else {
			arr = dist.Poisson{Rate: rate}
		}
		return server.Run(cfg, server.Workload{Arrivals: arr, App: app, N: n, Warmup: n / 10})
	}
	// The baseline and migrating runs are independent; pair them on the
	// fleet pool.
	pair, err := fleet.Map(2, func(i int) (*server.Result, error) {
		return run(i == 0)
	})
	if err != nil {
		return 0, err
	}
	return server.PredictionAccuracy(pair[0], pair[1], slo)
}

func runFig13b(scale Scale, seed uint64) ([]report.Table, error) {
	cores := 256
	// Fine-grained loads around the knee, plus low points where the RSS
	// baseline (whose 256-queue hash imbalance leaves some queues 3-4x
	// overloaded) can still qualify.
	loads := []float64{0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.65, 0.7, 0.75, 0.8}
	if scale == ScaleQuick {
		cores = 64
		loads = []float64{0.2, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	groups := cores / 16

	t := report.Table{
		ID:    "fig13b",
		Title: fmt.Sprintf("case studies 1-2: throughput@SLO (MRPS), %d cores, real-world traffic", cores),
		Cols:  []string{"config", "tput@SLO(MRPS)", "vs RSS"},
	}
	type cs struct {
		name string
		cfg  server.Config
		ac   bool
	}
	mkAC := func(p core.Params) server.Config {
		return server.Config{Kind: server.SchedAltocumulus, AC: p,
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerDirect, Seed: seed, SLO: fig13SLO}
	}
	rt := core.DefaultParams(groups, 15)
	rt.SoftwareMessaging = true
	rtmsg := core.DefaultParams(groups, 15)
	syn := core.DefaultParams(groups, 15)
	syn.Local = core.DispatchSoftware
	rw := acOpt(groups, 15)
	rw.Local = core.DispatchSoftware

	cases := []cs{
		{"RSS", server.Config{Kind: server.SchedRSS, Cores: cores,
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerDirect, Seed: seed, SLO: fig13SLO}, false},
		{"ACint_rt (runtime only, sw messaging)", mkAC(rt), true},
		{"ACint_rt+msg (full hw mechanism)", mkAC(rtmsg), true},
		{"ACrss_syn (synthetic-tuned params)", mkAC(syn), true},
		{"ACrss_rw (real-world-tuned params)", mkAC(rw), true},
	}

	var rssTput float64
	for _, c := range cases {
		parts := cores
		workers := cores
		if c.ac {
			parts = groups
			workers = c.cfg.AC.Groups * c.cfg.AC.WorkersPerGroup
		}
		capacity := float64(workers) / fig13Service.Seconds()
		pts, err := sweep(loads,
			func(float64) server.Config { return c.cfg },
			func(load float64) server.Workload {
				app, aerr := newMICA(parts, fig13Service)
				if aerr != nil {
					panic(aerr)
				}
				rate := load * capacity
				n := fig13N(scale, rate)
				return server.Workload{Arrivals: fig13MMPP(rate),
					App: app, N: n, Warmup: n / 10}
			})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		tp := server.ThroughputAtSLO(pts, fig13SLO)
		if c.name == "RSS" {
			rssTput = tp
		}
		ratio := "n/a"
		if rssTput > 0 {
			ratio = fmt.Sprintf("%.2fx", tp/rssTput)
		}
		t.AddRow(c.name, mrps(tp), ratio)
	}
	t.Notes = append(t.Notes,
		"paper: runtime-only improves 2.2x over RSS, +hw messaging 1.3x more (2.9x total); ACrss_syn 1.4x, ACrss_rw 2.7x")
	return []report.Table{t}, nil
}

func runFig13c(scale Scale, seed uint64) ([]report.Table, error) {
	cores := 64
	groups := cores / 16
	const load = 0.95

	t := report.Table{
		ID:    "fig13c",
		Title: "prediction accuracy vs SLO target (A = 850ns, load 0.95)",
		Cols:  []string{"SLO", "RSS(naive T)", "ACint_opt", "ACrss_opt"},
	}
	for _, mult := range []float64{5, 10, 20} {
		slo := sim.Time(mult * float64(fig13Service))
		row := []interface{}{fmt.Sprintf("%.0fA", mult)}
		// "RSS" baseline predictor: grouped d-FCFS with the naive
		// k*L+1 threshold and no migration; accuracy of its own marks.
		naive := core.DefaultParams(groups, 15)
		naive.DisableMigration = true
		naive.NaiveThreshold = true
		naive.SLOMultiplier = mult
		nres, err := fig13RunAC(naive, load, scale, seed, slo)
		if err != nil {
			return nil, err
		}
		nacc, err := server.PredictionAccuracy(nres, nres, slo)
		if err != nil {
			return nil, err
		}
		row = append(row, fmt.Sprintf("%.3f", nacc))

		for _, local := range []core.LocalDispatch{core.DispatchHardware, core.DispatchSoftware} {
			p := acOpt(groups, 15)
			p.Local = local
			p.SLOMultiplier = mult
			pair, err := fleet.Map(2, func(i int) (*server.Result, error) {
				pp := p
				pp.DisableMigration = i == 0
				return fig13RunAC(pp, load, scale, seed, slo)
			})
			if err != nil {
				return nil, err
			}
			acc, err := server.PredictionAccuracy(pair[0], pair[1], slo)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", acc))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: AC gains 2.3x/1.8x accuracy over the naive baseline at SLO=5A; all approaches exceed 95% at the relaxed 20A target")
	return []report.Table{t}, nil
}

func fig13RunAC(p core.Params, load float64, scale Scale, seed uint64, slo sim.Time) (*server.Result, error) {
	app, err := newMICA(p.Groups, fig13Service)
	if err != nil {
		return nil, err
	}
	capacity := float64(p.Groups*p.WorkersPerGroup) / fig13Service.Seconds()
	rate := load * capacity
	n := fig13N(scale, rate)
	return server.Run(server.Config{
		Kind: server.SchedAltocumulus, AC: p, Stack: rpcproto.StackNanoRPC,
		Steer: nic.SteerDirect, Seed: seed, SLO: slo,
	}, server.Workload{
		Arrivals: fig13MMPP(rate), App: app, N: n, Warmup: n / 10,
	})
}
