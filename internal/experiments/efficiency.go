package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/report"
	"repro/internal/rpcproto"
	"repro/internal/server"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "efficiency",
		Title: "CPU utilization sustainable under the SLO (extension)",
		Paper: "§I / §X motivation",
		Run:   runEfficiency,
	})
}

// runEfficiency quantifies the paper's efficiency motivation: systems
// that guarantee microsecond-scale SLOs usually do so by running cores
// far below saturation (§I quotes 36-64% of cycles wasted on 8-12 core
// CPUs). For each scheduler the experiment finds the highest load whose
// p99 meets a 10x SLO on a 64-core server and reports the worker
// utilization actually achieved there — "useful work per core at the
// SLO", the metric a capacity planner cares about.
func runEfficiency(scale Scale, seed uint64) ([]report.Table, error) {
	const cores = 64
	svc := dist.Exponential{M: sim.Microsecond}
	slo := 10 * sim.Microsecond
	n := scale.n(200000)
	loads := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95}
	capacity := float64(cores) / svc.Mean().Seconds()

	t := report.Table{
		ID:    "efficiency",
		Title: "worker utilization at the highest SLO-compliant load (64 cores, exp(1us), SLO 10us)",
		Cols:  []string{"system", "tput@SLO(MRPS)", "util@SLO", "wasted-cycles"},
	}

	type sys struct {
		name string
		cfg  server.Config
	}
	systems := []sys{
		{"RSS", server.Config{Kind: server.SchedRSS, Cores: cores,
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection, Seed: seed, SLO: slo}},
		{"RSS++", server.Config{Kind: server.SchedRSSPlus, Cores: cores,
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection, Seed: seed, SLO: slo}},
		{"ZygOS", server.Config{Kind: server.SchedZygOS, Cores: cores,
			Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection, Seed: seed, SLO: slo}},
		{"Nebula", server.Config{Kind: server.SchedNebula, Cores: cores,
			Stack: rpcproto.StackNanoRPC, Seed: seed, SLO: slo}},
		{"Altocumulus", server.Config{Kind: server.SchedAltocumulus,
			AC: core.DefaultParams(4, 15), Stack: rpcproto.StackNanoRPC,
			Steer: nic.SteerConnection, Seed: seed, SLO: slo}},
	}
	for _, s := range systems {
		bestTput, bestUtil := 0.0, 0.0
		for _, load := range loads {
			res, err := server.Run(s.cfg, server.Workload{
				Arrivals: dist.Poisson{Rate: load * capacity},
				Service:  svc, N: n, Warmup: n / 10,
			})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.name, err)
			}
			if res.Summary.P99 <= slo && res.OfferedRPS > bestTput {
				bestTput = res.OfferedRPS
				bestUtil = res.WorkerUtilization
			}
		}
		t.AddRow(s.name, mrps(bestTput),
			fmt.Sprintf("%.1f%%", bestUtil*100),
			fmt.Sprintf("%.1f%%", (1-bestUtil)*100))
	}
	t.Notes = append(t.Notes,
		"the paper's motivation: prior systems waste 36-64% of cycles to protect the tail; better scheduling converts headroom into served load",
		"AC utilization is measured over its 60 worker cores (managers excluded)")
	return []report.Table{t}, nil
}
