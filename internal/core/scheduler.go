package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/hwmsg"
	"repro/internal/nic"
	"repro/internal/policy"
	"repro/internal/rack"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
)

// group is one manager core plus its worker cores (Fig. 5/6: a manager
// tile with MRs, PRs, FIFOs, migrator and controller, owning one NetRX
// queue).
type group struct {
	id      int
	tile    int // manager tile on the mesh
	workers []*exec.Core
	claimed []int // in-flight dispatches per worker
	local   []exec.Deque
	netrx   exec.Deque

	// Heterogeneity (DESIGN.md §15): the group's hardware class, the
	// ascending ids of the groups sharing it (its migration peers), and
	// this group's index within that peer list. Migration state — the
	// synchronized view, rank permutation, UPDATE broadcast, decide() —
	// is all expressed in peer-index space. Homogeneous configurations
	// have peers == all groups and peerIdx == id, so every packed value
	// and event order is bit-identical to the pre-class runtime.
	class   uint8
	peers   []int
	peerIdx int

	// view is the synchronized queue-length vector q (via UPDATE),
	// indexed by peer. It aliases rank's live vector: every write goes
	// through rank.Set so the descending-rank permutation repairs
	// incrementally — a tick over G peers pays for the entries that
	// changed since the last tick, not for re-sorting all G (O(active),
	// not O(cores)).
	view []int
	rank *policy.RankTracker

	mr   *hwmsg.MRFile
	send *hwmsg.FIFO
	recv *hwmsg.FIFO
	pr   hwmsg.ParamRegs

	mgrFree sim.Time // manager-core busy-until (runtime ops + software dispatch)

	// Callbacks bound once at construction so the per-request and
	// per-tick paths never allocate closures: tickFn is this manager's
	// Algorithm 1 iteration, landFns[w] the dispatch-landing arg-event
	// trampoline for worker w, doneFns[w] worker w's completion
	// callback, phaseLandFn the arg-event trampoline for a forwarded
	// phase landing on this group's NetRX.
	tickFn      func()
	landFns     []func(any, int64)
	doneFns     []func(*rpcproto.Request)
	phaseLandFn func(any, int64)
}

// updateLand applies one UPDATE message landing at a manager: the
// destination group's synchronized view of the sender refreshes. It is a
// package-level arg-event trampoline (arg = destination group,
// n = sender peer index in the high 32 bits, observed queue length in
// the low 32), so the per-tick broadcast allocates nothing. The write
// goes through the rank tracker: an unchanged length is dropped, a
// changed one joins the dirty set the next decide() repairs.
func updateLand(arg any, n int64) {
	arg.(*group).rank.Set(int(n>>32), int(int32(n)))
}

// Scheduler is the ALTOCUMULUS runtime: Algorithm 1 running on every
// manager core, on top of the hardware messaging mechanism.
type Scheduler struct {
	P     Params
	Cost  fabric.CostModel
	Model *policy.ThresholdModel
	Meter *LoadMeter

	eng    *sim.Engine
	noc    *topo.NoC
	steer  *nic.Steerer
	groups []*group
	done   sched.Done
	obs    sched.Observer
	probe  sched.Probe

	Stats   Stats
	ticking bool
	stopped bool

	// Tick-time scratch (pre-sized to Groups so it never grows): the
	// destination set for the §VI pattern classification. The rank
	// permutation lives in each group's RankTracker.
	destScratch []int

	// Heterogeneous-group state (DESIGN.md §15), nil/1 when every group
	// is class 0 so homogeneous runs never touch it: the per-class group
	// lists, per-class load meters and planning table (threshold model +
	// period per class), and the phase-forwarding machinery — one rack
	// dispatcher per class (JSQ / pow-k over the class's NetRX depths)
	// with a per-class depth scratch and a dedicated sampling RNG.
	classes     int
	classGroups [][]int
	classMeters []*LoadMeter
	plan        *policy.ClassPlan
	classDisp   []*rack.Dispatcher
	classDepths [][]int
	fwdRNG      *rack.SplitMix
	phaseProbe  sched.PhaseProbe
}

// New builds an ALTOCUMULUS scheduler. steer distributes arrivals across
// the groups' NetRX queues (global d-FCFS); done fires at each request
// completion.
func New(eng *sim.Engine, p Params, cost fabric.CostModel, steer *nic.Steerer, done sched.Done) (*Scheduler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if steer.N != p.Groups {
		return nil, fmt.Errorf("core: steerer covers %d queues, want %d groups", steer.N, p.Groups)
	}
	mesh := topo.NewMesh(p.TotalCores())
	s := &Scheduler{
		P:     p,
		Cost:  cost,
		Model: policy.NewThresholdModel(p.WorkersPerGroup, p.SLOMultiplier),
		Meter: NewLoadMeter(),
		eng:   eng,
		noc:   topo.NewNoC(mesh),
		steer: steer,
		done:  done,
		obs:   sched.NopObserver{},

		destScratch: make([]int, 0, p.Groups),
	}

	// Class layout. Homogeneous configurations get classes == 1 and one
	// peer list covering every group; the per-class planning/forwarding
	// state stays nil so no heterogeneous path is reachable.
	s.classes = p.NumClasses()
	s.classGroups = make([][]int, s.classes)
	for gid := 0; gid < p.Groups; gid++ {
		c := p.ClassOf(gid)
		s.classGroups[c] = append(s.classGroups[c], gid)
	}
	if s.classes > 1 {
		s.plan = policy.NewClassPlan(s.classes)
		s.classMeters = make([]*LoadMeter, s.classes)
		s.classDisp = make([]*rack.Dispatcher, s.classes)
		s.classDepths = make([][]int, s.classes)
		s.fwdRNG = rack.NewSplitMix(p.ForwardSeed)
		kind := rack.JSQ
		if p.Forward == ForwardPowK {
			kind = rack.PowerOfK
		}
		for c := 0; c < s.classes; c++ {
			per := p.Period
			if p.ClassPeriods != nil {
				per = p.ClassPeriods[c]
			}
			s.plan.SetClass(c, policy.NewThresholdModel(p.WorkersPerGroup, p.SLOMultiplier), policy.Duration(per))
			s.classMeters[c] = NewLoadMeter()
			d, err := rack.NewDispatcher(rack.Config{Servers: len(s.classGroups[c]), Policy: kind, K: p.ForwardK})
			if err != nil {
				return nil, fmt.Errorf("core: class %d forward dispatcher: %w", c, err)
			}
			s.classDisp[c] = d
			s.classDepths[c] = make([]int, len(s.classGroups[c]))
		}
	}

	tilesPerGroup := p.WorkersPerGroup + 1
	peerCursor := make([]int, s.classes)
	for gid := 0; gid < p.Groups; gid++ {
		cls := p.ClassOf(gid)
		peers := s.classGroups[cls]
		g := &group{
			id:      gid,
			tile:    gid * tilesPerGroup, // manager occupies the group's first tile
			workers: make([]*exec.Core, p.WorkersPerGroup),
			claimed: make([]int, p.WorkersPerGroup),
			local:   make([]exec.Deque, p.WorkersPerGroup),
			class:   cls,
			peers:   peers,
			peerIdx: peerCursor[cls],
			rank:    policy.NewRankTracker(len(peers)),
			mr:      hwmsg.NewMRFile(p.MRCapacity),
			send:    hwmsg.NewFIFO(p.FIFOCapacity),
			recv:    hwmsg.NewFIFO(p.FIFOCapacity),
		}
		peerCursor[cls]++
		g.view = g.rank.View()
		period := p.Period
		if s.plan != nil {
			period = sim.Time(s.plan.Period(int(cls)))
		}
		g.pr.Configure(period, p.Bulk, p.Concurrency)
		g.tickFn = func() { s.tick(g) }
		g.phaseLandFn = func(arg any, _ int64) { s.phaseLand(g, arg.(*rpcproto.Request)) }
		g.landFns = make([]func(any, int64), p.WorkersPerGroup)
		g.doneFns = make([]func(*rpcproto.Request), p.WorkersPerGroup)
		for w := 0; w < p.WorkersPerGroup; w++ {
			tile := g.tile + 1 + w
			g.workers[w] = exec.NewCore(eng, gid*p.WorkersPerGroup+w, tile)
			g.workers[w].Class = cls
			w := w
			g.workers[w].OnPhase = func(r *rpcproto.Request) bool { return s.phaseAdvance(g, w, r) }
			g.landFns[w] = func(arg any, _ int64) { s.dispatchLand(g, w, arg.(*rpcproto.Request)) }
			g.doneFns[w] = func(r *rpcproto.Request) {
				if s.probe != nil {
					s.probe.OnComplete(r, g.workers[w].ID)
				}
				s.done(r)
				s.tryStart(g, w)
				s.dispatch(g)
			}
		}
		s.groups = append(s.groups, g)
	}
	return s, nil
}

// SetObserver installs instrumentation.
func (s *Scheduler) SetObserver(o sched.Observer) {
	s.obs, s.probe = o, sched.ProbeOf(o)
	s.phaseProbe = sched.PhaseProbeOf(o)
}

// localQueueID is the probe id of worker (gid, w)'s local queue: the
// NetRX queues occupy ids 0..Groups-1, local queues follow in worker
// order (matching the worker's global core id plus the Groups offset).
func (s *Scheduler) localQueueID(gid, w int) int {
	return s.P.Groups + gid*s.P.WorkersPerGroup + w
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	return fmt.Sprintf("altocumulus-%s-%s", s.P.Local, s.P.Iface)
}

// Deliver implements sched.Scheduler.
//
//altolint:hotpath
func (s *Scheduler) Deliver(r *rpcproto.Request) {
	s.startTicks()
	g := s.groups[s.steer.Steer(r)]
	if s.classes > 1 {
		// Heterogeneous groups: the NIC steers by class-oblivious hash,
		// so remap onto the groups serving the first phase's class
		// (deterministically, preserving the steerer's spread).
		cls := int(r.PhaseClass[0]) // 0 for unphased requests
		if cls < s.classes && int(g.class) != cls {
			lst := s.classGroups[cls]
			g = s.groups[lst[g.id%len(lst)]]
		}
		d := r.Service
		if r.Phased() {
			d = r.PhaseDur(g.class)
		}
		s.classMeters[g.class].ArrivalDur(d)
	}
	r.GroupHint = g.id
	s.Meter.Arrival(r)
	s.obs.OnEnqueue(r, g.id, g.netrx.Len())
	r.Enq = s.eng.Now()
	g.netrx.PushTail(r)
	s.dispatch(g)
}

// Stop halts the periodic runtime (used by harnesses once the workload
// has drained, so the event queue can empty).
func (s *Scheduler) Stop() { s.stopped = true }

// QueueLens implements sched.Scheduler: the per-group NetRX lengths.
func (s *Scheduler) QueueLens() []int { return s.QueueLensInto(nil) }

// QueueLensInto implements sched.Scheduler.
//
//altolint:hotpath
func (s *Scheduler) QueueLensInto(buf []int) []int {
	buf = buf[:0]
	for _, g := range s.groups {
		buf = append(buf, g.netrx.Len()) //altolint:allow hotalloc scratch reuse: buf grows to Groups once, then steady-state zero-alloc
	}
	return buf
}

// Cores returns every worker core (managers excluded: they do not serve
// RPCs) for utilisation reporting.
func (s *Scheduler) Cores() []*exec.Core {
	out := make([]*exec.Core, 0, s.P.Groups*s.P.WorkersPerGroup)
	for _, g := range s.groups {
		out = append(out, g.workers...)
	}
	return out
}

// GroupView returns group gid's synchronized queue-length vector
// (instrumentation for the Fig. 9 snapshot analysis).
func (s *Scheduler) GroupView(gid int) []int {
	out := make([]int, len(s.groups[gid].view))
	copy(out, s.groups[gid].view)
	return out
}

// dispatch hands NetRX heads to workers below their depth bound. ACint
// pushes in hardware at LLC speed; ACrss serializes each handoff on the
// manager core through the coherence protocol.
//
//altolint:hotpath
func (s *Scheduler) dispatch(g *group) {
	for g.netrx.Len() > 0 {
		w := s.freeWorker(g)
		if w < 0 {
			return
		}
		r := g.netrx.PopHead()
		g.claimed[w]++
		if s.probe != nil {
			s.probe.OnDequeue(r, g.id, false)
			n := g.claimed[w] + g.local[w].Len()
			if g.workers[w].Busy() {
				n++
			}
			s.probe.OnOutstanding(r, g.workers[w].ID, n, s.P.WorkerDepth)
		}
		var delay sim.Time
		switch s.P.Local {
		case DispatchSoftware:
			now := s.eng.Now()
			start := now
			if g.mgrFree > start {
				start = g.mgrFree
			}
			g.mgrFree = start + s.Cost.CoherenceMsg
			delay = (start - now) + s.Cost.CoherenceMsg
		default:
			// ACint: the integrated hardware pushes descriptors at
			// register speed (§X: ALTOCUMULUS inherits nanoPU's direct
			// register messaging for message transfer).
			delay = s.Cost.RegisterXfer
		}
		s.eng.AfterArg(delay, g.landFns[w], r, 0)
	}
}

// dispatchLand completes a manager-to-worker handoff: the request joins
// worker w's local queue.
//
//altolint:hotpath
func (s *Scheduler) dispatchLand(g *group, w int, r *rpcproto.Request) {
	g.claimed[w]--
	if s.probe != nil {
		s.probe.OnRequeue(r, s.localQueueID(g.id, w), sched.RequeueTransfer, g.local[w].Len())
	}
	g.local[w].PushTail(r)
	s.tryStart(g, w)
}

// freeWorker returns the least-loaded worker with outstanding count
// (running + local queue + in-flight dispatches) below WorkerDepth.
func (s *Scheduler) freeWorker(g *group) int {
	best, bestN := -1, s.P.WorkerDepth
	for w := range g.workers {
		n := g.claimed[w] + g.local[w].Len()
		if g.workers[w].Busy() {
			n++
		}
		if n < bestN {
			best, bestN = w, n
		}
	}
	return best
}

//altolint:hotpath
func (s *Scheduler) tryStart(g *group, w int) {
	if g.workers[w].Busy() || g.local[w].Len() == 0 {
		return
	}
	r := g.local[w].PopHead()
	if s.probe != nil {
		s.probe.OnDequeue(r, s.localQueueID(g.id, w), false)
		s.probe.OnRun(r, g.workers[w].ID)
	}
	g.workers[w].Start(r, 0, g.doneFns[w], nil)
}

// msgSend computes the injection-complete and arrival delays of one
// runtime message. With the hardware mechanism, messages ride the NoC at
// 3 ns/hop with link serialization; under the SoftwareMessaging ablation
// (case study 1's runtime-only configuration) every message is a
// shared-cache exchange — two to three cache-line transfers — and also
// occupies the sending manager core.
func (s *Scheduler) msgSend(g *group, dstTile, size int) (injectDone, arrive sim.Time) {
	if !s.P.SoftwareMessaging {
		return s.noc.Send(s.eng.Now(), g.tile, dstTile, size)
	}
	now := s.eng.Now()
	if g.mgrFree < now {
		g.mgrFree = now
	}
	g.mgrFree += s.Cost.CacheMiss
	d := 3 * s.Cost.CacheMiss
	return (g.mgrFree - now), (g.mgrFree - now) + d
}

// startTicks begins the periodic runtime on every manager core on first
// delivery.
func (s *Scheduler) startTicks() {
	if s.ticking || s.stopped {
		return
	}
	s.ticking = true
	for _, g := range s.groups {
		// g.pr.Period is the class period (== Params.Period when
		// homogeneous or ClassPeriods is nil).
		s.eng.After(g.pr.Period, g.tickFn)
	}
}

// tick is one iteration of Algorithm 1 on manager g.
func (s *Scheduler) tick(g *group) {
	if s.stopped {
		return
	}
	s.Stats.Ticks++

	// Close the measurement window once per period (first manager only).
	if g.id == 0 {
		s.Meter.Tick(s.eng.Now())
	}
	// With heterogeneous groups each class has its own meter, ticked by
	// the class's first group (class periods may differ).
	if s.plan != nil && g.id == s.classGroups[g.class][0] {
		s.classMeters[g.class].Tick(s.eng.Now())
	}

	// Charge the runtime's software/hardware interface cost on the
	// manager core: one register read per remote queue length, a status
	// read, a config write, plus the threshold computation. The cost
	// arithmetic lives in policy so the live runtime charges identically.
	runtimeCost := sim.Time(policy.TickCost(s.P.Groups, s.Cost.Policy(), s.P.Iface))
	now := s.eng.Now()
	if g.mgrFree < now {
		g.mgrFree = now
	}
	g.mgrFree += runtimeCost

	// Schedule the next iteration. A software runtime cannot iterate
	// faster than its own execution; when the configured period is
	// shorter than the runtime cost (e.g. MSR ops at a 100 ns period) the
	// effective period stretches, capping the runtime's manager-core duty
	// cycle at 50% so request dispatch is never starved. Rearm rides the
	// engine's periodic fast path: the tick keeps its slab slot and
	// bucket bookkeeping instead of a delete+insert each period.
	next := sim.Time(policy.EffectivePeriod(policy.Duration(g.pr.Period), policy.Duration(runtimeCost)))
	s.eng.Rearm(next)

	// Refresh own view entry and broadcast UPDATE to the managers of
	// this group's class peers (all managers when homogeneous). Each
	// UPDATE rides an arg-event (destination group + packed sender peer
	// index/qlen) so the broadcast allocates nothing.
	qlen := g.netrx.Len()
	g.rank.Set(g.peerIdx, qlen)
	for _, pid := range g.peers {
		h := s.groups[pid]
		if h.id == g.id {
			continue
		}
		_, arrive := s.msgSend(g, h.tile, hwmsg.UpdateWireSize)
		s.Stats.UpdatesSent++
		s.eng.AtArg(now+arrive, updateLand, h, int64(g.peerIdx)<<32|int64(qlen))
	}

	// Threshold from the analytical model under the measured load (or
	// the naive k*L+1 bound under the NaiveThreshold ablation). With
	// heterogeneous groups the threshold is per class: the class's own
	// meter and group count feed the class's model.
	var t int
	if s.plan != nil {
		cls := int(g.class)
		t = s.plan.Threshold(cls, s.classMeters[cls].OfferedPerGroup(len(s.classGroups[cls])))
	} else {
		t = s.Model.Threshold(s.Meter.OfferedPerGroup(s.P.Groups))
	}
	if s.P.NaiveThreshold {
		t = s.Model.UpperBound()
	}
	g.pr.Threshold = t

	// Mark predicted SLO violators: every request queued beyond T.
	if qlen > t {
		for i := t; i < qlen; i++ {
			r := g.netrx.At(i)
			if !r.Predicted {
				r.Predicted = true
				s.Stats.PredictedReqs++
			}
		}
	}

	if s.P.DisableMigration || len(g.peers) < 2 {
		return
	}
	// decide works in peer-index space; map destinations back to group
	// ids and hand each its synchronized view entry.
	dests := s.decide(g, t, qlen)
	for _, d := range dests {
		s.sendMigrate(g, s.groups[g.peers[d]], g.view[d], g.pr.BatchSize())
	}
}

// decide implements predict() by delegating to policy.DecideRanked: the
// migration destination queue ids per the threshold condition and the
// Hill/Valley/Pairing pattern classification of §VI. core's only job is
// feeding the synchronized view — with the rank permutation repaired
// incrementally from the tick's dirty set — and folding the outcome
// into Stats.
func (s *Scheduler) decide(g *group, t, qlen int) []int {
	g.rank.Set(g.peerIdx, qlen)
	trigger, pattern, dests := policy.DecideRanked(g.view, g.rank.Order(), g.peerIdx, t, g.pr.Bulk, g.pr.Concurrency,
		!s.P.DisablePatterns, s.destScratch)
	switch trigger {
	case policy.TriggerPattern:
		switch pattern {
		case PatternHill:
			s.Stats.HillEvents++
		case PatternValley:
			s.Stats.ValleyEvents++
		case PatternPairing:
			s.Stats.PairingEvents++
		}
	case policy.TriggerThreshold:
		s.Stats.ThresholdEvts++
	}
	return dests
}

// sendMigrate builds and injects one MIGRATE of up to batch requests from
// g's NetRX tail toward dst (§V-A message walk-through). dstView is g's
// synchronized view of dst's queue length (peer-indexed, supplied by the
// caller).
func (s *Scheduler) sendMigrate(g, dst *group, dstView, batch int) {
	if dst.id == g.id {
		return
	}
	// Algorithm 1 line 8: forbid migrations that would leave the
	// destination no better off.
	srcLen := g.netrx.Len()
	if !s.P.DisableGuard && !policy.GuardAllows(srcLen, dstView, batch) {
		s.Stats.GuardSkips++
		return
	}
	if s.probe != nil {
		s.probe.OnMigrate(g.id, dst.id, srcLen, dstView, batch, !s.P.DisableGuard)
	}
	// Collect migratable requests. The paper's policy takes them from
	// the tail (deepest-queued: the predicted violators); SelectHead is
	// the ablation counterpoint. policy.MigratableCount applies the
	// migrate-once restriction: collection stops at the first
	// already-migrated candidate.
	fromTail := s.P.Select != SelectHead
	count := policy.MigratableCount(srcLen, batch, func(i int) bool {
		var r *rpcproto.Request
		if fromTail {
			r = g.netrx.At(srcLen - 1 - i)
		} else {
			r = g.netrx.At(i)
		}
		// Migrate-once is scoped per phase: the executor clears the
		// latch at every phase boundary (policy.CanMigrate).
		return !policy.CanMigrate(r.Migrated, s.P.AllowRemigration)
	})
	reqs := make([]*rpcproto.Request, 0, batch)
	for len(reqs) < count {
		var r *rpcproto.Request
		if fromTail {
			r = g.netrx.PopTail()
		} else {
			r = g.netrx.PopHead()
		}
		reqs = append(reqs, r)
		if s.probe != nil {
			s.probe.OnDequeue(r, g.id, fromTail)
		}
	}
	if len(reqs) == 0 {
		return
	}
	putBack := func() {
		// Return the requests to the tail; exact original positions are
		// not recoverable for head-selected batches, and the hardware
		// would re-enqueue at the tail regardless.
		for i := len(reqs) - 1; i >= 0; i-- {
			if s.probe != nil {
				s.probe.OnRequeue(reqs[i], g.id, sched.RequeueNack, g.netrx.Len())
			}
			g.netrx.PushTail(reqs[i])
		}
	}
	descs := make([]rpcproto.Descriptor, len(reqs))
	for i, r := range reqs {
		descs[i] = rpcproto.DescriptorFor(r)
	}
	if err := g.mr.Stage(descs); err != nil {
		s.Stats.MRFullAborts++
		putBack()
		return
	}
	m := &hwmsg.Migrate{SrcMid: g.id, DstMid: dst.id, Descs: descs, Reqs: reqs}
	if err := g.send.Push(m); err != nil {
		s.Stats.FIFOFull++
		g.mr.Invalidate(len(descs))
		putBack()
		return
	}
	s.Stats.Migrations++
	now := s.eng.Now()
	injectDone, arrive := s.msgSend(g, dst.tile, m.WireSize())
	// The send-FIFO entry frees once the migrator has injected the batch
	// into the NoC.
	s.eng.At(now+injectDone, func() { g.send.Pop() })
	s.eng.At(now+arrive, func() { s.receiveMigrate(g, dst, m) })
}

// receiveMigrate is the destination controller's path: validate, admit
// into the receive FIFO or NACK, drain into the NetRX tail, ACK.
func (s *Scheduler) receiveMigrate(src, dst *group, m *hwmsg.Migrate) {
	now := s.eng.Now()
	if err := dst.recv.Push(m); err != nil {
		// Destination full: NACK. The source does not replay; the
		// requests return to the source NetRX tail when the NACK lands
		// (they logically never left the source MRs).
		s.Stats.NackedBatches++
		s.Stats.NackedReqs += uint64(len(m.Reqs))
		_, backAt := s.msgSend(dst, src.tile, hwmsg.AckWireSize)
		s.eng.At(now+backAt, func() {
			src.mr.Invalidate(len(m.Descs))
			for _, r := range m.Reqs {
				if s.probe != nil {
					s.probe.OnRequeue(r, src.id, sched.RequeueNack, src.netrx.Len())
				}
				src.netrx.PushTail(r)
			}
			s.dispatch(src)
		})
		return
	}
	// Migrator drains the receive FIFO into the NetRX: one register move
	// per descriptor.
	drain := sim.Time(len(m.Descs)) * sim.Nanosecond
	s.eng.After(drain, func() {
		dst.recv.Pop()
		for _, r := range m.Reqs {
			r.Migrated = true
			r.Enq = s.eng.Now()
			if s.probe != nil {
				s.probe.OnRequeue(r, dst.id, sched.RequeueMigrate, dst.netrx.Len())
			}
			dst.netrx.PushTail(r)
		}
		s.Stats.MigratedReqs += uint64(len(m.Reqs))
		s.dispatch(dst)
	})
	// ACK back to the source, which then invalidates its MR entries.
	_, ackAt := s.msgSend(dst, src.tile, hwmsg.AckWireSize)
	s.eng.At(now+ackAt, func() { src.mr.Invalidate(len(m.Descs)) })
}

// phaseAdvance is the executor's OnPhase seam (DESIGN.md §15), called
// at every non-final phase boundary of a phased request running on
// worker w of group g (r.Phase already advanced). Returning false keeps
// the next phase on the same worker, back to back; returning true means
// the request was taken off the worker and its next phase enqueued —
// after an offload delay when crossing groups — onto the NetRX of the
// group the forwarding policy picked for the phase's class.
//
//altolint:hotpath
func (s *Scheduler) phaseAdvance(g *group, w int, r *rpcproto.Request) bool {
	if s.P.Forward == ForwardStayLocal || s.classes <= 1 {
		s.Stats.PhaseStays++
		return false
	}
	cls := int(r.PhaseClass[r.Phase])
	if cls >= s.classes {
		// No group serves this class (profile broader than the machine):
		// documented fallback is to stay local.
		s.Stats.PhaseStays++
		return false
	}
	dst := s.forwardDest(g, cls)
	if s.phaseProbe != nil {
		s.phaseProbe.OnPhaseDone(r, g.workers[w].ID)
	}
	s.Stats.PhaseForwards++
	var delay sim.Time
	if dst != g {
		// Offload (transfer) cost is charged only when the phase
		// actually crosses groups.
		delay = r.PhaseOffload[r.Phase]
	}
	s.eng.AfterArg(delay, dst.phaseLandFn, r, 0)
	// The worker freed up the instant the phase completed: pull its next
	// local request, then let the group keep dispatching from NetRX.
	s.tryStart(g, w)
	s.dispatch(g)
	return true
}

// forwardDest picks the group to run a phase of class cls on, via the
// class's rack dispatcher: fresh NetRX depths are observed, then the
// configured policy (JSQ-in-class or pow-k-in-class) picks. The
// dispatcher's anti-herding correction covers back-to-back boundaries
// between observations.
//
//altolint:hotpath
func (s *Scheduler) forwardDest(g *group, cls int) *group {
	lst := s.classGroups[cls]
	if len(lst) == 1 {
		return s.groups[lst[0]]
	}
	now := policy.Duration(s.eng.Now())
	depths := s.classDepths[cls]
	for i, gid := range lst {
		depths[i] = s.groups[gid].netrx.Len()
	}
	d := s.classDisp[cls]
	d.ObserveAll(depths, now)
	dec := d.Pick(0, now, s.fwdRNG)
	return s.groups[lst[dec.Server]]
}

// phaseLand lands a forwarded phase on group g's NetRX: the request
// re-queues (RequeueForward) and the group's dispatch pulls it to a
// worker of the phase's class like any other arrival.
//
//altolint:hotpath
func (s *Scheduler) phaseLand(g *group, r *rpcproto.Request) {
	if s.probe != nil {
		s.probe.OnRequeue(r, g.id, sched.RequeueForward, g.netrx.Len())
	}
	r.Enq = s.eng.Now()
	if s.classMeters != nil {
		s.classMeters[g.class].ArrivalDur(r.PhaseDur(g.class))
	}
	g.netrx.PushTail(r)
	s.dispatch(g)
}

var _ sched.Scheduler = (*Scheduler)(nil)
