package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/hwmsg"
	"repro/internal/nic"
	"repro/internal/policy"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/topo"
)

// group is one manager core plus its worker cores (Fig. 5/6: a manager
// tile with MRs, PRs, FIFOs, migrator and controller, owning one NetRX
// queue).
type group struct {
	id      int
	tile    int // manager tile on the mesh
	workers []*exec.Core
	claimed []int // in-flight dispatches per worker
	local   []exec.Deque
	netrx   exec.Deque
	// view is the synchronized queue-length vector q (via UPDATE). It
	// aliases rank's live vector: every write goes through rank.Set so
	// the descending-rank permutation repairs incrementally — a tick
	// over G groups pays for the entries that changed since the last
	// tick, not for re-sorting all G (O(active), not O(cores)).
	view []int
	rank *policy.RankTracker

	mr   *hwmsg.MRFile
	send *hwmsg.FIFO
	recv *hwmsg.FIFO
	pr   hwmsg.ParamRegs

	mgrFree sim.Time // manager-core busy-until (runtime ops + software dispatch)

	// Callbacks bound once at construction so the per-request and
	// per-tick paths never allocate closures: tickFn is this manager's
	// Algorithm 1 iteration, landFns[w] the dispatch-landing arg-event
	// trampoline for worker w, doneFns[w] worker w's completion callback.
	tickFn  func()
	landFns []func(any, int64)
	doneFns []func(*rpcproto.Request)
}

// updateLand applies one UPDATE message landing at a manager: the
// destination group's synchronized view of the sender refreshes. It is a
// package-level arg-event trampoline (arg = destination group,
// n = sender id in the high 32 bits, observed queue length in the low
// 32), so the per-tick broadcast allocates nothing. The write goes
// through the rank tracker: an unchanged length is dropped, a changed
// one joins the dirty set the next decide() repairs.
func updateLand(arg any, n int64) {
	arg.(*group).rank.Set(int(n>>32), int(int32(n)))
}

// Scheduler is the ALTOCUMULUS runtime: Algorithm 1 running on every
// manager core, on top of the hardware messaging mechanism.
type Scheduler struct {
	P     Params
	Cost  fabric.CostModel
	Model *policy.ThresholdModel
	Meter *LoadMeter

	eng    *sim.Engine
	noc    *topo.NoC
	steer  *nic.Steerer
	groups []*group
	done   sched.Done
	obs    sched.Observer
	probe  sched.Probe

	Stats   Stats
	ticking bool
	stopped bool

	// Tick-time scratch (pre-sized to Groups so it never grows): the
	// destination set for the §VI pattern classification. The rank
	// permutation lives in each group's RankTracker.
	destScratch []int
}

// New builds an ALTOCUMULUS scheduler. steer distributes arrivals across
// the groups' NetRX queues (global d-FCFS); done fires at each request
// completion.
func New(eng *sim.Engine, p Params, cost fabric.CostModel, steer *nic.Steerer, done sched.Done) (*Scheduler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if steer.N != p.Groups {
		return nil, fmt.Errorf("core: steerer covers %d queues, want %d groups", steer.N, p.Groups)
	}
	mesh := topo.NewMesh(p.TotalCores())
	s := &Scheduler{
		P:     p,
		Cost:  cost,
		Model: policy.NewThresholdModel(p.WorkersPerGroup, p.SLOMultiplier),
		Meter: NewLoadMeter(),
		eng:   eng,
		noc:   topo.NewNoC(mesh),
		steer: steer,
		done:  done,
		obs:   sched.NopObserver{},

		destScratch: make([]int, 0, p.Groups),
	}
	tilesPerGroup := p.WorkersPerGroup + 1
	for gid := 0; gid < p.Groups; gid++ {
		g := &group{
			id:      gid,
			tile:    gid * tilesPerGroup, // manager occupies the group's first tile
			workers: make([]*exec.Core, p.WorkersPerGroup),
			claimed: make([]int, p.WorkersPerGroup),
			local:   make([]exec.Deque, p.WorkersPerGroup),
			rank:    policy.NewRankTracker(p.Groups),
			mr:      hwmsg.NewMRFile(p.MRCapacity),
			send:    hwmsg.NewFIFO(p.FIFOCapacity),
			recv:    hwmsg.NewFIFO(p.FIFOCapacity),
		}
		g.view = g.rank.View()
		g.pr.Configure(p.Period, p.Bulk, p.Concurrency)
		g.tickFn = func() { s.tick(g) }
		g.landFns = make([]func(any, int64), p.WorkersPerGroup)
		g.doneFns = make([]func(*rpcproto.Request), p.WorkersPerGroup)
		for w := 0; w < p.WorkersPerGroup; w++ {
			tile := g.tile + 1 + w
			g.workers[w] = exec.NewCore(eng, gid*p.WorkersPerGroup+w, tile)
			w := w
			g.landFns[w] = func(arg any, _ int64) { s.dispatchLand(g, w, arg.(*rpcproto.Request)) }
			g.doneFns[w] = func(r *rpcproto.Request) {
				if s.probe != nil {
					s.probe.OnComplete(r, g.workers[w].ID)
				}
				s.done(r)
				s.tryStart(g, w)
				s.dispatch(g)
			}
		}
		s.groups = append(s.groups, g)
	}
	return s, nil
}

// SetObserver installs instrumentation.
func (s *Scheduler) SetObserver(o sched.Observer) { s.obs, s.probe = o, sched.ProbeOf(o) }

// localQueueID is the probe id of worker (gid, w)'s local queue: the
// NetRX queues occupy ids 0..Groups-1, local queues follow in worker
// order (matching the worker's global core id plus the Groups offset).
func (s *Scheduler) localQueueID(gid, w int) int {
	return s.P.Groups + gid*s.P.WorkersPerGroup + w
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	return fmt.Sprintf("altocumulus-%s-%s", s.P.Local, s.P.Iface)
}

// Deliver implements sched.Scheduler.
//
//altolint:hotpath
func (s *Scheduler) Deliver(r *rpcproto.Request) {
	s.startTicks()
	g := s.groups[s.steer.Steer(r)]
	r.GroupHint = g.id
	s.Meter.Arrival(r)
	s.obs.OnEnqueue(r, g.id, g.netrx.Len())
	r.Enq = s.eng.Now()
	g.netrx.PushTail(r)
	s.dispatch(g)
}

// Stop halts the periodic runtime (used by harnesses once the workload
// has drained, so the event queue can empty).
func (s *Scheduler) Stop() { s.stopped = true }

// QueueLens implements sched.Scheduler: the per-group NetRX lengths.
func (s *Scheduler) QueueLens() []int { return s.QueueLensInto(nil) }

// QueueLensInto implements sched.Scheduler.
//
//altolint:hotpath
func (s *Scheduler) QueueLensInto(buf []int) []int {
	buf = buf[:0]
	for _, g := range s.groups {
		buf = append(buf, g.netrx.Len()) //altolint:allow hotalloc scratch reuse: buf grows to Groups once, then steady-state zero-alloc
	}
	return buf
}

// Cores returns every worker core (managers excluded: they do not serve
// RPCs) for utilisation reporting.
func (s *Scheduler) Cores() []*exec.Core {
	out := make([]*exec.Core, 0, s.P.Groups*s.P.WorkersPerGroup)
	for _, g := range s.groups {
		out = append(out, g.workers...)
	}
	return out
}

// GroupView returns group gid's synchronized queue-length vector
// (instrumentation for the Fig. 9 snapshot analysis).
func (s *Scheduler) GroupView(gid int) []int {
	out := make([]int, len(s.groups[gid].view))
	copy(out, s.groups[gid].view)
	return out
}

// dispatch hands NetRX heads to workers below their depth bound. ACint
// pushes in hardware at LLC speed; ACrss serializes each handoff on the
// manager core through the coherence protocol.
//
//altolint:hotpath
func (s *Scheduler) dispatch(g *group) {
	for g.netrx.Len() > 0 {
		w := s.freeWorker(g)
		if w < 0 {
			return
		}
		r := g.netrx.PopHead()
		g.claimed[w]++
		if s.probe != nil {
			s.probe.OnDequeue(r, g.id, false)
			n := g.claimed[w] + g.local[w].Len()
			if g.workers[w].Busy() {
				n++
			}
			s.probe.OnOutstanding(r, g.workers[w].ID, n, s.P.WorkerDepth)
		}
		var delay sim.Time
		switch s.P.Local {
		case DispatchSoftware:
			now := s.eng.Now()
			start := now
			if g.mgrFree > start {
				start = g.mgrFree
			}
			g.mgrFree = start + s.Cost.CoherenceMsg
			delay = (start - now) + s.Cost.CoherenceMsg
		default:
			// ACint: the integrated hardware pushes descriptors at
			// register speed (§X: ALTOCUMULUS inherits nanoPU's direct
			// register messaging for message transfer).
			delay = s.Cost.RegisterXfer
		}
		s.eng.AfterArg(delay, g.landFns[w], r, 0)
	}
}

// dispatchLand completes a manager-to-worker handoff: the request joins
// worker w's local queue.
//
//altolint:hotpath
func (s *Scheduler) dispatchLand(g *group, w int, r *rpcproto.Request) {
	g.claimed[w]--
	if s.probe != nil {
		s.probe.OnRequeue(r, s.localQueueID(g.id, w), sched.RequeueTransfer, g.local[w].Len())
	}
	g.local[w].PushTail(r)
	s.tryStart(g, w)
}

// freeWorker returns the least-loaded worker with outstanding count
// (running + local queue + in-flight dispatches) below WorkerDepth.
func (s *Scheduler) freeWorker(g *group) int {
	best, bestN := -1, s.P.WorkerDepth
	for w := range g.workers {
		n := g.claimed[w] + g.local[w].Len()
		if g.workers[w].Busy() {
			n++
		}
		if n < bestN {
			best, bestN = w, n
		}
	}
	return best
}

//altolint:hotpath
func (s *Scheduler) tryStart(g *group, w int) {
	if g.workers[w].Busy() || g.local[w].Len() == 0 {
		return
	}
	r := g.local[w].PopHead()
	if s.probe != nil {
		s.probe.OnDequeue(r, s.localQueueID(g.id, w), false)
		s.probe.OnRun(r, g.workers[w].ID)
	}
	g.workers[w].Start(r, 0, g.doneFns[w], nil)
}

// msgSend computes the injection-complete and arrival delays of one
// runtime message. With the hardware mechanism, messages ride the NoC at
// 3 ns/hop with link serialization; under the SoftwareMessaging ablation
// (case study 1's runtime-only configuration) every message is a
// shared-cache exchange — two to three cache-line transfers — and also
// occupies the sending manager core.
func (s *Scheduler) msgSend(g *group, dstTile, size int) (injectDone, arrive sim.Time) {
	if !s.P.SoftwareMessaging {
		return s.noc.Send(s.eng.Now(), g.tile, dstTile, size)
	}
	now := s.eng.Now()
	if g.mgrFree < now {
		g.mgrFree = now
	}
	g.mgrFree += s.Cost.CacheMiss
	d := 3 * s.Cost.CacheMiss
	return (g.mgrFree - now), (g.mgrFree - now) + d
}

// startTicks begins the periodic runtime on every manager core on first
// delivery.
func (s *Scheduler) startTicks() {
	if s.ticking || s.stopped {
		return
	}
	s.ticking = true
	for _, g := range s.groups {
		s.eng.After(s.P.Period, g.tickFn)
	}
}

// tick is one iteration of Algorithm 1 on manager g.
func (s *Scheduler) tick(g *group) {
	if s.stopped {
		return
	}
	s.Stats.Ticks++

	// Close the measurement window once per period (first manager only).
	if g.id == 0 {
		s.Meter.Tick(s.eng.Now())
	}

	// Charge the runtime's software/hardware interface cost on the
	// manager core: one register read per remote queue length, a status
	// read, a config write, plus the threshold computation. The cost
	// arithmetic lives in policy so the live runtime charges identically.
	runtimeCost := sim.Time(policy.TickCost(s.P.Groups, s.Cost.Policy(), s.P.Iface))
	now := s.eng.Now()
	if g.mgrFree < now {
		g.mgrFree = now
	}
	g.mgrFree += runtimeCost

	// Schedule the next iteration. A software runtime cannot iterate
	// faster than its own execution; when the configured period is
	// shorter than the runtime cost (e.g. MSR ops at a 100 ns period) the
	// effective period stretches, capping the runtime's manager-core duty
	// cycle at 50% so request dispatch is never starved. Rearm rides the
	// engine's periodic fast path: the tick keeps its slab slot and
	// bucket bookkeeping instead of a delete+insert each period.
	next := sim.Time(policy.EffectivePeriod(policy.Duration(g.pr.Period), policy.Duration(runtimeCost)))
	s.eng.Rearm(next)

	// Refresh own view entry and broadcast UPDATE to the other managers.
	// Each UPDATE rides an arg-event (destination group + packed
	// sender/qlen) so the broadcast allocates nothing.
	qlen := g.netrx.Len()
	g.rank.Set(g.id, qlen)
	for _, h := range s.groups {
		if h.id == g.id {
			continue
		}
		_, arrive := s.msgSend(g, h.tile, hwmsg.UpdateWireSize)
		s.Stats.UpdatesSent++
		s.eng.AtArg(now+arrive, updateLand, h, int64(g.id)<<32|int64(qlen))
	}

	// Threshold from the analytical model under the measured load (or
	// the naive k*L+1 bound under the NaiveThreshold ablation).
	t := s.Model.Threshold(s.Meter.OfferedPerGroup(s.P.Groups))
	if s.P.NaiveThreshold {
		t = s.Model.UpperBound()
	}
	g.pr.Threshold = t

	// Mark predicted SLO violators: every request queued beyond T.
	if qlen > t {
		for i := t; i < qlen; i++ {
			r := g.netrx.At(i)
			if !r.Predicted {
				r.Predicted = true
				s.Stats.PredictedReqs++
			}
		}
	}

	if s.P.DisableMigration || s.P.Groups < 2 {
		return
	}
	dests := s.decide(g, t, qlen)
	for _, d := range dests {
		s.sendMigrate(g, s.groups[d], g.pr.BatchSize())
	}
}

// decide implements predict() by delegating to policy.DecideRanked: the
// migration destination queue ids per the threshold condition and the
// Hill/Valley/Pairing pattern classification of §VI. core's only job is
// feeding the synchronized view — with the rank permutation repaired
// incrementally from the tick's dirty set — and folding the outcome
// into Stats.
func (s *Scheduler) decide(g *group, t, qlen int) []int {
	g.rank.Set(g.id, qlen)
	trigger, pattern, dests := policy.DecideRanked(g.view, g.rank.Order(), g.id, t, g.pr.Bulk, g.pr.Concurrency,
		!s.P.DisablePatterns, s.destScratch)
	switch trigger {
	case policy.TriggerPattern:
		switch pattern {
		case PatternHill:
			s.Stats.HillEvents++
		case PatternValley:
			s.Stats.ValleyEvents++
		case PatternPairing:
			s.Stats.PairingEvents++
		}
	case policy.TriggerThreshold:
		s.Stats.ThresholdEvts++
	}
	return dests
}

// sendMigrate builds and injects one MIGRATE of up to batch requests from
// g's NetRX tail toward dst (§V-A message walk-through).
func (s *Scheduler) sendMigrate(g, dst *group, batch int) {
	if dst.id == g.id {
		return
	}
	// Algorithm 1 line 8: forbid migrations that would leave the
	// destination no better off.
	srcLen, dstView := g.netrx.Len(), g.view[dst.id]
	if !s.P.DisableGuard && !policy.GuardAllows(srcLen, dstView, batch) {
		s.Stats.GuardSkips++
		return
	}
	if s.probe != nil {
		s.probe.OnMigrate(g.id, dst.id, srcLen, dstView, batch, !s.P.DisableGuard)
	}
	// Collect migratable requests. The paper's policy takes them from
	// the tail (deepest-queued: the predicted violators); SelectHead is
	// the ablation counterpoint. policy.MigratableCount applies the
	// migrate-once restriction: collection stops at the first
	// already-migrated candidate.
	fromTail := s.P.Select != SelectHead
	count := policy.MigratableCount(srcLen, batch, func(i int) bool {
		var r *rpcproto.Request
		if fromTail {
			r = g.netrx.At(srcLen - 1 - i)
		} else {
			r = g.netrx.At(i)
		}
		return r.Migrated && !s.P.AllowRemigration
	})
	reqs := make([]*rpcproto.Request, 0, batch)
	for len(reqs) < count {
		var r *rpcproto.Request
		if fromTail {
			r = g.netrx.PopTail()
		} else {
			r = g.netrx.PopHead()
		}
		reqs = append(reqs, r)
		if s.probe != nil {
			s.probe.OnDequeue(r, g.id, fromTail)
		}
	}
	if len(reqs) == 0 {
		return
	}
	putBack := func() {
		// Return the requests to the tail; exact original positions are
		// not recoverable for head-selected batches, and the hardware
		// would re-enqueue at the tail regardless.
		for i := len(reqs) - 1; i >= 0; i-- {
			if s.probe != nil {
				s.probe.OnRequeue(reqs[i], g.id, sched.RequeueNack, g.netrx.Len())
			}
			g.netrx.PushTail(reqs[i])
		}
	}
	descs := make([]rpcproto.Descriptor, len(reqs))
	for i, r := range reqs {
		descs[i] = rpcproto.DescriptorFor(r)
	}
	if err := g.mr.Stage(descs); err != nil {
		s.Stats.MRFullAborts++
		putBack()
		return
	}
	m := &hwmsg.Migrate{SrcMid: g.id, DstMid: dst.id, Descs: descs, Reqs: reqs}
	if err := g.send.Push(m); err != nil {
		s.Stats.FIFOFull++
		g.mr.Invalidate(len(descs))
		putBack()
		return
	}
	s.Stats.Migrations++
	now := s.eng.Now()
	injectDone, arrive := s.msgSend(g, dst.tile, m.WireSize())
	// The send-FIFO entry frees once the migrator has injected the batch
	// into the NoC.
	s.eng.At(now+injectDone, func() { g.send.Pop() })
	s.eng.At(now+arrive, func() { s.receiveMigrate(g, dst, m) })
}

// receiveMigrate is the destination controller's path: validate, admit
// into the receive FIFO or NACK, drain into the NetRX tail, ACK.
func (s *Scheduler) receiveMigrate(src, dst *group, m *hwmsg.Migrate) {
	now := s.eng.Now()
	if err := dst.recv.Push(m); err != nil {
		// Destination full: NACK. The source does not replay; the
		// requests return to the source NetRX tail when the NACK lands
		// (they logically never left the source MRs).
		s.Stats.NackedBatches++
		s.Stats.NackedReqs += uint64(len(m.Reqs))
		_, backAt := s.msgSend(dst, src.tile, hwmsg.AckWireSize)
		s.eng.At(now+backAt, func() {
			src.mr.Invalidate(len(m.Descs))
			for _, r := range m.Reqs {
				if s.probe != nil {
					s.probe.OnRequeue(r, src.id, sched.RequeueNack, src.netrx.Len())
				}
				src.netrx.PushTail(r)
			}
			s.dispatch(src)
		})
		return
	}
	// Migrator drains the receive FIFO into the NetRX: one register move
	// per descriptor.
	drain := sim.Time(len(m.Descs)) * sim.Nanosecond
	s.eng.After(drain, func() {
		dst.recv.Pop()
		for _, r := range m.Reqs {
			r.Migrated = true
			r.Enq = s.eng.Now()
			if s.probe != nil {
				s.probe.OnRequeue(r, dst.id, sched.RequeueMigrate, dst.netrx.Len())
			}
			dst.netrx.PushTail(r)
		}
		s.Stats.MigratedReqs += uint64(len(m.Reqs))
		s.dispatch(dst)
	})
	// ACK back to the source, which then invalidates its MR entries.
	_, ackAt := s.msgSend(dst, src.tile, hwmsg.AckWireSize)
	s.eng.At(now+ackAt, func() { src.mr.Invalidate(len(m.Descs)) })
}

var _ sched.Scheduler = (*Scheduler)(nil)
