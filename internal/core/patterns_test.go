package core

import (
	"testing"
	"testing/quick"
)

func TestClassifyWalkThroughExample(t *testing.T) {
	// §VI walk-through: Bulk=40, Concurrency=4, q=[30,30,70,30]: a Hill.
	// The 3rd queue's manager triggers migrations to QD={0,1,3}.
	view := []int{30, 30, 70, 30}
	pattern, dests := Classify(view, 2, 40, 4)
	if pattern != PatternHill {
		t.Fatalf("pattern = %v, want hill", pattern)
	}
	if len(dests) != 3 {
		t.Fatalf("dests = %v", dests)
	}
	seen := map[int]bool{}
	for _, d := range dests {
		if d == 2 {
			t.Fatal("hill owner cannot be a destination")
		}
		seen[d] = true
	}
	if !seen[0] || !seen[1] || !seen[3] {
		t.Fatalf("QD = %v, want {0,1,3}", dests)
	}
	// Other managers detect the Hill but take no action.
	for _, self := range []int{0, 1, 3} {
		p, d := Classify(view, self, 40, 4)
		if p != PatternHill || len(d) != 0 {
			t.Fatalf("manager %d: %v %v", self, p, d)
		}
	}
}

func TestClassifyValley(t *testing.T) {
	// One dip: everyone else sends one MIGRATE toward it.
	view := []int{100, 100, 100, 20}
	for self := 0; self < 3; self++ {
		p, d := Classify(view, self, 40, 4)
		if p != PatternValley {
			t.Fatalf("manager %d pattern = %v", self, p)
		}
		if len(d) != 1 || d[0] != 3 {
			t.Fatalf("manager %d dests = %v", self, d)
		}
	}
	// The dip's owner does nothing.
	if p, d := Classify(view, 3, 40, 4); p != PatternValley || len(d) != 0 {
		t.Fatalf("dip owner: %v %v", p, d)
	}
}

func TestClassifyPairing(t *testing.T) {
	// Gradual slope: no single peak or dip, but max-min >= bulk.
	view := []int{90, 70, 50, 30}
	// Longest (0) pairs with shortest (3); second longest (1) with
	// second shortest (2).
	p, d := Classify(view, 0, 40, 4)
	if p != PatternPairing || len(d) != 1 || d[0] != 3 {
		t.Fatalf("manager 0: %v %v", p, d)
	}
	p, d = Classify(view, 1, 40, 4)
	if p != PatternPairing {
		t.Fatalf("manager 1 pattern = %v", p)
	}
	// Manager 1 pairs with queue 2 only when conc >= 2 and the pair is
	// strictly shorter.
	if len(d) == 1 && d[0] != 2 {
		t.Fatalf("manager 1 dests = %v", d)
	}
	// The shortest queues do not send.
	if _, d := Classify(view, 3, 40, 4); len(d) != 0 {
		t.Fatalf("manager 3 dests = %v", d)
	}
}

func TestClassifyBalanced(t *testing.T) {
	view := []int{50, 52, 49, 51}
	for self := range view {
		if p, d := Classify(view, self, 16, 4); p != PatternNone || len(d) != 0 {
			t.Fatalf("balanced view classified %v %v", p, d)
		}
	}
}

func TestClassifyDegenerate(t *testing.T) {
	if p, d := Classify([]int{5}, 0, 16, 4); p != PatternNone || d != nil {
		t.Fatal("single queue")
	}
	if p, _ := Classify([]int{5, 5}, -1, 16, 4); p != PatternNone {
		t.Fatal("bad self")
	}
	if p, _ := Classify([]int{100, 0}, 5, 16, 4); p != PatternNone {
		t.Fatal("out-of-range self")
	}
}

func TestClassifyConsistencyProperty(t *testing.T) {
	// Property: for any view, all managers agree on the pattern, exactly
	// one manager acts for a Hill, and destinations never include the
	// sender or exceed conc.
	f := func(raw []uint8, bulkRaw, concRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		view := make([]int, len(raw))
		for i, v := range raw {
			view[i] = int(v)
		}
		bulk := int(bulkRaw)%64 + 1
		conc := int(concRaw)%8 + 1

		var firstPattern Pattern
		hillActors := 0
		for self := range view {
			p, dests := Classify(view, self, bulk, conc)
			if self == 0 {
				firstPattern = p
			} else if p != firstPattern {
				return false
			}
			if len(dests) > conc {
				return false
			}
			for _, d := range dests {
				if d == self || d < 0 || d >= len(view) {
					return false
				}
			}
			if p == PatternHill && len(dests) > 0 {
				hillActors++
			}
		}
		if firstPattern == PatternHill && hillActors != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestOthers(t *testing.T) {
	view := []int{40, 10, 30, 20}
	got := ShortestOthers(view, 0, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("shortest = %v", got)
	}
	// Excludes self even when self is shortest.
	got = ShortestOthers(view, 1, 2)
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("shortest excl self = %v", got)
	}
}

func TestPatternStringer(t *testing.T) {
	want := map[Pattern]string{
		PatternNone: "none", PatternHill: "hill",
		PatternValley: "valley", PatternPairing: "pairing",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d = %q", p, p.String())
		}
	}
}
