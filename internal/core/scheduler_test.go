package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/stats"
)

func us(v float64) sim.Time { return sim.FromNanos(v * 1000) }

type testRig struct {
	eng   *sim.Engine
	s     *Scheduler
	lat   *stats.Sample
	nDone int
	byID  map[uint64]*rpcproto.Request
}

func newRig(t *testing.T, p Params, policy nic.SteerPolicy) *testRig {
	t.Helper()
	rig := &testRig{eng: sim.NewEngine(), lat: stats.NewSample(0), byID: map[uint64]*rpcproto.Request{}}
	steer := nic.NewSteerer(policy, p.Groups, sim.NewRNG(99))
	s, err := New(rig.eng, p, fabric.Default(), steer, func(r *rpcproto.Request) {
		rig.lat.Add(r.Latency())
		rig.nDone++
		if _, dup := rig.byID[r.ID]; dup {
			t.Fatalf("request %d completed twice", r.ID)
		}
		rig.byID[r.ID] = r
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.s = s
	return rig
}

// feed injects n Poisson arrivals and runs the engine until all complete.
func (rig *testRig) feed(t *testing.T, rate float64, svc dist.ServiceDist, n int, seed uint64) {
	t.Helper()
	arr := sim.NewRNG(seed)
	svcRNG := sim.NewRNG(seed + 1)
	var at sim.Time
	for i := 0; i < n; i++ {
		at += dist.Poisson{Rate: rate}.NextGap(arr)
		r := &rpcproto.Request{
			ID: uint64(i), Conn: uint32(arr.Intn(256)), Arrival: at,
			Service: svc.Sample(svcRNG), Size: 300,
		}
		tAt := at
		rig.eng.At(tAt, func() { rig.s.Deliver(r) })
	}
	// Chunked run: the periodic runtime keeps the event queue non-empty,
	// so run until all requests have completed.
	deadline := 200 * sim.Millisecond
	for rig.nDone < n && rig.eng.Now() < deadline {
		rig.eng.Run(rig.eng.Now() + sim.Millisecond)
	}
	rig.s.Stop()
	if rig.nDone != n {
		t.Fatalf("completed %d of %d", rig.nDone, n)
	}
}

func TestValidate(t *testing.T) {
	good := DefaultParams(4, 15)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{},
		{Groups: 1},
		{Groups: 1, WorkersPerGroup: 1},
		{Groups: 1, WorkersPerGroup: 1, Period: sim.Nanosecond},
		{Groups: 1, WorkersPerGroup: 1, Period: sim.Nanosecond, Bulk: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d validated", i)
		}
	}
	if got := good.TotalCores(); got != 64 {
		t.Fatalf("TotalCores = %d", got)
	}
}

func TestNewRejectsMismatchedSteerer(t *testing.T) {
	eng := sim.NewEngine()
	steer := nic.NewSteerer(nic.SteerRoundRobin, 3, nil)
	if _, err := New(eng, DefaultParams(4, 4), fabric.Default(), steer, func(*rpcproto.Request) {}); err == nil {
		t.Fatal("expected steerer/groups mismatch error")
	}
}

func TestSingleGroupBasicService(t *testing.T) {
	p := DefaultParams(1, 4)
	rig := newRig(t, p, nic.SteerRoundRobin)
	rig.feed(t, 1e6, dist.Fixed{V: us(1)}, 2000, 1)
	// Low load: latency ~ service + dispatch (LLC 30ns).
	if got := rig.lat.P50(); got < us(1) || got > us(1.2) {
		t.Fatalf("p50 = %v", got)
	}
	if rig.s.Stats.Migrations != 0 {
		t.Fatal("single group must never migrate")
	}
}

func TestConservationUnderMigrationPressure(t *testing.T) {
	// Overload one group via connection skew; migrations rebalance.
	// Every request must complete exactly once despite NACKs/aborts.
	p := DefaultParams(4, 4)
	p.Period = 100 * sim.Nanosecond
	p.Bulk = 8
	p.Concurrency = 4
	p.FIFOCapacity = 8 // small, to force FIFO-full aborts
	p.MRCapacity = 16
	rig := newRig(t, p, nic.SteerConnection)
	rig.feed(t, 12e6, dist.Exponential{M: us(1)}, 20000, 3)
	if rig.s.Stats.Migrations == 0 {
		t.Fatal("expected migrations under skewed load")
	}
	if rig.s.Stats.MigratedReqs == 0 {
		t.Fatal("no requests migrated")
	}
}

func TestMigrationImprovesTailUnderSkew(t *testing.T) {
	// RSS connection steering sends hot flows to one group. With
	// migration disabled the victim group's tail explodes; with the
	// runtime on, the tail improves substantially.
	run := func(disable bool) sim.Time {
		p := DefaultParams(4, 4)
		p.DisableMigration = disable
		rig := newRig(t, p, nic.SteerConnection)
		// Skew: all requests from 4 connections -> at most 4 of 16 queues.
		arr := sim.NewRNG(7)
		svcRNG := sim.NewRNG(8)
		var at sim.Time
		const n = 8000
		for i := 0; i < n; i++ {
			at += dist.Poisson{Rate: 10e6}.NextGap(arr)
			r := &rpcproto.Request{
				ID: uint64(i), Conn: uint32(i % 4), Arrival: at,
				Service: dist.Exponential{M: us(1)}.Sample(svcRNG), Size: 300,
			}
			tAt := at
			rig.eng.At(tAt, func() { rig.s.Deliver(r) })
		}
		for rig.nDone < n && rig.eng.Now() < 100*sim.Millisecond {
			rig.eng.Run(rig.eng.Now() + sim.Millisecond)
		}
		rig.s.Stop()
		if rig.nDone != n {
			t.Fatalf("completed %d of %d (disable=%v)", rig.nDone, n, disable)
		}
		return rig.lat.P99()
	}
	without := run(true)
	with := run(false)
	if float64(with) > 0.5*float64(without) {
		t.Fatalf("migration did not help: p99 with=%v without=%v", with, without)
	}
}

func TestMigrateOnceRestriction(t *testing.T) {
	p := DefaultParams(2, 2)
	p.Period = 50 * sim.Nanosecond
	rig := newRig(t, p, nic.SteerConnection)
	rig.feed(t, 3.5e6, dist.Exponential{M: us(1)}, 15000, 11)
	// No request may be counted migrated more than once: migrated
	// requests stay put, so MigratedReqs <= delivered count.
	if rig.s.Stats.MigratedReqs > 15000 {
		t.Fatalf("migrated %d > delivered", rig.s.Stats.MigratedReqs)
	}
	for _, r := range rig.byID {
		_ = r.Migrated // flag readable; semantic checked by conservation
	}
}

func TestGuardSkipsUnprofitableMigrations(t *testing.T) {
	// With balanced load the guard should fire when threshold triggers
	// would otherwise bounce work between equally loaded queues.
	p := DefaultParams(4, 4)
	p.Period = 100 * sim.Nanosecond
	rig := newRig(t, p, nic.SteerRoundRobin) // perfectly balanced
	rig.feed(t, 14e6, dist.Exponential{M: us(1)}, 20000, 13)
	// Balanced RR load: patterns rarely trigger, and any threshold
	// trigger should usually be guarded away. Migrations should be rare
	// relative to total load.
	if rig.s.Stats.MigratedReqs > 2000 {
		t.Fatalf("balanced load migrated too much: %d", rig.s.Stats.MigratedReqs)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, Stats) {
		p := DefaultParams(4, 4)
		rig := newRig(t, p, nic.SteerConnection)
		rig.feed(t, 10e6, dist.Bimodal{Short: us(0.5), Long: us(50), PLong: 0.01}, 10000, 17)
		return rig.lat.P99(), rig.s.Stats
	}
	p1, s1 := run()
	p2, s2 := run()
	if p1 != p2 {
		t.Fatalf("p99 not deterministic: %v vs %v", p1, p2)
	}
	if s1 != s2 {
		t.Fatalf("stats not deterministic: %+v vs %+v", s1, s2)
	}
}

func TestSoftwareDispatchSerializesOnManager(t *testing.T) {
	// ACrss: the manager is a serial dispatch resource; ACint is not.
	// Under a simultaneous burst, software dispatch must be slower.
	run := func(local LocalDispatch) sim.Time {
		p := DefaultParams(1, 8)
		p.Local = local
		rig := newRig(t, p, nic.SteerRoundRobin)
		for i := 0; i < 8; i++ {
			r := &rpcproto.Request{ID: uint64(i), Arrival: 0, Service: us(1), Size: 300}
			rig.eng.At(0, func() { rig.s.Deliver(r) })
		}
		for rig.nDone < 8 {
			rig.eng.Run(rig.eng.Now() + sim.Microsecond)
		}
		rig.s.Stop()
		return rig.lat.Max()
	}
	hw := run(DispatchHardware)
	sw := run(DispatchSoftware)
	if sw <= hw {
		t.Fatalf("software dispatch should serialize: hw=%v sw=%v", hw, sw)
	}
}

func TestMSRInterfaceCostsMoreThanISA(t *testing.T) {
	// With the software dispatcher, MSR runtime ops steal manager time
	// from dispatch, raising tail latency under load versus ISA.
	run := func(iface fabric.Interface) sim.Time {
		p := DefaultParams(4, 4)
		p.Local = DispatchSoftware
		p.Iface = iface
		p.Period = 100 * sim.Nanosecond
		rig := newRig(t, p, nic.SteerConnection)
		rig.feed(t, 13e6, dist.Exponential{M: us(1)}, 20000, 23)
		return rig.lat.P99()
	}
	isa := run(fabric.InterfaceISA)
	msr := run(fabric.InterfaceMSR)
	if msr < isa {
		t.Fatalf("MSR should not beat ISA: isa=%v msr=%v", isa, msr)
	}
}

func TestPredictedMarking(t *testing.T) {
	p := DefaultParams(2, 2)
	rig := newRig(t, p, nic.SteerConnection)
	rig.feed(t, 3.8e6, dist.Exponential{M: us(1)}, 20000, 29)
	if rig.s.Stats.PredictedReqs == 0 {
		t.Fatal("overloaded system should predict some violators")
	}
	// Predicted flags must be visible on completed requests.
	n := 0
	for _, r := range rig.byID {
		if r.Predicted {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no completed request carries the Predicted flag")
	}
}

func TestQueueLensAndViews(t *testing.T) {
	p := DefaultParams(3, 2)
	rig := newRig(t, p, nic.SteerRoundRobin)
	if got := len(rig.s.QueueLens()); got != 3 {
		t.Fatalf("QueueLens size = %d", got)
	}
	if got := len(rig.s.GroupView(0)); got != 3 {
		t.Fatalf("GroupView size = %d", got)
	}
	if rig.s.Name() == "" {
		t.Fatal("name")
	}
}

func TestLoadMeter(t *testing.T) {
	m := NewLoadMeter()
	// 100 arrivals of 1us service over 100us -> 1 MRPS, A = 1 Erlang.
	for i := 0; i < 100; i++ {
		m.Arrival(&rpcproto.Request{Service: us(1)})
	}
	m.Tick(100 * sim.Microsecond)
	if m.Rate() < 0.9e6 || m.Rate() > 1.1e6 {
		t.Fatalf("rate = %v", m.Rate())
	}
	if got := m.OfferedPerGroup(1); got < 0.9 || got > 1.1 {
		t.Fatalf("offered = %v", got)
	}
	if got := m.OfferedPerGroup(2); got < 0.45 || got > 0.55 {
		t.Fatalf("offered/2 = %v", got)
	}
	if m.OfferedPerGroup(0) != 0 {
		t.Fatal("zero groups")
	}
	// Zero-length window must not divide by zero.
	m.Tick(100 * sim.Microsecond)
	// EWMA converges toward a new sustained rate.
	for w := 0; w < 50; w++ {
		for i := 0; i < 200; i++ {
			m.Arrival(&rpcproto.Request{Service: us(1)})
		}
		m.Tick(100*sim.Microsecond + sim.Time(w+1)*100*sim.Microsecond)
	}
	if m.Rate() < 1.8e6 {
		t.Fatalf("EWMA did not converge upward: %v", m.Rate())
	}
}

func TestLocalDispatchStringer(t *testing.T) {
	if DispatchHardware.String() != "hardware" || DispatchSoftware.String() != "software" {
		t.Fatal("stringer")
	}
}
