package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
)

// phasedReq builds a 3-phase request whose middle phase is affine to
// class 1 with a 4x speedup and an offload cost.
func phasedReq(id uint64, conn uint32, at sim.Time) *rpcproto.Request {
	r := &rpcproto.Request{ID: id, Conn: conn, Arrival: at, NumPhases: 3}
	durs := [3]sim.Time{100 * sim.Nanosecond, 400 * sim.Nanosecond, 100 * sim.Nanosecond}
	for i, d := range durs {
		r.PhaseSvc[i] = d
		r.PhaseAcc[i] = d
		r.Service += d
	}
	r.PhaseClass[1] = 1
	r.PhaseAcc[1] = 100 * sim.Nanosecond
	r.PhaseOffload[1] = 20 * sim.Nanosecond
	return r
}

// heteroParams is a 2-class machine: groups 0,1 general, group 2 an
// accelerator class.
func heteroParams(forward ForwardPolicy) Params {
	p := DefaultParams(3, 2)
	p.GroupClass = []uint8{0, 0, 1}
	p.Forward = forward
	p.ForwardSeed = 7
	return p
}

// runPhased drives n phased requests through a hetero scheduler with
// the full invariant checker attached and returns (scheduler, report).
func runPhased(t *testing.T, forward ForwardPolicy, n int) (*Scheduler, *check.Report) {
	t.Helper()
	eng := sim.NewEngine()
	p := heteroParams(forward)
	chk := check.New(check.Options{Expected: n})
	nDone := 0
	done := chk.WrapDone(func(r *rpcproto.Request) { nDone++ })
	steer := nic.NewSteerer(nic.SteerDirect, 3, nil)
	s, err := New(eng, p, fabric.Default(), steer, done)
	if err != nil {
		t.Fatal(err)
	}
	s.SetObserver(chk)
	var specs []check.QueueSpec
	for gid := 0; gid < 3; gid++ {
		specs = append(specs, check.QueueSpec{ID: gid, Core: -1, Lens: gid})
	}
	for gid := 0; gid < 3; gid++ {
		for w := 0; w < 2; w++ {
			specs = append(specs, check.QueueSpec{ID: 3 + gid*2 + w, Core: gid*2 + w, Lens: -1})
		}
	}
	chk.Attach(eng, specs, s.QueueLensInto)
	for i := 0; i < n; i++ {
		i := i
		eng.At(sim.Time(i)*50*sim.Nanosecond, func() {
			s.Deliver(phasedReq(uint64(i), uint32(i%2), eng.Now()))
		})
	}
	for nDone < n && eng.Now() < sim.Millisecond {
		eng.Run(eng.Now() + 10*sim.Microsecond)
	}
	s.Stop()
	if nDone != n {
		t.Fatalf("completed %d of %d", nDone, n)
	}
	return s, chk.Finalize()
}

// TestPhaseForwardLeastLoaded runs phased requests across a 2-class
// machine under the full checker: phases must forward to the
// accelerator group and back, with phase-order, conservation, and
// migrate-once-per-phase invariants green.
func TestPhaseForwardLeastLoaded(t *testing.T) {
	s, rep := runPhased(t, ForwardLeastLoaded, 40)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// Every request has 2 interior boundaries, all forwarded under
	// least-loaded (phase 1 to class 1, phase 2 back to class 0).
	if want := uint64(2 * 40); s.Stats.PhaseForwards != want {
		t.Errorf("PhaseForwards = %d, want %d", s.Stats.PhaseForwards, want)
	}
	if s.Stats.PhaseStays != 0 {
		t.Errorf("PhaseStays = %d, want 0", s.Stats.PhaseStays)
	}
}

// TestPhaseForwardPowK is the same drive under pow-k-in-class sampling.
func TestPhaseForwardPowK(t *testing.T) {
	s, rep := runPhased(t, ForwardPowK, 40)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if s.Stats.PhaseForwards == 0 {
		t.Error("pow-k forwarded nothing")
	}
}

// TestPhaseStayLocal: the stay-local baseline never forwards — chains
// run to completion on the landing group, at base (unaccelerated)
// durations unless the landing class happens to match.
func TestPhaseStayLocal(t *testing.T) {
	s, rep := runPhased(t, ForwardStayLocal, 40)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if s.Stats.PhaseForwards != 0 {
		t.Errorf("PhaseForwards = %d, want 0 under stay-local", s.Stats.PhaseForwards)
	}
	if want := uint64(2 * 40); s.Stats.PhaseStays != want {
		t.Errorf("PhaseStays = %d, want %d", s.Stats.PhaseStays, want)
	}
}

// TestPhaseAcceleratedFaster: offloading the affine phase to the
// accelerator class must beat running the chain locally at base speed.
func TestPhaseAcceleratedFaster(t *testing.T) {
	finish := func(forward ForwardPolicy) sim.Time {
		eng := sim.NewEngine()
		p := heteroParams(forward)
		var last sim.Time
		steer := nic.NewSteerer(nic.SteerDirect, 3, nil)
		s, err := New(eng, p, fabric.Default(), steer, func(r *rpcproto.Request) { last = r.Finish })
		if err != nil {
			t.Fatal(err)
		}
		eng.At(0, func() { s.Deliver(phasedReq(1, 0, 0)) })
		eng.Run(100 * sim.Microsecond)
		s.Stop()
		if last == 0 {
			t.Fatalf("%v: request never completed", forward)
		}
		return last
	}
	local := finish(ForwardStayLocal)
	acc := finish(ForwardLeastLoaded)
	// Stay-local: 600 ns of base work. Offloaded: 100 + 100 (accelerated)
	// + 100 plus two transfers — comfortably faster.
	if acc >= local {
		t.Errorf("accelerated chain %v not faster than local %v", acc, local)
	}
}

// TestHeteroValidate covers the new Params validation paths.
func TestHeteroValidate(t *testing.T) {
	p := DefaultParams(3, 2)
	p.GroupClass = []uint8{0, 0} // wrong length
	if err := p.Validate(); err == nil {
		t.Error("want error for GroupClass length mismatch")
	}
	p.GroupClass = []uint8{0, 0, 2} // class 1 unserved
	if err := p.Validate(); err == nil {
		t.Error("want error for a class with no serving group")
	}
	p.GroupClass = []uint8{0, 1, 1}
	p.ClassPeriods = []sim.Time{sim.Nanosecond} // wrong length
	if err := p.Validate(); err == nil {
		t.Error("want error for ClassPeriods length mismatch")
	}
	p.ClassPeriods = []sim.Time{sim.Nanosecond, 0}
	if err := p.Validate(); err == nil {
		t.Error("want error for zero class period")
	}
	p.ClassPeriods = []sim.Time{200 * sim.Nanosecond, 400 * sim.Nanosecond}
	if err := p.Validate(); err != nil {
		t.Errorf("valid hetero params rejected: %v", err)
	}
	if p.NumClasses() != 2 || p.ClassOf(0) != 0 || p.ClassOf(2) != 1 {
		t.Error("NumClasses/ClassOf")
	}
	for f, want := range map[ForwardPolicy]string{
		ForwardStayLocal: "stay-local", ForwardLeastLoaded: "least-loaded", ForwardPowK: "pow-k",
	} {
		if f.String() != want {
			t.Errorf("ForwardPolicy(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
	if sched.RequeueForward.String() != "forward" {
		t.Error("RequeueForward stringer")
	}
}

// TestClassPeriodsTick: a class with a slower period must tick less
// often than the default-period class.
func TestClassPeriodsTick(t *testing.T) {
	eng := sim.NewEngine()
	p := heteroParams(ForwardLeastLoaded)
	p.ClassPeriods = []sim.Time{200 * sim.Nanosecond, 1600 * sim.Nanosecond}
	steer := nic.NewSteerer(nic.SteerDirect, 3, nil)
	s, err := New(eng, p, fabric.Default(), steer, func(*rpcproto.Request) {})
	if err != nil {
		t.Fatal(err)
	}
	eng.At(0, func() { s.Deliver(phasedReq(1, 0, 0)) })
	eng.Run(50 * sim.Microsecond)
	s.Stop()
	// 3 groups: two in class 0 at 200 ns, one in class 1 at 1600 ns. If
	// all shared the fast period, ticks would be ~3/2 of the class-0
	// pair's count; the slow accelerator manager should contribute ~1/8.
	if s.Stats.Ticks == 0 {
		t.Fatal("no ticks")
	}
	perFast := 50 * sim.Microsecond / (200 * sim.Nanosecond)
	if s.Stats.Ticks > uint64(perFast)*5/2 {
		t.Errorf("ticks %d suggest the accelerator manager ticked at the fast period", s.Stats.Ticks)
	}
}
