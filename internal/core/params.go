// Package core implements the paper's primary contribution: the
// ALTOCUMULUS scheduler — a decentralized two-tier runtime (global
// d-FCFS across manager-led groups, local c-FCFS within a group) that
// proactively migrates predicted-SLO-violating RPCs between manager
// tiles using the hardware messaging mechanism of internal/hwmsg over
// the NoC of internal/topo (§III–§VI).
package core

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
)

// LocalDispatch selects how a manager hands requests to its workers.
type LocalDispatch int

const (
	// DispatchHardware is the ACint configuration: a hardware-terminated
	// integrated NIC pushes requests to workers at LLC speed without
	// occupying the manager core.
	DispatchHardware LocalDispatch = iota
	// DispatchSoftware is the ACrss configuration: the manager core
	// dispatches through the cache-coherence protocol (70 cycles per
	// message), serializing on the manager — its throughput ceiling is
	// ~28 MRPS at 2 GHz, as the paper notes.
	DispatchSoftware
)

func (d LocalDispatch) String() string {
	if d == DispatchSoftware {
		return "software"
	}
	return "hardware"
}

// SelectPolicy chooses which queued requests a MIGRATE carries — one of
// the "wide range of new scheduling policies" §XI says the software
// runtime can host without hardware changes.
type SelectPolicy int

const (
	// SelectTail migrates from the NetRX tail: the deepest-queued
	// requests, i.e. the predicted violators (the paper's policy).
	SelectTail SelectPolicy = iota
	// SelectHead migrates from the head: the oldest requests, which are
	// closest to their deadlines but also closest to being served —
	// included as a counterpoint policy for ablation.
	SelectHead
)

func (p SelectPolicy) String() string {
	if p == SelectHead {
		return "head"
	}
	return "tail"
}

// ForwardPolicy chooses the destination group when a finished phase of
// a multi-phase request must move to another core class (DESIGN.md
// §15). All policies fall back to staying local when no group serves
// the next phase's class.
type ForwardPolicy int

const (
	// ForwardStayLocal continues the next phase on the same worker even
	// when its class differs (run-to-completion; affine speedups apply
	// only when the classes happen to match). The degenerate baseline.
	ForwardStayLocal ForwardPolicy = iota
	// ForwardLeastLoaded enqueues the next phase onto the shortest NetRX
	// among the groups of its class (JSQ-in-class).
	ForwardLeastLoaded
	// ForwardPowK samples ForwardK groups of the class and picks the
	// shortest (pow-k-in-class, the rack dispatch machinery reused).
	ForwardPowK
)

func (f ForwardPolicy) String() string {
	switch f {
	case ForwardLeastLoaded:
		return "least-loaded"
	case ForwardPowK:
		return "pow-k"
	default:
		return "stay-local"
	}
}

// Params configures an ALTOCUMULUS scheduler. §III-A lists the system
// parameters (Concurrency, Period, Bulk); the rest describe the machine
// and enable the ablations DESIGN.md calls out.
type Params struct {
	Groups          int // number of manager cores (N)
	WorkersPerGroup int // worker cores per group (k)

	Period      sim.Time // interval between migration decisions (P)
	Bulk        int      // max requests batched per migration
	Concurrency int      // concurrent flows per migration

	MRCapacity   int // migration-register slots per manager tile
	FIFOCapacity int // send/receive FIFO descriptor entries (paper: 16)
	WorkerDepth  int // max outstanding requests per worker (1 = dispatch to idle only)

	SLOMultiplier float64 // L: SLO = L x mean service time

	Iface  fabric.Interface // ISA vs MSR software/hardware interface
	Local  LocalDispatch    // ACint vs ACrss local dispatch
	Select SelectPolicy     // which queued requests MIGRATEs carry

	// Ablation switches.
	SoftwareMessaging bool // case study 1: no hardware mechanism; UPDATE/MIGRATE travel via shared caches
	DisableMigration  bool // runtime ticks but never migrates (baseline replay)
	DisablePatterns   bool // threshold-only prediction, no Hill/Valley/Pairing
	DisableGuard      bool // drop Algorithm 1 line 8's q[j]-S < q[dst]+S check
	AllowRemigration  bool // lift the migrate-at-most-once restriction
	NaiveThreshold    bool // predict with T = k*L+1 instead of the Erlang-C model (§IV's naive baseline)

	// Heterogeneous core groups (DESIGN.md §15). GroupClass assigns a
	// hardware class to each group (nil = all class 0, the homogeneous
	// configuration; len must equal Groups and every class in 0..max
	// must be served by at least one group). Migration (UPDATE/MIGRATE)
	// is scoped to same-class peers; multi-phase requests move between
	// classes through the forwarding seam instead.
	GroupClass []uint8
	// Forward picks the destination group when a finished phase needs
	// another class. ForwardK is the pow-k sample size (default 2) and
	// ForwardSeed seeds its sampling RNG (the server harness defaults
	// it to the run seed).
	Forward     ForwardPolicy
	ForwardK    int
	ForwardSeed uint64
	// ClassPeriods optionally overrides the manager period per class
	// (len = number of classes, every entry > 0). Nil keeps Period for
	// every class.
	ClassPeriods []sim.Time
}

// GroupWidth is the paper's tile width: one manager core plus fifteen
// workers per group (§III). Machine sizes are expressed in multiples of
// it.
const GroupWidth = 16

// GroupLayout resolves a total core count into (groups,
// workersPerGroup) under the paper's fixed 16-core tiling. Counts that
// do not tile evenly are rejected with the remainder named, so a bad
// -cores flag fails loudly instead of silently stranding cores.
func GroupLayout(cores int) (groups, workersPerGroup int, err error) {
	if cores < GroupWidth {
		return 0, 0, fmt.Errorf("core: %d cores cannot form a %d-core group (need a positive multiple of %d)",
			cores, GroupWidth, GroupWidth)
	}
	if rem := cores % GroupWidth; rem != 0 {
		return 0, 0, fmt.Errorf("core: %d cores does not tile into %d-core groups: %d cores left over (use a multiple of %d)",
			cores, GroupWidth, rem, GroupWidth)
	}
	return cores / GroupWidth, GroupWidth - 1, nil
}

// DefaultParams returns the configuration the paper found robust for
// synthetic traffic (§VIII-C): Period 200 ns, Bulk 16, Concurrency 8.
func DefaultParams(groups, workersPerGroup int) Params {
	return Params{
		Groups:          groups,
		WorkersPerGroup: workersPerGroup,
		Period:          200 * sim.Nanosecond,
		Bulk:            16,
		Concurrency:     8,
		MRCapacity:      64,
		FIFOCapacity:    16,
		WorkerDepth:     1,
		SLOMultiplier:   10,
		Iface:           fabric.InterfaceISA,
		Local:           DispatchHardware,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.Groups < 1:
		return fmt.Errorf("core: Groups = %d, need >= 1", p.Groups)
	case p.WorkersPerGroup < 1:
		return fmt.Errorf("core: WorkersPerGroup = %d, need >= 1", p.WorkersPerGroup)
	case p.Period <= 0:
		return fmt.Errorf("core: Period = %v, need > 0", p.Period)
	case p.Bulk < 1:
		return fmt.Errorf("core: Bulk = %d, need >= 1", p.Bulk)
	case p.Concurrency < 1:
		return fmt.Errorf("core: Concurrency = %d, need >= 1", p.Concurrency)
	case p.MRCapacity < 1 || p.FIFOCapacity < 1:
		return fmt.Errorf("core: MR/FIFO capacities must be >= 1")
	case p.WorkerDepth < 1:
		return fmt.Errorf("core: WorkerDepth = %d, need >= 1", p.WorkerDepth)
	case p.SLOMultiplier <= 0:
		return fmt.Errorf("core: SLOMultiplier = %v, need > 0", p.SLOMultiplier)
	}
	if p.GroupClass != nil {
		if len(p.GroupClass) != p.Groups {
			return fmt.Errorf("core: GroupClass has %d entries for %d groups", len(p.GroupClass), p.Groups)
		}
		seen := make([]bool, p.NumClasses())
		for _, c := range p.GroupClass {
			seen[c] = true
		}
		for c, ok := range seen {
			if !ok {
				return fmt.Errorf("core: class %d has no serving group (classes must be dense 0..%d)", c, len(seen)-1)
			}
		}
	}
	if p.ForwardK < 0 {
		return fmt.Errorf("core: ForwardK = %d, need >= 0", p.ForwardK)
	}
	if p.ClassPeriods != nil {
		if n := p.NumClasses(); len(p.ClassPeriods) != n {
			return fmt.Errorf("core: ClassPeriods has %d entries for %d classes", len(p.ClassPeriods), n)
		}
		for c, d := range p.ClassPeriods {
			if d <= 0 {
				return fmt.Errorf("core: ClassPeriods[%d] = %v, need > 0", c, d)
			}
		}
	}
	return nil
}

// NumClasses returns the number of core classes: max(GroupClass)+1, or
// 1 when GroupClass is nil (homogeneous).
func (p Params) NumClasses() int {
	max := uint8(0)
	for _, c := range p.GroupClass {
		if c > max {
			max = c
		}
	}
	return int(max) + 1
}

// ClassOf returns the class of group g.
func (p Params) ClassOf(g int) uint8 {
	if p.GroupClass == nil {
		return 0
	}
	return p.GroupClass[g]
}

// TotalCores returns the core count including managers.
func (p Params) TotalCores() int { return p.Groups * (p.WorkersPerGroup + 1) }

// Stats counts runtime and messaging activity for the effectiveness and
// overhead analyses (Fig. 11, Fig. 12).
type Stats struct {
	Ticks         uint64 // runtime periods executed (across managers)
	UpdatesSent   uint64 // UPDATE messages injected
	Migrations    uint64 // MIGRATE messages injected
	MigratedReqs  uint64 // requests that changed group
	NackedBatches uint64 // MIGRATE rejected at destination
	NackedReqs    uint64 // requests bounced back by NACK
	MRFullAborts  uint64 // migrations aborted: MR staging full
	FIFOFull      uint64 // migrations aborted: send FIFO full
	GuardSkips    uint64 // destinations skipped by Algorithm 1 line 8
	PredictedReqs uint64 // requests marked as predicted SLO violators
	HillEvents    uint64
	ValleyEvents  uint64
	PairingEvents uint64
	ThresholdEvts uint64 // threshold-exceeded trigger events

	PhaseForwards uint64 // phase boundaries forwarded to another group
	PhaseStays    uint64 // phase boundaries continued on the same worker
}
