package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/policy"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// recordVectors runs a real scheduler under deterministic skewed bursts
// and samples every manager's synchronized queue-length view each
// period, producing the recorded corpus the differential test replays.
func recordVectors(t *testing.T) [][]int {
	t.Helper()
	const groups = 6
	eng := sim.NewEngine()
	p := DefaultParams(groups, 2)
	p.Period = 100 * sim.Nanosecond
	steer := nic.NewSteerer(nic.SteerDirect, groups, nil)
	s, err := New(eng, p, fabric.Default(), steer, func(*rpcproto.Request) {})
	if err != nil {
		t.Fatal(err)
	}

	// Rotating hot group: bursts land on group (burst # mod groups) with
	// service times slow enough that backlogs persist into several
	// ticks, so the sampled views include hills, valleys and staircases.
	var id uint64
	for b := 0; b < 40; b++ {
		hot := uint32(b % groups)
		at := sim.Time(b) * 500 * sim.Nanosecond
		n := 8 + (b%5)*9
		eng.At(at, func() {
			for i := 0; i < n; i++ {
				id++
				s.Deliver(&rpcproto.Request{ID: id, Conn: hot,
					Arrival: eng.Now(), Service: 3 * sim.Microsecond})
			}
		})
	}

	var corpus [][]int
	var sample func()
	sample = func() {
		for g := 0; g < groups; g++ {
			corpus = append(corpus, append([]int(nil), s.GroupView(g)...))
		}
		eng.After(p.Period, sample)
	}
	eng.At(p.Period/2, sample)
	eng.Run(25 * sim.Microsecond)
	s.Stop()
	return corpus
}

// TestDecideDifferentialOnRecordedCorpus replays queue vectors recorded
// from a live simulator run through both the extracted policy.Decide and
// a reference reimplementation of the pre-refactor decision sequence,
// requiring bit-identical triggers, patterns and destination lists. The
// generated-vector differential lives in internal/policy; this one
// checks the states the engine actually produces — synchronized views
// with UPDATE lag, mid-drain staircases — not just synthetic ones.
func TestDecideDifferentialOnRecordedCorpus(t *testing.T) {
	corpus := recordVectors(t)
	if len(corpus) < 200 {
		t.Fatalf("corpus too small: %d vectors", len(corpus))
	}

	order := make([]int, 0, 8)
	dests := make([]int, 0, 8)
	decisions, patternHits := 0, 0
	for _, view := range corpus {
		for self := 0; self < len(view); self++ {
			for _, threshold := range []int{0, 3, 9, 21} {
				for _, patterns := range []bool{true, false} {
					gotT, gotP, gotD := policy.Decide(view, self, threshold, p16Bulk, p16Conc, patterns, order, dests)
					refT, refP, refD := headDecide(view, self, threshold, p16Bulk, p16Conc, patterns)
					if gotT != refT || gotP != refP || !equalInts(gotD, refD) {
						t.Fatalf("recorded view %v self %d t=%d patterns=%v: policy (%v,%v,%v) != pre-refactor (%v,%v,%v)",
							view, self, threshold, patterns, gotT, gotP, gotD, refT, refP, refD)
					}
					if len(gotD) > 0 {
						decisions++
						if gotT == policy.TriggerPattern {
							patternHits++
						}
					}
				}
			}
		}
	}
	// The corpus must actually exercise the logic: a run where nothing
	// ever fires would vacuously pass.
	if decisions == 0 || patternHits == 0 {
		t.Fatalf("degenerate corpus: %d firing decisions, %d pattern roles", decisions, patternHits)
	}
	t.Logf("corpus: %d vectors, %d firing decisions (%d pattern roles)", len(corpus), decisions, patternHits)
}

// Fixed planner knobs for the differential (the defaults the recorded
// run itself used).
const (
	p16Bulk = 16
	p16Conc = 3
)

// headDecide is the pre-refactor Scheduler.decide sequence with the
// classification vendored verbatim from this package's own pre-refactor
// patterns.go (git history) — NOT the delegating aliases above, which
// would make the comparison circular. Do not "fix" bugs here; a
// disagreement means the extraction drifted.
func headDecide(view []int, self, threshold, bulk, conc int, patterns bool) (policy.Trigger, policy.Pattern, []int) {
	if conc > len(view)-1 {
		conc = len(view) - 1
	}
	if patterns {
		pattern, dests := headClassify(view, self, bulk, conc)
		if len(dests) > 0 {
			return policy.TriggerPattern, pattern, dests
		}
	}
	if view[self] > threshold {
		return policy.TriggerThreshold, policy.PatternNone, headShortestOthers(view, self, conc)
	}
	return policy.TriggerNone, policy.PatternNone, nil
}

func headClassify(view []int, self, bulk, conc int) (Pattern, []int) {
	n := len(view)
	if n < 2 || self < 0 || self >= n {
		return PatternNone, nil
	}
	if conc > n-1 {
		conc = n - 1
	}
	if conc < 1 {
		conc = 1
	}
	order := headRankDescending(view)
	longest, second := order[0], order[1]
	shortest, secondShortest := order[n-1], order[n-2]

	switch {
	case view[longest] >= view[second]+bulk:
		if self != longest {
			return PatternHill, nil
		}
		var dests []int
		for i := n - 1; i >= 0 && len(dests) < conc; i-- {
			if d := order[i]; d != self {
				dests = append(dests, d)
			}
		}
		return PatternHill, dests
	case view[shortest]+bulk <= view[secondShortest]:
		if self == shortest {
			return PatternValley, nil
		}
		return PatternValley, []int{shortest}
	case view[longest]-view[shortest] >= bulk:
		for i := 0; i < conc && i < n/2; i++ {
			if order[i] != self {
				continue
			}
			d := order[n-1-i]
			if d != self && view[self] > view[d] {
				return PatternPairing, []int{d}
			}
			return PatternPairing, nil
		}
		return PatternPairing, nil
	}
	return PatternNone, nil
}

func headRankDescending(view []int) []int {
	n := len(view)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if view[b] > view[a] || (view[b] == view[a] && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}

func headShortestOthers(view []int, self, k int) []int {
	order := headRankDescending(view)
	var out []int
	for i := len(order) - 1; i >= 0 && len(out) < k; i-- {
		if d := order[i]; d != self {
			out = append(out, d)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
