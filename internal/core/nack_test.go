package core

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// TestNACKPathConservation drives the hardware messaging into its
// rejection paths (1-entry receive FIFOs, tiny MR files) under heavy
// skew and verifies that no request is ever lost or duplicated, and that
// the NACK/abort counters actually fire.
func TestNACKPathConservation(t *testing.T) {
	p := DefaultParams(4, 2)
	p.Period = 50 * sim.Nanosecond
	p.Bulk = 8
	p.Concurrency = 2
	p.FIFOCapacity = 4
	p.MRCapacity = 4
	p.DisableGuard = true // force migrations even when unprofitable

	eng := sim.NewEngine()
	steer := nic.NewSteerer(nic.SteerConnection, 4, nil)
	completed := map[uint64]int{}
	nDone := 0
	s, err := New(eng, p, fabricDefault(), steer, func(r *rpcproto.Request) {
		completed[r.ID]++
		nDone++
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 15000
	arr := sim.NewRNG(31)
	svcRNG := sim.NewRNG(32)
	var at sim.Time
	for i := 0; i < n; i++ {
		at += dist.Poisson{Rate: 7e6}.NextGap(arr)
		r := &rpcproto.Request{
			ID: uint64(i), Conn: uint32(i % 3), // 3 conns -> at most 3 of 8 queues
			Arrival: at, Service: dist.Exponential{M: sim.Microsecond}.Sample(svcRNG),
		}
		tAt := at
		eng.At(tAt, func() { s.Deliver(r) })
	}
	for nDone < n && eng.Now() < 100*sim.Millisecond {
		eng.Run(eng.Now() + sim.Millisecond)
	}
	s.Stop()

	if nDone != n {
		t.Fatalf("completed %d of %d", nDone, n)
	}
	for id, c := range completed {
		if c != 1 {
			t.Fatalf("request %d completed %d times", id, c)
		}
	}
	st := s.Stats
	if st.Migrations == 0 {
		t.Fatal("no migrations under forced skew")
	}
	if st.NackedBatches == 0 && st.MRFullAborts == 0 && st.FIFOFull == 0 {
		t.Fatalf("tiny buffers never rejected anything: %+v", st)
	}
	t.Logf("stats: %+v", st)
}

// fabricDefault avoids importing fabric at every call site in tests.
func fabricDefault() fabric.CostModel { return fabric.Default() }
