package core

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// TestUpdatePropagation verifies that UPDATE messages synchronize the
// queue-length views across managers within a few periods, with NoC
// latency.
func TestUpdatePropagation(t *testing.T) {
	eng := sim.NewEngine()
	p := DefaultParams(4, 2)
	p.Period = 100 * sim.Nanosecond
	p.DisableMigration = true // keep queues as loaded
	steer := nic.NewSteerer(nic.SteerDirect, 4, nil)
	s, err := New(eng, p, fabric.Default(), steer, func(*rpcproto.Request) {})
	if err != nil {
		t.Fatal(err)
	}
	// Load group 2 with a burst of slow requests so its NetRX backlog
	// persists across ticks.
	eng.At(0, func() {
		for i := 0; i < 50; i++ {
			s.Deliver(&rpcproto.Request{ID: uint64(i), Conn: 2,
				Arrival: eng.Now(), Service: 100 * sim.Microsecond})
		}
	})
	eng.Run(2 * sim.Microsecond) // ~20 periods
	s.Stop()

	// Every manager's view of group 2 should be large (backlog minus the
	// 2 dispatched), and views of idle groups should be ~0.
	for g := 0; g < 4; g++ {
		view := s.GroupView(g)
		if view[2] < 40 {
			t.Fatalf("manager %d sees group 2 backlog as %d", g, view[2])
		}
		if view[1] != 0 {
			t.Fatalf("manager %d sees phantom load in group 1: %d", g, view[1])
		}
	}
}

// TestMSRPeriodStretch verifies that when the configured period is
// shorter than the runtime's own execution cost (MSR interface), the
// effective tick rate stretches rather than monopolising the manager.
func TestMSRPeriodStretch(t *testing.T) {
	tickCount := func(iface fabric.Interface) uint64 {
		eng := sim.NewEngine()
		p := DefaultParams(4, 2)
		p.Period = 50 * sim.Nanosecond // far below the MSR runtime cost
		p.Iface = iface
		steer := nic.NewSteerer(nic.SteerDirect, 4, nil)
		s, err := New(eng, p, fabric.Default(), steer, func(*rpcproto.Request) {})
		if err != nil {
			t.Fatal(err)
		}
		eng.At(0, func() {
			s.Deliver(&rpcproto.Request{ID: 1, Conn: 0, Service: sim.Microsecond})
		})
		eng.Run(20 * sim.Microsecond)
		s.Stop()
		return s.Stats.Ticks
	}
	isa := tickCount(fabric.InterfaceISA)
	msr := tickCount(fabric.InterfaceMSR)
	if msr >= isa {
		t.Fatalf("MSR ticks (%d) should be fewer than ISA ticks (%d)", msr, isa)
	}
	// MSR runtime cost = (4+2)*50ns + 18ns = 318ns -> effective period
	// 636ns vs ISA's 50ns: roughly a 12x tick-rate gap.
	if isa < 5*msr {
		t.Fatalf("stretch too small: isa=%d msr=%d", isa, msr)
	}
}

// TestSelectHeadMigratesOldest verifies the SelectHead extension policy
// pulls from the queue head.
func TestSelectHeadMigratesOldest(t *testing.T) {
	for _, sel := range []SelectPolicy{SelectTail, SelectHead} {
		eng := sim.NewEngine()
		p := DefaultParams(2, 1)
		p.Period = 100 * sim.Nanosecond
		p.Bulk = 4
		p.Concurrency = 1
		p.Select = sel
		p.DisableGuard = true
		steer := nic.NewSteerer(nic.SteerDirect, 2, nil)
		var migrated []uint64
		nDone := 0
		s, err := New(eng, p, fabric.Default(), steer, func(r *rpcproto.Request) {
			nDone++
			if r.Migrated {
				migrated = append(migrated, r.ID)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Pile 20 slow requests onto group 0; group 1 idle.
		const n = 20
		eng.At(0, func() {
			for i := 0; i < n; i++ {
				s.Deliver(&rpcproto.Request{ID: uint64(i), Conn: 0,
					Arrival: eng.Now(), Service: 10 * sim.Microsecond})
			}
		})
		// Allow only the first migration window, then freeze migrations so
		// the selected batch is unambiguous.
		eng.Run(150 * sim.Nanosecond) // one period
		s.P.DisableMigration = true
		for nDone < n && eng.Now() < 10*sim.Millisecond {
			eng.Run(eng.Now() + sim.Millisecond)
		}
		s.Stop()
		if nDone != n {
			t.Fatalf("%v: done %d", sel, nDone)
		}
		if len(migrated) == 0 {
			t.Fatalf("%v: nothing migrated", sel)
		}
		// Head selection must migrate an early ID before tail selection
		// would: the head batch contains the oldest queued request not
		// yet dispatched (ids 2+ after the two immediate dispatches).
		minID := migrated[0]
		for _, id := range migrated {
			if id < minID {
				minID = id
			}
		}
		if sel == SelectHead && minID > 5 {
			t.Fatalf("head selection migrated only late ids (min %d)", minID)
		}
		if sel == SelectTail && minID < 12 {
			t.Fatalf("tail selection migrated early ids (min %d)", minID)
		}
	}
	if SelectTail.String() != "tail" || SelectHead.String() != "head" {
		t.Fatal("stringer")
	}
}
