package core

import (
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// LoadMeter estimates the current system load (A, in Erlangs) online from
// the arrival stream, the input the runtime feeds to the threshold model
// every period (§III-A: the runtime "based on the current system load
// (A), calculates the migration threshold"). Arrival rate and mean
// service time are tracked as exponentially weighted moving averages over
// measurement windows so the threshold adapts to non-stationary traffic.
type LoadMeter struct {
	Alpha float64 // EWMA weight for new windows

	winStart   sim.Time
	winCount   int
	rate       float64 // req/s, smoothed
	meanSvc    float64 // seconds, smoothed
	svcWeight  float64
	haveWindow bool
}

// NewLoadMeter returns a meter with a mild smoothing factor.
func NewLoadMeter() *LoadMeter { return &LoadMeter{Alpha: 0.3} }

// Arrival records one arriving request.
func (m *LoadMeter) Arrival(r *rpcproto.Request) {
	m.ArrivalDur(r.Service)
}

// ArrivalDur records one arrival with an explicit service duration.
// Per-class meters use it with the duration of the single phase landing
// on the class rather than the request's whole-chain Service.
//
//altolint:hotpath
func (m *LoadMeter) ArrivalDur(d sim.Time) {
	m.winCount++
	// Service-time EWMA, per request (weight decays slowly so rare long
	// requests register without dominating).
	s := d.Seconds()
	if m.svcWeight == 0 {
		m.meanSvc = s
		m.svcWeight = 1
	} else {
		const a = 0.01
		m.meanSvc = (1-a)*m.meanSvc + a*s
	}
}

// Tick closes the current measurement window at now and folds its rate
// into the EWMA. Called once per runtime period.
func (m *LoadMeter) Tick(now sim.Time) {
	dt := (now - m.winStart).Seconds()
	if dt <= 0 {
		return
	}
	instant := float64(m.winCount) / dt
	if !m.haveWindow {
		m.rate = instant
		m.haveWindow = true
	} else {
		m.rate = (1-m.Alpha)*m.rate + m.Alpha*instant
	}
	m.winStart = now
	m.winCount = 0
}

// Rate returns the smoothed arrival rate in requests/second.
func (m *LoadMeter) Rate() float64 { return m.rate }

// MeanService returns the smoothed mean service time in seconds.
func (m *LoadMeter) MeanService() float64 { return m.meanSvc }

// OfferedPerGroup returns the offered load per group in Erlangs:
// (rate/groups) × E[S]. This is the A fed to Erlang-C with k =
// workers-per-group.
func (m *LoadMeter) OfferedPerGroup(groups int) float64 {
	if groups <= 0 {
		return 0
	}
	return m.rate / float64(groups) * m.meanSvc
}
