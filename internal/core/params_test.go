package core

import (
	"strings"
	"testing"
)

// TestGroupLayout pins the 16-core tiling and its failure modes: every
// rejection must name the remainder (or the shortfall) so the -cores
// flag error is actionable.
func TestGroupLayout(t *testing.T) {
	cases := []struct {
		cores       int
		groups, wpg int
		errContains string
	}{
		{16, 1, 15, ""},
		{32, 2, 15, ""},
		{64, 4, 15, ""},
		{1024, 64, 15, ""},
		{0, 0, 0, "cannot form"},
		{15, 0, 0, "cannot form"},
		{-16, 0, 0, "cannot form"},
		{17, 0, 0, "1 cores left over"},
		{65, 0, 0, "1 cores left over"},
		{100, 0, 0, "4 cores left over"},
		{255, 0, 0, "15 cores left over"},
	}
	for _, c := range cases {
		g, wpg, err := GroupLayout(c.cores)
		if c.errContains == "" {
			if err != nil || g != c.groups || wpg != c.wpg {
				t.Errorf("GroupLayout(%d) = (%d, %d, %v), want (%d, %d, nil)",
					c.cores, g, wpg, err, c.groups, c.wpg)
			}
			if g*(wpg+1) != c.cores {
				t.Errorf("GroupLayout(%d): %d groups x %d cores loses cores", c.cores, g, wpg+1)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.errContains) {
			t.Errorf("GroupLayout(%d) err = %v, want mention of %q", c.cores, err, c.errContains)
		}
	}
}
