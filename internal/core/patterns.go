package core

// Pattern is the queue-length-vector classification of §VI.
type Pattern int

const (
	// PatternNone: no imbalance pattern detected.
	PatternNone Pattern = iota
	// PatternHill: one queue towers over the rest; its owner fans work
	// out to the shortest queues.
	PatternHill
	// PatternValley: one queue is far below the rest; every other
	// manager sends one MIGRATE toward it.
	PatternValley
	// PatternPairing: a gradual imbalance; the i-th longest queue pairs
	// with the i-th shortest.
	PatternPairing
)

func (p Pattern) String() string {
	switch p {
	case PatternHill:
		return "hill"
	case PatternValley:
		return "valley"
	case PatternPairing:
		return "pairing"
	default:
		return "none"
	}
}

// Classify runs the §VI pattern classification for manager `self` over
// the synchronized queue-length vector. It returns the detected pattern
// and the destination queue ids this manager should send MIGRATEs to
// (empty when the pattern assigns this manager no role). bulk is the
// imbalance threshold; conc caps the fan-out.
//
// The function is pure so that all managers, seeing the same vector,
// reach consistent decisions — the property §VI relies on ("each
// manager's pattern classification gives the same pattern result").
func Classify(view []int, self, bulk, conc int) (Pattern, []int) {
	n := len(view)
	if n < 2 || self < 0 || self >= n {
		return PatternNone, nil
	}
	if conc > n-1 {
		conc = n - 1
	}
	if conc < 1 {
		conc = 1
	}
	order := rankDescending(view)
	longest, second := order[0], order[1]
	shortest, secondShortest := order[n-1], order[n-2]

	switch {
	case view[longest] >= view[second]+bulk:
		// Hill: only the peak's owner acts.
		if self != longest {
			return PatternHill, nil
		}
		dests := make([]int, 0, conc)
		for i := n - 1; i >= 0 && len(dests) < conc; i-- {
			if d := order[i]; d != self {
				dests = append(dests, d)
			}
		}
		return PatternHill, dests
	case view[shortest]+bulk <= view[secondShortest]:
		// Valley: everyone except the dip's owner sends one MIGRATE
		// toward it.
		if self == shortest {
			return PatternValley, nil
		}
		return PatternValley, []int{shortest}
	case view[longest]-view[shortest] >= bulk:
		// Pairing: top-i longest pairs with i-th shortest, i < conc.
		for i := 0; i < conc && i < n/2; i++ {
			if order[i] != self {
				continue
			}
			d := order[n-1-i]
			if d != self && view[self] > view[d] {
				return PatternPairing, []int{d}
			}
			return PatternPairing, nil
		}
		return PatternPairing, nil
	}
	return PatternNone, nil
}

// rankDescending returns queue indices ordered by length descending,
// ties broken by lower index for cross-manager determinism.
func rankDescending(view []int) []int {
	n := len(view)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if view[b] > view[a] || (view[b] == view[a] && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}

// ShortestOthers returns up to k queue ids with the smallest lengths,
// excluding self — the destination set for threshold-triggered sheds.
func ShortestOthers(view []int, self, k int) []int {
	order := rankDescending(view)
	out := make([]int, 0, k)
	for i := len(order) - 1; i >= 0 && len(out) < k; i-- {
		if d := order[i]; d != self {
			out = append(out, d)
		}
	}
	return out
}
