package core

import "repro/internal/policy"

// The §VI queue-vector classification moved to the engine-agnostic
// internal/policy package so the live runtime shares the exact decision
// bytes with the simulator. These aliases keep core's historical surface
// for tests and experiments; new code should import policy directly.

// Pattern is the queue-length-vector classification of §VI.
type Pattern = policy.Pattern

const (
	// PatternNone: no imbalance pattern detected.
	PatternNone = policy.PatternNone
	// PatternHill: one queue towers over the rest; its owner fans work
	// out to the shortest queues.
	PatternHill = policy.PatternHill
	// PatternValley: one queue is far below the rest; every other
	// manager sends one MIGRATE toward it.
	PatternValley = policy.PatternValley
	// PatternPairing: a gradual imbalance; the i-th longest queue pairs
	// with the i-th shortest.
	PatternPairing = policy.PatternPairing
)

// Classify runs the §VI pattern classification for manager `self` over
// the synchronized queue-length vector. See policy.Classify.
func Classify(view []int, self, bulk, conc int) (Pattern, []int) {
	return policy.Classify(view, self, bulk, conc)
}

// ClassifyInto is Classify with caller-provided scratch. See
// policy.ClassifyInto.
func ClassifyInto(view []int, self, bulk, conc int, order, dests []int) (Pattern, []int) {
	return policy.ClassifyInto(view, self, bulk, conc, order, dests)
}

// ShortestOthers returns up to k queue ids with the smallest lengths,
// excluding self. See policy.ShortestOthers.
func ShortestOthers(view []int, self, k int) []int {
	return policy.ShortestOthers(view, self, k)
}

// ShortestOthersInto is ShortestOthers with caller-provided scratch.
// See policy.ShortestOthersInto.
func ShortestOthersInto(view []int, self, k int, order, out []int) []int {
	return policy.ShortestOthersInto(view, self, k, order, out)
}
