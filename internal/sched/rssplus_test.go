package sched

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func TestRSSPlusCompletesAndRebalances(t *testing.T) {
	h := newHarness(20000)
	s := NewRSSPlus(h.eng, 8, 32, 0, 20*sim.Microsecond, h.done)
	// Skew with divisible flows: 12 flows hash onto few cores, leaving
	// others idle until rebalancing spreads the buckets. (With fewer
	// flows than cores a bucket move cannot improve the imbalance and
	// the rebalancer correctly refuses to act.)
	arr := sim.NewRNG(1)
	svcRNG := sim.NewRNG(2)
	var at sim.Time
	for i := 0; i < 20000; i++ {
		at += dist.Poisson{Rate: 5e6}.NextGap(arr)
		r := &rpcproto.Request{ID: uint64(i), Conn: uint32(i % 12),
			Arrival: at, Service: dist.Exponential{M: us(1)}.Sample(svcRNG)}
		tAt := at
		h.eng.At(tAt, func() { s.Deliver(r) })
	}
	for h.nDone < 20000 && h.eng.Now() < 100*sim.Millisecond {
		h.eng.Run(h.eng.Now() + sim.Millisecond)
	}
	s.Stop()
	if h.nDone != 20000 {
		t.Fatalf("done %d", h.nDone)
	}
	if s.Rebalances == 0 {
		t.Fatal("rebalancer never ran")
	}
	if s.MovedBkts == 0 {
		t.Fatal("no buckets moved despite skew")
	}
	if s.Name() != "rss++" {
		t.Fatal("name")
	}
	if len(s.QueueLens()) != 8 || len(s.Cores()) != 8 {
		t.Fatal("accessors")
	}
}

func TestRSSPlusBeatsPlainRSSUnderSkew(t *testing.T) {
	// The point of the indirection-table rebalancing: under flow skew,
	// RSS++'s p99 improves on static RSS.
	run := func(interval sim.Time) sim.Time {
		h := newHarness(30000)
		var s Scheduler
		if interval > 0 {
			s = NewRSSPlus(h.eng, 8, 32, 0, interval, h.done)
		} else {
			rp := NewRSSPlus(h.eng, 8, 32, 0, 0, h.done) // no rebalancing = plain RSS
			s = rp
		}
		arr := sim.NewRNG(3)
		svcRNG := sim.NewRNG(4)
		var at sim.Time
		for i := 0; i < 30000; i++ {
			at += dist.Poisson{Rate: 4e6}.NextGap(arr)
			r := &rpcproto.Request{ID: uint64(i), Conn: uint32(i % 4),
				Arrival: at, Service: dist.Exponential{M: us(1)}.Sample(svcRNG)}
			tAt := at
			h.eng.At(tAt, func() { s.Deliver(r) })
		}
		for h.nDone < 30000 && h.eng.Now() < 200*sim.Millisecond {
			h.eng.Run(h.eng.Now() + sim.Millisecond)
		}
		if rp, ok := s.(*RSSPlus); ok {
			rp.Stop()
		}
		if h.nDone != 30000 {
			t.Fatalf("done %d", h.nDone)
		}
		return h.lat.P99()
	}
	static := run(0)
	rebal := run(20 * sim.Microsecond)
	if rebal >= static {
		t.Fatalf("rebalancing did not help: static=%v rss++=%v", static, rebal)
	}
}

func TestRSSPlusBucketClamp(t *testing.T) {
	s := NewRSSPlus(sim.NewEngine(), 8, 2, 0, 0, func(*rpcproto.Request) {})
	if s.buckets < 8 {
		t.Fatalf("buckets = %d, must cover cores", s.buckets)
	}
}
