// Aliasing audit for every QueueLens implementation: the snapshot the
// invariant checker (internal/check) cross-checks at checkpoints must
// be a defensive copy, never a view of scheduler-internal state — a
// caller holding (or mutating) one snapshot must not perturb the next.
// External test package so the Altocumulus scheduler (internal/core,
// which imports sched) can join the table.
package sched_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestQueueLensDefensiveCopies(t *testing.T) {
	const cores = 4
	build := map[string]func(eng *sim.Engine) sched.Scheduler{
		"dfcfs": func(eng *sim.Engine) sched.Scheduler {
			st := nic.NewSteerer(nic.SteerRandom, cores, sim.NewRNG(1))
			return sched.NewDFCFS(eng, cores, st, 0, func(*rpcproto.Request) {})
		},
		"steal": func(eng *sim.Engine) sched.Scheduler {
			st := nic.NewSteerer(nic.SteerRandom, cores, sim.NewRNG(2))
			return sched.NewSteal(eng, cores, st, 0, 0, sim.NewRNG(3), func(*rpcproto.Request) {})
		},
		"central": func(eng *sim.Engine) sched.Scheduler {
			return sched.NewCentral(eng, cores, 0, 0, 0, 0, func(*rpcproto.Request) {})
		},
		"jbsq": func(eng *sim.Engine) sched.Scheduler {
			return sched.NewJBSQ(eng, cores, sched.VariantRPCValet, 2, 0, 0, 0, 0, func(*rpcproto.Request) {})
		},
		"rssplus": func(eng *sim.Engine) sched.Scheduler {
			return sched.NewRSSPlus(eng, cores, 64, 0, 20*sim.Microsecond, func(*rpcproto.Request) {})
		},
		"altocumulus": func(eng *sim.Engine) sched.Scheduler {
			st := nic.NewSteerer(nic.SteerConnection, 2, sim.NewRNG(4))
			s, err := core.New(eng, core.DefaultParams(2, 2), fabric.CostModel{}, st, func(*rpcproto.Request) {})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}

	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			s := mk(eng)
			// Flood with deliveries and freeze mid-run so queues are
			// non-empty when snapshotted.
			for i := 0; i < 64; i++ {
				r := &rpcproto.Request{ID: uint64(i), Conn: uint32(i), Service: sim.Millisecond}
				eng.After(0, func() { s.Deliver(r) })
			}
			eng.Run(sim.Microsecond)

			a := s.QueueLens()
			if len(a) == 0 {
				t.Fatal("empty QueueLens")
			}
			want := append([]int(nil), a...)
			for i := range a {
				a[i] = -99 // vandalise the first snapshot
			}
			b := s.QueueLens()
			if &a[0] == &b[0] {
				t.Fatal("QueueLens returned the same backing array twice")
			}
			for i := range b {
				if b[i] != want[i] {
					t.Fatalf("snapshot %d changed after caller mutation: got %d, want %d", i, b[i], want[i])
				}
				if b[i] < 0 {
					t.Fatalf("negative queue length %d", b[i])
				}
			}
		})
	}
}
