package sched

import (
	"repro/internal/exec"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// JBSQVariant selects which hardware scheduler a JBSQ instance models.
type JBSQVariant int

const (
	// VariantRPCValet: NI-driven balancing through shared caches.
	VariantRPCValet JBSQVariant = iota
	// VariantNebula: NIC integrated at LLC speed, no preemption.
	VariantNebula
	// VariantNanoPU: register-file delivery plus a per-core preemption
	// mechanism piggybacked on the local queue.
	VariantNanoPU
)

func (v JBSQVariant) String() string {
	switch v {
	case VariantNebula:
		return "nebula"
	case VariantNanoPU:
		return "nanopu"
	default:
		return "rpcvalet"
	}
}

// JBSQ models the hardware Join-Bounded-Shortest-Queue schedulers
// (Fig. 4(c), RPCValet / Nebula / nanoPU): the NIC holds a central queue
// and pushes its head to the core with the fewest outstanding requests
// whenever that count is below Bound (the paper's JBSQ(2)). Pushes are
// performed by hardware, so they do not serialize on any core, but each
// transfer takes XferCost to land. Once pushed, a request is committed to
// its core — the scheme's key weakness: a short request committed behind
// a long one blocks (no migration), which preemption (nanoPU) mitigates
// but SLO-blind balancing does not.
type JBSQ struct {
	Variant  JBSQVariant
	Bound    int      // max outstanding per core (running + queued + in-flight)
	XferCost sim.Time // NIC-to-core push latency
	// EngineCost serializes the central scheduler: one dispatch decision
	// occupies the NIC engine for this long. This is the scalability
	// ceiling Table I attributes to the centralized hardware schedulers
	// (coherence-domain queue operations for RPCValet/Nebula, register
	// file for nanoPU): a ~4 ns decision caps the whole server at
	// ~250 MRPS regardless of core count.
	EngineCost sim.Time

	eng        *sim.Engine
	cores      []*exec.Core
	local      []exec.Deque // per-core bounded queues
	pending    []int        // per-core outstanding count incl. in-flight pushes
	central    exec.Deque
	done       Done
	obs        Observer
	probe      Probe
	rr         int      // round-robin scan pointer over cores
	engineFree sim.Time // central engine busy-until
	resume     *sim.Timer

	// Callbacks bound once at construction so the per-request path never
	// allocates a closure: landFns[i] is the NIC-push arg-event trampoline
	// landing a request in core i's local queue, doneFns/preemptFns are
	// core i's completion callbacks, resume re-runs drain when the
	// central engine frees (a Timer: the re-arm-heavy retry reuses one
	// slab slot for the scheduler's whole lifetime).
	landFns    []func(any, int64)
	doneFns    []func(*rpcproto.Request)
	preemptFns []func(*rpcproto.Request)
}

// NewJBSQ builds a JBSQ(bound) hardware scheduler over n cores. quantum
// is zero for run-to-completion variants; nanoPU passes a small quantum.
// engine is the per-decision occupancy of the central scheduler.
func NewJBSQ(eng *sim.Engine, n int, variant JBSQVariant, bound int, xfer, engine, quantum, preemptCost sim.Time, done Done) *JBSQ {
	if bound < 1 {
		bound = 1
	}
	s := &JBSQ{
		Variant:    variant,
		Bound:      bound,
		XferCost:   overheadOrZero(xfer),
		EngineCost: overheadOrZero(engine),
		eng:        eng,
		cores:      make([]*exec.Core, n),
		local:      make([]exec.Deque, n),
		pending:    make([]int, n),
		done:       done,
		obs:        NopObserver{},
	}
	s.landFns = make([]func(any, int64), n)
	s.doneFns = make([]func(*rpcproto.Request), n)
	s.preemptFns = make([]func(*rpcproto.Request), n)
	for i := range s.cores {
		s.cores[i] = exec.NewCore(eng, i, i)
		s.cores[i].Quantum = quantum
		s.cores[i].PreemptCost = preemptCost
		i := i
		s.landFns[i] = func(arg any, _ int64) { s.land(arg.(*rpcproto.Request), i) }
		s.doneFns[i] = func(r *rpcproto.Request) {
			s.pending[i]--
			if s.probe != nil {
				s.probe.OnComplete(r, i)
			}
			s.done(r)
			s.tryStart(i)
			s.drain()
		}
		s.preemptFns[i] = func(r *rpcproto.Request) {
			// Preemption (nanoPU): the remainder re-joins this core's
			// local queue tail so queued shorts run next.
			if s.probe != nil {
				s.probe.OnPreempt(r, i)
				s.probe.OnRequeue(r, 1+i, RequeuePreempt, s.local[i].Len())
			}
			s.local[i].PushTail(r)
			s.tryStart(i)
		}
	}
	s.resume = eng.NewTimer(func() { s.drain() })
	return s
}

// SetObserver installs instrumentation.
func (s *JBSQ) SetObserver(o Observer) { s.obs, s.probe = o, ProbeOf(o) }

// Name implements Scheduler.
func (s *JBSQ) Name() string { return "jbsq-" + s.Variant.String() }

// Deliver implements Scheduler.
//
//altolint:hotpath
func (s *JBSQ) Deliver(r *rpcproto.Request) {
	s.obs.OnEnqueue(r, 0, s.central.Len())
	r.Enq = s.eng.Now()
	s.central.PushTail(r)
	s.drain()
}

// drain pushes central-queue heads to cores below their bound. The
// selection is the hardware's: among eligible cores, prefer the smallest
// outstanding count, breaking ties round-robin. Crucially this is an
// eager top-up — the engine pushes whenever any core has a free slot and
// the central queue is non-empty, committing requests to cores with no
// view of what those cores are running. A short topped up behind a
// long-running request is stuck there (the paper's head-of-line critique
// of SLO-blind JBSQ).
//
//altolint:hotpath
func (s *JBSQ) drain() {
	for s.central.Len() > 0 {
		c := s.pickCore()
		if c < 0 {
			return
		}
		// Serialize on the central engine: if it is still occupied by a
		// previous decision, retry when it frees.
		now := s.eng.Now()
		if s.engineFree > now {
			if !s.resume.Armed() {
				s.resume.Arm(s.engineFree)
			}
			return
		}
		s.engineFree = now + s.EngineCost
		r := s.central.PopHead()
		s.pending[c]++
		if s.probe != nil {
			s.probe.OnDequeue(r, 0, false)
			s.probe.OnOutstanding(r, c, s.pending[c], s.Bound)
		}
		s.eng.AfterArg(s.EngineCost+s.XferCost, s.landFns[c], r, 0)
	}
}

// land completes a NIC push: the request joins core i's local queue.
//
//altolint:hotpath
func (s *JBSQ) land(r *rpcproto.Request, i int) {
	if s.probe != nil {
		s.probe.OnRequeue(r, 1+i, RequeueTransfer, s.local[i].Len())
	}
	s.local[i].PushTail(r)
	s.tryStart(i)
}

// pickCore returns the next eligible core (outstanding < bound) with the
// lowest count, rotating the scan start so ties spread round-robin.
// Returns -1 when every core is at its bound.
func (s *JBSQ) pickCore() int {
	n := len(s.pending)
	best, bestN := -1, s.Bound
	for k := 0; k < n; k++ {
		i := (s.rr + k) % n
		if s.pending[i] < bestN {
			best, bestN = i, s.pending[i]
			if bestN == 0 {
				break
			}
		}
	}
	if best >= 0 {
		s.rr = (best + 1) % n
	}
	return best
}

//altolint:hotpath
func (s *JBSQ) tryStart(i int) {
	if s.cores[i].Busy() || s.local[i].Len() == 0 {
		return
	}
	r := s.local[i].PopHead()
	if s.probe != nil {
		s.probe.OnDequeue(r, 1+i, false)
		s.probe.OnRun(r, i)
	}
	s.cores[i].Start(r, 0, s.doneFns[i], s.preemptFns[i])
}

// QueueLens implements Scheduler: the central queue length followed by
// per-core outstanding counts.
func (s *JBSQ) QueueLens() []int { return s.QueueLensInto(nil) }

// QueueLensInto implements Scheduler.
//
//altolint:hotpath
func (s *JBSQ) QueueLensInto(buf []int) []int {
	buf = append(buf[:0], s.central.Len()) //altolint:allow hotalloc scratch reuse: buf grows to 1+cores once, then steady-state zero-alloc
	return append(buf, s.pending...)       //altolint:allow hotalloc scratch reuse: buf grows to 1+cores once, then steady-state zero-alloc
}

// Cores exposes the core array for utilisation reporting.
func (s *JBSQ) Cores() []*exec.Core { return s.cores }

var _ Scheduler = (*JBSQ)(nil)
