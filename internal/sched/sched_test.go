package sched

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// harness drives a scheduler with a Poisson arrival stream and collects
// completion latencies.
type harness struct {
	eng    *sim.Engine
	lat    *stats.Sample
	nDone  int
	target int
}

func newHarness(n int) *harness {
	return &harness{eng: sim.NewEngine(), lat: stats.NewSample(n), target: n}
}

func (h *harness) done(r *rpcproto.Request) {
	h.lat.Add(r.Latency())
	h.nDone++
}

// feed schedules n Poisson arrivals with the given service distribution.
func (h *harness) feed(s Scheduler, rate float64, svc dist.ServiceDist, n int, seed uint64) {
	arr := sim.NewRNG(seed)
	svcRNG := sim.NewRNG(seed + 1)
	t := sim.Time(0)
	for i := 0; i < n; i++ {
		t += dist.Poisson{Rate: rate}.NextGap(arr)
		at := t
		id := uint64(i)
		service := svc.Sample(svcRNG)
		conn := uint32(arr.Intn(1024))
		h.eng.At(at, func() {
			h.eng_deliver(s, &rpcproto.Request{
				ID: id, Conn: conn, Arrival: at, Service: service, Size: 300,
			})
		})
	}
}

func (h *harness) eng_deliver(s Scheduler, r *rpcproto.Request) { s.Deliver(r) }

func us(v float64) sim.Time { return sim.FromNanos(v * 1000) }

func TestDFCFSCompletesEverything(t *testing.T) {
	h := newHarness(5000)
	steer := nic.NewSteerer(nic.SteerConnection, 8, nil)
	s := NewDFCFS(h.eng, 8, steer, 0, h.done)
	h.feed(s, 4e6, dist.Fixed{V: us(1)}, 5000, 42)
	h.eng.RunAll()
	if h.nDone != 5000 {
		t.Fatalf("completed %d of 5000", h.nDone)
	}
	for i, q := range s.QueueLens() {
		if q != 0 {
			t.Fatalf("queue %d not drained: %d", i, q)
		}
	}
	if s.Name() == "" {
		t.Fatal("name")
	}
}

func TestDFCFSLatencyAtLowLoadIsService(t *testing.T) {
	h := newHarness(1000)
	steer := nic.NewSteerer(nic.SteerConnection, 16, nil)
	s := NewDFCFS(h.eng, 16, steer, 0, h.done)
	h.feed(s, 0.1e6, dist.Fixed{V: us(1)}, 1000, 7) // ~0.6% load
	h.eng.RunAll()
	// Median latency should be essentially the bare service time.
	if got := h.lat.P50(); got != us(1) {
		t.Fatalf("p50 = %v, want 1us", got)
	}
}

func TestDFCFSHeadOfLineBlocking(t *testing.T) {
	// One long request at the head of a core's queue delays a short one
	// behind it, even while other cores idle: the d-FCFS pathology.
	h := newHarness(2)
	steer := nic.NewSteerer(nic.SteerConnection, 2, nil)
	s := NewDFCFS(h.eng, 2, steer, 0, h.done)
	long := &rpcproto.Request{ID: 1, Conn: 0, Service: us(500)}
	short := &rpcproto.Request{ID: 2, Conn: 0, Service: us(1)} // same conn -> same queue
	h.eng.At(0, func() { s.Deliver(long) })
	h.eng.At(us(1), func() { s.Deliver(short) })
	h.eng.RunAll()
	if short.Finish < us(500) {
		t.Fatalf("short finished at %v; should have waited behind the long", short.Finish)
	}
}

func TestStealRescuesHOL(t *testing.T) {
	// Same scenario as above, but an idle core steals the short request.
	h := newHarness(2)
	steer := nic.NewSteerer(nic.SteerConnection, 2, nil)
	s := NewSteal(h.eng, 2, steer, 0, 300*sim.Nanosecond, sim.NewRNG(1), h.done)
	long := &rpcproto.Request{ID: 1, Conn: 0, Service: us(500)}
	short := &rpcproto.Request{ID: 2, Conn: 0, Service: us(1)}
	h.eng.At(0, func() { s.Deliver(long) })
	h.eng.At(us(1), func() { s.Deliver(short) })
	h.eng.RunAll()
	// Short should complete at ~1us arrival + 0.3us steal + 1us service.
	if short.Finish > us(5) {
		t.Fatalf("steal did not rescue the short request: finish=%v", short.Finish)
	}
	if s.Stolen != 1 {
		t.Fatalf("stolen = %d", s.Stolen)
	}
	if s.StealFraction() != 0.5 {
		t.Fatalf("steal fraction = %v", s.StealFraction())
	}
}

func TestStealCompletesUnderLoad(t *testing.T) {
	h := newHarness(8000)
	steer := nic.NewSteerer(nic.SteerConnection, 8, nil)
	s := NewSteal(h.eng, 8, steer, 0, 300*sim.Nanosecond, sim.NewRNG(3), h.done)
	h.feed(s, 5e6, dist.Exponential{M: us(1)}, 8000, 9)
	h.eng.RunAll()
	if h.nDone != 8000 {
		t.Fatalf("completed %d", h.nDone)
	}
	// At ~60%+ load with connection steering, a meaningful fraction of
	// requests move across cores.
	if s.StealFraction() < 0.05 {
		t.Fatalf("steal fraction suspiciously low: %v", s.StealFraction())
	}
}

func TestCentralDispatcherSerializes(t *testing.T) {
	// With dispatch cost 200ns, 10 simultaneous arrivals on 10 idle cores
	// start 200ns apart: the dispatcher is the bottleneck.
	h := newHarness(10)
	s := NewCentral(h.eng, 10, 200*sim.Nanosecond, 0, 0, 0, h.done)
	reqs := make([]*rpcproto.Request, 10)
	for i := range reqs {
		reqs[i] = &rpcproto.Request{ID: uint64(i), Service: us(1)}
		r := reqs[i]
		h.eng.At(0, func() { s.Deliver(r) })
	}
	h.eng.RunAll()
	if h.nDone != 10 {
		t.Fatalf("done = %d", h.nDone)
	}
	// i-th request starts at (i+1)*200ns, finishes 1us later.
	for i, r := range reqs {
		want := sim.Time(i+1)*200*sim.Nanosecond + us(1)
		if r.Finish != want {
			t.Fatalf("req %d finish = %v, want %v", i, r.Finish, want)
		}
	}
}

func TestCentralPreemptionBreaksHOL(t *testing.T) {
	// A 50us request followed by a short: with a 5us quantum the short
	// runs after at most one quantum even on a single worker.
	h := newHarness(2)
	s := NewCentral(h.eng, 1, 0, 0, 5*us(1), 100*sim.Nanosecond, h.done)
	long := &rpcproto.Request{ID: 1, Service: us(50)}
	short := &rpcproto.Request{ID: 2, Service: us(1)}
	h.eng.At(0, func() { s.Deliver(long) })
	h.eng.At(us(1), func() { s.Deliver(short) })
	h.eng.RunAll()
	if short.Finish > us(10) {
		t.Fatalf("preemption failed: short at %v", short.Finish)
	}
	if long.Finish < us(50) {
		t.Fatalf("long finished too early: %v", long.Finish)
	}
	if s.Preemptions() == 0 {
		t.Fatal("no preemptions recorded")
	}
	if len(s.QueueLens()) != 1 {
		t.Fatal("central exposes one queue")
	}
}

func TestJBSQBalancesToIdleCores(t *testing.T) {
	// Four simultaneous arrivals on 4 cores: all run in parallel.
	h := newHarness(4)
	s := NewJBSQ(h.eng, 4, VariantNanoPU, 2, 5*sim.Nanosecond, 0, 0, 0, h.done)
	for i := 0; i < 4; i++ {
		r := &rpcproto.Request{ID: uint64(i), Service: us(1)}
		h.eng.At(0, func() { s.Deliver(r) })
	}
	h.eng.RunAll()
	if h.nDone != 4 {
		t.Fatalf("done = %d", h.nDone)
	}
	if got := h.lat.Max(); got > us(1)+10*sim.Nanosecond {
		t.Fatalf("max latency = %v; pushes should parallelize", got)
	}
}

func TestJBSQBoundCommitsRequests(t *testing.T) {
	// JBSQ(2) on one core: two requests are committed, the third waits in
	// the central queue until a slot frees.
	h := newHarness(3)
	s := NewJBSQ(h.eng, 1, VariantNebula, 2, 0, 0, 0, 0, h.done)
	for i := 0; i < 3; i++ {
		r := &rpcproto.Request{ID: uint64(i), Service: us(1)}
		h.eng.At(0, func() { s.Deliver(r) })
	}
	// Immediately after delivery, central should hold exactly 1.
	h.eng.At(1, func() {
		q := s.QueueLens()
		if q[0] != 1 || q[1] != 2 {
			t.Errorf("queue state = %v, want central=1 core=2", q)
		}
	})
	h.eng.RunAll()
	if h.nDone != 3 {
		t.Fatalf("done = %d", h.nDone)
	}
}

func TestJBSQNebulaHOLvsNanoPUPreemption(t *testing.T) {
	// The Fig. 10 story in miniature: a short committed behind a long.
	run := func(variant JBSQVariant, quantum sim.Time) sim.Time {
		h := newHarness(3)
		s := NewJBSQ(h.eng, 1, variant, 2, 0, 0, quantum, 100*sim.Nanosecond, h.done)
		long := &rpcproto.Request{ID: 1, Service: us(500)}
		short := &rpcproto.Request{ID: 2, Service: us(1)}
		h.eng.At(0, func() { s.Deliver(long) })
		h.eng.At(us(1), func() { s.Deliver(short) })
		h.eng.RunAll()
		return short.Finish
	}
	nebula := run(VariantNebula, 0)
	nano := run(VariantNanoPU, 5*us(1))
	if nebula < us(500) {
		t.Fatalf("nebula short at %v; should be blocked by the long", nebula)
	}
	if nano > us(15) {
		t.Fatalf("nanopu short at %v; preemption should rescue it", nano)
	}
}

func TestJBSQVariantStrings(t *testing.T) {
	if VariantRPCValet.String() != "rpcvalet" || VariantNebula.String() != "nebula" ||
		VariantNanoPU.String() != "nanopu" {
		t.Fatal("variant stringer")
	}
	s := NewJBSQ(sim.NewEngine(), 1, VariantNebula, 0, 0, 0, 0, 0, func(*rpcproto.Request) {})
	if s.Bound != 1 {
		t.Fatal("bound clamp")
	}
	if s.Name() != "jbsq-nebula" {
		t.Fatalf("name = %s", s.Name())
	}
}

func TestSchedulersConserveRequests(t *testing.T) {
	// Conservation property across all baselines: every delivered request
	// completes exactly once.
	mk := func(eng *sim.Engine, done Done) []Scheduler {
		rng := sim.NewRNG(5)
		return []Scheduler{
			NewDFCFS(eng, 4, nic.NewSteerer(nic.SteerConnection, 4, nil), 0, done),
			NewSteal(eng, 4, nic.NewSteerer(nic.SteerConnection, 4, nil), 0, 300*sim.Nanosecond, rng, done),
			NewCentral(eng, 4, 200*sim.Nanosecond, 35*sim.Nanosecond, 5*us(1), us(1), done),
			NewJBSQ(eng, 4, VariantNanoPU, 2, 5*sim.Nanosecond, 0, 5*us(1), 100*sim.Nanosecond, done),
		}
	}
	// Build one scheduler at a time (each needs its own engine).
	for idx := 0; idx < 4; idx++ {
		h := newHarness(3000)
		s := mk(h.eng, h.done)[idx]
		h.feed(s, 3e6, dist.Bimodal{Short: us(0.5), Long: us(50), PLong: 0.01}, 3000, uint64(idx))
		h.eng.RunAll()
		if h.nDone != 3000 {
			t.Fatalf("%s completed %d of 3000", s.Name(), h.nDone)
		}
	}
}
