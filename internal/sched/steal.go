package sched

import (
	"repro/internal/exec"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Steal is d-FCFS with work stealing, modelling ZygOS (§II-D): idle cores
// with empty private queues pull requests from other cores' queues. Each
// steal costs 2-3 cache misses of inter-thread communication (the paper
// quotes 200-400 ns; fabric.Default uses 300 ns), charged to the thief
// before it can execute the stolen request. Victims are chosen at random,
// as ZygOS does, which is SLO-unaware and moves a large fraction of
// requests across cores at load.
type Steal struct {
	PickupCost sim.Time // local-queue fetch cost
	StealCost  sim.Time // remote probe+fetch cost

	eng     *sim.Engine
	cores   []*exec.Core
	queues  []exec.Deque
	steerer *nic.Steerer
	rng     *sim.RNG
	done    Done
	obs     Observer
	probe   Probe

	// doneFns[i] is core i's completion callback, bound once at
	// construction so the per-request path never allocates a closure.
	doneFns []func(*rpcproto.Request)

	// Stats.
	Stolen    uint64 // requests moved across cores
	Delivered uint64
}

// NewSteal builds a ZygOS-style scheduler over n cores.
func NewSteal(eng *sim.Engine, n int, steerer *nic.Steerer, pickup, steal sim.Time, rng *sim.RNG, done Done) *Steal {
	s := &Steal{
		PickupCost: overheadOrZero(pickup),
		StealCost:  overheadOrZero(steal),
		eng:        eng,
		cores:      make([]*exec.Core, n),
		queues:     make([]exec.Deque, n),
		steerer:    steerer,
		rng:        rng,
		done:       done,
		obs:        NopObserver{},
	}
	s.doneFns = make([]func(*rpcproto.Request), n)
	for i := range s.cores {
		s.cores[i] = exec.NewCore(eng, i, i)
		i := i
		s.doneFns[i] = func(r *rpcproto.Request) {
			if s.probe != nil {
				s.probe.OnComplete(r, i)
			}
			s.done(r)
			s.tryStart(i)
		}
	}
	return s
}

// SetObserver installs instrumentation.
func (s *Steal) SetObserver(o Observer) { s.obs, s.probe = o, ProbeOf(o) }

// Name implements Scheduler.
func (s *Steal) Name() string { return "zygos-steal" }

// Deliver implements Scheduler.
//
//altolint:hotpath
func (s *Steal) Deliver(r *rpcproto.Request) {
	s.Delivered++
	q := s.steerer.Steer(r)
	r.GroupHint = q
	s.obs.OnEnqueue(r, q, s.queues[q].Len())
	r.Enq = s.eng.Now()
	s.queues[q].PushTail(r)
	if !s.cores[q].Busy() {
		s.tryStart(q)
		return
	}
	// The home core is busy: any idle core may steal it immediately
	// (ZygOS cores spin-poll for steal opportunities when idle).
	for i := range s.cores {
		if !s.cores[i].Busy() {
			s.tryStart(i)
			return
		}
	}
}

// tryStart makes core i pull work: first from its own queue, then by
// stealing from a random victim.
//
//altolint:hotpath
func (s *Steal) tryStart(i int) {
	if s.cores[i].Busy() {
		return
	}
	if s.queues[i].Len() > 0 {
		r := s.queues[i].PopHead()
		if s.probe != nil {
			s.probe.OnDequeue(r, i, false)
		}
		s.run(i, r, s.PickupCost)
		return
	}
	// Steal: random victim probing, up to a full sweep. ZygOS probes
	// random queues; we charge one steal cost for the successful fetch
	// (failed probes are cheap spins on cached lines).
	off := s.rng.Intn(len(s.queues))
	for k := 0; k < len(s.queues); k++ {
		v := (off + k) % len(s.queues)
		if v == i {
			continue
		}
		if s.queues[v].Len() > 0 {
			r := s.queues[v].PopHead()
			s.Stolen++
			if s.probe != nil {
				s.probe.OnDequeue(r, v, false)
				s.probe.OnSteal(r, i, v)
			}
			s.run(i, r, s.StealCost)
			return
		}
	}
}

//altolint:hotpath
func (s *Steal) run(i int, r *rpcproto.Request, overhead sim.Time) {
	if s.probe != nil {
		s.probe.OnRun(r, i)
	}
	s.cores[i].Start(r, overhead, s.doneFns[i], nil)
}

// QueueLens implements Scheduler.
func (s *Steal) QueueLens() []int { return s.QueueLensInto(nil) }

// QueueLensInto implements Scheduler.
//
//altolint:hotpath
func (s *Steal) QueueLensInto(buf []int) []int {
	buf = buf[:0]
	for i := range s.queues {
		buf = append(buf, s.queues[i].Len()) //altolint:allow hotalloc scratch reuse: buf grows to core count once, then steady-state zero-alloc
	}
	return buf
}

// Cores exposes the core array for utilisation reporting.
func (s *Steal) Cores() []*exec.Core { return s.cores }

// StealFraction reports the fraction of delivered requests that were
// moved across cores (the paper quotes ~60 % for ZygOS at load).
func (s *Steal) StealFraction() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.Stolen) / float64(s.Delivered)
}

var _ Scheduler = (*Steal)(nil)
