// Package sched implements the baseline RPC schedulers the paper compares
// against (Table I / §II-D):
//
//   - DFCFS: NIC-RSS distributed FCFS with per-core queues (IX, plain RSS).
//   - Steal: d-FCFS plus idle-core work stealing (ZygOS).
//   - Central: a centralized software dispatcher with preemption
//     (Shinjuku): one dedicated dispatcher core, bounded dispatch
//     throughput, 5 µs-class preemption quantum.
//   - JBSQ: a hardware scheduler with a central NIC-managed queue and
//     bounded per-core queues (RPCValet, Nebula, nanoPU — differing in
//     NIC-to-core transfer cost and preemption support).
//
// The ALTOCUMULUS scheduler itself lives in internal/core.
package sched

import (
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Scheduler routes delivered requests to cores. Deliver is called by the
// server harness once the NIC receive path has completed; the request's
// Service field already includes any on-core stack processing cost.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Deliver hands an arriving request to the scheduler at engine-now.
	Deliver(r *rpcproto.Request)
	// QueueLens returns a snapshot of the scheduler's queue lengths
	// (semantics are scheduler-specific; used for instrumentation). The
	// returned slice is freshly allocated — callers may keep or mutate it.
	QueueLens() []int
	// QueueLensInto writes the same snapshot into buf (reused from
	// length 0, growing as needed) and returns it. Hot paths that sample
	// queue lengths every tick use this with a per-simulation scratch
	// buffer; the snapshot is only valid until the next call with the
	// same buffer.
	QueueLensInto(buf []int) []int
}

// Done is invoked exactly once per request at completion time, with
// r.Finish set.
type Done func(r *rpcproto.Request)

// Observer receives scheduling-time instrumentation. The Fig. 7 analysis
// records the queue length each request observed on arrival.
type Observer interface {
	// OnEnqueue fires when r joins queue q whose length (excluding r) was
	// qlen.
	OnEnqueue(r *rpcproto.Request, q, qlen int)
}

// NopObserver ignores all events.
type NopObserver struct{}

// OnEnqueue implements Observer.
func (NopObserver) OnEnqueue(*rpcproto.Request, int, int) {}

// RequeueCause says why a request re-entered a queue after its first
// enqueue (OnEnqueue fires exactly once per request, at delivery).
type RequeueCause int

const (
	// RequeueTransfer: a central-to-local (or NetRX-to-worker) transfer
	// landed, placing the request in a per-core queue.
	RequeueTransfer RequeueCause = iota
	// RequeuePreempt: a quantum expired and the remainder re-queued.
	RequeuePreempt
	// RequeueMigrate: an ALTOCUMULUS MIGRATE batch was admitted at the
	// destination NetRX.
	RequeueMigrate
	// RequeueNack: a NACKed (or aborted) MIGRATE returned its requests
	// to the source NetRX.
	RequeueNack
	// RequeueForward: a finished phase of a multi-phase request was
	// enqueued onto the NetRX of the group serving its next phase's
	// core class (DESIGN.md §15).
	RequeueForward
)

func (c RequeueCause) String() string {
	switch c {
	case RequeuePreempt:
		return "preempt"
	case RequeueMigrate:
		return "migrate"
	case RequeueNack:
		return "nack"
	case RequeueForward:
		return "forward"
	default:
		return "transfer"
	}
}

// Probe is the full-fidelity instrumentation interface: every queue
// mutation and core transition a scheduler performs, in the order it
// performs them. It exists for the invariant checker (internal/check);
// schedulers emit probe events only when the installed Observer also
// implements Probe, so plain observers cost nothing extra.
//
// Queue ids are scheduler-specific but fixed per instance:
//
//   - DFCFS / Steal / RSSPlus: queue i is core i's private queue.
//   - Central: queue 0 is the single central queue (no owning core).
//   - JBSQ: queue 0 is the central NIC queue; queue 1+i is core i's
//     bounded local queue.
//   - ALTOCUMULUS (internal/core): queue g is group g's NetRX; queue
//     G + g*W + w is worker (g, w)'s local queue, whose core id is
//     g*W + w.
type Probe interface {
	Observer
	// OnRequeue fires when r re-joins the tail of queue q for the given
	// cause; qlen is the queue length excluding r.
	OnRequeue(r *rpcproto.Request, q int, cause RequeueCause, qlen int)
	// OnDequeue fires when r is removed from queue q; fromTail reports a
	// tail pop (ALTOCUMULUS tail-selection), otherwise the head.
	OnDequeue(r *rpcproto.Request, q int, fromTail bool)
	// OnRun fires when core begins executing r (including any pickup
	// overhead charged by the core).
	OnRun(r *rpcproto.Request, core int)
	// OnComplete fires when core finishes r, before the scheduler's Done
	// callback.
	OnComplete(r *rpcproto.Request, core int)
	// OnPreempt fires when core's quantum expires on r, before the
	// remainder re-queues.
	OnPreempt(r *rpcproto.Request, core int)
	// OnSteal fires when an idle core (thief) takes r from another
	// core's queue (victim), after the OnDequeue from the victim.
	OnSteal(r *rpcproto.Request, thief, victim int)
	// OnOutstanding reports bounded-queue accounting: after committing r
	// to core, its outstanding count (running + queued + in-flight) is n
	// against the scheduler's bound.
	OnOutstanding(r *rpcproto.Request, core, n, bound int)
	// OnMigrate reports one MIGRATE batch that passed the Algorithm 1
	// line 8 guard: srcLen and dstView are the source queue length and
	// the source's synchronized view of the destination at decision
	// time, batch the configured batch size S, guarded whether the
	// q[src]-S < q[dst]+S check was enabled.
	OnMigrate(src, dst, srcLen, dstView, batch int, guarded bool)
}

// ProbeOf returns o as a Probe, or nil when o is a plain Observer.
// Schedulers cache the result so the per-event cost of an uninstalled
// probe is one nil check.
func ProbeOf(o Observer) Probe {
	if p, ok := o.(Probe); ok {
		return p
	}
	return nil
}

// PhaseProbe extends Probe with phase-lifecycle events for schedulers
// that run multi-phase requests (internal/core with heterogeneous
// groups). Separate from Probe so existing probes keep compiling.
type PhaseProbe interface {
	Probe
	// OnPhaseDone fires when core finishes a non-final phase of r and
	// the scheduler takes the request off the core to forward it (the
	// back-to-back local continuation emits no event). r.Phase has
	// already advanced to the next phase.
	OnPhaseDone(r *rpcproto.Request, core int)
}

// PhaseProbeOf returns o as a PhaseProbe, or nil.
func PhaseProbeOf(o Observer) PhaseProbe {
	if p, ok := o.(PhaseProbe); ok {
		return p
	}
	return nil
}

// pickupLoop is a tiny helper shared by queue-draining schedulers.
type starter interface {
	tryStart(core int)
}

// overheadOrZero guards against negative configured overheads.
func overheadOrZero(d sim.Time) sim.Time {
	if d < 0 {
		return 0
	}
	return d
}
