// Package sched implements the baseline RPC schedulers the paper compares
// against (Table I / §II-D):
//
//   - DFCFS: NIC-RSS distributed FCFS with per-core queues (IX, plain RSS).
//   - Steal: d-FCFS plus idle-core work stealing (ZygOS).
//   - Central: a centralized software dispatcher with preemption
//     (Shinjuku): one dedicated dispatcher core, bounded dispatch
//     throughput, 5 µs-class preemption quantum.
//   - JBSQ: a hardware scheduler with a central NIC-managed queue and
//     bounded per-core queues (RPCValet, Nebula, nanoPU — differing in
//     NIC-to-core transfer cost and preemption support).
//
// The ALTOCUMULUS scheduler itself lives in internal/core.
package sched

import (
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Scheduler routes delivered requests to cores. Deliver is called by the
// server harness once the NIC receive path has completed; the request's
// Service field already includes any on-core stack processing cost.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Deliver hands an arriving request to the scheduler at engine-now.
	Deliver(r *rpcproto.Request)
	// QueueLens returns a snapshot of the scheduler's queue lengths
	// (semantics are scheduler-specific; used for instrumentation).
	QueueLens() []int
}

// Done is invoked exactly once per request at completion time, with
// r.Finish set.
type Done func(r *rpcproto.Request)

// Observer receives scheduling-time instrumentation. The Fig. 7 analysis
// records the queue length each request observed on arrival.
type Observer interface {
	// OnEnqueue fires when r joins queue q whose length (excluding r) was
	// qlen.
	OnEnqueue(r *rpcproto.Request, q, qlen int)
}

// NopObserver ignores all events.
type NopObserver struct{}

// OnEnqueue implements Observer.
func (NopObserver) OnEnqueue(*rpcproto.Request, int, int) {}

// pickupLoop is a tiny helper shared by queue-draining schedulers.
type starter interface {
	tryStart(core int)
}

// overheadOrZero guards against negative configured overheads.
func overheadOrZero(d sim.Time) sim.Time {
	if d < 0 {
		return 0
	}
	return d
}
