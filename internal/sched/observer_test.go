package sched

import (
	"testing"

	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// countingObserver records enqueue events.
type countingObserver struct {
	events []int // queue length seen at each enqueue
	queues []int
}

func (o *countingObserver) OnEnqueue(r *rpcproto.Request, q, qlen int) {
	o.events = append(o.events, qlen)
	o.queues = append(o.queues, q)
}

func TestObserversSeeEnqueues(t *testing.T) {
	mk := func(eng *sim.Engine, done Done, obs Observer) []Scheduler {
		rng := sim.NewRNG(5)
		d := NewDFCFS(eng, 2, nic.NewSteerer(nic.SteerConnection, 2, nil), 0, done)
		d.SetObserver(obs)
		st := NewSteal(eng, 2, nic.NewSteerer(nic.SteerConnection, 2, nil), 0, 0, rng, done)
		st.SetObserver(obs)
		c := NewCentral(eng, 2, 0, 0, 0, 0, done)
		c.SetObserver(obs)
		j := NewJBSQ(eng, 2, VariantNebula, 2, 0, 0, 0, 0, done)
		j.SetObserver(obs)
		return []Scheduler{d, st, c, j}
	}
	for idx := 0; idx < 4; idx++ {
		eng := sim.NewEngine()
		obs := &countingObserver{}
		nDone := 0
		ss := mk(eng, func(*rpcproto.Request) { nDone++ }, obs)
		s := ss[idx]
		for i := 0; i < 10; i++ {
			r := &rpcproto.Request{ID: uint64(i), Conn: uint32(i), Service: sim.Microsecond}
			eng.At(sim.Time(i)*100*sim.Nanosecond, func() { s.Deliver(r) })
		}
		eng.RunAll()
		if nDone != 10 {
			t.Fatalf("%s: done %d", s.Name(), nDone)
		}
		if len(obs.events) != 10 {
			t.Fatalf("%s: observer saw %d enqueues", s.Name(), len(obs.events))
		}
	}
}

func TestJBSQEngineSerialization(t *testing.T) {
	// With a 100ns engine cost, 4 simultaneous arrivals on 4 idle cores
	// start 100ns apart: the central engine is a serial resource.
	h := newHarness(4)
	s := NewJBSQ(h.eng, 4, VariantNebula, 2, 0, 100*sim.Nanosecond, 0, 0, h.done)
	reqs := make([]*rpcproto.Request, 4)
	for i := range reqs {
		reqs[i] = &rpcproto.Request{ID: uint64(i), Service: us(1)}
		r := reqs[i]
		h.eng.At(0, func() { s.Deliver(r) })
	}
	h.eng.RunAll()
	if h.nDone != 4 {
		t.Fatalf("done = %d", h.nDone)
	}
	for i, r := range reqs {
		want := sim.Time(i+1)*100*sim.Nanosecond + us(1)
		if r.Finish != want {
			t.Fatalf("req %d finished at %v, want %v", i, r.Finish, want)
		}
	}
}

func TestJBSQRoundRobinTieBreak(t *testing.T) {
	// Sequential arrivals to idle cores spread round-robin rather than
	// piling onto core 0.
	h := newHarness(4)
	s := NewJBSQ(h.eng, 4, VariantNebula, 2, 0, 0, 0, 0, h.done)
	targets := map[int]bool{}
	for i := 0; i < 4; i++ {
		r := &rpcproto.Request{ID: uint64(i), Service: us(100)}
		h.eng.At(sim.Time(i)*sim.Nanosecond, func() {
			s.Deliver(r)
			// All cores idle at each arrival: the pick must rotate.
			q := s.QueueLens()
			for c, p := range q[1:] {
				if p > 0 {
					targets[c] = true
				}
			}
		})
	}
	h.eng.RunAll()
	if len(targets) != 4 {
		t.Fatalf("pushes did not rotate across cores: %v", targets)
	}
}

func TestCentralNoDoubleClaim(t *testing.T) {
	// A slow dispatcher must not assign two requests to the same worker
	// while the first dispatch is still in flight.
	h := newHarness(2)
	s := NewCentral(h.eng, 1, 500*sim.Nanosecond, 0, 0, 0, h.done)
	a := &rpcproto.Request{ID: 1, Service: us(1)}
	b := &rpcproto.Request{ID: 2, Service: us(1)}
	h.eng.At(0, func() { s.Deliver(a) })
	h.eng.At(10*sim.Nanosecond, func() { s.Deliver(b) })
	h.eng.RunAll()
	if h.nDone != 2 {
		t.Fatalf("done = %d", h.nDone)
	}
	// Worker is serial: b starts only after a completes plus dispatch.
	if b.Start < a.Finish {
		t.Fatalf("double dispatch: b started %v before a finished %v", b.Start, a.Finish)
	}
}
