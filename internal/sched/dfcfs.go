package sched

import (
	"repro/internal/exec"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// DFCFS is distributed FCFS: the NIC steers each request to one per-core
// queue and each core drains only its own queue, run-to-completion. With
// connection steering this is IX / plain RSS (§II-D, Fig. 4(b) without
// stealing). It scales perfectly but ignores load, so bursts and long
// requests produce head-of-line blocking and unpredictable tails.
type DFCFS struct {
	Label      string
	PickupCost sim.Time // cost of a core fetching from its private queue

	eng     *sim.Engine
	cores   []*exec.Core
	queues  []exec.Deque
	steerer *nic.Steerer
	done    Done
	obs     Observer
	probe   Probe
	// doneFns[i] is core i's completion callback, bound once here so the
	// per-request path never allocates a closure.
	doneFns []func(*rpcproto.Request)
}

// NewDFCFS builds a d-FCFS scheduler over n cores.
func NewDFCFS(eng *sim.Engine, n int, steerer *nic.Steerer, pickup sim.Time, done Done) *DFCFS {
	s := &DFCFS{
		Label:      "d-FCFS",
		PickupCost: overheadOrZero(pickup),
		eng:        eng,
		cores:      make([]*exec.Core, n),
		queues:     make([]exec.Deque, n),
		steerer:    steerer,
		done:       done,
		obs:        NopObserver{},
	}
	s.doneFns = make([]func(*rpcproto.Request), n)
	for i := range s.cores {
		s.cores[i] = exec.NewCore(eng, i, i)
		i := i
		s.doneFns[i] = func(r *rpcproto.Request) {
			if s.probe != nil {
				s.probe.OnComplete(r, i)
			}
			s.done(r)
			s.tryStart(i)
		}
	}
	return s
}

// SetObserver installs instrumentation.
func (s *DFCFS) SetObserver(o Observer) { s.obs, s.probe = o, ProbeOf(o) }

// Name implements Scheduler.
func (s *DFCFS) Name() string { return s.Label }

// Deliver implements Scheduler.
//
//altolint:hotpath
func (s *DFCFS) Deliver(r *rpcproto.Request) {
	q := s.steerer.Steer(r)
	r.GroupHint = q
	s.obs.OnEnqueue(r, q, s.queues[q].Len())
	r.Enq = s.eng.Now()
	s.queues[q].PushTail(r)
	s.tryStart(q)
}

//altolint:hotpath
func (s *DFCFS) tryStart(i int) {
	if s.cores[i].Busy() || s.queues[i].Len() == 0 {
		return
	}
	r := s.queues[i].PopHead()
	if s.probe != nil {
		s.probe.OnDequeue(r, i, false)
		s.probe.OnRun(r, i)
	}
	s.cores[i].Start(r, s.PickupCost, s.doneFns[i], nil)
}

// QueueLens implements Scheduler.
func (s *DFCFS) QueueLens() []int { return s.QueueLensInto(nil) }

// QueueLensInto implements Scheduler.
//
//altolint:hotpath
func (s *DFCFS) QueueLensInto(buf []int) []int {
	buf = buf[:0]
	for i := range s.queues {
		buf = append(buf, s.queues[i].Len()) //altolint:allow hotalloc scratch reuse: buf grows to core count once, then steady-state zero-alloc
	}
	return buf
}

// Cores exposes the core array for utilisation reporting.
func (s *DFCFS) Cores() []*exec.Core { return s.cores }

var _ Scheduler = (*DFCFS)(nil)
var _ starter = (*DFCFS)(nil)
