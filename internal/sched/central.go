package sched

import (
	"repro/internal/exec"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Central is a centralized software dispatcher modelling Shinjuku
// (§II-D, Fig. 4(a)): one dedicated core runs the dispatch loop over a
// single FCFS queue and hands requests to worker cores through the cache
// coherence protocol. Dispatch operations serialize on the dispatcher
// (DispatchCost each — Shinjuku's dispatcher tops out around 5 M
// requests/s), and workers preempt long requests at a quantum,
// re-enqueueing the remainder centrally, which removes head-of-line
// blocking at the cost of preemption overhead.
type Central struct {
	DispatchCost sim.Time // dispatcher occupancy per dispatched request
	HandoffCost  sim.Time // dispatcher->worker transfer (coherence, 70 cyc)

	eng      *sim.Engine
	workers  []*exec.Core
	claimed  []bool // dispatch in flight toward this worker
	queue    exec.Deque
	done     Done
	obs      Observer
	probe    Probe
	dispFree sim.Time // dispatcher busy-until

	// Per-worker callbacks, bound once at construction so the dispatch
	// path allocates no closures. landFns[w] is the arg-event trampoline
	// for a dispatch landing on worker w (the request rides in the event's
	// arg slot); doneFns/preemptFns are the core completion callbacks.
	landFns    []func(any, int64)
	doneFns    []func(*rpcproto.Request)
	preemptFns []func(*rpcproto.Request)

	preempted uint64
}

// NewCentral builds a Shinjuku-style scheduler with n worker cores (the
// dispatcher core is additional and implicit, matching the paper's
// accounting that one core is sacrificed). quantum > 0 enables
// preemption.
func NewCentral(eng *sim.Engine, n int, dispatch, handoff, quantum, preemptCost sim.Time, done Done) *Central {
	s := &Central{
		DispatchCost: overheadOrZero(dispatch),
		HandoffCost:  overheadOrZero(handoff),
		eng:          eng,
		workers:      make([]*exec.Core, n),
		claimed:      make([]bool, n),
		done:         done,
		obs:          NopObserver{},
	}
	s.landFns = make([]func(any, int64), n)
	s.doneFns = make([]func(*rpcproto.Request), n)
	s.preemptFns = make([]func(*rpcproto.Request), n)
	for i := range s.workers {
		s.workers[i] = exec.NewCore(eng, i, i)
		s.workers[i].Quantum = quantum
		s.workers[i].PreemptCost = preemptCost
		i := i
		s.landFns[i] = func(arg any, _ int64) { s.land(arg.(*rpcproto.Request), i) }
		s.doneFns[i] = func(r *rpcproto.Request) {
			if s.probe != nil {
				s.probe.OnComplete(r, i)
			}
			s.onDone(r)
		}
		s.preemptFns[i] = func(r *rpcproto.Request) {
			if s.probe != nil {
				s.probe.OnPreempt(r, i)
			}
			s.onPreempt(r)
		}
	}
	return s
}

// SetObserver installs instrumentation.
func (s *Central) SetObserver(o Observer) { s.obs, s.probe = o, ProbeOf(o) }

// Name implements Scheduler.
func (s *Central) Name() string { return "shinjuku-central" }

// Deliver implements Scheduler.
//
//altolint:hotpath
func (s *Central) Deliver(r *rpcproto.Request) {
	s.obs.OnEnqueue(r, 0, s.queue.Len())
	r.Enq = s.eng.Now()
	s.queue.PushTail(r)
	s.pump()
}

// pump dispatches the queue head to an idle worker, serializing on the
// dispatcher core.
//
//altolint:hotpath
func (s *Central) pump() {
	for s.queue.Len() > 0 {
		w := s.idleWorker()
		if w < 0 {
			return
		}
		r := s.queue.PopHead()
		if s.probe != nil {
			s.probe.OnDequeue(r, 0, false)
		}
		now := s.eng.Now()
		start := now
		if s.dispFree > start {
			start = s.dispFree
		}
		s.dispFree = start + s.DispatchCost
		wait := (start - now) + s.DispatchCost
		s.claimed[w] = true
		s.eng.AfterArg(wait, s.landFns[w], r, 0)
	}
}

// land completes a dispatch on worker w: the request leaves the
// dispatcher and begins executing (after the handoff cost).
//
//altolint:hotpath
func (s *Central) land(r *rpcproto.Request, w int) {
	s.claimed[w] = false
	if s.probe != nil {
		s.probe.OnRun(r, w)
	}
	s.workers[w].Start(r, s.HandoffCost, s.doneFns[w], s.preemptFns[w])
}

func (s *Central) onDone(r *rpcproto.Request) {
	s.done(r)
	s.pump()
}

func (s *Central) onPreempt(r *rpcproto.Request) {
	s.preempted++
	// The remainder returns to the tail of the central queue (processor
	// sharing across long requests, Shinjuku-style).
	if s.probe != nil {
		s.probe.OnRequeue(r, 0, RequeuePreempt, s.queue.Len())
	}
	s.queue.PushTail(r)
	s.pump()
}

func (s *Central) idleWorker() int {
	for i, w := range s.workers {
		if !w.Busy() && !s.claimed[i] {
			return i
		}
	}
	return -1
}

// QueueLens implements Scheduler.
func (s *Central) QueueLens() []int { return s.QueueLensInto(nil) }

// QueueLensInto implements Scheduler.
//
//altolint:hotpath
func (s *Central) QueueLensInto(buf []int) []int {
	return append(buf[:0], s.queue.Len()) //altolint:allow hotalloc scratch reuse: buf grows to one element once, then steady-state zero-alloc
}

// Cores exposes the worker array for utilisation reporting (the
// dispatcher core is additional and always busy polling).
func (s *Central) Cores() []*exec.Core { return s.workers }

// Preemptions returns the number of quantum expiries observed.
func (s *Central) Preemptions() uint64 { return s.preempted }

var _ Scheduler = (*Central)(nil)
