package sched

import (
	"repro/internal/exec"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// Central is a centralized software dispatcher modelling Shinjuku
// (§II-D, Fig. 4(a)): one dedicated core runs the dispatch loop over a
// single FCFS queue and hands requests to worker cores through the cache
// coherence protocol. Dispatch operations serialize on the dispatcher
// (DispatchCost each — Shinjuku's dispatcher tops out around 5 M
// requests/s), and workers preempt long requests at a quantum,
// re-enqueueing the remainder centrally, which removes head-of-line
// blocking at the cost of preemption overhead.
type Central struct {
	DispatchCost sim.Time // dispatcher occupancy per dispatched request
	HandoffCost  sim.Time // dispatcher->worker transfer (coherence, 70 cyc)

	eng      *sim.Engine
	workers  []*exec.Core
	claimed  []bool // dispatch in flight toward this worker
	queue    exec.Deque
	done     Done
	obs      Observer
	probe    Probe
	dispFree sim.Time // dispatcher busy-until

	preempted uint64
}

// NewCentral builds a Shinjuku-style scheduler with n worker cores (the
// dispatcher core is additional and implicit, matching the paper's
// accounting that one core is sacrificed). quantum > 0 enables
// preemption.
func NewCentral(eng *sim.Engine, n int, dispatch, handoff, quantum, preemptCost sim.Time, done Done) *Central {
	s := &Central{
		DispatchCost: overheadOrZero(dispatch),
		HandoffCost:  overheadOrZero(handoff),
		eng:          eng,
		workers:      make([]*exec.Core, n),
		claimed:      make([]bool, n),
		done:         done,
		obs:          NopObserver{},
	}
	for i := range s.workers {
		s.workers[i] = exec.NewCore(eng, i, i)
		s.workers[i].Quantum = quantum
		s.workers[i].PreemptCost = preemptCost
	}
	return s
}

// SetObserver installs instrumentation.
func (s *Central) SetObserver(o Observer) { s.obs, s.probe = o, ProbeOf(o) }

// Name implements Scheduler.
func (s *Central) Name() string { return "shinjuku-central" }

// Deliver implements Scheduler.
func (s *Central) Deliver(r *rpcproto.Request) {
	s.obs.OnEnqueue(r, 0, s.queue.Len())
	r.Enq = s.eng.Now()
	s.queue.PushTail(r)
	s.pump()
}

// pump dispatches the queue head to an idle worker, serializing on the
// dispatcher core.
func (s *Central) pump() {
	for s.queue.Len() > 0 {
		w := s.idleWorker()
		if w < 0 {
			return
		}
		r := s.queue.PopHead()
		if s.probe != nil {
			s.probe.OnDequeue(r, 0, false)
		}
		now := s.eng.Now()
		start := now
		if s.dispFree > start {
			start = s.dispFree
		}
		s.dispFree = start + s.DispatchCost
		wait := (start - now) + s.DispatchCost
		worker := s.workers[w]
		s.claimed[w] = true
		s.eng.After(wait, func() {
			s.claimed[worker.ID] = false
			onDone, onPreempt := s.onDone, s.onPreempt
			if s.probe != nil {
				s.probe.OnRun(r, worker.ID)
				onDone = func(r *rpcproto.Request) {
					s.probe.OnComplete(r, worker.ID)
					s.onDone(r)
				}
				onPreempt = func(r *rpcproto.Request) {
					s.probe.OnPreempt(r, worker.ID)
					s.onPreempt(r)
				}
			}
			worker.Start(r, s.HandoffCost, onDone, onPreempt)
		})
	}
}

func (s *Central) onDone(r *rpcproto.Request) {
	s.done(r)
	s.pump()
}

func (s *Central) onPreempt(r *rpcproto.Request) {
	s.preempted++
	// The remainder returns to the tail of the central queue (processor
	// sharing across long requests, Shinjuku-style).
	if s.probe != nil {
		s.probe.OnRequeue(r, 0, RequeuePreempt, s.queue.Len())
	}
	s.queue.PushTail(r)
	s.pump()
}

func (s *Central) idleWorker() int {
	for i, w := range s.workers {
		if !w.Busy() && !s.claimed[i] {
			return i
		}
	}
	return -1
}

// QueueLens implements Scheduler.
func (s *Central) QueueLens() []int { return []int{s.queue.Len()} }

// Cores exposes the worker array for utilisation reporting (the
// dispatcher core is additional and always busy polling).
func (s *Central) Cores() []*exec.Core { return s.workers }

// Preemptions returns the number of quantum expiries observed.
func (s *Central) Preemptions() uint64 { return s.preempted }

var _ Scheduler = (*Central)(nil)
