package sched

import (
	"repro/internal/exec"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// RSSPlus is d-FCFS with periodic indirection-table rebalancing,
// modelling RSS++ (Barbette et al. [7], cited in §IX-E): the NIC hashes
// flows into buckets, buckets map to cores through an indirection table,
// and every rebalance interval (the paper quotes 20 µs) the table is
// rewritten to move buckets from the most- to the least-loaded cores.
// Between rebalances it is exactly RSS — load-blind and imbalance-prone;
// the rebalancer bounds how long a skewed mapping persists.
type RSSPlus struct {
	PickupCost sim.Time
	Interval   sim.Time // table rebalance period

	eng     *sim.Engine
	cores   []*exec.Core
	queues  []exec.Deque
	table   []int // bucket -> core
	buckets int
	load    []int // per-bucket requests since last rebalance
	done    Done
	obs     Observer
	probe   Probe
	stopped bool
	// doneFns[i] is core i's completion callback, bound once at
	// construction so the per-request path never allocates a closure;
	// coreLoad is the rebalancer's per-core accumulator, reused across
	// ticks for the same reason.
	doneFns     []func(*rpcproto.Request)
	coreLoad    []int
	rebalanceFn func() // s.rebalance bound once (a method value allocates per evaluation)

	Rebalances uint64
	MovedBkts  uint64
}

// NewRSSPlus builds the scheduler over n cores with buckets hash buckets
// (RSS NICs typically expose 128 or 512).
func NewRSSPlus(eng *sim.Engine, n, buckets int, pickup, interval sim.Time, done Done) *RSSPlus {
	if buckets < n {
		buckets = 4 * n
	}
	s := &RSSPlus{
		PickupCost: overheadOrZero(pickup),
		Interval:   interval,
		eng:        eng,
		cores:      make([]*exec.Core, n),
		queues:     make([]exec.Deque, n),
		table:      make([]int, buckets),
		buckets:    buckets,
		load:       make([]int, buckets),
		done:       done,
		obs:        NopObserver{},
	}
	s.doneFns = make([]func(*rpcproto.Request), n)
	s.coreLoad = make([]int, n)
	for i := range s.cores {
		s.cores[i] = exec.NewCore(eng, i, i)
		i := i
		s.doneFns[i] = func(r *rpcproto.Request) {
			if s.probe != nil {
				s.probe.OnComplete(r, i)
			}
			s.done(r)
			s.tryStart(i)
		}
	}
	for b := range s.table {
		s.table[b] = b % n
	}
	s.rebalanceFn = s.rebalance
	if interval > 0 {
		eng.After(interval, s.rebalanceFn)
	}
	return s
}

// SetObserver installs instrumentation.
func (s *RSSPlus) SetObserver(o Observer) { s.obs, s.probe = o, ProbeOf(o) }

// Name implements Scheduler.
func (s *RSSPlus) Name() string { return "rss++" }

// Stop halts the periodic rebalancer so the event queue can drain.
func (s *RSSPlus) Stop() { s.stopped = true }

// Deliver implements Scheduler.
//
//altolint:hotpath
func (s *RSSPlus) Deliver(r *rpcproto.Request) {
	b := int(hashConn(r.Conn)) % s.buckets
	s.load[b]++
	q := s.table[b]
	r.GroupHint = q
	s.obs.OnEnqueue(r, q, s.queues[q].Len())
	r.Enq = s.eng.Now()
	s.queues[q].PushTail(r)
	s.tryStart(q)
}

//altolint:hotpath
func (s *RSSPlus) tryStart(i int) {
	if s.cores[i].Busy() || s.queues[i].Len() == 0 {
		return
	}
	r := s.queues[i].PopHead()
	if s.probe != nil {
		s.probe.OnDequeue(r, i, false)
		s.probe.OnRun(r, i)
	}
	s.cores[i].Start(r, s.PickupCost, s.doneFns[i], nil)
}

// rebalance rewrites the indirection table: buckets are reassigned from
// the most-loaded core (by queued work) to the least-loaded, one bucket
// per pass, mirroring RSS++'s incremental migration of table entries.
func (s *RSSPlus) rebalance() {
	if s.stopped {
		return
	}
	// Rearm rides the engine's periodic fast path: the rebalance tick
	// keeps its slab slot instead of a delete+insert each interval.
	defer func() {
		s.eng.Rearm(s.Interval)
	}()
	s.Rebalances++
	defer func() {
		for b := range s.load {
			s.load[b] = 0
		}
	}()

	// Measured per-core load over the last interval (RSS++ balances on
	// load estimates, not instantaneous queue depth, which is noisy and
	// drifts buckets under churn). The accumulator is scheduler-owned
	// scratch so the every-20µs rebalance tick allocates nothing.
	coreLoad := s.coreLoad
	for i := range coreLoad {
		coreLoad[i] = 0
	}
	total := 0
	for b, c := range s.table {
		coreLoad[c] += s.load[b]
		total += s.load[b]
	}
	if total == 0 {
		return
	}
	max, min := 0, 0
	for i, l := range coreLoad {
		if l > coreLoad[max] {
			max = i
		}
		if l < coreLoad[min] {
			min = i
		}
	}
	avg := total / len(s.cores)
	diff := coreLoad[max] - coreLoad[min]
	// Only act on meaningful imbalance (>25% of a fair share).
	if diff*4 <= avg {
		return
	}
	// Move the bucket on the max core that minimises the residual
	// imbalance |diff - 2L|, requiring strict improvement (0 < L < diff)
	// so a move can never oscillate a hot bucket back and forth.
	best, bestResidual := -1, diff
	for b, c := range s.table {
		l := s.load[b]
		if c != max || l <= 0 || l >= diff {
			continue
		}
		residual := diff - 2*l
		if residual < 0 {
			residual = -residual
		}
		if residual < bestResidual {
			best, bestResidual = b, residual
		}
	}
	if best >= 0 {
		s.table[best] = min
		s.MovedBkts++
	}
}

// QueueLens implements Scheduler.
func (s *RSSPlus) QueueLens() []int { return s.QueueLensInto(nil) }

// QueueLensInto implements Scheduler.
//
//altolint:hotpath
func (s *RSSPlus) QueueLensInto(buf []int) []int {
	buf = buf[:0]
	for i := range s.queues {
		buf = append(buf, s.queues[i].Len()) //altolint:allow hotalloc scratch reuse: buf grows to core count once, then steady-state zero-alloc
	}
	return buf
}

// Cores exposes the core array for utilisation reporting.
func (s *RSSPlus) Cores() []*exec.Core { return s.cores }

// hashConn mirrors the steering hash for bucket selection.
func hashConn(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

var _ Scheduler = (*RSSPlus)(nil)
