package rpcproto

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	in := &Request{
		ID:      12345678901234,
		Conn:    42,
		Op:      OpSet,
		Payload: []byte("key=value"),
	}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Conn != in.Conn || out.Op != in.Op {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload mismatch: %q", out.Payload)
	}
	if out.Size != len(buf) {
		t.Fatalf("size = %d, want %d", out.Size, len(buf))
	}
}

func TestMarshalUnmarshalProperty(t *testing.T) {
	f := func(id uint64, conn uint32, op uint8, payload []byte) bool {
		if len(payload) > maxPayload {
			payload = payload[:maxPayload]
		}
		in := &Request{ID: id, Conn: conn, Op: Op(op % 4), Payload: payload}
		buf, err := Marshal(in)
		if err != nil {
			return false
		}
		out, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return out.ID == in.ID && out.Conn == in.Conn && out.Op == in.Op &&
			bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); err != ErrShortBuffer {
		t.Fatalf("short header: %v", err)
	}
	// Valid header claiming more payload than present.
	r := &Request{ID: 1, Payload: []byte("abcdef")}
	buf, _ := Marshal(r)
	if _, err := Unmarshal(buf[:len(buf)-2]); err != ErrShortBuffer {
		t.Fatalf("truncated payload: %v", err)
	}
	// Corrupt version byte.
	buf2, _ := Marshal(r)
	buf2[13] = 99
	if _, err := Unmarshal(buf2); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
	// Oversized payload rejected at marshal time.
	big := &Request{Payload: make([]byte, maxPayload+1)}
	if _, err := Marshal(big); err != ErrPayloadTooLarge {
		t.Fatalf("oversize: %v", err)
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	d := Descriptor{Ptr: 0xdeadbeefcafe, Addr: [6]byte{1, 2, 3, 4, 5, 6}}
	got := DecodeDescriptor(EncodeDescriptor(d))
	if got != d {
		t.Fatalf("descriptor round trip: %+v != %+v", got, d)
	}
}

func TestDescriptorSizeIs14Bytes(t *testing.T) {
	// §V-B: 8B pointer + 48-bit address = 14 B per descriptor.
	if DescriptorSize != 14 {
		t.Fatalf("DescriptorSize = %d", DescriptorSize)
	}
	enc := EncodeDescriptor(Descriptor{})
	if len(enc) != 14 {
		t.Fatalf("encoded size = %d", len(enc))
	}
}

func TestDescriptorFor(t *testing.T) {
	r := &Request{ID: 77, Conn: 9, Op: OpGet}
	d := DescriptorFor(r)
	if d.Ptr != 77 {
		t.Fatalf("ptr = %d", d.Ptr)
	}
	if d.Addr[0] != 9 || d.Addr[4] != byte(OpGet) {
		t.Fatalf("addr = %v", d.Addr)
	}
}

func TestLatency(t *testing.T) {
	r := &Request{Arrival: 100 * sim.Nanosecond, Finish: 350 * sim.Nanosecond}
	if got := r.Latency(); got != 250*sim.Nanosecond {
		t.Fatalf("latency = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unfinished latency should panic")
		}
	}()
	(&Request{}).Latency()
}

func TestStackProcessingTimes(t *testing.T) {
	// Fig. 1 anchor points for a 300 B message.
	tcp := NewStack(StackTCPIP).ProcessingTime(300)
	erpc := NewStack(StackERPC).ProcessingTime(300)
	nano := NewStack(StackNanoRPC).ProcessingTime(300)
	if tcp < 10*sim.Microsecond || tcp > 20*sim.Microsecond {
		t.Fatalf("TCP/IP 300B = %v, want ~15us", tcp)
	}
	if erpc < 800*sim.Nanosecond || erpc > 900*sim.Nanosecond {
		t.Fatalf("eRPC 300B = %v, want ~850ns", erpc)
	}
	if nano < 35*sim.Nanosecond || nano > 45*sim.Nanosecond {
		t.Fatalf("nanoRPC 300B = %v, want ~40ns", nano)
	}
	// The paper's ordering: each successive stack is dramatically faster.
	if !(tcp > 10*erpc && erpc > 10*nano) {
		t.Fatalf("stack ordering broken: %v, %v, %v", tcp, erpc, nano)
	}
}

func TestStackNegativeSize(t *testing.T) {
	m := NewStack(StackERPC)
	if m.ProcessingTime(-5) != m.Fixed {
		t.Fatal("negative size should clamp to fixed cost")
	}
}

func TestStringers(t *testing.T) {
	if StackTCPIP.String() != "TCP/IP" || StackERPC.String() != "eRPC" || StackNanoRPC.String() != "nanoRPC" {
		t.Fatal("stack stringer")
	}
	ops := map[Op]string{OpEcho: "ECHO", OpGet: "GET", OpSet: "SET", OpScan: "SCAN"}
	for op, want := range ops {
		if op.String() != want {
			t.Fatalf("op %d stringer = %q", op, op.String())
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	r := &Request{ID: 1, Conn: 2, Op: OpGet, Payload: make([]byte, 284)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	r := &Request{ID: 1, Conn: 2, Op: OpGet, Payload: make([]byte, 284)}
	buf, _ := Marshal(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUnmarshalIntoRoundTrip(t *testing.T) {
	in := &Request{ID: 987654321, Conn: 7, Op: OpGet, Payload: []byte("lookup-key")}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := UnmarshalInto(&out, buf); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Conn != in.Conn || out.Op != in.Op || out.Size != len(buf) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload mismatch: %q", out.Payload)
	}
}

// TestUnmarshalIntoReusesCapacity is the zero-alloc contract: decoding
// into a request whose payload slice already has capacity must reuse
// that backing array, not allocate a fresh one.
func TestUnmarshalIntoReusesCapacity(t *testing.T) {
	buf, err := Marshal(&Request{ID: 5, Payload: []byte("abcdefgh")})
	if err != nil {
		t.Fatal(err)
	}
	r := &Request{Payload: make([]byte, 0, 64)}
	backing := &r.Payload[:1][0]
	if err := UnmarshalInto(r, buf); err != nil {
		t.Fatal(err)
	}
	if &r.Payload[0] != backing {
		t.Fatal("UnmarshalInto reallocated a payload that had capacity")
	}
	// Stale scheduling state from a recycled slot must not survive.
	r.GroupHint, r.Migrated = 3, true
	if err := UnmarshalInto(r, buf); err != nil {
		t.Fatal(err)
	}
	if r.GroupHint != 0 || r.Migrated {
		t.Fatalf("recycled fields survived decode: %+v", r)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := UnmarshalInto(r, buf); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("UnmarshalInto allocates %.1f times per warm decode, want 0", avg)
	}
}

func TestUnmarshalIntoErrors(t *testing.T) {
	var r Request
	if err := UnmarshalInto(&r, []byte{1, 2, 3}); err != ErrShortBuffer {
		t.Fatalf("short header: %v", err)
	}
	buf, _ := Marshal(&Request{ID: 1, Payload: []byte("abcdef")})
	if err := UnmarshalInto(&r, buf[:len(buf)-2]); err != ErrShortBuffer {
		t.Fatalf("truncated payload: %v", err)
	}
	bad := append([]byte(nil), buf...)
	bad[13] = 99
	if err := UnmarshalInto(&r, bad); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
}

// FuzzUnmarshalInto holds UnmarshalInto to Unmarshal's exact behavior
// on arbitrary bytes — same error (or none) and same decoded fields —
// including short, split, and corrupt frames.
func FuzzUnmarshalInto(f *testing.F) {
	seed, _ := Marshal(&Request{ID: 3, Conn: 9, Op: OpSet, Payload: []byte("k=v")})
	f.Add(seed)
	f.Add(seed[:headerSize-1])
	f.Add(seed[:len(seed)-1])
	bad := append([]byte(nil), seed...)
	bad[13] = 0
	f.Add(bad)
	f.Add([]byte{})
	// Rack-forwarded (version-2) frames: a request carrying forwarding
	// provenance, one relayed through AppendForwarded, a v2 header
	// truncated inside the forwarding extension, and one with nonzero
	// reserved bytes.
	fwd, _ := Marshal(&Request{ID: 4, Conn: 11, Op: OpGet, Origin: 0xfeed, Hops: 1, Payload: []byte("rack")})
	f.Add(fwd)
	relayed, _ := AppendForwarded(nil, seed, 77, 0xbeef)
	f.Add(relayed)
	f.Add(fwd[:headerSize+2])
	reserved := append([]byte(nil), fwd...)
	reserved[22] = 1
	f.Add(reserved)
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := Unmarshal(data)
		got := &Request{Payload: make([]byte, 0, 16)}
		gotErr := UnmarshalInto(got, data)
		if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr != gotErr) {
			t.Fatalf("error mismatch: Unmarshal=%v UnmarshalInto=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if got.ID != want.ID || got.Conn != want.Conn || got.Op != want.Op || got.Size != want.Size ||
			got.Origin != want.Origin || got.Hops != want.Hops {
			t.Fatalf("field mismatch: %+v vs %+v", got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("payload mismatch: %q vs %q", got.Payload, want.Payload)
		}
	})
}
