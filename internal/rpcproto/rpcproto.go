// Package rpcproto defines the RPC data plane of the simulated server:
// the request object tracked through its lifetime, the 14-byte descriptor
// the ALTOCUMULUS hardware moves between manager tiles (§V-B: an 8 B
// pointer to the in-LLC message plus a 48-bit network address), a real
// binary wire format with marshal/unmarshal, and the RPC stack models
// whose processing latencies reproduce Fig. 1.
package rpcproto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Op is the application-level operation carried by an RPC.
type Op uint8

const (
	OpEcho Op = iota // synthetic workloads
	OpGet            // MICA GET
	OpSet            // MICA SET
	OpScan           // MICA SCAN (long request)
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpScan:
		return "SCAN"
	default:
		return "ECHO"
	}
}

// Request is one RPC tracked through the simulated server. Scheduling
// state lives here so schedulers avoid per-request maps on the hot path.
type Request struct {
	ID      uint64
	Conn    uint32 // network connection (flow) id; RSS hashes this
	Tenant  uint8  // application/tenant id for multi-tenant isolation studies
	Op      Op
	Size    int      // request message size in bytes (payload + header)
	Arrival sim.Time // when the NIC received it (latency measurement start)
	Service sim.Time // on-CPU service time of the handler

	// Scheduling state.
	Enq       sim.Time // when it entered its current queue
	Start     sim.Time // when a core started (or resumed) it
	Finish    sim.Time // completion time; 0 until done
	Remaining sim.Time // remaining service (preemption support)
	Migrated  bool     // has been migrated once already (§V-B restriction 4)
	Predicted bool     // was predicted to violate SLO (selected for migration)
	GroupHint int      // group/queue the request was initially steered to

	// Rack-forwarding state, carried on the wire only by version-2
	// frames (relayed through a rack front end such as cmd/altorack).
	// Origin is the connection id on the front end the request arrived
	// on — backends echo the relay-assigned ID, and the relay uses its
	// pending table to route the response back to Origin. Hops counts
	// forwarding stages (0 = direct client, 1 = one relay tier).
	Origin uint32
	Hops   uint8

	// Payload carries the application bytes (e.g. a MICA key/value);
	// synthetic workloads leave it nil.
	Payload []byte

	// Pool is an opaque owner handle: the live data plane stores the
	// packed arena slot id backing this request here so the completion
	// path can release the slot without a per-request lookup (the same
	// keep-state-on-the-request rule the scheduling fields follow).
	// Zero for heap-allocated requests.
	Pool uint64

	// Multi-phase lifecycle state (DESIGN.md §15). A phased request runs
	// as a chain of NumPhases phase-completion events instead of one
	// opaque service time; Service stays the sum of the base phase
	// durations so SLO and load accounting are phase-agnostic. The
	// arrays are fixed-size so a phased request still lives entirely in
	// its arena slot — no per-request allocation. NumPhases <= 1 is the
	// degenerate single-shot chain: every pre-phase code path is taken
	// unchanged (byte-identical traces).
	Phase     uint8 // current phase index (advances at each boundary)
	NumPhases uint8 // 0 or 1 = single-shot; 2..MaxPhases = phased

	PhaseSvc     [MaxPhases]sim.Time // base duration per phase (drawn at prepare)
	PhaseAcc     [MaxPhases]sim.Time // duration on the phase's affine class (== PhaseSvc when neutral)
	PhaseEnd     [MaxPhases]sim.Time // completion timestamp per phase; 0 until the phase finishes
	PhaseOffload [MaxPhases]sim.Time // transfer cost charged when the phase is forwarded to another group
	PhaseClass   [MaxPhases]uint8    // core-class affinity per phase (0 = general)

	// OnExecute, when non-nil, runs once when a core first begins this
	// request (before the execution duration is read). Applications use
	// it to perform their real work and finalise Service — e.g. MICA
	// executes the GET/SET here and adds the EREW remote-access penalty
	// if the request was migrated.
	OnExecute func(r *Request)
}

// MaxPhases bounds the phase chain of one request. Eight covers the
// 4-phase MICA profile (parse → index probe → log read → respond) with
// headroom for crypto/compression stages, while keeping the per-request
// footprint fixed (phase state is inline arrays, not slices).
const MaxPhases = 8

// Phased reports whether this request runs as a multi-phase chain.
// Single-shot requests (NumPhases <= 1) take every pre-phase code path
// unchanged.
//
//altolint:hotpath
func (r *Request) Phased() bool { return r.NumPhases > 1 }

// PhaseDur returns the effective duration of the current phase on a
// core of the given class: the affine-class duration when the classes
// match, the base duration elsewhere. Neutral phases carry
// PhaseAcc == PhaseSvc, so the distinction vanishes.
//
//altolint:hotpath
func (r *Request) PhaseDur(class uint8) sim.Time {
	if r.PhaseClass[r.Phase] == class {
		return r.PhaseAcc[r.Phase]
	}
	return r.PhaseSvc[r.Phase]
}

// MinService returns the smallest on-CPU time the request can complete
// in: Service for single-shot requests, and the per-phase minimum of
// base and affine durations for phased ones (a phase never runs faster
// than its accelerated duration). The invariant checker's conservation
// bound uses this instead of Service, which an accelerated chain may
// legitimately undercut.
func (r *Request) MinService() sim.Time {
	if !r.Phased() {
		return r.Service
	}
	var total sim.Time
	for i := 0; i < int(r.NumPhases); i++ {
		d := r.PhaseSvc[i]
		if r.PhaseAcc[i] < d {
			d = r.PhaseAcc[i]
		}
		total += d
	}
	return total
}

// Latency returns the server-side latency (NIC arrival to completion).
// It panics if the request has not finished: reading the latency of an
// unfinished request is always a harness bug.
func (r *Request) Latency() sim.Time {
	if r.Finish == 0 {
		panic(fmt.Sprintf("rpcproto: request %d not finished", r.ID))
	}
	return r.Finish - r.Arrival
}

// Descriptor is the 14-byte migration unit: what the MRs store and the
// MIGRATE messages carry. The full message body never moves (it stays in
// the LLC / network buffer); only this descriptor does.
type Descriptor struct {
	Ptr  uint64  // 8 B pointer to the in-memory message
	Addr [6]byte // 48-bit connection/network address
}

// DescriptorSize is the wire footprint of one descriptor (§V-B: 14 B).
const DescriptorSize = 14

// EncodeDescriptor serialises d into a 14-byte wire image.
func EncodeDescriptor(d Descriptor) [DescriptorSize]byte {
	var out [DescriptorSize]byte
	binary.LittleEndian.PutUint64(out[0:8], d.Ptr)
	copy(out[8:14], d.Addr[:])
	return out
}

// DecodeDescriptor parses a 14-byte wire image.
func DecodeDescriptor(b [DescriptorSize]byte) Descriptor {
	var d Descriptor
	d.Ptr = binary.LittleEndian.Uint64(b[0:8])
	copy(d.Addr[:], b[8:14])
	return d
}

// DescriptorFor builds the descriptor of a request: the pointer is the
// request ID (a stable surrogate for the buffer address) and the address
// encodes the connection id and opcode.
func DescriptorFor(r *Request) Descriptor {
	var d Descriptor
	d.Ptr = r.ID
	binary.LittleEndian.PutUint32(d.Addr[0:4], r.Conn)
	d.Addr[4] = byte(r.Op)
	return d
}

// Wire format ------------------------------------------------------------

// header layout, version 1 (16 bytes):
//
//	0:8   request id
//	8:12  connection id
//	12    op
//	13    version
//	14:16 payload length
//
// Version 2 is the rack-forwarded form: the first 16 bytes keep the
// exact version-1 layout (in particular the payload length stays at
// 14:16, so a transport can size either frame from a 16-byte prefix),
// followed by an 8-byte forwarding extension:
//
//	16:20 origin connection id (front-end conn the request arrived on)
//	20    hops (forwarding stages so far)
//	21:24 reserved, must be zero
const (
	headerSize     = 16
	fwdHeaderSize  = 24
	wireVersion    = 1
	wireVersionFwd = 2
	maxPayload     = 64 << 10 // 64 KiB, far above the paper's <2 KB RPCs
)

var (
	// ErrShortBuffer indicates a truncated wire message.
	ErrShortBuffer = errors.New("rpcproto: short buffer")
	// ErrBadVersion indicates an unsupported wire version.
	ErrBadVersion = errors.New("rpcproto: unsupported wire version")
	// ErrPayloadTooLarge indicates a payload over the 64 KiB cap.
	ErrPayloadTooLarge = errors.New("rpcproto: payload too large")
	// ErrBadReserved indicates nonzero reserved bytes in a forwarded
	// (version-2) header; rejecting them keeps the bits available.
	ErrBadReserved = errors.New("rpcproto: nonzero reserved bytes in forwarded header")
	// ErrHopLimit indicates a frame forwarded more times than the
	// 8-bit hop counter can record — always a routing loop in practice.
	ErrHopLimit = errors.New("rpcproto: forwarding hop limit exceeded")
)

// requestHeader parses the fixed request header at the front of buf:
// the header length consumed, the payload length, and the forwarding
// extension (zero for version-1 frames). The payload itself is not
// bounds-checked here.
func requestHeader(buf []byte) (hdrLen, plen int, origin uint32, hops uint8, err error) {
	if len(buf) < headerSize {
		return 0, 0, 0, 0, ErrShortBuffer
	}
	plen = int(binary.LittleEndian.Uint16(buf[14:16]))
	switch buf[13] {
	case wireVersion:
		return headerSize, plen, 0, 0, nil
	case wireVersionFwd:
		if len(buf) < fwdHeaderSize {
			return 0, 0, 0, 0, ErrShortBuffer
		}
		if buf[21] != 0 || buf[22] != 0 || buf[23] != 0 {
			return 0, 0, 0, 0, ErrBadReserved
		}
		return fwdHeaderSize, plen, binary.LittleEndian.Uint32(buf[16:20]), buf[20], nil
	default:
		return 0, 0, 0, 0, ErrBadVersion
	}
}

// Marshal encodes a request into its network representation. This is the
// real serialisation work an RPC stack performs; the simulator charges
// its modelled duration separately via StackModel.
func Marshal(r *Request) ([]byte, error) {
	buf, err := AppendRequest(make([]byte, 0, headerSize+len(r.Payload)), r)
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// Unmarshal decodes a network message into a fresh Request (scheduling
// state zeroed). Both wire versions are accepted; version-2 frames fill
// the Origin/Hops forwarding fields. The Size field records the wire
// footprint.
func Unmarshal(buf []byte) (*Request, error) {
	hdrLen, plen, origin, hops, err := requestHeader(buf)
	if err != nil {
		return nil, err
	}
	if len(buf) < hdrLen+plen {
		return nil, ErrShortBuffer
	}
	r := &Request{
		ID:     binary.LittleEndian.Uint64(buf[0:8]),
		Conn:   binary.LittleEndian.Uint32(buf[8:12]),
		Op:     Op(buf[12]),
		Size:   hdrLen + plen,
		Origin: origin,
		Hops:   hops,
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), buf[hdrLen:hdrLen+plen]...)
	}
	return r, nil
}

// UnmarshalInto decodes a network message into an existing request,
// zeroing every field exactly as Unmarshal would but reusing r's
// payload capacity: the payload bytes are copied into the recycled
// backing array, so a request slot cycled through an arena decodes
// frame after frame without allocating. A zero-length payload keeps
// the (empty) recycled slice rather than reverting to nil; the bytes
// are identical either way. On error r is left zeroed (payload
// capacity still retained) and must not be delivered.
//
//altolint:hotpath
func UnmarshalInto(r *Request, buf []byte) error {
	payload := r.Payload[:0]
	*r = Request{}
	r.Payload = payload
	hdrLen, plen, origin, hops, err := requestHeader(buf)
	if err != nil {
		return err
	}
	if len(buf) < hdrLen+plen {
		return ErrShortBuffer
	}
	r.ID = binary.LittleEndian.Uint64(buf[0:8])
	r.Conn = binary.LittleEndian.Uint32(buf[8:12])
	r.Op = Op(buf[12])
	r.Size = hdrLen + plen
	r.Origin = origin
	r.Hops = hops
	if plen > 0 {
		//altolint:allow hotalloc amortized payload-capacity growth; recycled slots reuse the backing array
		r.Payload = append(payload, buf[hdrLen:hdrLen+plen]...)
	}
	return nil
}
