package rpcproto

import "encoding/binary"

// Status is the application-level outcome carried by a response frame.
type Status uint8

const (
	StatusOK Status = iota
	StatusNotFound
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	default:
		return "ERROR"
	}
}

// Response is the reply to one Request as carried on the wire by the
// live runtime's stream transport.
type Response struct {
	ID      uint64
	Status  Status
	Payload []byte
}

// response header layout (12 bytes):
//
//	0:8   request id
//	8     status
//	9     version
//	10:12 payload length
const ResponseHeaderSize = 12

// RequestHeaderSize is the fixed request header footprint, exported for
// stream transports that read a header first and then the payload.
const RequestHeaderSize = headerSize

// ForwardedHeaderSize is the version-2 (rack-forwarded) request header
// footprint: the version-1 header plus the forwarding extension.
const ForwardedHeaderSize = fwdHeaderSize

// RequestFrameSize returns the total wire length of the request frame
// whose first RequestHeaderSize bytes are hdr. Both wire versions are
// sized from the same 16-byte prefix: version 2 keeps the payload
// length at the version-1 offset.
func RequestFrameSize(hdr []byte) (int, error) {
	if len(hdr) < headerSize {
		return 0, ErrShortBuffer
	}
	plen := int(binary.LittleEndian.Uint16(hdr[14:16]))
	switch hdr[13] {
	case wireVersion:
		return headerSize + plen, nil
	case wireVersionFwd:
		return fwdHeaderSize + plen, nil
	default:
		return 0, ErrBadVersion
	}
}

// AppendRequest encodes r onto dst and returns the extended slice. It is
// the allocation-free form of Marshal for senders that reuse a buffer.
// Requests with forwarding state (nonzero Origin or Hops) are emitted as
// version-2 frames; direct client requests stay on the compact version-1
// form.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if len(r.Payload) > maxPayload {
		return dst, ErrPayloadTooLarge
	}
	var hdr [fwdHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], r.ID)
	binary.LittleEndian.PutUint32(hdr[8:12], r.Conn)
	hdr[12] = byte(r.Op)
	binary.LittleEndian.PutUint16(hdr[14:16], uint16(len(r.Payload)))
	if r.Origin != 0 || r.Hops != 0 {
		hdr[13] = wireVersionFwd
		binary.LittleEndian.PutUint32(hdr[16:20], r.Origin)
		hdr[20] = r.Hops
		dst = append(dst, hdr[:]...)
	} else {
		hdr[13] = wireVersion
		dst = append(dst, hdr[:headerSize]...)
	}
	return append(dst, r.Payload...), nil
}

// AppendForwarded rewrites one complete request frame (either wire
// version) into a version-2 forwarded frame appended to dst: the id is
// replaced with newID (the relay's dense backend-side id), the origin
// field is set to origin (the front-end connection the request arrived
// on), and the hop count is incremented. The connection id, op, and
// payload bytes are relayed untouched, so a backend decodes exactly the
// request the client sent plus the forwarding provenance. This is the
// relay's hot path: one bounded copy onto dst, no intermediate decode.
//
//altolint:hotpath
func AppendForwarded(dst []byte, frame []byte, newID uint64, origin uint32) ([]byte, error) {
	hdrLen, plen, _, hops, err := requestHeader(frame)
	if err != nil {
		return dst, err
	}
	if len(frame) < hdrLen+plen {
		return dst, ErrShortBuffer
	}
	if hops == ^uint8(0) {
		return dst, ErrHopLimit
	}
	var hdr [fwdHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], newID)
	copy(hdr[8:13], frame[8:13]) // conn + op
	hdr[13] = wireVersionFwd
	binary.LittleEndian.PutUint16(hdr[14:16], uint16(plen))
	binary.LittleEndian.PutUint32(hdr[16:20], origin)
	hdr[20] = hops + 1
	//altolint:allow hotalloc amortized dst growth; the relay reuses a per-backend ring buffer as dst
	dst = append(dst, hdr[:]...)
	//altolint:allow hotalloc amortized dst growth; same reused destination buffer
	return append(dst, frame[hdrLen:hdrLen+plen]...), nil
}

// AppendResponse encodes a response frame onto dst and returns the
// extended slice.
func AppendResponse(dst []byte, id uint64, st Status, payload []byte) ([]byte, error) {
	if len(payload) > maxPayload {
		return dst, ErrPayloadTooLarge
	}
	var hdr [ResponseHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], id)
	hdr[8] = byte(st)
	hdr[9] = wireVersion
	binary.LittleEndian.PutUint16(hdr[10:12], uint16(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// ResponseFrameSize returns the total wire length of the response frame
// whose first ResponseHeaderSize bytes are hdr.
func ResponseFrameSize(hdr []byte) (int, error) {
	if len(hdr) < ResponseHeaderSize {
		return 0, ErrShortBuffer
	}
	if hdr[9] != wireVersion {
		return 0, ErrBadVersion
	}
	return ResponseHeaderSize + int(binary.LittleEndian.Uint16(hdr[10:12])), nil
}

// DecodeResponse parses one response frame from the front of buf and
// returns it plus the number of bytes consumed. The payload aliases buf;
// callers that retain it past the next read must copy.
func DecodeResponse(buf []byte) (Response, int, error) {
	if len(buf) < ResponseHeaderSize {
		return Response{}, 0, ErrShortBuffer
	}
	if buf[9] != wireVersion {
		return Response{}, 0, ErrBadVersion
	}
	plen := int(binary.LittleEndian.Uint16(buf[10:12]))
	if len(buf) < ResponseHeaderSize+plen {
		return Response{}, 0, ErrShortBuffer
	}
	resp := Response{
		ID:     binary.LittleEndian.Uint64(buf[0:8]),
		Status: Status(buf[8]),
	}
	if plen > 0 {
		resp.Payload = buf[ResponseHeaderSize : ResponseHeaderSize+plen]
	}
	return resp, ResponseHeaderSize + plen, nil
}
