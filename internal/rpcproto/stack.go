package rpcproto

import "repro/internal/sim"

// StackKind selects the RPC/network stack whose per-message processing
// cost is charged on the CPU. The three stacks are the ones Fig. 1
// compares; their on-CPU processing times come from the paper and the
// systems it cites (TCP/IP sockets ~15 µs, eRPC 850 ns, nanoRPC 40 ns).
type StackKind int

const (
	StackTCPIP StackKind = iota
	StackERPC
	StackNanoRPC
)

func (k StackKind) String() string {
	switch k {
	case StackERPC:
		return "eRPC"
	case StackNanoRPC:
		return "nanoRPC"
	default:
		return "TCP/IP"
	}
}

// StackModel charges the RPC-stack processing cost of a message:
// header parsing, requested-function identification, payload
// (de)serialisation, transport handling (§II-B). Fixed is the per-message
// floor; PerByte scales with message size (dominant for TCP's copies).
type StackModel struct {
	Kind    StackKind
	Fixed   sim.Time
	PerByte sim.Time
}

// NewStack returns the processing model for the given stack kind, tuned
// so a 300 B message (Fig. 1's workload) costs approximately the paper's
// reported processing time.
func NewStack(k StackKind) StackModel {
	switch k {
	case StackERPC:
		// eRPC: 850 ns round-trip-class processing for small RPCs.
		return StackModel{Kind: k, Fixed: 790 * sim.Nanosecond, PerByte: 200 * sim.Picosecond}
	case StackNanoRPC:
		// nanoPU's nanoRPC: ~40 ns wire-to-wire on-CPU.
		return StackModel{Kind: k, Fixed: 34 * sim.Nanosecond, PerByte: 20 * sim.Picosecond}
	default:
		// Kernel TCP/IP sockets: ~15 µs of protocol + syscall + copies.
		return StackModel{Kind: k, Fixed: 14 * sim.Microsecond, PerByte: 3333 * sim.Picosecond}
	}
}

// ProcessingTime returns the on-CPU stack processing time for a message
// of the given size.
func (m StackModel) ProcessingTime(size int) sim.Time {
	if size < 0 {
		size = 0
	}
	return m.Fixed + sim.Time(size)*m.PerByte
}
