package rpcproto

import (
	"bytes"
	"testing"
)

// TestForwardedRoundTrip pins the version-2 wire form: a request with
// forwarding state marshals to a 24-byte-header frame and decodes back
// with Origin/Hops intact through both decode paths.
func TestForwardedRoundTrip(t *testing.T) {
	in := &Request{ID: 42, Conn: 7, Op: OpSet, Origin: 0xa1b2c3d4, Hops: 2, Payload: []byte("k=v")}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if buf[13] != wireVersionFwd {
		t.Fatalf("version byte = %d, want %d", buf[13], wireVersionFwd)
	}
	if len(buf) != ForwardedHeaderSize+len(in.Payload) {
		t.Fatalf("frame len = %d, want %d", len(buf), ForwardedHeaderSize+len(in.Payload))
	}
	if n, err := RequestFrameSize(buf[:RequestHeaderSize]); err != nil || n != len(buf) {
		t.Fatalf("RequestFrameSize = %d, %v; want %d", n, err, len(buf))
	}
	out, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Conn != in.Conn || out.Op != in.Op ||
		out.Origin != in.Origin || out.Hops != in.Hops || out.Size != len(buf) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("payload mismatch: %q", out.Payload)
	}
	var into Request
	if err := UnmarshalInto(&into, buf); err != nil {
		t.Fatal(err)
	}
	if into.Origin != in.Origin || into.Hops != in.Hops || into.Size != len(buf) {
		t.Fatalf("UnmarshalInto forwarding fields: %+v", into)
	}
}

// TestDirectRequestsStayVersion1 guards the compact path: requests with
// zero forwarding state must keep the 16-byte version-1 header so
// existing clients and goldens see identical bytes.
func TestDirectRequestsStayVersion1(t *testing.T) {
	buf, err := Marshal(&Request{ID: 1, Conn: 2, Op: OpGet, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if buf[13] != wireVersion {
		t.Fatalf("version byte = %d, want %d", buf[13], wireVersion)
	}
	if len(buf) != RequestHeaderSize+1 {
		t.Fatalf("frame len = %d, want %d", len(buf), RequestHeaderSize+1)
	}
}

// TestAppendForwarded covers the relay rewrite: id replaced, origin
// stamped, hops incremented, everything else byte-preserved — for both
// a fresh client (v1) frame and an already-forwarded (v2) frame.
func TestAppendForwarded(t *testing.T) {
	orig := &Request{ID: 900, Conn: 17, Op: OpScan, Payload: []byte("payload-bytes")}
	v1, err := Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := AppendForwarded(nil, v1, 5, 0xcafe)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(fwd)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 5 || got.Conn != orig.Conn || got.Op != orig.Op ||
		got.Origin != 0xcafe || got.Hops != 1 {
		t.Fatalf("forwarded v1: %+v", got)
	}
	if !bytes.Equal(got.Payload, orig.Payload) {
		t.Fatalf("payload mismatch: %q", got.Payload)
	}

	// Forwarding a forwarded frame bumps hops and re-stamps origin.
	fwd2, err := AppendForwarded(nil, fwd, 6, 0xbeef)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Unmarshal(fwd2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.ID != 6 || got2.Origin != 0xbeef || got2.Hops != 2 || got2.Conn != orig.Conn {
		t.Fatalf("forwarded v2: %+v", got2)
	}

	// Appending onto an existing buffer extends, never clobbers.
	prefix := []byte("prefix")
	joined, err := AppendForwarded(append([]byte(nil), prefix...), v1, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(joined, prefix) {
		t.Fatal("AppendForwarded clobbered the destination prefix")
	}
	if n, err := RequestFrameSize(joined[len(prefix):]); err != nil || n != len(joined)-len(prefix) {
		t.Fatalf("appended frame size = %d, %v", n, err)
	}
}

func TestAppendForwardedErrors(t *testing.T) {
	v1, _ := Marshal(&Request{ID: 1, Payload: []byte("abc")})
	if _, err := AppendForwarded(nil, v1[:RequestHeaderSize-1], 2, 0); err != ErrShortBuffer {
		t.Fatalf("short header: %v", err)
	}
	if _, err := AppendForwarded(nil, v1[:len(v1)-1], 2, 0); err != ErrShortBuffer {
		t.Fatalf("truncated payload: %v", err)
	}
	bad := append([]byte(nil), v1...)
	bad[13] = 99
	if _, err := AppendForwarded(nil, bad, 2, 0); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
	// Hop counter at the ceiling: the frame must be rejected, not wrapped.
	maxed, _ := Marshal(&Request{ID: 1, Origin: 1, Hops: ^uint8(0), Payload: []byte("abc")})
	if _, err := AppendForwarded(nil, maxed, 2, 0); err != ErrHopLimit {
		t.Fatalf("hop limit: %v", err)
	}
	// Nonzero reserved bytes in a v2 frame are rejected end to end.
	fwd, _ := AppendForwarded(nil, v1, 2, 3)
	fwd[23] = 7
	if _, err := Unmarshal(fwd); err != ErrBadReserved {
		t.Fatalf("reserved: %v", err)
	}
	if _, err := AppendForwarded(nil, fwd, 3, 0); err != ErrBadReserved {
		t.Fatalf("reserved via forward: %v", err)
	}
}

// TestAppendForwardedZeroAlloc pins the relay hot path: rewriting into
// a destination with capacity must not allocate.
func TestAppendForwardedZeroAlloc(t *testing.T) {
	v1, _ := Marshal(&Request{ID: 1, Conn: 2, Payload: make([]byte, 256)})
	dst := make([]byte, 0, 1024)
	if avg := testing.AllocsPerRun(100, func() {
		var err error
		if _, err = AppendForwarded(dst[:0], v1, 7, 9); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("AppendForwarded allocates %.1f times per rewrite, want 0", avg)
	}
}
