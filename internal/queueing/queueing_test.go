package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangCKnownValues(t *testing.T) {
	// Classic textbook value: k=10, A=7 -> C ~ 0.2217.
	if got := ErlangC(10, 7); math.Abs(got-0.2217) > 0.002 {
		t.Fatalf("ErlangC(10,7) = %v", got)
	}
	// Single server: C_1(A) = A (M/M/1: P(wait) = rho).
	if got := ErlangC(1, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ErlangC(1,0.5) = %v", got)
	}
}

func TestErlangCEdgeCases(t *testing.T) {
	if ErlangC(10, 0) != 0 {
		t.Fatal("zero load should never wait")
	}
	if ErlangC(10, 10) != 1 {
		t.Fatal("saturated system should always wait")
	}
	if ErlangC(10, 15) != 1 {
		t.Fatal("overloaded system should always wait")
	}
	if ErlangC(0, 1) != 1 {
		t.Fatal("no servers")
	}
	if ErlangC(10, -1) != 0 {
		t.Fatal("negative load")
	}
}

func TestErlangBKnownValues(t *testing.T) {
	// Textbook: B(2, 1) = (1/2)/(1+1+1/2) = 0.2.
	if got := ErlangB(2, 1); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("ErlangB(2,1) = %v", got)
	}
	if ErlangB(0, 1) != 1 || ErlangB(5, 0) != 0 {
		t.Fatal("ErlangB edge cases")
	}
}

func TestErlangCMonotonicInLoad(t *testing.T) {
	f := func(kRaw uint8, a1, a2 float64) bool {
		k := int(kRaw%64) + 1
		a1 = math.Abs(math.Mod(a1, float64(k)))
		a2 = math.Abs(math.Mod(a2, float64(k)))
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		return ErlangC(k, a1) <= ErlangC(k, a2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestErlangCDecreasingInServers(t *testing.T) {
	// More servers at the same offered load -> lower wait probability.
	for k := 2; k <= 128; k *= 2 {
		if ErlangC(k, 1.5) < ErlangC(2*k, 1.5) {
			t.Fatalf("ErlangC not decreasing in k at k=%d", k)
		}
	}
}

func TestExpectedQueueLength(t *testing.T) {
	// M/M/1 E[Nq] = rho^2/(1-rho). For rho=0.9: 8.1.
	if got := ExpectedQueueLength(1, 0.9); math.Abs(got-8.1) > 1e-9 {
		t.Fatalf("E[Nq] M/M/1 = %v", got)
	}
	if !math.IsInf(ExpectedQueueLength(4, 4), 1) {
		t.Fatal("saturated E[Nq] should be +Inf")
	}
	if ExpectedQueueLength(4, 0) != 0 {
		t.Fatal("idle E[Nq] should be 0")
	}
	// Paper §V-B: mean E[Nq] ~ 11 for a 16-ish-core group near load 1.
	// Verify the order of magnitude for k=16 at A=15.5 (rho ~ 0.97).
	got := ExpectedQueueLength(16, 15.5)
	if got < 5 || got > 40 {
		t.Fatalf("E[Nq](16, 15.5) = %v, want O(10)", got)
	}
}

func TestMMkMetrics(t *testing.T) {
	q := MMk{K: 4, Lambda: 3e6, Mu: 1e6} // A=3, rho=0.75
	if math.Abs(q.Offered()-3) > 1e-12 {
		t.Fatal("offered")
	}
	if math.Abs(q.Utilization()-0.75) > 1e-12 {
		t.Fatal("utilization")
	}
	// Little's law consistency: E[W] = E[Nq]/lambda.
	if math.Abs(q.MeanWait()-q.MeanQueueLength()/q.Lambda) > 1e-18 {
		t.Fatal("Little's law violated")
	}
	if q.MeanSojourn() <= q.MeanWait() {
		t.Fatal("sojourn must exceed wait")
	}
	// Percentile sanity: p50 below p99; zero-wait mass handled.
	p50, p99 := q.WaitPercentile(0.5), q.WaitPercentile(0.99)
	if p50 > p99 {
		t.Fatalf("wait percentiles inverted: %v > %v", p50, p99)
	}
	lowLoad := MMk{K: 64, Lambda: 1e6, Mu: 1e6}
	if lowLoad.WaitPercentile(0.5) != 0 {
		t.Fatal("p50 wait at tiny load should be 0")
	}
}

func TestWaitPercentileSaturated(t *testing.T) {
	q := MMk{K: 2, Lambda: 2e6, Mu: 1e6}
	if !math.IsInf(q.WaitPercentile(0.99), 1) {
		t.Fatal("saturated percentile should be +Inf")
	}
}

func TestMG1MeanWait(t *testing.T) {
	// M/M/1 via P-K: E[S^2]=2/mu^2 -> E[W] = rho/(mu(1-rho)).
	mu := 1e6
	lambda := 0.8e6
	es := 1 / mu
	es2 := 2 / (mu * mu)
	got, err := MG1MeanWait(lambda, es, es2)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8 / (mu * (1 - 0.8))
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("P-K = %v, want %v", got, want)
	}
	if _, err := MG1MeanWait(2e6, es, es2); err == nil {
		t.Fatal("unstable queue should error")
	}
}
