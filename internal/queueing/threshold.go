package queueing

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ThresholdModel is the paper's SLO-violation predictor (Eqn. 2):
//
//	E[T̂] = A_ · E[C_ · N̂q + D_] + B_  =  (A_·C_)·E[N̂q] + (A_·D_ + B_)
//
// The four constants are empirically determined per service-time
// distribution (§IV-A); Fig. 7(d) quotes a=1.01, c=0.998, b=d=0 for the
// Fixed distribution. K and L define the system: k worker cores and an
// SLO of L× the mean service time.
type ThresholdModel struct {
	K          int     // worker cores behind the queue
	L          float64 // SLO multiplier (SLO = L × mean service time)
	A, B, C, D float64 // Eqn. 2 constants
}

// NewThresholdModel returns a model with the paper's default constants
// (a=1.01, c=0.998, b=d=0), to be refined by Calibrate.
func NewThresholdModel(k int, l float64) *ThresholdModel {
	return &ThresholdModel{K: k, L: l, A: 1.01, B: 0, C: 0.998, D: 0}
}

// UpperBound returns T_upper = k·L + 1, the naive threshold beyond which
// essentially every arriving request violates the SLO (§IV-A).
func (m *ThresholdModel) UpperBound() int { return int(float64(m.K)*m.L) + 1 }

// Threshold returns E[T̂] for the given offered load in Erlangs. The
// result is clamped to [1, UpperBound]: a threshold below 1 would migrate
// everything, and above T_upper the prediction adds nothing.
func (m *ThresholdModel) Threshold(offered float64) int {
	nq := ExpectedQueueLength(m.K, offered)
	if math.IsInf(nq, 1) {
		return m.UpperBound()
	}
	t := m.A*(m.C*nq+m.D) + m.B
	ti := int(math.Round(t))
	if ti < 1 {
		ti = 1
	}
	if ub := m.UpperBound(); ti > ub {
		ti = ub
	}
	return ti
}

// CalibrationPoint is one observation from a simulation sweep: at a given
// offered load, the queue length at which the first SLO-violating request
// arrived (the paper's definition of the measured T).
type CalibrationPoint struct {
	Offered   float64 // load in Erlangs
	ObservedT float64 // queue length at first SLO violation
}

// Calibrate fits the (A, B) constants of Eqn. 2 by ordinary least squares
// of ObservedT against C·E[N̂q]+D across the sweep, mirroring how the
// paper derives the constants "empirically ... based on factors such as
// the service time distribution". C and D are left at their current
// values (the paper folds the inner transformation into near-identity).
// It returns an error if fewer than two distinct points are provided.
func (m *ThresholdModel) Calibrate(points []CalibrationPoint) error {
	xs := make([]float64, 0, len(points))
	ys := make([]float64, 0, len(points))
	for _, p := range points {
		nq := ExpectedQueueLength(m.K, p.Offered)
		if math.IsInf(nq, 1) || math.IsNaN(nq) {
			continue
		}
		xs = append(xs, m.C*nq+m.D)
		ys = append(ys, p.ObservedT)
	}
	slope, intercept, ok := stats.LinearFit(xs, ys)
	if !ok {
		return fmt.Errorf("queueing: calibration needs >=2 usable points, got %d", len(xs))
	}
	m.A, m.B = slope, intercept
	return nil
}

// PredictViolation reports whether a request arriving to a queue of length
// qlen (under the given offered load) is predicted to violate the SLO.
func (m *ThresholdModel) PredictViolation(qlen int, offered float64) bool {
	return qlen > m.Threshold(offered)
}
