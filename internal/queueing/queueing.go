// Package queueing implements the analytical models behind ALTOCUMULUS'
// proactive SLO-violation prediction (§IV of the paper): the Erlang-C
// formula, M/M/k queue metrics, and the E[T̂] threshold model
//
//	E[N̂q] = C_k(A) · A/(k−A)            (Eqn. 1)
//	E[T̂]  = a · E[c·N̂q + d] + b         (Eqn. 2)
//
// where A is the offered load in Erlangs (λ/µ), k the number of worker
// cores and (a, b, c, d) constants fitted per service-time distribution.
package queueing

import (
	"errors"
	"math"
)

// ErlangC returns C_k(A), the probability that an arriving request has to
// queue in an M/M/k system with offered load A Erlangs and k servers.
// Computed via the numerically stable recurrence on the Erlang-B blocking
// probability: B(0)=1, B(j) = A·B(j−1)/(j + A·B(j−1)),
// C = k·B(k) / (k − A(1−B(k))).
//
// Requires 0 <= A < k; returns 1 for A >= k (saturated: everyone queues).
func ErlangC(k int, a float64) float64 {
	if k <= 0 {
		return 1
	}
	if a <= 0 {
		return 0
	}
	if a >= float64(k) {
		return 1
	}
	b := 1.0
	for j := 1; j <= k; j++ {
		b = a * b / (float64(j) + a*b)
	}
	c := float64(k) * b / (float64(k) - a*(1-b))
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// ErlangB returns the Erlang-B blocking probability for k servers and
// offered load A (no queueing, pure loss system). Exposed for tests and
// as a building block.
func ErlangB(k int, a float64) float64 {
	if k <= 0 {
		return 1
	}
	if a <= 0 {
		return 0
	}
	b := 1.0
	for j := 1; j <= k; j++ {
		b = a * b / (float64(j) + a*b)
	}
	return b
}

// ExpectedQueueLength returns E[N̂q] per Eqn. 1 of the paper:
// C_k(A)·A/(k−A). For A >= k it returns +Inf (the queue diverges).
func ExpectedQueueLength(k int, a float64) float64 {
	if a >= float64(k) {
		return math.Inf(1)
	}
	if a <= 0 {
		return 0
	}
	return ErlangC(k, a) * a / (float64(k) - a)
}

// MMk summarises an M/M/k queue at arrival rate lambda and per-server
// service rate mu (both in events/second).
type MMk struct {
	K      int
	Lambda float64
	Mu     float64
}

// Offered returns the offered load A = λ/µ in Erlangs.
func (q MMk) Offered() float64 { return q.Lambda / q.Mu }

// Utilization returns ρ = A/k.
func (q MMk) Utilization() float64 { return q.Offered() / float64(q.K) }

// PWait returns the probability of queueing, C_k(A).
func (q MMk) PWait() float64 { return ErlangC(q.K, q.Offered()) }

// MeanQueueLength returns E[Nq].
func (q MMk) MeanQueueLength() float64 { return ExpectedQueueLength(q.K, q.Offered()) }

// MeanWait returns the expected queueing delay E[W] in seconds
// (Little's law: E[Nq]/λ).
func (q MMk) MeanWait() float64 {
	if q.Lambda <= 0 {
		return 0
	}
	return q.MeanQueueLength() / q.Lambda
}

// MeanSojourn returns E[W] + 1/µ in seconds.
func (q MMk) MeanSojourn() float64 { return q.MeanWait() + 1/q.Mu }

// WaitPercentile returns the p-th percentile (0<p<1) of the queueing delay
// for M/M/k: W > 0 with probability C, and conditionally exponential with
// rate kµ−λ. Returns 0 if the percentile falls in the no-wait mass.
func (q MMk) WaitPercentile(p float64) float64 {
	c := q.PWait()
	if p <= 1-c {
		return 0
	}
	rate := float64(q.K)*q.Mu - q.Lambda
	if rate <= 0 {
		return math.Inf(1)
	}
	// P(W > t) = C·exp(−rate·t) = 1−p  ⇒  t = ln(C/(1−p))/rate.
	return math.Log(c/(1-p)) / rate
}

// MG1MeanWait returns the Pollaczek–Khinchine mean waiting time for an
// M/G/1 queue: E[W] = λ·E[S²] / (2(1−ρ)). es and es2 are the first and
// second moments of the service time in seconds. Used to sanity-check the
// simulator against theory for single-server runs.
func MG1MeanWait(lambda, es, es2 float64) (float64, error) {
	rho := lambda * es
	if rho >= 1 {
		return 0, errors.New("queueing: M/G/1 unstable (rho >= 1)")
	}
	return lambda * es2 / (2 * (1 - rho)), nil
}
