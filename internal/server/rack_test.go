package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dist"
	"repro/internal/rack"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestRackOfOneGolden is the rack tier's differential anchor: a rack
// of one server, under every scheduler kind, must reproduce the
// single-server golden traces byte for byte. The dispatcher makes a
// degenerate decision per arrival but consumes no randomness and books
// no extra events, so any divergence means the rack layer perturbed
// the path it wraps.
func TestRackOfOneGolden(t *testing.T) {
	for _, kind := range goldenKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			rr, err := RunRack(
				RackConfig{Servers: 1, Policy: rack.PowerOfK},
				goldenConfig(kind), goldenWorkload())
			if err != nil {
				t.Fatal(err)
			}
			if rr.RackCheck == nil || len(rr.ServerChecks) != 1 || rr.ServerChecks[0] == nil {
				t.Fatal("rack run executed without its invariant checkers")
			}
			var buf bytes.Buffer
			if err := trace.WriteCSV(&buf, rr.Requests); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden",
				fmt.Sprintf("%s.csv", sanitize(kind.String())))
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("rack-of-1 trace deviates from the single-server golden %s (%d vs %d bytes)",
					path, buf.Len(), len(want))
			}
			for id, srv := range rr.ServerOf {
				if srv != 0 {
					t.Fatalf("request %d dispatched to server %d in a rack of one", id, srv)
				}
			}
		})
	}
}

// rackGoldenPolicies enumerates the per-policy rack golden traces.
func rackGoldenPolicies() []rack.Kind {
	return []rack.Kind{rack.RoundRobin, rack.JSQ, rack.PowerOfK, rack.Affinity}
}

func rackGoldenConfig() (RackConfig, Config, Workload) {
	rc := RackConfig{
		Servers: 3, Policy: rack.PowerOfK, K: 2,
		SampleEvery: 5 * sim.Microsecond, TraceViews: true,
	}
	cfg := goldenConfig(SchedAltocumulus)
	svc := dist.Exponential{M: sim.Microsecond}
	wl := Workload{
		// Offered load scales with the rack: 0.7 per-server load across
		// 3 servers x 4 cores.
		Arrivals: dist.Poisson{Rate: dist.LoadForRate(0.7, 12, svc)},
		Service:  svc,
		N:        300, Warmup: 0, Conns: 24,
	}
	return rc, cfg, wl
}

// rackTraceBytes renders the full behavioural fingerprint of a rack
// run: the per-request trace plus the dispatch-decision trace.
func rackTraceBytes(t *testing.T, rr *RackResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, rr.Requests); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("# rack dispatch\n")
	if err := WriteRackDispatchCSV(&buf, rr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRackGoldenTraces locks down one golden trace per dispatch
// policy: request outcomes AND every dispatch decision (destination,
// view age, sampled depths). Regenerate with -update and review like
// any code change.
func TestRackGoldenTraces(t *testing.T) {
	for _, pol := range rackGoldenPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			rc, cfg, wl := rackGoldenConfig()
			rc.Policy = pol
			rr, err := RunRack(rc, cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			got := rackTraceBytes(t, rr)
			path := filepath.Join("testdata", "golden", fmt.Sprintf("rack_%s.csv", pol))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("rack trace deviates from %s (%d vs %d bytes); run with -update if the change is intended",
					path, len(got), len(want))
			}
		})
	}
}

// TestRackArenaParity proves the arena is invisible to rack results,
// mirroring TestGoldenTracesNoArena at rack width 3.
func TestRackArenaParity(t *testing.T) {
	rc, cfg, wl := rackGoldenConfig()
	a, err := RunRack(rc, cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoArena = true
	b, err := RunRack(rc, cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rackTraceBytes(t, a), rackTraceBytes(t, b)) {
		t.Fatal("arena and heap rack runs diverge")
	}
}

// TestRackRunInvariants exercises the rack accounting the checker
// reports: full conservation per server, bounded staleness, and real
// load spreading.
func TestRackRunInvariants(t *testing.T) {
	rc, cfg, wl := rackGoldenConfig()
	rr, err := RunRack(rc, cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for s := 0; s < rc.Servers; s++ {
		if rr.Dispatched[s] != rr.Completed[s] {
			t.Fatalf("server %d: dispatched %d completed %d", s, rr.Dispatched[s], rr.Completed[s])
		}
		if rr.Dispatched[s] == 0 {
			t.Fatalf("server %d received no traffic under %s", s, rc.Policy)
		}
		total += rr.Dispatched[s]
	}
	if total != uint64(wl.N) {
		t.Fatalf("dispatched %d, want %d", total, wl.N)
	}
	if rr.MaxSampleAge > rc.SampleEvery {
		t.Fatalf("max sample age %v exceeds the sampling period %v", rr.MaxSampleAge, rc.SampleEvery)
	}
	if rr.RackCheck.Delivered != uint64(wl.N) || rr.RackCheck.Completed != uint64(wl.N) {
		t.Fatalf("rack check counts: %+v", rr.RackCheck)
	}
	// Fresh-view dispatch pins every age to zero.
	rc.SampleEvery = 0
	fresh, err := RunRack(rc, cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.MaxSampleAge != 0 {
		t.Fatalf("fresh-view run reported age %v", fresh.MaxSampleAge)
	}
}

// TestRackDeterminism: identical configurations replay identical
// dispatch sequences, and the Scratch-reuse path (what each fleet
// worker does) does not perturb them.
func TestRackDeterminism(t *testing.T) {
	rc, cfg, wl := rackGoldenConfig()
	a, err := RunRack(rc, cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScratch()
	for round := 0; round < 2; round++ {
		b, err := RunRackWith(sc, rc, cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		for id := range a.ServerOf {
			if a.ServerOf[id] != b.ServerOf[id] || a.Ages[id] != b.Ages[id] {
				t.Fatalf("round %d: dispatch of request %d diverged: %d@%v vs %d@%v",
					round, id, a.ServerOf[id], a.Ages[id], b.ServerOf[id], b.Ages[id])
			}
		}
	}
}

func TestRackConfigValidate(t *testing.T) {
	_, cfg, wl := rackGoldenConfig()
	if _, err := RunRack(RackConfig{Servers: 0}, cfg, wl); err == nil {
		t.Fatal("zero-width rack accepted")
	}
	if _, err := RunRack(RackConfig{Servers: 2, SampleEvery: -sim.Microsecond}, cfg, wl); err == nil {
		t.Fatal("negative sampling period accepted")
	}
	bad := wl
	bad.N = 0
	if _, err := RunRack(RackConfig{Servers: 2}, cfg, bad); err == nil {
		t.Fatal("empty workload accepted")
	}
}
