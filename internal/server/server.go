// Package server assembles a complete simulated RPC server — NIC receive
// path, scheduler, worker cores, and optionally an application (MICA) —
// and runs workloads against it, producing latency samples, SLO
// accounting, and per-request records for the replay-based analyses
// (migration effectiveness, prediction accuracy).
package server

import (
	"fmt"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SchedulerKind selects which system the server models.
type SchedulerKind int

const (
	// SchedRSS: commodity NIC RSS with per-core d-FCFS queues and no
	// rebalancing (the "Emulated Commodity RSS NIC" baseline).
	SchedRSS SchedulerKind = iota
	// SchedIX: RSS d-FCFS over a kernel-bypass dataplane (IX).
	SchedIX
	// SchedZygOS: d-FCFS plus work stealing.
	SchedZygOS
	// SchedShinjuku: centralized software dispatcher with preemption.
	SchedShinjuku
	// SchedRPCValet / SchedNebula / SchedNanoPU: hardware JBSQ designs.
	SchedRPCValet
	SchedNebula
	SchedNanoPU
	// SchedAltocumulus: the paper's system (configured via Config.AC).
	SchedAltocumulus
	// SchedRSSPlus: d-FCFS with RSS++-style periodic indirection-table
	// rebalancing (every 20 us, per the paper's §IX-E citation).
	SchedRSSPlus
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedIX:
		return "IX"
	case SchedZygOS:
		return "ZygOS"
	case SchedShinjuku:
		return "Shinjuku"
	case SchedRPCValet:
		return "RPCValet"
	case SchedNebula:
		return "Nebula"
	case SchedNanoPU:
		return "nanoPU"
	case SchedAltocumulus:
		return "Altocumulus"
	case SchedRSSPlus:
		return "RSS++"
	default:
		return "RSS"
	}
}

// Config describes one server under test.
type Config struct {
	Kind  SchedulerKind
	Cores int         // total cores (baselines use all as workers; Shinjuku reserves one dispatcher)
	AC    core.Params // Altocumulus configuration (Kind == SchedAltocumulus)

	Stack rpcproto.StackKind
	Cost  fabric.CostModel
	Steer nic.SteerPolicy // steering for d-FCFS and AC group selection

	Seed uint64

	// SLO: explicit target; when 0, SLOMult x the workload's mean
	// service time is used (the paper's default L = 10).
	SLO     sim.Time
	SLOMult float64

	// MaxQueueSnapshot enables periodic queue-length snapshots.
	SnapshotEvery sim.Time

	// NoCheck opts this run out of the online invariant checker
	// (internal/check). The checker is on by default — it is passive and
	// deterministic, so results are identical either way; opt out only
	// for micro-benchmarks where its bookkeeping overhead matters.
	NoCheck bool

	// NoArena opts this run out of the request arena: every request is
	// heap-allocated for its whole lifetime, as in the original
	// implementation. Results are byte-identical either way (the arena
	// only changes where request records live); the escape hatch exists
	// so allocation-sensitive regressions can be bisected against the
	// plain-heap path (altobench -noarena).
	NoArena bool

	// HeapSched runs this simulation on the slab binary-heap event
	// scheduler instead of the default timer wheel. Results are
	// byte-identical either way (both backends fire in (at, seq) order);
	// the reference backend exists so scheduler bugs can be bisected
	// differentially (altobench -heapsched), mirroring NoArena.
	HeapSched bool
}

// arenaEnabled is the process-wide default, written once at startup
// (the altobench -noarena flag) before any run begins — the same
// contract as check.SetEnabled.
var arenaEnabled = true

// SetArenaEnabled flips the process-wide arena default. Call it only
// before runs start (flag parsing); per-run opt-out is Config.NoArena.
func SetArenaEnabled(on bool) { arenaEnabled = on }

// ArenaEnabled reports the process-wide default.
func ArenaEnabled() bool { return arenaEnabled }

// heapSched is the process-wide event-scheduler default, written once
// at startup (the altobench -heapsched flag) before any run begins —
// the same contract as SetArenaEnabled.
var heapSched = false

// SetHeapSched flips the process-wide scheduler default to the slab
// binary heap. Call it only before runs start (flag parsing); per-run
// opt-in is Config.HeapSched.
func SetHeapSched(on bool) { heapSched = on }

// HeapSchedEnabled reports the process-wide default.
func HeapSchedEnabled() bool { return heapSched }

// newEngine builds the run's event engine per the config and the
// process-wide default.
func newEngine(cfg Config) *sim.Engine {
	if cfg.HeapSched || heapSched {
		return sim.NewEngineHeap()
	}
	return sim.NewEngine()
}

// Scratch holds per-worker reusable state for a sequence of runs: the
// request arena (slabs stay warm across runs) and the handle table.
// A Scratch must not be shared between concurrent runs — internal/fleet
// gives each pool worker its own via fleet.MapWith.
type Scratch struct {
	arena   *arena.Arena
	handles []arena.RequestID
}

// NewScratch returns an empty Scratch; slabs grow on first use.
func NewScratch() *Scratch { return &Scratch{arena: arena.New()} }

// App lets an application bind real work to requests.
type App interface {
	// Prepare assigns the operation, payload and base service time of a
	// freshly generated request (called at trace-generation time so that
	// all schedulers replay the identical workload).
	Prepare(r *rpcproto.Request, rng *sim.RNG)
}

// Workload is the offered load.
type Workload struct {
	Arrivals dist.ArrivalProcess
	Service  dist.ServiceDist // ignored when App or Profile != nil
	App      App
	// Profile draws each request as a multi-phase chain (DESIGN.md §15)
	// instead of one Service sample. Precedence: App > Profile >
	// Service. A 1-phase neutral profile consumes the identical RNG
	// stream as its bare distribution, so runs are byte-identical.
	Profile *dist.PhaseProfile
	N       int // total requests
	Warmup  int // initial completions excluded from the latency sample
	Conns   int // distinct connections (flows); default 1024
}

// Result is one run's measurements.
type Result struct {
	Name       string
	Lat        *stats.Sample
	SLO        sim.Time
	Summary    stats.Summary
	Requests   []*rpcproto.Request // indexed by request ID
	Duration   sim.Time            // last completion time
	OfferedRPS float64
	DoneRPS    float64 // completed / duration
	ACStats    core.Stats
	StealFrac  float64
	// WorkerUtilization is the mean busy fraction of the worker cores
	// over the run (management/dispatcher cores excluded).
	WorkerUtilization float64
	Snapshots         []Snapshot
	// Check is the invariant checker's report (nil when opted out).
	Check *check.Report
}

// Snapshot is a periodic queue-length observation.
type Snapshot struct {
	At   sim.Time
	Lens []int
}

// gen drives the lazily-generated arrival chain. All callbacks are
// bound once at run start and requests ride through the engine as
// AtArg/AfterArg payloads, so steady-state generation, arrival, and
// delivery allocate nothing beyond the request records themselves —
// and with the arena enabled, not even those.
type gen struct {
	eng    *sim.Engine
	s      sched.Scheduler
	rx     nic.RXModel
	wl     *Workload
	arrRNG *sim.RNG
	svcRNG *sim.RNG
	res    *Result

	// Arena mode: requests live in ar's slots while in flight and are
	// copied into the records value slab (which backs res.Requests) at
	// completion, when every field is final. Heap mode: ar is nil and
	// each request is a plain allocation kept forever.
	ar      *arena.Arena
	handles []arena.RequestID
	records []rpcproto.Request

	meanSvcSum float64
	arriveFn   func(arg any, n int64)
	deliverFn  func(arg any, n int64)
}

// schedule generates request i (drawing Conn, then Service, then the
// arrival gap — the RNG order the golden traces lock down) and books
// its arrival event. Request i+1 is generated inside i's arrival
// callback, so at most one undelivered request exists at a time.
//
//altolint:hotpath
func (g *gen) schedule(i int, at sim.Time) {
	if i >= g.wl.N {
		return
	}
	var r *rpcproto.Request
	if g.ar != nil {
		r, g.handles[i] = g.ar.Acquire()
		g.res.Requests[i] = &g.records[i]
	} else {
		r = &rpcproto.Request{} //altolint:allow hotalloc the NoArena escape hatch heap-allocates by design
		g.res.Requests[i] = r
	}
	r.ID = uint64(i)
	r.Conn = uint32(g.arrRNG.Intn(g.wl.Conns))
	r.Size = 300
	if g.wl.App != nil {
		g.wl.App.Prepare(r, g.svcRNG)
	} else if g.wl.Profile != nil {
		g.wl.Profile.Apply(r, g.svcRNG)
	} else {
		r.Service = g.wl.Service.Sample(g.svcRNG)
	}
	g.meanSvcSum += r.Service.Seconds()
	// Software stacks charge per-request processing on the core. For a
	// phased request the stack cost lands on the first phase so the
	// per-phase durations keep summing to Service.
	stackCost := g.rx.CoreStackCost(r.Size)
	r.Service += stackCost
	if r.NumPhases > 0 && stackCost > 0 {
		r.PhaseSvc[0] += stackCost
		r.PhaseAcc[0] += stackCost
	}
	gap := g.wl.Arrivals.NextGap(g.arrRNG)
	g.eng.AtArg(at, g.arriveFn, r, int64(gap))
}

// arrive is the bound arrival callback: stamp the arrival, book the
// NIC delivery, and generate the next request. The event creation
// order (delivery before next arrival) matches the original closure
// chain exactly.
//
//altolint:hotpath
func (g *gen) arrive(arg any, gapN int64) {
	r := arg.(*rpcproto.Request)
	now := g.eng.Now()
	r.Arrival = now
	g.eng.AfterArg(g.rx.Delay(r.Size), g.deliverFn, r, 0)
	g.schedule(int(r.ID)+1, now+sim.Time(gapN))
}

//altolint:hotpath
func (g *gen) deliver(arg any, _ int64) {
	g.s.Deliver(arg.(*rpcproto.Request))
}

// Run executes the workload against the configured server with a
// private, throwaway Scratch.
func Run(cfg Config, wl Workload) (*Result, error) {
	return RunWith(nil, cfg, wl)
}

// RunWith executes the workload reusing sc's arena and buffers across
// runs (sc == nil allocates a fresh Scratch; pass one only from a
// single goroutine at a time). Results are independent of sc.
func RunWith(sc *Scratch, cfg Config, wl Workload) (*Result, error) {
	if wl.N <= 0 {
		return nil, fmt.Errorf("server: workload N = %d", wl.N)
	}
	if wl.Conns <= 0 {
		wl.Conns = 1024
	}
	if cfg.SLOMult == 0 {
		cfg.SLOMult = 10
	}
	if cfg.Cost.ClockHz == 0 {
		cfg.Cost = fabric.Default()
	}

	eng := newEngine(cfg)
	root := sim.NewRNG(cfg.Seed)
	arrRNG := root.Fork(1)
	svcRNG := root.Fork(2)
	steerRNG := root.Fork(3)
	schedRNG := root.Fork(4)

	res := &Result{
		Name:     cfg.Kind.String(),
		Lat:      stats.NewSample(wl.N),
		Requests: make([]*rpcproto.Request, wl.N),
	}

	g := &gen{eng: eng, wl: &wl, arrRNG: arrRNG, svcRNG: svcRNG, res: res}
	liveBefore := 0
	if !cfg.NoArena && ArenaEnabled() {
		if sc == nil {
			sc = NewScratch()
		}
		g.ar = sc.arena
		liveBefore = g.ar.Live()
		if cap(sc.handles) < wl.N {
			sc.handles = make([]arena.RequestID, wl.N)
		}
		g.handles = sc.handles[:wl.N]
		// The records slab is retained by the Result, so it cannot live
		// in the Scratch: one allocation per run, not per request.
		g.records = make([]rpcproto.Request, wl.N)
	}

	nDone := 0
	var arenaErr error
	done := func(r *rpcproto.Request) {
		nDone++
		if int(r.ID) >= wl.Warmup {
			res.Lat.Add(r.Latency())
		}
		if r.Finish > res.Duration {
			res.Duration = r.Finish
		}
		if g.ar != nil {
			// Every field is final at completion; snapshot the record,
			// then recycle the slot. A stale handle here means a request
			// completed twice — remember the first occurrence and fail
			// the run after the loop (the checker reports it too).
			g.records[r.ID] = *r
			if !g.ar.Release(g.handles[r.ID]) && arenaErr == nil {
				arenaErr = fmt.Errorf("server: request %d released with stale arena handle", r.ID)
			}
		}
	}

	var chk *check.Checker
	if !cfg.NoCheck && check.Enabled() {
		chk = check.New(check.Options{
			Expected:         wl.N,
			AllowRemigration: cfg.Kind == SchedAltocumulus && cfg.AC.AllowRemigration,
			WorkConserving:   cfg.Kind == SchedZygOS,
		})
		done = chk.WrapDone(done)
	}

	s, rx, err := build(cfg, eng, steerRNG, schedRNG, done)
	if err != nil {
		return nil, err
	}
	if chk != nil {
		s.(interface{ SetObserver(sched.Observer) }).SetObserver(chk)
		chk.Attach(eng, checkSpecs(cfg), s.QueueLensInto)
	}
	res.Name = s.Name()
	if cfg.Kind == SchedAltocumulus {
		res.Name = "Altocumulus"
	}

	// Lazily-generated arrival chain: one event in flight at a time,
	// driven by the pre-bound gen callbacks.
	g.s, g.rx = s, rx
	g.arriveFn = g.arrive
	g.deliverFn = g.deliver
	g.schedule(0, 0)

	if cfg.SnapshotEvery > 0 {
		var snap func()
		snap = func() {
			if nDone >= wl.N {
				return
			}
			res.Snapshots = append(res.Snapshots, Snapshot{At: eng.Now(), Lens: s.QueueLens()})
			eng.After(cfg.SnapshotEvery, snap)
		}
		eng.After(cfg.SnapshotEvery, snap)
	}

	// Run to completion; the AC runtime ticks forever, so run in chunks.
	const chunk = 5 * sim.Millisecond
	const hardCap = 100 * sim.Second
	for nDone < wl.N {
		if eng.Now() > hardCap {
			return nil, fmt.Errorf("server: %s did not finish %d requests within %v (done %d)",
				res.Name, wl.N, hardCap, nDone)
		}
		eng.Run(eng.Now() + chunk)
	}
	if arenaErr != nil {
		return nil, arenaErr
	}
	if g.ar != nil && g.ar.Live() != liveBefore {
		return nil, fmt.Errorf("server: %s leaked %d arena requests",
			res.Name, g.ar.Live()-liveBefore)
	}
	if ac, ok := s.(*core.Scheduler); ok {
		ac.Stop()
		res.ACStats = ac.Stats
	}
	if rp, ok := s.(*sched.RSSPlus); ok {
		rp.Stop()
	}
	if z, ok := s.(*sched.Steal); ok {
		res.StealFrac = z.StealFraction()
	}
	if cs, ok := s.(interface{ Cores() []*exec.Core }); ok && res.Duration > 0 {
		var busy float64
		cores := cs.Cores()
		for _, c := range cores {
			busy += c.BusyTime().Seconds()
		}
		res.WorkerUtilization = busy / (res.Duration.Seconds() * float64(len(cores)))
	}

	if chk != nil {
		res.Check = chk.Finalize()
		if err := res.Check.Err(); err != nil {
			return nil, fmt.Errorf("server: %s: %w", res.Name, err)
		}
	}

	res.SLO = cfg.SLO
	if res.SLO == 0 {
		meanSvc := sim.FromSeconds(g.meanSvcSum / float64(wl.N))
		res.SLO = sim.Time(cfg.SLOMult * float64(meanSvc))
	}
	res.Summary = res.Lat.Summarize(res.SLO)
	res.OfferedRPS = wl.Arrivals.MeanRate()
	if res.Duration > 0 {
		res.DoneRPS = float64(wl.N) / res.Duration.Seconds()
	}
	return res, nil
}

// checkSpecs maps a config's scheduler onto the checker's queue
// topology, following the probe id conventions documented on
// sched.Probe.
func checkSpecs(cfg Config) []check.QueueSpec {
	var specs []check.QueueSpec
	switch cfg.Kind {
	case SchedRSS, SchedIX, SchedZygOS, SchedRSSPlus:
		for i := 0; i < cfg.Cores; i++ {
			specs = append(specs, check.QueueSpec{ID: i, Core: i, Lens: i})
		}
	case SchedShinjuku:
		// The central queue has no owning core: a non-empty queue with
		// idle workers is legal while dispatches are in flight.
		specs = []check.QueueSpec{{ID: 0, Core: -1, Lens: 0}}
	case SchedRPCValet, SchedNebula, SchedNanoPU:
		// QueueLens exposes per-core outstanding counts (not local queue
		// lengths) after the central length, so only index 0 cross-checks.
		specs = append(specs, check.QueueSpec{ID: 0, Core: -1, Lens: 0})
		for i := 0; i < cfg.Cores; i++ {
			specs = append(specs, check.QueueSpec{ID: 1 + i, Core: i, Lens: -1})
		}
	case SchedAltocumulus:
		g, w := cfg.AC.Groups, cfg.AC.WorkersPerGroup
		for gid := 0; gid < g; gid++ {
			specs = append(specs, check.QueueSpec{ID: gid, Core: -1, Lens: gid})
		}
		for gid := 0; gid < g; gid++ {
			for wi := 0; wi < w; wi++ {
				specs = append(specs, check.QueueSpec{ID: g + gid*w + wi, Core: gid*w + wi, Lens: -1})
			}
		}
	}
	return specs
}

// build constructs the scheduler and NIC receive model for a config.
func build(cfg Config, eng *sim.Engine, steerRNG, schedRNG *sim.RNG, done sched.Done) (sched.Scheduler, nic.RXModel, error) {
	cost := cfg.Cost
	stack := rpcproto.NewStack(cfg.Stack)

	pcie := nic.RXModel{Cost: cost, Attach: fabric.AttachPCIe, Stack: stack}
	integ := nic.RXModel{Cost: cost, Attach: fabric.AttachIntegrated, HWTerminated: true, Stack: stack}

	switch cfg.Kind {
	case SchedRSS, SchedIX:
		st := nic.NewSteerer(cfg.Steer, cfg.Cores, steerRNG)
		s := sched.NewDFCFS(eng, cfg.Cores, st, cost.CacheMiss, done)
		if cfg.Kind == SchedIX {
			s.Label = "IX"
		} else {
			s.Label = "RSS"
		}
		return s, pcie, nil
	case SchedZygOS:
		st := nic.NewSteerer(cfg.Steer, cfg.Cores, steerRNG)
		s := sched.NewSteal(eng, cfg.Cores, st, cost.CacheMiss, cost.StealAttempt, schedRNG, done)
		return s, pcie, nil
	case SchedRSSPlus:
		s := sched.NewRSSPlus(eng, cfg.Cores, 4*cfg.Cores, cost.CacheMiss,
			20*sim.Microsecond, done)
		return s, pcie, nil
	case SchedShinjuku:
		// One core is the dedicated dispatcher; ~200 ns per dispatch caps
		// it at the paper's 5 MRPS. 5 us preemption quantum.
		workers := cfg.Cores - 1
		if workers < 1 {
			workers = 1
		}
		s := sched.NewCentral(eng, workers, 200*sim.Nanosecond, cost.CoherenceMsg,
			5*sim.Microsecond, cost.PreemptCost, done)
		return s, pcie, nil
	case SchedRPCValet:
		s := sched.NewJBSQ(eng, cfg.Cores, sched.VariantRPCValet, 2, cost.CacheMiss,
			6*sim.Nanosecond, 0, 0, done)
		return s, integ, nil
	case SchedNebula:
		s := sched.NewJBSQ(eng, cfg.Cores, sched.VariantNebula, 2, cost.LLCAccess,
			4*sim.Nanosecond, 0, 0, done)
		return s, integ, nil
	case SchedNanoPU:
		s := sched.NewJBSQ(eng, cfg.Cores, sched.VariantNanoPU, 2, cost.RegisterXfer,
			1500*sim.Picosecond, 5*sim.Microsecond, 200*sim.Nanosecond, done)
		return s, integ, nil
	case SchedAltocumulus:
		// The phase-forward pow-k sampler gets its own stream, derived
		// from the run seed unless the caller pinned one. cfg is a copy,
		// so the caller's Params are untouched.
		if cfg.AC.ForwardSeed == 0 {
			cfg.AC.ForwardSeed = cfg.Seed
		}
		st := nic.NewSteerer(cfg.Steer, cfg.AC.Groups, steerRNG)
		s, err := core.New(eng, cfg.AC, cost, st, done)
		if err != nil {
			return nil, nic.RXModel{}, err
		}
		if cfg.AC.Local == core.DispatchSoftware {
			// ACrss: commodity PCIe NIC, but the manager core runs the
			// networking threads (§VII "handles traditional networking
			// threads and request dispatch, similar to Shinjuku"), so
			// stack processing is pipelined off the workers: it adds
			// receive-path latency, not worker occupancy.
			return s, nic.RXModel{Cost: cost, Attach: fabric.AttachPCIe,
				HWTerminated: true, Stack: stack}, nil
		}
		return s, integ, nil
	default:
		return nil, nic.RXModel{}, fmt.Errorf("server: unknown scheduler kind %d", cfg.Kind)
	}
}
