package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestGoldenTracesNoArena proves the arena is invisible to results: the
// heap path (Config.NoArena) must reproduce the same checked-in golden
// traces the arena path is locked to, byte for byte, for all nine
// schedulers. Any divergence means request state leaked across the
// acquire/release lifecycle.
func TestGoldenTracesNoArena(t *testing.T) {
	for _, kind := range goldenKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := goldenConfig(kind)
			cfg.NoArena = true
			res, err := Run(cfg, goldenWorkload())
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, kind, res)
		})
	}
}

// TestScratchReusePurity locks the RunWith contract: a Scratch carried
// across consecutive runs (arena slabs warm, handle table reused) must
// not change any run's trace. This is the serial shape of what each
// fleet.MapWith worker does.
func TestScratchReusePurity(t *testing.T) {
	sc := NewScratch()
	for round := 0; round < 3; round++ {
		for _, kind := range goldenKinds() {
			res, err := RunWith(sc, goldenConfig(kind), goldenWorkload())
			if err != nil {
				t.Fatalf("round %d %s: %v", round, kind, err)
			}
			compareGolden(t, kind, res)
		}
	}
}

func goldenKinds() []SchedulerKind {
	return []SchedulerKind{
		SchedRSS, SchedIX, SchedZygOS, SchedShinjuku,
		SchedRPCValet, SchedNebula, SchedNanoPU,
		SchedAltocumulus, SchedRSSPlus,
	}
}

func goldenConfig(kind SchedulerKind) Config {
	cfg := Config{
		Kind: kind, Cores: 4, Stack: rpcproto.StackNanoRPC,
		Steer: nic.SteerConnection, Seed: 7,
	}
	if kind == SchedAltocumulus {
		cfg.AC = core.DefaultParams(2, 2)
	}
	return cfg
}

func goldenWorkload() Workload {
	svc := dist.Exponential{M: sim.Microsecond}
	return Workload{
		Arrivals: dist.Poisson{Rate: dist.LoadForRate(0.7, 4, svc)},
		Service:  svc,
		N:        250, Warmup: 0, Conns: 8,
	}
}

func compareGolden(t *testing.T, kind SchedulerKind, res *Result) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, res.Requests); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden",
		fmt.Sprintf("%s.csv", sanitize(kind.String())))
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace deviates from %s (%d vs %d bytes)", path, buf.Len(), len(want))
	}
}
