package server

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/arena"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/nic"
	"repro/internal/policy"
	"repro/internal/rack"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RackConfig describes the inter-server tier of a simulated rack: how
// many identical servers it holds and how arrivals are dispatched
// across them. The per-server tier is a plain Config — each server
// runs the existing group-scheduling core completely unchanged.
type RackConfig struct {
	// Servers is the rack width (>= 1).
	Servers int
	// Policy is the inter-server dispatch rule.
	Policy rack.Kind
	// K is the PowerOfK sample size (0 = 2).
	K int
	// SampleEvery is the queue-depth sampling period: the dispatcher's
	// view of per-server depth refreshes this often, going stale in
	// between exactly as RackSched's sampled lens vectors do. 0 means a
	// fresh view before every dispatch (an idealised instant-visibility
	// rack interconnect).
	SampleEvery sim.Time
	// NoCheck opts the rack run out of both the per-server invariant
	// checkers and the rack-level checker. On by default, like Config.
	NoCheck bool
	// TraceViews records each dispatch decision's sampled view as a
	// string (RackResult.Views) for golden traces. Costs an allocation
	// per request; leave off outside tests.
	TraceViews bool
}

// Validate reports unusable rack configurations.
func (rc RackConfig) Validate() error {
	if rc.Servers < 1 {
		return fmt.Errorf("server: rack Servers = %d, want >= 1", rc.Servers)
	}
	if rc.SampleEvery < 0 {
		return fmt.Errorf("server: rack SampleEvery = %v, want >= 0", rc.SampleEvery)
	}
	return nil
}

// RackResult extends a Result (aggregate latency, SLO accounting,
// per-request records — exactly what a single-server run reports) with
// the rack tier's accounting.
type RackResult struct {
	*Result
	Servers int
	Policy  rack.Kind
	// Dispatched and Completed are per-server request counts; the rack
	// checker proves they match at drain.
	Dispatched []uint64
	Completed  []uint64
	// MaxSampleAge is the oldest depth view any dispatch consulted.
	MaxSampleAge sim.Time
	// ServerOf[id] is the server request id was dispatched to; Ages[id]
	// is the view age its decision consulted.
	ServerOf []int32
	Ages     []sim.Time
	// Views[id] is the decision's sampled (server:depth) view, recorded
	// only under RackConfig.TraceViews.
	Views []string
	// RackCheck is the rack-level checker report; ServerChecks are the
	// per-server reports (nil when opted out).
	RackCheck    *check.Report
	ServerChecks []*check.Report
}

// rackGen drives the shared arrival chain of a rack run. It mirrors
// gen (same draw order: Conn, then Service, then gap; same event
// creation order) with one addition: the arrival callback asks the
// rack dispatcher which server's NIC receives the request. With one
// server the dispatcher short-circuits without consuming randomness,
// which is why a rack-of-1 trace is byte-identical to the
// single-server path.
type rackGen struct {
	eng    *sim.Engine
	wl     *Workload
	arrRNG *sim.RNG
	svcRNG *sim.RNG
	res    *Result
	rr     *RackResult

	scheds []sched.Scheduler
	rxs    []nic.RXModel
	disp   *rack.Dispatcher
	rngRk  *sim.RNG
	rchk   *check.RackChecker

	// outstanding is the ground-truth per-server in-flight count
	// (dispatched minus completed) the sampler reads.
	outstanding []int
	sampleEvery sim.Time

	ar      *arena.Arena
	handles []arena.RequestID
	records []rpcproto.Request

	meanSvcSum float64
	arriveFn   func(arg any, n int64)
	deliverFn  func(arg any, n int64)
	sampleFn   func(arg any, n int64)
}

// schedule generates request i exactly as gen.schedule does.
//
//altolint:hotpath
func (g *rackGen) schedule(i int, at sim.Time) {
	if i >= g.wl.N {
		return
	}
	var r *rpcproto.Request
	if g.ar != nil {
		r, g.handles[i] = g.ar.Acquire()
		g.res.Requests[i] = &g.records[i]
	} else {
		r = &rpcproto.Request{} //altolint:allow hotalloc the NoArena escape hatch heap-allocates by design
		g.res.Requests[i] = r
	}
	r.ID = uint64(i)
	r.Conn = uint32(g.arrRNG.Intn(g.wl.Conns))
	r.Size = 300
	if g.wl.App != nil {
		g.wl.App.Prepare(r, g.svcRNG)
	} else {
		r.Service = g.wl.Service.Sample(g.svcRNG)
	}
	g.meanSvcSum += r.Service.Seconds()
	r.Service += g.rxs[0].CoreStackCost(r.Size)
	gap := g.wl.Arrivals.NextGap(g.arrRNG)
	g.eng.AtArg(at, g.arriveFn, r, int64(gap))
}

// arrive stamps the arrival, makes the rack dispatch decision, books
// the chosen server's NIC delivery, and generates the next request.
//
//altolint:hotpath
func (g *rackGen) arrive(arg any, gapN int64) {
	r := arg.(*rpcproto.Request)
	now := g.eng.Now()
	r.Arrival = now
	if g.sampleEvery == 0 {
		g.disp.ObserveAll(g.outstanding, policy.Duration(now))
	}
	dec := g.disp.Pick(r.Conn, policy.Duration(now), g.rngRk)
	srv := dec.Server
	g.outstanding[srv]++
	g.rr.ServerOf[r.ID] = int32(srv)
	g.rr.Ages[r.ID] = sim.Time(dec.Age)
	if g.rr.Views != nil {
		g.recordView(r.ID, dec)
	}
	if g.rchk != nil {
		g.rchk.OnDispatch(r.ID, srv, sim.Time(dec.Age), now)
	}
	g.eng.AfterArg(g.rxs[srv].Delay(r.Size), g.deliverFn, r, int64(srv))
	g.schedule(int(r.ID)+1, now+sim.Time(gapN))
}

//altolint:hotpath
func (g *rackGen) deliver(arg any, srv int64) {
	g.scheds[srv].Deliver(arg.(*rpcproto.Request))
}

// recordView formats one decision's sampled (server:depth) pairs.
func (g *rackGen) recordView(id uint64, dec rack.Decision) {
	var b []byte
	for i, s := range dec.Sampled {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(dec.Depths[i]), 10)
	}
	g.rr.Views[id] = string(b)
}

// RunRack executes the workload against a rack of identical servers
// with a private Scratch.
func RunRack(rc RackConfig, cfg Config, wl Workload) (*RackResult, error) {
	return RunRackWith(nil, rc, cfg, wl)
}

// RunRackWith is RunRack with a reusable Scratch (see RunWith). One
// engine drives all servers: a shared arrival process feeds the rack
// dispatcher, which routes each request to one server's NIC receive
// path; each server runs its own scheduler, cores, and (by default)
// invariant checker, with a rack-level checker proving inter-server
// conservation and bounded staleness on top.
func RunRackWith(sc *Scratch, rc RackConfig, cfg Config, wl Workload) (*RackResult, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	if wl.N <= 0 {
		return nil, fmt.Errorf("server: workload N = %d", wl.N)
	}
	if wl.Conns <= 0 {
		wl.Conns = 1024
	}
	if cfg.SLOMult == 0 {
		cfg.SLOMult = 10
	}
	if cfg.Cost.ClockHz == 0 {
		cfg.Cost = fabric.Default()
	}

	eng := newEngine(cfg)
	root := sim.NewRNG(cfg.Seed)
	arrRNG := root.Fork(1)
	svcRNG := root.Fork(2)
	// Per-server forks continue the single-server tag sequence: server
	// 0 gets tags 3 and 4, exactly the forks (and parent-state draws) a
	// single-server run makes, so rack-of-1 replays it stream for
	// stream. The rack's own RNG forks last: with one server the
	// dispatcher never draws from it.
	steerRNGs := make([]*sim.RNG, rc.Servers)
	schedRNGs := make([]*sim.RNG, rc.Servers)
	for s := 0; s < rc.Servers; s++ {
		steerRNGs[s] = root.Fork(uint64(3 + 2*s))
		schedRNGs[s] = root.Fork(uint64(4 + 2*s))
	}
	rackRNG := root.Fork(uint64(3 + 2*rc.Servers))

	res := &Result{
		Lat:      stats.NewSample(wl.N),
		Requests: make([]*rpcproto.Request, wl.N),
	}
	rr := &RackResult{
		Result:     res,
		Servers:    rc.Servers,
		Policy:     rc.Policy,
		Dispatched: make([]uint64, rc.Servers),
		Completed:  make([]uint64, rc.Servers),
		ServerOf:   make([]int32, wl.N),
		Ages:       make([]sim.Time, wl.N),
	}
	if rc.TraceViews {
		rr.Views = make([]string, wl.N)
	}

	disp, err := rack.NewDispatcher(rack.Config{
		Servers: rc.Servers, Policy: rc.Policy, K: rc.K,
		StalenessBound: policy.Duration(rc.SampleEvery),
	})
	if err != nil {
		return nil, err
	}

	g := &rackGen{
		eng: eng, wl: &wl, arrRNG: arrRNG, svcRNG: svcRNG, res: res, rr: rr,
		disp: disp, rngRk: rackRNG,
		outstanding: make([]int, rc.Servers),
		sampleEvery: rc.SampleEvery,
	}
	liveBefore := 0
	if !cfg.NoArena && ArenaEnabled() {
		if sc == nil {
			sc = NewScratch()
		}
		g.ar = sc.arena
		liveBefore = g.ar.Live()
		if cap(sc.handles) < wl.N {
			sc.handles = make([]arena.RequestID, wl.N)
		}
		g.handles = sc.handles[:wl.N]
		g.records = make([]rpcproto.Request, wl.N)
	}

	checkOn := !rc.NoCheck && !cfg.NoCheck && check.Enabled()
	if checkOn {
		// The staleness bound: with periodic sampling no decision may
		// consult a view older than one period; with fresh-view dispatch
		// any nonzero age is a harness bug.
		bound := rc.SampleEvery
		if bound == 0 {
			bound = sim.Picosecond
		}
		g.rchk = check.NewRackChecker(check.RackOptions{
			Servers: rc.Servers, Expected: wl.N, StalenessBound: bound,
		})
	}

	nDone := 0
	var arenaErr error
	complete := func(srv int, r *rpcproto.Request) {
		nDone++
		g.outstanding[srv]--
		rr.Completed[srv]++
		if g.rchk != nil {
			g.rchk.OnComplete(r.ID, srv, eng.Now())
		}
		if int(r.ID) >= wl.Warmup {
			res.Lat.Add(r.Latency())
		}
		if r.Finish > res.Duration {
			res.Duration = r.Finish
		}
		if g.ar != nil {
			g.records[r.ID] = *r
			if !g.ar.Release(g.handles[r.ID]) && arenaErr == nil {
				arenaErr = fmt.Errorf("server: request %d released with stale arena handle", r.ID)
			}
		}
	}

	// Build each server — scheduler, NIC receive model, and its own
	// passive invariant checker — in index order, matching the
	// single-server setup sequence per server.
	g.scheds = make([]sched.Scheduler, rc.Servers)
	g.rxs = make([]nic.RXModel, rc.Servers)
	checkers := make([]*check.Checker, rc.Servers)
	for s := 0; s < rc.Servers; s++ {
		srv := s
		done := sched.Done(func(r *rpcproto.Request) { complete(srv, r) })
		var chk *check.Checker
		if checkOn {
			chk = check.New(check.Options{
				AllowRemigration: cfg.Kind == SchedAltocumulus && cfg.AC.AllowRemigration,
				WorkConserving:   cfg.Kind == SchedZygOS,
			})
			done = chk.WrapDone(done)
		}
		sched_, rx, err := build(cfg, eng, steerRNGs[s], schedRNGs[s], done)
		if err != nil {
			return nil, err
		}
		if chk != nil {
			sched_.(interface{ SetObserver(sched.Observer) }).SetObserver(chk)
			chk.Attach(eng, checkSpecs(cfg), sched_.QueueLensInto)
		}
		g.scheds[s], g.rxs[s], checkers[s] = sched_, rx, chk
	}
	res.Name = g.scheds[0].Name()
	if cfg.Kind == SchedAltocumulus {
		res.Name = "Altocumulus"
	}
	res.Name = fmt.Sprintf("rack-of-%d[%s] %s", rc.Servers, rc.Policy, res.Name)

	g.arriveFn = g.arrive
	g.deliverFn = g.deliver
	if rc.SampleEvery > 0 {
		g.sampleFn = func(any, int64) {
			if nDone >= wl.N {
				return
			}
			g.disp.ObserveAll(g.outstanding, policy.Duration(eng.Now()))
			eng.AfterArg(rc.SampleEvery, g.sampleFn, nil, 0)
		}
		eng.AfterArg(rc.SampleEvery, g.sampleFn, nil, 0)
	}
	g.schedule(0, 0)

	const chunk = 5 * sim.Millisecond
	const hardCap = 100 * sim.Second
	for nDone < wl.N {
		if eng.Now() > hardCap {
			return nil, fmt.Errorf("server: %s did not finish %d requests within %v (done %d)",
				res.Name, wl.N, hardCap, nDone)
		}
		eng.Run(eng.Now() + chunk)
	}
	if arenaErr != nil {
		return nil, arenaErr
	}
	if g.ar != nil && g.ar.Live() != liveBefore {
		return nil, fmt.Errorf("server: %s leaked %d arena requests",
			res.Name, g.ar.Live()-liveBefore)
	}

	var busy float64
	var nCores int
	for s, sch := range g.scheds {
		if ac, ok := sch.(*core.Scheduler); ok {
			ac.Stop()
			if s == 0 {
				res.ACStats = ac.Stats
			}
		}
		if rp, ok := sch.(*sched.RSSPlus); ok {
			rp.Stop()
		}
		if cs, ok := sch.(interface{ Cores() []*exec.Core }); ok {
			for _, c := range cs.Cores() {
				busy += c.BusyTime().Seconds()
			}
			nCores += len(cs.Cores())
		}
	}
	if res.Duration > 0 && nCores > 0 {
		res.WorkerUtilization = busy / (res.Duration.Seconds() * float64(nCores))
	}

	if checkOn {
		rr.ServerChecks = make([]*check.Report, rc.Servers)
		for s, chk := range checkers {
			rr.ServerChecks[s] = chk.Finalize()
			if err := rr.ServerChecks[s].Err(); err != nil {
				return nil, fmt.Errorf("server: %s server %d: %w", res.Name, s, err)
			}
		}
		rr.RackCheck = g.rchk.Finalize(eng.Now())
		rr.MaxSampleAge = g.rchk.MaxSampleAge()
		disp_, _ := g.rchk.PerServer()
		copy(rr.Dispatched, disp_)
		if err := rr.RackCheck.Err(); err != nil {
			return nil, fmt.Errorf("server: %s: %w", res.Name, err)
		}
		res.Check = rr.RackCheck
	} else {
		// Without the checker, dispatch counts come from the recorded
		// assignments.
		for _, s := range rr.ServerOf {
			rr.Dispatched[s]++
		}
	}

	res.SLO = cfg.SLO
	if res.SLO == 0 {
		meanSvc := sim.FromSeconds(g.meanSvcSum / float64(wl.N))
		res.SLO = sim.Time(cfg.SLOMult * float64(meanSvc))
	}
	res.Summary = res.Lat.Summarize(res.SLO)
	res.OfferedRPS = wl.Arrivals.MeanRate()
	if res.Duration > 0 {
		res.DoneRPS = float64(wl.N) / res.Duration.Seconds()
	}
	return rr, nil
}

// WriteRackDispatchCSV exports the rack tier's decision trace: one row
// per request with its destination server, the age of the depth view
// the decision consulted, and (when the run recorded them) the sampled
// (server:depth) pairs. Together with trace.WriteCSV this pins a rack
// run's behaviour byte-for-byte.
func WriteRackDispatchCSV(w io.Writer, rr *RackResult) error {
	if _, err := fmt.Fprintln(w, "id,server,age_ns,view"); err != nil {
		return err
	}
	for id, srv := range rr.ServerOf {
		view := ""
		if rr.Views != nil {
			view = rr.Views[id]
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%.3f,%s\n",
			id, srv, rr.Ages[id].Nanoseconds(), view); err != nil {
			return err
		}
	}
	return nil
}
