package server

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/rpcproto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Tenant describes one application sharing the server in a multi-tenant
// study (§XI's future-work direction: the distributed runtime as an
// isolation boundary). Each tenant has its own service-time profile,
// traffic share and SLO.
type Tenant struct {
	Name    string
	Service dist.ServiceDist
	Share   float64  // fraction of total arrivals
	SLO     sim.Time // per-tenant latency target
	Conns   int      // connection-id space width for this tenant
}

// TenantMix is an App that stamps each request with a tenant drawn from
// the configured shares, making it usable anywhere a Workload takes an
// App.
type TenantMix struct {
	Tenants []Tenant
	cum     []float64
	total   float64
}

// NewTenantMix validates and builds a tenant mix.
func NewTenantMix(tenants []Tenant) (*TenantMix, error) {
	if len(tenants) == 0 || len(tenants) > 256 {
		return nil, fmt.Errorf("server: %d tenants (need 1-256)", len(tenants))
	}
	m := &TenantMix{Tenants: tenants}
	for i, tn := range tenants {
		if tn.Share <= 0 {
			return nil, fmt.Errorf("server: tenant %q share %v", tn.Name, tn.Share)
		}
		if tn.Service == nil {
			return nil, fmt.Errorf("server: tenant %q has no service distribution", tn.Name)
		}
		if tn.Conns <= 0 {
			tenants[i].Conns = 64
		}
		m.total += tn.Share
		m.cum = append(m.cum, m.total)
	}
	return m, nil
}

// Prepare implements App.
func (m *TenantMix) Prepare(r *rpcproto.Request, rng *sim.RNG) {
	u := rng.Float64() * m.total
	idx := len(m.Tenants) - 1
	for i, c := range m.cum {
		if u < c {
			idx = i
			break
		}
	}
	tn := m.Tenants[idx]
	r.Tenant = uint8(idx)
	r.Conn = uint32(idx*1024 + rng.Intn(tn.Conns))
	r.Service = tn.Service.Sample(rng)
	r.Size = 300
}

// MeanService returns the share-weighted mean service time of the mix.
func (m *TenantMix) MeanService() sim.Time {
	var sum float64
	for i, tn := range m.Tenants {
		sum += float64(tn.Service.Mean()) * m.Tenants[i].Share / m.total
	}
	return sim.Time(sum)
}

var _ App = (*TenantMix)(nil)

// TenantSummary is one tenant's latency digest from a run.
type TenantSummary struct {
	Name    string
	SLO     sim.Time
	Summary stats.Summary
}

// SummarizeTenants splits a run's per-request records by tenant and
// digests each against its own SLO.
func SummarizeTenants(res *Result, mix *TenantMix, warmup int) []TenantSummary {
	samples := make([]*stats.Sample, len(mix.Tenants))
	for i := range samples {
		samples[i] = stats.NewSample(0)
	}
	for _, r := range res.Requests {
		if r == nil || r.Finish == 0 || int(r.ID) < warmup {
			continue
		}
		t := int(r.Tenant)
		if t < len(samples) {
			samples[t].Add(r.Latency())
		}
	}
	out := make([]TenantSummary, len(mix.Tenants))
	for i, tn := range mix.Tenants {
		out[i] = TenantSummary{
			Name:    tn.Name,
			SLO:     tn.SLO,
			Summary: samples[i].Summarize(tn.SLO),
		}
	}
	return out
}
