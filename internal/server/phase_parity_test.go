package server

import (
	"bytes"
	"testing"

	"repro/internal/dist"
	"repro/internal/trace"
)

// onePhaseWorkload is goldenWorkload with the service distribution
// wrapped in a degenerate one-phase neutral profile. By the byte-identity
// contract this must be indistinguishable from the bare distribution:
// same RNG draws, same event order, same trace bytes.
func onePhaseWorkload() Workload {
	wl := goldenWorkload()
	wl.Profile = dist.NewPhaseProfile("", dist.PhaseSpec{Dist: wl.Service})
	wl.Service = nil
	return wl
}

// TestGoldenTracesOnePhase proves the degenerate one-phase profile is
// byte-identical to the pre-refactor single-service-time path for all
// nine schedulers, against the same checked-in goldens.
func TestGoldenTracesOnePhase(t *testing.T) {
	for _, kind := range goldenKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := Run(goldenConfig(kind), onePhaseWorkload())
			if err != nil {
				t.Fatal(err)
			}
			compareGolden(t, kind, res)
		})
	}
}

// TestOnePhaseParityAcrossSeeds widens the net beyond the golden seed:
// for every scheduler and several seeds, a bare-distribution run and
// its one-phase-profile twin must produce identical trace bytes.
func TestOnePhaseParityAcrossSeeds(t *testing.T) {
	for _, kind := range goldenKinds() {
		for _, seed := range []uint64{1, 13, 9001} {
			cfg := goldenConfig(kind)
			cfg.Seed = seed

			bare, err := Run(cfg, goldenWorkload())
			if err != nil {
				t.Fatalf("%s seed %d bare: %v", kind, seed, err)
			}
			phased, err := Run(cfg, onePhaseWorkload())
			if err != nil {
				t.Fatalf("%s seed %d phased: %v", kind, seed, err)
			}

			var a, b bytes.Buffer
			if err := trace.WriteCSV(&a, bare.Requests); err != nil {
				t.Fatal(err)
			}
			if err := trace.WriteCSV(&b, phased.Requests); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Errorf("%s seed %d: one-phase profile trace deviates from bare distribution (%d vs %d bytes)",
					kind, seed, b.Len(), a.Len())
			}
		}
	}
}
