package server

import (
	"fmt"

	"repro/internal/sim"
)

// Effectiveness classifies migrated requests by comparing an ALTOCUMULUS
// run against a same-seed baseline run without migration, exactly as
// §VIII-D defines the four groups.
type Effectiveness struct {
	Eff            int // saved: violated in baseline, meets SLO after migration
	IneffNoHarm    int // fine either way (queueing still reduced)
	IneffNoBenefit int // violates either way
	False          int // harmful: baseline met SLO, migrated run violates
	Migrated       int // total migrated requests
}

func (e Effectiveness) String() string {
	return fmt.Sprintf("migrated=%d eff=%d ineff-no-harm=%d ineff-no-benefit=%d false=%d",
		e.Migrated, e.Eff, e.IneffNoHarm, e.IneffNoBenefit, e.False)
}

// ClassifyMigrations computes the Fig. 12(b) breakdown. base must be a
// run of the identical workload (same seed and parameters) with
// migration disabled; mig is the run with the runtime active. slo is the
// latency target.
func ClassifyMigrations(base, mig *Result, slo sim.Time) (Effectiveness, error) {
	var out Effectiveness
	if len(base.Requests) != len(mig.Requests) {
		return out, fmt.Errorf("server: replay mismatch: %d vs %d requests",
			len(base.Requests), len(mig.Requests))
	}
	for i, m := range mig.Requests {
		if m == nil || !m.Migrated {
			continue
		}
		b := base.Requests[i]
		out.Migrated++
		beforeViolates := b.Latency() > slo
		afterViolates := m.Latency() > slo
		switch {
		case beforeViolates && !afterViolates:
			out.Eff++
		case !beforeViolates && !afterViolates:
			out.IneffNoHarm++
		case beforeViolates && afterViolates:
			out.IneffNoBenefit++
		default:
			out.False++
		}
	}
	return out, nil
}

// PredictionAccuracy returns the paper's §IV metric: the ratio of
// correctly predicted SLO violations to the total number of SLO
// violations. Ground truth is which requests violate the SLO in the
// baseline (no-migration) run; a prediction is the Predicted mark set by
// the runtime in the migrated run.
func PredictionAccuracy(base, mig *Result, slo sim.Time) (float64, error) {
	if len(base.Requests) != len(mig.Requests) {
		return 0, fmt.Errorf("server: replay mismatch: %d vs %d requests",
			len(base.Requests), len(mig.Requests))
	}
	violations, caught := 0, 0
	for i, b := range base.Requests {
		if b == nil || b.Latency() <= slo {
			continue
		}
		violations++
		if mig.Requests[i].Predicted {
			caught++
		}
	}
	if violations == 0 {
		return 1, nil
	}
	return float64(caught) / float64(violations), nil
}

// LoadPoint is one entry of a latency-throughput curve.
type LoadPoint struct {
	OfferedRPS float64
	P99        sim.Time
	VioRatio   float64
	DoneRPS    float64
}

// ThroughputAtSLO scans a latency-throughput curve (ascending offered
// load) and returns the highest offered rate whose p99 meets the SLO.
// Returns 0 if no point qualifies.
func ThroughputAtSLO(points []LoadPoint, slo sim.Time) float64 {
	best := 0.0
	for _, p := range points {
		if p.P99 <= slo && p.OfferedRPS > best {
			best = p.OfferedRPS
		}
	}
	return best
}
