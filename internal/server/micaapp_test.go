package server

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fabric"
	"repro/internal/mica"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func newTestApp(t *testing.T, partitions int, scanFrac float64) *MICAApp {
	t.Helper()
	store, err := mica.NewStore(mica.Config{
		Partitions: partitions, BucketsPerPart: 1 << 12,
		EntriesPerBucket: 8, LogBytesPerPart: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewMICAApp(store, mica.DefaultOpCost(fabric.Default()), 10000, 16, 512)
	if err != nil {
		t.Fatal(err)
	}
	app.ScanFrac = scanFrac
	return app
}

func TestNewMICAAppValidation(t *testing.T) {
	store, _ := mica.NewStore(mica.Config{Partitions: 1, BucketsPerPart: 8, EntriesPerBucket: 2, LogBytesPerPart: 1 << 16})
	if _, err := NewMICAApp(store, mica.DefaultOpCost(fabric.Default()), 0, 16, 64); err == nil {
		t.Fatal("keys=0 should fail")
	}
	if _, err := NewMICAApp(store, mica.DefaultOpCost(fabric.Default()), 10, 4, 64); err == nil {
		t.Fatal("short keys should fail")
	}
}

func TestMICAAppPrepareShapes(t *testing.T) {
	app := newTestApp(t, 4, 0.01)
	rng := sim.NewRNG(1)
	ops := map[rpcproto.Op]int{}
	for i := 0; i < 20000; i++ {
		var r rpcproto.Request
		app.Prepare(&r, rng)
		ops[r.Op]++
		if r.Service <= 0 {
			t.Fatal("no service time")
		}
		if len(r.Payload) != 16 {
			t.Fatalf("key len %d", len(r.Payload))
		}
		if int(r.Conn) != app.Store.Partition(r.Payload) {
			t.Fatal("conn is not the EREW partition")
		}
		if r.Op == rpcproto.OpSet && r.Size <= 16+16 {
			t.Fatal("SET size should include the value")
		}
	}
	scanRate := float64(ops[rpcproto.OpScan]) / 20000
	if math.Abs(scanRate-0.01) > 0.004 {
		t.Fatalf("scan rate = %v", scanRate)
	}
	// GET/SET roughly even split of the remainder.
	if ops[rpcproto.OpGet] < 8000 || ops[rpcproto.OpSet] < 8000 {
		t.Fatalf("op mix: %v", ops)
	}
}

func TestMICAAppExecutesRealWork(t *testing.T) {
	app := newTestApp(t, 2, 0)
	rng := sim.NewRNG(2)
	before := app.Store.Stats()
	for i := 0; i < 1000; i++ {
		var r rpcproto.Request
		app.Prepare(&r, rng)
		r.OnExecute(&r)
	}
	after := app.Store.Stats()
	if after.Gets <= before.Gets {
		t.Fatal("no real GETs executed")
	}
	if after.Sets <= before.Sets {
		t.Fatal("no real SETs executed")
	}
	// Preloaded keys: GETs must overwhelmingly hit.
	hitRate := float64(after.GetHits-before.GetHits) / float64(after.Gets-before.Gets)
	if hitRate < 0.95 {
		t.Fatalf("hit rate = %v", hitRate)
	}
}

func TestMICAAppMigratedPenalty(t *testing.T) {
	app := newTestApp(t, 2, 0)
	rng := sim.NewRNG(3)
	var r rpcproto.Request
	app.Prepare(&r, rng)
	base := r.Service
	r.Migrated = true
	r.OnExecute(&r)
	if r.Service != base+app.Cost.RemotePenalty {
		t.Fatalf("penalty not applied: %v -> %v", base, r.Service)
	}
}

func TestMICAAppMeanService(t *testing.T) {
	app := newTestApp(t, 2, 0.005)
	m := app.MeanService()
	// ~50ns GET/SET + 0.5% of 50us SCAN -> ~300ns.
	if m < 200*sim.Nanosecond || m > 500*sim.Nanosecond {
		t.Fatalf("mean service = %v", m)
	}
	app.FixedService = 850 * sim.Nanosecond
	if app.MeanService() != 850*sim.Nanosecond {
		t.Fatal("fixed service override")
	}
}

func TestMICAEndToEndRun(t *testing.T) {
	app := newTestApp(t, 4, 0)
	mean := app.MeanService()
	rate := 0.5 * 12 / mean.Seconds() // 50% load on 12 workers
	p := core.DefaultParams(4, 3)
	res, err := Run(Config{
		Kind: SchedAltocumulus, AC: p, Stack: rpcproto.StackNanoRPC,
		Steer: nic.SteerDirect, Seed: 11,
	}, Workload{
		Arrivals: dist.Poisson{Rate: rate}, App: app, N: 5000, Warmup: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lat.Len() != 4500 {
		t.Fatalf("sample %d", res.Lat.Len())
	}
	st := app.Store.Stats()
	if st.Gets == 0 || st.Sets == 0 {
		t.Fatal("store saw no traffic")
	}
	// At 50% load with direct steering, p50 is service plus the fixed
	// pipeline floor (NIC front end, hw stack, LLC transfer, dispatch:
	// ~170 ns) and modest queueing.
	if res.Summary.P50 > mean+400*sim.Nanosecond {
		t.Fatalf("p50 = %v vs mean %v", res.Summary.P50, mean)
	}
}

func TestSteerDirect(t *testing.T) {
	s := nic.NewSteerer(nic.SteerDirect, 4, nil)
	for conn := uint32(0); conn < 16; conn++ {
		if got := s.Steer(&rpcproto.Request{Conn: conn}); got != int(conn)%4 {
			t.Fatalf("direct steer %d = %d", conn, got)
		}
	}
	if nic.SteerDirect.String() != "direct" {
		t.Fatal("stringer")
	}
}

func TestMICAAppHotAndZipfSkew(t *testing.T) {
	app := newTestApp(t, 4, 0)
	rng := sim.NewRNG(9)

	// Hot set: 40% of traffic on 64 keys.
	app.HotFrac = 0.4
	hot := 0
	for i := 0; i < 20000; i++ {
		var r rpcproto.Request
		app.Prepare(&r, rng)
		if binaryKeyID(r.Payload) < 64 {
			hot++
		}
	}
	if frac := float64(hot) / 20000; frac < 0.35 || frac > 0.48 {
		t.Fatalf("hot fraction = %v", frac)
	}

	// Zipf: rank 0 dominates.
	app.HotFrac = 0
	z, err := dist.NewZipf(app.Keys, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	app.Zipf = z
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		var r rpcproto.Request
		app.Prepare(&r, rng)
		counts[binaryKeyID(r.Payload)]++
	}
	if counts[0] < 500 {
		t.Fatalf("zipf head count = %d", counts[0])
	}
}

// binaryKeyID extracts the key id MICAApp encodes in the first 8 bytes.
func binaryKeyID(key []byte) uint64 {
	var id uint64
	for i := 7; i >= 0; i-- {
		id = id<<8 | uint64(key[i])
	}
	return id
}
