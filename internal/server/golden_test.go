package server

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// TestGoldenTraces locks down end-to-end determinism: one small
// fixed-seed run per scheduler, exported with trace.WriteCSV and
// byte-compared against a checked-in golden. Any change to event
// ordering, RNG consumption, steering, or scheduler logic shows up as a
// golden diff — if the change is intended, regenerate with
//
//	go test ./internal/server -run TestGoldenTraces -update
//
// and review the diff like any other code change.
func TestGoldenTraces(t *testing.T) {
	for _, kind := range goldenKinds() {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := Run(goldenConfig(kind), goldenWorkload())
			if err != nil {
				t.Fatal(err)
			}
			if res.Check == nil {
				t.Fatal("golden run executed without the invariant checker")
			}

			var buf bytes.Buffer
			if err := trace.WriteCSV(&buf, res.Requests); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden",
				fmt.Sprintf("%s.csv", sanitize(kind.String())))
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("trace deviates from %s (%d vs %d bytes); run with -update if the change is intended",
					path, buf.Len(), len(want))
			}
		})
	}
}

// sanitize maps scheduler display names to filesystem-safe stems
// (RSS++ -> RSS_plus_plus would be overkill; just swap the plus signs).
func sanitize(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		if c := name[i]; c == '+' {
			out = append(out, 'p')
		} else {
			out = append(out, c)
		}
	}
	return string(out)
}
