package server

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func us(v float64) sim.Time { return sim.FromNanos(v * 1000) }

func poisson(loadFrac float64, cores int, svc dist.ServiceDist) dist.ArrivalProcess {
	return dist.Poisson{Rate: dist.LoadForRate(loadFrac, cores, svc)}
}

func TestRunAllKindsComplete(t *testing.T) {
	svc := dist.Exponential{M: us(1)}
	kinds := []SchedulerKind{SchedRSS, SchedIX, SchedZygOS, SchedShinjuku,
		SchedRPCValet, SchedNebula, SchedNanoPU, SchedAltocumulus, SchedRSSPlus}
	for _, k := range kinds {
		cfg := Config{
			Kind: k, Cores: 16, Stack: rpcproto.StackERPC,
			Steer: nic.SteerConnection, Seed: 1,
		}
		if k == SchedAltocumulus {
			cfg.AC = core.DefaultParams(4, 3)
		}
		res, err := Run(cfg, Workload{
			Arrivals: poisson(0.5, 16, svc), Service: svc, N: 4000, Warmup: 200,
		})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Lat.Len() != 4000-200 {
			t.Fatalf("%v: sample %d", k, res.Lat.Len())
		}
		if res.Summary.P99 <= 0 {
			t.Fatalf("%v: p99 = %v", k, res.Summary.P99)
		}
		if res.Name == "" || res.Duration <= 0 || res.DoneRPS <= 0 {
			t.Fatalf("%v: result fields: %+v", k, res.Summary)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Kind: SchedRSS, Cores: 2}, Workload{N: 0}); err == nil {
		t.Fatal("N=0 should fail")
	}
	if _, err := Run(Config{Kind: SchedulerKind(99), Cores: 2},
		Workload{Arrivals: dist.Poisson{Rate: 1e6}, Service: dist.Fixed{V: us(1)}, N: 10}); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestDefaultSLOFromMeanService(t *testing.T) {
	svc := dist.Fixed{V: us(1)}
	res, err := Run(Config{Kind: SchedNanoPU, Cores: 8, Stack: rpcproto.StackNanoRPC, Seed: 2},
		Workload{Arrivals: poisson(0.3, 8, svc), Service: svc, N: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// SLO = 10 x 1us.
	if res.SLO != us(10) {
		t.Fatalf("SLO = %v", res.SLO)
	}
}

func TestSoftwareStackInflatesService(t *testing.T) {
	svc := dist.Fixed{V: us(1)}
	run := func(kind SchedulerKind, stack rpcproto.StackKind) sim.Time {
		res, err := Run(Config{Kind: kind, Cores: 8, Stack: stack, Steer: nic.SteerRoundRobin, Seed: 3},
			Workload{Arrivals: poisson(0.05, 8, svc), Service: svc, N: 500})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.P50
	}
	erpc := run(SchedRSS, rpcproto.StackERPC)       // software: ~1us svc + ~850ns stack on core
	nano := run(SchedNebula, rpcproto.StackNanoRPC) // hardware-terminated
	if erpc < us(1.8) {
		t.Fatalf("software stack not charged on core: p50=%v", erpc)
	}
	if nano > us(1.3) {
		t.Fatalf("hw-terminated stack should stay near bare service: p50=%v", nano)
	}
}

func TestReplayDeterminismAcrossConfigs(t *testing.T) {
	// Same seed, same workload: the generated request traces (service
	// times, conns) must match between an AC run and its no-migration
	// baseline so replay classification is sound.
	svc := dist.Bimodal{Short: us(0.5), Long: us(50), PLong: 0.01}
	mk := func(disable bool) *Result {
		p := core.DefaultParams(4, 3)
		p.DisableMigration = disable
		res, err := Run(Config{Kind: SchedAltocumulus, AC: p, Stack: rpcproto.StackNanoRPC,
			Steer: nic.SteerConnection, Seed: 7},
			Workload{Arrivals: poisson(0.7, 12, svc), Service: svc, N: 5000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mk(true)
	mig := mk(false)
	for i := range base.Requests {
		b, m := base.Requests[i], mig.Requests[i]
		if b.Service != m.Service || b.Conn != m.Conn || b.Arrival != m.Arrival {
			t.Fatalf("trace diverged at %d: %+v vs %+v", i, b, m)
		}
	}
	// Classification runs without error and accounts every migrated req.
	eff, err := ClassifyMigrations(base, mig, base.SLO)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Eff+eff.IneffNoHarm+eff.IneffNoBenefit+eff.False != eff.Migrated {
		t.Fatalf("classification does not partition: %+v", eff)
	}
	if eff.String() == "" {
		t.Fatal("stringer")
	}
	acc, err := PredictionAccuracy(base, mig, base.SLO)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestClassifyMismatch(t *testing.T) {
	a := &Result{Requests: make([]*rpcproto.Request, 2)}
	b := &Result{Requests: make([]*rpcproto.Request, 3)}
	if _, err := ClassifyMigrations(a, b, us(1)); err == nil {
		t.Fatal("mismatch should error")
	}
	if _, err := PredictionAccuracy(a, b, us(1)); err == nil {
		t.Fatal("mismatch should error")
	}
}

func TestPredictionAccuracyNoViolations(t *testing.T) {
	r := &rpcproto.Request{Arrival: 0, Finish: us(1)}
	a := &Result{Requests: []*rpcproto.Request{r}}
	acc, err := PredictionAccuracy(a, a, us(10))
	if err != nil || acc != 1 {
		t.Fatalf("acc=%v err=%v", acc, err)
	}
}

func TestThroughputAtSLO(t *testing.T) {
	pts := []LoadPoint{
		{OfferedRPS: 1e6, P99: us(5)},
		{OfferedRPS: 2e6, P99: us(8)},
		{OfferedRPS: 3e6, P99: us(40)},
	}
	if got := ThroughputAtSLO(pts, us(10)); got != 2e6 {
		t.Fatalf("t@slo = %v", got)
	}
	if got := ThroughputAtSLO(pts, us(1)); got != 0 {
		t.Fatalf("no qualifying point: %v", got)
	}
}

func TestSnapshots(t *testing.T) {
	svc := dist.Fixed{V: us(1)}
	res, err := Run(Config{Kind: SchedRSS, Cores: 4, Stack: rpcproto.StackNanoRPC,
		Steer: nic.SteerConnection, Seed: 5, SnapshotEvery: 10 * sim.Microsecond},
		Workload{Arrivals: poisson(0.8, 4, svc), Service: svc, N: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots collected")
	}
	if got := len(res.Snapshots[0].Lens); got != 4 {
		t.Fatalf("snapshot width = %d", got)
	}
}

func TestKindStringer(t *testing.T) {
	names := map[SchedulerKind]string{
		SchedRSS: "RSS", SchedIX: "IX", SchedZygOS: "ZygOS", SchedShinjuku: "Shinjuku",
		SchedRPCValet: "RPCValet", SchedNebula: "Nebula", SchedNanoPU: "nanoPU",
		SchedAltocumulus: "Altocumulus", SchedRSSPlus: "RSS++",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d = %q", k, k.String())
		}
	}
}
