package server

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func testMix(t *testing.T) *TenantMix {
	t.Helper()
	mix, err := NewTenantMix([]Tenant{
		{Name: "lc", Service: dist.Fixed{V: us(1)}, Share: 0.8, SLO: us(10), Conns: 32},
		{Name: "batch", Service: dist.Fixed{V: us(100)}, Share: 0.2, SLO: us(1000), Conns: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mix
}

func TestTenantMixValidation(t *testing.T) {
	if _, err := NewTenantMix(nil); err == nil {
		t.Fatal("empty mix should fail")
	}
	if _, err := NewTenantMix([]Tenant{{Name: "x", Share: 0}}); err == nil {
		t.Fatal("zero share should fail")
	}
	if _, err := NewTenantMix([]Tenant{{Name: "x", Share: 1}}); err == nil {
		t.Fatal("nil service should fail")
	}
}

func TestTenantMixShares(t *testing.T) {
	mix := testMix(t)
	rng := sim.NewRNG(1)
	counts := map[uint8]int{}
	for i := 0; i < 50000; i++ {
		var r rpcproto.Request
		mix.Prepare(&r, rng)
		counts[r.Tenant]++
		switch r.Tenant {
		case 0:
			if r.Service != us(1) {
				t.Fatal("tenant 0 service")
			}
		case 1:
			if r.Service != us(100) {
				t.Fatal("tenant 1 service")
			}
		default:
			t.Fatalf("unknown tenant %d", r.Tenant)
		}
	}
	frac := float64(counts[0]) / 50000
	if math.Abs(frac-0.8) > 0.01 {
		t.Fatalf("tenant 0 share = %v", frac)
	}
}

func TestTenantMixMeanService(t *testing.T) {
	mix := testMix(t)
	want := 0.8*1 + 0.2*100 // us
	if got := mix.MeanService().Microseconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("mean service = %v, want %v", got, want)
	}
}

func TestSummarizeTenants(t *testing.T) {
	mix := testMix(t)
	rate := 0.5 * 12 / mix.MeanService().Seconds()
	res, err := Run(Config{
		Kind: SchedAltocumulus, AC: core.DefaultParams(4, 3),
		Stack: rpcproto.StackNanoRPC, Steer: nic.SteerConnection, Seed: 5,
	}, Workload{Arrivals: dist.Poisson{Rate: rate}, App: mix, N: 6000, Warmup: 600})
	if err != nil {
		t.Fatal(err)
	}
	sums := SummarizeTenants(res, mix, 600)
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	if sums[0].Name != "lc" || sums[1].Name != "batch" {
		t.Fatal("names")
	}
	total := sums[0].Summary.N + sums[1].Summary.N
	if total != 6000-600 {
		t.Fatalf("per-tenant samples sum to %d", total)
	}
	// The batch tenant's latency floor is its 100us service.
	if sums[1].Summary.P50 < us(100) {
		t.Fatalf("batch p50 = %v", sums[1].Summary.P50)
	}
	if sums[0].SLO != us(10) {
		t.Fatal("per-tenant SLO lost")
	}
}
