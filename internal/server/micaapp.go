package server

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dist"
	"repro/internal/mica"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// MICAApp binds the MICA key-value store to the simulated server (§IX).
// Requests carry real keys; GET/SET/SCAN handlers execute against the
// real store when a core first runs the request, and the modelled on-CPU
// duration comes from mica.OpCost (or FixedService for the eRPC-style
// fixed-service experiments). Connection ids are set to the key's EREW
// partition so SteerDirect pins each partition to its owner manager.
type MICAApp struct {
	Store *mica.Store
	Cost  mica.OpCost

	Keys     int     // key-space size
	KeyLen   int     // bytes per key (paper: 16)
	ValLen   int     // bytes per value (paper: 512)
	GetFrac  float64 // GET fraction of the GET/SET mix (paper: 0.5)
	ScanFrac float64 // SCAN fraction of all requests (Fig. 14: 0.005)

	// FixedService, when non-zero, overrides the op cost model with a
	// constant service time (Fig. 13a's 850 ns eRPC workload).
	FixedService sim.Time

	// HotFrac sends that fraction of requests to a small hot key set
	// (HotKeys keys, default 64), modelling the key skew of real KV
	// workloads. Hot keys hash to specific partitions, skewing group
	// load — the imbalance proactive migration corrects.
	HotFrac float64
	HotKeys int

	// Zipf, when non-nil, draws key ranks from a Zipf popularity curve
	// (YCSB-style) instead of uniformly. Composes with HotFrac.
	Zipf *dist.Zipf

	// ScanExecuteCap bounds the real entries visited per SCAN so wall
	// time stays reasonable; the modelled duration still reflects the
	// full Cost.ScanEntries.
	ScanExecuteCap int

	// Phases, when non-nil, prepares every request as the default
	// 4-phase chain (parse -> index -> data -> respond) drawn from
	// Cost.Phases, instead of one opaque service time (DESIGN.md §15).
	// The per-phase durations sum exactly to the single-shot Time()
	// value, so the total work offered is unchanged.
	Phases *MICAPhases
}

// MICAPhases maps the 4-phase MICA op decomposition onto core classes.
// Zero-valued fields are neutral: every phase class 0, no speedups, no
// offload costs.
type MICAPhases struct {
	ParseClass, IndexClass, DataClass, RespondClass uint8
	// Speedup divides a phase's duration when it runs on a core of its
	// affine class (<= 0 or == 1 keeps the base duration).
	ParseSpeedup, IndexSpeedup, DataSpeedup, RespondSpeedup float64
	// Offload is the transfer cost charged when the phase is forwarded
	// to another group.
	ParseOffload, IndexOffload, DataOffload, RespondOffload sim.Time
}

// apply fills r's phase arrays from the cost breakdown.
func (p *MICAPhases) apply(r *rpcproto.Request, c mica.PhaseCost) {
	r.NumPhases = 4
	durs := [4]sim.Time{c.Parse, c.Index, c.Data, c.Respond}
	classes := [4]uint8{p.ParseClass, p.IndexClass, p.DataClass, p.RespondClass}
	speedups := [4]float64{p.ParseSpeedup, p.IndexSpeedup, p.DataSpeedup, p.RespondSpeedup}
	offloads := [4]sim.Time{p.ParseOffload, p.IndexOffload, p.DataOffload, p.RespondOffload}
	for i := 0; i < 4; i++ {
		acc := durs[i]
		if speedups[i] > 0 && speedups[i] != 1 {
			acc = sim.Time(float64(acc) / speedups[i])
		}
		r.PhaseSvc[i] = durs[i]
		r.PhaseAcc[i] = acc
		r.PhaseClass[i] = classes[i]
		r.PhaseOffload[i] = offloads[i]
	}
}

// NewMICAApp builds the app and preloads every key with an initial value.
func NewMICAApp(store *mica.Store, cost mica.OpCost, keys, keyLen, valLen int) (*MICAApp, error) {
	if keys < 1 || keyLen < 8 || valLen < 1 {
		return nil, fmt.Errorf("server: bad MICA shape keys=%d keyLen=%d valLen=%d", keys, keyLen, valLen)
	}
	a := &MICAApp{
		Store: store, Cost: cost,
		Keys: keys, KeyLen: keyLen, ValLen: valLen,
		GetFrac: 0.5, ScanExecuteCap: 256,
	}
	val := make([]byte, valLen)
	key := make([]byte, keyLen)
	for i := 0; i < keys; i++ {
		a.fillKey(key, uint64(i))
		if err := store.Set(key, val); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// fillKey writes the canonical fixed-width key for id into dst.
func (a *MICAApp) fillKey(dst []byte, id uint64) {
	for i := range dst {
		dst[i] = 'k'
	}
	binary.LittleEndian.PutUint64(dst[:8], id)
}

// Prepare implements App.
func (a *MICAApp) Prepare(r *rpcproto.Request, rng *sim.RNG) {
	keyID := uint64(rng.Intn(a.Keys))
	if a.Zipf != nil {
		keyID = uint64(a.Zipf.Rank(rng) % a.Keys)
	}
	if a.HotFrac > 0 && rng.Bernoulli(a.HotFrac) {
		hot := a.HotKeys
		if hot <= 0 {
			hot = 64
		}
		if hot > a.Keys {
			hot = a.Keys
		}
		keyID = uint64(rng.Intn(hot))
	}
	key := make([]byte, a.KeyLen)
	a.fillKey(key, keyID)
	switch {
	case a.ScanFrac > 0 && rng.Bernoulli(a.ScanFrac):
		r.Op = rpcproto.OpScan
	case rng.Bernoulli(a.GetFrac):
		r.Op = rpcproto.OpGet
	default:
		r.Op = rpcproto.OpSet
	}
	r.Payload = key
	r.Size = 16 + a.KeyLen
	if r.Op == rpcproto.OpSet {
		r.Size += a.ValLen
	}
	part := a.Store.Partition(key)
	r.Conn = uint32(part)

	if a.FixedService > 0 {
		r.Service = a.FixedService
	} else {
		r.Service = a.Cost.Time(r.Op, a.ValLen, false)
		if a.Phases != nil {
			// 4-phase chain; Cost.Phases sums exactly to Time(), so
			// Service is already the base chain total.
			a.Phases.apply(r, a.Cost.Phases(r.Op, a.ValLen, false))
		}
	}
	fill := byte(keyID)
	r.OnExecute = func(r *rpcproto.Request) {
		// Real work at execution time.
		switch r.Op {
		case rpcproto.OpGet:
			a.Store.Get(r.Payload)
		case rpcproto.OpSet:
			val := make([]byte, a.ValLen)
			for i := range val {
				val[i] = fill
			}
			// Set only fails for oversize entries, which Prepare's shape
			// validation precludes.
			_ = a.Store.Set(r.Payload, val)
		case rpcproto.OpScan:
			a.Store.Scan(part, a.ScanExecuteCap, nil)
		}
		// EREW: a migrated request executes away from the partition's
		// owner group and pays a remote access (§IX-C). OnExecute runs
		// before the core reads the phase-0 duration, so in phased mode
		// the penalty lands on the first phase consistently.
		if r.Migrated {
			r.Service += a.Cost.RemotePenalty
			if r.Phased() {
				r.PhaseSvc[0] += a.Cost.RemotePenalty
				r.PhaseAcc[0] += a.Cost.RemotePenalty
			}
		}
	}
}

// MeanService returns the analytical mean service time of the configured
// mix, for SLO derivation.
func (a *MICAApp) MeanService() sim.Time {
	if a.FixedService > 0 {
		return a.FixedService
	}
	get := a.Cost.Time(rpcproto.OpGet, a.ValLen, false)
	set := a.Cost.Time(rpcproto.OpSet, a.ValLen, false)
	scan := a.Cost.Time(rpcproto.OpScan, 0, false)
	gs := a.GetFrac*float64(get) + (1-a.GetFrac)*float64(set)
	return sim.Time((1-a.ScanFrac)*gs + a.ScanFrac*float64(scan))
}

var _ App = (*MICAApp)(nil)
