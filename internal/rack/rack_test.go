package rack

import (
	"testing"

	"repro/internal/policy"
)

func mustDispatcher(t *testing.T, cfg Config) *Dispatcher {
	t.Helper()
	d, err := NewDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestKindStringParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{RoundRobin, JSQ, PowerOfK, Affinity} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	for _, alias := range []string{"pow2", "powk", "power-of-k"} {
		if k, err := ParseKind(alias); err != nil || k != PowerOfK {
			t.Fatalf("ParseKind(%q) = %v, %v", alias, k, err)
		}
	}
	if _, err := ParseKind("spray"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Servers: 0},
		{Servers: -1, Policy: JSQ},
		{Servers: 2, Policy: Affinity + 1},
		{Servers: 2, K: -1},
		{Servers: 2, StalenessBound: -policy.Duration(1)},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted", cfg)
		}
	}
	if err := (Config{Servers: 8, Policy: PowerOfK, K: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRoundRobinCycles: RR visits every server in index order and
// consumes no randomness (rng is nil and must not be touched).
func TestRoundRobinCycles(t *testing.T) {
	const n = 4
	d := mustDispatcher(t, Config{Servers: n, Policy: RoundRobin})
	for i := 0; i < 3*n; i++ {
		dec := d.Pick(uint32(i), 0, nil)
		if dec.Server != i%n {
			t.Fatalf("pick %d → server %d, want %d", i, dec.Server, i%n)
		}
		if dec.Age != 0 || len(dec.Sampled) != 0 {
			t.Fatalf("RR consulted the view: %+v", dec)
		}
	}
}

// TestJSQPicksGlobalMin: JSQ joins the global minimum of the view,
// ties to the lowest index, and reports the full view as its sample.
func TestJSQPicksGlobalMin(t *testing.T) {
	d := mustDispatcher(t, Config{Servers: 5, Policy: JSQ})
	d.ObserveAll([]int{3, 1, 4, 1, 5}, 0)
	dec := d.Pick(9, 0, nil)
	if dec.Server != 1 {
		t.Fatalf("server = %d, want 1 (lowest-index tie)", dec.Server)
	}
	if len(dec.Sampled) != 5 || len(dec.Depths) != 5 {
		t.Fatalf("JSQ sample set: %v %v", dec.Sampled, dec.Depths)
	}
	// The local correction: server 1 now looks one deeper, so the next
	// pick goes to the other minimum.
	if dec = d.Pick(9, 0, nil); dec.Server != 3 {
		t.Fatalf("second pick = %d, want 3 (anti-herding bump)", dec.Server)
	}
}

// TestPowerOfKNeverWorse is the headline rack property: across random
// views and picks, power-of-k never dispatches to a server strictly
// worse than its own sample set allows — the chosen server is always a
// minimum of the depths it sampled, and every sample is in range and
// distinct.
func TestPowerOfKNeverWorse(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8} {
		src := NewSplitMix(uint64(1000 + k))
		depthSrc := NewSplitMix(uint64(2000 + k))
		d := mustDispatcher(t, Config{Servers: 8, Policy: PowerOfK, K: k})
		for iter := 0; iter < 2000; iter++ {
			if iter%7 == 0 {
				for s := 0; s < 8; s++ {
					d.Observe(s, depthSrc.Intn(64), policy.Duration(iter))
				}
			}
			dec := d.Pick(uint32(iter), policy.Duration(iter), src)
			want := k
			if want > 8 {
				want = 8
			}
			if len(dec.Sampled) != want || len(dec.Depths) != want {
				t.Fatalf("k=%d sample size %d", k, len(dec.Sampled))
			}
			min, chosenDepth, chosenIn := dec.Depths[0], -1, false
			seen := map[int]bool{}
			for i, s := range dec.Sampled {
				if s < 0 || s >= 8 {
					t.Fatalf("sample out of range: %d", s)
				}
				if seen[s] {
					t.Fatalf("duplicate sample %d in %v", s, dec.Sampled)
				}
				seen[s] = true
				if dec.Depths[i] < min {
					min = dec.Depths[i]
				}
				if s == dec.Server {
					chosenIn, chosenDepth = true, dec.Depths[i]
				}
			}
			if !chosenIn {
				t.Fatalf("chose server %d outside sample %v", dec.Server, dec.Sampled)
			}
			if chosenDepth != min {
				t.Fatalf("chose depth %d, sample minimum %d (sample %v depths %v)",
					chosenDepth, min, dec.Sampled, dec.Depths)
			}
		}
	}
}

// TestAffinityStableAndSpread: a connection always maps to the same
// server, and distinct connections cover the whole rack.
func TestAffinityStableAndSpread(t *testing.T) {
	d := mustDispatcher(t, Config{Servers: 8, Policy: Affinity})
	hit := make([]bool, 8)
	for conn := uint32(0); conn < 256; conn++ {
		first := d.Pick(conn, 0, nil).Server
		if again := d.Pick(conn, 0, nil).Server; again != first {
			t.Fatalf("conn %d moved: %d then %d", conn, first, again)
		}
		hit[first] = true
	}
	for s, ok := range hit {
		if !ok {
			t.Fatalf("server %d never chosen across 256 connections", s)
		}
	}
}

// TestStalenessAge: Age reports the oldest consulted observation, and
// a fresh ObserveAll resets it.
func TestStalenessAge(t *testing.T) {
	d := mustDispatcher(t, Config{Servers: 4, Policy: JSQ})
	d.ObserveAll([]int{0, 0, 0, 0}, 10*policy.Microsecond)
	d.Observe(2, 5, 40*policy.Microsecond)
	dec := d.Pick(1, 100*policy.Microsecond, nil)
	if dec.Age != 90*policy.Microsecond {
		t.Fatalf("age = %v, want 90us (oldest entry)", dec.Age)
	}
	d.ObserveAll([]int{0, 0, 0, 0}, 100*policy.Microsecond)
	if dec = d.Pick(1, 100*policy.Microsecond, nil); dec.Age != 0 {
		t.Fatalf("age after fresh sample = %v, want 0", dec.Age)
	}
}

// TestRackOfOneShortCircuit: a one-server rack consumes no randomness
// regardless of policy, so a rack-of-1 run replays the single-server
// RNG streams exactly.
func TestRackOfOneShortCircuit(t *testing.T) {
	for _, p := range []Kind{RoundRobin, JSQ, PowerOfK, Affinity} {
		d := mustDispatcher(t, Config{Servers: 1, Policy: p})
		for i := 0; i < 10; i++ {
			if dec := d.Pick(uint32(i), policy.Duration(i), nil); dec.Server != 0 {
				t.Fatalf("%v: server %d", p, dec.Server)
			}
		}
		if d.Depth(0) != 10 {
			t.Fatalf("%v: depth %d, want 10", p, d.Depth(0))
		}
	}
}

// TestDeterministicReplay: identical observe/pick sequences produce
// identical decisions — the property the sim-vs-live differential
// rests on. Observations landing between two picks commute when they
// target distinct servers, so completion-order shuffles inside a
// sampling interval cannot change any decision.
func TestDeterministicReplay(t *testing.T) {
	run := func(seed uint64, reverse bool) []int {
		d, err := NewDispatcher(Config{Servers: 6, Policy: PowerOfK, K: 3})
		if err != nil {
			t.Fatal(err)
		}
		src := NewSplitMix(seed)
		depths := NewSplitMix(seed ^ 0xabcdef)
		var picks []int
		for step := 0; step < 500; step++ {
			// A batch of per-server completions observed between picks, in
			// forward or reverse order: distinct servers, so order must not
			// matter.
			batch := [6]int{}
			for s := range batch {
				batch[s] = depths.Intn(32)
			}
			if reverse {
				for s := 5; s >= 0; s-- {
					d.Observe(s, batch[s], policy.Duration(step))
				}
			} else {
				for s := 0; s <= 5; s++ {
					d.Observe(s, batch[s], policy.Duration(step))
				}
			}
			picks = append(picks, d.Pick(uint32(step), policy.Duration(step), src).Server)
		}
		return picks
	}
	a, b := run(7, false), run(7, true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d diverged under shuffled completion order: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestPickZeroAlloc pins the dispatch hot path at zero allocations.
func TestPickZeroAlloc(t *testing.T) {
	d := mustDispatcher(t, Config{Servers: 16, Policy: PowerOfK, K: 4})
	src := NewSplitMix(3)
	var conn uint32
	if avg := testing.AllocsPerRun(200, func() {
		conn++
		d.Pick(conn, policy.Duration(conn), src)
	}); avg != 0 {
		t.Fatalf("Pick allocates %.1f times per dispatch, want 0", avg)
	}
}

func TestSplitMix(t *testing.T) {
	a, b := NewSplitMix(42), NewSplitMix(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("SplitMix not deterministic")
		}
	}
	c := NewSplitMix(42)
	for i := 0; i < 1000; i++ {
		if v := c.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	c.Intn(0)
}
