// Package rack is the inter-server tier of the two-level scheduler:
// it decides which ALTOCUMULUS server in a rack receives each arriving
// RPC, leaving intra-server scheduling to the per-server group core.
// The shape follows RackSched (PAPERS.md): the rack scheduler sees only
// sampled per-server queue depths — possibly stale — and must make a
// microsecond-cheap dispatch decision on every arrival.
//
// Like internal/policy, this package is engine-agnostic: no simulator
// types, no goroutines, no clocks. The simulator drives a Dispatcher
// from engine events with a sim RNG; the live relay drives the same
// Dispatcher under a mutex with a SplitMix source. Both get identical
// decisions for identical observation/pick sequences, which is what the
// sim-vs-live differential tests pin.
package rack

import (
	"fmt"

	"repro/internal/policy"
)

// Kind selects the inter-server dispatch policy.
type Kind uint8

const (
	// RoundRobin cycles through servers in index order, ignoring load.
	RoundRobin Kind = iota
	// JSQ joins the shortest queue over the full (sampled) depth view;
	// ties break to the lowest server index.
	JSQ
	// PowerOfK samples K distinct servers uniformly and joins the
	// shortest of the sample; ties break to the earliest-sampled.
	PowerOfK
	// Affinity hashes the connection id to a fixed server, keeping a
	// flow's requests on one server (key-affinity dispatch).
	Affinity
)

func (k Kind) String() string {
	switch k {
	case RoundRobin:
		return "rr"
	case JSQ:
		return "jsq"
	case PowerOfK:
		return "pow-k"
	case Affinity:
		return "affinity"
	default:
		return fmt.Sprintf("rack.Kind(%d)", uint8(k))
	}
}

// ParseKind maps a flag string to a Kind. "pow2" and "powk" spellings
// are accepted for PowerOfK.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "rr", "roundrobin":
		return RoundRobin, nil
	case "jsq":
		return JSQ, nil
	case "pow-k", "powk", "pow2", "power-of-k":
		return PowerOfK, nil
	case "affinity":
		return Affinity, nil
	}
	return 0, fmt.Errorf("rack: unknown policy %q (want rr|jsq|pow2|affinity)", s)
}

// Source is the randomness a Dispatcher consumes: PowerOfK sampling
// draws Intn. sim.RNG satisfies it directly; live callers use SplitMix.
// RoundRobin, JSQ, and Affinity never draw, so deterministic replay
// holds per policy regardless of the source's state.
type Source interface {
	Intn(n int) int
}

// Config parameterises a Dispatcher.
type Config struct {
	// Servers is the rack width.
	Servers int
	// Policy selects the dispatch rule.
	Policy Kind
	// K is the PowerOfK sample size; 0 defaults to 2. Clamped to
	// Servers. Ignored by the other policies.
	K int
	// StalenessBound, when nonzero, is the oldest depth observation the
	// rack contract tolerates at pick time; checkers flag decisions made
	// on a staler view. Zero means unbounded (no invariant).
	StalenessBound policy.Duration
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Servers <= 0 {
		return fmt.Errorf("rack: Servers = %d, want >= 1", c.Servers)
	}
	if c.Policy > Affinity {
		return fmt.Errorf("rack: unknown policy %d", c.Policy)
	}
	if c.K < 0 {
		return fmt.Errorf("rack: K = %d, want >= 0", c.K)
	}
	if c.StalenessBound < 0 {
		return fmt.Errorf("rack: StalenessBound = %v, want >= 0", c.StalenessBound)
	}
	return nil
}

// Decision is one dispatch outcome. Sampled and Depths describe the
// view the decision consulted: the server indices examined and each
// one's depth as seen at pick time (before the local in-flight
// correction). Both alias dispatcher scratch, valid until the next
// Pick; callers that retain them must copy. Age is the oldest
// observation among the consulted entries (zero for RoundRobin and
// Affinity, which never read the view).
type Decision struct {
	Server  int
	Age     policy.Duration
	Sampled []int
	Depths  []int
}

// Dispatcher routes arrivals to servers from a (possibly stale) depth
// view. It is pure state + arithmetic: not safe for concurrent use —
// the simulator is single-threaded and the live relay serialises calls
// under its own lock.
type Dispatcher struct {
	cfg Config
	k   int

	// depths is the dispatcher's current belief about per-server queue
	// depth: the last sampled value plus one for each local dispatch
	// since that sample (the standard anti-herding correction — without
	// it, every arrival between two samples piles onto the same "least
	// loaded" server). seenAt records when each entry was last fed by a
	// real observation.
	depths []int
	seenAt []policy.Duration

	rr      int   // next RoundRobin index
	perm    []int // PowerOfK sampling scratch: partial Fisher-Yates
	sampled []int // Decision.Sampled backing, full rack width
	view    []int // Decision.Depths backing, full rack width
}

// NewDispatcher validates cfg and builds a dispatcher with every depth
// at zero, observed at time zero.
func NewDispatcher(cfg Config) (*Dispatcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K == 0 {
		cfg.K = 2
	}
	k := cfg.K
	if k > cfg.Servers {
		k = cfg.Servers
	}
	d := &Dispatcher{
		cfg:     cfg,
		k:       k,
		depths:  make([]int, cfg.Servers),
		seenAt:  make([]policy.Duration, cfg.Servers),
		perm:    make([]int, cfg.Servers),
		sampled: make([]int, cfg.Servers),
		view:    make([]int, cfg.Servers),
	}
	for i := range d.perm {
		d.perm[i] = i
	}
	return d, nil
}

// Servers returns the rack width.
func (d *Dispatcher) Servers() int { return d.cfg.Servers }

// Observe feeds one server's sampled queue depth into the view,
// replacing the local in-flight estimate.
func (d *Dispatcher) Observe(srv, depth int, at policy.Duration) {
	d.depths[srv] = depth
	d.seenAt[srv] = at
}

// ObserveAll feeds a full depth vector sampled at one instant.
func (d *Dispatcher) ObserveAll(depths []int, at policy.Duration) {
	copy(d.depths, depths)
	for i := range d.seenAt {
		d.seenAt[i] = at
	}
}

// Depth returns the dispatcher's current view of srv's queue depth
// (sample plus local corrections).
func (d *Dispatcher) Depth(srv int) int { return d.depths[srv] }

// Pick chooses the destination server for one arrival on connection
// conn at time now. The chosen server's viewed depth is incremented to
// account for the dispatch itself; the next Observe overwrites the
// estimate with ground truth. A one-server rack short-circuits without
// consuming randomness, so rack-of-1 replays a single-server run
// stream-for-stream.
//
//altolint:hotpath
func (d *Dispatcher) Pick(conn uint32, now policy.Duration, rng Source) Decision {
	n := d.cfg.Servers
	if n == 1 {
		d.depths[0]++
		return Decision{Server: 0, Sampled: d.sampled[:0], Depths: d.view[:0]}
	}
	var dec Decision
	ns := 0 // entries of sampled/view filled this pick
	switch d.cfg.Policy {
	case RoundRobin:
		dec.Server = d.rr
		d.rr++
		if d.rr == n {
			d.rr = 0
		}
	case Affinity:
		dec.Server = affinityServer(conn, n)
	case JSQ:
		best := 0
		for i := 0; i < n; i++ {
			d.sampled[ns] = i
			d.view[ns] = d.depths[i]
			ns++
			if d.depths[i] < d.depths[best] {
				best = i
			}
			if age := now - d.seenAt[i]; age > dec.Age {
				dec.Age = age
			}
		}
		dec.Server = best
	case PowerOfK:
		// Partial Fisher-Yates over perm: the first k slots become a
		// uniform k-subset in sample order; perm stays a permutation so
		// the next Pick reuses it without a reset pass.
		best := -1
		for i := 0; i < d.k; i++ {
			j := i + rng.Intn(n-i)
			d.perm[i], d.perm[j] = d.perm[j], d.perm[i]
			s := d.perm[i]
			d.sampled[ns] = s
			d.view[ns] = d.depths[s]
			ns++
			if best < 0 || d.depths[s] < d.depths[best] {
				best = s
			}
			if age := now - d.seenAt[s]; age > dec.Age {
				dec.Age = age
			}
		}
		dec.Server = best
	}
	d.depths[dec.Server]++
	dec.Sampled = d.sampled[:ns]
	dec.Depths = d.view[:ns]
	return dec
}

// affinityServer is the stateless key-affinity map: a Fibonacci hash of
// the connection id folded onto the rack width.
func affinityServer(conn uint32, n int) int {
	return int((uint64(conn) * 0x9E3779B97F4A7C15 >> 32) % uint64(n))
}

// SplitMix is a tiny deterministic Source for engine-free callers (the
// live relay): splitmix64, the same generator sim.RNG uses for seeding.
type SplitMix struct {
	state uint64
}

// NewSplitMix seeds a SplitMix source.
func NewSplitMix(seed uint64) *SplitMix { return &SplitMix{state: seed} }

// Uint64 advances the generator.
func (s *SplitMix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). Modulo bias is irrelevant at rack
// widths; determinism is what matters.
func (s *SplitMix) Intn(n int) int {
	if n <= 0 {
		panic("rack: Intn on non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}
