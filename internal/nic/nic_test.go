package nic

import (
	"math"
	"testing"

	"repro/internal/fabric"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

func TestSteerConnectionStable(t *testing.T) {
	s := NewSteerer(SteerConnection, 8, nil)
	r := &rpcproto.Request{Conn: 1234}
	q := s.Steer(r)
	for i := 0; i < 100; i++ {
		if s.Steer(r) != q {
			t.Fatal("connection steering not stable")
		}
	}
	if q < 0 || q >= 8 {
		t.Fatalf("queue out of range: %d", q)
	}
}

func TestSteerConnectionSpreads(t *testing.T) {
	s := NewSteerer(SteerConnection, 8, nil)
	counts := make([]int, 8)
	for c := uint32(0); c < 8000; c++ {
		counts[s.Steer(&rpcproto.Request{Conn: c})]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-1000) > 200 {
			t.Fatalf("queue %d got %d of 8000", i, c)
		}
	}
}

func TestSteerRoundRobin(t *testing.T) {
	s := NewSteerer(SteerRoundRobin, 4, nil)
	for i := 0; i < 12; i++ {
		if got := s.Steer(&rpcproto.Request{}); got != i%4 {
			t.Fatalf("rr step %d = %d", i, got)
		}
	}
}

func TestSteerRandom(t *testing.T) {
	s := NewSteerer(SteerRandom, 4, sim.NewRNG(1))
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[s.Steer(&rpcproto.Request{})]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-2000) > 300 {
			t.Fatalf("queue %d got %d", i, c)
		}
	}
}

func TestSteererPanicsOnZeroQueues(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSteerer(SteerRandom, 0, nil)
}

func TestPolicyStringer(t *testing.T) {
	if SteerConnection.String() != "connection" ||
		SteerRandom.String() != "random" ||
		SteerRoundRobin.String() != "round-robin" {
		t.Fatal("stringer")
	}
}

func TestRXModelPCIeVsIntegrated(t *testing.T) {
	cost := fabric.Default()
	pcie := RXModel{Cost: cost, Attach: fabric.AttachPCIe,
		Stack: rpcproto.NewStack(rpcproto.StackERPC)}
	integ := RXModel{Cost: cost, Attach: fabric.AttachIntegrated, HWTerminated: true,
		Stack: rpcproto.NewStack(rpcproto.StackNanoRPC)}

	// PCIe path: 30ns front end + >=200ns PCIe.
	if d := pcie.Delay(300); d < 230*sim.Nanosecond {
		t.Fatalf("pcie delay = %v", d)
	}
	// Integrated path: 30ns + 30ns LLC + ~40ns hw stack ~ 100ns.
	if d := integ.Delay(300); d < 90*sim.Nanosecond || d > 120*sim.Nanosecond {
		t.Fatalf("integrated delay = %v", d)
	}
	// Software stack charges the core; hardware stack does not.
	if pcie.CoreStackCost(300) < 800*sim.Nanosecond {
		t.Fatalf("software core stack cost = %v", pcie.CoreStackCost(300))
	}
	if integ.CoreStackCost(300) != 0 {
		t.Fatal("hw-terminated stack should not charge the core")
	}
}
