// Package nic models the network interface card's receive path: the
// front-end (Ethernet MAC + serial I/O + transport interpretation, ~30 ns
// per the paper) and the steering engine that assigns arriving requests
// to receive queues — Receive Side Scaling (connection-hash), random and
// round-robin, the three policies compared in Fig. 9.
package nic

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/rpcproto"
	"repro/internal/sim"
)

// SteerPolicy selects the receive queue for an arriving request.
type SteerPolicy int

const (
	// SteerConnection hashes the connection id, RSS's policy: requests of
	// one flow always land on the same queue.
	SteerConnection SteerPolicy = iota
	// SteerRandom picks a uniformly random queue per request.
	SteerRandom
	// SteerRoundRobin cycles through queues.
	SteerRoundRobin
	// SteerDirect maps connection id modulo queue count, with no hashing.
	// Applications that own the connection-id space (e.g. MICA's EREW
	// partition-to-manager mapping) use it to pin flows to queues.
	SteerDirect
)

func (p SteerPolicy) String() string {
	switch p {
	case SteerRandom:
		return "random"
	case SteerRoundRobin:
		return "round-robin"
	case SteerDirect:
		return "direct"
	default:
		return "connection"
	}
}

// Steerer maps requests to one of n receive queues under a policy.
type Steerer struct {
	Policy SteerPolicy
	N      int
	rr     int
	rng    *sim.RNG
}

// NewSteerer returns a steering engine over n queues. rng is only used by
// SteerRandom; it may be nil for the other policies.
func NewSteerer(policy SteerPolicy, n int, rng *sim.RNG) *Steerer {
	if n <= 0 {
		panic(fmt.Sprintf("nic: steerer over %d queues", n))
	}
	return &Steerer{Policy: policy, N: n, rng: rng}
}

// Steer returns the queue index for r.
func (s *Steerer) Steer(r *rpcproto.Request) int {
	switch s.Policy {
	case SteerRandom:
		return s.rng.Intn(s.N)
	case SteerRoundRobin:
		q := s.rr
		s.rr = (s.rr + 1) % s.N
		return q
	case SteerDirect:
		return int(r.Conn) % s.N
	default:
		return int(hash32(r.Conn) % uint32(s.N))
	}
}

// hash32 is the finalizer of MurmurHash3, a good avalanche mix standing
// in for the Toeplitz hash real RSS NICs use.
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// RXModel computes the NIC-side latency an arriving request experiences
// before the scheduler sees it: front-end processing plus the transfer to
// the host (PCIe for commodity NICs, LLC-speed for integrated ones).
type RXModel struct {
	Cost   fabric.CostModel
	Attach fabric.Attach
	// HWTerminated marks NICs that run the transport/RPC stack in
	// hardware (Nebula, nanoPU, ACint): stack processing adds pipeline
	// latency here rather than occupying a core.
	HWTerminated bool
	Stack        rpcproto.StackModel
}

// Delay returns the NIC receive-path latency for a request of the given
// wire size.
func (m RXModel) Delay(size int) sim.Time {
	d := m.Cost.NICFrontEnd + m.Cost.NICTransfer(m.Attach, size)
	if m.HWTerminated {
		d += m.Stack.ProcessingTime(size)
	}
	return d
}

// CoreStackCost returns the stack processing time charged on the core for
// software stacks (zero when the NIC terminates the stack in hardware).
func (m RXModel) CoreStackCost(size int) sim.Time {
	if m.HWTerminated {
		return 0
	}
	return m.Stack.ProcessingTime(size)
}
