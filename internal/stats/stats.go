// Package stats provides the measurement machinery for the evaluation:
// latency sample recording, percentile extraction, histograms, linear
// least-squares fitting (used to calibrate the E[T̂] threshold model) and
// small summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/policy"
	"repro/internal/sim"
)

// Sample accumulates latency observations (as sim.Time) and answers
// percentile and moment queries. It keeps all samples; the experiments in
// this repository record at most a few million per run, which is cheap.
type Sample struct {
	xs     []sim.Time
	sorted bool
}

// NewSample returns an empty sample with the given capacity hint.
func NewSample(capacity int) *Sample {
	return &Sample{xs: make([]sim.Time, 0, capacity)}
}

// Add records one observation.
func (s *Sample) Add(v sim.Time) {
	s.xs = append(s.xs, v)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Reset discards all observations, retaining capacity.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = true
}

func (s *Sample) sortIfNeeded() {
	if !s.sorted {
		sort.Slice(s.xs, func(i, j int) bool { return s.xs[i] < s.xs[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using the
// nearest-rank method, which is what tail-latency SLOs are defined
// against. Returns 0 for an empty sample.
func (s *Sample) Percentile(p float64) sim.Time {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortIfNeeded()
	if p <= 0 {
		return s.xs[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.xs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.xs) {
		rank = len(s.xs)
	}
	return s.xs[rank-1]
}

// P50, P99, P999 are the percentiles the paper reports.
func (s *Sample) P50() sim.Time  { return s.Percentile(50) }
func (s *Sample) P99() sim.Time  { return s.Percentile(99) }
func (s *Sample) P999() sim.Time { return s.Percentile(99.9) }

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() sim.Time {
	if len(s.xs) == 0 {
		return 0
	}
	s.sortIfNeeded()
	return s.xs[len(s.xs)-1]
}

// Mean returns the arithmetic mean.
func (s *Sample) Mean() sim.Time {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.xs {
		sum += float64(v)
	}
	return sim.Time(sum / float64(len(s.xs)))
}

// StdDev returns the population standard deviation in picoseconds.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, v := range s.xs {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// CountAbove returns how many observations exceed the threshold. This is
// the "# SLO violations" counter.
func (s *Sample) CountAbove(thr sim.Time) int {
	s.sortIfNeeded()
	// First index with xs[i] > thr.
	i := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] > thr })
	return len(s.xs) - i
}

// FractionAbove returns the ratio of observations exceeding the threshold.
func (s *Sample) FractionAbove(thr sim.Time) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return float64(s.CountAbove(thr)) / float64(len(s.xs))
}

// Summary is a compact digest of a sample, convenient for table rows.
type Summary struct {
	N          int
	Mean       sim.Time
	P50        sim.Time
	P99        sim.Time
	P999       sim.Time
	Max        sim.Time
	Violations int     // observations above SLO
	VioRatio   float64 // Violations / N
}

// Summarize digests the sample against an SLO threshold.
func (s *Sample) Summarize(slo sim.Time) Summary {
	v := s.CountAbove(slo)
	ratio := 0.0
	if s.Len() > 0 {
		ratio = float64(v) / float64(s.Len())
	}
	return Summary{
		N: s.Len(), Mean: s.Mean(),
		P50: s.P50(), P99: s.P99(), P999: s.P999(), Max: s.Max(),
		Violations: v, VioRatio: ratio,
	}
}

func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v viol=%d (%.3f%%)",
		sm.N, sm.Mean, sm.P50, sm.P99, sm.P999, sm.Max, sm.Violations, sm.VioRatio*100)
}

// Histogram is a fixed-width bucket histogram over a [0, max) range, used
// for the queue-length-vs-violation analysis (Fig. 7).
type Histogram struct {
	Width    float64
	counts   []uint64
	overflow uint64
	total    uint64
}

// NewHistogram returns a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	return &Histogram{Width: width, counts: make([]uint64, n)}
}

// Add records value v.
func (h *Histogram) Add(v float64) {
	h.total++
	if v < 0 {
		v = 0
	}
	i := int(v / h.Width)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// Count returns the count in bucket i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Total returns the total number of observations, including overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Overflow returns the number of observations beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// LinearFit performs ordinary least squares y = slope*x + intercept.
// The implementation lives in the engine-agnostic internal/policy
// (policy.Calibrate is its other caller); this delegate keeps the
// historical stats entry point.
func LinearFit(xs, ys []float64) (slope, intercept float64, ok bool) {
	return policy.LinearFit(xs, ys)
}

// Mean returns the mean of a float slice (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
