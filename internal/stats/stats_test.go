package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func ns(v int64) sim.Time { return sim.Time(v) * sim.Nanosecond }

func TestPercentileNearestRank(t *testing.T) {
	s := NewSample(0)
	for i := int64(1); i <= 100; i++ {
		s.Add(ns(i))
	}
	if got := s.Percentile(50); got != ns(50) {
		t.Fatalf("p50 = %v", got)
	}
	if got := s.Percentile(99); got != ns(99) {
		t.Fatalf("p99 = %v", got)
	}
	if got := s.Percentile(100); got != ns(100) {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(1); got != ns(1) {
		t.Fatalf("p1 = %v", got)
	}
	if got := s.Percentile(0); got != ns(1) {
		t.Fatalf("p0 = %v", got)
	}
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	s := NewSample(0)
	if s.Percentile(99) != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	s.Add(ns(7))
	if s.Percentile(99) != ns(7) || s.P50() != ns(7) || s.Max() != ns(7) {
		t.Fatal("single-sample percentiles wrong")
	}
}

func TestAddAfterQueryKeepsCorrectness(t *testing.T) {
	s := NewSample(0)
	s.Add(ns(5))
	_ = s.P99() // forces sort
	s.Add(ns(1))
	if got := s.Percentile(1); got != ns(1) {
		t.Fatalf("min after re-add = %v", got)
	}
}

func TestCountAboveAndFraction(t *testing.T) {
	s := NewSample(0)
	for i := int64(1); i <= 10; i++ {
		s.Add(ns(i))
	}
	if got := s.CountAbove(ns(7)); got != 3 {
		t.Fatalf("CountAbove = %d", got)
	}
	if got := s.CountAbove(ns(10)); got != 0 {
		t.Fatalf("CountAbove(max) = %d", got)
	}
	if got := s.CountAbove(0); got != 10 {
		t.Fatalf("CountAbove(0) = %d", got)
	}
	if got := s.FractionAbove(ns(5)); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FractionAbove = %v", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	s := NewSample(0)
	for _, v := range []int64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(ns(v))
	}
	if got := s.Mean(); got != ns(5) {
		t.Fatalf("mean = %v", got)
	}
	want := 2 * float64(sim.Nanosecond)
	if got := s.StdDev(); math.Abs(got-want) > 1 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := NewSample(0)
	for i := int64(1); i <= 1000; i++ {
		s.Add(ns(i))
	}
	sm := s.Summarize(ns(990))
	if sm.N != 1000 || sm.Violations != 10 {
		t.Fatalf("summary: %+v", sm)
	}
	if math.Abs(sm.VioRatio-0.01) > 1e-12 {
		t.Fatalf("vio ratio = %v", sm.VioRatio)
	}
	if sm.P99 != ns(990) {
		t.Fatalf("p99 = %v", sm.P99)
	}
	if sm.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestReset(t *testing.T) {
	s := NewSample(4)
	s.Add(ns(1))
	s.Reset()
	if s.Len() != 0 || s.Percentile(99) != 0 {
		t.Fatal("reset did not clear sample")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	// Property: percentiles are nondecreasing in p.
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(len(raw))
		for _, v := range raw {
			s.Add(sim.Time(v))
		}
		prev := sim.Time(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for i := 0; i < 100; i++ {
		h.Add(float64(i)) // 0..99, buckets of width 5, 10 buckets -> 0..49 inside
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Overflow() != 50 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	for i := 0; i < 10; i++ {
		if h.Count(i) != 5 {
			t.Fatalf("bucket %d = %d", i, h.Count(i))
		}
	}
	h.Add(-3) // clamps to bucket 0
	if h.Count(0) != 6 {
		t.Fatalf("negative clamp failed: %d", h.Count(0))
	}
	if h.Buckets() != 10 {
		t.Fatalf("buckets = %d", h.Buckets())
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	slope, intercept, ok := LinearFit(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-7) > 1e-9 {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, ok := LinearFit([]float64{1}, []float64{2}); ok {
		t.Fatal("single point should not fit")
	}
	if _, _, ok := LinearFit([]float64{1, 2}, []float64{2}); ok {
		t.Fatal("mismatched lengths should not fit")
	}
	if _, _, ok := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); ok {
		t.Fatal("vertical line should not fit")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := sim.NewRNG(3)
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := r.Float64() * 100
		xs = append(xs, x)
		ys = append(ys, 2.5*x+10+r.Norm(0, 1))
	}
	slope, intercept, ok := LinearFit(xs, ys)
	if !ok || math.Abs(slope-2.5) > 0.05 || math.Abs(intercept-10) > 1 {
		t.Fatalf("noisy fit = %v, %v (ok=%v)", slope, intercept, ok)
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}
