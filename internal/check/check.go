// Package check is the simulator's online invariant engine: a
// sched.Probe that shadows every queue mutation and core transition a
// scheduler performs and verifies, while the run executes, the
// conservation laws the paper's results rest on —
//
//   - conservation: every delivered request completes exactly once, and
//     at drain no request is left queued, in transit, or running;
//   - FIFO order: per-queue service order matches arrival order (head
//     pops return the oldest resident, tail pops the newest);
//   - queue accounting: the lengths a scheduler reports (OnEnqueue
//     qlen, QueueLens) always match the shadow copy;
//   - bounded queues: JBSQ's bound and ALTOCUMULUS's WorkerDepth are
//     never exceeded (OnOutstanding);
//   - migrate-at-most-once (§VI): a request lands at a destination
//     NetRX at most once unless remigration is explicitly enabled;
//   - migration guard (Algorithm 1 line 8): every MIGRATE batch
//     satisfied q[src]-S >= q[dst]+S when the guard was enabled;
//   - work conservation: per-core queues never hold work while their
//     core idles at a checkpoint; for work-stealing schedulers, no core
//     idles while any queue holds work.
//
// The checker is passive: it draws no randomness and mutates no
// simulation state, so a run behaves identically with it attached or
// not. Violations carry the offending request id, sim time, and a
// queue-length snapshot. The companion differential mode
// (differential.go) validates d-FCFS/c-FCFS latency distributions
// against closed-form M/M/1 and Erlang-C predictions.
package check

import (
	"fmt"
	"strings"

	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
)

// enabled is the process-wide opt-out consulted by harnesses that
// attach checkers by default (server.Run). It is written once at
// startup (the altobench -check flag) before any run begins, never
// concurrently with runs.
var enabled = true

// SetEnabled flips the process-wide default. Call it only before runs
// start (flag parsing); per-run opt-out is Config.NoCheck.
func SetEnabled(on bool) { enabled = on }

// Enabled reports the process-wide default.
func Enabled() bool { return enabled }

// QueueSpec describes one scheduler queue to the checker.
type QueueSpec struct {
	// ID is the probe queue id (see sched.Probe's id conventions).
	ID int
	// Core is the id of the core that exclusively drains this queue, or
	// -1 for queues with no owning core (central queues, NetRX). At
	// every checkpoint a non-empty owned queue with an idle owner is a
	// work-conservation violation.
	Core int
	// Lens is this queue's index in Scheduler.QueueLens(), or -1 when
	// the snapshot does not expose it. Exposed queues are cross-checked
	// against the shadow length at every checkpoint.
	Lens int
}

// Options configures a Checker.
type Options struct {
	// Expected is the number of requests the run will deliver; Finalize
	// fails conservation if deliveries differ. 0 disables the check.
	Expected int
	// AllowRemigration disables the migrate-at-most-once invariant
	// (the paper's remigration ablation).
	AllowRemigration bool
	// WorkConserving additionally asserts, at every checkpoint, that no
	// owned core idles while ANY queue holds work (work stealing).
	WorkConserving bool
	// Every is the checkpoint period; default 20µs of simulated time.
	Every sim.Time
	// MaxViolations caps retained Violation records (default 16);
	// further violations are only counted.
	MaxViolations int
}

// Violation is one invariant failure, with enough context to debug it.
type Violation struct {
	Invariant string   // which law broke (e.g. "fifo-order", "migrate-guard")
	At        sim.Time // sim time of detection
	ReqID     uint64   // offending request, or NoRequest
	Queue     int      // offending queue id, or -1
	Detail    string
	Lens      []int // scheduler-reported queue lengths at detection
}

// NoRequest marks a violation not tied to a single request.
const NoRequest = ^uint64(0)

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] t=%v", v.Invariant, v.At)
	if v.ReqID != NoRequest {
		fmt.Fprintf(&b, " req=%d", v.ReqID)
	}
	if v.Queue >= 0 {
		fmt.Fprintf(&b, " queue=%d", v.Queue)
	}
	fmt.Fprintf(&b, ": %s", v.Detail)
	if v.Lens != nil {
		fmt.Fprintf(&b, " (qlens=%v)", v.Lens)
	}
	return b.String()
}

// Report is the outcome of one checked run.
type Report struct {
	Checks      uint64 // individual invariant evaluations
	Checkpoints uint64 // periodic sweeps performed
	Delivered   uint64
	Completed   uint64
	Batches     uint64 // MIGRATE batches observed
	Violations  []Violation
	Dropped     int // violations beyond the retention cap
}

// Total returns the number of violations, retained or not.
func (rep *Report) Total() int { return len(rep.Violations) + rep.Dropped }

// Err returns nil when the run was clean, else an error summarising the
// first violation.
func (rep *Report) Err() error {
	if rep == nil || rep.Total() == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s), first: %s",
		rep.Total(), rep.Violations[0])
}

// Request lifecycle states. A request may cycle Queued -> InTransit
// (dequeue, preempt, migration pop) -> Queued any number of times
// before completing.
const (
	stateNew      uint8 = iota // not yet delivered
	stateQueued                // resident in a shadow queue
	stateTransit               // popped but not yet running or re-queued
	stateRunning               // executing on a core
	stateDone                  // completed (OnComplete fired)
	stateFinished              // Done callback consumed
)

var stateNames = [...]string{"new", "queued", "in-transit", "running", "done", "finished"}

// shadowQ mirrors one scheduler queue as request ids.
type shadowQ struct {
	buf  []uint64
	head int
}

func (q *shadowQ) len() int       { return len(q.buf) - q.head }
func (q *shadowQ) push(id uint64) { q.buf = append(q.buf, id) }
func (q *shadowQ) popHead() (uint64, bool) {
	if q.len() == 0 {
		return 0, false
	}
	id := q.buf[q.head]
	q.head++
	if q.head > 64 && q.head*2 >= len(q.buf) {
		q.buf = append(q.buf[:0], q.buf[q.head:]...)
		q.head = 0
	}
	return id, true
}
func (q *shadowQ) popTail() (uint64, bool) {
	if q.len() == 0 {
		return 0, false
	}
	id := q.buf[len(q.buf)-1]
	q.buf = q.buf[:len(q.buf)-1]
	return id, true
}

// Checker implements sched.Probe over one run. Zero-value is unusable;
// construct with New and wire with WrapDone + Attach.
type Checker struct {
	opt         Options
	eng         *sim.Engine
	lens        func(buf []int) []int
	lensScratch []int // reused across checkpoints (violations copy fresh)
	specs       []QueueSpec

	queues   []*shadowQ // indexed by queue id; nil = undeclared
	coreBusy []bool     // indexed by core id
	state    []uint8    // indexed by request id
	migrated []int32    // indexed by request id: RequeueMigrate landings
	migPhase []uint8    // indexed by request id: phase the migrate count belongs to
	phase    []uint8    // indexed by request id: last phase seen at a forwarded boundary

	queued    int // requests across all shadow queues
	running   int // requests executing
	delivered uint64
	completed uint64

	checks      uint64
	checkpoints uint64
	batches     uint64
	violations  []Violation
	dropped     int
	finalized   bool
}

// New builds a checker.
func New(opt Options) *Checker {
	if opt.Every <= 0 {
		opt.Every = 20 * sim.Microsecond
	}
	if opt.MaxViolations <= 0 {
		opt.MaxViolations = 16
	}
	c := &Checker{opt: opt}
	if opt.Expected > 0 {
		c.state = make([]uint8, opt.Expected)
		c.migrated = make([]int32, opt.Expected)
		c.migPhase = make([]uint8, opt.Expected)
		c.phase = make([]uint8, opt.Expected)
	}
	return c
}

// Attach binds the checker to a run: the engine (for timestamps and the
// periodic checkpoint), the scheduler's queue topology, and its
// QueueLensInto snapshot for cross-checking (the checker owns the
// scratch buffer, so periodic checkpoints allocate nothing). Call once,
// before the first delivery. The checkpoint cadence stops by itself once
// the expected request count has completed, so event queues can drain.
func (c *Checker) Attach(eng *sim.Engine, specs []QueueSpec, lens func(buf []int) []int) {
	c.eng = eng
	c.specs = specs
	c.lens = lens
	for _, sp := range specs {
		if sp.ID < 0 {
			panic(fmt.Sprintf("check: negative queue spec id %d", sp.ID))
		}
		for len(c.queues) <= sp.ID {
			c.queues = append(c.queues, nil)
		}
		if c.queues[sp.ID] != nil {
			panic(fmt.Sprintf("check: duplicate queue spec id %d", sp.ID))
		}
		c.queues[sp.ID] = &shadowQ{}
		if sp.Core >= 0 {
			c.ensureCore(sp.Core)
		}
	}
	eng.Every(c.opt.Every, c.checkpoint)
}

// WrapDone interposes completion checking on a Done callback. Wire the
// wrapped callback into the scheduler so the checker observes every
// completion even when probe hooks are disabled.
func (c *Checker) WrapDone(done sched.Done) sched.Done {
	return func(r *rpcproto.Request) {
		c.onDone(r)
		if done != nil {
			done(r)
		}
	}
}

// now is the violation timestamp; 0 before Attach.
func (c *Checker) now() sim.Time {
	if c.eng == nil {
		return 0
	}
	return c.eng.Now()
}

// record captures a violation, keeping at most MaxViolations.
func (c *Checker) record(invariant string, reqID uint64, queue int, detail string) {
	if len(c.violations) >= c.opt.MaxViolations {
		c.dropped++
		return
	}
	var lens []int
	if c.lens != nil {
		lens = c.lens(nil) // fresh: the Violation retains the snapshot
	}
	c.violations = append(c.violations, Violation{
		Invariant: invariant,
		At:        c.now(),
		ReqID:     reqID,
		Queue:     queue,
		Detail:    detail,
		Lens:      lens,
	})
}

// stateOf returns the lifecycle state of a request id.
func (c *Checker) stateOf(id uint64) uint8 {
	if id < uint64(len(c.state)) {
		return c.state[id]
	}
	return stateNew
}

// setState transitions a request, growing the slab for ids beyond the
// expected count (harnesses with unknown N).
func (c *Checker) setState(id uint64, st uint8) {
	for uint64(len(c.state)) <= id {
		c.state = append(c.state, stateNew)
	}
	c.state[id] = st
}

// expectState verifies a lifecycle transition precondition.
func (c *Checker) expectState(r *rpcproto.Request, q int, want uint8, during string) bool {
	c.checks++
	if st := c.stateOf(r.ID); st != want {
		c.record("state-machine", r.ID, q, fmt.Sprintf(
			"%s while %s (want %s)", during, stateNames[st], stateNames[want]))
		return false
	}
	return true
}

// queue resolves a probe queue id; unknown ids are themselves a
// violation (the harness's queue topology is out of sync).
func (c *Checker) queue(id int) *shadowQ {
	if id >= 0 && id < len(c.queues) && c.queues[id] != nil {
		return c.queues[id]
	}
	c.record("queue-topology", NoRequest, id, "probe event on undeclared queue")
	q := &shadowQ{}
	for len(c.queues) <= id {
		c.queues = append(c.queues, nil)
	}
	c.queues[id] = q
	return q
}

// ensureCore grows the busy slab to cover a core id.
func (c *Checker) ensureCore(core int) {
	for len(c.coreBusy) <= core {
		c.coreBusy = append(c.coreBusy, false)
	}
}

// enqueue is the shared push path of OnEnqueue and OnRequeue.
func (c *Checker) enqueue(r *rpcproto.Request, qid, qlen int, during string) {
	q := c.queue(qid)
	c.checks++
	if q.len() != qlen {
		c.record("queue-accounting", r.ID, qid, fmt.Sprintf(
			"%s reported qlen %d, shadow has %d", during, qlen, q.len()))
	}
	q.push(r.ID)
	c.setState(r.ID, stateQueued)
	c.queued++
}

// OnEnqueue implements sched.Observer: first delivery of r to queue q.
func (c *Checker) OnEnqueue(r *rpcproto.Request, qid, qlen int) {
	c.delivered++
	c.expectState(r, qid, stateNew, "delivered")
	c.enqueue(r, qid, qlen, "OnEnqueue")
}

// requeueDuring pre-renders the expectState context per cause: the probe
// fires on every transfer landing, so building the string with
// concatenation here would be one allocation per queue mutation.
var requeueDuring = [...]string{
	sched.RequeueTransfer: "requeued (transfer)",
	sched.RequeuePreempt:  "requeued (preempt)",
	sched.RequeueMigrate:  "requeued (migrate)",
	sched.RequeueNack:     "requeued (nack)",
	sched.RequeueForward:  "requeued (forward)",
}

// OnRequeue implements sched.Probe.
//
//altolint:hotpath
func (c *Checker) OnRequeue(r *rpcproto.Request, qid int, cause sched.RequeueCause, qlen int) {
	during := "requeued (transfer)"
	if int(cause) >= 0 && int(cause) < len(requeueDuring) {
		during = requeueDuring[cause]
	}
	c.expectState(r, qid, stateTransit, during)
	if cause == sched.RequeueMigrate {
		for uint64(len(c.migrated)) <= r.ID {
			c.migrated = append(c.migrated, 0) //altolint:allow hotalloc migrated slab is preallocated to Expected; growth only on ID overflow
		}
		for uint64(len(c.migPhase)) <= r.ID {
			c.migPhase = append(c.migPhase, 0) //altolint:allow hotalloc migPhase slab is preallocated to Expected; growth only on ID overflow
		}
		// Migrate-once is scoped per phase (DESIGN.md §15): the count
		// resets when the request's phase has advanced since its last
		// migration. Unphased requests stay at phase 0, so the count
		// never resets and the classic §VI invariant holds verbatim.
		if c.migPhase[r.ID] != r.Phase {
			c.migPhase[r.ID] = r.Phase
			c.migrated[r.ID] = 0
		}
		c.migrated[r.ID]++
		c.checks++
		if n := c.migrated[r.ID]; n > 1 && !c.opt.AllowRemigration {
			c.record("migrate-once", r.ID, qid, fmt.Sprintf(
				"request landed at a migration destination %d times (§VI allows one)", n))
		}
	}
	c.enqueue(r, qid, qlen, "OnRequeue")
}

// OnPhaseDone implements sched.PhaseProbe: core finished a non-final
// phase of r and the scheduler took the request off it to forward the
// next phase (r.Phase has already advanced). Back-to-back local
// continuations emit no event, so observed boundaries need only be
// strictly increasing in phase, not consecutive.
//
//altolint:hotpath
func (c *Checker) OnPhaseDone(r *rpcproto.Request, core int) {
	if c.expectState(r, -1, stateRunning, "phase-forwarded") {
		c.running--
	}
	c.ensureCore(core)
	c.checks++
	if !c.coreBusy[core] {
		c.record("double-dispatch", r.ID, -1, fmt.Sprintf(
			"core %d finished a phase of request %d while marked idle", core, r.ID))
	}
	c.coreBusy[core] = false
	c.setState(r.ID, stateTransit)
	c.checks++
	if !r.Phased() || r.Phase == 0 || r.Phase >= r.NumPhases {
		c.record("phase-order", r.ID, -1, fmt.Sprintf(
			"phase boundary at phase %d of a %d-phase request", r.Phase, r.NumPhases))
		return
	}
	for uint64(len(c.phase)) <= r.ID {
		c.phase = append(c.phase, 0) //altolint:allow hotalloc phase slab is preallocated to Expected; growth only on ID overflow
	}
	c.checks++
	if last := c.phase[r.ID]; r.Phase <= last {
		c.record("phase-order", r.ID, -1, fmt.Sprintf(
			"phase boundary at phase %d after a boundary at phase %d", r.Phase, last))
	}
	c.phase[r.ID] = r.Phase
}

// OnDequeue implements sched.Probe.
func (c *Checker) OnDequeue(r *rpcproto.Request, qid int, fromTail bool) {
	c.expectState(r, qid, stateQueued, "dequeued")
	q := c.queue(qid)
	var got uint64
	var ok bool
	if fromTail {
		got, ok = q.popTail()
	} else {
		got, ok = q.popHead()
	}
	c.checks++
	switch {
	case !ok:
		c.record("queue-accounting", r.ID, qid, "dequeue from empty shadow queue")
	case got != r.ID:
		end := "head"
		if fromTail {
			end = "tail"
		}
		c.record("fifo-order", r.ID, qid, fmt.Sprintf(
			"%s pop returned request %d, shadow %s is %d", end, r.ID, end, got))
	default:
		c.queued--
	}
	c.setState(r.ID, stateTransit)
}

// OnRun implements sched.Probe.
func (c *Checker) OnRun(r *rpcproto.Request, core int) {
	c.expectState(r, -1, stateTransit, "started")
	c.ensureCore(core)
	c.checks++
	if c.coreBusy[core] {
		c.record("double-dispatch", r.ID, -1, fmt.Sprintf(
			"core %d started request %d while already running", core, r.ID))
	}
	c.coreBusy[core] = true
	c.setState(r.ID, stateRunning)
	c.running++
}

// OnComplete implements sched.Probe.
func (c *Checker) OnComplete(r *rpcproto.Request, core int) {
	if c.expectState(r, -1, stateRunning, "completed") {
		c.running--
	}
	c.ensureCore(core)
	c.checks++
	if !c.coreBusy[core] {
		c.record("double-dispatch", r.ID, -1, fmt.Sprintf(
			"core %d completed request %d while marked idle", core, r.ID))
	}
	c.coreBusy[core] = false
	c.setState(r.ID, stateDone)
}

// OnPreempt implements sched.Probe.
func (c *Checker) OnPreempt(r *rpcproto.Request, core int) {
	if c.expectState(r, -1, stateRunning, "preempted") {
		c.running--
	}
	c.ensureCore(core)
	c.coreBusy[core] = false
	c.setState(r.ID, stateTransit)
	c.checks++
	if r.Remaining <= 0 {
		c.record("state-machine", r.ID, -1, "preempted with no remaining work")
	}
}

// OnSteal implements sched.Probe.
func (c *Checker) OnSteal(r *rpcproto.Request, thief, victim int) {
	c.checks++
	if thief == victim {
		c.record("state-machine", r.ID, victim, "steal from own queue")
	}
}

// OnOutstanding implements sched.Probe: the bounded-queue law.
func (c *Checker) OnOutstanding(r *rpcproto.Request, core, n, bound int) {
	c.checks++
	if n > bound {
		c.record("bound-exceeded", r.ID, -1, fmt.Sprintf(
			"core %d outstanding %d exceeds bound %d", core, n, bound))
	}
}

// OnMigrate implements sched.Probe: Algorithm 1 line 8.
func (c *Checker) OnMigrate(src, dst, srcLen, dstView, batch int, guarded bool) {
	c.batches++
	c.checks++
	if guarded && srcLen-batch < dstView+batch {
		c.record("migrate-guard", NoRequest, src, fmt.Sprintf(
			"MIGRATE src=%d(len %d) dst=%d(view %d) batch %d violates q[src]-S >= q[dst]+S",
			src, srcLen, dst, dstView, batch))
	}
	if src >= 0 && src < len(c.queues) && c.queues[src] != nil {
		q := c.queues[src]
		c.checks++
		if q.len() != srcLen {
			c.record("queue-accounting", NoRequest, src, fmt.Sprintf(
				"MIGRATE decision saw qlen %d, shadow has %d", srcLen, q.len()))
		}
	}
}

// onDone runs inside the wrapped Done callback.
func (c *Checker) onDone(r *rpcproto.Request) {
	c.completed++
	c.checks++
	if st := c.stateOf(r.ID); st == stateFinished {
		c.record("conservation", r.ID, -1, "request completed twice")
	}
	c.setState(r.ID, stateFinished)
	c.checks++
	if r.Finish == 0 {
		c.record("conservation", r.ID, -1, "Done with zero finish time")
	} else if !r.Phased() {
		if r.Finish < r.Arrival+r.Service {
			c.record("conservation", r.ID, -1, fmt.Sprintf(
				"finish %v precedes arrival %v + service %v", r.Finish, r.Arrival, r.Service))
		}
	} else {
		// Per-phase conservation: with accelerator speedups the chain
		// can finish faster than the base Service sum, but never faster
		// than the sum of each phase's best-case duration.
		if min := r.MinService(); r.Finish < r.Arrival+min {
			c.record("conservation", r.ID, -1, fmt.Sprintf(
				"finish %v precedes arrival %v + minimum chain service %v", r.Finish, r.Arrival, min))
		}
		// Phase order at completion: every phase ended, timestamps
		// nondecreasing from arrival, the last one at Finish, and the
		// request parked on its final phase.
		c.checks++
		ok := r.Phase == r.NumPhases-1 && r.PhaseEnd[r.NumPhases-1] == r.Finish
		prev := r.Arrival
		for i := 0; ok && i < int(r.NumPhases); i++ {
			if r.PhaseEnd[i] < prev {
				ok = false
			}
			prev = r.PhaseEnd[i]
		}
		if !ok {
			c.record("phase-order", r.ID, -1, fmt.Sprintf(
				"completed on phase %d/%d with phase ends %v (arrival %v, finish %v)",
				r.Phase, r.NumPhases, r.PhaseEnd[:r.NumPhases], r.Arrival, r.Finish))
		}
	}
}

// done reports whether the run has delivered and completed everything
// the harness promised.
func (c *Checker) done() bool {
	return c.opt.Expected > 0 &&
		c.delivered >= uint64(c.opt.Expected) &&
		c.completed >= uint64(c.opt.Expected)
}

// checkpoint is the periodic sweep; returning false stops the cadence.
func (c *Checker) checkpoint() bool {
	if c.finalized || c.done() {
		return false
	}
	c.checkpoints++
	var lens []int
	if c.lens != nil {
		lens = c.lens(c.lensScratch)
		c.lensScratch = lens
	}
	anyQueued := c.queued > 0
	for _, sp := range c.specs {
		q := c.queues[sp.ID]
		if sp.Lens >= 0 && sp.Lens < len(lens) {
			c.checks++
			if lens[sp.Lens] != q.len() {
				c.record("queue-accounting", NoRequest, sp.ID, fmt.Sprintf(
					"QueueLens[%d] = %d, shadow has %d", sp.Lens, lens[sp.Lens], q.len()))
			}
		}
		if sp.Core >= 0 {
			c.checks++
			idle := !c.coreBusy[sp.Core]
			if idle && q.len() > 0 {
				c.record("work-conservation", NoRequest, sp.ID, fmt.Sprintf(
					"core %d idle with %d request(s) in its queue", sp.Core, q.len()))
			}
			if c.opt.WorkConserving && idle && anyQueued {
				c.record("work-conservation", NoRequest, sp.ID, fmt.Sprintf(
					"core %d idle while %d request(s) queued somewhere (stealing enabled)",
					sp.Core, c.queued))
			}
		}
	}
	return true
}

// Finalize closes the run: the drain-time conservation identity
// (arrivals = completions, nothing queued, in transit, or running) and
// the report. Call after the run loop ends; the checker is inert
// afterwards.
func (c *Checker) Finalize() *Report {
	first := !c.finalized
	if first {
		c.finalized = true
		c.checks++
		if c.opt.Expected > 0 && c.delivered != uint64(c.opt.Expected) {
			c.record("conservation", NoRequest, -1, fmt.Sprintf(
				"delivered %d of %d expected requests", c.delivered, c.opt.Expected))
		}
		c.checks++
		if c.completed != c.delivered {
			c.record("conservation", NoRequest, -1, fmt.Sprintf(
				"delivered %d but completed %d (in-flight at drain: %d queued, %d running)",
				c.delivered, c.completed, c.queued, c.running))
		}
		c.checks++
		if c.queued != 0 || c.running != 0 {
			for _, sp := range c.specs {
				if q := c.queues[sp.ID]; q.len() > 0 {
					c.record("conservation", NoRequest, sp.ID, fmt.Sprintf(
						"%d request(s) still queued at drain", q.len()))
				}
			}
			if c.running != 0 {
				c.record("conservation", NoRequest, -1, fmt.Sprintf(
					"%d request(s) still running at drain", c.running))
			}
		}
	}
	rep := &Report{
		Checks:      c.checks,
		Checkpoints: c.checkpoints,
		Delivered:   c.delivered,
		Completed:   c.completed,
		Batches:     c.batches,
		Violations:  c.violations,
		Dropped:     c.dropped,
	}
	if first {
		recordRun(rep)
	}
	return rep
}

var _ sched.Probe = (*Checker)(nil)
var _ sched.PhaseProbe = (*Checker)(nil)
