package check

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func rackViolations(rep *Report) map[string]int {
	out := map[string]int{}
	for _, v := range rep.Violations {
		out[v.Invariant]++
	}
	return out
}

func TestRackCheckerCleanRun(t *testing.T) {
	rc := NewRackChecker(RackOptions{Servers: 3, Expected: 6, StalenessBound: 50 * sim.Microsecond})
	order := []int{0, 1, 2, 2, 1, 0}
	for id, srv := range order {
		rc.OnDispatch(uint64(id), srv, sim.Time(id)*sim.Microsecond, sim.Time(id)*sim.Millisecond)
	}
	// Completions land out of dispatch order — irrelevant to the rack laws.
	for _, id := range []int{3, 0, 5, 1, 4, 2} {
		rc.OnComplete(uint64(id), order[id], 10*sim.Millisecond)
	}
	rep := rc.Finalize(11 * sim.Millisecond)
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 6 || rep.Completed != 6 {
		t.Fatalf("counts: %+v", rep)
	}
	if rc.MaxSampleAge() != 5*sim.Microsecond {
		t.Fatalf("max age = %v", rc.MaxSampleAge())
	}
	disp, comp := rc.PerServer()
	for s := 0; s < 3; s++ {
		if disp[s] != 2 || comp[s] != 2 {
			t.Fatalf("server %d: %d/%d", s, disp[s], comp[s])
		}
	}
}

func TestRackCheckerDispatchOnce(t *testing.T) {
	rc := NewRackChecker(RackOptions{Servers: 2})
	rc.OnDispatch(1, 0, 0, 0)
	rc.OnDispatch(1, 1, 0, 0)
	rc.OnComplete(1, 0, 0)
	rep := rc.Finalize(0)
	if got := rackViolations(rep); got["rack-dispatch-once"] != 1 {
		t.Fatalf("violations: %v", got)
	}
}

func TestRackCheckerCompleteOnceAndAffinity(t *testing.T) {
	rc := NewRackChecker(RackOptions{Servers: 2})
	rc.OnDispatch(0, 1, 0, 0)
	rc.OnComplete(0, 1, 0)
	rc.OnComplete(0, 1, 0) // double completion
	rc.OnDispatch(1, 0, 0, 0)
	rc.OnComplete(1, 1, 0) // wrong server
	rc.OnComplete(2, 0, 0) // never dispatched
	rep := rc.Finalize(0)
	got := rackViolations(rep)
	if got["rack-complete-once"] != 1 || got["rack-affinity"] != 1 {
		t.Fatalf("violations: %v", got)
	}
	// The never-dispatched completion plus the two servers' imbalance
	// all surface as rack-conservation.
	if got["rack-conservation"] == 0 {
		t.Fatalf("violations: %v", got)
	}
}

func TestRackCheckerStaleness(t *testing.T) {
	rc := NewRackChecker(RackOptions{Servers: 2, StalenessBound: 10 * sim.Microsecond})
	rc.OnDispatch(0, 0, 10*sim.Microsecond, 0) // exactly at the bound: fine
	rc.OnDispatch(1, 1, 11*sim.Microsecond, 0) // past it: violation
	rc.OnComplete(0, 0, 0)
	rc.OnComplete(1, 1, 0)
	rep := rc.Finalize(0)
	got := rackViolations(rep)
	if got["rack-staleness"] != 1 {
		t.Fatalf("violations: %v", got)
	}
	if rc.MaxSampleAge() != 11*sim.Microsecond {
		t.Fatalf("max age = %v", rc.MaxSampleAge())
	}
	// Unbounded config never fires the invariant.
	free := NewRackChecker(RackOptions{Servers: 1})
	free.OnDispatch(0, 0, sim.Second, 0)
	free.OnComplete(0, 0, 0)
	if err := free.Finalize(0).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRackCheckerExpectedMismatchAndRange(t *testing.T) {
	rc := NewRackChecker(RackOptions{Servers: 2, Expected: 3})
	rc.OnDispatch(0, 0, 0, 0)
	rc.OnDispatch(1, 5, 0, 0) // out of range: not counted as a dispatch
	rc.OnComplete(0, 0, 0)
	rep := rc.Finalize(0)
	got := rackViolations(rep)
	if got["rack-range"] != 1 || got["rack-conservation"] == 0 {
		t.Fatalf("violations: %v", got)
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "violation") {
		t.Fatalf("err = %v", err)
	}
}

func TestRackCheckerViolationCap(t *testing.T) {
	rc := NewRackChecker(RackOptions{Servers: 1, MaxViolations: 2})
	for id := uint64(0); id < 5; id++ {
		rc.OnComplete(id, 0, 0) // five undispatched completions
	}
	rep := rc.Finalize(0)
	if len(rep.Violations) != 2 || rep.Dropped < 3 {
		t.Fatalf("retained %d dropped %d", len(rep.Violations), rep.Dropped)
	}
	if rep.Total() != len(rep.Violations)+rep.Dropped {
		t.Fatalf("total = %d", rep.Total())
	}
}
