package check

import "testing"

// TestDifferentialGrid runs the CI differential grid under three seeds:
// every simulated statistic must sit inside its batch-means confidence
// interval of the closed-form M/M/k value, and every run must be
// invariant-clean.
func TestDifferentialGrid(t *testing.T) {
	for _, seed := range []uint64{1, 42, 1234} {
		for _, c := range DefaultDiffCases(true) {
			res, err := RunDiff(c, seed)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.Name, err)
			}
			if err := res.Err(); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestDiffCaseValidation(t *testing.T) {
	bad := []DiffCase{
		{Name: "k0", K: 0, Rho: 0.5, MeanSvc: 1000, N: 10, Warmup: 1},
		{Name: "rho1", K: 1, Rho: 1.0, MeanSvc: 1000, N: 10, Warmup: 1},
		{Name: "warm", K: 1, Rho: 0.5, MeanSvc: 1000, N: 10, Warmup: 10},
	}
	for _, c := range bad {
		if _, err := RunDiff(c, 1); err == nil {
			t.Errorf("%s: bad case accepted", c.Name)
		}
	}
}
