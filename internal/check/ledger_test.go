package check

import (
	"fmt"
	"strings"
	"testing"
)

// findViolation returns the first retained violation for an invariant,
// or nil.
func findViolation(rep *Report, invariant string) *Violation {
	for i := range rep.Violations {
		if rep.Violations[i].Invariant == invariant {
			return &rep.Violations[i]
		}
	}
	return nil
}

func TestLedgerCleanRun(t *testing.T) {
	l := NewLedger(8, false)
	for id := uint64(0); id < 8; id++ {
		l.Delivered(id)
	}
	l.MigrateLanded(3) // one hop is legal
	for id := uint64(0); id < 8; id++ {
		l.Completed(id)
	}

	d, c, m := l.Counts()
	if d != 8 || c != 8 || m != 1 {
		t.Fatalf("Counts() = %d/%d/%d, want 8/8/1", d, c, m)
	}
	rep := l.Verify()
	if err := rep.Err(); err != nil {
		t.Fatalf("clean run reported violation: %v", err)
	}
	if rep.Delivered != 8 || rep.Completed != 8 {
		t.Fatalf("report counts %d/%d, want 8/8", rep.Delivered, rep.Completed)
	}
	if rep.Checks == 0 {
		t.Fatal("report claims zero checks for a run that performed 17+")
	}
}

func TestLedgerDuplicateDelivery(t *testing.T) {
	l := NewLedger(4, false)
	l.Delivered(2)
	l.Delivered(2)
	l.Completed(2)
	// delivered=2, completed=1: the duplicate also breaks the drain
	// identity, so complete a second time to isolate the per-event law.
	l.Completed(2)

	rep := l.Verify()
	v := findViolation(rep, "conservation")
	if v == nil {
		t.Fatal("duplicate delivery not flagged")
	}
	if v.ReqID != 2 || !strings.Contains(v.Detail, "delivered twice") {
		t.Fatalf("wrong violation: %v", v)
	}
}

func TestLedgerDoubleCompletion(t *testing.T) {
	l := NewLedger(4, false)
	l.Delivered(1)
	l.Completed(1)
	l.Completed(1)
	l.Delivered(3) // rebalance delivered==completed at drain

	rep := l.Verify()
	v := findViolation(rep, "conservation")
	if v == nil || !strings.Contains(v.Detail, "completed twice") {
		t.Fatalf("double completion not flagged: %+v", rep.Violations)
	}
}

func TestLedgerCompletionNeverDelivered(t *testing.T) {
	l := NewLedger(4, false)
	l.Completed(9) // id beyond the slab: stateOf must report stateNew
	l.Delivered(0) // rebalance the drain identity

	rep := l.Verify()
	v := findViolation(rep, "conservation")
	if v == nil || !strings.Contains(v.Detail, "never delivered") {
		t.Fatalf("phantom completion not flagged: %+v", rep.Violations)
	}
}

func TestLedgerMigrateOnce(t *testing.T) {
	l := NewLedger(2, false)
	l.Delivered(0)
	l.MigrateLanded(0)
	l.MigrateLanded(0)
	l.Completed(0)

	rep := l.Verify()
	v := findViolation(rep, "migrate-once")
	if v == nil {
		t.Fatal("second migration landing not flagged")
	}
	if v.ReqID != 0 || !strings.Contains(v.Detail, "2 times") {
		t.Fatalf("wrong violation: %v", v)
	}
	if _, _, m := l.Counts(); m != 2 {
		t.Fatalf("landed count %d, want 2", m)
	}
}

func TestLedgerRemigrationAblation(t *testing.T) {
	l := NewLedger(2, true) // §VI relaxed: remigration allowed
	l.Delivered(0)
	l.MigrateLanded(0)
	l.MigrateLanded(0)
	l.MigrateLanded(0)
	l.Completed(0)

	if err := l.Verify().Err(); err != nil {
		t.Fatalf("remigration flagged despite allowRemigration: %v", err)
	}
}

func TestLedgerDrainImbalanceAndInflight(t *testing.T) {
	l := NewLedger(4, false)
	l.Delivered(0)
	l.Delivered(1)
	l.Completed(0) // id 1 stays queued: both drain laws fire

	rep := l.Verify()
	if rep.Total() != 2 {
		t.Fatalf("want 2 drain violations, got %d: %+v", rep.Total(), rep.Violations)
	}
	var sawImbalance, sawInflight bool
	for _, v := range rep.Violations {
		if v.ReqID != NoRequest {
			t.Fatalf("drain violations are run-wide, got req=%d", v.ReqID)
		}
		switch {
		case strings.Contains(v.Detail, "delivered 2 but completed 1"):
			sawImbalance = true
		case strings.Contains(v.Detail, "1 request(s) delivered but never completed"):
			sawInflight = true
		}
	}
	if !sawImbalance || !sawInflight {
		t.Fatalf("missing drain law (imbalance=%v inflight=%v): %+v",
			sawImbalance, sawInflight, rep.Violations)
	}
}

// TestLedgerSlabGrowth exercises ids past the pre-sized slabs, and an
// expected=0 ledger (everything grows on demand).
func TestLedgerSlabGrowth(t *testing.T) {
	for _, expected := range []int{0, 2} {
		l := NewLedger(expected, false)
		for id := uint64(0); id < 64; id++ {
			l.Delivered(id)
			if id%7 == 0 {
				l.MigrateLanded(id)
			}
			l.Completed(id)
		}
		if err := l.Verify().Err(); err != nil {
			t.Fatalf("expected=%d: %v", expected, err)
		}
		d, c, m := l.Counts()
		if d != 64 || c != 64 || m != 10 {
			t.Fatalf("expected=%d: Counts() = %d/%d/%d, want 64/64/10",
				expected, d, c, m)
		}
	}
}

func TestLedgerViolationRetentionCap(t *testing.T) {
	l := NewLedger(1, false)
	l.Delivered(0)
	for i := 0; i < 30; i++ { // 30 duplicate deliveries, cap is 16
		l.Delivered(0)
	}
	for i := 0; i < 31; i++ {
		l.Completed(0) // rebalance so drain laws stay quiet
	}

	rep := l.Verify()
	if len(rep.Violations) != 16 {
		t.Fatalf("retained %d violations, want cap of 16", len(rep.Violations))
	}
	// 30 duplicate deliveries + 30 double completions = 60 per-event
	// violations; 16 retained, the rest counted as dropped.
	if rep.Total() != 60 {
		t.Fatalf("Total() = %d, want 60 (dropped=%d)", rep.Total(), rep.Dropped)
	}
	if err := rep.Err(); err == nil ||
		!strings.Contains(err.Error(), "60 invariant violation(s)") {
		t.Fatalf("Err() = %v, want summary of 60", err)
	}
}

// Ledger violations carry no queue or sim timestamp; String must still
// render them without the queue field.
func TestLedgerViolationString(t *testing.T) {
	l := NewLedger(1, false)
	l.Delivered(0)
	l.Delivered(0)
	l.Completed(0)
	l.Completed(0)

	rep := l.Verify()
	if len(rep.Violations) == 0 {
		t.Fatal("no violations retained")
	}
	s := rep.Violations[0].String()
	if strings.Contains(s, "queue=") {
		t.Fatalf("ledger violation rendered a queue id: %q", s)
	}
	if !strings.Contains(s, "req=0") {
		t.Fatalf("violation string lost the request id: %q", s)
	}
	if want := fmt.Sprintf("[%s]", "conservation"); !strings.Contains(s, want) {
		t.Fatalf("violation string lost the invariant name: %q", s)
	}
}
