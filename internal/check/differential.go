package check

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/nic"
	"repro/internal/queueing"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Differential validation (the nanoPU/RackSched methodology): run the
// two schedulers with exact queueing-theory counterparts under
// Poisson arrivals and exponential service, then assert the simulated
// latency statistics against the closed forms.
//
//   - c-FCFS: sched.Central with zero dispatch/handoff cost and no
//     preemption is exactly M/M/k; mean sojourn, delay probability and
//     the P99 sojourn follow from the Erlang-C formula.
//   - d-FCFS: sched.DFCFS under per-request random steering splits the
//     Poisson stream into k independent M/M/1 queues at rate λ/k each
//     (both closed forms are the K=1 instance of the same M/M/k
//     expressions).
//
// Tolerances are CI-calibrated at runtime via the batch-means method:
// the post-warmup series is cut into fixed-count batches whose means
// are near-independent, giving a standard error that already accounts
// for the autocorrelation of queueing output; each assertion allows
// diffZ standard errors plus a small model slack (DESIGN §8).

// DiffCase is one differential-validation configuration.
type DiffCase struct {
	Name    string
	CFCFS   bool // true: Central (M/M/k); false: DFCFS + random steering (k x M/M/1)
	K       int
	Rho     float64  // offered load per core
	MeanSvc sim.Time // exponential service mean
	N       int
	Warmup  int // leading completions excluded from statistics
}

// DiffMetric is one simulated-vs-analytical comparison.
type DiffMetric struct {
	Name  string
	Sim   float64
	Model float64
	Tol   float64 // allowed absolute deviation
	OK    bool
}

// DiffResult is the outcome of one differential case.
type DiffResult struct {
	Case    DiffCase
	Metrics []DiffMetric
	Report  *Report // invariant report of the same run
}

// Err returns nil when every metric passed and the run was clean.
func (d *DiffResult) Err() error {
	if err := d.Report.Err(); err != nil {
		return fmt.Errorf("differential %s: %w", d.Case.Name, err)
	}
	for _, m := range d.Metrics {
		if !m.OK {
			return fmt.Errorf("differential %s: %s = %.6g, model %.6g (tol %.2g)",
				d.Case.Name, m.Name, m.Sim, m.Model, m.Tol)
		}
	}
	return nil
}

// Batch-means parameters: diffBatches batches keep batch sizes large
// enough (thousands of requests) that batch means decorrelate at the
// loads used below; diffZ standard errors bound the false-alarm rate
// per metric around the 1e-4 level even with residual correlation.
const (
	diffBatches   = 25
	diffZ         = 4.5
	diffMeanSlack = 0.015 // relative model slack for means
	diffProbSlack = 0.006 // absolute model slack for probabilities
)

// DefaultDiffCases returns the validation grid; quick shrinks run
// lengths for CI.
func DefaultDiffCases(quick bool) []DiffCase {
	n, warm := 400_000, 20_000
	if quick {
		n, warm = 80_000, 8_000
	}
	svc := sim.Microsecond
	return []DiffCase{
		{Name: "mm1-cfcfs-rho0.7", CFCFS: true, K: 1, Rho: 0.7, MeanSvc: svc, N: n, Warmup: warm},
		{Name: "erlangc-cfcfs-k8-rho0.8", CFCFS: true, K: 8, Rho: 0.8, MeanSvc: svc, N: n, Warmup: warm},
		{Name: "mm1-dfcfs-k4-rho0.7", CFCFS: false, K: 4, Rho: 0.7, MeanSvc: svc, N: n, Warmup: warm},
		{Name: "mm1-dfcfs-k8-rho0.5", CFCFS: false, K: 8, Rho: 0.5, MeanSvc: svc, N: n, Warmup: warm},
	}
}

// RunDiff executes one differential case with the invariant checker
// attached and compares the measured sojourn statistics against the
// queueing model.
func RunDiff(c DiffCase, seed uint64) (*DiffResult, error) {
	if c.K < 1 || c.Rho <= 0 || c.Rho >= 1 || c.N <= c.Warmup {
		return nil, fmt.Errorf("check: bad differential case %+v", c)
	}
	eng := sim.NewEngine()
	root := sim.NewRNG(seed)
	arrRNG := root.Fork(1)
	svcRNG := root.Fork(2)
	steerRNG := root.Fork(3)

	mu := 1 / c.MeanSvc.Seconds()
	lambda := c.Rho * float64(c.K) * mu
	arrivals := dist.Poisson{Rate: lambda}
	service := dist.Exponential{M: c.MeanSvc}

	// Per-queue model: the whole system for c-FCFS, one random split for
	// d-FCFS. Both sojourn statistics are queue-local and identical
	// across the k symmetric M/M/1 queues, so d-FCFS pools all requests.
	model := queueing.MMk{K: c.K, Lambda: lambda, Mu: mu}
	if !c.CFCFS {
		model = queueing.MMk{K: 1, Lambda: lambda / float64(c.K), Mu: mu}
	}

	chk := New(Options{Expected: c.N})
	sojourn := make([]float64, 0, c.N-c.Warmup) // seconds, completion in ID order below
	waited := make([]float64, 0, c.N-c.Warmup)  // 1.0 when the request queued
	reqs := make([]*rpcproto.Request, c.N)
	done := chk.WrapDone(nil)

	var s sched.Scheduler
	var specs []QueueSpec
	if c.CFCFS {
		s = sched.NewCentral(eng, c.K, 0, 0, 0, 0, done)
		specs = []QueueSpec{{ID: 0, Core: -1, Lens: 0}}
	} else {
		st := nic.NewSteerer(nic.SteerRandom, c.K, steerRNG)
		s = sched.NewDFCFS(eng, c.K, st, 0, done)
		for i := 0; i < c.K; i++ {
			specs = append(specs, QueueSpec{ID: i, Core: i, Lens: i})
		}
	}
	s.(interface{ SetObserver(sched.Observer) }).SetObserver(chk)
	chk.Attach(eng, specs, s.QueueLensInto)

	var schedule func(i int, at sim.Time)
	schedule = func(i int, at sim.Time) {
		if i >= c.N {
			return
		}
		r := &rpcproto.Request{ID: uint64(i), Service: service.Sample(svcRNG)}
		reqs[i] = r
		gap := arrivals.NextGap(arrRNG)
		eng.At(at, func() {
			r.Arrival = eng.Now()
			s.Deliver(r)
			schedule(i+1, eng.Now()+gap)
		})
	}
	schedule(0, 0)
	eng.RunAll()

	rep := chk.Finalize()
	for _, r := range reqs[c.Warmup:] {
		if r == nil || r.Finish == 0 {
			return nil, fmt.Errorf("check: differential %s left request unfinished", c.Name)
		}
		sojourn = append(sojourn, (r.Finish - r.Arrival).Seconds())
		w := 0.0
		if r.Start > r.Arrival {
			w = 1.0
		}
		waited = append(waited, w)
	}

	res := &DiffResult{Case: c, Report: rep}

	// Mean sojourn vs E[T] = E[W] + 1/µ.
	meanT := model.MeanSojourn()
	simMean, se := batchStats(sojourn)
	res.Metrics = append(res.Metrics, metric("mean-sojourn",
		simMean, meanT, diffZ*se+diffMeanSlack*meanT))

	// Delay probability vs Erlang-C (ρ for the M/M/1 split).
	pWait := model.PWait()
	simP, seP := batchStats(waited)
	res.Metrics = append(res.Metrics, metric("p-wait",
		simP, pWait, diffZ*seP+diffProbSlack))

	// P99 sojourn via the exceedance fraction: the share of sojourns
	// beyond the model's 99th percentile must be 1%.
	t99 := sojournPercentile(model, 0.99)
	exceed := make([]float64, len(sojourn))
	for i, v := range sojourn {
		if v > t99 {
			exceed[i] = 1
		}
	}
	simEx, seEx := batchStats(exceed)
	res.Metrics = append(res.Metrics, metric("p99-exceedance",
		simEx, 0.01, diffZ*seEx+diffProbSlack))

	return res, nil
}

func metric(name string, sim, model, tol float64) DiffMetric {
	return DiffMetric{Name: name, Sim: sim, Model: model, Tol: tol,
		OK: math.Abs(sim-model) <= tol}
}

// batchStats returns the overall mean and the batch-means standard
// error of a time-ordered series.
func batchStats(vals []float64) (mean, se float64) {
	n := len(vals)
	if n == 0 {
		return 0, 0
	}
	b := diffBatches
	if b > n {
		b = n
	}
	size := n / b
	means := make([]float64, 0, b)
	var total float64
	for i := 0; i < b; i++ {
		var s float64
		for _, v := range vals[i*size : (i+1)*size] {
			s += v
		}
		means = append(means, s/float64(size))
		total += s
	}
	// The remainder (< one batch) still counts toward the mean.
	for _, v := range vals[b*size:] {
		total += v
	}
	mean = total / float64(n)
	var ss float64
	for _, m := range means {
		d := m - mean
		ss += d * d
	}
	if b > 1 {
		se = math.Sqrt(ss/float64(b-1)) / math.Sqrt(float64(b))
	}
	return mean, se
}

// sojournPercentile solves P(T <= t) = p for the M/M/k sojourn time T.
// With W the wait (atom at zero of mass 1-C, exponential tail at rate
// δ = kµ-λ) and S ~ Exp(µ) independent of W,
//
//	P(T > t) = (1-C)·e^(-µt) + C·(µ·e^(-δt) - δ·e^(-µt))/(µ-δ)
//
// which for K=1 collapses to the classic Exp(µ-λ) sojourn. Solved by
// bisection (the tail is strictly decreasing).
func sojournPercentile(q queueing.MMk, p float64) float64 {
	mu := q.Mu
	delta := float64(q.K)*q.Mu - q.Lambda
	cc := q.PWait()
	if math.Abs(mu-delta) < 1e-9*mu {
		// Degenerate δ=µ: nudge to keep the closed form well-defined
		// (the limit is continuous).
		delta *= 1 + 1e-6
	}
	tail := func(t float64) float64 {
		return (1-cc)*math.Exp(-mu*t) + cc*(mu*math.Exp(-delta*t)-delta*math.Exp(-mu*t))/(mu-delta)
	}
	target := 1 - p
	lo, hi := 0.0, 1/mu
	for tail(hi) > target {
		hi *= 2
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if tail(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
