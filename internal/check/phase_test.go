package check

import (
	"testing"

	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
)

// phasedReq builds a 2-phase chain: 300 ns + 700 ns base, the second
// phase accelerator-affine at 200 ns.
func phasedReq(id uint64) *rpcproto.Request {
	r := &rpcproto.Request{ID: id, NumPhases: 2}
	r.PhaseSvc[0], r.PhaseAcc[0] = 300*sim.Nanosecond, 300*sim.Nanosecond
	r.PhaseSvc[1], r.PhaseAcc[1] = 700*sim.Nanosecond, 200*sim.Nanosecond
	r.PhaseClass[1] = 1
	r.Service = sim.Microsecond
	return r
}

// TestPhaseCleanChain scripts a full 2-phase lifecycle with one
// forwarding hop: no violations, and the forward requeue cause is
// accepted from the transit state.
func TestPhaseCleanChain(t *testing.T) {
	c, _ := scriptedChecker(Options{Expected: 1})
	done := c.WrapDone(nil)
	r := phasedReq(0)
	c.OnEnqueue(r, 0, 0)
	c.OnDequeue(r, 0, false)
	c.OnRun(r, 0)
	r.Phase = 1 // exec advances the phase before the OnPhase seam fires
	c.OnPhaseDone(r, 0)
	c.OnRequeue(r, 0, sched.RequeueForward, 0)
	c.OnDequeue(r, 0, false)
	c.OnRun(r, 0)
	c.OnComplete(r, 0)
	r.PhaseEnd[0] = 400 * sim.Nanosecond
	r.PhaseEnd[1] = 700 * sim.Nanosecond // 300 base + 200 accelerated + slack
	r.Finish = r.PhaseEnd[1]
	done(r)
	rep := c.Finalize()
	if rep.Total() != 0 {
		t.Fatalf("clean phased chain reported violations: %v", rep.Violations)
	}
}

// TestPhaseOrderBoundaryViolations covers every malformed OnPhaseDone:
// an unphased request, a boundary before any phase advanced, a phase
// past the chain length, and a non-increasing repeat.
func TestPhaseOrderBoundaryViolations(t *testing.T) {
	boundary := func(mut func(r *rpcproto.Request)) *Report {
		c, _ := scriptedChecker(Options{})
		r := phasedReq(0)
		c.OnEnqueue(r, 0, 0)
		c.OnDequeue(r, 0, false)
		c.OnRun(r, 0)
		mut(r)
		c.OnPhaseDone(r, 0)
		return c.Finalize()
	}
	cases := map[string]func(r *rpcproto.Request){
		"unphased":   func(r *rpcproto.Request) { r.NumPhases = 0; r.Phase = 0 },
		"phase-zero": func(r *rpcproto.Request) { r.Phase = 0 },
		"past-end":   func(r *rpcproto.Request) { r.Phase = 2 },
	}
	for name, mut := range cases {
		if rep := boundary(mut); len(violationsOf(rep, "phase-order")) != 1 {
			t.Errorf("%s: phase-order violations = %v", name, rep.Violations)
		}
	}

	// Two boundaries at the same phase: the second must be flagged.
	c, _ := scriptedChecker(Options{})
	r := phasedReq(1)
	r.NumPhases = 3
	c.OnEnqueue(r, 0, 0)
	c.OnDequeue(r, 0, false)
	c.OnRun(r, 0)
	r.Phase = 1
	c.OnPhaseDone(r, 0)
	c.OnRequeue(r, 0, sched.RequeueForward, 0)
	c.OnDequeue(r, 0, false)
	c.OnRun(r, 0)
	c.OnPhaseDone(r, 0) // still phase 1: not strictly increasing
	rep := c.Finalize()
	if len(violationsOf(rep, "phase-order")) != 1 {
		t.Fatalf("repeated boundary not flagged: %v", rep.Violations)
	}
}

// TestPhaseBoundaryIdleCore: a boundary on a core the shadow believes
// idle is a double dispatch.
func TestPhaseBoundaryIdleCore(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	r := phasedReq(0)
	c.OnEnqueue(r, 0, 0)
	c.OnDequeue(r, 0, false)
	c.OnRun(r, 0)
	r.Phase = 1
	c.OnPhaseDone(r, 0)
	c.OnRequeue(r, 0, sched.RequeueForward, 0)
	c.OnDequeue(r, 0, false)
	// No OnRun: core 0 is idle when the next boundary fires.
	r.NumPhases = 3
	r.Phase = 2
	c.OnPhaseDone(r, 0)
	rep := c.Finalize()
	if len(violationsOf(rep, "double-dispatch")) == 0 {
		t.Fatalf("idle-core boundary not flagged: %v", rep.Violations)
	}
}

// TestMigrateOncePerPhase: one migration per phase is legal; a second
// landing within the same phase is the §VI violation.
func TestMigrateOncePerPhase(t *testing.T) {
	attach := func() *Checker {
		eng := sim.NewEngine()
		c := New(Options{})
		c.Attach(eng, []QueueSpec{{ID: 0, Core: -1, Lens: -1}, {ID: 1, Core: -1, Lens: -1}}, nil)
		return c
	}
	// Legal: migrate in phase 0, advance, migrate again in phase 1.
	c := attach()
	r := phasedReq(3)
	c.OnEnqueue(r, 0, 0)
	c.OnDequeue(r, 0, false)
	c.OnRequeue(r, 1, sched.RequeueMigrate, 0)
	c.OnDequeue(r, 1, false)
	r.Phase = 1 // boundary elsewhere; the latch re-arms
	c.OnRequeue(r, 0, sched.RequeueMigrate, 0)
	if rep := c.Finalize(); len(violationsOf(rep, "migrate-once")) != 0 {
		t.Fatalf("per-phase re-arm flagged: %v", rep.Violations)
	}
	// Illegal: two landings within phase 1.
	c2 := attach()
	r2 := phasedReq(4)
	r2.Phase = 1
	c2.OnEnqueue(r2, 0, 0)
	c2.OnDequeue(r2, 0, false)
	c2.OnRequeue(r2, 1, sched.RequeueMigrate, 0)
	c2.OnDequeue(r2, 1, false)
	c2.OnRequeue(r2, 0, sched.RequeueMigrate, 0)
	rep := c2.Finalize()
	if len(violationsOf(rep, "migrate-once")) != 1 {
		t.Fatalf("same-phase double migration not flagged: %v", rep.Violations)
	}
}

// TestPhasedCompletionViolations covers the phased onDone checks: the
// MinService lower bound and the completion-shape audit.
func TestPhasedCompletionViolations(t *testing.T) {
	complete := func(mut func(r *rpcproto.Request)) *Report {
		c, _ := scriptedChecker(Options{})
		done := c.WrapDone(nil)
		r := phasedReq(0)
		c.OnEnqueue(r, 0, 0)
		c.OnDequeue(r, 0, false)
		c.OnRun(r, 0)
		c.OnComplete(r, 0)
		r.Phase = 1
		r.PhaseEnd[0] = 400 * sim.Nanosecond
		r.PhaseEnd[1] = 700 * sim.Nanosecond
		r.Finish = r.PhaseEnd[1]
		mut(r)
		done(r)
		return c.Finalize()
	}
	// Clean completion as scripted: no violations.
	if rep := complete(func(*rpcproto.Request) {}); rep.Total() != 0 {
		t.Fatalf("clean completion flagged: %v", rep.Violations)
	}
	// Faster than the sum of best-case phase durations (500 ns).
	if rep := complete(func(r *rpcproto.Request) {
		r.PhaseEnd[1] = 450 * sim.Nanosecond
		r.PhaseEnd[0] = 200 * sim.Nanosecond
		r.Finish = r.PhaseEnd[1]
	}); len(violationsOf(rep, "conservation")) == 0 {
		t.Errorf("sub-MinService completion not flagged: %v", rep.Violations)
	}
	// Parked on a non-final phase.
	if rep := complete(func(r *rpcproto.Request) {
		r.Phase = 0
	}); len(violationsOf(rep, "phase-order")) == 0 {
		t.Errorf("non-final-phase completion not flagged: %v", rep.Violations)
	}
	// Final stamp disagrees with Finish.
	if rep := complete(func(r *rpcproto.Request) {
		r.Finish = r.PhaseEnd[1] + sim.Nanosecond
	}); len(violationsOf(rep, "phase-order")) == 0 {
		t.Errorf("finish/stamp mismatch not flagged: %v", rep.Violations)
	}
	// Decreasing timestamps.
	if rep := complete(func(r *rpcproto.Request) {
		r.PhaseEnd[0] = 800 * sim.Nanosecond
	}); len(violationsOf(rep, "phase-order")) == 0 {
		t.Errorf("decreasing phase ends not flagged: %v", rep.Violations)
	}
}
