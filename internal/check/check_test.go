package check

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/rpcproto"
	"repro/internal/sched"
	"repro/internal/sim"
)

func req(id uint64) *rpcproto.Request {
	return &rpcproto.Request{ID: id, Service: sim.Microsecond, Remaining: sim.Microsecond}
}

// violationsOf filters a report by invariant name.
func violationsOf(rep *Report, invariant string) []Violation {
	var out []Violation
	for _, v := range rep.Violations {
		if v.Invariant == invariant {
			out = append(out, v)
		}
	}
	return out
}

// scriptedChecker builds a checker attached to a fresh engine with one
// core-owned queue (id 0, core 0, lens 0).
func scriptedChecker(opt Options) (*Checker, *sim.Engine) {
	eng := sim.NewEngine()
	c := New(opt)
	c.Attach(eng, []QueueSpec{{ID: 0, Core: 0, Lens: 0}}, func([]int) []int { return []int{c.queues[0].len()} })
	return c, eng
}

func TestCleanLifecycle(t *testing.T) {
	c, _ := scriptedChecker(Options{Expected: 2})
	done := c.WrapDone(nil)
	for i := uint64(0); i < 2; i++ {
		r := req(i)
		c.OnEnqueue(r, 0, int(i)) // queue grows 0 -> 1 -> 2
	}
	for i := uint64(0); i < 2; i++ {
		r := req(i)
		c.OnDequeue(r, 0, false)
		c.OnRun(r, 0)
		c.OnComplete(r, 0)
		r.Finish = r.Arrival + r.Service
		done(r)
	}
	rep := c.Finalize()
	if rep.Total() != 0 {
		t.Fatalf("clean run reported violations: %v", rep.Violations)
	}
	if rep.Delivered != 2 || rep.Completed != 2 {
		t.Fatalf("delivered/completed = %d/%d, want 2/2", rep.Delivered, rep.Completed)
	}
	if rep.Checks == 0 {
		t.Fatal("no invariant evaluations counted")
	}
}

func TestFIFOOrderViolation(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	a, b := req(0), req(1)
	c.OnEnqueue(a, 0, 0)
	c.OnEnqueue(b, 0, 1)
	c.OnDequeue(b, 0, false) // head pop must return a, not b
	rep := c.Finalize()
	got := violationsOf(rep, "fifo-order")
	if len(got) != 1 {
		t.Fatalf("fifo-order violations = %d, want 1 (all: %v)", len(got), rep.Violations)
	}
	if got[0].ReqID != 1 || got[0].Queue != 0 {
		t.Fatalf("violation context = %+v", got[0])
	}
	// Tail pop of the newest resident is legal (LIFO selection).
	c2, _ := scriptedChecker(Options{})
	c2.OnEnqueue(req(0), 0, 0)
	c2.OnEnqueue(req(1), 0, 1)
	c2.OnDequeue(req(1), 0, true)
	c2.OnDequeue(req(0), 0, false)
	if rep := c2.Finalize(); len(violationsOf(rep, "fifo-order")) != 0 {
		t.Fatalf("tail pop flagged: %v", rep.Violations)
	}
}

func TestQueueAccountingViolation(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	c.OnEnqueue(req(0), 0, 3) // shadow queue is empty; reported length lies
	rep := c.Finalize()
	if len(violationsOf(rep, "queue-accounting")) != 1 {
		t.Fatalf("want one queue-accounting violation, got %v", rep.Violations)
	}
}

func TestDequeueEmptyQueue(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	r := req(0)
	c.OnEnqueue(r, 0, 0)
	c.OnDequeue(r, 0, false)
	c.OnRequeue(r, 0, sched.RequeuePreempt, 0)
	c.OnDequeue(r, 0, false)
	c.OnDequeue(r, 0, false) // double pop: state machine + empty shadow
	rep := c.Finalize()
	if len(violationsOf(rep, "state-machine")) == 0 {
		t.Fatalf("double pop not flagged: %v", rep.Violations)
	}
	if len(violationsOf(rep, "queue-accounting")) == 0 {
		t.Fatalf("empty-shadow pop not flagged: %v", rep.Violations)
	}
}

func TestMigrateOnce(t *testing.T) {
	run := func(allow bool) *Report {
		eng := sim.NewEngine()
		c := New(Options{AllowRemigration: allow})
		c.Attach(eng, []QueueSpec{{ID: 0, Core: -1, Lens: -1}, {ID: 1, Core: -1, Lens: -1}}, nil)
		r := req(7)
		c.OnEnqueue(r, 0, 0)
		c.OnDequeue(r, 0, false)
		c.OnRequeue(r, 1, sched.RequeueMigrate, 0) // first landing: legal
		c.OnDequeue(r, 1, false)
		c.OnRequeue(r, 0, sched.RequeueMigrate, 0) // second landing
		return c.Finalize()
	}
	rep := run(false)
	got := violationsOf(rep, "migrate-once")
	if len(got) != 1 {
		t.Fatalf("migrate-once violations = %d, want 1 (all: %v)", len(got), rep.Violations)
	}
	if got[0].ReqID != 7 {
		t.Fatalf("violation req = %d, want 7", got[0].ReqID)
	}
	if rep := run(true); len(violationsOf(rep, "migrate-once")) != 0 {
		t.Fatalf("remigration flagged despite AllowRemigration: %v", rep.Violations)
	}
}

func TestMigrateGuard(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	// src len 4, dst view 2, batch 2: 4-2 >= 2+2 fails -> violation.
	c.OnMigrate(5, 6, 4, 2, 2, true)
	// Same geometry unguarded (ablation): legal.
	c.OnMigrate(5, 6, 4, 2, 2, false)
	// src 8, dst 2, batch 2: 8-2 >= 2+2 holds.
	c.OnMigrate(5, 6, 8, 2, 2, true)
	rep := c.Finalize()
	if len(violationsOf(rep, "migrate-guard")) != 1 {
		t.Fatalf("migrate-guard violations: %v", rep.Violations)
	}
	if rep.Batches != 3 {
		t.Fatalf("batches = %d, want 3", rep.Batches)
	}
}

func TestBoundExceeded(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	c.OnOutstanding(req(0), 0, 4, 4) // at the bound: legal
	c.OnOutstanding(req(1), 0, 5, 4) // beyond: violation
	rep := c.Finalize()
	got := violationsOf(rep, "bound-exceeded")
	if len(got) != 1 {
		t.Fatalf("bound-exceeded violations: %v", rep.Violations)
	}
	if !strings.Contains(got[0].Detail, "exceeds bound 4") {
		t.Fatalf("detail = %q", got[0].Detail)
	}
}

func TestDoubleDispatch(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	a, b := req(0), req(1)
	c.OnEnqueue(a, 0, 0)
	c.OnEnqueue(b, 0, 1)
	c.OnDequeue(a, 0, false)
	c.OnRun(a, 0)
	c.OnDequeue(b, 0, false)
	c.OnRun(b, 0) // core 0 is still running a
	rep := c.Finalize()
	if len(violationsOf(rep, "double-dispatch")) != 1 {
		t.Fatalf("double-dispatch violations: %v", rep.Violations)
	}
}

func TestConservationAtDrain(t *testing.T) {
	c, _ := scriptedChecker(Options{Expected: 2})
	done := c.WrapDone(nil)
	r := req(0)
	c.OnEnqueue(r, 0, 0)
	c.OnDequeue(r, 0, false)
	c.OnRun(r, 0)
	c.OnComplete(r, 0)
	r.Finish = r.Service
	done(r)
	// Second request delivered but stranded in the queue.
	c.OnEnqueue(req(1), 0, 0)
	rep := c.Finalize()
	if got := violationsOf(rep, "conservation"); len(got) < 2 {
		t.Fatalf("conservation violations = %d, want >=2 (missing delivery count + stranded request): %v",
			len(got), rep.Violations)
	}
	if rep.Err() == nil {
		t.Fatal("Err() = nil for a dirty run")
	}
}

func TestDoubleCompletion(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	done := c.WrapDone(nil)
	r := req(0)
	c.OnEnqueue(r, 0, 0)
	c.OnDequeue(r, 0, false)
	c.OnRun(r, 0)
	c.OnComplete(r, 0)
	r.Finish = r.Service
	done(r)
	done(r)
	rep := c.Finalize()
	if len(violationsOf(rep, "conservation")) == 0 {
		t.Fatalf("double completion not flagged: %v", rep.Violations)
	}
}

func TestViolationCapAndTotal(t *testing.T) {
	c, _ := scriptedChecker(Options{MaxViolations: 2})
	for i := 0; i < 5; i++ {
		c.OnOutstanding(req(uint64(i)), 0, 9, 1)
	}
	rep := c.Finalize()
	if len(rep.Violations) != 2 || rep.Dropped != 3 || rep.Total() != 5 {
		t.Fatalf("retained %d dropped %d total %d, want 2/3/5",
			len(rep.Violations), rep.Dropped, rep.Total())
	}
}

func TestWorkConservationCheckpoint(t *testing.T) {
	c, eng := scriptedChecker(Options{Every: sim.Microsecond})
	c.OnEnqueue(req(0), 0, 0) // request sits queued while core 0 idles
	eng.Run(3 * sim.Microsecond)
	rep := c.Finalize()
	if len(violationsOf(rep, "work-conservation")) == 0 {
		t.Fatalf("idle core with queued work not flagged: %v", rep.Violations)
	}
	if rep.Checkpoints == 0 {
		t.Fatal("no checkpoints ran")
	}
}

func TestCheckpointCadenceStops(t *testing.T) {
	// Once the expected count completes, the checkpoint stops
	// rescheduling itself so RunAll can drain. A hang here would make
	// this test time out.
	c, eng := scriptedChecker(Options{Every: sim.Microsecond, Expected: 1})
	done := c.WrapDone(nil)
	r := req(0)
	eng.After(0, func() {
		c.OnEnqueue(r, 0, 0)
		c.OnDequeue(r, 0, false)
		c.OnRun(r, 0)
		c.OnComplete(r, 0)
		r.Finish = eng.Now() + r.Service
		done(r)
	})
	eng.RunAll()
	if rep := c.Finalize(); rep.Total() != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Invariant: "fifo-order", At: 3 * sim.Microsecond, ReqID: 42, Queue: 2,
		Detail: "head pop returned request 42, shadow head is 41", Lens: []int{1, 0}}
	s := v.String()
	for _, want := range []string{"fifo-order", "req=42", "queue=2", "qlens=[1 0]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// offByOneProbe simulates a JBSQ whose bound comparison is off by one:
// it forwards every probe event unchanged but understates the bound the
// scheduler claims to enforce, exactly what a `<=` vs `<` slip in the
// drain loop produces. The checker must catch it on a real JBSQ run.
type offByOneProbe struct {
	*Checker
}

func (p offByOneProbe) OnOutstanding(r *rpcproto.Request, core, n, bound int) {
	p.Checker.OnOutstanding(r, core, n, bound-1)
}

func TestJBSQBoundOffByOneCaught(t *testing.T) {
	const (
		cores = 4
		bound = 3
		n     = 2000
	)
	run := func(seeded bool) *Report {
		eng := sim.NewEngine()
		chk := New(Options{Expected: n})
		done := chk.WrapDone(nil)
		s := sched.NewJBSQ(eng, cores, sched.VariantRPCValet, bound, 0, 0, 0, 0, done)
		if seeded {
			s.SetObserver(offByOneProbe{chk})
		} else {
			s.SetObserver(chk)
		}
		specs := []QueueSpec{{ID: 0, Core: -1, Lens: 0}}
		for i := 0; i < cores; i++ {
			specs = append(specs, QueueSpec{ID: 1 + i, Core: i, Lens: -1})
		}
		chk.Attach(eng, specs, s.QueueLensInto)

		svc := dist.Exponential{M: sim.Microsecond}
		arr := dist.Poisson{Rate: dist.LoadForRate(0.9, cores, svc)}
		rng := sim.NewRNG(11)
		var schedule func(i int, at sim.Time)
		schedule = func(i int, at sim.Time) {
			if i >= n {
				return
			}
			r := &rpcproto.Request{ID: uint64(i), Service: svc.Sample(rng)}
			gap := arr.NextGap(rng)
			eng.At(at, func() {
				r.Arrival = eng.Now()
				s.Deliver(r)
				schedule(i+1, eng.Now()+gap)
			})
		}
		schedule(0, 0)
		eng.RunAll()
		return chk.Finalize()
	}

	clean := run(false)
	if clean.Total() != 0 {
		t.Fatalf("correct JBSQ flagged: %v", clean.Violations)
	}
	seeded := run(true)
	got := violationsOf(seeded, "bound-exceeded")
	if len(got) == 0 {
		t.Fatalf("off-by-one bound not caught (report: %+v)", seeded)
	}
	if !strings.Contains(got[0].Detail, "exceeds bound") {
		t.Fatalf("detail = %q", got[0].Detail)
	}
}

func TestUndeclaredQueue(t *testing.T) {
	c, _ := scriptedChecker(Options{})
	c.OnEnqueue(req(0), 9, 0) // queue 9 never declared
	rep := c.Finalize()
	if len(violationsOf(rep, "queue-topology")) != 1 {
		t.Fatalf("undeclared queue not flagged: %v", rep.Violations)
	}
}
