package check

import "fmt"

// Ledger is the engine-independent core of the conservation and
// migrate-at-most-once invariants: bare request-lifecycle accounting
// with no probe wiring, no shadow queues and no event engine, so the
// live goroutine runtime (internal/live) can assert the same §VI laws
// the simulator's Checker enforces. The runtime records Delivered at
// ingress, MigrateLanded when a descriptor lands on a destination run
// queue, and Completed when the response callback fires; Verify closes
// the run with the drain-time identity delivered == completed and
// nothing in flight.
//
// A Ledger is not safe for concurrent use: callers serialize access
// (the live runtime guards its ledger with one mutex, which also gives
// the counters a single total order to verify against).
type Ledger struct {
	allowRemigration bool
	maxViolations    int

	state    []uint8 // indexed by request id
	migrated []int32 // indexed by request id: migration landings

	delivered uint64
	completed uint64
	landed    uint64 // migration landings (requests, not batches)

	checks     uint64
	violations []Violation
	dropped    int
}

// NewLedger builds a ledger. expected pre-sizes the lifecycle slabs
// (ids beyond it still work, they just grow the slab); allowRemigration
// disables the migrate-at-most-once law for the remigration ablation.
func NewLedger(expected int, allowRemigration bool) *Ledger {
	l := &Ledger{allowRemigration: allowRemigration, maxViolations: 16}
	if expected > 0 {
		l.state = make([]uint8, expected)
		l.migrated = make([]int32, expected)
	}
	return l
}

// record captures a violation, keeping at most maxViolations. Ledger
// violations carry no sim timestamp (At stays zero): the live runtime
// has no simulated clock.
func (l *Ledger) record(invariant string, id uint64, detail string) {
	if len(l.violations) >= l.maxViolations {
		l.dropped++
		return
	}
	l.violations = append(l.violations, Violation{
		Invariant: invariant, ReqID: id, Queue: -1, Detail: detail,
	})
}

func (l *Ledger) stateOf(id uint64) uint8 {
	if id < uint64(len(l.state)) {
		return l.state[id]
	}
	return stateNew
}

func (l *Ledger) setState(id uint64, st uint8) {
	for uint64(len(l.state)) <= id {
		l.state = append(l.state, stateNew)
	}
	l.state[id] = st
}

// Delivered records one request entering the runtime. Request ids must
// be unique per run; a repeat is a conservation violation.
func (l *Ledger) Delivered(id uint64) {
	l.delivered++
	l.checks++
	if st := l.stateOf(id); st != stateNew {
		l.record("conservation", id, fmt.Sprintf(
			"request delivered twice (duplicate id, state %s)", stateNames[st]))
	}
	l.setState(id, stateQueued)
}

// MigrateLanded records one request landing on a migration destination.
func (l *Ledger) MigrateLanded(id uint64) {
	l.landed++
	for uint64(len(l.migrated)) <= id {
		l.migrated = append(l.migrated, 0)
	}
	l.migrated[id]++
	l.checks++
	if n := l.migrated[id]; n > 1 && !l.allowRemigration {
		l.record("migrate-once", id, fmt.Sprintf(
			"request landed at a migration destination %d times (§VI allows one)", n))
	}
}

// Completed records one request finishing. Each delivered request must
// complete exactly once.
func (l *Ledger) Completed(id uint64) {
	l.completed++
	l.checks++
	switch l.stateOf(id) {
	case stateFinished:
		l.record("conservation", id, "request completed twice")
	case stateNew:
		l.record("conservation", id, "completion for a request never delivered")
	}
	l.setState(id, stateFinished)
}

// Counts returns the running delivered / completed / migration-landing
// totals.
func (l *Ledger) Counts() (delivered, completed, migrateLanded uint64) {
	return l.delivered, l.completed, l.landed
}

// Verify closes the run: the drain-time conservation identity plus the
// accumulated per-event violations, as a Report. Call after the runtime
// has drained; the ledger stays usable (Verify only appends drain
// findings on its first call per imbalance, so call it once).
func (l *Ledger) Verify() *Report {
	l.checks++
	if l.delivered != l.completed {
		l.record("conservation", NoRequest, fmt.Sprintf(
			"delivered %d but completed %d at drain", l.delivered, l.completed))
	}
	l.checks++
	inflight := 0
	for _, st := range l.state {
		if st != stateNew && st != stateFinished {
			inflight++
		}
	}
	if inflight > 0 {
		l.record("conservation", NoRequest, fmt.Sprintf(
			"%d request(s) delivered but never completed", inflight))
	}
	return &Report{
		Checks:     l.checks,
		Delivered:  l.delivered,
		Completed:  l.completed,
		Violations: l.violations,
		Dropped:    l.dropped,
	}
}
