package check

import "repro/internal/sim"

// RackChecker verifies the rack tier's own conservation laws on top of
// the per-server Checkers: every arrival is dispatched to exactly one
// server, completes on the server it was dispatched to, and every
// dispatch decision was made on a depth view no staler than the
// configured bound. Like Checker it is passive — it observes dispatch
// and completion events and mutates nothing — and like Ledger it is
// engine-free, so the simulated rack runner and (in principle) a live
// relay can share it; callers serialise access.
type RackChecker struct {
	opts RackOptions

	// server[id] is the destination the request was dispatched to, or
	// rackUndispatched. done[id] marks completion. Ids are dense run
	// ids, exactly as Ledger assumes.
	server []int32
	done   []bool

	dispatched []uint64 // per-server dispatch counts
	completed  []uint64 // per-server completion counts
	maxAge     sim.Time // oldest view any decision consulted

	checks     uint64
	violations []Violation
	dropped    int
}

const rackUndispatched = int32(-1)

// RackOptions configures a RackChecker.
type RackOptions struct {
	// Servers is the rack width; completions naming a server outside
	// [0, Servers) are violations.
	Servers int
	// Expected is the number of requests the run will dispatch;
	// Finalize fails rack conservation if the total differs. 0 disables
	// that final check (online per-request checks still run).
	Expected int
	// StalenessBound, when nonzero, is the oldest depth observation a
	// dispatch decision may consult (the rack contract's bounded-
	// staleness invariant). Zero disables the invariant but ages are
	// still tracked for reporting.
	StalenessBound sim.Time
	// MaxViolations caps retained Violation records (default 16).
	MaxViolations int
}

// NewRackChecker builds a checker for a rack of opts.Servers servers.
func NewRackChecker(opts RackOptions) *RackChecker {
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 16
	}
	n := opts.Expected
	if n < 0 {
		n = 0
	}
	rc := &RackChecker{
		opts:       opts,
		server:     make([]int32, 0, n),
		done:       make([]bool, 0, n),
		dispatched: make([]uint64, opts.Servers),
		completed:  make([]uint64, opts.Servers),
	}
	return rc
}

func (rc *RackChecker) violate(v Violation) {
	if len(rc.violations) < rc.opts.MaxViolations {
		rc.violations = append(rc.violations, v)
	} else {
		rc.dropped++
	}
}

// grow ensures the per-request slabs cover id.
func (rc *RackChecker) grow(id uint64) {
	for uint64(len(rc.server)) <= id {
		rc.server = append(rc.server, rackUndispatched)
		rc.done = append(rc.done, false)
	}
}

// OnDispatch records the rack-level dispatch of request id to server
// srv at time at, decided on a view whose oldest consulted observation
// was age old. Dispatching a request twice, to an out-of-range server,
// or on a view staler than the bound are violations.
func (rc *RackChecker) OnDispatch(id uint64, srv int, age sim.Time, at sim.Time) {
	rc.checks++
	rc.grow(id)
	if srv < 0 || srv >= rc.opts.Servers {
		rc.violate(Violation{Invariant: "rack-range", At: at, ReqID: id, Queue: srv,
			Detail: "dispatched to a server outside the rack"})
		return
	}
	if rc.server[id] != rackUndispatched {
		rc.violate(Violation{Invariant: "rack-dispatch-once", At: at, ReqID: id, Queue: srv,
			Detail: "request dispatched twice"})
		return
	}
	rc.server[id] = int32(srv)
	rc.dispatched[srv]++
	if age > rc.maxAge {
		rc.maxAge = age
	}
	if rc.opts.StalenessBound > 0 && age > rc.opts.StalenessBound {
		rc.violate(Violation{Invariant: "rack-staleness", At: at, ReqID: id, Queue: srv,
			Detail: "dispatch decided on a view older than the staleness bound"})
	}
}

// OnComplete records request id finishing on server srv at time at.
// Completing twice, or on a different server than dispatched to, are
// violations.
func (rc *RackChecker) OnComplete(id uint64, srv int, at sim.Time) {
	rc.checks++
	rc.grow(id)
	switch {
	case rc.server[id] == rackUndispatched:
		rc.violate(Violation{Invariant: "rack-conservation", At: at, ReqID: id, Queue: srv,
			Detail: "completed without a rack dispatch"})
	case int(rc.server[id]) != srv:
		rc.violate(Violation{Invariant: "rack-affinity", At: at, ReqID: id, Queue: srv,
			Detail: "completed on a different server than dispatched to"})
	case rc.done[id]:
		rc.violate(Violation{Invariant: "rack-complete-once", At: at, ReqID: id, Queue: srv,
			Detail: "request completed twice"})
	default:
		rc.done[id] = true
		rc.completed[srv]++
	}
}

// MaxSampleAge returns the oldest view any dispatch decision consulted.
func (rc *RackChecker) MaxSampleAge() sim.Time { return rc.maxAge }

// PerServer returns copies of the per-server dispatch and completion
// counts.
func (rc *RackChecker) PerServer() (dispatched, completed []uint64) {
	return append([]uint64(nil), rc.dispatched...), append([]uint64(nil), rc.completed...)
}

// Finalize runs the drain-time rack conservation checks and returns
// the report: total dispatches match Expected, and every server
// completed exactly what it was dispatched (nothing in flight, nothing
// lost, nothing duplicated).
func (rc *RackChecker) Finalize(at sim.Time) *Report {
	rc.checks++
	var totalDispatched, totalCompleted uint64
	for srv := range rc.dispatched {
		totalDispatched += rc.dispatched[srv]
		totalCompleted += rc.completed[srv]
		if rc.dispatched[srv] != rc.completed[srv] {
			rc.violate(Violation{Invariant: "rack-conservation", At: at, ReqID: NoRequest, Queue: srv,
				Detail: "server completed fewer requests than it was dispatched"})
		}
	}
	if rc.opts.Expected > 0 && totalDispatched != uint64(rc.opts.Expected) {
		rc.violate(Violation{Invariant: "rack-conservation", At: at, ReqID: NoRequest, Queue: -1,
			Detail: "rack dispatched a different total than expected"})
	}
	return &Report{
		Checks:     rc.checks,
		Delivered:  totalDispatched,
		Completed:  totalCompleted,
		Violations: rc.violations,
		Dropped:    rc.dropped,
	}
}
