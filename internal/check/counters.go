package check

import "sync/atomic"

// Process-wide tallies behind the altobench -check summary. Runs
// execute concurrently on the fleet worker pool, so these are the one
// place the checker touches synchronization: each counter is written
// exactly once per finished run (in Finalize, after the run's engine
// has stopped) and read by cmd/altobench after all runs complete —
// never from inside a simulation event, so the simsync contract's
// intent (no concurrency in event execution) is preserved.
var (
	runTally   atomic.Uint64 //altolint:allow simsync cross-run tally, written once per finished run, never from sim events
	checkTally atomic.Uint64 //altolint:allow simsync cross-run tally, written once per finished run, never from sim events
	vioTally   atomic.Uint64 //altolint:allow simsync cross-run tally, written once per finished run, never from sim events
)

// recordRun folds one run's report into the process tallies.
func recordRun(rep *Report) {
	runTally.Add(1)
	checkTally.Add(rep.Checks)
	vioTally.Add(uint64(rep.Total()))
}

// Totals returns the process-wide counts of checked runs, invariant
// evaluations, and violations since startup.
func Totals() (runs, checks, violations uint64) {
	return runTally.Load(), checkTally.Load(), vioTally.Load()
}
