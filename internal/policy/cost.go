package policy

// Iface selects how the software runtime talks to the scheduling
// hardware (§VI "Software-Hardware Interface").
type Iface int

const (
	// IfaceISA uses the custom altom_* instructions: direct
	// register-level micro-ops, ~2 cycles each.
	IfaceISA Iface = iota
	// IfaceMSR uses rdmsr/wrmsr syscalls, ~100 cycles each on
	// Sandybridge-EP per the paper.
	IfaceMSR
)

func (i Iface) String() string {
	if i == IfaceMSR {
		return "MSR"
	}
	return "ISA"
}

// CostModel holds the engine-agnostic cost constants of the runtime's
// software/hardware interface (Table III / §VI). internal/fabric embeds
// these in its full latency model and delegates here, so the simulator
// and the live runtime charge identical per-tick costs.
type CostModel struct {
	ClockHz       float64 // core clock (paper evaluates 2 GHz)
	ISAOpCycles   int     // cycles per altom_* op
	MSROpCycles   int     // cycles per rdmsr/wrmsr op
	PredictCycles int     // threshold computation: 2 mul + 2 add + 3 cmp ≈ 18 ns @2GHz
}

// Cycles converts a CPU cycle count at the given clock frequency (Hz)
// to a Duration. The float path mirrors sim.Cycles exactly (round to
// the nearest picosecond), so costs are bit-identical across the two
// consumers.
func Cycles(n int, hz float64) Duration {
	ns := float64(n) / hz * 1e9
	if ns < 0 {
		return 0
	}
	return Duration(ns*1000 + 0.5)
}

// InterfaceOp returns the cost of one software/hardware interface
// operation (a register read or write of the scheduling hardware).
func (c CostModel) InterfaceOp(i Iface) Duration {
	if i == IfaceMSR {
		return Cycles(c.MSROpCycles, c.ClockHz)
	}
	return Cycles(c.ISAOpCycles, c.ClockHz)
}

// PredictCost returns the per-period cost of running the SLO-violation
// prediction (threshold computation + comparisons, §VIII-E).
func (c CostModel) PredictCost() Duration {
	return Cycles(c.PredictCycles, c.ClockHz)
}

// TickCost returns the modelled per-tick cost of one Algorithm 1
// iteration on a manager core: one interface op per remote queue
// length, a status read, a config write, plus the threshold
// computation.
func TickCost(groups int, c CostModel, i Iface) Duration {
	return Duration(groups+2)*c.InterfaceOp(i) + c.PredictCost()
}
