package policy

// Phase-aware planning (DESIGN.md §15). With heterogeneous core groups
// the Erlang-C threshold and the manager period stop being global: an
// accelerator class with 2 groups and a 5x speedup wants a different
// N* and a different tick cadence than the general-purpose pool. A
// ClassPlan holds one ThresholdModel and period per core class;
// internal/core consults it only when groups are heterogeneous, so
// homogeneous configurations never touch this path (byte-identity).

// ClassPlan is the per-class planning table: one threshold model and
// manager period per core class. The zero class is the general-purpose
// pool. Engine-free, like everything in this package.
type ClassPlan struct {
	models  []*ThresholdModel
	periods []Duration
}

// NewClassPlan returns an empty plan for the given number of classes.
// Classes without an explicit SetClass keep a nil model (threshold 0 —
// always migrate-eligible) and a zero period (caller must fill it).
func NewClassPlan(classes int) *ClassPlan {
	if classes <= 0 {
		panic("policy: ClassPlan needs at least one class")
	}
	return &ClassPlan{
		models:  make([]*ThresholdModel, classes),
		periods: make([]Duration, classes),
	}
}

// Classes returns the number of classes the plan covers.
func (p *ClassPlan) Classes() int { return len(p.models) }

// SetClass installs the threshold model and manager period for class c.
func (p *ClassPlan) SetClass(c int, m *ThresholdModel, period Duration) {
	p.models[c] = m
	p.periods[c] = period
}

// Threshold returns class c's migration threshold for the given
// offered load per group of that class. A class without a model
// returns 0 (every queued request counts as migratable).
//
//altolint:hotpath
func (p *ClassPlan) Threshold(c int, offered float64) int {
	m := p.models[c]
	if m == nil {
		return 0
	}
	return m.Threshold(offered)
}

// Period returns class c's configured manager period.
func (p *ClassPlan) Period(c int) Duration { return p.periods[c] }

// EffectivePeriod returns class c's period stretched by the measured
// tick cost, exactly as the global EffectivePeriod does.
//
//altolint:hotpath
func (p *ClassPlan) EffectivePeriod(c int, tickCost Duration) Duration {
	return EffectivePeriod(p.periods[c], tickCost)
}

// CanMigrate answers "can this request migrate now?" under the
// migrate-once-per-phase contract. ALTOCUMULUS restricts a request to
// one migration (§VI) so queueing estimates stay honest; with phase
// chains the restriction is scoped to the current phase — the executor
// clears the Migrated latch at every phase boundary, so each phase may
// migrate at most once, still guarded by the Algorithm 1 line 8 check.
// allowRemigration lifts the restriction entirely (the existing
// escape hatch, unchanged).
//
//altolint:hotpath
func CanMigrate(migratedThisPhase, allowRemigration bool) bool {
	return allowRemigration || !migratedThisPhase
}
