package policy

import (
	"fmt"
	"math"
	"testing"
)

// refErlangC is an independent Erlang-C evaluation for the agreement
// test: the textbook closed form
//
//	C_k(A) = (A^k/k!)·k/(k−A) / (Σ_{i<k} A^i/i! + (A^k/k!)·k/(k−A))
//
// computed in log space (log-sum-exp over lnΓ) so it stays finite at
// k = 4096, where A^k and k! overflow float64 by thousands of orders
// of magnitude. Deliberately NOT the production recurrence
// (queueing.ErlangC uses the Erlang-B iteration): two formulations
// agreeing at every operating point is the drift pin.
func refErlangC(k int, a float64) float64 {
	if a <= 0 {
		return 0
	}
	if a >= float64(k) {
		return 1
	}
	lnA := math.Log(a)
	lts := make([]float64, k+1) // lts[i] = ln(A^i/i!)
	maxLt := math.Inf(-1)
	for i := 0; i <= k; i++ {
		lg, _ := math.Lgamma(float64(i) + 1)
		lts[i] = float64(i)*lnA - lg
		if lts[i] > maxLt {
			maxLt = lts[i]
		}
	}
	var body float64
	for i := 0; i < k; i++ {
		body += math.Exp(lts[i] - maxLt)
	}
	tail := math.Exp(lts[k]-maxLt) * float64(k) / (float64(k) - a)
	return tail / (body + tail)
}

// refThreshold evaluates Eqn. 2 over the reference Erlang-C with the
// model's clamping contract.
func refThreshold(m *ThresholdModel, a float64) int {
	var nq float64
	if a >= float64(m.K) {
		nq = math.Inf(1)
	} else if a > 0 {
		nq = refErlangC(m.K, a) * a / (float64(m.K) - a)
	}
	if math.IsInf(nq, 1) {
		return m.UpperBound()
	}
	t := int(math.Round(m.A*(m.C*nq+m.D) + m.B))
	if t < 1 {
		t = 1
	}
	if ub := m.UpperBound(); t > ub {
		t = ub
	}
	return t
}

// rackScaleLoads spans the operating points a rack tier exposes the
// model to: essentially idle (the very-low-λ regime a 4096-core pool
// sits in when the rack spreads a light offered load), through
// moderate, to near saturation.
func rackScaleLoads(k int) []float64 {
	f := float64(k)
	return []float64{
		0, 1e-12, 1e-9, 1e-6, 1e-3, 0.01, 0.1, 0.5, 1, 2,
		f * 0.25, f * 0.5, f * 0.75, f * 0.9, f * 0.99, f * 0.999, f, f * 2,
	}
}

// TestThresholdRackScaleAgreement is the rack-scale drift pin for the
// SLO threshold model: at worker pools up to 4096 cores — far beyond
// the single-server core counts the model was written against — both
// the memoized Threshold path and the uncached ThresholdExact path
// must agree with an independent log-space Erlang-C evaluation at
// every load, and must sit exactly at the floor threshold of 1 in the
// very-low-λ regime (no NaN, no underflow garbage, no off-by-steps).
// The memoized cases keep K·L modest so the breakpoint-table build
// stays cheap; the k=4096, L=10 row exercises the exact path the memo
// falls back to beyond its table budget.
func TestThresholdRackScaleAgreement(t *testing.T) {
	cases := []struct {
		k    int
		l    float64
		memo bool // also drive the memoized Threshold path
	}{
		{16, 10, true},
		{256, 4, true},
		{1024, 1, true},
		{4096, 0.004, true}, // rack-wide pool, tiny table: memo at full width
		{4096, 10, false},   // rack-wide pool, real SLO: exact path only
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("k=%d/L=%g", c.k, c.l), func(t *testing.T) {
			m := NewThresholdModel(c.k, c.l)
			for _, a := range rackScaleLoads(c.k) {
				want := refThreshold(m, a)
				exact := m.ThresholdExact(a)
				// One step of slack covers float rounding right at a
				// breakpoint; anything more is model drift.
				if d := exact - want; d < -1 || d > 1 {
					t.Fatalf("ThresholdExact(k=%d, L=%g, a=%g) = %d, reference Erlang-C gives %d",
						c.k, c.l, a, exact, want)
				}
				if a <= 0.01 && exact != 1 {
					t.Fatalf("very low load a=%g at k=%d: ThresholdExact = %d, want the floor threshold 1",
						a, c.k, exact)
				}
				if c.memo {
					got := m.Threshold(a)
					if d := got - want; d < -1 || d > 1 {
						t.Fatalf("Threshold(k=%d, L=%g, a=%g) = %d, reference Erlang-C gives %d",
							c.k, c.l, a, got, want)
					}
					if a <= 0.01 && got != 1 {
						t.Fatalf("very low load a=%g at k=%d: memoized Threshold = %d, want 1", a, c.k, got)
					}
				}
			}
		})
	}
}
