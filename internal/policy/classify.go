package policy

// Pattern is the queue-length-vector classification of §VI.
type Pattern int

const (
	// PatternNone: no imbalance pattern detected.
	PatternNone Pattern = iota
	// PatternHill: one queue towers over the rest; its owner fans work
	// out to the shortest queues.
	PatternHill
	// PatternValley: one queue is far below the rest; every other
	// manager sends one MIGRATE toward it.
	PatternValley
	// PatternPairing: a gradual imbalance; the i-th longest queue pairs
	// with the i-th shortest.
	PatternPairing
)

func (p Pattern) String() string {
	switch p {
	case PatternHill:
		return "hill"
	case PatternValley:
		return "valley"
	case PatternPairing:
		return "pairing"
	default:
		return "none"
	}
}

// Classify runs the §VI pattern classification for manager `self` over
// the synchronized queue-length vector. It returns the detected pattern
// and the destination queue ids this manager should send MIGRATEs to
// (empty when the pattern assigns this manager no role). bulk is the
// imbalance threshold; conc caps the fan-out.
//
// The function is pure so that all managers, seeing the same vector,
// reach consistent decisions — the property §VI relies on ("each
// manager's pattern classification gives the same pattern result").
func Classify(view []int, self, bulk, conc int) (Pattern, []int) {
	return ClassifyInto(view, self, bulk, conc, nil, nil)
}

// ClassifyInto is Classify with caller-provided scratch: order holds the
// rank permutation, dests the returned destination set (both reused from
// length 0). The every-Period manager tick uses scheduler-owned scratch
// so classification allocates nothing.
//
//altolint:hotpath
func ClassifyInto(view []int, self, bulk, conc int, order, dests []int) (Pattern, []int) {
	if len(view) < 2 {
		return PatternNone, nil
	}
	return ClassifyRanked(view, rankDescendingInto(view, order), self, bulk, conc, dests)
}

// ClassifyRanked is ClassifyInto for callers that maintain the rank
// permutation incrementally (RankTracker): order must hold the indices
// of view sorted by length descending, ties to the lower index — the
// exact rankDescendingInto order. order is read, never written.
//
//altolint:hotpath
func ClassifyRanked(view, order []int, self, bulk, conc int, dests []int) (Pattern, []int) {
	n := len(view)
	if n < 2 || self < 0 || self >= n {
		return PatternNone, nil
	}
	if conc > n-1 {
		conc = n - 1
	}
	if conc < 1 {
		conc = 1
	}
	longest, second := order[0], order[1]
	shortest, secondShortest := order[n-1], order[n-2]

	switch {
	case view[longest] >= view[second]+bulk:
		// Hill: only the peak's owner acts.
		if self != longest {
			return PatternHill, nil
		}
		dests = dests[:0]
		for i := n - 1; i >= 0 && len(dests) < conc; i-- {
			if d := order[i]; d != self {
				dests = append(dests, d) //altolint:allow hotalloc scratch reuse: dests is caller scratch sized to Groups, grows once
			}
		}
		return PatternHill, dests
	case view[shortest]+bulk <= view[secondShortest]:
		// Valley: everyone except the dip's owner sends one MIGRATE
		// toward it.
		if self == shortest {
			return PatternValley, nil
		}
		return PatternValley, append(dests[:0], shortest) //altolint:allow hotalloc scratch reuse: dests is caller scratch sized to Groups, grows once
	case view[longest]-view[shortest] >= bulk:
		// Pairing: top-i longest pairs with i-th shortest, i < conc.
		for i := 0; i < conc && i < n/2; i++ {
			if order[i] != self {
				continue
			}
			d := order[n-1-i]
			if d != self && view[self] > view[d] {
				return PatternPairing, append(dests[:0], d) //altolint:allow hotalloc scratch reuse: dests is caller scratch sized to Groups, grows once
			}
			return PatternPairing, nil
		}
		return PatternPairing, nil
	}
	return PatternNone, nil
}

// rankDescendingInto writes queue indices ordered by length descending
// into order (reused from length 0), ties broken by lower index for
// cross-manager determinism.
//
//altolint:hotpath
func rankDescendingInto(view, order []int) []int {
	n := len(view)
	order = order[:0]
	for i := 0; i < n; i++ {
		order = append(order, i) //altolint:allow hotalloc scratch reuse: order is caller scratch sized to Groups, grows once
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if view[b] > view[a] || (view[b] == view[a] && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}

// ShortestOthers returns up to k queue ids with the smallest lengths,
// excluding self — the destination set for threshold-triggered sheds.
func ShortestOthers(view []int, self, k int) []int {
	return ShortestOthersInto(view, self, k, nil, nil)
}

// ShortestOthersInto is ShortestOthers with caller-provided scratch
// (same contract as ClassifyInto).
//
//altolint:hotpath
func ShortestOthersInto(view []int, self, k int, order, out []int) []int {
	return ShortestOthersRanked(rankDescendingInto(view, order), self, k, out)
}

// ShortestOthersRanked is ShortestOthersInto over a precomputed rank
// permutation (same contract as ClassifyRanked).
//
//altolint:hotpath
func ShortestOthersRanked(order []int, self, k int, out []int) []int {
	out = out[:0]
	for i := len(order) - 1; i >= 0 && len(out) < k; i-- {
		if d := order[i]; d != self {
			out = append(out, d) //altolint:allow hotalloc scratch reuse: out is caller scratch sized to Groups, grows once
		}
	}
	return out
}
