package policy

import (
	"math/rand"
	"testing"
)

// TestRankTrackerMatchesSort is the reference-sort property test the
// RankTracker doc promises: after arbitrary Set sequences — sparse
// updates, bursts, equal rewrites, resets to zero — Order must equal
// rankDescendingInto over the same vector, for every prefix of the
// update stream (Order interleaves with Set, so partially-repaired
// state carries across calls).
func TestRankTrackerMatchesSort(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		tr := NewRankTracker(n)
		var scratch []int
		for step := 0; step < 300; step++ {
			// A burst touches between zero and n queues before the next
			// Order call, covering the d << n sparse case and the full
			// re-sort case alike.
			for burst := rng.Intn(n + 1); burst > 0; burst-- {
				q := rng.Intn(n)
				var v int
				switch rng.Intn(4) {
				case 0:
					v = 0 // idle
				case 1:
					v = tr.View()[q] // equal rewrite: must be dropped
				default:
					v = rng.Intn(50)
				}
				tr.Set(q, v)
			}
			got := tr.Order()
			scratch = rankDescendingInto(tr.View(), scratch)
			if len(got) != n || len(scratch) != n {
				t.Fatalf("seed %d step %d: order len %d, reference len %d, want %d", seed, step, len(got), len(scratch), n)
			}
			for r := range got {
				if got[r] != scratch[r] {
					t.Fatalf("seed %d step %d: rank %d is queue %d, reference %d (view %v)",
						seed, step, r, got[r], scratch[r], tr.View())
				}
			}
			// The inverse permutation must stay consistent.
			for r, q := range got {
				if tr.pos[q] != r {
					t.Fatalf("seed %d step %d: pos[%d] = %d, order says %d", seed, step, q, tr.pos[q], r)
				}
			}
		}
	}
}

// TestRankTrackerZeroAlloc gates the manager-tick contract: Set and
// Order on a warmed tracker allocate nothing.
func TestRankTrackerZeroAlloc(t *testing.T) {
	tr := NewRankTracker(256)
	rng := rand.New(rand.NewSource(7))
	vals := make([]int, 64)
	for i := range vals {
		vals[i] = rng.Intn(100)
	}
	k := 0
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			k++
			tr.Set((k*37)%256, vals[k%len(vals)])
		}
		tr.Order()
	})
	if allocs != 0 {
		t.Fatalf("RankTracker Set/Order allocates %.1f per tick, want 0", allocs)
	}
}
