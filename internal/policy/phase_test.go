package policy

import "testing"

func TestClassPlan(t *testing.T) {
	p := NewClassPlan(2)
	if p.Classes() != 2 {
		t.Fatalf("Classes = %d, want 2", p.Classes())
	}
	// Class 0: a real model; class 1 left unset (nil model).
	m := NewThresholdModel(15, 10)
	p.SetClass(0, m, 200*Nanosecond)
	p.SetClass(1, nil, 400*Nanosecond)

	if got, want := p.Threshold(0, 8), m.Threshold(8); got != want {
		t.Errorf("class 0 threshold %d, want model's %d", got, want)
	}
	if got := p.Threshold(1, 8); got != 0 {
		t.Errorf("nil-model class threshold %d, want 0", got)
	}
	if p.Period(0) != 200*Nanosecond || p.Period(1) != 400*Nanosecond {
		t.Errorf("periods %v/%v", p.Period(0), p.Period(1))
	}
	// Per-class EffectivePeriod matches the global helper.
	if got, want := p.EffectivePeriod(1, 300*Nanosecond), EffectivePeriod(400*Nanosecond, 300*Nanosecond); got != want {
		t.Errorf("EffectivePeriod %v, want %v", got, want)
	}
}

func TestNewClassPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for 0 classes")
		}
	}()
	NewClassPlan(0)
}

func TestCanMigrate(t *testing.T) {
	cases := []struct {
		migrated, allow, want bool
	}{
		{false, false, true}, // fresh phase: one migration allowed
		{true, false, false}, // already migrated this phase
		{true, true, true},   // remigration ablation lifts the latch
		{false, true, true},
	}
	for _, c := range cases {
		if got := CanMigrate(c.migrated, c.allow); got != c.want {
			t.Errorf("CanMigrate(%v, %v) = %v, want %v", c.migrated, c.allow, got, c.want)
		}
	}
}
