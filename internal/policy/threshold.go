package policy

import (
	"fmt"
	"math"

	"repro/internal/queueing"
)

// ThresholdModel is the paper's SLO-violation predictor (Eqn. 2):
//
//	E[T̂] = A_ · E[C_ · N̂q + D_] + B_  =  (A_·C_)·E[N̂q] + (A_·D_ + B_)
//
// The four constants are empirically determined per service-time
// distribution (§IV-A); Fig. 7(d) quotes a=1.01, c=0.998, b=d=0 for the
// Fixed distribution. K and L define the system: k worker cores and an
// SLO of L× the mean service time.
type ThresholdModel struct {
	K          int     // worker cores behind the queue
	L          float64 // SLO multiplier (SLO = L × mean service time)
	A, B, C, D float64 // Eqn. 2 constants

	// Memoized threshold table. E[T̂] is a monotone nondecreasing step
	// function of the offered load (A·C > 0), so instead of re-summing
	// the Erlang-C recurrence on every manager Period, Threshold builds
	// — once per (K, L, A, B, C, D) signature — the load breakpoints at
	// which the clamped threshold crosses each integer step, and answers
	// queries with a binary search over them. The table reproduces the
	// exact evaluation at every load (the breakpoints are bisected to
	// float convergence), comfortably inside the one-threshold-step
	// tolerance asserted by the table-agreement test.
	memo thresholdMemo
}

// thresholdMemo caches the breakpoint table together with the model
// signature it was built for; mutating any model field (directly or via
// Calibrate) invalidates it on the next Threshold call.
type thresholdMemo struct {
	valid            bool
	k                int
	l, a, b, c, d    float64
	cross            []float64 // cross[i] = least load with threshold >= i+2
	exactOnly        bool      // non-monotone constants: fall back to exact
	thresholdRebuilt uint64    // build count, exposed for tests
}

// maxMemoSteps bounds the table size; pathological K·L products fall
// back to exact evaluation rather than building a huge table.
const maxMemoSteps = 1 << 20

// NewThresholdModel returns a model with the paper's default constants
// (a=1.01, c=0.998, b=d=0), to be refined by Calibrate.
func NewThresholdModel(k int, l float64) *ThresholdModel {
	return &ThresholdModel{K: k, L: l, A: 1.01, B: 0, C: 0.998, D: 0}
}

// UpperBound returns T_upper = k·L + 1, the naive threshold beyond which
// essentially every arriving request violates the SLO (§IV-A).
func (m *ThresholdModel) UpperBound() int { return int(float64(m.K)*m.L) + 1 }

// Threshold returns E[T̂] for the given offered load in Erlangs. The
// result is clamped to [1, UpperBound]: a threshold below 1 would migrate
// everything, and above T_upper the prediction adds nothing.
//
// Steady-state calls are a table lookup (binary search over the memoized
// breakpoints); the Erlang-C series is only evaluated when the model
// constants change. See ThresholdExact for the uncached evaluation.
//
//altolint:hotpath
func (m *ThresholdModel) Threshold(offered float64) int {
	if !m.memo.matches(m) {
		m.rebuildMemo()
	}
	if m.memo.exactOnly {
		return m.ThresholdExact(offered)
	}
	if offered < 0 {
		offered = 0 // ExpectedQueueLength treats any a <= 0 as an empty queue
	}
	// t = 1 + |{i : cross[i] <= offered}|; cross is sorted ascending.
	cross := m.memo.cross
	lo, hi := 0, len(cross)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cross[mid] <= offered {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return 1 + lo
}

// ThresholdExact evaluates Eqn. 2 directly (one full Erlang-C
// recurrence), bypassing the memo table. The table-agreement test pins
// Threshold to this within one step.
func (m *ThresholdModel) ThresholdExact(offered float64) int {
	nq := queueing.ExpectedQueueLength(m.K, offered)
	if math.IsInf(nq, 1) {
		return m.UpperBound()
	}
	t := m.A*(m.C*nq+m.D) + m.B
	ti := int(math.Round(t))
	if ti < 1 {
		ti = 1
	}
	if ub := m.UpperBound(); ti > ub {
		ti = ub
	}
	return ti
}

// matches reports whether the memo was built for the model's current
// constants. The float comparisons are deliberately exact: this is a
// cache-key identity check (any bit-level change to the constants must
// force a rebuild), not a numeric-tolerance question.
func (mm *thresholdMemo) matches(m *ThresholdModel) bool {
	return mm.valid && mm.k == m.K && mm.l == m.L && //altolint:allow floatcmp cache-key identity: any bit change must invalidate the memo
		mm.a == m.A && mm.b == m.B && mm.c == m.C && mm.d == m.D
}

// rebuildMemo recomputes the breakpoint table for the current constants.
// For each threshold step t in [2, UpperBound] it bisects the least
// offered load at which ThresholdExact reaches t; monotonicity of
// E[N̂q] in the load (and A·C > 0) makes the bisection sound. The whole
// build is O(UpperBound · 64 · K) — microseconds, paid once per
// calibration instead of O(K) on every manager tick.
func (m *ThresholdModel) rebuildMemo() {
	mm := &m.memo
	mm.valid = true
	mm.k, mm.l = m.K, m.L
	mm.a, mm.b, mm.c, mm.d = m.A, m.B, m.C, m.D
	mm.thresholdRebuilt++
	ub := m.UpperBound()
	if m.A*m.C <= 0 || ub < 1 || ub > maxMemoSteps || m.K <= 0 {
		// Non-monotone or degenerate constants: serve exact evaluations.
		mm.exactOnly = true
		mm.cross = nil
		return
	}
	mm.exactOnly = false
	if cap(mm.cross) < ub-1 {
		mm.cross = make([]float64, 0, ub-1)
	}
	mm.cross = mm.cross[:0]
	for t := 2; t <= ub; t++ {
		// Invert the rounding and the linear map: threshold(a) >= t iff
		// E[N̂q](a) >= nqT. The -0.5 un-rounds; dividing by A·C > 0
		// preserves the inequality direction.
		nqT := ((float64(t)-0.5)-m.B)/m.A - m.D
		nqT /= m.C
		if nqT <= 0 {
			// Already reached at an empty queue; bisection would converge
			// to an infinitesimally positive load and miss offered == 0.
			mm.cross = append(mm.cross, 0)
			continue
		}
		lo, hi := 0.0, float64(m.K)
		for i := 0; i < 64 && lo < hi; i++ {
			mid := lo + (hi-lo)/2
			if queueing.ExpectedQueueLength(m.K, mid) >= nqT {
				hi = mid
			} else {
				lo = mid
			}
		}
		mm.cross = append(mm.cross, hi)
	}
}

// CalibrationPoint is one observation from a simulation sweep: at a given
// offered load, the queue length at which the first SLO-violating request
// arrived (the paper's definition of the measured T).
type CalibrationPoint struct {
	Offered   float64 // load in Erlangs
	ObservedT float64 // queue length at first SLO violation
}

// Calibrate fits the (A, B) constants of Eqn. 2 by ordinary least squares
// of ObservedT against C·E[N̂q]+D across the sweep, mirroring how the
// paper derives the constants "empirically ... based on factors such as
// the service time distribution". C and D are left at their current
// values (the paper folds the inner transformation into near-identity).
// It returns an error if fewer than two distinct points are provided.
func (m *ThresholdModel) Calibrate(points []CalibrationPoint) error {
	xs := make([]float64, 0, len(points))
	ys := make([]float64, 0, len(points))
	for _, p := range points {
		nq := queueing.ExpectedQueueLength(m.K, p.Offered)
		if math.IsInf(nq, 1) || math.IsNaN(nq) {
			continue
		}
		xs = append(xs, m.C*nq+m.D)
		ys = append(ys, p.ObservedT)
	}
	slope, intercept, ok := LinearFit(xs, ys)
	if !ok {
		return fmt.Errorf("policy: calibration needs >=2 usable points, got %d", len(xs))
	}
	m.A, m.B = slope, intercept
	return nil
}

// PredictViolation reports whether a request arriving to a queue of length
// qlen (under the given offered load) is predicted to violate the SLO.
func (m *ThresholdModel) PredictViolation(qlen int, offered float64) bool {
	return qlen > m.Threshold(offered)
}

// LinearFit performs ordinary least squares y = slope*x + intercept.
// Calibrate uses it to fit the paper's E[T̂] = a·E[c·N̂q+d]+b linear
// transformation from simulation sweeps; stats.LinearFit delegates here
// so the repository has one OLS implementation.
func LinearFit(xs, ys []float64) (slope, intercept float64, ok bool) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, false
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	// den suffers catastrophic cancellation when all xs are (nearly)
	// equal; compare against the magnitude of its terms, not exact zero.
	den := n*sxx - sx*sx
	if math.Abs(den) <= 1e-12*math.Abs(n*sxx) {
		return 0, 0, false
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, true
}
