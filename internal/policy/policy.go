// Package policy holds the engine-agnostic decision core of the
// ALTOCUMULUS runtime: the Erlang-C threshold model (Eqn. 2), the §VI
// Hill/Valley/Pairing queue-vector classification, migration planning
// (batch sizing, the Algorithm 1 line-8 guard, migrate-once candidate
// counting) and the MSR-vs-ISA software/hardware interface cost model.
//
// Everything here is a pure function of its inputs: no engine, no wall
// clock, no goroutines, no channels. The same bytes drive two consumers
// with opposite execution models —
//
//   - internal/core, the discrete-event simulator, feeds the policy with
//     sim-time queue snapshots and replays its MIGRATE/UPDATE plan
//     through internal/hwmsg and internal/fabric; and
//   - internal/live, the real goroutine runtime, feeds it wall-clock
//     queue snapshots behind the Clock seam and replays the plan over
//     channels.
//
// The altolint `enginefree` analyzer certifies the boundary: this
// package must never import internal/sim (directly or transitively),
// read the wall clock, or touch goroutines/channels.
package policy

// Duration is an engine-agnostic span of time in integer picoseconds —
// the same tick the simulator's sim.Time uses, so conversions between
// the two are exact integer casts and cost computations are
// bit-identical across consumers.
type Duration int64

// Time units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Nanoseconds returns the duration as float64 nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Clock is the seam between the policy layer and its consumer's notion
// of time. The simulator adapts sim.Engine.Now; the live runtime adapts
// a monotonic wall-clock reading. Implementations must be monotone
// nondecreasing; the zero instant is arbitrary (only differences are
// meaningful).
type Clock interface {
	Now() Duration
}

// BatchSize returns S = Bulk/Concurrency, the per-MIGRATE request count
// (§V-A), at least 1. A non-positive concurrency degenerates to the
// full bulk.
func BatchSize(bulk, concurrency int) int {
	if concurrency <= 0 {
		return bulk
	}
	s := bulk / concurrency
	if s < 1 {
		s = 1
	}
	return s
}

// GuardAllows implements Algorithm 1 line 8: a migration of batch
// requests from a source with srcLen queued toward a destination whose
// synchronized view shows dstView queued proceeds only when it leaves
// the source no shorter than it makes the destination —
// q[src]−S ≥ q[dst]+S. Migrations failing the guard would bounce load
// back and forth without improving tail latency.
func GuardAllows(srcLen, dstView, batch int) bool {
	return srcLen-batch >= dstView+batch
}

// MigratableCount returns how many requests a MIGRATE may collect from
// a queue of length qlen, walking candidates from the chosen end
// (i = 0 is the first candidate) and stopping at the batch size, the
// end of the queue, or the first candidate rejected by blocked —
// typically the migrate-once restriction (§V-B restriction 4): a
// request that has already migrated pins itself and everything behind
// it.
//
//altolint:hotpath
func MigratableCount(qlen, batch int, blocked func(i int) bool) int {
	n := 0
	for n < batch && n < qlen && !blocked(n) {
		n++
	}
	return n
}

// EffectivePeriod stretches the configured manager period so a software
// runtime never iterates faster than its own execution: when the period
// is shorter than twice the per-tick runtime cost (e.g. MSR ops at a
// 100 ns period), the effective period is 2×cost, capping the runtime's
// manager-core duty cycle at 50% so request dispatch is never starved.
func EffectivePeriod(period, runtimeCost Duration) Duration {
	if min := 2 * runtimeCost; period < min {
		return min
	}
	return period
}
