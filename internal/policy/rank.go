package policy

// RankTracker maintains the descending-queue-length rank permutation
// incrementally, so a manager tick over a wide topology pays for the
// queues whose depth changed since the last tick, not for every queue.
//
// The comparator — length descending, ties broken by lower index — is a
// strict total order, so the sorted permutation is unique; the tracker
// repairs it by bubbling each changed element to its place. Set is O(1)
// (it records the change in a dirty set); Order repairs and returns the
// permutation in O(dirty + total displacement). With d changed queues
// in a window of n, a tick costs O(d) instead of the O(n²) worst case
// of re-sorting from scratch — the "4096-core group with 40 busy cores
// pays for 40, not 4096" contract.
//
// Correctness of the bubble repair: all comparisons read final values
// (Set updates the vector immediately), and Order repeats repair
// passes over the dirty set until one makes no move. A single pass is
// not enough — a dirty element's bubble can stop at a neighbor that is
// itself dirty and out of place, never crossing it to reach its true
// rank — but at the fixpoint every dirty element is adjacent-consistent,
// settled elements keep their (sorted) relative order, so the whole
// array is adjacent-consistent and, the comparator being total, equals
// the unique sorted permutation. Every swap removes one adjacent
// inversion under the final comparator, so the loop terminates after
// at most the total displacement in swaps. TestRankTrackerMatchesSort
// drives this against the reference insertion sort.
type RankTracker struct {
	view  []int
	order []int // current permutation: order[r] = queue with rank r
	pos   []int // inverse: pos[q] = rank of queue q
	dirty []int // queues whose value changed since the last Order
	mark  []bool
}

// NewRankTracker returns a tracker over n queues, all at depth zero.
// The initial permutation is the identity — the correct descending
// order for an all-zero vector under the lower-index tie-break.
func NewRankTracker(n int) *RankTracker {
	t := &RankTracker{
		view:  make([]int, n),
		order: make([]int, n),
		pos:   make([]int, n),
		dirty: make([]int, 0, n),
		mark:  make([]bool, n),
	}
	for i := range t.order {
		t.order[i] = i
		t.pos[i] = i
	}
	return t
}

// View returns the live queue-length vector. Callers may read it freely
// (e.g. to pass to DecideRanked) but must write through Set.
func (t *RankTracker) View() []int { return t.view }

// Len returns the number of tracked queues.
func (t *RankTracker) Len() int { return len(t.view) }

// Set records queue q's depth. Equal writes are dropped; changed queues
// join the dirty set for the next Order call.
//
//altolint:hotpath
func (t *RankTracker) Set(q, v int) {
	if t.view[q] == v {
		return
	}
	t.view[q] = v
	if !t.mark[q] {
		t.mark[q] = true
		t.dirty = append(t.dirty, q) //altolint:allow hotalloc scratch reuse: dirty is preallocated to n, never grows
	}
}

// Order repairs the permutation for all dirty queues and returns it.
// The returned slice is owned by the tracker and valid until the next
// Set; callers must not modify it.
//
//altolint:hotpath
func (t *RankTracker) Order() []int {
	for moved := len(t.dirty) > 0; moved; {
		moved = false
		for _, q := range t.dirty {
			if t.reposition(q) {
				moved = true
			}
		}
	}
	for _, q := range t.dirty {
		t.mark[q] = false
	}
	t.dirty = t.dirty[:0]
	return t.order
}

// ranksBefore reports whether queue a sorts before queue b: longer
// first, ties to the lower index — the same comparator as
// rankDescendingInto.
func (t *RankTracker) ranksBefore(a, b int) bool {
	if t.view[a] != t.view[b] {
		return t.view[a] > t.view[b]
	}
	return a < b
}

// reposition bubbles queue q from its current rank to an
// adjacent-consistent rank, updating the inverse permutation as it
// goes, and reports whether it moved.
//
//altolint:hotpath
func (t *RankTracker) reposition(q int) bool {
	start := t.pos[q]
	p := start
	for p > 0 && t.ranksBefore(q, t.order[p-1]) {
		o := t.order[p-1]
		t.order[p-1], t.order[p] = q, o
		t.pos[o] = p
		p--
	}
	for p+1 < len(t.order) && t.ranksBefore(t.order[p+1], q) {
		o := t.order[p+1]
		t.order[p+1], t.order[p] = q, o
		t.pos[o] = p
		p++
	}
	t.pos[q] = p
	return p != start
}
