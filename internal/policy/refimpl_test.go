package policy

// This file vendors the pre-refactor decision logic verbatim from
// internal/core as it stood before the policy extraction (git history:
// patterns.go and the Scheduler.decide sequence). It exists only as the
// reference side of the differential tests in property_test.go: the
// extracted policy package must agree with it decision-for-decision on
// every recorded or generated queue vector. Do not "fix" bugs here — if
// the two sides disagree, the refactor drifted.

func refClassify(view []int, self, bulk, conc int) (Pattern, []int) {
	n := len(view)
	if n < 2 || self < 0 || self >= n {
		return PatternNone, nil
	}
	if conc > n-1 {
		conc = n - 1
	}
	if conc < 1 {
		conc = 1
	}
	order := refRankDescending(view)
	longest, second := order[0], order[1]
	shortest, secondShortest := order[n-1], order[n-2]

	switch {
	case view[longest] >= view[second]+bulk:
		if self != longest {
			return PatternHill, nil
		}
		var dests []int
		for i := n - 1; i >= 0 && len(dests) < conc; i-- {
			if d := order[i]; d != self {
				dests = append(dests, d)
			}
		}
		return PatternHill, dests
	case view[shortest]+bulk <= view[secondShortest]:
		if self == shortest {
			return PatternValley, nil
		}
		return PatternValley, []int{shortest}
	case view[longest]-view[shortest] >= bulk:
		for i := 0; i < conc && i < n/2; i++ {
			if order[i] != self {
				continue
			}
			d := order[n-1-i]
			if d != self && view[self] > view[d] {
				return PatternPairing, []int{d}
			}
			return PatternPairing, nil
		}
		return PatternPairing, nil
	}
	return PatternNone, nil
}

func refRankDescending(view []int) []int {
	n := len(view)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, i)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if view[b] > view[a] || (view[b] == view[a] && b < a) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order
}

func refShortestOthers(view []int, self, k int) []int {
	order := refRankDescending(view)
	var out []int
	for i := len(order) - 1; i >= 0 && len(out) < k; i-- {
		if d := order[i]; d != self {
			out = append(out, d)
		}
	}
	return out
}

// refDecide mirrors the pre-refactor Scheduler.decide sequence: pattern
// role first (when enabled), then the bare threshold trigger shedding to
// the shortest queues.
func refDecide(view []int, self, threshold, bulk, conc int, patterns bool) (Trigger, Pattern, []int) {
	if conc > len(view)-1 {
		conc = len(view) - 1
	}
	if patterns {
		pattern, dests := refClassify(view, self, bulk, conc)
		if len(dests) > 0 {
			return TriggerPattern, pattern, dests
		}
	}
	if view[self] > threshold {
		return TriggerThreshold, PatternNone, refShortestOthers(view, self, conc)
	}
	return TriggerNone, PatternNone, nil
}
