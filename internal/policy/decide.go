package policy

// Trigger identifies which Algorithm 1 condition selected the migration
// destinations for a tick.
type Trigger int

const (
	// TriggerNone: neither condition fired; no migrations this tick.
	TriggerNone Trigger = iota
	// TriggerPattern: the §VI pattern classification assigned this
	// manager a role.
	TriggerPattern
	// TriggerThreshold: the local queue exceeded the predicted SLO
	// threshold and sheds to the shortest queues.
	TriggerThreshold
)

func (t Trigger) String() string {
	switch t {
	case TriggerPattern:
		return "pattern"
	case TriggerThreshold:
		return "threshold"
	default:
		return "none"
	}
}

// Decide implements predict(): one manager's per-tick migration decision
// over the synchronized queue-length vector. view[self] must already
// hold the manager's own (fresh) queue length; threshold is the Eqn. 2
// prediction for the current load; bulk and conc are the PR-configured
// imbalance threshold and fan-out cap; patterns gates the §VI
// classification (false under the DisablePatterns ablation).
//
// A pattern that assigns this manager a role takes precedence over the
// bare threshold trigger (predict() returns on either condition). The
// returned destination slice aliases dests (caller scratch, same
// contract as ClassifyInto); it is empty or nil when nothing fired.
//
//altolint:hotpath
func Decide(view []int, self, threshold, bulk, conc int, patterns bool, order, dests []int) (Trigger, Pattern, []int) {
	return DecideRanked(view, rankDescendingInto(view, order), self, threshold, bulk, conc, patterns, dests)
}

// DecideRanked is Decide over a precomputed rank permutation (the
// RankTracker's incrementally repaired order; same contract as
// ClassifyRanked). The wide-topology manager tick uses this so a tick
// pays for the queues that changed, not for re-ranking every queue.
//
//altolint:hotpath
func DecideRanked(view, order []int, self, threshold, bulk, conc int, patterns bool, dests []int) (Trigger, Pattern, []int) {
	if conc > len(view)-1 {
		conc = len(view) - 1
	}
	if patterns {
		pattern, d := ClassifyRanked(view, order, self, bulk, conc, dests)
		if len(d) > 0 {
			return TriggerPattern, pattern, d
		}
	}
	// Threshold condition: local queue beyond T sheds to the shortest
	// queues.
	if view[self] > threshold {
		return TriggerThreshold, PatternNone, ShortestOthersRanked(order, self, conc, dests)
	}
	return TriggerNone, PatternNone, nil
}
