package policy

import (
	"math"
	"testing"

	"repro/internal/queueing"
)

func TestThresholdModelDefaults(t *testing.T) {
	m := NewThresholdModel(64, 10)
	if m.UpperBound() != 641 {
		t.Fatalf("UpperBound = %d, want 641 (k*L+1)", m.UpperBound())
	}
	// At saturation the threshold caps at the upper bound.
	if got := m.Threshold(64); got != 641 {
		t.Fatalf("saturated threshold = %d", got)
	}
	// At trivial load the threshold floors at 1.
	if got := m.Threshold(0.001); got != 1 {
		t.Fatalf("idle threshold = %d", got)
	}
	// Threshold is nondecreasing with load.
	prev := 0
	for _, a := range []float64{10, 30, 50, 60, 62, 63, 63.5, 63.9} {
		th := m.Threshold(a)
		if th < prev {
			t.Fatalf("threshold decreased at A=%v: %d < %d", a, th, prev)
		}
		prev = th
	}
}

func TestCalibrate(t *testing.T) {
	m := NewThresholdModel(64, 10)
	// Synthetic ground truth: T = 2.0*E[Nq] + 30.
	var pts []CalibrationPoint
	for _, load := range []float64{0.95, 0.96, 0.97, 0.98, 0.99} {
		a := load * 64
		pts = append(pts, CalibrationPoint{
			Offered:   a,
			ObservedT: 2.0*(m.C*queueing.ExpectedQueueLength(64, a)+m.D) + 30,
		})
	}
	if err := m.Calibrate(pts); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-2.0) > 1e-6 || math.Abs(m.B-30) > 1e-4 {
		t.Fatalf("calibrated A=%v B=%v", m.A, m.B)
	}
	// Round trip: model should now reproduce the synthetic T.
	a := 0.97 * 64
	want := int(math.Round(2.0*(m.C*queueing.ExpectedQueueLength(64, a)+m.D) + 30))
	if got := m.Threshold(a); got != want {
		t.Fatalf("threshold after calibration = %d, want %d", got, want)
	}
}

func TestCalibrateErrors(t *testing.T) {
	m := NewThresholdModel(16, 10)
	if err := m.Calibrate(nil); err == nil {
		t.Fatal("empty calibration should fail")
	}
	// Saturated points are skipped; only one usable point -> error.
	pts := []CalibrationPoint{
		{Offered: 16, ObservedT: 100}, // skipped (Inf E[Nq])
		{Offered: 15, ObservedT: 80},
	}
	if err := m.Calibrate(pts); err == nil {
		t.Fatal("single usable point should fail")
	}
}

func TestPredictViolation(t *testing.T) {
	m := NewThresholdModel(64, 10)
	a := 0.99 * 64
	th := m.Threshold(a)
	if m.PredictViolation(th, a) {
		t.Fatal("at threshold should not predict violation")
	}
	if !m.PredictViolation(th+1, a) {
		t.Fatal("above threshold should predict violation")
	}
}

// TestThresholdTableAgreement pins the memoized table to the exact
// Erlang-C evaluation within one threshold step, across the full stable
// load range and across recalibration (the satellite acceptance bound;
// in practice the breakpoint table reproduces the exact value).
func TestThresholdTableAgreement(t *testing.T) {
	for _, cfg := range []struct {
		k int
		l float64
	}{{64, 10}, {16, 10}, {8, 5}, {2, 20}, {1, 3}} {
		m := NewThresholdModel(cfg.k, cfg.l)
		check := func() {
			t.Helper()
			for i := 0; i <= 4000; i++ {
				a := float64(cfg.k) * float64(i) / 4000 * 1.05 // past saturation
				table, exact := m.Threshold(a), m.ThresholdExact(a)
				if d := table - exact; d < -1 || d > 1 {
					t.Fatalf("k=%d L=%v A=%v: table %d vs exact %d",
						cfg.k, cfg.l, a, table, exact)
				}
			}
		}
		check()
		// Recalibration must invalidate the table.
		m.A, m.B, m.C, m.D = 2.0, 30, 1.5, 0.25
		check()
		// Non-monotone constants fall back to exact evaluation.
		m.A = -1
		check()
	}
}

// TestThresholdMemoRebuilds verifies the table is built once per
// constant signature, not per call.
func TestThresholdMemoRebuilds(t *testing.T) {
	m := NewThresholdModel(64, 10)
	for i := 0; i < 100; i++ {
		m.Threshold(float64(i % 64))
	}
	if n := m.memo.thresholdRebuilt; n != 1 {
		t.Fatalf("rebuilt %d times for one signature, want 1", n)
	}
	m.C = 0.9
	m.Threshold(32)
	m.Threshold(33)
	if n := m.memo.thresholdRebuilt; n != 2 {
		t.Fatalf("rebuilt %d times after one mutation, want 2", n)
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept, ok := LinearFit(xs, ys)
	if !ok || math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("LinearFit = %v, %v, %v", slope, intercept, ok)
	}
	if _, _, ok := LinearFit([]float64{1}, []float64{2}); ok {
		t.Fatal("single point must not fit")
	}
	if _, _, ok := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); ok {
		t.Fatal("degenerate xs must not fit")
	}
}

func BenchmarkThreshold(b *testing.B) {
	m := NewThresholdModel(64, 10)
	loads := [8]float64{1, 10, 30, 50, 60, 62, 63, 63.9}
	m.Threshold(1) // build the table outside the timed region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Threshold(loads[i&7])
	}
}

func BenchmarkThresholdExact(b *testing.B) {
	m := NewThresholdModel(64, 10)
	loads := [8]float64{1, 10, 30, 50, 60, 62, 63, 63.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ThresholdExact(loads[i&7])
	}
}
