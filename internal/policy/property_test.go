package policy

import "testing"

// lcg is the deterministic generator for every property test here: no
// global RNG (altolint detnow) and identical corpora on every run.
func lcg(s *uint64) uint64 {
	*s = *s*6364136223846793005 + 1442695040888963407
	return *s
}

// genView fills a fresh queue vector: size 2..9, lengths drawn from a
// spread that rotates between tight (many ties), moderate, and wide.
func genView(s *uint64) []int {
	n := 2 + int(lcg(s)%8)
	spreads := [4]uint64{3, 12, 60, 1000}
	spread := spreads[lcg(s)%4]
	view := make([]int, n)
	for i := range view {
		view[i] = int(lcg(s) % spread)
	}
	return view
}

// edgeViews are hand-picked shapes: exact ties, single spikes, dips,
// staircases, and degenerate sizes — the places rank order and the
// >= / <= boundaries in the classification can silently flip.
var edgeViews = [][]int{
	{0, 0},
	{5, 5},
	{16, 0},
	{0, 16},
	{7, 7, 7, 7},
	{48, 0, 0, 0},
	{0, 48, 48, 48},
	{10, 10, 10, 42},
	{42, 10, 10, 10},
	{1, 2, 3, 4, 5, 6, 7, 8},
	{8, 7, 6, 5, 4, 3, 2, 1},
	{100, 100, 0, 0},
	{31, 16, 16, 1},
	{17, 16, 15, 16, 17},
	{0, 1, 0, 1, 0, 1},
	{1000, 999, 2, 1},
}

// TestDifferentialClassify checks the extracted classification against
// the vendored pre-refactor implementation across the edge corpus and a
// large generated corpus: every (view, self, bulk, conc) must agree on
// both the pattern and the destination list.
func TestDifferentialClassify(t *testing.T) {
	seed := uint64(1)
	check := func(view []int, bulk, conc int) {
		t.Helper()
		for self := 0; self < len(view); self++ {
			gotP, gotD := Classify(view, self, bulk, conc)
			refP, refD := refClassify(view, self, bulk, conc)
			if gotP != refP || !sameInts(gotD, refD) {
				t.Fatalf("Classify(%v, self=%d, bulk=%d, conc=%d) = (%v, %v); pre-refactor gives (%v, %v)",
					view, self, bulk, conc, gotP, gotD, refP, refD)
			}
		}
	}
	for _, view := range edgeViews {
		for _, bulk := range []int{1, 8, 16, 48} {
			for _, conc := range []int{1, 2, 7, 100} {
				check(view, bulk, conc)
			}
		}
	}
	for trial := 0; trial < 5000; trial++ {
		view := genView(&seed)
		bulk := 1 + int(lcg(&seed)%48)
		conc := 1 + int(lcg(&seed)%8)
		check(view, bulk, conc)
	}
}

// TestDifferentialDecide extends the differential to the full per-tick
// decision (pattern precedence plus the threshold trigger), including
// the DisablePatterns ablation.
func TestDifferentialDecide(t *testing.T) {
	seed := uint64(2)
	order := make([]int, 0, 16)
	dests := make([]int, 0, 16)
	for trial := 0; trial < 5000; trial++ {
		view := genView(&seed)
		bulk := 1 + int(lcg(&seed)%48)
		conc := 1 + int(lcg(&seed)%8)
		threshold := int(lcg(&seed) % 64)
		patterns := lcg(&seed)%4 != 0
		for self := 0; self < len(view); self++ {
			gotT, gotP, gotD := Decide(view, self, threshold, bulk, conc, patterns, order, dests)
			refT, refP, refD := refDecide(view, self, threshold, bulk, conc, patterns)
			if gotT != refT || gotP != refP || !sameInts(gotD, refD) {
				t.Fatalf("Decide(%v, self=%d, t=%d, bulk=%d, conc=%d, patterns=%v) = (%v, %v, %v); pre-refactor gives (%v, %v, %v)",
					view, self, threshold, bulk, conc, patterns, gotT, gotP, gotD, refT, refP, refD)
			}
		}
	}
}

// TestDecideProperties checks the invariants every consumer leans on:
// destinations never include self or repeat, respect the concurrency
// cap, the input vector is never mutated, all managers agree on the
// pattern, and the threshold trigger fires exactly when the local queue
// exceeds T and no pattern assigned a role.
func TestDecideProperties(t *testing.T) {
	seed := uint64(3)
	for trial := 0; trial < 5000; trial++ {
		view := genView(&seed)
		n := len(view)
		bulk := 1 + int(lcg(&seed)%48)
		conc := 1 + int(lcg(&seed)%8)
		threshold := int(lcg(&seed) % 64)
		snapshot := append([]int(nil), view...)

		firstPattern, _ := Classify(view, 0, bulk, conc)
		for self := 0; self < n; self++ {
			pattern, _ := Classify(view, self, bulk, conc)
			if pattern != firstPattern {
				t.Fatalf("view %v: manager %d classifies %v, manager 0 classifies %v — §VI consensus broken",
					view, self, pattern, firstPattern)
			}
			trig, _, dests := Decide(view, self, threshold, bulk, conc, true, nil, nil)
			limit := conc
			if limit > n-1 {
				limit = n - 1
			}
			if len(dests) > limit {
				t.Fatalf("view %v self %d: %d dests exceeds concurrency cap %d", view, self, len(dests), limit)
			}
			seen := make([]bool, n)
			for _, d := range dests {
				if d < 0 || d >= n {
					t.Fatalf("view %v self %d: dest %d out of range", view, self, d)
				}
				if d == self {
					t.Fatalf("view %v self %d: self-migration planned", view, self)
				}
				if seen[d] {
					t.Fatalf("view %v self %d: duplicate dest %d", view, self, d)
				}
				seen[d] = true
			}
			if trig == TriggerThreshold && view[self] <= threshold {
				t.Fatalf("view %v self %d: threshold trigger with qlen %d <= T %d",
					view, self, view[self], threshold)
			}
			if trig == TriggerNone && view[self] > threshold {
				t.Fatalf("view %v self %d: qlen %d > T %d but nothing fired", view, self, view[self], threshold)
			}
		}
		if !sameInts(view, snapshot) {
			t.Fatalf("Decide mutated its input: %v -> %v", snapshot, view)
		}
	}
}

// TestGuardProperties checks Algorithm 1 line 8 semantically, not just
// arithmetically: the guard never lets a source shed to a queue it does
// not strictly dominate, an allowed migration can never be immediately
// reversed (no ping-pong), and shrinking the batch never turns an
// allowed migration into a forbidden one.
func TestGuardProperties(t *testing.T) {
	seed := uint64(4)
	for trial := 0; trial < 20000; trial++ {
		srcLen := int(lcg(&seed)%1024) - 8
		dstView := int(lcg(&seed)%1024) - 8
		batch := 1 + int(lcg(&seed)%64)
		if !GuardAllows(srcLen, dstView, batch) {
			continue
		}
		if srcLen <= dstView {
			t.Fatalf("guard allowed src %d -> dst %d (batch %d): source does not dominate", srcLen, dstView, batch)
		}
		if GuardAllows(dstView+batch, srcLen-batch, batch) {
			t.Fatalf("ping-pong: src %d -> dst %d (batch %d) allowed in both directions", srcLen, dstView, batch)
		}
		for b := 1; b < batch; b++ {
			if !GuardAllows(srcLen, dstView, b) {
				t.Fatalf("guard non-monotone: batch %d allowed but smaller batch %d forbidden (src %d dst %d)",
					batch, b, srcLen, dstView)
			}
		}
	}
}

// TestPlanSizesNeverNegative fuzzes the batch planners with hostile
// inputs (zero or negative concurrency, negative queue lengths, negative
// batch sizes): a plan must never go negative or exceed its bounds, and
// MigratableCount must honor the first blocked candidate exactly.
func TestPlanSizesNeverNegative(t *testing.T) {
	seed := uint64(5)
	for bulk := 1; bulk <= 64; bulk++ {
		for conc := -4; conc <= 64; conc++ {
			s := BatchSize(bulk, conc)
			if s < 1 || s > bulk {
				t.Fatalf("BatchSize(%d, %d) = %d, want within [1, %d]", bulk, conc, s, bulk)
			}
		}
	}
	for trial := 0; trial < 20000; trial++ {
		qlen := int(lcg(&seed)%128) - 8
		batch := int(lcg(&seed)%72) - 8
		mask := lcg(&seed)
		blocked := func(i int) bool { return i < 64 && mask&(1<<uint(i)) != 0 }
		n := MigratableCount(qlen, batch, blocked)
		if n < 0 {
			t.Fatalf("MigratableCount(%d, %d) = %d: negative plan", qlen, batch, n)
		}
		bound := batch
		if qlen < bound {
			bound = qlen
		}
		if bound < 0 {
			bound = 0
		}
		if n > bound {
			t.Fatalf("MigratableCount(%d, %d) = %d exceeds its bound %d", qlen, batch, n, bound)
		}
		for i := 0; i < n; i++ {
			if blocked(i) {
				t.Fatalf("MigratableCount(%d, %d) = %d includes blocked candidate %d", qlen, batch, n, i)
			}
		}
		if n < batch && n < qlen && !blocked(n) {
			t.Fatalf("MigratableCount(%d, %d) = %d stopped early with candidate %d unblocked", qlen, batch, n, n)
		}
	}
}

// modelTask is one request in the double-migration model: it remembers
// how many times a migration plan has moved it.
type modelTask struct {
	id   int
	hops int
}

// TestDoubleMigrationModel runs the full planning pipeline (Decide ->
// BatchSize -> GuardAllows -> MigratableCount -> tail transfer) over a
// model of G queues for many rounds, with the migrate-once restriction
// expressed exactly as both engines express it: a candidate that has
// already hopped blocks itself and everything behind it. No task may
// ever hop twice, and no task may be lost or duplicated.
func TestDoubleMigrationModel(t *testing.T) {
	const (
		groups = 6
		bulk   = 8
		conc   = 3
		rounds = 4000
	)
	seed := uint64(6)
	queues := make([][]modelTask, groups)
	nextID := 0
	total := 0
	view := make([]int, groups)
	order := make([]int, 0, groups)
	dests := make([]int, 0, groups)

	for round := 0; round < rounds; round++ {
		// Deterministic skewed arrivals: bursts land on a rotating hot
		// group; a few departures drain from heads.
		hot := int(lcg(&seed) % groups)
		burst := int(lcg(&seed) % 12)
		for i := 0; i < burst; i++ {
			queues[hot] = append(queues[hot], modelTask{id: nextID})
			nextID++
			total++
		}
		for g := 0; g < groups; g++ {
			drain := int(lcg(&seed) % 3)
			for i := 0; i < drain && len(queues[g]) > 0; i++ {
				queues[g] = queues[g][1:]
				total--
			}
		}

		for self := 0; self < groups; self++ {
			for g := 0; g < groups; g++ {
				view[g] = len(queues[g])
			}
			threshold := 4 + int(lcg(&seed)%8)
			_, _, plan := Decide(view, self, threshold, bulk, conc, true, order, dests)
			if len(plan) == 0 {
				continue
			}
			batch := BatchSize(bulk, len(plan))
			for _, dst := range plan {
				src := queues[self]
				if !GuardAllows(len(src), len(queues[dst]), batch) {
					continue
				}
				// Tail selection with migrate-once: candidate i counts
				// from the tail; a prior hop pins it and everything
				// deeper.
				count := MigratableCount(len(src), batch, func(i int) bool {
					return src[len(src)-1-i].hops > 0
				})
				for i := 0; i < count; i++ {
					task := src[len(src)-1]
					src = src[:len(src)-1]
					task.hops++
					if task.hops > 1 {
						t.Fatalf("round %d: task %d migrated %d times", round, task.id, task.hops)
					}
					queues[dst] = append(queues[dst], task)
				}
				queues[self] = src
			}
		}

		live := 0
		for g := 0; g < groups; g++ {
			live += len(queues[g])
		}
		if live != total {
			t.Fatalf("round %d: %d tasks queued, conservation says %d", round, live, total)
		}
	}
	if total == 0 || nextID < 1000 {
		t.Fatalf("model degenerate: %d tasks created, %d live", nextID, total)
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
