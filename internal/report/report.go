// Package report renders experiment results as aligned text tables and
// simple ASCII series, the output format of cmd/altobench and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	ID    string // experiment id, e.g. "fig10"
	Title string
	Cols  []string
	Rows  [][]string
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if w := widths[i] - len(c); w > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", w))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderAll renders a sequence of tables.
func RenderAll(w io.Writer, tables []Table) error {
	for i := range tables {
		if err := tables[i].Render(w); err != nil {
			return err
		}
	}
	return nil
}
