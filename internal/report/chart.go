package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve of (x, y) points.
type Series struct {
	Name   string
	Points [][2]float64
}

// Chart renders one or more series as an ASCII scatter/line chart, the
// terminal-friendly stand-in for the paper's latency-throughput figures.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Width  int // plot columns (default 64)
	Height int // plot rows (default 16)
	Series []Series
}

// markers assigns one rune per series.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for _, p := range s.Points {
			x, y := p[0], p[1]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			any = true
		}
	}
	if !any {
		return fmt.Errorf("report: chart %q has no drawable points", c.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			x, y := p[0], p[1]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = m
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yTop, yBot := maxY, minY
	if c.LogY {
		yTop, yBot = math.Pow(10, maxY), math.Pow(10, minY)
	}
	for i, row := range grid {
		prefix := "        |"
		switch i {
		case 0:
			prefix = fmt.Sprintf("%8.3g|", yTop)
		case height - 1:
			prefix = fmt.Sprintf("%8.3g|", yBot)
		}
		fmt.Fprintf(&b, "%s%s\n", prefix, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-.3g%s%.3g\n", minX,
		strings.Repeat(" ", maxInt(1, width-14)), maxX)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "        x: %s", c.XLabel)
		if c.YLabel != "" {
			fmt.Fprintf(&b, "   y: %s", c.YLabel)
			if c.LogY {
				b.WriteString(" (log)")
			}
		}
		b.WriteByte('\n')
	}
	// Legend, sorted by series order.
	for si, s := range c.Series {
		fmt.Fprintf(&b, "        %c %s\n", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// SortSeriesPoints orders every series by x, which line-style consumers
// expect.
func (c *Chart) SortSeriesPoints() {
	for i := range c.Series {
		pts := c.Series[i].Points
		sort.Slice(pts, func(a, b int) bool { return pts[a][0] < pts[b][0] })
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
