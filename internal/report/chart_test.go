package report

import (
	"bytes"
	"strings"
	"testing"
)

func demoChart() *Chart {
	return &Chart{
		Title: "p99 vs load", XLabel: "MRPS", YLabel: "us",
		Series: []Series{
			{Name: "nebula", Points: [][2]float64{{1, 5}, {2, 8}, {3, 200}}},
			{Name: "altocumulus", Points: [][2]float64{{1, 2}, {2, 3}, {3, 9}}},
		},
	}
}

func TestChartRender(t *testing.T) {
	var buf bytes.Buffer
	c := demoChart()
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p99 vs load", "nebula", "altocumulus", "x: MRPS", "y: us", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 18 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
}

func TestChartLogY(t *testing.T) {
	c := demoChart()
	c.LogY = true
	c.Series[0].Points = append(c.Series[0].Points, [2]float64{4, 0}) // dropped in log mode
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(log)") {
		t.Fatal("log marker missing")
	}
}

func TestChartEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var buf bytes.Buffer
	if err := c.Render(&buf); err == nil {
		t.Fatal("empty chart should error")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "pt", Points: [][2]float64{{5, 7}}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSortSeriesPoints(t *testing.T) {
	c := &Chart{Series: []Series{{Points: [][2]float64{{3, 1}, {1, 2}, {2, 3}}}}}
	c.SortSeriesPoints()
	pts := c.Series[0].Points
	if pts[0][0] != 1 || pts[1][0] != 2 || pts[2][0] != 3 {
		t.Fatalf("not sorted: %v", pts)
	}
}
