package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:    "fig00",
		Title: "demo",
		Cols:  []string{"name", "value"},
		Notes: []string{"a note"},
	}
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("a-much-longer-name", 42)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig00", "demo", "alpha", "3.142", "42", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Header separator present and columns aligned: the header line and
	// the long row start at the same offset for column 2.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %q", out)
	}
	if !strings.HasPrefix(lines[2], "----") {
		t.Fatalf("separator missing: %q", lines[2])
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3.14159: "3.142",
		42.5:    "42.5",
		12345.6: "12346",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderAll(t *testing.T) {
	tables := []Table{
		{ID: "a", Title: "one", Cols: []string{"x"}},
		{ID: "b", Title: "two", Cols: []string{"y"}},
	}
	tables[0].AddRow(1)
	tables[1].AddRow(2)
	var buf bytes.Buffer
	if err := RenderAll(&buf, tables); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "one") || !strings.Contains(out, "two") {
		t.Fatalf("missing tables:\n%s", out)
	}
}
