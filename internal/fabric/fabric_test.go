package fabric

import (
	"testing"

	"repro/internal/sim"
)

func TestDefaultConstantsMatchPaper(t *testing.T) {
	c := Default()
	if c.QPILatency != 150*sim.Nanosecond {
		t.Fatalf("QPI = %v, paper says 150ns", c.QPILatency)
	}
	if c.PCIeBase != 200*sim.Nanosecond || c.PCIeMax != 800*sim.Nanosecond {
		t.Fatalf("PCIe range = %v-%v, paper says 200-800ns", c.PCIeBase, c.PCIeMax)
	}
	if c.NICFrontEnd != 30*sim.Nanosecond {
		t.Fatalf("NIC front end = %v, paper says ~30ns", c.NICFrontEnd)
	}
	if c.CoherenceMsg != 35*sim.Nanosecond {
		t.Fatalf("coherence msg = %v, paper says 70cyc@2GHz = 35ns", c.CoherenceMsg)
	}
}

func TestPCIeTransferInterpolation(t *testing.T) {
	c := Default()
	if got := c.PCIeTransfer(0); got != c.PCIeBase {
		t.Fatalf("size 0: %v", got)
	}
	if got := c.PCIeTransfer(1 << 20); got != c.PCIeMax {
		t.Fatalf("huge: %v", got)
	}
	mid := c.PCIeTransfer(c.PCIeMaxBytes / 2)
	if mid <= c.PCIeBase || mid >= c.PCIeMax {
		t.Fatalf("mid-size transfer %v not between base and max", mid)
	}
	// Monotonic in size.
	prev := sim.Time(0)
	for s := 0; s <= c.PCIeMaxBytes; s += 256 {
		v := c.PCIeTransfer(s)
		if v < prev {
			t.Fatalf("PCIe latency not monotonic at %d", s)
		}
		prev = v
	}
}

func TestNICTransfer(t *testing.T) {
	c := Default()
	if got := c.NICTransfer(AttachIntegrated, 64); got != c.LLCAccess {
		t.Fatalf("integrated transfer = %v", got)
	}
	if got := c.NICTransfer(AttachPCIe, 64); got < c.PCIeBase {
		t.Fatalf("pcie transfer = %v", got)
	}
}

func TestInterfaceOpCosts(t *testing.T) {
	c := Default()
	isa := c.InterfaceOp(InterfaceISA)
	msr := c.InterfaceOp(InterfaceMSR)
	if isa != sim.Cycles(2, 2e9) {
		t.Fatalf("ISA op = %v", isa)
	}
	if msr != sim.Cycles(100, 2e9) {
		t.Fatalf("MSR op = %v, paper says ~100 cycles", msr)
	}
	if msr <= isa*10 {
		t.Fatalf("MSR should be much slower than ISA: %v vs %v", msr, isa)
	}
}

func TestPredictCost(t *testing.T) {
	c := Default()
	// Paper: worst-case prediction latency ~18ns at 2 GHz.
	if got := c.PredictCost(); got != 18*sim.Nanosecond {
		t.Fatalf("predict cost = %v, want 18ns", got)
	}
}

func TestStringers(t *testing.T) {
	if InterfaceISA.String() != "ISA" || InterfaceMSR.String() != "MSR" {
		t.Fatal("Interface stringer")
	}
	if AttachPCIe.String() != "pcie" || AttachIntegrated.String() != "integrated" {
		t.Fatal("Attach stringer")
	}
}
