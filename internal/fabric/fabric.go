// Package fabric centralises the latency cost model of the simulated
// server: interconnect transfers (PCIe, QPI, coherence), memory hierarchy
// accesses (LLC, DRAM) and the software/hardware interface cost of the
// ALTOCUMULUS runtime (custom `altom_*` instructions vs. x86 MSR
// syscalls, Table III / §VI). Every constant is taken from the paper or
// the sources it cites, and every field is overridable so experiments can
// run ablations.
package fabric

import (
	"repro/internal/policy"
	"repro/internal/sim"
)

// Interface selects how the software runtime talks to the scheduling
// hardware (§VI "Software-Hardware Interface"). It is an alias of the
// engine-agnostic policy.Iface so the simulator and the live runtime
// share one cost model.
type Interface = policy.Iface

const (
	// InterfaceISA uses the custom altom_* instructions: direct
	// register-level micro-ops, ~2 cycles each.
	InterfaceISA = policy.IfaceISA
	// InterfaceMSR uses rdmsr/wrmsr syscalls, ~100 cycles each on
	// Sandybridge-EP per the paper.
	InterfaceMSR = policy.IfaceMSR
)

// Attach selects how the NIC reaches the cores.
type Attach int

const (
	// AttachPCIe is a commodity NIC behind the PCIe bus (200-800 ns per
	// transfer depending on size, Neugebauer et al. [46]).
	AttachPCIe Attach = iota
	// AttachIntegrated is a hardware-terminated on-die NIC (Nebula /
	// nanoPU style): transfers at LLC or register-file speed.
	AttachIntegrated
)

func (a Attach) String() string {
	if a == AttachIntegrated {
		return "integrated"
	}
	return "pcie"
}

// CostModel holds every latency constant of the simulation. The zero
// value is not useful; use Default().
type CostModel struct {
	ClockHz float64 // core clock (paper evaluates 2 GHz)

	// Memory hierarchy.
	L1Access   sim.Time // L1 hit
	LLCAccess  sim.Time // shared LLC access (Nebula-speed NIC transfers)
	DRAMAccess sim.Time // main memory access
	CacheMiss  sim.Time // one remote cache miss (inter-core line transfer)

	// Interconnects.
	QPILatency   sim.Time // cross-socket point-to-point (paper: 150 ns)
	PCIeBase     sim.Time // PCIe minimum transfer latency (paper: 200 ns)
	PCIeMax      sim.Time // PCIe large-transfer latency (paper: 800 ns)
	PCIeMaxBytes int      // size at which PCIe latency saturates

	// NIC front-end: Ethernet MAC + serial I/O + transport interpretation
	// (paper/nanoPU: ~30 ns total).
	NICFrontEnd sim.Time

	// Scheduling operation costs.
	CoherenceMsg  sim.Time // dispatcher->worker handoff via coherence (70 cyc @ 2 GHz = 35 ns)
	StealAttempt  sim.Time // one work-steal probe+fetch (2-3 cache misses: 200-400 ns; we use 300 ns)
	PreemptCost   sim.Time // software preemption (interrupt + context, ~1 us, Shinjuku)
	RegisterXfer  sim.Time // register-file NIC-to-core push (nanoPU-style, ~5 ns)
	ISAOpCycles   int      // cycles per altom_* op
	MSROpCycles   int      // cycles per rdmsr/wrmsr op
	PredictCycles int      // threshold computation: 2 mul (7cyc) + 2 add (1cyc) + 3 cmp (2cyc) ≈ 18 ns @2GHz
}

// Default returns the paper's cost model.
func Default() CostModel {
	return CostModel{
		ClockHz:       2e9,
		L1Access:      2 * sim.Nanosecond,
		LLCAccess:     30 * sim.Nanosecond,
		DRAMAccess:    90 * sim.Nanosecond,
		CacheMiss:     45 * sim.Nanosecond,
		QPILatency:    150 * sim.Nanosecond,
		PCIeBase:      200 * sim.Nanosecond,
		PCIeMax:       800 * sim.Nanosecond,
		PCIeMaxBytes:  4096,
		NICFrontEnd:   30 * sim.Nanosecond,
		CoherenceMsg:  sim.Cycles(70, 2e9),
		StealAttempt:  300 * sim.Nanosecond,
		PreemptCost:   1 * sim.Microsecond,
		RegisterXfer:  5 * sim.Nanosecond,
		ISAOpCycles:   2,
		MSROpCycles:   100,
		PredictCycles: 36, // ≈18 ns at 2 GHz, the paper's worst-case prediction latency
	}
}

// PCIeTransfer returns the PCIe latency for a transfer of size bytes,
// interpolating linearly between PCIeBase and PCIeMax as the paper's
// cited measurements do (200-800 ns depending on data size).
func (c CostModel) PCIeTransfer(size int) sim.Time {
	if size <= 0 {
		return c.PCIeBase
	}
	if size >= c.PCIeMaxBytes {
		return c.PCIeMax
	}
	span := float64(c.PCIeMax - c.PCIeBase)
	return c.PCIeBase + sim.Time(span*float64(size)/float64(c.PCIeMaxBytes))
}

// NICTransfer returns the NIC-to-core transfer latency for the given
// attach model and transfer size.
func (c CostModel) NICTransfer(a Attach, size int) sim.Time {
	if a == AttachIntegrated {
		return c.LLCAccess
	}
	return c.PCIeTransfer(size)
}

// Policy returns the engine-agnostic slice of the cost model: the
// software/hardware interface constants shared with internal/policy.
// policy.Cycles mirrors sim.Cycles bit-for-bit, so delegating through
// it changes no simulated timestamp.
func (c CostModel) Policy() policy.CostModel {
	return policy.CostModel{
		ClockHz:       c.ClockHz,
		ISAOpCycles:   c.ISAOpCycles,
		MSROpCycles:   c.MSROpCycles,
		PredictCycles: c.PredictCycles,
	}
}

// InterfaceOp returns the cost of one software/hardware interface
// operation (a register read or write of the scheduling hardware).
func (c CostModel) InterfaceOp(i Interface) sim.Time {
	return sim.Time(c.Policy().InterfaceOp(i))
}

// PredictCost returns the per-period cost of running the SLO-violation
// prediction (threshold computation + comparisons, §VIII-E).
func (c CostModel) PredictCost() sim.Time {
	return sim.Time(c.Policy().PredictCost())
}
