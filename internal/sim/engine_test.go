package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatal("ns != 1000ps")
	}
	if Second != 1e12*Picosecond {
		t.Fatal("second mismatch")
	}
	if got := FromNanos(2.5); got != 2500*Picosecond {
		t.Fatalf("FromNanos(2.5) = %d", got)
	}
	if got := FromNanos(-1); got != 0 {
		t.Fatalf("negative clamp: %d", got)
	}
	if got := (3 * Nanosecond).Nanoseconds(); got != 3 {
		t.Fatalf("Nanoseconds = %v", got)
	}
	if got := FromSeconds(1e-6); got != Microsecond {
		t.Fatalf("FromSeconds: %v", got)
	}
}

func TestCycles(t *testing.T) {
	// 70 cycles at 2 GHz = 35 ns, the paper's coherence-message cost.
	if got := Cycles(70, 2e9); got != 35*Nanosecond {
		t.Fatalf("Cycles(70, 2GHz) = %v, want 35ns", got)
	}
	if got := Cycles(100, 2e9); got != 50*Nanosecond {
		t.Fatalf("Cycles(100, 2GHz) = %v, want 50ns", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3.000ns"},
		{2 * Microsecond, "2.000us"},
		{5 * Millisecond, "5.000ms"},
		{Second, "1.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("bad order: %v", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*Nanosecond, func() { fired++ })
	e.At(20*Nanosecond, func() { fired++ })
	e.At(30*Nanosecond, func() { fired++ })
	n := e.Run(20 * Nanosecond)
	if n != 2 || fired != 2 {
		t.Fatalf("Run(20ns) executed %d events (fired=%d)", n, fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.RunAll()
	if fired != 3 {
		t.Fatalf("fired = %d after RunAll", fired)
	}
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.After(5*Nanosecond, func() {
		at = append(at, e.Now())
		e.After(7*Nanosecond, func() { at = append(at, e.Now()) })
	})
	e.RunAll()
	if len(at) != 2 || at[0] != 5*Nanosecond || at[1] != 12*Nanosecond {
		t.Fatalf("nested scheduling times: %v", at)
	}
}

func TestEnginePastClamped(t *testing.T) {
	e := NewEngine()
	var got Time = -1
	e.At(10*Nanosecond, func() {
		e.At(1*Nanosecond, func() { got = e.Now() }) // in the past
	})
	e.RunAll()
	if got != 10*Nanosecond {
		t.Fatalf("past event ran at %v, want clamped to 10ns", got)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10*Nanosecond, func() { fired = true })
	if !id.Valid() {
		t.Fatal("id should be valid")
	}
	id.Cancel()
	id.Cancel() // double-cancel is a no-op
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	var zero EventID
	zero.Cancel() // zero id cancel must not panic
	if zero.Valid() {
		t.Fatal("zero id is valid")
	}
}

func TestEngineCancelCompaction(t *testing.T) {
	// Cancelling the bulk of the queue must shrink the heap (dead-entry
	// compaction) and keep Pending, a live O(1) counter, exact. Pinned
	// to the heap backend; TestEngineWheelCancelCompaction covers the
	// wheel's equivalent bound.
	e := NewEngineHeap()
	const n = 10000
	ids := make([]EventID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, e.At(Time(i)*Nanosecond, func() {}))
	}
	keep := e.At(Time(n)*Nanosecond, func() {})
	if e.Pending() != n+1 {
		t.Fatalf("pending = %d, want %d", e.Pending(), n+1)
	}
	for _, id := range ids {
		id.Cancel()
	}
	if e.Pending() != 1 {
		t.Fatalf("pending after cancel = %d, want 1", e.Pending())
	}
	// Compaction triggers once dead entries outnumber live ones, so the
	// heap must have shed the 10k cancelled events, not retained them
	// until pop time.
	if len(e.heap) >= n/2 {
		t.Fatalf("heap length %d after cancelling %d events; compaction did not run", len(e.heap), n)
	}
	fired := 0
	e.RunAll()
	_ = keep
	if e.nEvent != 1 {
		t.Fatalf("executed %d events, want 1 (the survivor)", e.nEvent)
	}
	_ = fired
	if e.Pending() != 0 {
		t.Fatalf("pending after drain = %d", e.Pending())
	}
}

func TestEngineSlotRecycling(t *testing.T) {
	// A fired event's slot is recycled; a stale id for it must not be
	// able to cancel the new occupant (generation guard).
	e := NewEngine()
	stale := e.At(Nanosecond, func() {})
	e.RunAll()
	fired := false
	fresh := e.At(2*Nanosecond, func() { fired = true })
	stale.Cancel() // refers to a recycled slot; must be a no-op
	e.RunAll()
	if !fired {
		t.Fatal("stale Cancel killed a recycled slot's event")
	}
	if !fresh.Valid() {
		t.Fatal("fresh id invalid")
	}
	// The slab must actually recycle: two sequential events, one slot.
	if len(e.events) != 1 {
		t.Fatalf("slab grew to %d slots for sequential events", len(e.events))
	}
}

func TestEngineCancelInsideCallback(t *testing.T) {
	// Cancelling from inside a running event — the common JBSQ re-arm
	// pattern — must work even when it triggers compaction mid-run.
	e := NewEngine()
	var ids []EventID
	cancelled := 0
	for i := 0; i < 100; i++ {
		ids = append(ids, e.At(10*Nanosecond, func() { cancelled++ }))
	}
	e.At(5*Nanosecond, func() {
		for _, id := range ids {
			id.Cancel()
		}
	})
	e.RunAll()
	if cancelled != 0 {
		t.Fatalf("%d cancelled events fired", cancelled)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 5 {
			e.Stop()
		}
		e.After(Nanosecond, tick)
	}
	e.After(Nanosecond, tick)
	e.Run(Second)
	if n != 5 {
		t.Fatalf("stopped after %d events", n)
	}
}

func TestEngineIdleClockAdvance(t *testing.T) {
	e := NewEngine()
	e.Run(42 * Nanosecond)
	if e.Now() != 42*Nanosecond {
		t.Fatalf("idle run did not advance clock: %v", e.Now())
	}
}

func TestHeapPropertyRandomised(t *testing.T) {
	// Property: events fire in nondecreasing time order regardless of
	// insertion order.
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, v := range raw {
			tm := Time(v) * Nanosecond
			e.At(tm, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42).Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
	for i, b := range buckets {
		if math.Abs(float64(b)-n/10) > n/10*0.1 {
			t.Fatalf("bucket %d count %d far from uniform", i, b)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(500)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-500) > 10 {
		t.Fatalf("exp mean = %v, want ~500", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("norm mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("norm stddev = %v", math.Sqrt(variance))
	}
}

func TestRNGIntnAndBernoulli(t *testing.T) {
	r := NewRNG(17)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn bucket %d = %d", i, c)
		}
	}
	heads := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.3) {
			heads++
		}
	}
	if heads < 28000 || heads > 32000 {
		t.Fatalf("Bernoulli(0.3) rate = %v", float64(heads)/100000)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(1)
	a := r.Fork(1)
	b := r.Fork(2)
	diff := false
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("forked streams identical")
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(5)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sort.Ints(xs)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("shuffle lost elements")
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	r := NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(r.Intn(1000))*Nanosecond, func() {})
		if i%1024 == 1023 {
			e.RunAll()
		}
	}
	e.RunAll()
}

func TestEngineArgEvents(t *testing.T) {
	e := NewEngine()
	type rec struct {
		at  Time
		tag string
		n   int64
	}
	var got []rec
	payload := &struct{ name string }{"p"}
	record := func(arg any, n int64) {
		got = append(got, rec{e.Now(), arg.(*struct{ name string }).name, n})
	}
	// Arg events interleave with plain events in strict (time, seq) order.
	e.AtArg(20*Nanosecond, record, payload, 2)
	e.At(10*Nanosecond, func() { got = append(got, rec{e.Now(), "plain", 0}) })
	e.AfterArg(10*Nanosecond, record, payload, 1) // same time as the plain event, later seq
	e.AfterArg(-5*Nanosecond, record, payload, 0) // negative delay clamps to now
	n := e.RunAll()
	if n != 4 {
		t.Fatalf("RunAll processed %d events, want 4", n)
	}
	want := []rec{
		{0, "p", 0},
		{10 * Nanosecond, "plain", 0},
		{10 * Nanosecond, "p", 1},
		{20 * Nanosecond, "p", 2},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if e.Processed() != 4 {
		t.Fatalf("Processed = %d, want 4", e.Processed())
	}
}

func TestEngineArgPastClamped(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.At(10*Nanosecond, func() {
		e.AtArg(Nanosecond, func(any, int64) { at = e.Now() }, nil, 0)
	})
	e.RunAll()
	if at != 10*Nanosecond {
		t.Fatalf("past arg event ran at %v, want clamped to 10ns", at)
	}
}

func TestEngineArgCancelDropsPayload(t *testing.T) {
	e := NewEngine()
	fired := false
	payload := &struct{ x int }{1}
	id := e.AtArg(10*Nanosecond, func(any, int64) { fired = true }, payload, 7)
	idx := id.idx
	id.Cancel()
	if e.events[idx].arg != nil || e.events[idx].actArg != nil {
		t.Fatal("cancel must drop the payload and callback references")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled arg event fired")
	}
	// The released slot must recycle cleanly into a plain event.
	ran := false
	id2 := e.After(Nanosecond, func() { ran = true })
	if id2.idx != idx {
		t.Fatalf("expected slot %d to recycle, got %d", idx, id2.idx)
	}
	e.RunAll()
	if !ran {
		t.Fatal("recycled slot did not fire")
	}
}

func TestEngineArgFiringClearsSlot(t *testing.T) {
	e := NewEngine()
	payload := &struct{ x int }{1}
	id := e.AtArg(Nanosecond, func(any, int64) {}, payload, 0)
	idx := id.idx
	e.RunAll()
	if ev := &e.events[idx]; ev.arg != nil || ev.actArg != nil || ev.act != nil {
		t.Fatal("fired arg event must not retain its payload or callbacks")
	}
}

func TestEngineArgEventsDoNotAllocate(t *testing.T) {
	// The whole point of AtArg/AfterArg: a bound callback plus a pointer
	// payload plus an int64 side channel schedules with zero allocations
	// (pointers in `any` do not box; the slab recycles slots).
	e := NewEngine()
	f := func(any, int64) {}
	payload := &struct{ x int }{1}
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterArg(Nanosecond, f, payload, 300)
		e.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("arg event schedule+fire allocates %v times per op, want 0", allocs)
	}
}
