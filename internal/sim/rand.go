package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Every stochastic component of a
// simulation draws from an RNG derived from the run seed, so a run is a
// pure function of its configuration — the property the replay-based
// effectiveness and accuracy analyses depend on.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 to spread the seed across the state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent generator from r's stream, labelled by tag.
// Components that must not perturb each other's draws (e.g. the arrival
// process vs. per-request service times) each get their own fork.
func (r *RNG) Fork(tag uint64) *RNG {
	return NewRNG(r.Uint64() ^ (tag * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value (Box-Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Lognorm returns a lognormally distributed value parameterised by the
// mean and stddev of the underlying normal.
func (r *RNG) Lognorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Shuffle permutes the first n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
