// Package sim provides a deterministic discrete-event simulation engine
// with a picosecond-resolution clock. All ALTOCUMULUS substrates (NIC,
// NoC, cores, schedulers) are driven by a single sim.Engine so that a run
// with a fixed seed is exactly reproducible, which the replay-based
// analyses (migration effectiveness, prediction accuracy) rely on.
package sim

import "fmt"

// Time is a simulated instant or duration in picoseconds. Picoseconds keep
// sub-nanosecond quantities exact: a 1.6 TbE packet gap (~2.5 ns) and a NoC
// hop (3 ns) both divide evenly. The int64 range covers ~106 days of
// simulated time, far beyond any experiment here.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds converts t to float64 nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds converts t to float64 microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds converts t to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanos converts float64 nanoseconds to a Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time {
	if ns < 0 {
		return 0
	}
	return Time(ns*1000 + 0.5)
}

// FromSeconds converts float64 seconds to a Time.
func FromSeconds(s float64) Time { return FromNanos(s * 1e9) }

// Cycles converts a CPU cycle count at the given clock frequency (Hz) to a
// Time. Used for costs the paper quotes in cycles (e.g. 70-cycle coherence
// messages, ~100-cycle rdmsr/wrmsr).
func Cycles(n int, hz float64) Time {
	return FromSeconds(float64(n) / hz)
}

// String renders the time with an adaptive unit for debugging output.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}
