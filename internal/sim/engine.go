package sim

// event is a scheduled callback. Events fire in (time, sequence) order;
// the sequence number breaks ties FIFO so that same-instant events run in
// the order they were scheduled, keeping runs deterministic.
//
// Events live in the engine's slab (Engine.events) and are addressed by
// index, not pointer: scheduling recycles slots through a free list, so
// the steady-state event loop allocates nothing. The generation counter
// guards recycled slots against stale EventIDs.
//
// An event carries either a plain thunk (act) or an argument-taking
// callback (actArg) with its payload (arg, argN). The second form exists
// so hot paths can schedule work against a callback allocated once at
// construction time instead of closing over per-request state: a
// `func(){ use(r) }` literal heap-allocates a closure every call, while
// AtArg(t, boundFn, r, 0) writes the request pointer into the recycled
// event slot and allocates nothing.
type event struct {
	at     Time
	seq    uint64
	act    func()
	actArg func(arg any, n int64)
	arg    any
	argN   int64
	gen    uint32
	dead   bool
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued.
type EventID struct {
	eng *Engine
	gen uint32
	idx int32
}

// Cancel marks the event dead; it will be dropped when popped or when
// the heap compacts. Cancelling an already-fired or already-cancelled
// event is a no-op: the slot's generation advances when it is recycled,
// so a stale id no longer matches.
func (id EventID) Cancel() {
	if id.eng == nil {
		return
	}
	e := id.eng
	ev := &e.events[id.idx]
	if ev.gen != id.gen || ev.dead {
		return
	}
	ev.dead = true
	ev.act = nil
	ev.actArg = nil
	ev.arg = nil
	e.pending--
	// Compact once dead entries dominate, so cancellation-heavy
	// schedulers (JBSQ re-arms, manager period timers) cannot grow the
	// heap without bound.
	if n := len(e.heap); n > 1 && n-e.pending > n/2 {
		e.compact()
	}
}

// Valid reports whether the id refers to a scheduled event.
func (id EventID) Valid() bool { return id.eng != nil }

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// an entire simulation runs on one goroutine (the simulated hardware is
// parallel, the simulator is not — same as ZSim's bound-phase model
// collapsed to a strict event order).
type Engine struct {
	now     Time
	seq     uint64
	events  []event // slot slab; EventID.idx and heap entries index it
	free    []int32 // recycled slab slots
	heap    []int32 // binary min-heap of slab indices keyed on (at, seq)
	pending int     // live (scheduled, not cancelled) events
	nEvent  uint64  // total events executed, for reporting
	stop    bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		events: make([]event, 0, 1024),
		free:   make([]int32, 0, 1024),
		heap:   make([]int32, 0, 1024),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nEvent }

// alloc takes a slot from the free list (or grows the slab) and fills it.
func (e *Engine) alloc(t Time, f func()) int32 {
	var i int32
	if n := len(e.free); n > 0 {
		i = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.events = append(e.events, event{})
		i = int32(len(e.events) - 1)
	}
	ev := &e.events[i]
	ev.at = t
	ev.seq = e.seq
	ev.act = f
	ev.dead = false
	e.seq++
	return i
}

// allocArg is alloc for argument-carrying events.
func (e *Engine) allocArg(t Time, f func(any, int64), arg any, n int64) int32 {
	var i int32
	if fl := len(e.free); fl > 0 {
		i = e.free[fl-1]
		e.free = e.free[:fl-1]
	} else {
		e.events = append(e.events, event{})
		i = int32(len(e.events) - 1)
	}
	ev := &e.events[i]
	ev.at = t
	ev.seq = e.seq
	ev.actArg = f
	ev.arg = arg
	ev.argN = n
	ev.dead = false
	e.seq++
	return i
}

// release recycles a slab slot after its event fired, was cancelled, or
// was dropped by compaction. The generation bump invalidates outstanding
// EventIDs for the slot.
func (e *Engine) release(i int32) {
	ev := &e.events[i]
	ev.gen++
	ev.act = nil
	ev.actArg = nil
	ev.arg = nil // drop the payload reference so the GC can reclaim it
	ev.dead = false
	e.free = append(e.free, i)
}

// At schedules f to run at absolute time t. Scheduling in the past is
// clamped to "now" (fires next, after already-queued events at now).
func (e *Engine) At(t Time, f func()) EventID {
	if t < e.now {
		t = e.now
	}
	i := e.alloc(t, f)
	gen := e.events[i].gen
	e.push(i)
	e.pending++
	return EventID{eng: e, gen: gen, idx: i}
}

// After schedules f to run d after the current time.
func (e *Engine) After(d Time, f func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, f)
}

// AtArg schedules f(arg, n) at absolute time t. Unlike At, the callback
// and its payload travel in the event slot itself, so a callback bound
// once at construction time can be scheduled repeatedly with per-call
// state and no closure allocation. Pass pointers through arg — storing a
// pointer in an interface does not allocate, while non-pointer values
// (including ints ≥ 256) would box. Small integers ride in n.
func (e *Engine) AtArg(t Time, f func(arg any, n int64), arg any, n int64) EventID {
	if t < e.now {
		t = e.now
	}
	i := e.allocArg(t, f, arg, n)
	gen := e.events[i].gen
	e.push(i)
	e.pending++
	return EventID{eng: e, gen: gen, idx: i}
}

// AfterArg schedules f(arg, n) to run d after the current time.
func (e *Engine) AfterArg(d Time, f func(arg any, n int64), arg any, n int64) EventID {
	if d < 0 {
		d = 0
	}
	return e.AtArg(e.now+d, f, arg, n)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stop = true }

// Run executes events until the queue is empty or the clock passes until.
// Events scheduled exactly at until still run. Returns the number of
// events executed by this call.
func (e *Engine) Run(until Time) uint64 {
	e.stop = false
	var n uint64
	for len(e.heap) > 0 && !e.stop {
		i := e.heap[0]
		ev := &e.events[i]
		if ev.at > until {
			break
		}
		e.popTop()
		if ev.dead {
			e.release(i)
			continue
		}
		e.pending--
		e.now = ev.at
		act, actArg, arg, argN := ev.act, ev.actArg, ev.arg, ev.argN
		// Recycle before running: the callback may schedule new events into
		// this very slot, and ev is invalid once the slab grows.
		e.release(i)
		if act != nil {
			act()
		} else {
			actArg(arg, argN)
		}
		n++
		e.nEvent++
	}
	if e.now < until && len(e.heap) == 0 {
		e.now = until
	}
	return n
}

// RunAll executes events until the queue drains. Unlike Run, it leaves the
// clock at the time of the last executed event.
func (e *Engine) RunAll() uint64 {
	e.stop = false
	var n uint64
	for len(e.heap) > 0 && !e.stop {
		i := e.heap[0]
		ev := &e.events[i]
		e.popTop()
		if ev.dead {
			e.release(i)
			continue
		}
		e.pending--
		e.now = ev.at
		act, actArg, arg, argN := ev.act, ev.actArg, ev.arg, ev.argN
		e.release(i)
		if act != nil {
			act()
		} else {
			actArg(arg, argN)
		}
		n++
		e.nEvent++
	}
	return n
}

// Pending returns the number of live events still queued. It is a live
// counter (O(1)), maintained across At/Cancel/pop.
func (e *Engine) Pending() int { return e.pending }

// Every runs f at now+d, now+2d, ... until f returns false. The
// callback runs as an ordinary event, so it observes the simulation
// between event callbacks, never mid-callback. Used for periodic
// instrumentation such as invariant checkpoints.
func (e *Engine) Every(d Time, f func() bool) {
	if d <= 0 {
		panic("sim: Every with non-positive period")
	}
	var tick func()
	tick = func() {
		if f() {
			e.After(d, tick)
		}
	}
	e.After(d, tick)
}

// compact drops dead entries from the heap and restores heap order.
// Linear in heap size, amortised O(1) per cancellation since it only
// runs when dead entries outnumber live ones.
func (e *Engine) compact() {
	kept := e.heap[:0]
	for _, i := range e.heap {
		if e.events[i].dead {
			e.release(i)
		} else {
			kept = append(kept, i)
		}
	}
	e.heap = kept
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// push / popTop implement a classic binary min-heap keyed on (at, seq).
// Hand-rolled (rather than container/heap) to avoid interface boxing on
// the hottest path of the simulator.

func (e *Engine) less(i, j int) bool {
	a, b := &e.events[e.heap[i]], &e.events[e.heap[j]]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(idx int32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) popTop() {
	h := e.heap
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	e.siftDown(0)
}

func (e *Engine) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(e.heap) && e.less(l, smallest) {
			smallest = l
		}
		if r < len(e.heap) && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}
