package sim

// Event is a scheduled callback. Events fire in (time, sequence) order;
// the sequence number breaks ties FIFO so that same-instant events run in
// the order they were scheduled, keeping runs deterministic.
type event struct {
	at   Time
	seq  uint64
	act  func()
	dead bool
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued.
type EventID struct{ e *event }

// Cancel marks the event dead; it will be skipped when popped. Cancelling
// an already-fired or already-cancelled event is a no-op.
func (id EventID) Cancel() {
	if id.e != nil {
		id.e.dead = true
	}
}

// Valid reports whether the id refers to a scheduled event.
func (id EventID) Valid() bool { return id.e != nil }

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// an entire simulation runs on one goroutine (the simulated hardware is
// parallel, the simulator is not — same as ZSim's bound-phase model
// collapsed to a strict event order).
type Engine struct {
	now    Time
	seq    uint64
	heap   []*event
	nEvent uint64 // total events executed, for reporting
	stop   bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{heap: make([]*event, 0, 1024)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nEvent }

// At schedules f to run at absolute time t. Scheduling in the past is
// clamped to "now" (fires next, after already-queued events at now).
func (e *Engine) At(t Time, f func()) EventID {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, act: f}
	e.seq++
	e.push(ev)
	return EventID{ev}
}

// After schedules f to run d after the current time.
func (e *Engine) After(d Time, f func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, f)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stop = true }

// Run executes events until the queue is empty or the clock passes until.
// Events scheduled exactly at until still run. Returns the number of
// events executed by this call.
func (e *Engine) Run(until Time) uint64 {
	e.stop = false
	var n uint64
	for len(e.heap) > 0 && !e.stop {
		ev := e.heap[0]
		if ev.at > until {
			break
		}
		e.pop()
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.act()
		n++
		e.nEvent++
	}
	if e.now < until && len(e.heap) == 0 {
		e.now = until
	}
	return n
}

// RunAll executes events until the queue drains. Unlike Run, it leaves the
// clock at the time of the last executed event.
func (e *Engine) RunAll() uint64 {
	e.stop = false
	var n uint64
	for len(e.heap) > 0 && !e.stop {
		ev := e.heap[0]
		e.pop()
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.act()
		n++
		e.nEvent++
	}
	return n
}

// Pending returns the number of live events still queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.heap {
		if !ev.dead {
			n++
		}
	}
	return n
}

// push / pop implement a classic binary min-heap keyed on (at, seq).
// Hand-rolled (rather than container/heap) to avoid interface boxing on
// the hottest path of the simulator.

func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() *event {
	h := e.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	e.heap = h[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(e.heap) && e.less(l, smallest) {
			smallest = l
		}
		if r < len(e.heap) && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
	return top
}
