package sim

// event is a scheduled callback. Events fire in (time, sequence) order;
// the sequence number breaks ties FIFO so that same-instant events run in
// the order they were scheduled, keeping runs deterministic.
//
// Events live in the engine's slab (Engine.events) and are addressed by
// index, not pointer: scheduling recycles slots through a free list, so
// the steady-state event loop allocates nothing. The generation counter
// guards recycled slots against stale EventIDs.
//
// An event carries either a plain thunk (act) or an argument-taking
// callback (actArg) with its payload (arg, argN). The second form exists
// so hot paths can schedule work against a callback allocated once at
// construction time instead of closing over per-request state: a
// `func(){ use(r) }` literal heap-allocates a closure every call, while
// AtArg(t, boundFn, r, 0) writes the request pointer into the recycled
// event slot and allocates nothing.
type event struct {
	at     Time
	seq    uint64
	act    func()
	actArg func(arg any, n int64)
	arg    any
	argN   int64
	gen    uint32
	dead   bool
	timer  bool // slot owned by a Timer: never returned to the free list
}

// EventID identifies a scheduled event so it can be cancelled. The zero
// EventID is never issued.
type EventID struct {
	eng *Engine
	gen uint32
	idx int32
}

// Cancel marks the event dead; it will be dropped when popped or when
// the scheduler compacts. Cancelling an already-fired or already-cancelled
// event is a no-op: the slot's generation advances when it is recycled,
// so a stale id no longer matches.
func (id EventID) Cancel() {
	if id.eng == nil {
		return
	}
	e := id.eng
	ev := &e.events[id.idx]
	if ev.gen != id.gen || ev.dead {
		return
	}
	ev.dead = true
	ev.act = nil
	ev.actArg = nil
	ev.arg = nil
	e.pending--
	e.maybeCompact()
}

// Valid reports whether the id refers to a scheduled event.
func (id EventID) Valid() bool { return id.eng != nil }

// Engine is a discrete-event simulator. It is not safe for concurrent use;
// an entire simulation runs on one goroutine (the simulated hardware is
// parallel, the simulator is not — same as ZSim's bound-phase model
// collapsed to a strict event order).
//
// Two scheduler backends share the slab: the default timer wheel
// (wheel.go) and the original slab binary heap, kept as a differential
// reference behind NewEngineHeap. Both fire events in identical
// (at, seq) order; the fuzz oracle drives them against each other.
type Engine struct {
	now     Time
	seq     uint64
	events  []event // slot slab; EventID.idx and queue entries index it
	free    []int32 // recycled slab slots
	heap    []int32 // binary min-heap of slab indices; nil under the wheel
	wheel   *timerWheel
	pending int    // live (scheduled, not cancelled) events
	nEvent  uint64 // total events executed, for reporting
	stop    bool
	firing  int32 // slab index of the callback currently executing, -1 otherwise
	rearmed bool  // the executing callback called Rearm
}

// NewEngine returns an engine with the clock at zero, scheduling on the
// timer-wheel backend.
func NewEngine() *Engine {
	return newEngineWheel(wheelGBits, wheelSlotBits)
}

// newEngineWheel builds a wheel-backed engine with explicit geometry.
// Tests use tiny wheels to force bucket-boundary, wrap and overflow
// paths with small timestamps.
func newEngineWheel(gBits, slotBits uint) *Engine {
	return &Engine{
		events: make([]event, 0, 1024),
		free:   make([]int32, 0, 1024),
		wheel:  newWheel(gBits, slotBits),
		firing: -1,
	}
}

// NewEngineHeap returns an engine scheduling on the slab binary heap —
// the pre-wheel scheduler, kept as the differential reference
// (server.Config.HeapSched / altobench -heapsched select it end to end).
func NewEngineHeap() *Engine {
	return &Engine{
		events: make([]event, 0, 1024),
		free:   make([]int32, 0, 1024),
		heap:   make([]int32, 0, 1024),
		firing: -1,
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nEvent }

// qpush / qpop / qpeekAt / qlen / qcompact dispatch to the active
// backend. qlen counts queued entries dead included, so the compaction
// trigger sees the same population either way.

//altolint:hotpath
func (e *Engine) qpush(i int32) {
	if e.wheel != nil {
		e.wpush(i)
	} else {
		e.push(i)
	}
}

//altolint:hotpath
func (e *Engine) qpop() int32 {
	if e.wheel != nil {
		return e.wpop()
	}
	i := e.heap[0]
	e.popTop()
	return i
}

//altolint:hotpath
func (e *Engine) qpeekAt() (Time, bool) {
	if e.wheel != nil {
		return e.wpeekAt()
	}
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.events[e.heap[0]].at, true
}

func (e *Engine) qlen() int {
	if e.wheel != nil {
		return e.wlen()
	}
	return len(e.heap)
}

// maybeCompact compacts once dead entries dominate, so
// cancellation-heavy schedulers (JBSQ re-arms, manager period timers)
// cannot grow the queue without bound.
func (e *Engine) maybeCompact() {
	if n := e.qlen(); n > 1 && n-e.pending > n/2 {
		if e.wheel != nil {
			e.wcompact()
		} else {
			e.compact()
		}
	}
}

// takeSlot pops a slot from the free list (or grows the slab) without
// filling it.
func (e *Engine) takeSlot() int32 {
	if n := len(e.free); n > 0 {
		i := e.free[n-1]
		e.free = e.free[:n-1]
		return i
	}
	e.events = append(e.events, event{})
	return int32(len(e.events) - 1)
}

// alloc takes a slot from the free list (or grows the slab) and fills it.
func (e *Engine) alloc(t Time, f func()) int32 {
	i := e.takeSlot()
	ev := &e.events[i]
	ev.at = t
	ev.seq = e.seq
	ev.act = f
	ev.dead = false
	e.seq++
	return i
}

// allocArg is alloc for argument-carrying events.
func (e *Engine) allocArg(t Time, f func(any, int64), arg any, n int64) int32 {
	i := e.takeSlot()
	ev := &e.events[i]
	ev.at = t
	ev.seq = e.seq
	ev.actArg = f
	ev.arg = arg
	ev.argN = n
	ev.dead = false
	e.seq++
	return i
}

// release recycles a slab slot after its event fired, was cancelled, or
// was dropped by compaction. The generation bump invalidates outstanding
// EventIDs for the slot.
func (e *Engine) release(i int32) {
	ev := &e.events[i]
	ev.gen++
	ev.act = nil
	ev.actArg = nil
	ev.arg = nil // drop the payload reference so the GC can reclaim it
	ev.dead = false
	e.free = append(e.free, i)
}

// dropDead disposes of a dead entry removed from the queue. Ordinary
// slots recycle through the free list; Timer-owned slots stay put (the
// generation bump alone invalidates them) so a re-Arm reuses the slot
// without touching the free list.
func (e *Engine) dropDead(i int32) {
	ev := &e.events[i]
	if ev.timer {
		ev.gen++
		ev.dead = false
		return
	}
	e.release(i)
}

// At schedules f to run at absolute time t. Scheduling in the past is
// clamped to "now" (fires next, after already-queued events at now).
func (e *Engine) At(t Time, f func()) EventID {
	if t < e.now {
		t = e.now
	}
	i := e.alloc(t, f)
	gen := e.events[i].gen
	e.qpush(i)
	e.pending++
	return EventID{eng: e, gen: gen, idx: i}
}

// After schedules f to run d after the current time.
func (e *Engine) After(d Time, f func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, f)
}

// AtArg schedules f(arg, n) at absolute time t. Unlike At, the callback
// and its payload travel in the event slot itself, so a callback bound
// once at construction time can be scheduled repeatedly with per-call
// state and no closure allocation. Pass pointers through arg — storing a
// pointer in an interface does not allocate, while non-pointer values
// (including ints ≥ 256) would box. Small integers ride in n.
func (e *Engine) AtArg(t Time, f func(arg any, n int64), arg any, n int64) EventID {
	if t < e.now {
		t = e.now
	}
	i := e.allocArg(t, f, arg, n)
	gen := e.events[i].gen
	e.qpush(i)
	e.pending++
	return EventID{eng: e, gen: gen, idx: i}
}

// AfterArg schedules f(arg, n) to run d after the current time.
func (e *Engine) AfterArg(d Time, f func(arg any, n int64), arg any, n int64) EventID {
	if d < 0 {
		d = 0
	}
	return e.AtArg(e.now+d, f, arg, n)
}

// Rearm reschedules the currently executing callback's own event d
// after now, reusing its slab slot: no free-list round trip, no heap
// sift on the wheel backend — the O(1) fast path for periodic events
// (manager Period ticks, rebalance timers). The callback and payload
// are retained as-is. Ordering is identical to calling After(d, self)
// at the same program point: the event takes the next sequence number.
// Panics outside a callback or on a second Rearm in one callback.
//
//altolint:hotpath
func (e *Engine) Rearm(d Time) EventID {
	i := e.firing
	if i < 0 {
		panic("sim: Rearm outside an event callback")
	}
	if e.rearmed {
		panic("sim: Rearm called twice in one callback")
	}
	if d < 0 {
		d = 0
	}
	ev := &e.events[i]
	ev.at = e.now + d
	ev.seq = e.seq
	e.seq++
	e.rearmed = true
	e.qpush(i)
	e.pending++
	return EventID{eng: e, gen: ev.gen, idx: i}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stop = true }

// fire executes the live entry i. The generation bump happens before
// the callback (stale EventIDs are invalid from the callback's point of
// view, exactly as with the old release-before-run ordering); the slot
// returns to the free list after the callback unless it was rearmed or
// is Timer-owned.
//
//altolint:hotpath
func (e *Engine) fire(i int32) {
	ev := &e.events[i]
	ev.gen++
	act, actArg, arg, argN := ev.act, ev.actArg, ev.arg, ev.argN
	e.firing = i
	e.rearmed = false
	if act != nil {
		act()
	} else {
		actArg(arg, argN)
	}
	e.firing = -1
	if e.rearmed {
		return
	}
	// The callback may have grown the slab; re-take the pointer.
	ev = &e.events[i]
	if ev.timer {
		return
	}
	ev.act = nil
	ev.actArg = nil
	ev.arg = nil
	e.free = append(e.free, i) //altolint:allow hotalloc amortized free-list growth into a retained backing array
}

// Run executes events until the queue is empty or the clock passes until.
// Events scheduled exactly at until still run. Returns the number of
// events executed by this call.
func (e *Engine) Run(until Time) uint64 {
	e.stop = false
	var n uint64
	for !e.stop {
		at, ok := e.qpeekAt()
		if !ok || at > until {
			break
		}
		i := e.qpop()
		ev := &e.events[i]
		if ev.dead {
			e.dropDead(i)
			continue
		}
		e.pending--
		e.now = ev.at
		e.fire(i)
		n++
		e.nEvent++
	}
	if e.now < until && e.qlen() == 0 {
		e.now = until
	}
	return n
}

// RunAll executes events until the queue drains. Unlike Run, it leaves the
// clock at the time of the last executed event.
func (e *Engine) RunAll() uint64 {
	e.stop = false
	var n uint64
	for !e.stop && e.qlen() > 0 {
		i := e.qpop()
		ev := &e.events[i]
		if ev.dead {
			e.dropDead(i)
			continue
		}
		e.pending--
		e.now = ev.at
		e.fire(i)
		n++
		e.nEvent++
	}
	return n
}

// Pending returns the number of live events still queued. It is a live
// counter (O(1)), maintained across At/Cancel/pop.
func (e *Engine) Pending() int { return e.pending }

// Every runs f at now+d, now+2d, ... until f returns false. The
// callback runs as an ordinary event, so it observes the simulation
// between event callbacks, never mid-callback. Rescheduling rides the
// Rearm fast path: the periodic event keeps its slab slot for its whole
// lifetime. Used for periodic instrumentation such as invariant
// checkpoints.
func (e *Engine) Every(d Time, f func() bool) {
	if d <= 0 {
		panic("sim: Every with non-positive period")
	}
	tick := func() {
		if f() {
			e.Rearm(d)
		}
	}
	e.After(d, tick)
}

// Timer is a reusable one-shot timer owning a dedicated slab slot.
// Arm/Disarm/fire cycles touch neither the free list nor the slot's
// callback, making re-arm-heavy schedulers (JBSQ's drain retry)
// allocation-free and O(1) per cycle. A Timer is not armed after
// NewTimer; it fires at most once per Arm.
type Timer struct {
	eng *Engine
	f   func()
	idx int32
	gen uint32
}

// NewTimer returns a timer that runs f when it fires.
func (e *Engine) NewTimer(f func()) *Timer {
	i := e.takeSlot()
	ev := &e.events[i]
	ev.timer = true
	ev.act = f
	ev.dead = false
	// gen-1 can never match the slot's current generation, so the
	// fresh timer reports unarmed.
	return &Timer{eng: e, f: f, idx: i, gen: ev.gen - 1}
}

// Armed reports whether the timer is scheduled and not yet fired. It is
// false inside the timer's own callback (the generation advances before
// the callback runs), so a firing timer can re-Arm itself.
func (tm *Timer) Armed() bool {
	ev := &tm.eng.events[tm.idx]
	return ev.timer && ev.gen == tm.gen && !ev.dead
}

// Arm schedules the timer at absolute time t (clamped to now). The
// common cycle — Arm, fire, Arm again — reuses the owned slot. If a
// previous Disarm left a dead entry still queued, the slot is detached
// to drain as ordinary garbage and a fresh slot is taken; the zombie
// never fires. Panics if the timer is already armed.
//
//altolint:hotpath
func (tm *Timer) Arm(t Time) {
	e := tm.eng
	ev := &e.events[tm.idx]
	if ev.timer && ev.gen == tm.gen && !ev.dead {
		panic("sim: Arm on an armed Timer")
	}
	if ev.dead {
		// Zombie from a Disarm still queued: hand the slot over to the
		// normal dead-entry path and take a fresh one.
		ev.timer = false
		tm.idx = e.takeSlot()
		ev = &e.events[tm.idx]
		ev.timer = true
	}
	if t < e.now {
		t = e.now
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	ev.act = tm.f
	ev.dead = false
	tm.gen = ev.gen
	e.qpush(tm.idx)
	e.pending++
}

// Disarm cancels a pending Arm; a no-op when not armed. The dead entry
// drains like a cancelled event (pop or compaction) but keeps the slot
// bound to the timer when it does.
func (tm *Timer) Disarm() {
	e := tm.eng
	ev := &e.events[tm.idx]
	if !ev.timer || ev.gen != tm.gen || ev.dead {
		return
	}
	ev.dead = true
	e.pending--
	e.maybeCompact()
}

// compact drops dead entries from the heap and restores heap order.
// Linear in heap size, amortised O(1) per cancellation since it only
// runs when dead entries outnumber live ones.
func (e *Engine) compact() {
	kept := e.heap[:0]
	for _, i := range e.heap {
		if e.events[i].dead {
			e.dropDead(i)
		} else {
			kept = append(kept, i)
		}
	}
	e.heap = kept
	for i := len(e.heap)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// push / popTop implement a classic binary min-heap keyed on (at, seq).
// Hand-rolled (rather than container/heap) to avoid interface boxing on
// the hottest path of the heap backend.

func (e *Engine) less(i, j int) bool {
	return e.entryLess(e.heap[i], e.heap[j])
}

func (e *Engine) push(idx int32) {
	e.heap = append(e.heap, idx)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) popTop() {
	h := e.heap
	last := len(h) - 1
	h[0] = h[last]
	e.heap = h[:last]
	e.siftDown(0)
}

func (e *Engine) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(e.heap) && e.less(l, smallest) {
			smallest = l
		}
		if r < len(e.heap) && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}
