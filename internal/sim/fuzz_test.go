package sim

import (
	"container/heap"
	"encoding/binary"
	"testing"
)

// The fuzzer drives the hand-rolled slab heap and a container/heap
// oracle through the same schedule/cancel/run script decoded from the
// fuzz input, then demands identical firing order, firing times, and
// pending counts. Chained schedules (callbacks that schedule from
// inside the event loop) exercise the release-before-run slot reuse;
// cancels of stale ids exercise the generation guard.

type oracleEvent struct {
	at    Time
	seq   uint64
	id    int
	chain Time // schedule a child this far after firing; 0 = none
}

type oracleHeap []oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(oracleEvent)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// oracle is the reference semantics of Engine built on container/heap.
// Cancelled events stay in the heap as dead entries (as in the engine)
// because they are observable: Run only advances the clock to its
// horizon when the heap — dead entries included — is empty, and the
// engine compacts dead entries away only when they outnumber live ones.
type oracle struct {
	h         oracleHeap
	now       Time
	seq       uint64
	nextID    int
	cancelled map[int]bool
	fired     map[int]bool
	pending   int
	log       []int  // firing order
	logAt     []Time // firing times
}

func newOracle() *oracle {
	return &oracle{cancelled: map[int]bool{}, fired: map[int]bool{}}
}

func (o *oracle) schedule(at Time, chain Time) int {
	if at < o.now {
		at = o.now
	}
	id := o.nextID
	o.nextID++
	heap.Push(&o.h, oracleEvent{at: at, seq: o.seq, id: id, chain: chain})
	o.seq++
	o.pending++
	return id
}

func (o *oracle) cancel(id int) {
	if o.fired[id] || o.cancelled[id] {
		return
	}
	o.cancelled[id] = true
	o.pending--
	// Mirror Engine.Cancel's compaction trigger: once dead entries
	// outnumber live ones, they are swept from the heap.
	if n := o.h.Len(); n > 1 && n-o.pending > n/2 {
		kept := o.h[:0]
		for _, ev := range o.h {
			if !o.cancelled[ev.id] {
				kept = append(kept, ev)
			}
		}
		o.h = kept
		heap.Init(&o.h)
	}
}

// run pops until the horizon (or fully, when all is true).
func (o *oracle) run(until Time, all bool) {
	for o.h.Len() > 0 {
		top := o.h[0]
		if !all && top.at > until {
			return
		}
		heap.Pop(&o.h)
		if o.cancelled[top.id] {
			continue
		}
		o.pending--
		o.now = top.at
		o.fired[top.id] = true
		o.log = append(o.log, top.id)
		o.logAt = append(o.logAt, top.at)
		if top.chain > 0 {
			o.schedule(o.now+top.chain, 0)
		}
	}
	// Engine.Run advances the clock to the horizon when it drains the
	// heap entirely (dead entries block this, hence the check above).
	if !all && o.now < until {
		o.now = until
	}
}

func FuzzEngineHeap(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 0, 5, 0, 2, 20, 0})
	f.Add([]byte{0, 1, 0, 3, 0, 2, 0, 1, 0, 0, 3})
	f.Add([]byte{0, 0, 128, 0, 0, 1, 1, 0, 3, 1, 0})
	f.Add([]byte{0, 4, 0, 7, 2, 255, 255, 0, 4, 0, 0, 1, 1, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := NewEngine()
		o := newOracle()

		var engLog []int
		var engLogAt []Time
		ids := map[int]EventID{} // engine ids by oracle id
		nextID := 0
		var mkAct func(id int, chain Time) func()
		mkAct = func(id int, chain Time) func() {
			return func() {
				engLog = append(engLog, id)
				engLogAt = append(engLogAt, eng.Now())
				if chain > 0 {
					cid := nextID
					nextID++
					ids[cid] = eng.After(chain, mkAct(cid, 0))
				}
			}
		}

		u16 := func(i int) uint16 {
			if i+1 < len(data) {
				return binary.LittleEndian.Uint16(data[i:])
			}
			if i < len(data) {
				return uint16(data[i])
			}
			return 0
		}

		lastNow := eng.Now()
		ops := 0
		for i := 0; i < len(data) && ops < 256; ops++ {
			op := data[i] % 4
			i++
			switch op {
			case 0: // schedule, possibly in the past, possibly chaining
				raw := u16(i)
				i += 2
				delta := Time(int16(raw)) // negative deltas test past-clamping
				chain := Time(0)
				if raw%5 == 0 {
					chain = Time(raw%97) + 1
				}
				id := nextID
				nextID++
				ids[id] = eng.At(eng.Now()+delta, mkAct(id, chain))
				o.schedule(o.now+delta, chain)
			case 1: // cancel an arbitrary id (maybe fired/cancelled already)
				if nextID > 0 {
					k := int(u16(i)) % nextID
					i += 2
					ids[k].Cancel()
					o.cancel(k)
					// Double cancel must be a no-op.
					if k%3 == 0 {
						ids[k].Cancel()
						o.cancel(k)
					}
				} else {
					i += 2
				}
			case 2: // bounded run
				d := Time(u16(i))
				i += 2
				until := eng.Now() + d
				eng.Run(until)
				o.run(until, false)
			case 3: // drain
				eng.RunAll()
				o.run(0, true)
			}

			if eng.Now() < lastNow {
				t.Fatalf("op %d: clock moved backwards %v -> %v", ops, lastNow, eng.Now())
			}
			lastNow = eng.Now()
			if eng.Now() != o.now {
				t.Fatalf("op %d: Now() = %v, oracle %v", ops, eng.Now(), o.now)
			}
			if eng.Pending() != o.pending {
				t.Fatalf("op %d: Pending() = %d, oracle %d", ops, eng.Pending(), o.pending)
			}
		}
		eng.RunAll()
		o.run(0, true)

		if eng.Pending() != 0 {
			t.Fatalf("Pending() = %d after drain", eng.Pending())
		}
		if len(engLog) != len(o.log) {
			t.Fatalf("fired %d events, oracle fired %d", len(engLog), len(o.log))
		}
		for i := range engLog {
			if engLog[i] != o.log[i] {
				t.Fatalf("firing order diverges at %d: engine id %d, oracle id %d", i, engLog[i], o.log[i])
			}
			if engLogAt[i] != o.logAt[i] {
				t.Fatalf("event %d fired at %v, oracle at %v", engLog[i], engLogAt[i], o.logAt[i])
			}
		}
		for i := 1; i < len(engLogAt); i++ {
			if engLogAt[i] < engLogAt[i-1] {
				t.Fatalf("firing times not monotone at %d: %v after %v", i, engLogAt[i], engLogAt[i-1])
			}
		}
	})
}
