package sim

import (
	"container/heap"
	"encoding/binary"
	"testing"
)

// The fuzzer drives the slab binary heap, the production timer wheel,
// and a deliberately tiny wheel (16-tick buckets, 8 slots, so the fuzz
// inputs constantly cross bucket boundaries and overflow into the far
// heap) through the same schedule/cancel/run script decoded from the
// fuzz input, then demands all three match a container/heap oracle on
// firing order, firing times, clock, and pending counts. Chained
// schedules (callbacks that schedule from inside the event loop)
// exercise the release-before-run slot reuse; cancels of stale ids
// exercise the generation guard; far-horizon deltas (raw%7==3 scales
// the delta by 2^14) exercise the wheel's overflow heap and the
// empty-wheel fast-forward.

type oracleEvent struct {
	at    Time
	seq   uint64
	id    int
	chain Time // schedule a child this far after firing; 0 = none
}

type oracleHeap []oracleEvent

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(oracleEvent)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// oracle is the reference semantics of Engine built on container/heap.
// Cancelled events stay in the heap as dead entries (as in the engine)
// because they are observable: Run only advances the clock to its
// horizon when the heap — dead entries included — is empty, and the
// engine compacts dead entries away only when they outnumber live ones.
type oracle struct {
	h         oracleHeap
	now       Time
	seq       uint64
	nextID    int
	cancelled map[int]bool
	fired     map[int]bool
	pending   int
	log       []int  // firing order
	logAt     []Time // firing times
}

func newOracle() *oracle {
	return &oracle{cancelled: map[int]bool{}, fired: map[int]bool{}}
}

func (o *oracle) schedule(at Time, chain Time) int {
	if at < o.now {
		at = o.now
	}
	id := o.nextID
	o.nextID++
	heap.Push(&o.h, oracleEvent{at: at, seq: o.seq, id: id, chain: chain})
	o.seq++
	o.pending++
	return id
}

func (o *oracle) cancel(id int) {
	if o.fired[id] || o.cancelled[id] {
		return
	}
	o.cancelled[id] = true
	o.pending--
	// Mirror Engine.Cancel's compaction trigger: once dead entries
	// outnumber live ones, they are swept from the heap.
	if n := o.h.Len(); n > 1 && n-o.pending > n/2 {
		kept := o.h[:0]
		for _, ev := range o.h {
			if !o.cancelled[ev.id] {
				kept = append(kept, ev)
			}
		}
		o.h = kept
		heap.Init(&o.h)
	}
}

// run pops until the horizon (or fully, when all is true).
func (o *oracle) run(until Time, all bool) {
	for o.h.Len() > 0 {
		top := o.h[0]
		if !all && top.at > until {
			return
		}
		heap.Pop(&o.h)
		if o.cancelled[top.id] {
			continue
		}
		o.pending--
		o.now = top.at
		o.fired[top.id] = true
		o.log = append(o.log, top.id)
		o.logAt = append(o.logAt, top.at)
		if top.chain > 0 {
			o.schedule(o.now+top.chain, 0)
		}
	}
	// Engine.Run advances the clock to the horizon when it drains the
	// heap entirely (dead entries block this, hence the check above).
	if !all && o.now < until {
		o.now = until
	}
}

// rig wraps one Engine under differential test with its own firing log
// and id table, so several scheduler backends can replay the same
// script independently.
type rig struct {
	name   string
	eng    *Engine
	log    []int
	logAt  []Time
	ids    map[int]EventID
	nextID int
}

func newRig(name string, eng *Engine) *rig {
	return &rig{name: name, eng: eng, ids: map[int]EventID{}}
}

func (r *rig) mkAct(id int, chain Time) func() {
	return func() {
		r.log = append(r.log, id)
		r.logAt = append(r.logAt, r.eng.Now())
		if chain > 0 {
			cid := r.nextID
			r.nextID++
			r.ids[cid] = r.eng.After(chain, r.mkAct(cid, 0))
		}
	}
}

func (r *rig) schedule(delta, chain Time) {
	id := r.nextID
	r.nextID++
	r.ids[id] = r.eng.At(r.eng.Now()+delta, r.mkAct(id, chain))
}

func FuzzEngineHeap(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 0, 5, 0, 2, 20, 0})
	f.Add([]byte{0, 1, 0, 3, 0, 2, 0, 1, 0, 0, 3})
	f.Add([]byte{0, 0, 128, 0, 0, 1, 1, 0, 3, 1, 0})
	f.Add([]byte{0, 4, 0, 7, 2, 255, 255, 0, 4, 0, 0, 1, 1, 3})
	// Window boundary: a far-horizon event (raw%7==3 scales by 2^14)
	// beyond the tiny wheel's window, then near events, then a bounded
	// run crossing the boundary, then drain.
	f.Add([]byte{0, 255, 0, 0, 6, 1, 0, 0, 16, 2, 255, 255, 3})
	// Dead-far rewind: schedule a far event, cancel it, drain (pops the
	// dead entry, fast-forwarding the wheel), then schedule near again.
	f.Add([]byte{0, 24, 0, 1, 0, 0, 3, 0, 100, 0, 3})
	// Slot stepping: events spread over many buckets, a bounded run
	// that leaves some behind, then a short event behind the cursor.
	f.Add([]byte{0, 16, 0, 0, 32, 0, 0, 64, 0, 0, 128, 0, 2, 64, 0, 0, 8, 0, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		o := newOracle()
		rigs := []*rig{
			newRig("heap", NewEngineHeap()),
			newRig("wheel", NewEngine()),
			// Tiny wheel: 2^4-tick buckets, 2^3 slots — a 128-tick
			// window that the 16-bit deltas overflow constantly.
			newRig("wheel4x3", newEngineWheel(4, 3)),
		}

		u16 := func(i int) uint16 {
			if i+1 < len(data) {
				return binary.LittleEndian.Uint16(data[i:])
			}
			if i < len(data) {
				return uint16(data[i])
			}
			return 0
		}

		lastNow := Time(0)
		ops := 0
		for i := 0; i < len(data) && ops < 256; ops++ {
			op := data[i] % 4
			i++
			switch op {
			case 0: // schedule, possibly in the past, possibly chaining, possibly far
				raw := u16(i)
				i += 2
				delta := Time(int16(raw)) // negative deltas test past-clamping
				if raw%7 == 3 {
					// Far horizon: push past the production wheel's
					// ~4 µs window so the overflow heap and the
					// empty-wheel fast-forward see real traffic.
					delta = Time(raw) << 14
				}
				chain := Time(0)
				if raw%5 == 0 {
					chain = Time(raw%97) + 1
				}
				for _, r := range rigs {
					r.schedule(delta, chain)
				}
				o.schedule(o.now+delta, chain)
			case 1: // cancel an arbitrary id (maybe fired/cancelled already)
				if o.nextID > 0 {
					k := int(u16(i)) % o.nextID
					i += 2
					for _, r := range rigs {
						r.ids[k].Cancel()
					}
					o.cancel(k)
					// Double cancel must be a no-op.
					if k%3 == 0 {
						for _, r := range rigs {
							r.ids[k].Cancel()
						}
						o.cancel(k)
					}
				} else {
					i += 2
				}
			case 2: // bounded run
				d := Time(u16(i))
				i += 2
				for _, r := range rigs {
					r.eng.Run(r.eng.Now() + d)
				}
				o.run(o.now+d, false)
			case 3: // drain
				for _, r := range rigs {
					r.eng.RunAll()
				}
				o.run(0, true)
			}

			for _, r := range rigs {
				if r.eng.Now() < lastNow {
					t.Fatalf("op %d [%s]: clock moved backwards %v -> %v", ops, r.name, lastNow, r.eng.Now())
				}
				if r.eng.Now() != o.now {
					t.Fatalf("op %d [%s]: Now() = %v, oracle %v", ops, r.name, r.eng.Now(), o.now)
				}
				if r.eng.Pending() != o.pending {
					t.Fatalf("op %d [%s]: Pending() = %d, oracle %d", ops, r.name, r.eng.Pending(), o.pending)
				}
			}
			lastNow = o.now
		}
		for _, r := range rigs {
			r.eng.RunAll()
		}
		o.run(0, true)

		for _, r := range rigs {
			if r.eng.Pending() != 0 {
				t.Fatalf("[%s] Pending() = %d after drain", r.name, r.eng.Pending())
			}
			if len(r.log) != len(o.log) {
				t.Fatalf("[%s] fired %d events, oracle fired %d", r.name, len(r.log), len(o.log))
			}
			for i := range r.log {
				if r.log[i] != o.log[i] {
					t.Fatalf("[%s] firing order diverges at %d: engine id %d, oracle id %d", r.name, i, r.log[i], o.log[i])
				}
				if r.logAt[i] != o.logAt[i] {
					t.Fatalf("[%s] event %d fired at %v, oracle at %v", r.name, r.log[i], r.logAt[i], o.logAt[i])
				}
			}
			for i := 1; i < len(r.logAt); i++ {
				if r.logAt[i] < r.logAt[i-1] {
					t.Fatalf("[%s] firing times not monotone at %d: %v after %v", r.name, i, r.logAt[i], r.logAt[i-1])
				}
			}
		}
	})
}
